// ijp_search_demo: run the automated Independent-Join-Path search of
// Appendix C.2. For the triangle query this is Example 62: three
// canonical databases, nine constants, Bell(9) = 21147 set partitions.

#include <cstdio>

#include "complexity/catalog.h"
#include "ijp/ijp.h"
#include "ijp/ijp_search.h"
#include "util/combinatorics.h"

namespace {

void Demo(const char* name, int min_joins, int max_joins) {
  using namespace rescq;
  Query q = CatalogQuery(name);
  std::printf("--- searching for an IJP for %s : %s\n", name,
              q.ToString().c_str());
  IjpSearchOptions options;
  options.min_joins = min_joins;
  options.max_joins = max_joins;
  IjpSearchResult r = SearchForIjp(q, options);
  std::printf("partitions examined: %llu, candidates checked: %llu\n",
              static_cast<unsigned long long>(r.partitions_examined),
              static_cast<unsigned long long>(r.candidates_checked));
  if (!r.found) {
    std::printf("no IJP found (PTIME queries should never have one per "
                "Conjecture 49)\n\n");
    return;
  }
  std::printf("%s\n", r.description.c_str());
  std::printf("database:\n");
  for (int rel = 0; rel < r.db.num_relations(); ++rel) {
    for (TupleId t : r.db.ActiveTuples(rel)) {
      std::printf("  %s\n", r.db.TupleToString(t).c_str());
    }
  }
  IjpCheckResult check = CheckIjp(q, r.db, r.endpoint_a, r.endpoint_b);
  std::printf("independent re-check: %s (%s)\n\n",
              check.is_ijp ? "IJP confirmed" : "NOT an IJP",
              check.explanation.c_str());
}

}  // namespace

int main() {
  using namespace rescq;
  std::printf("Bell numbers: B(4)=%llu  B(6)=%llu  B(9)=%llu (Example 62)\n\n",
              static_cast<unsigned long long>(BellNumber(4)),
              static_cast<unsigned long long>(BellNumber(6)),
              static_cast<unsigned long long>(BellNumber(9)));
  Demo("q_vc", 1, 2);        // found immediately (Example 58's shape)
  Demo("q_chain", 1, 2);     // the canonical database itself is an IJP
  Demo("q_triangle", 3, 3);  // Example 62
  Demo("q_perm", 1, 2);      // PTIME: no IJP
  Demo("q_Aperm", 1, 2);     // PTIME: no IJP
  return 0;
}
