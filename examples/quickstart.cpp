// Quickstart: define a query, load a database, compute resilience.
//
// Reproduces the running example of Section 2 of the paper:
// q_chain :- R(x,y), R(y,z) over D = {R(1,2), R(2,3), R(3,3)}.

#include <cstdio>

#include "cq/parser.h"
#include "db/database.h"
#include "db/witness.h"
#include "resilience/solver.h"

int main() {
  using namespace rescq;

  // 1. Parse a Boolean conjunctive query. '^x' marks exogenous relations.
  Query q = MustParseQuery("q :- R(x,y), R(y,z)");
  std::printf("query: %s\n", q.ToString().c_str());

  // 2. Build a database instance.
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  db.AddTuple("R", {v3, v3});

  // 3. Inspect the witnesses (Section 2: three witnesses).
  std::vector<Witness> witnesses = EnumerateWitnesses(q, db, kNoWitnessLimit);
  std::printf("witnesses: %zu\n", witnesses.size());
  for (const Witness& w : witnesses) {
    std::printf("  (");
    for (size_t i = 0; i < w.assignment.size(); ++i) {
      std::printf("%s%s", i ? "," : "", db.ValueName(w.assignment[i]).c_str());
    }
    std::printf(") uses");
    for (TupleId t : w.endo_tuples) {
      std::printf(" %s", db.TupleToString(t).c_str());
    }
    std::printf("\n");
  }

  // 4. Compute the resilience: the minimum number of endogenous tuples
  //    whose deletion makes the query false.
  ResilienceResult r = ComputeResilience(q, db);
  std::printf("resilience rho(q, D) = %d (solver: %s)\n", r.resilience,
              SolverKindName(r.solver));
  std::printf("a minimum contingency set:\n");
  for (TupleId t : r.contingency) {
    std::printf("  delete %s\n", db.TupleToString(t).c_str());
  }

  // 5. Verify: deleting the contingency set falsifies the query.
  bool broken = VerifyContingency(q, db, r.contingency);
  std::printf("query false after deletion: %s\n", broken ? "yes" : "no");
  return broken ? 0 : 1;
}
