// deletion_propagation: resilience as deletion propagation with
// source-side effects (Section 1 of the paper).
//
// Scenario: a small who-follows-whom network and a moderation view
//   alert() :- Follows(x,y), Follows(y,z), Blocked^x(z)
// ("somebody reaches a blocked account in two hops"). The view is
// Boolean; the moderation team wants the *minimum* number of follow
// edges to remove so the alert disappears — exactly the resilience of
// the query, i.e. deletion propagation with minimal source side-effects.

#include <cstdio>

#include "complexity/classifier.h"
#include "cq/parser.h"
#include "db/database.h"
#include "db/witness.h"
#include "resilience/solver.h"

int main() {
  using namespace rescq;

  Query alert = MustParseQuery(
      "alert :- Follows(x,y), Follows(y,z), Blocked^x(z)");

  Database db;
  auto user = [&](const char* name) { return db.Intern(name); };
  const char* follows[][2] = {
      {"ana", "bob"},  {"bob", "eve"},  {"cat", "bob"},  {"dan", "cat"},
      {"eve", "mal"},  {"ana", "cat"},  {"cat", "eve"},  {"dan", "eve"},
      {"eve", "spam"}, {"bob", "dan"},
  };
  for (auto [a, b] : follows) db.AddTuple("Follows", {user(a), user(b)});
  db.AddTuple("Blocked", {user("mal")});
  db.AddTuple("Blocked", {user("spam")});

  std::printf("view: %s\n", alert.ToString().c_str());
  std::vector<Witness> ws = EnumerateWitnesses(alert, db, kNoWitnessLimit);
  std::printf("the alert currently fires via %zu witnesses:\n", ws.size());
  for (const Witness& w : ws) {
    std::printf("  %s -> %s -> %s\n",
                db.ValueName(w.assignment[0]).c_str(),
                db.ValueName(w.assignment[1]).c_str(),
                db.ValueName(w.assignment[2]).c_str());
  }

  // The complexity side: this is a chain self-join on Follows — the
  // dichotomy says the minimization problem is NP-complete in general.
  Classification c = ClassifyResilience(alert);
  std::printf("\ndichotomy verdict: RES(alert) is %s (%s)\n",
              ComplexityName(c.complexity), c.pattern.c_str());

  // The data side: this instance is small, so the exact solver answers.
  ResilienceResult r = ComputeResilience(alert, db);
  std::printf("minimum source side-effect: remove %d follow edge(s):\n",
              r.resilience);
  for (TupleId t : r.contingency) {
    std::printf("  %s\n", db.TupleToString(t).c_str());
  }
  bool ok = VerifyContingency(alert, db, r.contingency);
  std::printf("alert silenced: %s\n", ok ? "yes" : "no");
  return ok ? 0 : 1;
}
