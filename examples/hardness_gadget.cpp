// hardness_gadget: build the Proposition 10 reduction 3SAT -> RES(q_chain)
// for a small formula, and verify the equivalence
//   psi satisfiable  <=>  rho(q_chain, D_psi) = n*m + 5m
// with the DPLL solver on one side and the exact resilience solver on the
// other.

#include <cstdio>

#include "reductions/gadget_sat_qchain.h"
#include "reductions/sat_solver.h"
#include "resilience/exact_solver.h"
#include "util/rng.h"

int main() {
  using namespace rescq;
  Rng rng(2020);

  std::printf("3SAT -> RES(q_chain) gadget (Proposition 10 / Figure 10)\n");
  std::printf("%-45s %5s %5s %8s %8s\n", "formula", "sat?", "k", "rho",
              "match");
  int mismatches = 0;
  for (int trial = 0; trial < 6; ++trial) {
    CnfFormula f = RandomCnf(/*num_vars=*/3, /*num_clauses=*/3,
                             /*clause_size=*/3, rng);
    bool sat = IsSatisfiable(f);
    SatChainGadget gadget = BuildSatQchainGadget(f);
    ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
    bool match = sat ? (r.resilience == gadget.k)
                     : (r.resilience >= gadget.k + 1);
    mismatches += match ? 0 : 1;
    std::printf("%-45s %5s %5d %8d %8s\n", f.ToString().c_str(),
                sat ? "yes" : "no", gadget.k, r.resilience,
                match ? "ok" : "MISMATCH");
  }

  // One guaranteed-unsatisfiable formula: all eight sign patterns.
  CnfFormula unsat;
  unsat.num_vars = 3;
  for (int mask = 0; mask < 8; ++mask) {
    Clause c;
    for (int v = 0; v < 3; ++v) {
      c.literals.push_back(Literal{v, ((mask >> v) & 1) != 0});
    }
    unsat.clauses.push_back(c);
  }
  SatChainGadget gadget = BuildSatQchainGadget(unsat);
  ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
  std::printf("%-45s %5s %5d %8d %8s\n", "(all 8 sign patterns)", "no",
              gadget.k, r.resilience,
              r.resilience >= gadget.k + 1 ? "ok" : "MISMATCH");
  std::printf("database size: %d tuples for 8 clauses\n",
              gadget.db.NumActiveTuples());
  return mismatches == 0 ? 0 : 1;
}
