// classify_query: run the paper's dichotomy decision procedure on a
// query given on the command line (or on a built-in tour of the paper's
// flagship queries).
//
// Usage:
//   classify_query                       # classify the built-in tour
//   classify_query "A(x), R(x,y), R(y,x), B(y)"

#include <cstdio>

#include "complexity/classifier.h"
#include "cq/binary_graph.h"
#include "cq/parser.h"

namespace {

void Classify(const std::string& text) {
  using namespace rescq;
  ParseResult parsed = ParseQuery(text);
  if (!parsed.ok) {
    std::printf("parse error for '%s': %s\n", text.c_str(),
                parsed.error.c_str());
    return;
  }
  Classification c = ClassifyResilience(parsed.query);
  std::printf("query      : %s\n", parsed.query.ToString().c_str());
  if (!(c.minimized == parsed.query)) {
    std::printf("minimized  : %s\n", c.minimized.ToString().c_str());
  }
  if (!(c.normalized == c.minimized)) {
    std::printf("normalized : %s\n", c.normalized.ToString().c_str());
  }
  std::printf("complexity : RES(q) is %s\n", ComplexityName(c.complexity));
  std::printf("pattern    : %s\n", c.pattern.c_str());
  std::printf("reason     : %s\n", c.reason.c_str());
  if (c.normalized.IsBinary()) {
    std::printf("binary graph (GraphViz):\n%s",
                BinaryGraph(c.normalized).ToDot(c.normalized).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Classify(argv[i]);
    return 0;
  }
  // A tour through Sections 2-8 of the paper.
  for (const char* text : {
           "R(x,y), S(y,z), T(z,x)",            // triangle: triad, hard
           "R(x,y), A(x), T(z,x), S(y,z)",      // rats: domination, easy
           "R(x), S(x,y), R(y)",                // q_vc: unary path, hard
           "R(x,y), R(y,z)",                    // q_chain: hard
           "A(x), R(x,y), R(z,y), C(z)",        // confluence: easy
           "R(x,y), H^x(x,z), R(z,y)",          // confluence + exo path: hard
           "A(x), R(x,y), R(y,x)",              // unbound permutation: easy
           "A(x), R(x,y), R(y,x), B(y)",        // bound permutation: hard
           "R(x,x), R(x,y), A(y)",              // REP z3: easy
           "A(x), R(x,y), R(y,z), R(z,y)",      // perm+R: easy (Prop 13)
           "A(x), R(x,y), R(z,y), R(z,w), C(w)",  // 3-confluence: hard
           "A(x), R(x,y), R(z,y), R(z,w), S^x(z,w)",  // open problem
       }) {
    Classify(text);
  }
  return 0;
}
