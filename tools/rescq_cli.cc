// rescq — command-line driver for the resilience library.
//
// The first end-to-end scenario a user can run without writing C++:
// parse a Boolean conjunctive query, decide the complexity of RES(q)
// following the paper's dichotomy, and (given a tuple file) compute the
// resilience with the matching solver.
//
//   rescq classify "R(x,y), S(y,z), T(z,x)"
//   rescq classify --name q_chain
//   rescq resilience "R(x,y), R(y,z)" data/section2_chain.tuples
//   rescq catalog
//   rescq catalog q_AC3conf

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "complexity/catalog.h"
#include "complexity/classifier.h"
#include "cq/parser.h"
#include "db/database.h"
#include "db/witness.h"
#include "resilience/result.h"
#include "resilience/solver.h"
#include "util/string_util.h"

namespace rescq {
namespace {

int Usage(std::FILE* out) {
  std::fprintf(out,
               "rescq — resilience of binary conjunctive queries with "
               "self-joins (PODS 2020)\n"
               "\n"
               "usage:\n"
               "  rescq classify (<query> | --name <catalog-name>)\n"
               "      Decide the complexity of RES(q) and cite the paper "
               "pattern.\n"
               "  rescq resilience (<query> | --name <catalog-name>) "
               "<tuples-file> [--exact]\n"
               "      Compute rho(q, D) over the tuple file; --exact forces "
               "the reference solver.\n"
               "  rescq catalog [<name>]\n"
               "      List every named query of the paper with its published\n"
               "      verdict and the classifier's verdict (or detail one).\n"
               "  rescq help\n"
               "\n"
               "query syntax:   \"q :- R(x,y), S^x(y,z), A(x)\"   (head "
               "optional; ^x = exogenous)\n"
               "tuple file:     one fact per line, e.g. \"R(a,b)\"; '#' "
               "starts a comment\n");
  return out == stdout ? 0 : 2;
}

/// Resolves the query argument: either a literal query string or, after
/// `--name`, a PaperCatalog() entry. Returns nullopt (with a message
/// printed) on failure.
std::optional<Query> ResolveQuery(const std::vector<std::string>& args,
                                  size_t* consumed) {
  if (args.empty()) {
    std::fprintf(stderr, "error: missing query argument\n");
    return std::nullopt;
  }
  if (args[0] == "--name") {
    if (args.size() < 2) {
      std::fprintf(stderr, "error: --name needs a catalog query name\n");
      return std::nullopt;
    }
    std::optional<CatalogEntry> entry = FindCatalogEntry(args[1]);
    if (!entry) {
      std::fprintf(stderr,
                   "error: no catalog query named '%s' (try `rescq "
                   "catalog`)\n",
                   args[1].c_str());
      return std::nullopt;
    }
    *consumed = 2;
    return MustParseQuery(entry->text);
  }
  ParseResult parsed = ParseQuery(args[0]);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: cannot parse query: %s\n",
                 parsed.error.c_str());
    return std::nullopt;
  }
  *consumed = 1;
  return parsed.query;
}

/// Loads a tuple file into db. Format: one fact per line, "R(a, b)";
/// blank lines and '#' comments are ignored. Returns false on the first
/// malformed line.
bool LoadTupleFile(const std::string& path, Database* db) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open tuple file '%s'\n", path.c_str());
    return false;
  }
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    size_t open = line.find('(');
    size_t close = line.rfind(')');
    if (open == std::string_view::npos || close != line.size() - 1 ||
        close < open) {
      std::fprintf(stderr, "%s:%d: expected a single fact like R(a,b)\n",
                   path.c_str(), lineno);
      return false;
    }
    std::string relation(Trim(line.substr(0, open)));
    if (relation.empty() ||
        !std::isupper(static_cast<unsigned char>(relation[0]))) {
      std::fprintf(stderr, "%s:%d: relation name must start upper-case\n",
                   path.c_str(), lineno);
      return false;
    }
    std::vector<Value> row;
    for (const std::string& piece :
         Split(line.substr(open + 1, close - open - 1), ',')) {
      std::string constant(Trim(piece));
      if (constant.empty() ||
          constant.find_first_of("() \t") != std::string::npos) {
        std::fprintf(stderr, "%s:%d: bad constant '%s' in fact\n",
                     path.c_str(), lineno, constant.c_str());
        return false;
      }
      row.push_back(db->Intern(constant));
    }
    if (row.empty()) {
      std::fprintf(stderr, "%s:%d: fact has no constants\n", path.c_str(),
                   lineno);
      return false;
    }
    // Validate arity here: the file is untrusted input, and Database
    // treats an arity mismatch as a programmer error (it aborts).
    int id = db->RelationId(relation);
    if (id >= 0 && db->relation_arity(id) != static_cast<int>(row.size())) {
      std::fprintf(stderr,
                   "%s:%d: relation '%s' used with arity %zu, but earlier "
                   "facts have arity %d\n",
                   path.c_str(), lineno, relation.c_str(), row.size(),
                   db->relation_arity(id));
      return false;
    }
    db->AddTuple(relation, row);
  }
  return true;
}

void PrintClassification(const Query& q, const Classification& c) {
  std::printf("query:       %s\n", q.ToString().c_str());
  if (!(c.minimized == q)) {
    std::printf("minimized:   %s\n", c.minimized.ToString().c_str());
  }
  if (!(c.normalized == c.minimized)) {
    std::printf("normalized:  %s\n", c.normalized.ToString().c_str());
  }
  std::printf("complexity:  RES(q) is %s\n", ComplexityName(c.complexity));
  std::printf("pattern:     %s\n", c.pattern.c_str());
  std::printf("reason:      %s\n", c.reason.c_str());
}

int CmdClassify(const std::vector<std::string>& args) {
  size_t consumed = 0;
  std::optional<Query> q = ResolveQuery(args, &consumed);
  if (!q) return 2;
  if (consumed != args.size()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 args[consumed].c_str());
    return 2;
  }
  PrintClassification(*q, ClassifyResilience(*q));
  return 0;
}

int CmdResilience(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  bool exact = false;
  for (const std::string& a : args) {
    if (a == "--exact") {
      exact = true;
    } else {
      positional.push_back(a);
    }
  }
  size_t consumed = 0;
  std::optional<Query> q = ResolveQuery(positional, &consumed);
  if (!q) return 2;
  if (positional.size() != consumed + 1) {
    std::fprintf(stderr, "error: expected exactly one tuple file argument\n");
    return 2;
  }

  Database db;
  if (!LoadTupleFile(positional[consumed], &db)) return 2;
  for (const std::string& rel : q->RelationNames()) {
    int id = db.RelationId(rel);
    if (id < 0) {
      std::fprintf(stderr, "warning: relation '%s' has no tuples in '%s'\n",
                   rel.c_str(), positional[consumed].c_str());
    } else if (db.relation_arity(id) != q->RelationArity(rel)) {
      std::fprintf(stderr,
                   "warning: relation '%s' has arity %d in the query but "
                   "arity %d in '%s'; no fact can match\n",
                   rel.c_str(), q->RelationArity(rel), db.relation_arity(id),
                   positional[consumed].c_str());
    }
  }

  Classification c = ClassifyResilience(*q);
  std::printf("query:       %s\n", q->ToString().c_str());
  std::printf("complexity:  RES(q) is %s (%s)\n", ComplexityName(c.complexity),
              c.reason.c_str());
  std::printf("database:    %d tuples over %d constants\n",
              db.NumActiveTuples(), db.domain_size());
  std::printf("witnesses:   %zu\n", EnumerateWitnesses(*q, db).size());

  ResilienceResult r = exact ? ComputeResilienceReference(*q, db)
                             : ComputeResilience(*q, db);
  if (r.unbreakable) {
    std::printf(
        "resilience:  undefined — some witness uses only exogenous "
        "tuples, so no endogenous deletion can falsify q\n");
    return 0;
  }
  std::printf("resilience:  rho(q, D) = %d  [solver: %s]\n", r.resilience,
              SolverKindName(r.solver));
  if (!r.contingency.empty()) {
    std::printf("contingency: delete");
    for (TupleId t : r.contingency) {
      std::printf(" %s", db.TupleToString(t).c_str());
    }
    std::printf("\n");
  }
  bool broken = VerifyContingency(*q, db, r.contingency);
  std::printf("verified:    query %s after deleting the contingency set\n",
              broken ? "is false" : "IS STILL TRUE (solver bug!)");
  return broken ? 0 : 1;
}

int CmdCatalog(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    std::fprintf(stderr, "error: catalog takes at most one name\n");
    return 2;
  }
  if (args.size() == 1) {
    std::optional<CatalogEntry> entry = FindCatalogEntry(args[0]);
    if (!entry) {
      std::fprintf(stderr, "error: no catalog query named '%s'\n",
                   args[0].c_str());
      return 2;
    }
    std::printf("name:        %s\n", entry->name.c_str());
    std::printf("published:   %s (%s)\n", ComplexityName(entry->expected),
                entry->reference.c_str());
    Query q = MustParseQuery(entry->text);
    PrintClassification(q, ClassifyResilience(q));
    return 0;
  }

  int mismatches = 0;
  std::printf("%-18s %-13s %-13s %s\n", "name", "published", "classifier",
              "reference");
  for (const CatalogEntry& entry : PaperCatalog()) {
    Classification c = ClassifyResilience(MustParseQuery(entry.text));
    bool match = c.complexity == entry.expected;
    if (!match) ++mismatches;
    std::printf("%-18s %-13s %-13s %s%s\n", entry.name.c_str(),
                ComplexityName(entry.expected), ComplexityName(c.complexity),
                entry.reference.c_str(), match ? "" : "   << MISMATCH");
  }
  std::printf("\n%zu catalog queries; classifier agrees on %zu.\n",
              PaperCatalog().size(), PaperCatalog().size() - mismatches);
  return mismatches == 0 ? 0 : 1;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return Usage(stdout);
  if (cmd == "classify") return CmdClassify(args);
  if (cmd == "resilience") return CmdResilience(args);
  if (cmd == "catalog") return CmdCatalog(args);
  std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd.c_str());
  return Usage(stderr);
}

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) { return rescq::Run(argc, argv); }
