// rescq — command-line driver for the resilience library.
//
// The first end-to-end scenario a user can run without writing C++:
// parse a Boolean conjunctive query, decide the complexity of RES(q)
// following the paper's dichotomy, and (given a tuple file) compute the
// resilience with the matching solver.
//
//   rescq classify "R(x,y), S(y,z), T(z,x)"
//   rescq classify --name q_chain
//   rescq resilience "R(x,y), R(y,z)" data/section2_chain.tuples
//   rescq explain --name q_Aperm
//   rescq catalog
//   rescq catalog q_AC3conf
//   rescq gen --scenario vc_er --size 12 --seed 1 --out er.tuples
//   rescq batch --scenarios all --max-size 8 --threads 4 --check-oracle

#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "complexity/catalog.h"
#include "complexity/classifier.h"
#include "cq/parser.h"
#include "db/database.h"
#include "db/delta.h"
#include "db/tuple_io.h"
#include "db/witness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/engine.h"
#include "resilience/result.h"
#include "resilience/solver.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "server/server.h"
#include "util/string_util.h"
#include "workload/batch.h"
#include "workload/churn.h"
#include "workload/generators.h"
#include "workload/report.h"
#include "workload/stream.h"

namespace rescq {
namespace {

int Usage(std::FILE* out) {
  std::fprintf(out,
               "rescq — resilience of binary conjunctive queries with "
               "self-joins (PODS 2020)\n"
               "\n"
               "usage:\n"
               "  rescq classify (<query> | --name <catalog-name>)\n"
               "      Decide the complexity of RES(q) and cite the paper "
               "pattern.\n"
               "  rescq resilience (<query> | --name <catalog-name>) "
               "<tuples-file> [--exact]\n"
               "                   [--witness-limit N] "
               "[--exact-node-budget N] [--solver-threads N]\n"
               "                   [--stats] [--metrics-json <file>] "
               "[--trace-out <file>]\n"
               "      Compute rho(q, D) over the tuple file; --exact forces "
               "the reference solver.\n"
               "      --stats prints plan/solve timings and the "
               "(deterministic) search counters;\n"
               "      --metrics-json snapshots the metrics registry "
               "(rescq-metrics/v1) and\n"
               "      --trace-out records a Chrome trace_event file for "
               "chrome://tracing / Perfetto.\n"
               "      --witness-limit caps the streamed witness enumeration "
               "(exceeding it is a\n"
               "      reported outcome, not a truncated answer); "
               "--exact-node-budget caps the\n"
               "      branch-and-bound search (the incumbent is returned as "
               "an upper bound);\n"
               "      --solver-threads fans independent hitting-set "
               "components out to workers\n"
               "      (the resilience value is identical for any count).\n"
               "  rescq explain (<query> | --name <catalog-name>)\n"
               "      Print the reusable resilience plan: pipeline stages, "
               "per-component\n"
               "      classification, and the registered solver (with paper "
               "citation)\n"
               "      the engine will dispatch to.\n"
               "  rescq catalog [<name>]\n"
               "      List every named query of the paper with its published\n"
               "      verdict and the classifier's verdict (or detail one).\n"
               "  rescq gen --scenario <name> [--size N] [--density D] "
               "[--seed S]\n"
               "            [--name <catalog-query>] [--out <file>] | --list\n"
               "      Write a generated instance as a tuple file (stdout by "
               "default);\n"
               "      --list shows the scenario catalog.\n"
               "  rescq batch [--scenarios <a,b|all>] [--names <q1,q2>] "
               "[--plan <file>]\n"
               "              [--sizes 4,6,8 | --max-size N] [--seeds 1,2] "
               "[--density D]\n"
               "              [--threads N] [--solver-threads N] "
               "[--check-oracle] [--oracle-cutoff N]\n"
               "              [--no-memoize] [--witness-limit N] "
               "[--exact-node-budget N]\n"
               "              [--csv <file>] [--json <file>] "
               "[--metrics-json <file>] [--trace-out <file>]\n"
               "      Sweep (query x scenario x size x seed) across a worker "
               "pool and\n"
               "      report per-cell resilience, solver, timing, and oracle "
               "checks.\n"
               "  rescq stream (<query> | --name <catalog-name>) "
               "<tuples-file>\n"
               "              (--updates <file> | --churn "
               "<insert|delete|mixed|hub>)\n"
               "              [--epochs N] [--rate R] [--seed S] "
               "[--emit-updates <file>]\n"
               "              [--check-oracle] [--witness-limit N] "
               "[--exact-node-budget N]\n"
               "              [--solver-threads N] [--csv <file>] "
               "[--json <file>]\n"
               "              [--metrics-json <file>] [--trace-out <file>]\n"
               "      Maintain the resilience incrementally under an update "
               "stream and\n"
               "      report one row per epoch (bounds, re-solves, timings); "
               "--updates\n"
               "      replays an update file, --churn generates one "
               "deterministically\n"
               "      (--emit-updates saves it), --check-oracle diffs every "
               "epoch against\n"
               "      a from-scratch exact solve.\n"
               "  rescq serve [--host H] [--port P] [--threads N] "
               "[--solver-threads N]\n"
               "              [--max-sessions N] [--max-base-tuples N] "
               "[--max-epoch-updates N]\n"
               "              [--default-witness-limit N] "
               "[--max-witness-limit N]\n"
               "              [--default-node-budget N] "
               "[--max-node-budget N]\n"
               "              [--max-resident-mb N] [--evict-idle-ms N]\n"
               "              [--no-load] [--no-shutdown] "
               "[--metrics-json <file>]\n"
               "      Run the resilience daemon: named incremental sessions "
               "over a\n"
               "      line-based TCP protocol (docs/SERVER.md). --port 0 "
               "picks an\n"
               "      ephemeral port (announced on stdout); SIGINT/SIGTERM "
               "stop it\n"
               "      gracefully and --metrics-json snapshots the registry "
               "on shutdown.\n"
               "  rescq route (--shard host:port ... | --shards N) [--host H] "
               "[--port P]\n"
               "              [--threads N] [--connect-timeout-ms N] "
               "[--request-timeout-ms N]\n"
               "              [--retries N] [--backoff-ms N] "
               "[--down-cooldown-ms N]\n"
               "              [--no-shutdown] [--metrics-json <file>]\n"
               "      Run the consistent-hash sharding front-end: speaks the "
               "same line\n"
               "      protocol, places each named session on one backend "
               "`rescq serve`\n"
               "      shard and forwards its verbs there; `stats`/`sessions` "
               "aggregate\n"
               "      across all shards. --shard (repeatable) lists external "
               "backends;\n"
               "      --shards N spawns N in-process serve instances on "
               "ephemeral ports.\n"
               "  rescq loadgen --port P [--host H] [--connections M] "
               "[--scenario <name>]\n"
               "               [--query <q>] [--size N] [--density D] "
               "[--churn <kind>]\n"
               "               [--epochs N] [--rate R] [--seed S] "
               "[--check-oracle]\n"
               "               [--witness-limit N] [--node-budget N] "
               "[--session-prefix P]\n"
               "               [--timeout-ms N] [--csv <file>] "
               "[--json <file>]\n"
               "      Drive a live server: M concurrent connections each "
               "open a session,\n"
               "      push a generated base, and loop churn epochs + "
               "queries; reports\n"
               "      throughput and p50/p99/p999 latency "
               "(rescq-loadgen-report/v1);\n"
               "      --check-oracle diffs every served answer against a "
               "from-scratch\n"
               "      exact solve on a local mirror.\n"
               "  rescq help\n"
               "\n"
               "query syntax:   \"q :- R(x,y), S^x(y,z), A(x)\"   (head "
               "optional; ^x = exogenous)\n"
               "tuple file:     one fact per line, e.g. \"R(a,b)\"; '#' "
               "starts a comment\n");
  return out == stdout ? 0 : 2;
}

/// Shared `--metrics-json` / `--trace-out` handling for the solving
/// commands (resilience | batch | stream): either path arms its sink
/// before the run (Arm) and writes the file after it (Flush). With
/// neither flag the instrumentation stays disabled and costs one
/// relaxed load per call site.
struct ObsSinks {
  std::string metrics_path;
  std::string trace_path;

  void Arm() const {
    if (!metrics_path.empty()) obs::SetMetricsEnabled(true);
    if (!trace_path.empty()) obs::StartTrace();
  }

  /// 0 on success, 2 on I/O failure (with a message printed).
  int Flush() const {
    if (!trace_path.empty()) {
      obs::StopTrace();
      if (!obs::WriteTraceJson(trace_path)) {
        std::fprintf(stderr, "error: cannot write trace file '%s'\n",
                     trace_path.c_str());
        return 2;
      }
    }
    if (!metrics_path.empty() &&
        !obs::WriteMetricsJson(obs::GlobalRegistry(), metrics_path)) {
      std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                   metrics_path.c_str());
      return 2;
    }
    return 0;
  }
};

/// Resolves the query argument: either a literal query string or, after
/// `--name`, a PaperCatalog() entry. Returns nullopt (with a message
/// printed) on failure.
std::optional<Query> ResolveQuery(const std::vector<std::string>& args,
                                  size_t* consumed) {
  if (args.empty()) {
    std::fprintf(stderr, "error: missing query argument\n");
    return std::nullopt;
  }
  if (args[0] == "--name") {
    if (args.size() < 2) {
      std::fprintf(stderr, "error: --name needs a catalog query name\n");
      return std::nullopt;
    }
    std::optional<CatalogEntry> entry = FindCatalogEntry(args[1]);
    if (!entry) {
      std::fprintf(stderr,
                   "error: no catalog query named '%s' (try `rescq "
                   "catalog`)\n",
                   args[1].c_str());
      return std::nullopt;
    }
    *consumed = 2;
    return MustParseQuery(entry->text);
  }
  ParseResult parsed = ParseQuery(args[0]);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: cannot parse query: %s\n",
                 parsed.error.c_str());
    return std::nullopt;
  }
  *consumed = 1;
  return parsed.query;
}

/// Loads a tuple file into db via db/tuple_io, reporting errors on
/// stderr.
bool LoadTuples(const std::string& path, Database* db) {
  std::string error;
  if (!LoadTupleFile(path, db, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return false;
  }
  return true;
}

void PrintClassification(const Query& q, const Classification& c) {
  std::printf("query:       %s\n", q.ToString().c_str());
  if (!(c.minimized == q)) {
    std::printf("minimized:   %s\n", c.minimized.ToString().c_str());
  }
  if (!(c.normalized == c.minimized)) {
    std::printf("normalized:  %s\n", c.normalized.ToString().c_str());
  }
  std::printf("complexity:  RES(q) is %s\n", ComplexityName(c.complexity));
  std::printf("pattern:     %s\n", c.pattern.c_str());
  std::printf("reason:      %s\n", c.reason.c_str());
}

int CmdClassify(const std::vector<std::string>& args) {
  size_t consumed = 0;
  std::optional<Query> q = ResolveQuery(args, &consumed);
  if (!q) return 2;
  if (consumed != args.size()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 args[consumed].c_str());
    return 2;
  }
  PrintClassification(*q, ClassifyResilience(*q));
  return 0;
}

int CmdResilience(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  bool exact = false;
  bool stats = false;
  uint64_t witness_limit = 0;
  uint64_t node_budget = 0;
  int solver_threads = 1;
  ObsSinks sinks;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--exact") {
      exact = true;
    } else if (a == "--stats") {
      stats = true;
    } else if (a == "--metrics-json" || a == "--trace-out") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a file path\n", a.c_str());
        return 2;
      }
      (a == "--metrics-json" ? sinks.metrics_path : sinks.trace_path) =
          args[i + 1];
      ++i;
    } else if (a == "--witness-limit" || a == "--exact-node-budget") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        return 2;
      }
      uint64_t* dst = a == "--witness-limit" ? &witness_limit : &node_budget;
      if (!ParseUint64(args[i + 1], dst)) {
        std::fprintf(stderr, "error: %s needs an unsigned integer, got '%s'\n",
                     a.c_str(), args[i + 1].c_str());
        return 2;
      }
      ++i;
    } else if (a == "--solver-threads") {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
        return 2;
      }
      if (!ParsePositiveInt(args[i + 1], &solver_threads)) {
        std::fprintf(stderr, "error: %s needs a positive integer, got '%s'\n",
                     a.c_str(), args[i + 1].c_str());
        return 2;
      }
      ++i;
    } else {
      positional.push_back(a);
    }
  }
  size_t consumed = 0;
  std::optional<Query> q = ResolveQuery(positional, &consumed);
  if (!q) return 2;
  if (positional.size() != consumed + 1) {
    std::fprintf(stderr, "error: expected exactly one tuple file argument\n");
    return 2;
  }

  Database db;
  if (!LoadTuples(positional[consumed], &db)) return 2;
  for (const std::string& rel : q->RelationNames()) {
    int id = db.RelationId(rel);
    if (id < 0) {
      std::fprintf(stderr, "warning: relation '%s' has no tuples in '%s'\n",
                   rel.c_str(), positional[consumed].c_str());
    } else if (db.relation_arity(id) != q->RelationArity(rel)) {
      std::fprintf(stderr,
                   "warning: relation '%s' has arity %d in the query but "
                   "arity %d in '%s'; no fact can match\n",
                   rel.c_str(), q->RelationArity(rel), db.relation_arity(id),
                   positional[consumed].c_str());
    }
  }

  Classification c = ClassifyResilience(*q);
  std::printf("query:       %s\n", q->ToString().c_str());
  std::printf("complexity:  RES(q) is %s (%s)\n", ComplexityName(c.complexity),
              c.reason.c_str());
  std::printf("database:    %d tuples over %d constants\n",
              db.NumActiveTuples(), db.domain_size());
  // Stream-count witnesses (nothing is materialized); a witness limit
  // also caps this display pass. "Capped" only when a witness beyond
  // the limit actually exists — an instance with exactly `witness_limit`
  // witnesses is complete.
  size_t witness_count = 0;
  bool witness_count_capped = false;
  ForEachWitness(*q, db, [&](const Witness&) {
    if (witness_limit != 0 && witness_count >= witness_limit) {
      witness_count_capped = true;
      return false;
    }
    ++witness_count;
    return true;
  });
  std::printf("witnesses:   %zu%s\n", witness_count,
              witness_count_capped ? "+ (capped by --witness-limit)" : "");

  EngineOptions options;
  options.force_exact = exact;
  options.witness_limit = static_cast<size_t>(witness_limit);
  options.exact_node_budget = node_budget;
  options.solver_threads = solver_threads;
  sinks.Arm();
  ResilienceEngine engine(options);
  SolveOutcome outcome = engine.Solve(*q, db);
  if (stats) {
    // Timings go through %.3f so golden tests can normalize every
    // decimal number to <t>; the counters are deterministic (satellite
    // of the per-component search: thread-count invariant).
    std::printf("stats:\n");
    std::printf("  plan:        %.3f ms (%s)\n", outcome.plan_ms,
                exact              ? "skipped: --exact"
                : outcome.plan_cache_hit ? "cache hit"
                                         : "cache miss");
    std::printf("  solve:       %.3f ms\n", outcome.solve_ms);
    std::printf("  witnesses:   %zu streamed, %zu distinct sets\n",
                outcome.exact.witnesses, outcome.exact.witness_sets);
    std::printf("  search:      %d component(s), %llu node(s), "
                "%llu packing / %llu flow prune(s)\n",
                outcome.exact.components,
                static_cast<unsigned long long>(outcome.exact.nodes),
                static_cast<unsigned long long>(outcome.exact.packing_prunes),
                static_cast<unsigned long long>(outcome.exact.flow_prunes));
  }
  if (outcome.exact.witnesses > 0) {
    std::printf(
        "exact search: %zu witnesses -> %zu sets, %d component(s), "
        "%llu node(s), %llu packing / %llu flow prune(s)%s\n",
        outcome.exact.witnesses, outcome.exact.witness_sets,
        outcome.exact.components,
        static_cast<unsigned long long>(outcome.exact.nodes),
        static_cast<unsigned long long>(outcome.exact.packing_prunes),
        static_cast<unsigned long long>(outcome.exact.flow_prunes),
        outcome.exact.node_budget_exceeded
            ? "  [node budget exhausted: upper bound]"
            : "");
  }
  if (!outcome.error.empty()) {
    std::printf("resilience:  not computed — %s\n", outcome.error.c_str());
    sinks.Flush();
    return 1;
  }
  const ResilienceResult& r = outcome.result;
  if (r.unbreakable) {
    std::printf(
        "resilience:  undefined — some witness uses only exogenous "
        "tuples, so no endogenous deletion can falsify q\n");
    return sinks.Flush();
  }
  std::printf("resilience:  rho(q, D) = %d  [solver: %s]\n", r.resilience,
              SolverKindName(r.solver));
  if (!r.contingency.empty()) {
    std::printf("contingency: delete");
    for (TupleId t : r.contingency) {
      std::printf(" %s", db.TupleToString(t).c_str());
    }
    std::printf("\n");
  }
  bool broken = VerifyContingency(*q, db, r.contingency);
  std::printf("verified:    query %s after deleting the contingency set\n",
              broken ? "is false" : "IS STILL TRUE (solver bug!)");
  int sink_rc = sinks.Flush();
  if (sink_rc != 0) return sink_rc;
  return broken ? 0 : 1;
}

int CmdExplain(const std::vector<std::string>& args) {
  size_t consumed = 0;
  std::optional<Query> q = ResolveQuery(args, &consumed);
  if (!q) return 2;
  if (consumed != args.size()) {
    std::fprintf(stderr, "error: unexpected argument '%s'\n",
                 args[consumed].c_str());
    return 2;
  }
  ResilienceEngine engine;
  std::shared_ptr<const ResiliencePlan> plan = engine.Plan(*q);
  std::fputs(plan->Explain(engine.registry()).c_str(), stdout);
  return 0;
}

int CmdCatalog(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    std::fprintf(stderr, "error: catalog takes at most one name\n");
    return 2;
  }
  if (args.size() == 1) {
    std::optional<CatalogEntry> entry = FindCatalogEntry(args[0]);
    if (!entry) {
      std::fprintf(stderr, "error: no catalog query named '%s'\n",
                   args[0].c_str());
      return 2;
    }
    std::printf("name:        %s\n", entry->name.c_str());
    std::printf("published:   %s (%s)\n", ComplexityName(entry->expected),
                entry->reference.c_str());
    Query q = MustParseQuery(entry->text);
    PrintClassification(q, ClassifyResilience(q));
    return 0;
  }

  int mismatches = 0;
  std::printf("%-18s %-13s %-13s %s\n", "name", "published", "classifier",
              "reference");
  for (const CatalogEntry& entry : PaperCatalog()) {
    Classification c = ClassifyResilience(MustParseQuery(entry.text));
    bool match = c.complexity == entry.expected;
    if (!match) ++mismatches;
    std::printf("%-18s %-13s %-13s %s%s\n", entry.name.c_str(),
                ComplexityName(entry.expected), ComplexityName(c.complexity),
                entry.reference.c_str(), match ? "" : "   << MISMATCH");
  }
  std::printf("\n%zu catalog queries; classifier agrees on %zu.\n",
              PaperCatalog().size(), PaperCatalog().size() - mismatches);
  return mismatches == 0 ? 0 : 1;
}

// --- gen / batch: the workload subsystem ------------------------------------

bool ParseIntFlag(const std::string& flag, const std::string& value, int* out) {
  if (!ParsePositiveInt(value, out)) {
    std::fprintf(stderr, "error: %s needs a positive integer, got '%s'\n",
                 flag.c_str(), value.c_str());
    return false;
  }
  return true;
}

bool ParseSeedFlag(const std::string& flag, const std::string& value,
                   uint64_t* out) {
  if (!ParseUint64(value, out)) {
    std::fprintf(stderr, "error: %s needs an unsigned integer, got '%s'\n",
                 flag.c_str(), value.c_str());
    return false;
  }
  return true;
}

bool ParseDensityFlag(const std::string& value, double* out) {
  if (!ParseProbability(value, out)) {
    std::fprintf(stderr, "error: --density needs a number in [0,1], got '%s'\n",
                 value.c_str());
    return false;
  }
  return true;
}

int CmdGen(const std::vector<std::string>& args) {
  std::string scenario_name, out_path, catalog_name;
  ScenarioParams params;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--list") {
      std::printf("%-15s %-28s %s\n", "scenario", "default query",
                  "description");
      for (const Scenario& s : ScenarioCatalog()) {
        std::printf("%-15s %-28s %s\n", s.name.c_str(), s.query.c_str(),
                    s.description.c_str());
      }
      return 0;
    }
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    const std::string* v = nullptr;
    if (a == "--scenario") {
      if (!(v = value("--scenario"))) return 2;
      scenario_name = *v;
    } else if (a == "--size") {
      if (!(v = value("--size")) || !ParseIntFlag(a, *v, &params.size))
        return 2;
    } else if (a == "--density") {
      if (!(v = value("--density")) || !ParseDensityFlag(*v, &params.density))
        return 2;
    } else if (a == "--seed") {
      if (!(v = value("--seed")) || !ParseSeedFlag(a, *v, &params.seed))
        return 2;
    } else if (a == "--out") {
      if (!(v = value("--out"))) return 2;
      out_path = *v;
    } else if (a == "--name") {
      if (!(v = value("--name"))) return 2;
      catalog_name = *v;
    } else {
      std::fprintf(stderr, "error: unknown gen flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (scenario_name.empty()) {
    std::fprintf(stderr, "error: gen needs --scenario <name> (or --list)\n");
    return 2;
  }
  const Scenario* scenario = FindScenario(scenario_name);
  if (scenario == nullptr) {
    std::fprintf(stderr,
                 "error: unknown scenario '%s' (try `rescq gen --list`)\n",
                 scenario_name.c_str());
    return 2;
  }
  std::string query_text = scenario->query;
  std::function<Database(const ScenarioParams&)> generate = scenario->generate;
  if (!catalog_name.empty()) {
    // Only the generic filler can honor an arbitrary query; the shaped
    // generators produce data for their own family.
    if (scenario_name != "uniform") {
      std::fprintf(stderr,
                   "error: --name only combines with --scenario uniform\n");
      return 2;
    }
    std::optional<CatalogEntry> entry = FindCatalogEntry(catalog_name);
    if (!entry) {
      std::fprintf(stderr, "error: no catalog query named '%s'\n",
                   catalog_name.c_str());
      return 2;
    }
    query_text = entry->text;
    Query q = MustParseQuery(entry->text);
    generate = [q](const ScenarioParams& p) { return GenerateUniform(q, p); };
  }

  Database db = generate(params);
  std::string header = StrFormat(
      "generated by: rescq gen --scenario %s --size %d --density %g "
      "--seed %llu%s%s\nquery: %s\n%d tuples over %d constants",
      scenario_name.c_str(), params.size, params.density,
      static_cast<unsigned long long>(params.seed),
      catalog_name.empty() ? "" : " --name ", catalog_name.c_str(),
      query_text.c_str(), db.NumActiveTuples(), db.domain_size());
  if (out_path.empty()) {
    WriteTuples(db, std::cout, header);
    return 0;
  }
  std::string error;
  if (!SaveTupleFile(db, out_path, header, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  std::printf("wrote %d tuples (%s scenario, seed %llu) to %s\n",
              db.NumActiveTuples(), scenario_name.c_str(),
              static_cast<unsigned long long>(params.seed), out_path.c_str());
  return 0;
}

int CmdBatch(const std::vector<std::string>& args) {
  BatchPlan plan;
  plan.scenarios.clear();
  BatchOptions options;
  std::string csv_path, json_path;
  ObsSinks sinks;
  int max_size = 0;
  bool sizes_set = false;

  // A plan file gives the baseline; explicit flags override it, so the
  // file is parsed first regardless of its position among the flags.
  for (size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == "--plan") {
      std::string error;
      if (!ParsePlanFile(args[i + 1], &plan, &options, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
    }
  }
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    const std::string* v = nullptr;
    if (a == "--plan") {
      if (!(v = value("--plan"))) return 2;  // parsed in the first pass
    } else if (a == "--scenarios") {
      if (!(v = value("--scenarios"))) return 2;
      plan.scenarios =
          *v == "all" ? AllScenarioNames() : SplitTrimmed(*v, ',');
    } else if (a == "--names") {
      if (!(v = value("--names"))) return 2;
      plan.query_names = SplitTrimmed(*v, ',');
    } else if (a == "--sizes") {
      if (!(v = value("--sizes"))) return 2;
      sizes_set = true;
      if (!ParseIntList(*v, &plan.sizes)) {
        std::fprintf(stderr,
                     "error: --sizes needs a comma list of positive "
                     "integers, got '%s'\n",
                     v->c_str());
        return 2;
      }
    } else if (a == "--max-size") {
      if (!(v = value("--max-size")) || !ParseIntFlag(a, *v, &max_size))
        return 2;
    } else if (a == "--seeds") {
      if (!(v = value("--seeds"))) return 2;
      if (!ParseSeedList(*v, &plan.seeds)) {
        std::fprintf(stderr,
                     "error: --seeds needs a comma list of unsigned "
                     "integers, got '%s'\n",
                     v->c_str());
        return 2;
      }
    } else if (a == "--density") {
      if (!(v = value("--density")) || !ParseDensityFlag(*v, &plan.density))
        return 2;
    } else if (a == "--threads") {
      if (!(v = value("--threads")) || !ParseIntFlag(a, *v, &options.threads))
        return 2;
    } else if (a == "--solver-threads") {
      if (!(v = value("--solver-threads")) ||
          !ParseIntFlag(a, *v, &options.solver_threads))
        return 2;
    } else if (a == "--check-oracle") {
      options.check_oracle = true;
    } else if (a == "--oracle-cutoff") {
      if (!(v = value("--oracle-cutoff")) ||
          !ParseIntFlag(a, *v, &options.oracle_cutoff))
        return 2;
    } else if (a == "--no-memoize") {
      options.memoize = false;
    } else if (a == "--witness-limit") {
      uint64_t limit = 0;
      if (!(v = value("--witness-limit")) || !ParseSeedFlag(a, *v, &limit))
        return 2;
      options.witness_limit = static_cast<size_t>(limit);
    } else if (a == "--exact-node-budget") {
      if (!(v = value("--exact-node-budget")) ||
          !ParseSeedFlag(a, *v, &options.exact_node_budget))
        return 2;
    } else if (a == "--csv") {
      if (!(v = value("--csv"))) return 2;
      csv_path = *v;
    } else if (a == "--json") {
      if (!(v = value("--json"))) return 2;
      json_path = *v;
    } else if (a == "--metrics-json") {
      if (!(v = value("--metrics-json"))) return 2;
      sinks.metrics_path = *v;
    } else if (a == "--trace-out") {
      if (!(v = value("--trace-out"))) return 2;
      sinks.trace_path = *v;
    } else {
      std::fprintf(stderr, "error: unknown batch flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (max_size > 0) {
    if (sizes_set) {
      std::fprintf(stderr,
                   "error: --sizes and --max-size are mutually exclusive\n");
      return 2;
    }
    plan.sizes.clear();
    for (int s = 2; s <= max_size; s += 2) plan.sizes.push_back(s);
    // An odd --max-size is still swept: the grid is 2,4,...,N-1,N.
    if (plan.sizes.empty() || plan.sizes.back() != max_size) {
      plan.sizes.push_back(max_size);
    }
  }
  if (plan.scenarios.empty() && plan.query_names.empty()) {
    plan.scenarios = AllScenarioNames();
  }

  std::vector<BatchJob> jobs;
  std::string error;
  if (!ExpandPlan(plan, &jobs, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  sinks.Arm();
  BatchReport report = RunBatch(jobs, options);
  PrintReportTable(report, stdout);
  if (!csv_path.empty() && !SaveReportCsv(report, csv_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!json_path.empty() && !SaveReportJson(report, json_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  int sink_rc = sinks.Flush();
  if (sink_rc != 0) return sink_rc;
  return report.mismatches == 0 ? 0 : 1;
}

int CmdStream(const std::vector<std::string>& args) {
  std::vector<std::string> positional;
  std::string updates_path, churn_kind, emit_path, csv_path, json_path;
  ChurnParams churn;
  StreamOptions options;
  ObsSinks sinks;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    const std::string* v = nullptr;
    if (a == "--updates") {
      if (!(v = value("--updates"))) return 2;
      updates_path = *v;
    } else if (a == "--churn") {
      if (!(v = value("--churn"))) return 2;
      churn_kind = *v;
    } else if (a == "--epochs") {
      if (!(v = value("--epochs")) || !ParseIntFlag(a, *v, &churn.epochs))
        return 2;
    } else if (a == "--rate") {
      if (!(v = value("--rate"))) return 2;
      if (!ParseProbability(*v, &churn.rate)) {
        std::fprintf(stderr,
                     "error: --rate needs a number in [0,1], got '%s'\n",
                     v->c_str());
        return 2;
      }
    } else if (a == "--seed") {
      if (!(v = value("--seed")) || !ParseSeedFlag(a, *v, &churn.seed))
        return 2;
    } else if (a == "--emit-updates") {
      if (!(v = value("--emit-updates"))) return 2;
      emit_path = *v;
    } else if (a == "--check-oracle") {
      options.check_oracle = true;
    } else if (a == "--solver-threads") {
      if (!(v = value("--solver-threads")) ||
          !ParseIntFlag(a, *v, &options.solver_threads))
        return 2;
    } else if (a == "--witness-limit") {
      uint64_t limit = 0;
      if (!(v = value("--witness-limit")) || !ParseSeedFlag(a, *v, &limit))
        return 2;
      options.witness_limit = static_cast<size_t>(limit);
    } else if (a == "--exact-node-budget") {
      if (!(v = value("--exact-node-budget")) ||
          !ParseSeedFlag(a, *v, &options.exact_node_budget))
        return 2;
    } else if (a == "--csv") {
      if (!(v = value("--csv"))) return 2;
      csv_path = *v;
    } else if (a == "--json") {
      if (!(v = value("--json"))) return 2;
      json_path = *v;
    } else if (a == "--metrics-json") {
      if (!(v = value("--metrics-json"))) return 2;
      sinks.metrics_path = *v;
    } else if (a == "--trace-out") {
      if (!(v = value("--trace-out"))) return 2;
      sinks.trace_path = *v;
    } else {
      positional.push_back(a);
    }
  }
  size_t consumed = 0;
  std::optional<Query> q = ResolveQuery(positional, &consumed);
  if (!q) return 2;
  if (positional.size() != consumed + 1) {
    std::fprintf(stderr, "error: expected exactly one tuple file argument\n");
    return 2;
  }
  if (updates_path.empty() == churn_kind.empty()) {
    std::fprintf(stderr,
                 "error: stream needs exactly one of --updates <file> or "
                 "--churn <kind>\n");
    return 2;
  }
  if (!churn_kind.empty() && !IsChurnKind(churn_kind)) {
    std::fprintf(stderr, "error: unknown churn kind '%s' (one of:",
                 churn_kind.c_str());
    for (const ChurnKind& k : ChurnCatalog()) {
      std::fprintf(stderr, " %s", k.name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  Database db;
  if (!LoadTuples(positional[consumed], &db)) return 2;

  UpdateLog log;
  std::string error;
  if (!updates_path.empty()) {
    if (!LoadUpdateFile(updates_path, &log, &error) ||
        !ValidateUpdateLog(log, db, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  } else {
    log = GenerateChurn(db, churn_kind, churn);
  }
  if (!emit_path.empty()) {
    std::string header = StrFormat(
        "generated by: rescq stream --churn %s --epochs %d --rate %g "
        "--seed %llu\nbase: %s (%d tuples)\n%zu update(s) in %zu epoch(s)",
        churn_kind.c_str(), churn.epochs, churn.rate,
        static_cast<unsigned long long>(churn.seed),
        positional[consumed].c_str(), db.NumActiveTuples(), log.size(),
        log.epochs.size());
    if (churn_kind.empty()) header = "replayed from: " + updates_path;
    if (!SaveUpdateFile(log, emit_path, header, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }

  std::string query_name = positional[0] == "--name" ? positional[1] : "query";
  sinks.Arm();
  StreamReport report = RunStream(*q, query_name, db, log, options);
  PrintStreamTable(report, stdout);
  if (!csv_path.empty() && !SaveStreamCsv(report, csv_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!json_path.empty() && !SaveStreamJson(report, json_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  int sink_rc = sinks.Flush();
  if (sink_rc != 0) return sink_rc;
  return report.mismatches == 0 ? 0 : 1;
}

// The serving process's one server (or router) instance, for the
// signal handlers. SignalStop is async-signal-safe (a single pipe
// write).
ResilienceServer* g_server = nullptr;
ShardRouter* g_router = nullptr;

extern "C" void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->SignalStop();
  if (g_router != nullptr) g_router->SignalStop();
}

int CmdServe(const std::vector<std::string>& args) {
  ServerOptions options;
  options.threads = 4;
  std::string metrics_path;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    const std::string* v = nullptr;
    uint64_t u = 0;
    if (a == "--host") {
      if (!(v = value("--host"))) return 2;
      options.host = *v;
    } else if (a == "--port") {
      if (!(v = value("--port")) || !ParseSeedFlag(a, *v, &u)) return 2;
      if (u > 65535) {
        std::fprintf(stderr, "error: --port needs 0..65535, got '%s'\n",
                     v->c_str());
        return 2;
      }
      options.port = static_cast<int>(u);
    } else if (a == "--threads") {
      if (!(v = value("--threads")) || !ParseIntFlag(a, *v, &options.threads))
        return 2;
    } else if (a == "--solver-threads") {
      if (!(v = value("--solver-threads")) ||
          !ParseIntFlag(a, *v, &options.limits.solver_threads))
        return 2;
    } else if (a == "--max-sessions") {
      if (!(v = value("--max-sessions")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.max_sessions = static_cast<size_t>(u);
    } else if (a == "--max-base-tuples") {
      if (!(v = value("--max-base-tuples")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.max_base_tuples = static_cast<size_t>(u);
    } else if (a == "--max-epoch-updates") {
      if (!(v = value("--max-epoch-updates")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.max_epoch_updates = static_cast<size_t>(u);
    } else if (a == "--default-witness-limit") {
      if (!(v = value("--default-witness-limit")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.default_witness_limit = static_cast<size_t>(u);
    } else if (a == "--max-witness-limit") {
      if (!(v = value("--max-witness-limit")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.max_witness_limit = static_cast<size_t>(u);
    } else if (a == "--default-node-budget") {
      if (!(v = value("--default-node-budget")) ||
          !ParseSeedFlag(a, *v, &options.limits.default_node_budget))
        return 2;
    } else if (a == "--max-node-budget") {
      if (!(v = value("--max-node-budget")) ||
          !ParseSeedFlag(a, *v, &options.limits.max_node_budget))
        return 2;
    } else if (a == "--max-resident-mb") {
      if (!(v = value("--max-resident-mb")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.max_resident_bytes = u * 1024 * 1024;
    } else if (a == "--evict-idle-ms") {
      if (!(v = value("--evict-idle-ms")) || !ParseSeedFlag(a, *v, &u))
        return 2;
      options.limits.evict_idle_ms = static_cast<int64_t>(u);
    } else if (a == "--no-load") {
      options.limits.allow_load = false;
    } else if (a == "--no-shutdown") {
      options.limits.allow_shutdown = false;
    } else if (a == "--metrics-json") {
      if (!(v = value("--metrics-json"))) return 2;
      metrics_path = *v;
    } else {
      std::fprintf(stderr, "error: unknown serve flag '%s'\n", a.c_str());
      return 2;
    }
  }
  // server.* counters and latency histograms are the daemon's whole
  // observability story, so serving always collects them.
  obs::SetMetricsEnabled(true);

  EngineOptions engine_options;
  engine_options.witness_limit =
      static_cast<size_t>(options.limits.max_witness_limit);
  engine_options.exact_node_budget = options.limits.max_node_budget;
  ResilienceEngine engine(engine_options);
  ResilienceServer server(options, &engine);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // The announced line is the startup contract: tests and the smoke
  // harness parse the resolved port out of it.
  std::printf("listening on %s:%d\n", options.host.c_str(), server.port());
  std::fflush(stdout);
  g_server = &server;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  server.Wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_server = nullptr;
  std::printf("server stopped\n");
  if (!metrics_path.empty() &&
      !obs::WriteMetricsJson(obs::GlobalRegistry(), metrics_path)) {
    std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                 metrics_path.c_str());
    return 2;
  }
  return 0;
}

int CmdRoute(const std::vector<std::string>& args) {
  RouterOptions options;
  size_t spawn_shards = 0;
  int spawn_solver_threads = 1;
  std::string metrics_path;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    const std::string* v = nullptr;
    uint64_t u = 0;
    if (a == "--host") {
      if (!(v = value("--host"))) return 2;
      options.host = *v;
    } else if (a == "--port") {
      if (!(v = value("--port")) || !ParseSeedFlag(a, *v, &u)) return 2;
      if (u > 65535) {
        std::fprintf(stderr, "error: --port needs 0..65535, got '%s'\n",
                     v->c_str());
        return 2;
      }
      options.port = static_cast<int>(u);
    } else if (a == "--threads") {
      if (!(v = value("--threads")) || !ParseIntFlag(a, *v, &options.threads))
        return 2;
    } else if (a == "--shard") {
      if (!(v = value("--shard"))) return 2;
      ShardSpec spec;
      std::string error;
      if (!ParseShardSpec(*v, &spec, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 2;
      }
      options.shards.push_back(spec);
    } else if (a == "--shards") {
      if (!(v = value("--shards")) || !ParseSeedFlag(a, *v, &u)) return 2;
      if (u == 0 || u > 64) {
        std::fprintf(stderr, "error: --shards needs 1..64, got '%s'\n",
                     v->c_str());
        return 2;
      }
      spawn_shards = static_cast<size_t>(u);
    } else if (a == "--solver-threads") {
      if (!(v = value("--solver-threads")) ||
          !ParseIntFlag(a, *v, &spawn_solver_threads))
        return 2;
    } else if (a == "--connect-timeout-ms") {
      if (!(v = value("--connect-timeout-ms")) ||
          !ParseIntFlag(a, *v, &options.connect_timeout_ms))
        return 2;
    } else if (a == "--request-timeout-ms") {
      if (!(v = value("--request-timeout-ms")) ||
          !ParseIntFlag(a, *v, &options.request_timeout_ms))
        return 2;
    } else if (a == "--retries") {
      if (!(v = value("--retries")) || !ParseIntFlag(a, *v, &options.retries))
        return 2;
    } else if (a == "--backoff-ms") {
      if (!(v = value("--backoff-ms")) ||
          !ParseIntFlag(a, *v, &options.backoff_ms))
        return 2;
    } else if (a == "--down-cooldown-ms") {
      if (!(v = value("--down-cooldown-ms")) ||
          !ParseIntFlag(a, *v, &options.down_cooldown_ms))
        return 2;
    } else if (a == "--no-shutdown") {
      options.allow_shutdown = false;
    } else if (a == "--metrics-json") {
      if (!(v = value("--metrics-json"))) return 2;
      metrics_path = *v;
    } else {
      std::fprintf(stderr, "error: unknown route flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (spawn_shards > 0 && !options.shards.empty()) {
    std::fprintf(stderr, "error: --shards and --shard are exclusive\n");
    return 2;
  }
  if (spawn_shards == 0 && options.shards.empty()) {
    std::fprintf(stderr,
                 "error: route needs backends (--shard host:port ... or "
                 "--shards N)\n");
    return 2;
  }
  obs::SetMetricsEnabled(true);

  InProcessShards spawned;
  if (spawn_shards > 0) {
    ServerOptions base;
    base.threads = 2;
    base.limits.solver_threads = spawn_solver_threads;
    std::string error;
    if (!spawned.Start(spawn_shards, base, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    options.shards = spawned.specs();
    for (size_t i = 0; i < options.shards.size(); ++i) {
      std::printf("shard %zu: %s\n", i, options.shards[i].Label().c_str());
    }
  }

  ShardRouter router(options);
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  // The announced line is the startup contract, like serve's
  // "listening on ..." — harnesses parse the resolved port out of it.
  std::printf("routing on %s:%d across %zu shards\n", options.host.c_str(),
              router.port(), options.shards.size());
  std::fflush(stdout);
  g_router = &router;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  router.Wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_router = nullptr;
  spawned.Stop();
  std::printf("router stopped\n");
  if (!metrics_path.empty() &&
      !obs::WriteMetricsJson(obs::GlobalRegistry(), metrics_path)) {
    std::fprintf(stderr, "error: cannot write metrics file '%s'\n",
                 metrics_path.c_str());
    return 2;
  }
  return 0;
}

int CmdLoadgen(const std::vector<std::string>& args) {
  LoadgenOptions options;
  std::string csv_path, json_path;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "error: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    const std::string* v = nullptr;
    if (a == "--host") {
      if (!(v = value("--host"))) return 2;
      options.host = *v;
    } else if (a == "--port") {
      if (!(v = value("--port")) || !ParseIntFlag(a, *v, &options.port))
        return 2;
    } else if (a == "--connections") {
      if (!(v = value("--connections")) ||
          !ParseIntFlag(a, *v, &options.connections))
        return 2;
    } else if (a == "--scenario") {
      if (!(v = value("--scenario"))) return 2;
      options.scenario = *v;
    } else if (a == "--query") {
      if (!(v = value("--query"))) return 2;
      options.query = *v;
    } else if (a == "--size") {
      if (!(v = value("--size")) || !ParseIntFlag(a, *v, &options.size))
        return 2;
    } else if (a == "--density") {
      if (!(v = value("--density")) ||
          !ParseDensityFlag(*v, &options.density))
        return 2;
    } else if (a == "--churn") {
      if (!(v = value("--churn"))) return 2;
      options.churn = *v;
    } else if (a == "--epochs") {
      if (!(v = value("--epochs")) || !ParseIntFlag(a, *v, &options.epochs))
        return 2;
    } else if (a == "--rate") {
      if (!(v = value("--rate"))) return 2;
      if (!ParseProbability(*v, &options.rate)) {
        std::fprintf(stderr,
                     "error: --rate needs a number in [0,1], got '%s'\n",
                     v->c_str());
        return 2;
      }
    } else if (a == "--seed") {
      if (!(v = value("--seed")) || !ParseSeedFlag(a, *v, &options.seed))
        return 2;
    } else if (a == "--check-oracle") {
      options.check_oracle = true;
    } else if (a == "--witness-limit") {
      if (!(v = value("--witness-limit")) ||
          !ParseSeedFlag(a, *v, &options.witness_limit))
        return 2;
    } else if (a == "--node-budget") {
      if (!(v = value("--node-budget")) ||
          !ParseSeedFlag(a, *v, &options.node_budget))
        return 2;
    } else if (a == "--session-prefix") {
      if (!(v = value("--session-prefix"))) return 2;
      options.session_prefix = *v;
    } else if (a == "--timeout-ms") {
      if (!(v = value("--timeout-ms")) ||
          !ParseIntFlag(a, *v, &options.timeout_ms))
        return 2;
    } else if (a == "--csv") {
      if (!(v = value("--csv"))) return 2;
      csv_path = *v;
    } else if (a == "--json") {
      if (!(v = value("--json"))) return 2;
      json_path = *v;
    } else {
      std::fprintf(stderr, "error: unknown loadgen flag '%s'\n", a.c_str());
      return 2;
    }
  }
  if (options.port <= 0) {
    std::fprintf(stderr,
                 "error: loadgen needs --port (the port `rescq serve` "
                 "announced)\n");
    return 2;
  }

  LoadgenReport report = RunLoadgen(options);
  PrintLoadgenTable(report, stdout);
  std::string error;
  if (!csv_path.empty() && !SaveLoadgenCsv(report, csv_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!json_path.empty() && !SaveLoadgenJson(report, json_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  if (!report.error.empty()) return 2;
  return (report.oracle_mismatches == 0 && report.err_replies == 0) ? 0 : 1;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "help" || cmd == "--help" || cmd == "-h") return Usage(stdout);
  if (cmd == "classify") return CmdClassify(args);
  if (cmd == "resilience") return CmdResilience(args);
  if (cmd == "explain") return CmdExplain(args);
  if (cmd == "catalog") return CmdCatalog(args);
  if (cmd == "gen") return CmdGen(args);
  if (cmd == "batch") return CmdBatch(args);
  if (cmd == "stream") return CmdStream(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "route") return CmdRoute(args);
  if (cmd == "loadgen") return CmdLoadgen(args);
  std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd.c_str());
  return Usage(stderr);
}

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) { return rescq::Run(argc, argv); }
