// Property tests for the witness engine: every enumerated witness must be
// internally consistent, enumeration must be complete against a naive
// reference evaluator, and deactivation must behave like set difference.

#include <gtest/gtest.h>

#include <set>

#include "complexity/catalog.h"
#include "cq/parser.h"
#include "db/witness.h"
#include "util/rng.h"

namespace rescq {
namespace {

Database RandomDatabase(const Query& q, int domain, int tuples, Rng& rng) {
  Database db;
  std::vector<Value> dom;
  for (int i = 0; i < domain; ++i) dom.push_back(db.InternIndexed("c", i));
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < tuples; ++t) {
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

// Naive reference: enumerate all |domain|^|vars| assignments and test
// each atom by scanning the relation.
std::set<std::vector<Value>> ReferenceWitnesses(const Query& q,
                                                const Database& db) {
  std::set<std::vector<Value>> out;
  std::vector<Value> domain_values;
  for (Value v = 0; v < db.domain_size(); ++v) domain_values.push_back(v);
  std::vector<Value> assignment(static_cast<size_t>(q.num_vars()), 0);
  std::function<void(int)> rec = [&](int var) {
    if (var == q.num_vars()) {
      for (const Atom& atom : q.atoms()) {
        int rel = db.RelationId(atom.relation);
        if (rel < 0 || db.relation_arity(rel) != atom.arity()) return;
        std::vector<Value> want;
        for (VarId v : atom.vars) {
          want.push_back(assignment[static_cast<size_t>(v)]);
        }
        std::optional<TupleId> t = db.FindTuple(atom.relation, want);
        if (!t.has_value() || !db.IsActive(*t)) return;
      }
      out.insert(assignment);
      return;
    }
    for (Value v : domain_values) {
      assignment[static_cast<size_t>(var)] = v;
      rec(var + 1);
    }
  };
  rec(0);
  return out;
}

class WitnessCompleteness : public ::testing::TestWithParam<const char*> {};

TEST_P(WitnessCompleteness, MatchesNaiveEvaluator) {
  Query q = MustParseQuery(GetParam());
  Rng rng(std::hash<std::string>()(GetParam()));
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 4, 7, rng);
    std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
    std::set<std::vector<Value>> got;
    for (const Witness& w : ws) got.insert(w.assignment);
    EXPECT_EQ(got.size(), ws.size()) << "duplicate witnesses";
    EXPECT_EQ(got, ReferenceWitnesses(q, db)) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, WitnessCompleteness,
    ::testing::Values("R(x,y), R(y,z)", "R(x), S(x,y), R(y)",
                      "R(x,y), S(y,z), T(z,x)", "A(x), R(x,y), R(y,x)",
                      "R(x,x), R(x,y), A(y)",
                      "A(x), R(x,y), R(y,z), R(z,z)",
                      "T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return "q" + std::to_string(info.index);
    });

TEST(WitnessConsistency, EveryWitnessTupleMatchesItsAtom) {
  Query q = MustParseQuery("A(x), R(x,y), R(y,z), R(z,y)");
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 5, 10, rng);
    for (const Witness& w : EnumerateWitnesses(q, db, kNoWitnessLimit)) {
      for (int i = 0; i < q.num_atoms(); ++i) {
        const Atom& atom = q.atom(i);
        TupleId t = w.atom_tuples[static_cast<size_t>(i)];
        ASSERT_TRUE(db.IsActive(t));
        const std::vector<Value>& row = db.Row(t);
        ASSERT_EQ(static_cast<int>(row.size()), atom.arity());
        for (int c = 0; c < atom.arity(); ++c) {
          EXPECT_EQ(row[static_cast<size_t>(c)],
                    w.assignment[static_cast<size_t>(
                        atom.vars[static_cast<size_t>(c)])]);
        }
      }
    }
  }
}

TEST(WitnessDeactivation, BehavesLikeSetDifference) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Rng rng(11);
  Database db = RandomDatabase(q, 5, 15, rng);
  std::vector<Witness> all = EnumerateWitnesses(q, db, kNoWitnessLimit);
  // Deactivate one tuple; surviving witnesses = those not using it.
  ASSERT_FALSE(all.empty());
  TupleId victim = all.front().endo_tuples.front();
  db.SetActive(victim, false);
  std::set<std::vector<Value>> got;
  for (const Witness& w : EnumerateWitnesses(q, db, kNoWitnessLimit)) {
    got.insert(w.assignment);
  }
  std::set<std::vector<Value>> expect;
  for (const Witness& w : all) {
    bool uses = false;
    for (TupleId t : w.atom_tuples) uses = uses || t == victim;
    if (!uses) expect.insert(w.assignment);
  }
  EXPECT_EQ(got, expect);
}

TEST(WitnessTupleSets, SupersetsAreFineSubsetsDecide) {
  // Tuple-set family from a db where one witness's set strictly contains
  // another's: resilience equals hitting the smaller one.
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  db.AddTuple("R", {a, a});          // witness (a,a,a): {R(a,a)}
  db.AddTuple("R", {a, b});          // witness (a,a,b)... (a,b,?) none
  Query q = MustParseQuery("R(x,y), R(y,z)");
  std::vector<std::vector<TupleId>> sets = WitnessTupleSets(q, db);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].size() + sets[1].size(), 3u);  // sizes 1 and 2
}

TEST(WitnessStreaming, ForEachMatchesEnumerate) {
  Query q = MustParseQuery("A(x), R(x,y), R(y,z), R(z,y)");
  Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 5, 10, rng);
    std::vector<Witness> materialized = EnumerateWitnesses(q, db, kNoWitnessLimit);
    std::vector<std::vector<Value>> streamed;
    bool complete = ForEachWitness(q, db, [&](const Witness& w) {
      streamed.push_back(w.assignment);
      return true;
    });
    EXPECT_TRUE(complete);
    ASSERT_EQ(streamed.size(), materialized.size());
    for (size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i], materialized[i].assignment);
    }
  }
}

TEST(WitnessStreaming, CallbackStopsEnumerationEarly) {
  Database db;
  for (int i = 0; i < 100; ++i) {
    db.AddTuple("R", {db.InternIndexed("a", i)});
  }
  Query q = MustParseQuery("R(x)");
  int seen = 0;
  bool complete = ForEachWitness(q, db, [&](const Witness&) {
    return ++seen < 7;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(seen, 7);
}

TEST(WitnessStreaming, FamilyCollectionDeduplicatesOnTheFly) {
  // Two witnesses share one endogenous tuple-set (the exogenous S atom
  // varies): the family has one set, but two witnesses were seen.
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b"), c = db.Intern("c");
  db.AddTuple("R", {a, b});
  db.AddTuple("S", {b, b});
  db.AddTuple("S", {b, c});
  Query q = MustParseQuery("R(x,y), S^x(y,z)");
  WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
  EXPECT_EQ(family.witnesses, 2u);
  ASSERT_EQ(family.sets.size(), 1u);
  EXPECT_EQ(family.sets[0].len, 1u);
  EXPECT_EQ(
      WitnessTupleSets(q, db),
      family.Materialize());
}

TEST(WitnessScale, LargeChainInstanceEnumerates) {
  // A path graph of 400 edges: 399 witnesses, no blow-up.
  Database db;
  Query q = MustParseQuery("R(x,y), R(y,z)");
  for (int i = 0; i < 400; ++i) {
    db.AddTuple("R", {db.InternIndexed("n", i), db.InternIndexed("n", i + 1)});
  }
  EXPECT_EQ(EnumerateWitnesses(q, db, kNoWitnessLimit).size(), 399u);
}

}  // namespace
}  // namespace rescq
