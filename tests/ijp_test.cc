#include <gtest/gtest.h>

#include "complexity/catalog.h"
#include "cq/parser.h"
#include "ijp/examples.h"
#include "ijp/ijp.h"
#include "ijp/ijp_search.h"
#include "ijp/ijp_vc_reduction.h"
#include "reductions/vertex_cover.h"
#include "resilience/exact_solver.h"

namespace rescq {
namespace {

// --- The four worked examples of Appendix C.1 ---------------------------------

TEST(IjpChecker, Example58Qvc) {
  IjpExample ex = BuildIjpExample58();
  IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b);
  EXPECT_TRUE(r.is_ijp) << r.explanation;
  EXPECT_EQ(r.resilience, ex.expected_resilience);
}

TEST(IjpChecker, Example59Triangle) {
  IjpExample ex = BuildIjpExample59();
  IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b);
  EXPECT_TRUE(r.is_ijp) << r.explanation;
  EXPECT_EQ(r.resilience, 2);
}

TEST(IjpChecker, Example60Z5Repaired) {
  IjpExample ex = BuildIjpExample60();
  IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b);
  EXPECT_TRUE(r.is_ijp) << r.explanation;
  EXPECT_EQ(r.resilience, 4);
}

TEST(IjpChecker, Example60AsPrintedHasTheErratum) {
  // The paper's own 21-tuple database: the undrawn witness (5,2,3)
  // breaks the or-property on the A(13) side.
  IjpExample ex = BuildIjpExample60AsPrinted();
  // Base resilience still matches the paper's claim...
  ResilienceResult base = ComputeResilienceExact(ex.query, ex.db);
  EXPECT_EQ(base.resilience, 4);
  // ...but condition 5 fails.
  IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b);
  EXPECT_FALSE(r.is_ijp);
  EXPECT_EQ(r.failed_condition, 5) << r.explanation;
}

TEST(IjpChecker, Example61FailsCondition4) {
  // The paper's deliberate non-example: condition 4 requires B^x(1) and
  // A^x(3), which are absent.
  IjpExample ex = BuildIjpExample61();
  IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b);
  EXPECT_FALSE(r.is_ijp);
  EXPECT_EQ(r.failed_condition, 4) << r.explanation;
}

TEST(IjpChecker, Example61RepairedFailsOrProperty) {
  // Adding the two missing exogenous tuples satisfies condition 4 but, as
  // the paper observes, then "condition 2 and 5 are not true anymore".
  IjpExample ex = BuildIjpExample61();
  ex.db.AddTuple("B", {ex.db.Intern("n_1")});
  ex.db.AddTuple("A", {ex.db.Intern("n_3")});
  IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b);
  EXPECT_FALSE(r.is_ijp);
  EXPECT_NE(r.failed_condition, 4);
}

// --- Condition-level rejections ------------------------------------------------

TEST(IjpChecker, Condition1ComparableEndpoints) {
  // Permutation pair R(1,2), R(2,1): equal constant sets.
  Database db;
  Value a = db.Intern("1"), b = db.Intern("2");
  TupleId t1 = db.AddTuple("R", {a, b});
  TupleId t2 = db.AddTuple("R", {b, a});
  Query q = MustParseQuery("R(x,y), R(y,x)");
  IjpCheckResult r = CheckIjp(q, db, t1, t2);
  EXPECT_FALSE(r.is_ijp);
  EXPECT_EQ(r.failed_condition, 1);
}

TEST(IjpChecker, Condition2MultipleWitnesses) {
  // qvc where endpoint R(1) joins two edges.
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  TupleId r1 = db.AddTuple("R", {v1});
  db.AddTuple("R", {v2});
  TupleId r3 = db.AddTuple("R", {v3});
  db.AddTuple("S", {v1, v2});
  db.AddTuple("S", {v1, v3});
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  IjpCheckResult r = CheckIjp(q, db, r1, r3);
  EXPECT_FALSE(r.is_ijp);
  EXPECT_EQ(r.failed_condition, 2);
}

TEST(IjpChecker, Condition5NoOrProperty) {
  // Two disjoint qvc witnesses: removing an endpoint does not reduce the
  // other witness's cost, so removing *both* leaves resilience c-2... but
  // removing one leaves c-1; removing both leaves c-2 != c-1.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  TupleId r1 = db.AddTuple("R", {v("1")});
  db.AddTuple("R", {v("2")});
  db.AddTuple("S", {v("1"), v("2")});
  TupleId r3 = db.AddTuple("R", {v("3")});
  db.AddTuple("R", {v("4")});
  db.AddTuple("S", {v("3"), v("4")});
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  IjpCheckResult r = CheckIjp(q, db, r1, r3);
  EXPECT_FALSE(r.is_ijp);
  EXPECT_EQ(r.failed_condition, 5);
}

// --- Automated search (Appendix C.2) --------------------------------------------

TEST(IjpSearch, FindsQvcIjpWithOneJoin) {
  IjpSearchOptions options;
  options.max_joins = 1;
  IjpSearchResult r = SearchForIjp(CatalogQuery("q_vc"), options);
  ASSERT_TRUE(r.found) << r.description;
  EXPECT_EQ(r.joins, 1);
  // Verify the found database independently.
  IjpCheckResult check = CheckIjp(CatalogQuery("q_vc"), r.db, r.endpoint_a,
                                  r.endpoint_b);
  EXPECT_TRUE(check.is_ijp);
}

TEST(IjpSearch, FindsQchainIjpWithOneJoin) {
  IjpSearchOptions options;
  options.max_joins = 1;
  IjpSearchResult r = SearchForIjp(CatalogQuery("q_chain"), options);
  ASSERT_TRUE(r.found) << r.description;
  EXPECT_EQ(r.resilience, 1);
}

TEST(IjpSearch, FindsTriangleIjpWithThreeJoins) {
  // Example 62: three joins, nine constants, Bell(9) = 21147 partitions.
  IjpSearchOptions options;
  options.min_joins = 3;
  options.max_joins = 3;
  IjpSearchResult r = SearchForIjp(CatalogQuery("q_triangle"), options);
  ASSERT_TRUE(r.found) << r.description;
  EXPECT_EQ(r.joins, 3);
  EXPECT_EQ(r.resilience, 2);
  IjpCheckResult check = CheckIjp(CatalogQuery("q_triangle"), r.db,
                                  r.endpoint_a, r.endpoint_b);
  EXPECT_TRUE(check.is_ijp);
}

// Conjecture 49's two directions, swept over named queries: hard queries
// yield an IJP within three joins; PTIME queries yield none.
struct SearchCase {
  const char* name;
  bool expect_found;
};

class IjpSearchSweep : public ::testing::TestWithParam<SearchCase> {};

TEST_P(IjpSearchSweep, HardQueriesHaveIjpsEasyOnesDoNot) {
  const SearchCase& sc = GetParam();
  IjpSearchOptions options;
  options.max_joins = 3;
  IjpSearchResult r = SearchForIjp(CatalogQuery(sc.name), options);
  EXPECT_EQ(r.found, sc.expect_found) << r.description;
  if (r.found) {
    IjpCheckResult check =
        CheckIjp(CatalogQuery(sc.name), r.db, r.endpoint_a, r.endpoint_b);
    EXPECT_TRUE(check.is_ijp) << check.explanation;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, IjpSearchSweep,
    ::testing::Values(SearchCase{"q_achain", true},   // Lemma 53
                      SearchCase{"q_bchain", true},   // Lemma 52
                      SearchCase{"q_acchain", true},  // Lemma 54
                      SearchCase{"cf_p", true},       // Prop 32 (exogenous!)
                      SearchCase{"z1", true},         // Thm 28
                      SearchCase{"q_ABperm", true},   // Prop 34
                      SearchCase{"q_ACconf", false},  // Prop 12 (PTIME)
                      SearchCase{"z3", false}),       // Prop 36 (PTIME)
    [](const ::testing::TestParamInfo<SearchCase>& info) {
      return std::string(info.param.name);
    });

TEST(IjpSearch, EasyQueryHasNoSmallIjp) {
  // q_perm is PTIME; the search should come up empty (Conjecture 49's
  // converse direction).
  IjpSearchOptions options;
  options.max_joins = 2;
  IjpSearchResult r = SearchForIjp(CatalogQuery("q_perm"), options);
  EXPECT_FALSE(r.found) << r.description;
}

TEST(IjpSearch, EasyApermHasNoSmallIjp) {
  IjpSearchOptions options;
  options.max_joins = 2;
  IjpSearchResult r = SearchForIjp(CatalogQuery("q_Aperm"), options);
  EXPECT_FALSE(r.found) << r.description;
}

// --- The generalized VC reduction (Conjecture 49 / Figure 8) ---------------------

// Orients a graph so every vertex is only ever a left or a right
// endpoint (valid for bipartite-style instances used here).
Graph Star(int leaves) {
  Graph g;
  g.num_vertices = leaves + 1;
  for (int i = 1; i <= leaves; ++i) g.edges.emplace_back(0, i);
  return g;
}

Graph EvenCycleOriented(int n) {
  // Even cycle with edges oriented from even to odd vertices.
  Graph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    int j = (i + 1) % n;
    int u = i % 2 == 0 ? i : j;
    int v = i % 2 == 0 ? j : i;
    g.edges.emplace_back(u, v);
  }
  return g;
}

class IjpVcComposition : public ::testing::TestWithParam<const char*> {};

TEST_P(IjpVcComposition, ResilienceEqualsVcPlusEdgesTimesCMinus1) {
  IjpExample ex;
  std::string name = GetParam();
  if (name == "q_vc") {
    ex = BuildIjpExample58();
  } else if (name == "q_triangle") {
    ex = BuildIjpExample59();
  } else {
    ex = BuildIjpExample60();
  }
  // Endpoint constant sets must be disjoint for the construction;
  // Example 59/60 endpoints are disjoint, Example 58's too.
  for (const Graph& g : {Star(3), EvenCycleOriented(4), EvenCycleOriented(6)}) {
    std::optional<IjpVcInstance> inst =
        BuildIjpVcInstance(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b,
                           ex.expected_resilience, g);
    if (!inst.has_value()) {
      // Star orientation: center is always left; cycles alternate. Both
      // are role-consistent, so this must not happen.
      FAIL() << "construction rejected a role-consistent orientation";
    }
    ResilienceResult r = ComputeResilienceExact(inst->query, inst->db);
    EXPECT_EQ(r.resilience, inst->expected_resilience)
        << name << " on graph with " << g.edges.size() << " edges";
  }
}

INSTANTIATE_TEST_SUITE_P(Paper, IjpVcComposition,
                         ::testing::Values("q_vc", "q_triangle", "z5"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(IjpVcReduction, RejectsRoleInconsistentOrientation) {
  IjpExample ex = BuildIjpExample59();
  Graph path;  // 0 -> 1, 1 -> 2: vertex 1 plays both roles
  path.num_vertices = 3;
  path.edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(BuildIjpVcInstance(ex.query, ex.db, ex.endpoint_a,
                                  ex.endpoint_b, 2, path)
                   .has_value());
}

TEST(IjpVcReduction, RejectsSharedEndpointConstants) {
  // q_chain IJP R(1,2),R(2,3): endpoints share constant 2.
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  TupleId a = db.AddTuple("R", {v1, v2});
  TupleId b = db.AddTuple("R", {v2, v3});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  EXPECT_FALSE(BuildIjpVcInstance(q, db, a, b, 1, Star(2)).has_value());
}

}  // namespace
}  // namespace rescq
