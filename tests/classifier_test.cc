#include <gtest/gtest.h>

#include "complexity/classifier.h"
#include "cq/parser.h"

namespace rescq {
namespace {

// --- The big sweep: every named query in the paper classifies as published.

class CatalogClassification : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(CatalogClassification, MatchesPaperVerdict) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  Classification c = ClassifyResilience(q);
  EXPECT_EQ(c.complexity, entry.expected)
      << entry.name << " (" << entry.reference << "): got pattern '"
      << c.pattern << "', reason: " << c.reason;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, CatalogClassification, ::testing::ValuesIn(PaperCatalog()),
    [](const ::testing::TestParamInfo<CatalogEntry>& info) {
      return info.param.name;
    });

// The complexity of RES(q) is invariant under globally swapping the
// columns of any binary relation (it is a relabeling of the stored
// tuples). The classifier must agree with itself across that symmetry
// for every named query.
TEST_P(CatalogClassification, InvariantUnderColumnSwap) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  Complexity base = ClassifyResilience(q).complexity;
  for (const std::string& rel : q.RelationNames()) {
    if (q.RelationArity(rel) != 2) continue;
    std::vector<Atom> atoms = q.atoms();
    for (Atom& a : atoms) {
      if (a.relation == rel) std::swap(a.vars[0], a.vars[1]);
    }
    Query swapped(std::move(atoms), q.var_names());
    EXPECT_EQ(static_cast<int>(ClassifyResilience(swapped).complexity),
              static_cast<int>(base))
        << entry.name << " with " << rel << " swapped";
  }
}

// ... and under renaming every relation (prefixing preserves structure).
TEST_P(CatalogClassification, InvariantUnderRelationRenaming) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  std::vector<Atom> atoms = q.atoms();
  for (Atom& a : atoms) a.relation = "Q" + a.relation;
  Query renamed(std::move(atoms), q.var_names());
  EXPECT_EQ(static_cast<int>(ClassifyResilience(renamed).complexity),
            static_cast<int>(ClassifyResilience(q).complexity))
      << entry.name;
}

// --- Decisive patterns for the flagship queries --------------------------------

TEST(Classifier, TrianglePattern) {
  Classification c = ClassifyResilience(MustParseQuery("R(x,y), S(y,z), T(z,x)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
  EXPECT_EQ(c.pattern, "triad");
}

TEST(Classifier, QvcPattern) {
  Classification c = ClassifyResilience(MustParseQuery("R(x), S(x,y), R(y)"));
  EXPECT_EQ(c.pattern, "unary-path");
}

TEST(Classifier, QchainPattern) {
  Classification c = ClassifyResilience(MustParseQuery("R(x,y), R(y,z)"));
  EXPECT_EQ(c.pattern, "chain");
}

TEST(Classifier, ABpermPattern) {
  Classification c =
      ClassifyResilience(MustParseQuery("A(x), R(x,y), R(y,x), B(y)"));
  EXPECT_EQ(c.pattern, "bound-permutation");
}

TEST(Classifier, ApermPattern) {
  Classification c = ClassifyResilience(MustParseQuery("A(x), R(x,y), R(y,x)"));
  EXPECT_EQ(c.pattern, "unbound-permutation");
  EXPECT_EQ(c.complexity, Complexity::kPTime);
}

TEST(Classifier, CfpPattern) {
  Classification c =
      ClassifyResilience(MustParseQuery("R(x,y), H^x(x,z), R(z,y)"));
  EXPECT_EQ(c.pattern, "confluence-exogenous-path");
}

TEST(Classifier, RatsIsEasyViaDomination) {
  Classification c =
      ClassifyResilience(MustParseQuery("R(x,y), A(x), T(z,x), S(y,z)"));
  EXPECT_EQ(c.complexity, Complexity::kPTime);
  EXPECT_TRUE(c.normalized.IsRelationExogenous("R"));
  EXPECT_TRUE(c.normalized.IsRelationExogenous("T"));
}

// --- Structural generalizations beyond the named queries -----------------------

TEST(Classifier, ChainExpansionWithBinaryRelationIsHard) {
  // Prop 30: any query whose only self-join is a 2-chain is hard; here the
  // chain is embedded among fresh binary relations.
  Classification c = ClassifyResilience(
      MustParseQuery("U(v,x), R(x,y), R(y,z), V(z,w)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
  EXPECT_EQ(c.pattern, "chain");
}

TEST(Classifier, FourChainIsHard) {
  Classification c = ClassifyResilience(
      MustParseQuery("R(x,y), R(y,z), R(z,w), R(w,v)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
  EXPECT_EQ(c.pattern, "k-chain");
}

TEST(Classifier, AC3confUnaryVariationIsHard) {
  // Prop 40: adding unary relations to q_AC3conf keeps it hard.
  Classification c = ClassifyResilience(MustParseQuery(
      "A(x), P(x), R(x,y), B(y), R(z,y), R(z,w), C(w), D(w)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
}

TEST(Classifier, BinaryPathEmbedded) {
  Classification c = ClassifyResilience(
      MustParseQuery("A(x), R(x,y), S(y,z), R(z,w), B(w)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
  EXPECT_EQ(c.pattern, "binary-path");
}

TEST(Classifier, UnaryPathEmbedded) {
  Classification c =
      ClassifyResilience(MustParseQuery("R(x), S(x,y), T(y,z), R(z)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
  EXPECT_EQ(c.pattern, "unary-path");
}

// --- Normalization interplay ---------------------------------------------------

TEST(Classifier, NonMinimalSelfJoinVariationBecomesTrivial) {
  // Example 22: R(x,y),R(z,y),R(z,w),R(x,w) minimizes to R(x,y): PTIME.
  Classification c =
      ClassifyResilience(MustParseQuery("R(x,y), R(z,y), R(z,w), R(x,w)"));
  EXPECT_EQ(c.complexity, Complexity::kPTime);
  EXPECT_EQ(c.minimized.num_atoms(), 1);
}

TEST(Classifier, DominatedSelfJoinBecomesSjFree) {
  // Example 17 q2: A dominates R (and S); the endogenous part is a single
  // atom, so PTIME.
  Classification c = ClassifyResilience(
      MustParseQuery("R(x,y), A(y), R(z,y), S(y,z)"));
  EXPECT_EQ(c.complexity, Complexity::kPTime);
  EXPECT_EQ(c.pattern, "sj-free-triad-free");
}

TEST(Classifier, AllExogenousIsTrivial) {
  Classification c = ClassifyResilience(MustParseQuery("R^x(x,y), R^x(y,z)"));
  EXPECT_EQ(c.complexity, Complexity::kPTime);
  EXPECT_EQ(c.pattern, "all-exogenous");
}

// --- Components -----------------------------------------------------------------

TEST(Classifier, DisconnectedTakesHardestComponent) {
  // One component is a chain (hard), the other is a single atom (easy).
  Classification c =
      ClassifyResilience(MustParseQuery("R(x,y), R(y,z), B(w), S(w,v)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
}

TEST(Classifier, DisconnectedAllEasy) {
  Classification c = ClassifyResilience(MustParseQuery("A(x), B(y)"));
  EXPECT_EQ(c.complexity, Complexity::kPTime);
}

// --- Scope boundaries -------------------------------------------------------------

TEST(Classifier, TwoRepeatedRelationsOutOfScopeUnlessHardByTriadOrPath) {
  // Two repeated relations, no triad/path: out of scope.
  Classification c = ClassifyResilience(
      MustParseQuery("R(x,y), R(y,x), S(x,u), S(u,x)"));
  EXPECT_EQ(c.complexity, Complexity::kOutOfScope);
}

TEST(Classifier, TriadTrumpsScope) {
  // Triangle with two repeated relations: still NP-complete via triad.
  Classification c = ClassifyResilience(
      MustParseQuery("R(x,y), R(y,z), S(z,u), S(u,x)"));
  EXPECT_EQ(c.complexity, Complexity::kNpComplete);
  EXPECT_EQ(c.pattern, "triad");
}

TEST(Classifier, TernarySelfJoinOutOfScope) {
  Classification c = ClassifyResilience(
      MustParseQuery("W(x,y,z), W(y,z,u), A(x), B(u)"));
  EXPECT_EQ(c.complexity, Complexity::kOutOfScope);
}

TEST(Classifier, OpenThreeAtomCaseBeyondCatalog) {
  // A 3-R-atom pseudo-linear query not in the catalog: reported open.
  Classification c = ClassifyResilience(
      MustParseQuery("D(v,x), R(x,y), R(y,z), R(z,y), E(v,w)"));
  EXPECT_TRUE(c.complexity == Complexity::kOpen ||
              c.complexity == Complexity::kNpComplete);
}

}  // namespace
}  // namespace rescq
