#include <gtest/gtest.h>

#include "cq/parser.h"
#include "db/database.h"
#include "resilience/exact_solver.h"
#include "util/rng.h"

namespace rescq {
namespace {

TEST(HittingSet, EmptyFamily) {
  EXPECT_EQ(SolveMinHittingSet({}).size, 0);
}

TEST(HittingSet, SingletonsForced) {
  HittingSetResult r = SolveMinHittingSet({{3}, {5}, {3, 5, 7}});
  EXPECT_EQ(r.size, 2);
  EXPECT_EQ(r.chosen, (std::vector<int>{3, 5}));
}

TEST(HittingSet, DisjointSetsNeedOneEach) {
  HittingSetResult r = SolveMinHittingSet({{0, 1}, {2, 3}, {4, 5}});
  EXPECT_EQ(r.size, 3);
}

TEST(HittingSet, SharedElementCoversAll) {
  HittingSetResult r = SolveMinHittingSet({{0, 9}, {1, 9}, {2, 9}});
  EXPECT_EQ(r.size, 1);
  EXPECT_EQ(r.chosen, (std::vector<int>{9}));
}

TEST(HittingSet, SupersetsIgnored) {
  HittingSetResult r = SolveMinHittingSet({{0, 1}, {0, 1, 2, 3}});
  EXPECT_EQ(r.size, 1);
}

TEST(HittingSet, TriangleVertexCover) {
  // Sets = edges of a triangle: minimum VC is 2.
  HittingSetResult r = SolveMinHittingSet({{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(r.size, 2);
}

TEST(HittingSet, C5VertexCover) {
  // 5-cycle: VC = 3.
  HittingSetResult r =
      SolveMinHittingSet({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_EQ(r.size, 3);
}

TEST(HittingSet, PetersenGraphVertexCover) {
  // The Petersen graph has vertex cover number 6.
  std::vector<std::vector<int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},   // outer cycle
      {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},   // inner pentagram
      {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}};  // spokes
  EXPECT_EQ(SolveMinHittingSet(edges).size, 6);
}

TEST(HittingSet, ChosenElementsHitEverySet) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<int>> sets;
    int universe = 12;
    for (int s = 0; s < 15; ++s) {
      std::vector<int> set;
      int size = static_cast<int>(rng.Range(1, 4));
      for (int i = 0; i < size; ++i) {
        set.push_back(static_cast<int>(rng.Below(static_cast<uint64_t>(universe))));
      }
      sets.push_back(set);
    }
    HittingSetResult r = SolveMinHittingSet(sets);
    for (const std::vector<int>& s : sets) {
      bool hit = false;
      for (int e : s) {
        for (int c : r.chosen) hit = hit || (c == e);
      }
      EXPECT_TRUE(hit);
    }
  }
}

// Brute force over all subsets of the universe.
int BruteForceHittingSet(const std::vector<std::vector<int>>& sets,
                         int universe) {
  int best = universe;
  for (uint32_t mask = 0; mask < (1u << universe); ++mask) {
    bool all_hit = true;
    for (const std::vector<int>& s : sets) {
      bool hit = false;
      for (int e : s) hit = hit || ((mask >> e) & 1);
      all_hit = all_hit && hit;
    }
    if (all_hit) best = std::min(best, __builtin_popcount(mask));
  }
  return best;
}

TEST(HittingSet, MatchesBruteForceOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    int universe = 10;
    std::vector<std::vector<int>> sets;
    for (int s = 0; s < 8; ++s) {
      std::vector<int> set;
      int size = static_cast<int>(rng.Range(1, 3));
      for (int i = 0; i < size; ++i) {
        set.push_back(static_cast<int>(rng.Below(static_cast<uint64_t>(universe))));
      }
      sets.push_back(set);
    }
    EXPECT_EQ(SolveMinHittingSet(sets).size,
              BruteForceHittingSet(sets, universe))
        << "trial " << trial;
  }
}

TEST(HittingSet, MatchesBruteForceWithMixedSetSizes) {
  // Larger sets exercise the element-domination reduction and the
  // packing-plus-matching split of the flow bound together.
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    int universe = 12;
    std::vector<std::vector<int>> sets;
    int num_sets = static_cast<int>(rng.Range(4, 14));
    for (int s = 0; s < num_sets; ++s) {
      std::vector<int> set;
      int size = static_cast<int>(rng.Range(1, 4));
      for (int i = 0; i < size; ++i) {
        set.push_back(
            static_cast<int>(rng.Below(static_cast<uint64_t>(universe))));
      }
      sets.push_back(set);
    }
    ExactStats stats;
    HittingSetResult r = SolveMinHittingSet(sets, ExactOptions{}, &stats);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.size, BruteForceHittingSet(sets, universe))
        << "trial " << trial;
    // The chosen elements really hit everything.
    for (const std::vector<int>& s : sets) {
      bool hit = false;
      for (int e : s) {
        hit = hit || std::find(r.chosen.begin(), r.chosen.end(), e) !=
                         r.chosen.end();
      }
      EXPECT_TRUE(hit) << "trial " << trial;
    }
  }
}

TEST(HittingSet, DisjointComponentsAreSolvedIndependently) {
  // Three triangles over disjoint elements: VC(triangle) = 2 each.
  std::vector<std::vector<int>> sets;
  for (int c = 0; c < 3; ++c) {
    int base = 10 * c;
    sets.push_back({base, base + 1});
    sets.push_back({base + 1, base + 2});
    sets.push_back({base + 2, base});
  }
  ExactStats stats;
  HittingSetResult r = SolveMinHittingSet(sets, ExactOptions{}, &stats);
  EXPECT_EQ(r.size, 6);
  EXPECT_EQ(stats.components, 3);
}

TEST(HittingSet, DominatedElementsNeverNeeded) {
  // Element 9 appears only where 0 also appears: a q_vc-style private
  // element. The optimum never uses it.
  HittingSetResult r =
      SolveMinHittingSet({{0, 9, 1}, {0, 9, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(r.size, 2);
  EXPECT_TRUE(std::find(r.chosen.begin(), r.chosen.end(), 9) ==
              r.chosen.end());
}

TEST(HittingSet, NodeBudgetReturnsFeasibleIncumbent) {
  // A hard-ish instance with a budget of one node: the answer must
  // still hit every set (the greedy incumbent), just without the
  // optimality proof.
  Rng rng(99);
  std::vector<std::vector<int>> sets;
  for (int s = 0; s < 20; ++s) {
    std::vector<int> set;
    for (int i = 0; i < 3; ++i) {
      set.push_back(static_cast<int>(rng.Below(15)));
    }
    sets.push_back(set);
  }
  ExactOptions options;
  options.node_budget = 1;
  ExactStats stats;
  HittingSetResult r = SolveMinHittingSet(sets, options, &stats);
  EXPECT_TRUE(stats.node_budget_exceeded || r.proven_optimal);
  for (const std::vector<int>& s : sets) {
    bool hit = false;
    for (int e : s) {
      hit = hit ||
            std::find(r.chosen.begin(), r.chosen.end(), e) != r.chosen.end();
    }
    EXPECT_TRUE(hit);
  }
  // An unlimited run can only be at least as good.
  HittingSetResult full = SolveMinHittingSet(sets);
  EXPECT_LE(full.size, r.size);
  EXPECT_TRUE(full.proven_optimal);
}

// --- Resilience via the exact solver -----------------------------------------

TEST(ExactResilience, QueryFalseIsZero) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  Query q = MustParseQuery("R(x,y), R(y,z)");  // no chain in db... a->b only
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_FALSE(r.unbreakable);
  EXPECT_EQ(r.resilience, 0);
}

TEST(ExactResilience, PaperChainExample) {
  // Section 2 example: witnesses {t1,t2}, {t2,t3}, {t3}. t3 is forced;
  // then t1 or t2 kills the rest: resilience 2.
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  TupleId t3 = db.AddTuple("R", {v3, v3});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_EQ(r.resilience, 2);
  EXPECT_TRUE(std::find(r.contingency.begin(), r.contingency.end(), t3) !=
              r.contingency.end());
}

TEST(ExactResilience, Example11DominationFails) {
  // Section 3.2, Example 11: q^sj1_rats over
  // D = {A(1),A(5),R(1,2),R(2,3),R(3,1),R(5,1),R(2,5)} has resilience 1
  // via R(1,2), showing dominated R must stay endogenous.
  Database db;
  auto val = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {val("1")});
  db.AddTuple("A", {val("5")});
  TupleId r12 = db.AddTuple("R", {val("1"), val("2")});
  db.AddTuple("R", {val("2"), val("3")});
  db.AddTuple("R", {val("3"), val("1")});
  db.AddTuple("R", {val("5"), val("1")});
  db.AddTuple("R", {val("2"), val("5")});
  Query q = MustParseQuery("A(x), R(x,y), R(y,z), R(z,x)");
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_EQ(r.resilience, 1);
  EXPECT_EQ(r.contingency, (std::vector<TupleId>{r12}));

  // With R exogenous, the only contingency set is {A(1), A(5)}: size 2.
  Query q_exo = q.WithRelationExogenous("R");
  ResilienceResult r2 = ComputeResilienceExact(q_exo, db);
  EXPECT_EQ(r2.resilience, 2);
}

TEST(ExactResilience, UnbreakableWhenAllExogenous) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("a")});
  Query q = MustParseQuery("R^x(x,y)");
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_TRUE(r.unbreakable);
}

TEST(ExactResilience, VertexCoverQuery) {
  // q_vc over the complete graph K4 (as a digraph both ways): every edge
  // is a witness; resilience = VC(K4) = 3.
  Database db;
  std::vector<Value> v;
  for (int i = 0; i < 4; ++i) v.push_back(db.InternIndexed("v", i));
  for (int i = 0; i < 4; ++i) db.AddTuple("R", {v[static_cast<size_t>(i)]});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        db.AddTuple("S", {v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]});
      }
    }
  }
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  EXPECT_EQ(ComputeResilienceExact(q, db).resilience, 3);
}

TEST(ExactResilience, PermutationPairsAreIndependent) {
  // q_perm: witnesses are the 2-cycles; each needs one deletion (Prop 33).
  Database db;
  auto val = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("R", {val("a"), val("b")});
  db.AddTuple("R", {val("b"), val("a")});
  db.AddTuple("R", {val("c"), val("d")});
  db.AddTuple("R", {val("d"), val("c")});
  db.AddTuple("R", {val("a"), val("c")});  // no inverse: not a witness
  Query q = MustParseQuery("R(x,y), R(y,x)");
  EXPECT_EQ(ComputeResilienceExact(q, db).resilience, 2);
}

// --- Budgets & streaming ------------------------------------------------------

TEST(WitnessFamilyCollection, DeduplicatesAndCounts) {
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  db.AddTuple("R", {v3, v3});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
  EXPECT_EQ(family.witnesses, 3u);  // (1,2,3), (2,3,3), (3,3,3)
  EXPECT_EQ(family.sets.size(), 3u);
  EXPECT_FALSE(family.unbreakable);
  EXPECT_FALSE(family.budget_exceeded);
}

TEST(WitnessFamilyCollection, BudgetTripsOnlyWhenWitnessesRemain) {
  Database db;
  for (int i = 0; i < 5; ++i) {
    db.AddTuple("R", {db.InternIndexed("a", i)});
  }
  Query q = MustParseQuery("R(x)");
  // Exactly at the instance's witness count: complete, not exceeded.
  WitnessFamily at = CollectWitnessFamily(q, db, 5);
  EXPECT_EQ(at.witnesses, 5u);
  EXPECT_FALSE(at.budget_exceeded);
  // One below: truncated and flagged.
  WitnessFamily under = CollectWitnessFamily(q, db, 4);
  EXPECT_EQ(under.witnesses, 4u);
  EXPECT_TRUE(under.budget_exceeded);
}

TEST(WitnessFamilyCollection, UnbreakableShortCircuits) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("a")});
  for (int i = 0; i < 50; ++i) {
    db.AddTuple("R", {db.InternIndexed("b", i), db.InternIndexed("b", i)});
  }
  Query q = MustParseQuery("R^x(x,y)");
  WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
  EXPECT_TRUE(family.unbreakable);
  // The first empty endogenous set stops enumeration.
  EXPECT_EQ(family.witnesses, 1u);
}

TEST(ExactResilience, WitnessBudgetIsAStructuredOutcome) {
  // Exceeding the witness budget must never yield a truncated "answer":
  // the stats flag is set and the result stays at the default.
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  db.AddTuple("R", {v3, v3});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  ExactOptions options;
  options.witness_limit = 1;
  ExactStats stats;
  ResilienceResult r = ComputeResilienceExact(q, db, options, &stats);
  EXPECT_TRUE(stats.witness_budget_exceeded);
  EXPECT_EQ(stats.witnesses, 1u);
  EXPECT_EQ(r.resilience, 0);
  EXPECT_TRUE(r.contingency.empty());

  // A budget the instance fits under changes nothing.
  options.witness_limit = 100;
  ExactStats roomy;
  ResilienceResult full = ComputeResilienceExact(q, db, options, &roomy);
  EXPECT_FALSE(roomy.witness_budget_exceeded);
  EXPECT_EQ(full.resilience, 2);
}

TEST(ExactResilience, StatsReportSearchCounters) {
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  db.AddTuple("R", {v3, v3});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  ExactStats stats;
  ResilienceResult r = ComputeResilienceExact(q, db, ExactOptions{}, &stats);
  EXPECT_EQ(r.resilience, 2);
  EXPECT_EQ(stats.witnesses, 3u);
  EXPECT_EQ(stats.witness_sets, 3u);
  EXPECT_GE(stats.components, 1);
  EXPECT_GE(stats.nodes, 1u);
  EXPECT_FALSE(stats.witness_budget_exceeded);
  EXPECT_FALSE(stats.node_budget_exceeded);
}

TEST(ExactResilience, NodeBudgetKeepsContingencyValid) {
  Rng rng(7);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  for (int trial = 0; trial < 5; ++trial) {
    Database db;
    for (int e = 0; e < 20; ++e) {
      Value a = db.InternIndexed("n", static_cast<int>(rng.Below(7)));
      Value b = db.InternIndexed("n", static_cast<int>(rng.Below(7)));
      db.AddTuple("R", {a, b});
    }
    ExactOptions tight;
    tight.node_budget = 2;
    ExactStats stats;
    ResilienceResult r = ComputeResilienceExact(q, db, tight, &stats);
    ResilienceResult full = ComputeResilienceExact(q, db);
    if (full.unbreakable || full.resilience == 0) continue;
    // The budgeted answer is an upper bound whose contingency really
    // falsifies the query.
    EXPECT_GE(r.resilience, full.resilience);
    for (TupleId t : r.contingency) db.SetActive(t, false);
    EXPECT_FALSE(QueryHolds(q, db));
    db.ActivateAll();
  }
}

TEST(ExactResilience, ContingencySetActuallyBreaksQuery) {
  Rng rng(5);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    for (int e = 0; e < 15; ++e) {
      Value a = db.InternIndexed("n", static_cast<int>(rng.Below(6)));
      Value b = db.InternIndexed("n", static_cast<int>(rng.Below(6)));
      db.AddTuple("R", {a, b});
    }
    ResilienceResult r = ComputeResilienceExact(q, db);
    ASSERT_FALSE(r.unbreakable);
    for (TupleId t : r.contingency) db.SetActive(t, false);
    EXPECT_FALSE(QueryHolds(q, db));
    db.ActivateAll();
  }
}

}  // namespace
}  // namespace rescq
