#include <gtest/gtest.h>

#include "cq/parser.h"
#include "db/database.h"
#include "resilience/exact_solver.h"
#include "util/rng.h"

namespace rescq {
namespace {

TEST(HittingSet, EmptyFamily) {
  EXPECT_EQ(SolveMinHittingSet({}).size, 0);
}

TEST(HittingSet, SingletonsForced) {
  HittingSetResult r = SolveMinHittingSet({{3}, {5}, {3, 5, 7}});
  EXPECT_EQ(r.size, 2);
  EXPECT_EQ(r.chosen, (std::vector<int>{3, 5}));
}

TEST(HittingSet, DisjointSetsNeedOneEach) {
  HittingSetResult r = SolveMinHittingSet({{0, 1}, {2, 3}, {4, 5}});
  EXPECT_EQ(r.size, 3);
}

TEST(HittingSet, SharedElementCoversAll) {
  HittingSetResult r = SolveMinHittingSet({{0, 9}, {1, 9}, {2, 9}});
  EXPECT_EQ(r.size, 1);
  EXPECT_EQ(r.chosen, (std::vector<int>{9}));
}

TEST(HittingSet, SupersetsIgnored) {
  HittingSetResult r = SolveMinHittingSet({{0, 1}, {0, 1, 2, 3}});
  EXPECT_EQ(r.size, 1);
}

TEST(HittingSet, TriangleVertexCover) {
  // Sets = edges of a triangle: minimum VC is 2.
  HittingSetResult r = SolveMinHittingSet({{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(r.size, 2);
}

TEST(HittingSet, C5VertexCover) {
  // 5-cycle: VC = 3.
  HittingSetResult r =
      SolveMinHittingSet({{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_EQ(r.size, 3);
}

TEST(HittingSet, PetersenGraphVertexCover) {
  // The Petersen graph has vertex cover number 6.
  std::vector<std::vector<int>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},   // outer cycle
      {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},   // inner pentagram
      {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}};  // spokes
  EXPECT_EQ(SolveMinHittingSet(edges).size, 6);
}

TEST(HittingSet, ChosenElementsHitEverySet) {
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::vector<int>> sets;
    int universe = 12;
    for (int s = 0; s < 15; ++s) {
      std::vector<int> set;
      int size = static_cast<int>(rng.Range(1, 4));
      for (int i = 0; i < size; ++i) {
        set.push_back(static_cast<int>(rng.Below(static_cast<uint64_t>(universe))));
      }
      sets.push_back(set);
    }
    HittingSetResult r = SolveMinHittingSet(sets);
    for (const std::vector<int>& s : sets) {
      bool hit = false;
      for (int e : s) {
        for (int c : r.chosen) hit = hit || (c == e);
      }
      EXPECT_TRUE(hit);
    }
  }
}

TEST(HittingSet, MatchesBruteForceOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    int universe = 10;
    std::vector<std::vector<int>> sets;
    for (int s = 0; s < 8; ++s) {
      std::vector<int> set;
      int size = static_cast<int>(rng.Range(1, 3));
      for (int i = 0; i < size; ++i) {
        set.push_back(static_cast<int>(rng.Below(static_cast<uint64_t>(universe))));
      }
      sets.push_back(set);
    }
    // Brute force over all subsets of the universe.
    int best = universe;
    for (uint32_t mask = 0; mask < (1u << universe); ++mask) {
      bool all_hit = true;
      for (const std::vector<int>& s : sets) {
        bool hit = false;
        for (int e : s) hit = hit || ((mask >> e) & 1);
        all_hit = all_hit && hit;
      }
      if (all_hit) best = std::min(best, __builtin_popcount(mask));
    }
    EXPECT_EQ(SolveMinHittingSet(sets).size, best) << "trial " << trial;
  }
}

// --- Resilience via the exact solver -----------------------------------------

TEST(ExactResilience, QueryFalseIsZero) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  Query q = MustParseQuery("R(x,y), R(y,z)");  // no chain in db... a->b only
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_FALSE(r.unbreakable);
  EXPECT_EQ(r.resilience, 0);
}

TEST(ExactResilience, PaperChainExample) {
  // Section 2 example: witnesses {t1,t2}, {t2,t3}, {t3}. t3 is forced;
  // then t1 or t2 kills the rest: resilience 2.
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  TupleId t3 = db.AddTuple("R", {v3, v3});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_EQ(r.resilience, 2);
  EXPECT_TRUE(std::find(r.contingency.begin(), r.contingency.end(), t3) !=
              r.contingency.end());
}

TEST(ExactResilience, Example11DominationFails) {
  // Section 3.2, Example 11: q^sj1_rats over
  // D = {A(1),A(5),R(1,2),R(2,3),R(3,1),R(5,1),R(2,5)} has resilience 1
  // via R(1,2), showing dominated R must stay endogenous.
  Database db;
  auto val = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {val("1")});
  db.AddTuple("A", {val("5")});
  TupleId r12 = db.AddTuple("R", {val("1"), val("2")});
  db.AddTuple("R", {val("2"), val("3")});
  db.AddTuple("R", {val("3"), val("1")});
  db.AddTuple("R", {val("5"), val("1")});
  db.AddTuple("R", {val("2"), val("5")});
  Query q = MustParseQuery("A(x), R(x,y), R(y,z), R(z,x)");
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_EQ(r.resilience, 1);
  EXPECT_EQ(r.contingency, (std::vector<TupleId>{r12}));

  // With R exogenous, the only contingency set is {A(1), A(5)}: size 2.
  Query q_exo = q.WithRelationExogenous("R");
  ResilienceResult r2 = ComputeResilienceExact(q_exo, db);
  EXPECT_EQ(r2.resilience, 2);
}

TEST(ExactResilience, UnbreakableWhenAllExogenous) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("a")});
  Query q = MustParseQuery("R^x(x,y)");
  ResilienceResult r = ComputeResilienceExact(q, db);
  EXPECT_TRUE(r.unbreakable);
}

TEST(ExactResilience, VertexCoverQuery) {
  // q_vc over the complete graph K4 (as a digraph both ways): every edge
  // is a witness; resilience = VC(K4) = 3.
  Database db;
  std::vector<Value> v;
  for (int i = 0; i < 4; ++i) v.push_back(db.InternIndexed("v", i));
  for (int i = 0; i < 4; ++i) db.AddTuple("R", {v[static_cast<size_t>(i)]});
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        db.AddTuple("S", {v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]});
      }
    }
  }
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  EXPECT_EQ(ComputeResilienceExact(q, db).resilience, 3);
}

TEST(ExactResilience, PermutationPairsAreIndependent) {
  // q_perm: witnesses are the 2-cycles; each needs one deletion (Prop 33).
  Database db;
  auto val = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("R", {val("a"), val("b")});
  db.AddTuple("R", {val("b"), val("a")});
  db.AddTuple("R", {val("c"), val("d")});
  db.AddTuple("R", {val("d"), val("c")});
  db.AddTuple("R", {val("a"), val("c")});  // no inverse: not a witness
  Query q = MustParseQuery("R(x,y), R(y,x)");
  EXPECT_EQ(ComputeResilienceExact(q, db).resilience, 2);
}

TEST(ExactResilience, ContingencySetActuallyBreaksQuery) {
  Rng rng(5);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  for (int trial = 0; trial < 10; ++trial) {
    Database db;
    for (int e = 0; e < 15; ++e) {
      Value a = db.InternIndexed("n", static_cast<int>(rng.Below(6)));
      Value b = db.InternIndexed("n", static_cast<int>(rng.Below(6)));
      db.AddTuple("R", {a, b});
    }
    ResilienceResult r = ComputeResilienceExact(q, db);
    ASSERT_FALSE(r.unbreakable);
    for (TupleId t : r.contingency) db.SetActive(t, false);
    EXPECT_FALSE(QueryHolds(q, db));
    db.ActivateAll();
  }
}

}  // namespace
}  // namespace rescq
