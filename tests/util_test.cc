#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/combinatorics.h"
#include "util/disjoint_set.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace rescq {
namespace {

TEST(BellNumber, SmallValues) {
  EXPECT_EQ(BellNumber(0), 1u);
  EXPECT_EQ(BellNumber(1), 1u);
  EXPECT_EQ(BellNumber(2), 2u);
  EXPECT_EQ(BellNumber(3), 5u);
  EXPECT_EQ(BellNumber(4), 15u);
  EXPECT_EQ(BellNumber(5), 52u);
  EXPECT_EQ(BellNumber(9), 21147u);  // Example 62 in the paper
  EXPECT_EQ(BellNumber(10), 115975u);
}

TEST(SetPartitions, CountMatchesBellNumber) {
  for (int n = 1; n <= 8; ++n) {
    uint64_t count = 0;
    ForEachSetPartition(n, [&](const std::vector<int>&) {
      ++count;
      return true;
    });
    EXPECT_EQ(count, BellNumber(n)) << "n=" << n;
  }
}

TEST(SetPartitions, GrowthStringsAreRestricted) {
  ForEachSetPartition(5, [&](const std::vector<int>& rgs) {
    EXPECT_EQ(rgs[0], 0);
    int max_seen = 0;
    for (size_t i = 1; i < rgs.size(); ++i) {
      EXPECT_LE(rgs[i], max_seen + 1);
      max_seen = std::max(max_seen, rgs[i]);
    }
    return true;
  });
}

TEST(SetPartitions, AllDistinct) {
  std::set<std::vector<int>> seen;
  ForEachSetPartition(6, [&](const std::vector<int>& rgs) {
    EXPECT_TRUE(seen.insert(rgs).second);
    return true;
  });
  EXPECT_EQ(seen.size(), BellNumber(6));
}

TEST(SetPartitions, EarlyStop) {
  int count = 0;
  ForEachSetPartition(6, [&](const std::vector<int>&) {
    return ++count < 10;
  });
  EXPECT_EQ(count, 10);
}

TEST(NumBlocks, Works) {
  EXPECT_EQ(NumBlocks({0, 0, 0}), 1);
  EXPECT_EQ(NumBlocks({0, 1, 2}), 3);
  EXPECT_EQ(NumBlocks({0, 1, 0, 1}), 2);
}

TEST(Combinations, CountIsBinomial) {
  int count = 0;
  ForEachCombination(6, 3, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 20);
}

TEST(Combinations, Lexicographic) {
  std::vector<std::vector<int>> all;
  ForEachCombination(4, 2, [&](const std::vector<int>& idx) {
    all.push_back(idx);
    return true;
  });
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all.front(), (std::vector<int>{0, 1}));
  EXPECT_EQ(all.back(), (std::vector<int>{2, 3}));
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
}

TEST(IndexVectors, CountsAllNonEmptySubsets) {
  int count = 0;
  ForEachIndexVector(5, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 31);  // 2^5 - 1
}

TEST(Subsets, Count) {
  int count = 0;
  ForEachSubset(5, [&](uint32_t) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 32);
}

TEST(DisjointSet, UnionFind) {
  DisjointSet ds(6);
  EXPECT_TRUE(ds.Union(0, 1));
  EXPECT_TRUE(ds.Union(1, 2));
  EXPECT_FALSE(ds.Union(0, 2));
  EXPECT_TRUE(ds.Same(0, 2));
  EXPECT_FALSE(ds.Same(0, 3));
  EXPECT_TRUE(ds.Union(3, 4));
  EXPECT_TRUE(ds.Union(2, 4));
  EXPECT_TRUE(ds.Same(0, 3));
  EXPECT_FALSE(ds.Same(0, 5));
}

TEST(StringUtil, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtil, TrimAndJoin) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtil, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("hello", "el"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BelowStaysInBoundAndHitsEveryResidue) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    uint64_t v = rng.Below(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<size_t>(v)];
  }
  // Rejection sampling is unbiased, so each residue lands near 1000;
  // a 25% band is ~8 sigma, far beyond splitmix64's wobble.
  for (int c : counts) {
    EXPECT_GT(c, 750);
    EXPECT_LT(c, 1250);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(3);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // 50! makes a fixed shuffle astronomically unlikely
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, ShuffleDeterministicInSeed) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng ra(99);
  Rng rb(99);
  ra.Shuffle(a);
  rb.Shuffle(b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rescq
