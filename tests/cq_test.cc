#include <gtest/gtest.h>

#include "cq/binary_graph.h"
#include "cq/components.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "cq/hypergraph.h"
#include "cq/parser.h"
#include "cq/query.h"

namespace rescq {
namespace {

// --- Parser -----------------------------------------------------------------

TEST(Parser, BasicQuery) {
  Query q = MustParseQuery("q :- R(x,y), R(y,z)");
  EXPECT_EQ(q.num_atoms(), 2);
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.atom(0).relation, "R");
  EXPECT_EQ(q.atom(1).vars, (std::vector<VarId>{1, 2}));
  EXPECT_EQ(q.ToString(), "R(x,y), R(y,z)");
}

TEST(Parser, HeadIsOptional) {
  Query a = MustParseQuery("q :- R(x,y)");
  Query b = MustParseQuery("R(x,y)");
  EXPECT_EQ(a, b);
}

TEST(Parser, ExogenousMarker) {
  Query q = MustParseQuery("R(x,y), S^x(y,z)");
  EXPECT_FALSE(q.IsRelationExogenous("R"));
  EXPECT_TRUE(q.IsRelationExogenous("S"));
  EXPECT_EQ(q.ToString(), "R(x,y), S^x(y,z)");
}

TEST(Parser, ExogenousUniformPerRelation) {
  // A ^x on one atom marks the whole relation.
  Query q = MustParseQuery("R^x(x,y), R(y,z)");
  EXPECT_TRUE(q.atom(0).exogenous);
  EXPECT_TRUE(q.atom(1).exogenous);
}

TEST(Parser, RepeatedVariableAtom) {
  Query q = MustParseQuery("R(x,x), R(x,y)");
  EXPECT_TRUE(q.atom(0).HasRepeatedVar());
  EXPECT_FALSE(q.atom(1).HasRepeatedVar());
}

TEST(Parser, Errors) {
  EXPECT_FALSE(ParseQuery("").ok);
  EXPECT_FALSE(ParseQuery("r(x)").ok);          // lower-case relation
  EXPECT_FALSE(ParseQuery("R(X)").ok);          // upper-case variable
  EXPECT_FALSE(ParseQuery("R(x,y), R(x)").ok);  // inconsistent arity
  EXPECT_FALSE(ParseQuery("R(x").ok);           // unterminated
  EXPECT_FALSE(ParseQuery("R(x) S(x)").ok);     // missing comma
  EXPECT_FALSE(ParseQuery("R^y(x)").ok);        // unknown marker
}

TEST(Parser, PrimedVariables) {
  Query q = MustParseQuery("R(x,x'), S(x',y)");
  EXPECT_EQ(q.num_vars(), 3);
  EXPECT_EQ(q.var_name(1), "x'");
}

// --- Query accessors ----------------------------------------------------------

TEST(Query, RepeatedRelations) {
  Query q = MustParseQuery("R(x,y), R(y,z), A(x)");
  EXPECT_EQ(q.RepeatedRelations(), (std::vector<std::string>{"R"}));
  EXPECT_FALSE(q.IsSelfJoinFree());
  EXPECT_TRUE(MustParseQuery("R(x,y), S(y,z)").IsSelfJoinFree());
}

TEST(Query, IsBinary) {
  EXPECT_TRUE(MustParseQuery("R(x,y), A(x)").IsBinary());
  EXPECT_FALSE(MustParseQuery("W(x,y,z), A(x)").IsBinary());
}

TEST(Query, EndogenousAtoms) {
  Query q = MustParseQuery("R(x,y), S^x(y,z), T(z,w)");
  EXPECT_EQ(q.EndogenousAtoms(), (std::vector<int>{0, 2}));
}

TEST(Query, WithAtomsRemovedReindexesVars) {
  Query q = MustParseQuery("R(x,y), S(y,z), T(z,w)");
  Query r = q.WithAtomsRemoved({0});
  EXPECT_EQ(r.num_atoms(), 2);
  EXPECT_EQ(r.num_vars(), 3);  // x dropped
  EXPECT_EQ(r.ToString(), "S(y,z), T(z,w)");
}

TEST(Query, VarsOfAtoms) {
  Query q = MustParseQuery("R(x,y), S(y,z)");
  EXPECT_EQ(q.VarsOfAtoms({0}), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(q.VarsOfAtoms({0, 1}), (std::vector<VarId>{0, 1, 2}));
}

// --- Dual hypergraph ----------------------------------------------------------

TEST(Hypergraph, TriadPathsInTriangle) {
  // q△: R(x,y), S(y,z), T(z,x). R–S connect via y which is not in T.
  Query q = MustParseQuery("R(x,y), S(y,z), T(z,x)");
  DualHypergraph h(q);
  VarId x = q.VarIdOf("x"), y = q.VarIdOf("y"), z = q.VarIdOf("z");
  EXPECT_TRUE(h.PathAvoiding(0, 1, {z, x}));   // avoid var(T)
  EXPECT_TRUE(h.PathAvoiding(1, 2, {x, y}));   // avoid var(R)
  EXPECT_TRUE(h.PathAvoiding(2, 0, {y, z}));   // avoid var(S)
  EXPECT_FALSE(h.PathAvoiding(0, 1, {y, z}));  // y and z both forbidden
}

TEST(Hypergraph, PathAvoidingAtoms) {
  // 3-chain: R(x,y), R(y,z), R(z,w). The outer atoms connect only through
  // the middle R-atom.
  Query q = MustParseQuery("R(x,y), R(y,z), R(z,w)");
  DualHypergraph h(q);
  EXPECT_TRUE(h.PathAvoidingAtoms(0, 2, {}));
  EXPECT_FALSE(h.PathAvoidingAtoms(0, 2, {1}));
}

TEST(Hypergraph, AtomComponents) {
  Query q = MustParseQuery("A(x), R(x,y), R(z,w), B(w)");
  DualHypergraph h(q);
  std::vector<int> comp = h.AtomComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

// --- Binary graph -------------------------------------------------------------

TEST(BinaryGraph, EdgesAndLoops) {
  Query q = MustParseQuery("A(x), R(x,y)");
  BinaryGraph g(q);
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_TRUE(g.edges()[0].unary);
  EXPECT_EQ(g.edges()[0].from, g.edges()[0].to);
  EXPECT_FALSE(g.edges()[1].unary);
  EXPECT_EQ(g.OutEdges(q.VarIdOf("x")).size(), 2u);
  EXPECT_EQ(g.InEdges(q.VarIdOf("y")).size(), 1u);
}

TEST(BinaryGraph, DotOutput) {
  Query q = MustParseQuery("R(x,y), S^x(y,z)");
  BinaryGraph g(q);
  std::string dot = g.ToDot(q);
  EXPECT_NE(dot.find("x -> y [label=\"R\"]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

// --- Homomorphisms, containment, minimization ---------------------------------

TEST(Homomorphism, SimpleExists) {
  // chain maps into a loop: x,y,z all -> u with R(u,u).
  Query chain = MustParseQuery("R(x,y), R(y,z)");
  Query loop = MustParseQuery("R(u,u)");
  EXPECT_TRUE(FindHomomorphism(chain, loop).has_value());
  EXPECT_FALSE(FindHomomorphism(loop, chain).has_value());
}

TEST(Homomorphism, Containment) {
  // Adding atoms makes a query more restrictive: q1 ⊆ q2 when q2's atoms
  // are a subset of q1's.
  Query q1 = MustParseQuery("R(x,y), S(y,z)");
  Query q2 = MustParseQuery("R(x,y)");
  EXPECT_TRUE(IsContainedIn(q1, q2));
  EXPECT_FALSE(IsContainedIn(q2, q1));
}

TEST(Homomorphism, Example22NonMinimalSelfJoinVariation) {
  // q^sj :- R(x,y), R(z,y), R(z,w), R(x,w) is equivalent to R(x,y)
  // (Example 22 in the paper).
  Query qsj = MustParseQuery("R(x,y), R(z,y), R(z,w), R(x,w)");
  Query single = MustParseQuery("R(x,y)");
  EXPECT_FALSE(IsMinimal(qsj));
  EXPECT_TRUE(AreEquivalent(qsj, single));
  Query core = Minimize(qsj);
  EXPECT_EQ(core.num_atoms(), 1);
  EXPECT_TRUE(AreEquivalent(core, single));
}

TEST(Homomorphism, MinimalQueriesStayFixed) {
  for (const char* text :
       {"R(x,y), R(y,z)", "R(x), S(x,y), R(y)", "R(x,y), S(y,z), T(z,x)",
        "A(x), R(x,y), R(y,x), B(y)", "A(x), R(x,y), R(z,y), C(z)"}) {
    Query q = MustParseQuery(text);
    EXPECT_TRUE(IsMinimal(q)) << text;
    EXPECT_EQ(Minimize(q).num_atoms(), q.num_atoms()) << text;
  }
}

TEST(Homomorphism, ChainOfThreeIsMinimal) {
  EXPECT_TRUE(IsMinimal(MustParseQuery("R(x,y), R(y,z), R(z,w)")));
}

TEST(Homomorphism, RepeatedVarCollapse) {
  // R(x,y), R(y,y) maps into R(y,y): not minimal.
  Query q = MustParseQuery("R(x,y), R(y,y)");
  EXPECT_FALSE(IsMinimal(q));
  EXPECT_EQ(Minimize(q).num_atoms(), 1);
  // ...but an A(x) pins x: minimal.
  Query pinned = MustParseQuery("A(x), R(x,y), R(y,y)");
  EXPECT_TRUE(IsMinimal(pinned));
}

TEST(Isomorphism, Basic) {
  Query a = MustParseQuery("R(x,y), R(y,z)");
  Query b = MustParseQuery("R(u,v), R(v,w)");
  Query c = MustParseQuery("R(x,y), R(z,y)");
  EXPECT_TRUE(AreIsomorphic(a, b));
  EXPECT_FALSE(AreIsomorphic(a, c));
}

TEST(Isomorphism, RespectsExogenousLabels) {
  Query a = MustParseQuery("R(x,y), S^x(y,z)");
  Query b = MustParseQuery("R(x,y), S(y,z)");
  EXPECT_FALSE(AreIsomorphic(a, b));
}

TEST(Isomorphism, ModuloRelabeling) {
  // Column-swapping R turns a confluence R(x,y),R(z,y) into a
  // "divergence" R(y,x),R(y,z); these are the same problem.
  Query conf = MustParseQuery("A(x), R(x,y), R(z,y), C(z)");
  Query divg = MustParseQuery("A(x), R(y,x), R(y,z), C(z)");
  EXPECT_FALSE(AreIsomorphic(conf, divg));
  EXPECT_TRUE(AreIsomorphicModuloRelabeling(conf, divg));
  // Relation renaming: A<->C.
  Query renamed = MustParseQuery("C(x), R(x,y), R(z,y), A(z)");
  EXPECT_TRUE(AreIsomorphicModuloRelabeling(conf, renamed));
  // A genuinely different query stays different.
  Query chain = MustParseQuery("A(x), R(x,y), R(y,z), C(z)");
  EXPECT_FALSE(AreIsomorphicModuloRelabeling(conf, chain));
}

// --- Components ---------------------------------------------------------------

TEST(Components, PaperExample) {
  // q_comp :- A(x), R(x,y), R(z,w), B(w) has two components (§4.2).
  Query q = MustParseQuery("A(x), R(x,y), R(z,w), B(w)");
  EXPECT_FALSE(IsConnected(q));
  std::vector<Query> comps = SplitIntoComponents(q);
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0].ToString(), "A(x), R(x,y)");
  EXPECT_EQ(comps[1].ToString(), "R(z,w), B(w)");
}

TEST(Components, ConnectedQuery) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  EXPECT_TRUE(IsConnected(q));
  EXPECT_EQ(SplitIntoComponents(q).size(), 1u);
}

// --- Domination ---------------------------------------------------------------

TEST(Domination, TripodSjFree) {
  // In qT :- A(x),B(y),C(z),W(x,y,z), A dominates W (Def 3 and Def 16).
  Query qT = MustParseQuery("A(x), B(y), C(z), W(x,y,z)");
  EXPECT_TRUE(AtomDominatesSjFree(qT, 0, 3));
  EXPECT_FALSE(AtomDominatesSjFree(qT, 3, 0));
  EXPECT_TRUE(RelationDominates(qT, "A", "W"));
  EXPECT_FALSE(RelationDominates(qT, "W", "A"));
  Query norm = NormalizeDomination(qT);
  EXPECT_TRUE(norm.IsRelationExogenous("W"));
  EXPECT_FALSE(norm.IsRelationExogenous("A"));
}

TEST(Domination, RatsDisarmsTriad) {
  // In q_rats, A dominates R and T; both become exogenous (§2.2).
  Query q = MustParseQuery("R(x,y), A(x), T(z,x), S(y,z)");
  Query norm = NormalizeDomination(q);
  EXPECT_TRUE(norm.IsRelationExogenous("R"));
  EXPECT_TRUE(norm.IsRelationExogenous("T"));
  EXPECT_FALSE(norm.IsRelationExogenous("A"));
  EXPECT_FALSE(norm.IsRelationExogenous("S"));
}

TEST(Domination, Example17) {
  // q1 :- R(x,y),A(y),R(y,z),S(y,z): A does NOT dominate R; S dominated.
  Query q1 = MustParseQuery("R(x,y), A(y), R(y,z), S(y,z)");
  EXPECT_FALSE(RelationDominates(q1, "A", "R"));
  EXPECT_TRUE(RelationDominates(q1, "A", "S"));
  // q2 :- R(x,y),A(y),R(z,y),S(y,z): A dominates R and S.
  Query q2 = MustParseQuery("R(x,y), A(y), R(z,y), S(y,z)");
  EXPECT_TRUE(RelationDominates(q2, "A", "R"));
  EXPECT_TRUE(RelationDominates(q2, "A", "S"));
}

TEST(Domination, Example11SelfJoinRatsNotDominated) {
  // q^sj1_rats :- A(x),R(x,y),R(y,z),R(z,x): A does not dominate R under
  // Definition 16, even though var(A) ⊆ var(R(x,y)) (Section 3.2).
  Query q = MustParseQuery("A(x), R(x,y), R(y,z), R(z,x)");
  EXPECT_FALSE(RelationDominates(q, "A", "R"));
  Query norm = NormalizeDomination(q);
  EXPECT_FALSE(norm.IsRelationExogenous("R"));
}

TEST(Domination, ExogenousRelationsCannotDominate) {
  Query q = MustParseQuery("A^x(x), R(x,y)");
  EXPECT_FALSE(RelationDominates(q, "A", "R"));
}

TEST(Domination, MutualDominationResolvesDeterministically) {
  Query q = MustParseQuery("A(x,y), B(x,y)");
  EXPECT_TRUE(RelationDominates(q, "A", "B"));
  EXPECT_TRUE(RelationDominates(q, "B", "A"));
  Query norm = NormalizeDomination(q);
  // Exactly one becomes exogenous (name order: A is dominated first).
  EXPECT_TRUE(norm.IsRelationExogenous("A"));
  EXPECT_FALSE(norm.IsRelationExogenous("B"));
}

}  // namespace
}  // namespace rescq
