// Server tests, in three tiers:
//   1. a registry hammer — concurrent open/close/epoch/query through
//      per-connection ProtocolHandlers against one shared registry and
//      engine, exactly the daemon's concurrency model (runs under the
//      TSan preset via the `parallel` label);
//   2. end-to-end over a real socket: a daemon on an ephemeral port, a
//      scripted connection, and a byte-exact golden transcript
//      (tests/golden/server_transcript.golden);
//   3. the loadgen acceptance loop: concurrent sessions with
//      --check-oracle semantics, zero mismatches required.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "resilience/engine.h"
#include "server/client.h"
#include "server/loadgen.h"
#include "server/protocol.h"
#include "server/server.h"
#include "server/session_registry.h"

namespace rescq {
namespace {

TEST(SessionRegistryTest, OpenFindCloseBasics) {
  SessionRegistry registry(/*max_sessions=*/2);
  std::shared_ptr<SessionEntry> a, b, c;
  std::string error;
  ASSERT_TRUE(registry.Open("a", &a, &error));
  ASSERT_TRUE(registry.Open("b", &b, &error));
  EXPECT_FALSE(registry.Open("a", &c, &error));  // duplicate
  EXPECT_NE(error.find("already exists"), std::string::npos);
  EXPECT_FALSE(registry.Open("c", &c, &error));  // over the cap
  EXPECT_NE(error.find("limit"), std::string::npos);

  EXPECT_EQ(registry.Find("a"), a);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.size(), 2u);

  std::vector<std::shared_ptr<SessionEntry>> list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0]->name, "a");  // deterministic name order
  EXPECT_EQ(list[1]->name, "b");

  ASSERT_TRUE(registry.Close("a", &error));
  EXPECT_FALSE(registry.Close("a", &error));
  EXPECT_TRUE(a->closed);  // the held handle learns about the close
  EXPECT_EQ(registry.Find("a"), nullptr);
  // The freed slot is reusable.
  ASSERT_TRUE(registry.Open("c", &c, &error));
  EXPECT_EQ(registry.size(), 2u);
}

// The daemon's concurrency model in miniature: every thread is one
// connection (its own ProtocolHandler), all of them sharing the
// registry and the plan-cache-bearing engine, racing session
// create/push/begin/epoch/query/close on a small name pool so the same
// sessions are contended from several threads at once.
TEST(SessionRegistryHammerTest, ConcurrentOpenCloseEpochQuery) {
  SessionRegistry registry;
  ResilienceEngine engine;
  ServerLimits limits;
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;

  std::vector<std::thread> threads;
  std::vector<int> violations(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ProtocolHandler handler(&registry, &engine, &limits);
      auto req = [&](const std::string& line) {
        std::string r = handler.Handle(line).response;
        // Every reply is structured: ok or err, never empty, never a
        // crash. (Blank lines are not sent here.)
        if (r.rfind("ok ", 0) != 0 && r.rfind("err ", 0) != 0) {
          ++violations[t];
        }
        return r;
      };
      for (int round = 0; round < kRounds; ++round) {
        std::string name = "s" + std::to_string((t + round) % 4);
        req("open " + name + " R(x,y), S(y)");
        req("use " + name);
        req("push R(a" + std::to_string(round) + ", b)");
        req("push S(b)");
        req("begin");
        req("+ R(c" + std::to_string(round) + ", b)");
        req("epoch");
        req("resilience");
        req("stats");
        req("sessions");
        if (round % 3 == 0) req("close " + name);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(violations[t], 0) << t;
  // Whatever survived is consistent: every listed session is findable.
  for (const std::shared_ptr<SessionEntry>& e : registry.List()) {
    EXPECT_EQ(registry.Find(e->name), e);
  }
}

// Eviction under concurrent readers: handler threads hammer live
// sessions with epoch applies and resilience/stats reads while a
// dedicated evictor thread sweeps the registry nonstop with an
// always-idle deadline. Every reply must stay structured and every
// served resilience must be self-consistent across the rebuilds (the
// TSan preset runs this via the `parallel` label).
TEST(SessionRegistryHammerTest, EvictionRacesReadersAndEpochApplies) {
  SessionRegistry registry;
  ResilienceEngine engine;
  ServerLimits limits;
  constexpr int kThreads = 6;
  constexpr int kRounds = 30;

  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load()) {
      registry.EvictColdSessions(SteadyNowMs() + 1000000, /*idle_ms=*/1,
                                 /*max_resident_bytes=*/1);
    }
  });

  std::vector<std::thread> threads;
  std::vector<int> violations(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ProtocolHandler handler(&registry, &engine, &limits);
      auto req = [&](const std::string& line) {
        std::string r = handler.Handle(line).response;
        if (r.rfind("ok ", 0) != 0 && r.rfind("err ", 0) != 0) {
          ++violations[t];
        }
        return r;
      };
      for (int round = 0; round < kRounds; ++round) {
        std::string name = "s" + std::to_string((t + round) % 3);
        req("open " + name + " R(x,y), S(y)");
        req("use " + name);
        req("push R(a" + std::to_string(round) + ", b)");
        req("push S(b)");
        req("begin");
        req("+ R(c" + std::to_string(round) + ", b)");
        req("epoch");
        // An evicted session must still answer reads; a live session's
        // resilience and stats must agree with each other.
        std::string res = req("resilience");
        std::string stats = req("stats");
        if (res.rfind("ok resilience ", 0) == 0 &&
            stats.rfind("ok stats ", 0) == 0 &&
            stats.find(" state=live ") != std::string::npos) {
          // Both reads raced other writers, so values may differ between
          // them — but each line alone must be well-formed.
          if (stats.find(" index=") == std::string::npos) ++violations[t];
        }
        if (round % 3 == 0) req("close " + name);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  evictor.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(violations[t], 0) << t;
  for (const std::shared_ptr<SessionEntry>& e : registry.List()) {
    EXPECT_EQ(registry.Find(e->name), e);
  }
}

// --- End-to-end over a real socket ------------------------------------------

class ServerEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.threads = 4;
    engine_ = std::make_unique<ResilienceEngine>();
    server_ = std::make_unique<ResilienceServer>(options, engine_.get());
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  int ConnectRaw() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  /// Writes `script` to a fresh connection and returns every byte the
  /// server sent back until it closed the connection.
  std::string RunScript(const std::string& script) {
    int fd = ConnectRaw();
    // The server may legitimately close mid-send (over-long line), so a
    // short or failed send is not an error here.
    ssize_t sent = ::send(fd, script.data(), script.size(), MSG_NOSIGNAL);
    (void)sent;
    std::string out;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      out.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  std::unique_ptr<ResilienceEngine> engine_;
  std::unique_ptr<ResilienceServer> server_;
};

// The wire protocol's bytes are pinned: one scripted connection, every
// reply byte compared against the checked-in golden file. Replies are
// deterministic by design (no timings on the wire), so this is an exact
// comparison — any protocol change must update the golden on purpose.
TEST_F(ServerEndToEndTest, GoldenTranscript) {
  const std::string script =
      "# golden transcript: comments and blanks get no reply\n"
      "\n"
      "ping\n"
      "open g1 R(x,y), S(y)\n"
      "push R(a, b)\n"
      "push S(b)\n"
      "push R(c, d)\n"
      "push S(d)\n"
      "begin\n"
      "resilience\n"
      "stats\n"
      "- S(b)\n"
      "epoch\n"
      "resilience\n"
      "+ R(a, e)\n"
      "+ S(e)\n"
      "epoch\n"
      "resilience\n"
      "sessions\n"
      "classify\n"
      "classify R(x,y), R(y,z), R(z,x)\n"
      "push R(z, z)\n"
      "bogus verb\n"
      "close\n"
      "quit\n";
  std::string actual = RunScript(script);

  std::ifstream golden(std::string(RESCQ_SOURCE_DIR) +
                       "/tests/golden/server_transcript.golden");
  ASSERT_TRUE(golden.is_open())
      << "missing tests/golden/server_transcript.golden";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str());
}

TEST_F(ServerEndToEndTest, MalformedBytesNeverKillTheServer) {
  // Binary garbage gets structured errors, then the client leaves.
  std::string garbage("\x00\x01\xfe\xff(((\n+++\nR\x7f(\n", 16);
  std::string out = RunScript(garbage + "quit\n");
  EXPECT_NE(out.find("err "), std::string::npos) << out;
  EXPECT_NE(out.find("ok bye"), std::string::npos) << out;

  // An over-long request line is refused and the connection dropped...
  std::string long_line(70 * 1024, 'a');
  out = RunScript(long_line + "\nquit\n");
  EXPECT_EQ(out, "err bad-request request line over 64KiB\n");

  // ...while the server keeps serving new connections.
  out = RunScript("ping\nquit\n");
  EXPECT_EQ(out, "ok pong\nok bye\n");
}

TEST_F(ServerEndToEndTest, ShutdownVerbStopsTheServer) {
  std::string out = RunScript("shutdown\n");
  EXPECT_EQ(out, "ok shutdown\n");
  server_->Wait();  // returns because the verb stopped the daemon
}

// The ISSUE's acceptance loop, in-process: >= 4 concurrent sessions of
// open -> churn -> query with every served answer checked against a
// from-scratch exact solve on a mirrored instance; zero mismatches, and
// the report's latency/throughput fields are populated.
TEST_F(ServerEndToEndTest, ConcurrentLoadgenMatchesOracle) {
  LoadgenOptions options;
  options.host = "127.0.0.1";
  options.port = server_->port();
  options.connections = 4;
  options.scenario = "vc_er";
  options.size = 8;
  options.epochs = 3;
  options.rate = 0.15;
  options.seed = 7;
  options.check_oracle = true;

  LoadgenReport report = RunLoadgen(options);
  EXPECT_EQ(report.error, "");
  EXPECT_EQ(report.err_replies, 0u);
  EXPECT_EQ(report.oracle_mismatches, 0u);
  EXPECT_GT(report.oracle_checks, 0u);
  EXPECT_EQ(report.epochs_applied, 12u);  // 4 connections x 3 epochs
  EXPECT_GT(report.requests, 0u);
  EXPECT_GT(report.requests_per_sec, 0.0);
  EXPECT_GT(report.latency.count, 0u);
  EXPECT_GT(report.latency.p50_ms, 0.0);
  EXPECT_GT(report.latency.p99_ms, 0.0);
  EXPECT_GE(report.latency.p999_ms, report.latency.p99_ms);
  EXPECT_GE(report.latency.max_ms, report.latency.p999_ms);
  EXPECT_GT(report.epoch_latency.count, 0u);
}

// LineClient's framing: multi-line verbs arrive whole.
TEST_F(ServerEndToEndTest, LineClientFramesMultiLineReplies) {
  LineClient client;
  std::string error, reply;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  ASSERT_TRUE(client.Request("open f1 R(x,y)", &reply, &error)) << error;
  EXPECT_EQ(reply, "ok open f1 staging");
  ASSERT_TRUE(client.Request("push R(a, b)", &reply, &error)) << error;
  ASSERT_TRUE(client.Request("begin", &reply, &error)) << error;
  ASSERT_TRUE(client.Request("sessions", &reply, &error)) << error;
  EXPECT_EQ(reply.rfind("ok sessions 1\nf1 live ", 0), 0u) << reply;
  ASSERT_TRUE(client.Request("explain", &reply, &error)) << error;
  EXPECT_EQ(reply.rfind("ok explain ", 0), 0u) << reply;
  EXPECT_NE(reply.find('\n'), std::string::npos) << reply;
  ASSERT_TRUE(client.Request("close", &reply, &error)) << error;
  EXPECT_EQ(reply, "ok close f1");
}

}  // namespace
}  // namespace rescq
