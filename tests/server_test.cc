// Server tests, in three tiers:
//   1. a registry hammer — concurrent open/close/epoch/query through
//      per-connection ProtocolHandlers against one shared registry and
//      engine, exactly the daemon's concurrency model (runs under the
//      TSan preset via the `parallel` label);
//   2. end-to-end over a real socket: a daemon on an ephemeral port, a
//      scripted connection, and a byte-exact golden transcript
//      (tests/golden/server_transcript.golden);
//   3. the loadgen acceptance loop: concurrent sessions with
//      --check-oracle semantics, zero mismatches required.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "resilience/engine.h"
#include "server/client.h"
#include "server/loadgen.h"
#include "server/protocol.h"
#include "server/router.h"
#include "server/server.h"
#include "server/session_registry.h"
#include "server/shard_map.h"

namespace rescq {
namespace {

TEST(SessionRegistryTest, OpenFindCloseBasics) {
  SessionRegistry registry(/*max_sessions=*/2);
  std::shared_ptr<SessionEntry> a, b, c;
  std::string error;
  ASSERT_TRUE(registry.Open("a", &a, &error));
  ASSERT_TRUE(registry.Open("b", &b, &error));
  EXPECT_FALSE(registry.Open("a", &c, &error));  // duplicate
  EXPECT_NE(error.find("already exists"), std::string::npos);
  EXPECT_FALSE(registry.Open("c", &c, &error));  // over the cap
  EXPECT_NE(error.find("limit"), std::string::npos);

  EXPECT_EQ(registry.Find("a"), a);
  EXPECT_EQ(registry.Find("nope"), nullptr);
  EXPECT_EQ(registry.size(), 2u);

  std::vector<std::shared_ptr<SessionEntry>> list = registry.List();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0]->name, "a");  // deterministic name order
  EXPECT_EQ(list[1]->name, "b");

  ASSERT_TRUE(registry.Close("a", &error));
  EXPECT_FALSE(registry.Close("a", &error));
  EXPECT_TRUE(a->closed);  // the held handle learns about the close
  EXPECT_EQ(registry.Find("a"), nullptr);
  // The freed slot is reusable.
  ASSERT_TRUE(registry.Open("c", &c, &error));
  EXPECT_EQ(registry.size(), 2u);
}

// The daemon's concurrency model in miniature: every thread is one
// connection (its own ProtocolHandler), all of them sharing the
// registry and the plan-cache-bearing engine, racing session
// create/push/begin/epoch/query/close on a small name pool so the same
// sessions are contended from several threads at once.
TEST(SessionRegistryHammerTest, ConcurrentOpenCloseEpochQuery) {
  SessionRegistry registry;
  ResilienceEngine engine;
  ServerLimits limits;
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;

  std::vector<std::thread> threads;
  std::vector<int> violations(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ProtocolHandler handler(&registry, &engine, &limits);
      auto req = [&](const std::string& line) {
        std::string r = handler.Handle(line).response;
        // Every reply is structured: ok or err, never empty, never a
        // crash. (Blank lines are not sent here.)
        if (r.rfind("ok ", 0) != 0 && r.rfind("err ", 0) != 0) {
          ++violations[t];
        }
        return r;
      };
      for (int round = 0; round < kRounds; ++round) {
        std::string name = "s" + std::to_string((t + round) % 4);
        req("open " + name + " R(x,y), S(y)");
        req("use " + name);
        req("push R(a" + std::to_string(round) + ", b)");
        req("push S(b)");
        req("begin");
        req("+ R(c" + std::to_string(round) + ", b)");
        req("epoch");
        req("resilience");
        req("stats");
        req("sessions");
        if (round % 3 == 0) req("close " + name);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(violations[t], 0) << t;
  // Whatever survived is consistent: every listed session is findable.
  for (const std::shared_ptr<SessionEntry>& e : registry.List()) {
    EXPECT_EQ(registry.Find(e->name), e);
  }
}

// Eviction under concurrent readers: handler threads hammer live
// sessions with epoch applies and resilience/stats reads while a
// dedicated evictor thread sweeps the registry nonstop with an
// always-idle deadline. Every reply must stay structured and every
// served resilience must be self-consistent across the rebuilds (the
// TSan preset runs this via the `parallel` label).
TEST(SessionRegistryHammerTest, EvictionRacesReadersAndEpochApplies) {
  SessionRegistry registry;
  ResilienceEngine engine;
  ServerLimits limits;
  constexpr int kThreads = 6;
  constexpr int kRounds = 30;

  std::atomic<bool> stop{false};
  std::thread evictor([&] {
    while (!stop.load()) {
      registry.EvictColdSessions(SteadyNowMs() + 1000000, /*idle_ms=*/1,
                                 /*max_resident_bytes=*/1);
    }
  });

  std::vector<std::thread> threads;
  std::vector<int> violations(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ProtocolHandler handler(&registry, &engine, &limits);
      auto req = [&](const std::string& line) {
        std::string r = handler.Handle(line).response;
        if (r.rfind("ok ", 0) != 0 && r.rfind("err ", 0) != 0) {
          ++violations[t];
        }
        return r;
      };
      for (int round = 0; round < kRounds; ++round) {
        std::string name = "s" + std::to_string((t + round) % 3);
        req("open " + name + " R(x,y), S(y)");
        req("use " + name);
        req("push R(a" + std::to_string(round) + ", b)");
        req("push S(b)");
        req("begin");
        req("+ R(c" + std::to_string(round) + ", b)");
        req("epoch");
        // An evicted session must still answer reads; a live session's
        // resilience and stats must agree with each other.
        std::string res = req("resilience");
        std::string stats = req("stats");
        if (res.rfind("ok resilience ", 0) == 0 &&
            stats.rfind("ok stats ", 0) == 0 &&
            stats.find(" state=live ") != std::string::npos) {
          // Both reads raced other writers, so values may differ between
          // them — but each line alone must be well-formed.
          if (stats.find(" index=") == std::string::npos) ++violations[t];
        }
        if (round % 3 == 0) req("close " + name);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  stop.store(true);
  evictor.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(violations[t], 0) << t;
  for (const std::shared_ptr<SessionEntry>& e : registry.List()) {
    EXPECT_EQ(registry.Find(e->name), e);
  }
}

// --- End-to-end over a real socket ------------------------------------------

class ServerEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.threads = 4;
    engine_ = std::make_unique<ResilienceEngine>();
    server_ = std::make_unique<ResilienceServer>(options, engine_.get());
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
    ASSERT_GT(server_->port(), 0);
  }

  void TearDown() override { server_->Stop(); }

  int ConnectRaw() {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    return fd;
  }

  /// Writes `script` to a fresh connection and returns every byte the
  /// server sent back until it closed the connection.
  std::string RunScript(const std::string& script) {
    int fd = ConnectRaw();
    // The server may legitimately close mid-send (over-long line), so a
    // short or failed send is not an error here.
    ssize_t sent = ::send(fd, script.data(), script.size(), MSG_NOSIGNAL);
    (void)sent;
    std::string out;
    char chunk[4096];
    ssize_t n;
    while ((n = ::recv(fd, chunk, sizeof(chunk), 0)) > 0) {
      out.append(chunk, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  std::unique_ptr<ResilienceEngine> engine_;
  std::unique_ptr<ResilienceServer> server_;
};

// The wire protocol's bytes are pinned: one scripted connection, every
// reply byte compared against the checked-in golden file. Replies are
// deterministic by design (no timings on the wire), so this is an exact
// comparison — any protocol change must update the golden on purpose.
TEST_F(ServerEndToEndTest, GoldenTranscript) {
  const std::string script =
      "# golden transcript: comments and blanks get no reply\n"
      "\n"
      "ping\n"
      "open g1 R(x,y), S(y)\n"
      "push R(a, b)\n"
      "push S(b)\n"
      "push R(c, d)\n"
      "push S(d)\n"
      "begin\n"
      "resilience\n"
      "stats\n"
      "- S(b)\n"
      "epoch\n"
      "resilience\n"
      "+ R(a, e)\n"
      "+ S(e)\n"
      "epoch\n"
      "resilience\n"
      "sessions\n"
      "classify\n"
      "classify R(x,y), R(y,z), R(z,x)\n"
      "push R(z, z)\n"
      "bogus verb\n"
      "close\n"
      "quit\n";
  std::string actual = RunScript(script);

  std::ifstream golden(std::string(RESCQ_SOURCE_DIR) +
                       "/tests/golden/server_transcript.golden");
  ASSERT_TRUE(golden.is_open())
      << "missing tests/golden/server_transcript.golden";
  std::stringstream expected;
  expected << golden.rdbuf();
  EXPECT_EQ(actual, expected.str());
}

TEST_F(ServerEndToEndTest, MalformedBytesNeverKillTheServer) {
  // Binary garbage gets structured errors, then the client leaves.
  std::string garbage("\x00\x01\xfe\xff(((\n+++\nR\x7f(\n", 16);
  std::string out = RunScript(garbage + "quit\n");
  EXPECT_NE(out.find("err "), std::string::npos) << out;
  EXPECT_NE(out.find("ok bye"), std::string::npos) << out;

  // An over-long request line is refused and the connection dropped...
  std::string long_line(70 * 1024, 'a');
  out = RunScript(long_line + "\nquit\n");
  EXPECT_EQ(out, "err bad-request request line over 64KiB\n");

  // ...while the server keeps serving new connections.
  out = RunScript("ping\nquit\n");
  EXPECT_EQ(out, "ok pong\nok bye\n");
}

TEST_F(ServerEndToEndTest, ShutdownVerbStopsTheServer) {
  std::string out = RunScript("shutdown\n");
  EXPECT_EQ(out, "ok shutdown\n");
  server_->Wait();  // returns because the verb stopped the daemon
}

// The ISSUE's acceptance loop, in-process: >= 4 concurrent sessions of
// open -> churn -> query with every served answer checked against a
// from-scratch exact solve on a mirrored instance; zero mismatches, and
// the report's latency/throughput fields are populated.
TEST_F(ServerEndToEndTest, ConcurrentLoadgenMatchesOracle) {
  LoadgenOptions options;
  options.host = "127.0.0.1";
  options.port = server_->port();
  options.connections = 4;
  options.scenario = "vc_er";
  options.size = 8;
  options.epochs = 3;
  options.rate = 0.15;
  options.seed = 7;
  options.check_oracle = true;

  LoadgenReport report = RunLoadgen(options);
  EXPECT_EQ(report.error, "");
  EXPECT_EQ(report.err_replies, 0u);
  EXPECT_EQ(report.oracle_mismatches, 0u);
  EXPECT_GT(report.oracle_checks, 0u);
  EXPECT_EQ(report.epochs_applied, 12u);  // 4 connections x 3 epochs
  EXPECT_GT(report.requests, 0u);
  EXPECT_GT(report.requests_per_sec, 0.0);
  EXPECT_GT(report.latency.count, 0u);
  EXPECT_GT(report.latency.p50_ms, 0.0);
  EXPECT_GT(report.latency.p99_ms, 0.0);
  EXPECT_GE(report.latency.p999_ms, report.latency.p99_ms);
  EXPECT_GE(report.latency.max_ms, report.latency.p999_ms);
  EXPECT_GT(report.epoch_latency.count, 0u);
}

// LineClient's framing: multi-line verbs arrive whole.
TEST_F(ServerEndToEndTest, LineClientFramesMultiLineReplies) {
  LineClient client;
  std::string error, reply;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  ASSERT_TRUE(client.Request("open f1 R(x,y)", &reply, &error)) << error;
  EXPECT_EQ(reply, "ok open f1 staging");
  ASSERT_TRUE(client.Request("push R(a, b)", &reply, &error)) << error;
  ASSERT_TRUE(client.Request("begin", &reply, &error)) << error;
  ASSERT_TRUE(client.Request("sessions", &reply, &error)) << error;
  EXPECT_EQ(reply.rfind("ok sessions 1\nf1 live ", 0), 0u) << reply;
  ASSERT_TRUE(client.Request("explain", &reply, &error)) << error;
  EXPECT_EQ(reply.rfind("ok explain ", 0), 0u) << reply;
  EXPECT_NE(reply.find('\n'), std::string::npos) << reply;
  ASSERT_TRUE(client.Request("close", &reply, &error)) << error;
  EXPECT_EQ(reply, "ok close f1");
}

// --- Sharding: ShardMap placement + router end to end -----------------------

TEST(ShardMapTest, PlacementIsDeterministicAndBalanced) {
  ShardMap map(4);
  std::vector<size_t> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    std::string name = "session-" + std::to_string(i);
    size_t owner = map.OwnerOf(name);
    ASSERT_LT(owner, 4u);
    EXPECT_EQ(owner, map.OwnerOf(name));  // stable across calls
    counts[owner]++;
  }
  // Consistent hashing over 64 vnodes is not perfectly uniform, but no
  // shard may be starved or hoard the keyspace.
  for (size_t c : counts) {
    EXPECT_GT(c, 4000u / 16) << "starved shard";
    EXPECT_LT(c, 4000u / 2) << "hoarding shard";
  }
  // Two rings over the same shard count agree everywhere — every router
  // instance computes the same placement.
  ShardMap again(4);
  for (int i = 0; i < 100; ++i) {
    std::string name = "agree-" + std::to_string(i);
    EXPECT_EQ(map.OwnerOf(name), again.OwnerOf(name));
  }
}

TEST(ShardMapTest, GrowingTheRingMovesFewKeys) {
  ShardMap four(4), five(5);
  int moved = 0;
  const int kKeys = 2000;
  for (int i = 0; i < kKeys; ++i) {
    std::string name = "grow-" + std::to_string(i);
    size_t before = four.OwnerOf(name);
    size_t after = five.OwnerOf(name);
    if (after != before) {
      ++moved;
      EXPECT_EQ(after, 4u) << "a key moved between two old shards";
    }
  }
  // ~1/5 of the keys should move to the new shard; modulo placement
  // would reshuffle ~4/5 of them.
  EXPECT_GT(moved, kKeys / 20);
  EXPECT_LT(moved, kKeys / 2);
}

class RouterEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions base;
    base.threads = 2;
    std::string error;
    ASSERT_TRUE(shards_.Start(2, base, &error)) << error;
    RouterOptions options;
    options.shards = shards_.specs();
    options.threads = 4;
    options.connect_timeout_ms = 1000;
    options.request_timeout_ms = 5000;
    options.retries = 1;
    options.backoff_ms = 20;
    options.down_cooldown_ms = 200;
    router_ = std::make_unique<ShardRouter>(options);
    ASSERT_TRUE(router_->Start(&error)) << error;
    ASSERT_GT(router_->port(), 0);
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Stop();
    shards_.Stop();
  }

  // A session name the ring places on shard `want`.
  std::string NameOwnedBy(size_t want, const std::string& prefix) {
    for (int i = 0; i < 10000; ++i) {
      std::string name = prefix + std::to_string(i);
      if (router_->shard_map().OwnerOf(name) == want) return name;
    }
    ADD_FAILURE() << "no name found for shard " << want;
    return "";
  }

  void Connect(LineClient* client, int port) {
    std::string error;
    ASSERT_TRUE(client->Connect("127.0.0.1", port, &error)) << error;
  }

  std::string Req(LineClient* client, const std::string& line) {
    std::string reply, error;
    EXPECT_TRUE(client->Request(line, &reply, &error)) << line << ": " << error;
    return reply;
  }

  InProcessShards shards_;
  std::unique_ptr<ShardRouter> router_;
};

// A named session lands on its ring owner and stays there across
// epochs: the owning backend knows it, the other backend does not, and
// every epoch applied through the router shows up on the owner.
TEST_F(RouterEndToEndTest, SessionIsPinnedToItsOwningShardAcrossEpochs) {
  const std::string name = NameOwnedBy(0, "pin");
  LineClient via_router;
  Connect(&via_router, router_->port());
  EXPECT_EQ(Req(&via_router, "open " + name + " R(x,y)"),
            "ok open " + name + " staging");
  EXPECT_EQ(Req(&via_router, "push R(a, b)"), "ok push 1");
  EXPECT_EQ(Req(&via_router, "push R(c, d)"), "ok push 2");
  EXPECT_EQ(Req(&via_router, "begin").rfind("ok begin ", 0), 0u);
  for (int epoch = 1; epoch <= 2; ++epoch) {
    std::string fact = "R(e" + std::to_string(epoch) + ", f)";
    EXPECT_EQ(Req(&via_router, "+ " + fact), "ok queued 1");
    EXPECT_EQ(Req(&via_router, "epoch").rfind("ok epoch ", 0), 0u);
  }
  EXPECT_EQ(Req(&via_router, "resilience").rfind("ok resilience ", 0), 0u);

  // The owner has the session, live, at epoch 2.
  LineClient owner;
  Connect(&owner, shards_.server(0)->port());
  EXPECT_EQ(Req(&owner, "use " + name), "ok use " + name + " live");
  std::string stats = Req(&owner, "stats");
  EXPECT_NE(stats.find("epoch=2"), std::string::npos) << stats;

  // The other shard never heard of it.
  LineClient other;
  Connect(&other, shards_.server(1)->port());
  EXPECT_EQ(Req(&other, "use " + name).rfind("err no-session ", 0), 0u);
}

// Scatter-gathered router `stats` equals the field-wise sum of each
// shard's own server-scope stats, and `sessions` merges both listings.
TEST_F(RouterEndToEndTest, ScatterGatherAggregatesAcrossShards) {
  const std::string on0 = NameOwnedBy(0, "agg0-");
  const std::string on1 = NameOwnedBy(1, "agg1-");
  LineClient via_router;
  Connect(&via_router, router_->port());
  EXPECT_EQ(Req(&via_router, "open " + on0 + " R(x,y)"),
            "ok open " + on0 + " staging");
  EXPECT_EQ(Req(&via_router, "push R(a, b)"), "ok push 1");
  EXPECT_EQ(Req(&via_router, "begin").rfind("ok begin ", 0), 0u);
  EXPECT_EQ(Req(&via_router, "open " + on1 + " R(x,y)"),
            "ok open " + on1 + " staging");
  EXPECT_EQ(Req(&via_router, "push R(c, d)"), "ok push 1");
  EXPECT_EQ(Req(&via_router, "push R(e, f)"), "ok push 2");

  auto field = [](const std::string& reply, const std::string& key) {
    size_t at = reply.find(" " + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " in " << reply;
    if (at == std::string::npos) return -1LL;
    return static_cast<long long>(
        std::stoll(reply.substr(at + key.size() + 2)));
  };
  long long sessions = 0, live = 0, staging = 0, tuples = 0, sets = 0;
  for (size_t i = 0; i < shards_.count(); ++i) {
    LineClient direct;
    Connect(&direct, shards_.server(i)->port());
    std::string stats = Req(&direct, "stats");
    ASSERT_EQ(stats.rfind("ok stats scope=server ", 0), 0u) << stats;
    sessions += field(stats, "sessions");
    live += field(stats, "live");
    staging += field(stats, "staging");
    tuples += field(stats, "tuples");
    sets += field(stats, "sets");
  }
  EXPECT_EQ(sessions, 2);
  EXPECT_EQ(live, 1);
  EXPECT_EQ(staging, 1);

  // A fresh router connection (no session selected) aggregates to
  // exactly those sums.
  LineClient fresh;
  Connect(&fresh, router_->port());
  std::string agg = Req(&fresh, "stats");
  ASSERT_EQ(agg.rfind("ok stats scope=router shards=2 up=2 ", 0), 0u) << agg;
  EXPECT_EQ(field(agg, "sessions"), sessions);
  EXPECT_EQ(field(agg, "live"), live);
  EXPECT_EQ(field(agg, "staging"), staging);
  EXPECT_EQ(field(agg, "tuples"), tuples);
  EXPECT_EQ(field(agg, "sets"), sets);

  std::string listing = Req(&fresh, "sessions");
  EXPECT_EQ(listing.rfind("ok sessions 2\n", 0), 0u) << listing;
  EXPECT_NE(listing.find(on0 + " live"), std::string::npos) << listing;
  EXPECT_NE(listing.find(on1 + " staging"), std::string::npos) << listing;
}

// A downed shard costs its sessions a structured `err shard_unavailable`
// (no hang), leaves the other shard serving, and comes back after a
// restart once the down-cooldown lapses.
TEST_F(RouterEndToEndTest, ShardDownIsStructuredAndRecoverable) {
  const std::string doomed = NameOwnedBy(1, "down");
  LineClient via_router;
  Connect(&via_router, router_->port());
  EXPECT_EQ(Req(&via_router, "open " + doomed + " R(x,y)"),
            "ok open " + doomed + " staging");
  EXPECT_EQ(Req(&via_router, "push R(a, b)"), "ok push 1");
  EXPECT_EQ(Req(&via_router, "begin").rfind("ok begin ", 0), 0u);

  int shard1_port = shards_.server(1)->port();
  shards_.server(1)->Stop();

  // The in-flight channel breaks, the reconnect finds nobody, and the
  // reply is structured — immediately and on the fail-fast path after.
  EXPECT_EQ(Req(&via_router, "resilience").rfind("err shard_unavailable ", 0),
            0u);
  EXPECT_EQ(Req(&via_router, "resilience").rfind("err shard_unavailable ", 0),
            0u);

  // Shard-0 sessions keep working through the same router.
  const std::string alive = NameOwnedBy(0, "alive");
  LineClient healthy;
  Connect(&healthy, router_->port());
  EXPECT_EQ(Req(&healthy, "open " + alive + " R(x,y)"),
            "ok open " + alive + " staging");

  // Restart a backend on the same port; after the cooldown the router
  // probes again and the shard serves fresh sessions.
  ResilienceEngine engine;
  ServerOptions options;
  options.port = shard1_port;
  options.threads = 2;
  ResilienceServer revived(options, &engine);
  std::string error;
  ASSERT_TRUE(revived.Start(&error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  const std::string recovered = NameOwnedBy(1, "recover");
  LineClient back;
  Connect(&back, router_->port());
  EXPECT_EQ(Req(&back, "open " + recovered + " R(x,y)"),
            "ok open " + recovered + " staging");
  // The doomed session died with its shard: the honest reply is
  // no-session, not a hang or a silently re-created session.
  EXPECT_EQ(Req(&back, "use " + doomed).rfind("err no-session ", 0), 0u);
  revived.Stop();
}

// The ISSUE acceptance drive, in-process: an oracle-checked loadgen
// through a 4-shard router stays clean, and the aggregated router stats
// match the per-shard sums afterwards.
TEST(RouterLoadgenTest, FourShardOracleCheckedLoadgenIsClean) {
  InProcessShards shards;
  ServerOptions base;
  base.threads = 2;
  std::string error;
  ASSERT_TRUE(shards.Start(4, base, &error)) << error;
  RouterOptions options;
  options.shards = shards.specs();
  options.threads = 4;
  ShardRouter router(options);
  ASSERT_TRUE(router.Start(&error)) << error;

  // Two persistent sessions so the post-loadgen aggregation has
  // non-trivial sums (loadgen closes its own sessions on the way out).
  LineClient setup;
  ASSERT_TRUE(setup.Connect("127.0.0.1", router.port(), &error)) << error;
  std::string reply, err;
  ASSERT_TRUE(setup.Request("open keeper-a R(x,y)", &reply, &err)) << err;
  ASSERT_TRUE(setup.Request("push R(a, b)", &reply, &err)) << err;
  ASSERT_TRUE(setup.Request("begin", &reply, &err)) << err;
  ASSERT_TRUE(setup.Request("open keeper-b R(x,y)", &reply, &err)) << err;
  ASSERT_TRUE(setup.Request("push R(c, d)", &reply, &err)) << err;

  LoadgenOptions load;
  load.host = "127.0.0.1";
  load.port = router.port();
  load.connections = 4;
  load.scenario = "vc_er";
  load.size = 8;
  load.epochs = 3;
  load.rate = 0.15;
  load.seed = 7;
  load.check_oracle = true;
  load.timeout_ms = 30000;

  LoadgenReport report = RunLoadgen(load);
  EXPECT_EQ(report.error, "");
  EXPECT_EQ(report.err_replies, 0u);
  EXPECT_EQ(report.oracle_mismatches, 0u);
  EXPECT_GT(report.oracle_checks, 0u);
  EXPECT_EQ(report.epochs_applied, 12u);  // 4 connections x 3 epochs

  auto field = [](const std::string& text, const std::string& key) {
    size_t at = text.find(" " + key + "=");
    EXPECT_NE(at, std::string::npos) << key << " in " << text;
    if (at == std::string::npos) return -1LL;
    return static_cast<long long>(std::stoll(text.substr(at + key.size() + 2)));
  };
  long long sessions = 0, live = 0, tuples = 0, sets = 0;
  for (size_t i = 0; i < shards.count(); ++i) {
    LineClient direct;
    ASSERT_TRUE(direct.Connect("127.0.0.1", shards.server(i)->port(), &error))
        << error;
    std::string stats;
    ASSERT_TRUE(direct.Request("stats", &stats, &err)) << err;
    ASSERT_EQ(stats.rfind("ok stats scope=server ", 0), 0u) << stats;
    sessions += field(stats, "sessions");
    live += field(stats, "live");
    tuples += field(stats, "tuples");
    sets += field(stats, "sets");
  }
  EXPECT_EQ(sessions, 2);  // the keepers survived the loadgen traffic
  EXPECT_EQ(live, 1);

  LineClient via_router;
  ASSERT_TRUE(via_router.Connect("127.0.0.1", router.port(), &error)) << error;
  std::string agg;
  ASSERT_TRUE(via_router.Request("stats", &agg, &err)) << err;
  ASSERT_EQ(agg.rfind("ok stats scope=router shards=4 up=4 ", 0), 0u) << agg;
  EXPECT_EQ(field(agg, "sessions"), sessions);
  EXPECT_EQ(field(agg, "live"), live);
  EXPECT_EQ(field(agg, "tuples"), tuples);
  EXPECT_EQ(field(agg, "sets"), sets);

  router.Stop();
  shards.Stop();
}

}  // namespace
}  // namespace rescq
