#include <gtest/gtest.h>

#include <set>

#include "cq/parser.h"
#include "db/database.h"
#include "db/witness.h"

namespace rescq {
namespace {

TEST(Database, InternIsIdempotent) {
  Database db;
  Value a = db.Intern("a");
  EXPECT_EQ(db.Intern("a"), a);
  EXPECT_NE(db.Intern("b"), a);
  EXPECT_EQ(db.ValueName(a), "a");
  EXPECT_EQ(db.domain_size(), 2);
}

TEST(Database, AddTupleDedups) {
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  TupleId t1 = db.AddTuple("R", {a, b});
  TupleId t2 = db.AddTuple("R", {a, b});
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(db.NumRows(t1.relation), 1);
  EXPECT_EQ(db.TupleToString(t1), "R(a,b)");
}

TEST(Database, ActiveFlags) {
  Database db;
  Value a = db.Intern("a");
  TupleId t = db.AddTuple("R", {a});
  EXPECT_TRUE(db.IsActive(t));
  db.SetActive(t, false);
  EXPECT_FALSE(db.IsActive(t));
  EXPECT_EQ(db.NumActiveTuples(), 0);
  db.ActivateAll();
  EXPECT_TRUE(db.IsActive(t));
}

TEST(Database, FindTuple) {
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  db.AddTuple("R", {a, b});
  EXPECT_TRUE(db.FindTuple("R", {a, b}).has_value());
  EXPECT_FALSE(db.FindTuple("R", {b, a}).has_value());
  EXPECT_FALSE(db.FindTuple("S", {a}).has_value());
}

// Builds the Section 2 example: qchain over
// D = {t1: R(1,2), t2: R(2,3), t3: R(3,3)}.
Database ChainExample(TupleId* t1, TupleId* t2, TupleId* t3) {
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  *t1 = db.AddTuple("R", {v1, v2});
  *t2 = db.AddTuple("R", {v2, v3});
  *t3 = db.AddTuple("R", {v3, v3});
  return db;
}

TEST(Witness, PaperChainExample) {
  // witnesses(D, qchain) = {(1,2,3), (2,3,3), (3,3,3)} with tuple sets
  // {t1,t2}, {t2,t3}, {t3} (Section 2).
  TupleId t1, t2, t3;
  Database db = ChainExample(&t1, &t2, &t3);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ASSERT_EQ(ws.size(), 3u);

  std::set<std::vector<std::string>> assignments;
  for (const Witness& w : ws) {
    std::vector<std::string> names;
    for (Value v : w.assignment) names.push_back(db.ValueName(v));
    assignments.insert(names);
  }
  EXPECT_TRUE(assignments.count({"1", "2", "3"}));
  EXPECT_TRUE(assignments.count({"2", "3", "3"}));
  EXPECT_TRUE(assignments.count({"3", "3", "3"}));

  std::vector<std::vector<TupleId>> sets = WitnessTupleSets(q, db);
  std::set<std::vector<TupleId>> expect = {{t1, t2}, {t2, t3}, {t3}};
  EXPECT_EQ(std::set<std::vector<TupleId>>(sets.begin(), sets.end()), expect);
}

TEST(Witness, QueryHolds) {
  TupleId t1, t2, t3;
  Database db = ChainExample(&t1, &t2, &t3);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  EXPECT_TRUE(QueryHolds(q, db));
  // Deleting t2 and t3 leaves only R(1,2): no chain.
  db.SetActive(t2, false);
  db.SetActive(t3, false);
  EXPECT_FALSE(QueryHolds(q, db));
}

TEST(Witness, DeactivationShrinksWitnesses) {
  TupleId t1, t2, t3;
  Database db = ChainExample(&t1, &t2, &t3);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  db.SetActive(t3, false);
  std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ASSERT_EQ(ws.size(), 1u);  // only (1,2,3)
  EXPECT_EQ(ws[0].endo_tuples, (std::vector<TupleId>{t1, t2}));
}

TEST(Witness, ExogenousAtomsExcludedFromTupleSets) {
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  TupleId r = db.AddTuple("R", {a, b});
  db.AddTuple("S", {b});
  Query q = MustParseQuery("R(x,y), S^x(y)");
  std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].endo_tuples, (std::vector<TupleId>{r}));
  EXPECT_EQ(ws[0].atom_tuples.size(), 2u);
}

TEST(Witness, AllExogenousGivesEmptyTupleSet) {
  Database db;
  Value a = db.Intern("a");
  db.AddTuple("R", {a, a});
  Query q = MustParseQuery("R^x(x,y)");
  std::vector<std::vector<TupleId>> sets = WitnessTupleSets(q, db);
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_TRUE(sets[0].empty());
}

TEST(Witness, SelfJoinSharedTupleDeduplicated) {
  // R(a,a) matches both atoms of the chain: one endogenous tuple.
  Database db;
  Value a = db.Intern("a");
  TupleId t = db.AddTuple("R", {a, a});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].endo_tuples, (std::vector<TupleId>{t}));
}

TEST(Witness, RepeatedVariableAtomRequiresEqualColumns) {
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  db.AddTuple("R", {a, a});
  db.AddTuple("R", {a, b});
  Query q = MustParseQuery("R(x,x)");
  std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(db.ValueName(ws[0].assignment[0]), "a");
}

TEST(Witness, MissingRelationMeansNoWitnesses) {
  Database db;
  db.AddTuple("R", {db.Intern("a")});
  Query q = MustParseQuery("R(x), S(x,y)");
  EXPECT_TRUE(EnumerateWitnesses(q, db, kNoWitnessLimit).empty());
}

TEST(Witness, ArityMismatchMeansNoWitnesses) {
  Database db;
  db.AddTuple("R", {db.Intern("a")});
  Query q = MustParseQuery("R(x,y)");
  EXPECT_TRUE(EnumerateWitnesses(q, db, kNoWitnessLimit).empty());
}

TEST(Witness, LimitCapsEnumeration) {
  Database db;
  for (int i = 0; i < 10; ++i) {
    db.AddTuple("R", {db.InternIndexed("a", i)});
  }
  Query q = MustParseQuery("R(x)");
  EXPECT_EQ(EnumerateWitnesses(q, db, 3).size(), 3u);
}

TEST(Witness, CrossProductDisconnectedQuery) {
  Database db;
  Value a1 = db.Intern("a1"), a2 = db.Intern("a2");
  Value b1 = db.Intern("b1");
  db.AddTuple("A", {a1});
  db.AddTuple("A", {a2});
  db.AddTuple("B", {b1});
  Query q = MustParseQuery("A(x), B(y)");
  EXPECT_EQ(EnumerateWitnesses(q, db, kNoWitnessLimit).size(), 2u);
}

TEST(Witness, TriangleQuery) {
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("S", {v2, v3});
  db.AddTuple("T", {v3, v1});
  db.AddTuple("R", {v2, v3});  // irrelevant extra
  Query q = MustParseQuery("R(x,y), S(y,z), T(z,x)");
  std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ASSERT_EQ(ws.size(), 1u);
  EXPECT_EQ(ws[0].endo_tuples.size(), 3u);
}

}  // namespace
}  // namespace rescq
