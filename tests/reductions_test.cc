#include <gtest/gtest.h>

#include "reductions/cnf.h"
#include "reductions/gadget_sat_qchain.h"
#include "reductions/gadget_vc_qchain.h"
#include "reductions/gadget_vc_qvc.h"
#include "reductions/graph.h"
#include "reductions/max2sat.h"
#include "reductions/sat_solver.h"
#include "reductions/vertex_cover.h"
#include "resilience/exact_solver.h"
#include "resilience/solver.h"
#include "util/rng.h"

namespace rescq {
namespace {

// --- CNF / SAT substrates ----------------------------------------------------

CnfFormula FromLiterals(int num_vars,
                        std::vector<std::vector<int>> clauses) {
  // Positive literal k encodes variable k-1; negative -k encodes ¬(k-1).
  CnfFormula f;
  f.num_vars = num_vars;
  for (const auto& c : clauses) {
    Clause clause;
    for (int lit : c) {
      clause.literals.push_back(Literal{std::abs(lit) - 1, lit > 0});
    }
    f.clauses.push_back(clause);
  }
  return f;
}

TEST(Cnf, EvaluateAndCount) {
  CnfFormula f = FromLiterals(2, {{1, 2}, {-1, 2}, {-2}});
  EXPECT_TRUE(Evaluate(f, {false, true}) == false);  // clause 3 fails
  EXPECT_EQ(CountSatisfied(f, {false, true}), 2);
  EXPECT_TRUE(Evaluate(f, {true, false}) == false);  // clause 2 fails
  EXPECT_EQ(CountSatisfied(f, {true, false}), 2);
}

TEST(Cnf, RandomCnfShape) {
  Rng rng(1);
  CnfFormula f = RandomCnf(5, 12, 3, rng);
  EXPECT_EQ(f.num_vars, 5);
  ASSERT_EQ(f.clauses.size(), 12u);
  for (const Clause& c : f.clauses) {
    ASSERT_EQ(c.literals.size(), 3u);
    // Distinct variables within a clause.
    EXPECT_NE(c.literals[0].var, c.literals[1].var);
    EXPECT_NE(c.literals[1].var, c.literals[2].var);
    EXPECT_NE(c.literals[0].var, c.literals[2].var);
  }
}

TEST(SatSolver, KnownSatisfiable) {
  CnfFormula f = FromLiterals(3, {{1, 2, 3}, {-1, 2, -3}, {1, -2, 3}});
  std::optional<std::vector<bool>> a = SolveSat(f);
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(Evaluate(f, *a));
}

TEST(SatSolver, KnownUnsatisfiable) {
  // All eight sign patterns over three variables: unsatisfiable.
  std::vector<std::vector<int>> clauses;
  for (int mask = 0; mask < 8; ++mask) {
    clauses.push_back({(mask & 1) ? 1 : -1, (mask & 2) ? 2 : -2,
                       (mask & 4) ? 3 : -3});
  }
  EXPECT_FALSE(IsSatisfiable(FromLiterals(3, clauses)));
}

TEST(SatSolver, UnitPropagationChain) {
  CnfFormula f = FromLiterals(4, {{1}, {-1, 2}, {-2, 3}, {-3, 4}, {-4, -1}});
  EXPECT_FALSE(IsSatisfiable(f));
}

TEST(SatSolver, MatchesBruteForceOnRandomFormulas) {
  Rng rng(42);
  for (int trial = 0; trial < 60; ++trial) {
    CnfFormula f = RandomCnf(5, 3 + static_cast<int>(rng.Below(18)), 3, rng);
    bool brute = false;
    for (uint32_t mask = 0; mask < 32 && !brute; ++mask) {
      std::vector<bool> a;
      for (int v = 0; v < 5; ++v) a.push_back((mask >> v) & 1);
      brute = Evaluate(f, a);
    }
    EXPECT_EQ(IsSatisfiable(f), brute) << "trial " << trial;
  }
}

TEST(Max2Sat, BruteForce) {
  // (x1)(¬x1)(x1∨x2)(¬x1∨¬x2): at most 3 satisfiable.
  CnfFormula f = FromLiterals(2, {{1}, {-1}, {1, 2}, {-1, -2}});
  EXPECT_EQ(MaxSatisfiableBruteForce(f), 3);
  CnfFormula sat = FromLiterals(2, {{1, 2}, {-1, 2}});
  EXPECT_EQ(MaxSatisfiableBruteForce(sat), 2);
}

// --- Graph / VC substrates -----------------------------------------------------

TEST(VertexCover, KnownGraphs) {
  EXPECT_EQ(MinVertexCover(CycleGraph(5)).size, 3);
  EXPECT_EQ(MinVertexCover(CycleGraph(6)).size, 3);
  EXPECT_EQ(MinVertexCover(CompleteGraph(4)).size, 3);
  EXPECT_EQ(MinVertexCover(PetersenGraph()).size, 6);
  Graph empty;
  empty.num_vertices = 4;
  EXPECT_EQ(MinVertexCover(empty).size, 0);
}

TEST(VertexCover, CoverIsValid) {
  Rng rng(3);
  Graph g = RandomGraph(8, 1, 3, rng);
  VertexCoverResult vc = MinVertexCover(g);
  for (auto [u, v] : g.edges) {
    bool covered = false;
    for (int c : vc.cover) covered = covered || c == u || c == v;
    EXPECT_TRUE(covered);
  }
}

// --- VC -> q_vc gadget (Proposition 9) -----------------------------------------

TEST(VcQvcGadget, ResilienceEqualsVertexCover) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = RandomGraph(3 + static_cast<int>(rng.Below(5)), 1, 2, rng);
    VcQvcGadget gadget = BuildVcQvcGadget(g);
    ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
    EXPECT_EQ(r.resilience, MinVertexCover(g).size) << "trial " << trial;
  }
}

TEST(VcQvcGadget, NamedGraphs) {
  for (const Graph& g : {CycleGraph(5), CompleteGraph(4), PetersenGraph()}) {
    VcQvcGadget gadget = BuildVcQvcGadget(g);
    EXPECT_EQ(ComputeResilienceExact(gadget.query, gadget.db).resilience,
              MinVertexCover(g).size);
  }
}

// --- VC -> q_chain gadget (or-property paths) -----------------------------------

TEST(VcChainGadget, ResilienceIsVcPlusEdges) {
  for (const Graph& g :
       {CycleGraph(4), CycleGraph(5), CompleteGraph(3), CompleteGraph(4)}) {
    VcChainGadget gadget = BuildVcQchainGadget(g);
    ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
    EXPECT_EQ(r.resilience, MinVertexCover(g).size + gadget.offset);
  }
}

TEST(VcChainGadget, RandomGraphs) {
  Rng rng(23);
  for (int trial = 0; trial < 8; ++trial) {
    Graph g = RandomGraph(3 + static_cast<int>(rng.Below(4)), 1, 2, rng);
    VcChainGadget gadget = BuildVcQchainGadget(g);
    ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
    EXPECT_EQ(r.resilience, MinVertexCover(g).size + gadget.offset)
        << "trial " << trial;
  }
}

TEST(VcChainGadget, CoverPlusOnePerEdgeBreaksQuery) {
  Graph g = CycleGraph(4);
  VcChainGadget gadget = BuildVcQchainGadget(g);
  VertexCoverResult vc = MinVertexCover(g);
  // Delete the cover's vertex tuples; then per edge one leftover tuple
  // still has to fall (the exact solver confirms the residual is |E|).
  for (int v : vc.cover) {
    gadget.db.SetActive(gadget.vertex_tuples[static_cast<size_t>(v)], false);
  }
  ResilienceResult rest = ComputeResilienceExact(gadget.query, gadget.db);
  EXPECT_EQ(rest.resilience, gadget.offset);
}

// --- 3SAT -> q_chain gadget (Proposition 10 / Figure 10) -------------------------

TEST(SatChainGadget, SatisfiableIffResilienceEqualsK) {
  Rng rng(7);
  int checked_sat = 0, checked_unsat = 0;
  for (int trial = 0; trial < 12; ++trial) {
    int n = 3;
    int m = 2 + static_cast<int>(rng.Below(2));  // 2..3 clauses
    CnfFormula f = RandomCnf(n, m, 3, rng);
    SatChainGadget gadget = BuildSatQchainGadget(f);
    ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
    if (IsSatisfiable(f)) {
      EXPECT_EQ(r.resilience, gadget.k) << f.ToString();
      ++checked_sat;
    } else {
      EXPECT_GE(r.resilience, gadget.k + 1) << f.ToString();
      ++checked_unsat;
    }
  }
  EXPECT_GT(checked_sat, 0);
}

TEST(SatChainGadget, UnsatisfiableFormulaCostsMore) {
  // x & ¬x forced through three-literal clauses:
  // (1∨1∨1) … use distinct vars: (x∨x∨x) is disallowed (distinct vars),
  // so build the classic unsatisfiable 8-clause formula over 3 vars.
  std::vector<std::vector<int>> clauses;
  for (int mask = 0; mask < 8; ++mask) {
    clauses.push_back({(mask & 1) ? 1 : -1, (mask & 2) ? 2 : -2,
                       (mask & 4) ? 3 : -3});
  }
  CnfFormula f = FromLiterals(3, clauses);
  ASSERT_FALSE(IsSatisfiable(f));
  SatChainGadget gadget = BuildSatQchainGadget(f);
  ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
  EXPECT_GE(r.resilience, gadget.k + 1);
}

TEST(SatChainGadget, SatisfiedAssignmentYieldsContingency) {
  // For a satisfiable formula, the assignment-derived tuple selection is
  // a valid contingency set of size k.
  CnfFormula f = FromLiterals(3, {{1, 2, 3}, {-1, -2, 3}});
  std::optional<std::vector<bool>> a = SolveSat(f);
  ASSERT_TRUE(a.has_value());
  SatChainGadget gadget = BuildSatQchainGadget(f);
  ResilienceResult r = ComputeResilienceExact(gadget.query, gadget.db);
  ASSERT_EQ(r.resilience, gadget.k);
  EXPECT_TRUE(VerifyContingency(gadget.query, gadget.db, r.contingency));
}

}  // namespace
}  // namespace rescq
