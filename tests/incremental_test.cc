// The incremental resilience subsystem: delta witness enumeration, the
// update log and its file round trip, churn generation, the stream
// runner, and — above all — IncrementalSession's metamorphic
// properties: resilience is monotone non-increasing under endogenous
// deletion, non-decreasing under insertion, invariant under
// insert-then-delete of one fact, and exogenous churn never drops it
// below the maintained lower bound.

#include "resilience/incremental.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "cq/parser.h"
#include "db/database.h"
#include "db/delta.h"
#include "db/tuple_io.h"
#include "db/witness.h"
#include "resilience/exact_solver.h"
#include "resilience/solver.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/generators.h"
#include "workload/stream.h"

namespace rescq {
namespace {

Update MakeUpdate(UpdateKind kind, const std::string& relation,
                  std::vector<std::string> constants) {
  Update u;
  u.kind = kind;
  u.relation = relation;
  u.constants = std::move(constants);
  return u;
}

Epoch OneUpdate(UpdateKind kind, const std::string& relation,
                std::vector<std::string> constants) {
  Epoch e;
  e.updates.push_back(MakeUpdate(kind, relation, std::move(constants)));
  return e;
}

// --- delta witness enumeration ---------------------------------------------

// Reference: all witnesses incident to `changed` = full enumeration
// filtered by atom_tuples membership.
std::vector<std::vector<TupleId>> IncidentWitnessAtoms(
    const Query& q, const Database& db, const std::vector<TupleId>& changed) {
  std::set<TupleId> set(changed.begin(), changed.end());
  std::vector<std::vector<TupleId>> out;
  ForEachWitness(q, db, [&](const Witness& w) {
    for (TupleId t : w.atom_tuples) {
      if (set.count(t) > 0) {
        out.push_back(w.atom_tuples);
        break;
      }
    }
    return true;
  });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DeltaWitness, VisitsExactlyTheIncidentWitnessesOnce) {
  // A self-join query, so one changed tuple can match several atoms and
  // one witness can use several changed tuples.
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Rng rng(0xDE17A);
  for (int round = 0; round < 30; ++round) {
    Database db;
    std::vector<Value> dom;
    for (int i = 0; i < 5; ++i) dom.push_back(db.InternIndexed("c", i));
    for (int t = 0; t < 10; ++t) {
      db.AddTuple("R", {dom[rng.Below(5)], dom[rng.Below(5)]});
    }
    std::vector<TupleId> all = db.ActiveTuples(db.RelationId("R"));
    std::vector<TupleId> changed;
    for (TupleId t : all) {
      if (rng.Chance(1, 3)) changed.push_back(t);
    }
    if (rng.Chance(1, 4) && !changed.empty()) {
      changed.push_back(changed[0]);  // duplicates must collapse
    }
    std::vector<std::vector<TupleId>> seen;
    ForEachDeltaWitness(q, db, changed, [&](const Witness& w) {
      seen.push_back(w.atom_tuples);
      return true;
    });
    std::sort(seen.begin(), seen.end());
    // Exactly once: equality as sorted multisets catches both misses
    // and double visits.
    EXPECT_EQ(seen, IncidentWitnessAtoms(q, db, changed))
        << "round " << round;
  }
}

TEST(DeltaWitness, EmptyChangeSetAndInactiveTuplesYieldNothing) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b"), c = db.Intern("c");
  TupleId ab = db.AddTuple("R", {a, b});
  db.AddTuple("R", {b, c});
  int visits = 0;
  ForEachDeltaWitness(q, db, {}, [&](const Witness&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
  db.SetActive(ab, false);
  ForEachDeltaWitness(q, db, {ab}, [&](const Witness&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 0);
}

TEST(DeltaWitness, CallbackCanStopEnumeration) {
  Query q = MustParseQuery("R(x,y)");
  Database db;
  Value a = db.Intern("a");
  std::vector<TupleId> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back(db.AddTuple("R", {a, db.InternIndexed("b", i)}));
  }
  int visits = 0;
  bool complete = ForEachDeltaWitness(q, db, rows, [&](const Witness&) {
    ++visits;
    return visits < 2;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(visits, 2);
}

TEST(WitnessIndex, SyncPicksUpAppendedRowsAndLateRelations) {
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  db.AddTuple("R", {a});
  db.AddTuple("R", {b});
  WitnessIndex index(q, db);  // S does not exist yet
  int count = 0;
  index.ForEach([&](const Witness&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);

  TupleId sab = db.AddTuple("S", {a, b});
  index.SyncNewRows();  // resolves the late relation
  index.ForEach([&](const Witness&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);

  Value c = db.Intern("c");
  db.AddTuple("R", {c});
  TupleId sbc = db.AddTuple("S", {b, c});
  index.SyncNewRows();
  count = 0;
  index.ForEachDelta({sbc}, [&](const Witness&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
  count = 0;
  index.ForEachDelta({sab, sbc}, [&](const Witness&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2);
}

// --- update log, application, and file round trip --------------------------

TEST(UpdateLog, ApplyInsertDeleteSemantics) {
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  TupleId ab = db.AddTuple("R", {a, b});

  // Insert of an existing active fact: no-op.
  EXPECT_FALSE(
      ApplyUpdate(MakeUpdate(UpdateKind::kInsert, "R", {"a", "b"}), &db)
          .has_value());
  // Delete deactivates; repeated delete is a no-op.
  std::optional<TupleId> del =
      ApplyUpdate(MakeUpdate(UpdateKind::kDelete, "R", {"a", "b"}), &db);
  ASSERT_TRUE(del.has_value());
  EXPECT_EQ(*del, ab);
  EXPECT_FALSE(db.IsActive(ab));
  EXPECT_FALSE(
      ApplyUpdate(MakeUpdate(UpdateKind::kDelete, "R", {"a", "b"}), &db)
          .has_value());
  // Reinsert reactivates the same tuple id.
  std::optional<TupleId> re =
      ApplyUpdate(MakeUpdate(UpdateKind::kInsert, "R", {"a", "b"}), &db);
  ASSERT_TRUE(re.has_value());
  EXPECT_EQ(*re, ab);
  EXPECT_TRUE(db.IsActive(ab));
  // Delete of an unknown fact / relation: no-op.
  EXPECT_FALSE(
      ApplyUpdate(MakeUpdate(UpdateKind::kDelete, "R", {"b", "a"}), &db)
          .has_value());
  EXPECT_FALSE(
      ApplyUpdate(MakeUpdate(UpdateKind::kDelete, "Q", {"a"}), &db)
          .has_value());
}

TEST(UpdateLog, ValidateCatchesArityMismatches) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  UpdateLog log;
  log.epochs.push_back(OneUpdate(UpdateKind::kInsert, "R", {"c"}));
  std::string error;
  EXPECT_FALSE(ValidateUpdateLog(log, db, &error));
  EXPECT_NE(error.find("arity"), std::string::npos);

  UpdateLog self_inconsistent;
  self_inconsistent.epochs.push_back(
      OneUpdate(UpdateKind::kInsert, "T", {"a", "b"}));
  self_inconsistent.epochs.push_back(OneUpdate(UpdateKind::kDelete, "T", {"a"}));
  EXPECT_FALSE(ValidateUpdateLog(self_inconsistent, db, &error));

  UpdateLog ok;
  ok.epochs.push_back(OneUpdate(UpdateKind::kInsert, "R", {"c", "d"}));
  ok.epochs.push_back(OneUpdate(UpdateKind::kInsert, "T", {"a"}));
  EXPECT_TRUE(ValidateUpdateLog(ok, db, &error)) << error;
}

TEST(UpdateLog, FileRoundTrip) {
  UpdateLog log;
  Epoch e1;
  e1.updates.push_back(MakeUpdate(UpdateKind::kInsert, "R", {"a", "b"}));
  e1.updates.push_back(MakeUpdate(UpdateKind::kDelete, "S", {"c"}));
  Epoch e2;  // deliberately empty epoch survives the round trip
  Epoch e3;
  e3.updates.push_back(MakeUpdate(UpdateKind::kInsert, "R", {"b", "c"}));
  log.epochs = {e1, e2, e3};

  std::ostringstream out;
  WriteUpdates(log, out, "header line");
  UpdateLog back;
  std::string error;
  std::istringstream in(out.str());
  ASSERT_TRUE(ReadUpdates(in, "<test>", &back, &error)) << error;
  EXPECT_EQ(log, back);
}

TEST(UpdateLog, ReadRejectsMalformedInput) {
  auto read = [](const std::string& text, std::string* error) {
    UpdateLog log;
    std::istringstream in(text);
    return ReadUpdates(in, "<test>", &log, error);
  };
  std::string error;
  EXPECT_FALSE(read("R(a,b)\n", &error));  // missing sign
  EXPECT_NE(error.find("<test>:1"), std::string::npos);
  EXPECT_FALSE(read("+ R(a,b)\n- R(c)\n", &error));  // arity flip
  EXPECT_NE(error.find("<test>:2"), std::string::npos);
  EXPECT_FALSE(read("+ lower(a)\n", &error));  // bad relation
  EXPECT_FALSE(read("epoch + R(a,b)\n", &error));  // fact on marker line

  // Signs may be attached, epochs labeled (including '-' in the
  // label), comments interleaved.
  UpdateLog log;
  std::istringstream in("# c\nepoch warm-up\n+R(a, b)\n-S(c)\n");
  ASSERT_TRUE(ReadUpdates(in, "<test>", &log, &error)) << error;
  ASSERT_EQ(log.epochs.size(), 1u);
  ASSERT_EQ(log.epochs[0].updates.size(), 2u);
  EXPECT_EQ(log.epochs[0].updates[0].kind, UpdateKind::kInsert);
  EXPECT_EQ(log.epochs[0].updates[1].kind, UpdateKind::kDelete);
}

// --- incremental session ----------------------------------------------------

// From-scratch answer over the session's current database.
ResilienceResult Scratch(const IncrementalSession& session) {
  return ComputeResilienceExact(session.query(), session.db());
}

void ExpectMatchesScratch(const IncrementalSession& session,
                          const EpochOutcome& out, const std::string& where) {
  ResilienceResult exact = Scratch(session);
  EXPECT_EQ(out.unbreakable, exact.unbreakable) << where;
  if (!exact.unbreakable) {
    EXPECT_EQ(out.resilience, exact.resilience) << where;
    EXPECT_EQ(static_cast<int>(out.contingency.size()), out.resilience)
        << where;
    Database copy = session.db();
    EXPECT_TRUE(VerifyContingency(session.query(), copy, out.contingency))
        << where;
    EXPECT_LE(out.lower_bound, out.resilience) << where;
    EXPECT_EQ(out.upper_bound, out.resilience) << where;
  }
}

TEST(IncrementalSession, InitialBuildMatchesExact) {
  ScenarioParams params;
  params.size = 12;
  params.seed = 3;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  IncrementalSession session(q, db, EngineOptions{});
  EXPECT_EQ(session.current().epoch, 0);
  EXPECT_GT(session.current().family_sets, 0u);
  ExpectMatchesScratch(session, session.current(), "initial");
}

TEST(IncrementalSession, MonotoneNonIncreasingUnderEndogenousDeletion) {
  ScenarioParams params;
  params.size = 10;
  params.seed = 7;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  IncrementalSession session(q, db, EngineOptions{});
  ChurnParams churn;
  churn.epochs = 8;
  churn.rate = 0.1;
  churn.seed = 5;
  UpdateLog log = GenerateChurn(db, "delete", churn);
  int previous = session.current().resilience;
  for (const Epoch& epoch : log.epochs) {
    EpochOutcome out = session.Apply(epoch);
    ASSERT_FALSE(out.unbreakable);
    EXPECT_LE(out.resilience, previous);
    ExpectMatchesScratch(session, out, "delete epoch");
    previous = out.resilience;
  }
}

TEST(IncrementalSession, MonotoneNonDecreasingUnderInsertion) {
  ScenarioParams params;
  params.size = 10;
  params.seed = 11;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  IncrementalSession session(q, db, EngineOptions{});
  ChurnParams churn;
  churn.epochs = 6;
  churn.rate = 0.1;
  churn.seed = 6;
  UpdateLog log = GenerateChurn(db, "insert", churn);
  int previous = session.current().resilience;
  for (const Epoch& epoch : log.epochs) {
    EpochOutcome out = session.Apply(epoch);
    // Insertion can only add witnesses: the minimum hitting set grows
    // or, if an all-exogenous witness appeared, becomes undefined —
    // which this query (all atoms endogenous) cannot produce.
    ASSERT_FALSE(out.unbreakable);
    EXPECT_GE(out.resilience, previous);
    ExpectMatchesScratch(session, out, "insert epoch");
    previous = out.resilience;
  }
}

TEST(IncrementalSession, InsertThenDeleteOfOneFactIsInvariant) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database db;
  std::string error;
  ASSERT_TRUE(LoadTupleFile("data/section2_chain.tuples", &db, &error) ||
              LoadTupleFile("../data/section2_chain.tuples", &db, &error))
      << error;
  IncrementalSession session(q, db, EngineOptions{});
  const EpochOutcome before = session.current();

  // Same epoch: nets to nothing.
  Epoch both;
  both.updates.push_back(MakeUpdate(UpdateKind::kInsert, "R", {"z", "x"}));
  both.updates.push_back(MakeUpdate(UpdateKind::kDelete, "R", {"z", "x"}));
  EpochOutcome out = session.Apply(both);
  EXPECT_EQ(out.inserted, 0);
  EXPECT_EQ(out.deleted, 0);
  EXPECT_EQ(out.resilience, before.resilience);
  ExpectMatchesScratch(session, out, "same-epoch net");

  // Consecutive epochs: back to the starting answer.
  session.Apply(OneUpdate(UpdateKind::kInsert, "R", {"z", "x"}));
  out = session.Apply(OneUpdate(UpdateKind::kDelete, "R", {"z", "x"}));
  EXPECT_EQ(out.resilience, before.resilience);
  EXPECT_EQ(out.contingency.size(), before.contingency.size());
  ExpectMatchesScratch(session, out, "two-epoch net");
}

TEST(IncrementalSession, ExogenousChurnRespectsTheLowerBound) {
  // S is exogenous: churning it shifts witness support and can remove
  // or add whole sets, but the answer must track the exact solve and
  // never dip below the maintained certified lower bound.
  Query q = MustParseQuery("A(x), S^x(x,y), A(y)");
  Database db;
  Rng rng(0xE406);
  std::vector<Value> dom;
  for (int i = 0; i < 8; ++i) dom.push_back(db.InternIndexed("v", i));
  for (Value v : dom) db.AddTuple("A", {v});
  for (int t = 0; t < 12; ++t) {
    db.AddTuple("S", {dom[rng.Below(8)], dom[rng.Below(8)]});
  }
  IncrementalSession session(q, db, EngineOptions{});
  Rng churn_rng(0xABCD);
  for (int epoch = 0; epoch < 10; ++epoch) {
    Epoch e;
    for (int u = 0; u < 3; ++u) {
      std::string a = "v_" + std::to_string(churn_rng.Below(8));
      std::string b = "v_" + std::to_string(churn_rng.Below(8));
      e.updates.push_back(MakeUpdate(
          churn_rng.Chance(1, 2) ? UpdateKind::kInsert : UpdateKind::kDelete,
          "S", {a, b}));
    }
    EpochOutcome out = session.Apply(e);
    ASSERT_FALSE(out.unbreakable);
    EXPECT_GE(out.resilience, out.lower_bound) << "epoch " << epoch;
    ExpectMatchesScratch(session, out, "exogenous epoch");
  }
}

TEST(IncrementalSession, UnbreakableAppearsAndResolves) {
  // A query whose only atom is exogenous: any witness at all makes it
  // unbreakable, deleting the last fact makes it false again.
  Query q = MustParseQuery("S^x(x,y)");
  Database db;
  db.AddRelation("S", 2);
  IncrementalSession session(q, db, EngineOptions{});
  EXPECT_FALSE(session.current().unbreakable);
  EXPECT_EQ(session.current().resilience, 0);

  EpochOutcome out =
      session.Apply(OneUpdate(UpdateKind::kInsert, "S", {"a", "b"}));
  EXPECT_TRUE(out.unbreakable);

  out = session.Apply(OneUpdate(UpdateKind::kDelete, "S", {"a", "b"}));
  EXPECT_FALSE(out.unbreakable);
  EXPECT_EQ(out.resilience, 0);
}

TEST(IncrementalSession, WitnessBudgetPoisonsTheSessionStructurally) {
  ScenarioParams params;
  params.size = 10;
  params.seed = 2;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  EngineOptions options;
  options.witness_limit = 3;  // far below the instance's witness count
  IncrementalSession session(q, db, options);
  EXPECT_TRUE(session.current().budget_exceeded);
  EXPECT_NE(session.current().error.find("witness budget"), std::string::npos);
  // Later epochs keep reporting the structured error.
  EpochOutcome out =
      session.Apply(OneUpdate(UpdateKind::kInsert, "R", {"zz"}));
  EXPECT_TRUE(out.budget_exceeded);
  EXPECT_NE(out.error.find("witness budget"), std::string::npos);
}

TEST(IncrementalSession, NodeBudgetYieldsAVerifiedUpperBound) {
  ScenarioParams params;
  params.size = 14;
  params.density = 0.6;
  params.seed = 4;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  EngineOptions options;
  options.exact_node_budget = 1;
  IncrementalSession session(q, db, options);
  const EpochOutcome& out = session.current();
  ResilienceResult exact = ComputeResilienceExact(q, session.db());
  ASSERT_FALSE(exact.unbreakable);
  if (out.budget_exceeded) {
    EXPECT_NE(out.error.find("node budget"), std::string::npos);
    EXPECT_GE(out.resilience, exact.resilience);  // upper bound only
  } else {
    EXPECT_EQ(out.resilience, exact.resilience);
  }
  // Either way the reported contingency set must falsify the query.
  Database copy = session.db();
  EXPECT_TRUE(VerifyContingency(q, copy, out.contingency));
}

TEST(IncrementalSession, EvictThenTouchMatchesANeverEvictedTwin) {
  // Cold-state eviction drops only rebuildable state (the WitnessIndex
  // and refresh scratch); every answer after the lazy rebuild must be
  // what a never-evicted twin computes on the same epoch stream.
  ScenarioParams params;
  params.size = 12;
  params.seed = 17;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  IncrementalSession evicted(q, db, EngineOptions{});
  IncrementalSession twin(q, db, EngineOptions{});
  ChurnParams churn;
  churn.epochs = 8;
  churn.rate = 0.15;
  churn.seed = 23;
  UpdateLog log = GenerateChurn(db, "mixed", churn);

  EXPECT_TRUE(evicted.index_resident());
  int epoch_index = 0;
  for (const Epoch& epoch : log.epochs) {
    if (epoch_index % 2 == 0) {
      size_t freed = evicted.EvictColdState();
      EXPECT_GT(freed, 0u) << "epoch " << epoch_index;
      EXPECT_FALSE(evicted.index_resident());
      EXPECT_EQ(evicted.EvictColdState(), 0u);  // idempotent
      EXPECT_EQ(evicted.ApproxMemory().index_bytes, 0u);
      // Reads keep working from the maintained state while evicted.
      EXPECT_EQ(evicted.Peek().resilience, twin.Peek().resilience);
    }
    EpochOutcome a = evicted.Apply(epoch);
    EpochOutcome b = twin.Apply(epoch);
    EXPECT_TRUE(evicted.index_resident());  // lazily rebuilt
    EXPECT_EQ(a.resilience, b.resilience) << "epoch " << epoch_index;
    EXPECT_EQ(a.unbreakable, b.unbreakable) << "epoch " << epoch_index;
    EXPECT_EQ(a.lower_bound, b.lower_bound) << "epoch " << epoch_index;
    EXPECT_EQ(a.upper_bound, b.upper_bound) << "epoch " << epoch_index;
    EXPECT_EQ(a.family_sets, b.family_sets) << "epoch " << epoch_index;
    EXPECT_EQ(a.contingency, b.contingency) << "epoch " << epoch_index;
    ExpectMatchesScratch(evicted, a, "evicted epoch");
    ++epoch_index;
  }
  EXPECT_EQ(evicted.evictions(), 4u);
  EXPECT_EQ(evicted.rebuilds(), 4u);
  EXPECT_EQ(twin.evictions(), 0u);
  EXPECT_EQ(twin.rebuilds(), 0u);
}

TEST(IncrementalSession, EvictionOnAPoisonedSessionStaysPoisoned) {
  ScenarioParams params;
  params.size = 10;
  params.seed = 2;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  EngineOptions options;
  options.witness_limit = 3;
  IncrementalSession session(q, db, options);
  ASSERT_TRUE(session.poisoned());
  session.EvictColdState();
  EXPECT_FALSE(session.index_resident());
  // A poisoned session never rebuilds: Apply keeps refusing with the
  // structured budget error and the index stays down.
  EpochOutcome out = session.Apply(OneUpdate(UpdateKind::kInsert, "R", {"zz"}));
  EXPECT_TRUE(out.budget_exceeded);
  EXPECT_FALSE(session.index_resident());
  EXPECT_EQ(session.rebuilds(), 0u);
}

// --- churn generators -------------------------------------------------------

TEST(Churn, DeterministicAndRegistered) {
  EXPECT_EQ(AllChurnNames(),
            (std::vector<std::string>{"insert", "delete", "mixed", "hub"}));
  EXPECT_TRUE(IsChurnKind("hub"));
  EXPECT_FALSE(IsChurnKind("bogus"));

  ScenarioParams params;
  params.size = 10;
  params.seed = 9;
  Database db = GenerateErdosRenyiVC(params);
  ChurnParams churn;
  churn.epochs = 5;
  churn.rate = 0.2;
  churn.seed = 42;
  for (const ChurnKind& kind : ChurnCatalog()) {
    UpdateLog a = GenerateChurn(db, kind.name, churn);
    UpdateLog b = GenerateChurn(db, kind.name, churn);
    EXPECT_EQ(a, b) << kind.name;
    EXPECT_EQ(a.epochs.size(), 5u) << kind.name;
    EXPECT_GT(a.size(), 0u) << kind.name;
    std::string error;
    EXPECT_TRUE(ValidateUpdateLog(a, db, &error)) << kind.name << ": " << error;
  }
  churn.seed = 43;
  EXPECT_FALSE(GenerateChurn(db, "mixed", churn) ==
               GenerateChurn(db, "mixed",
                             ChurnParams{churn.epochs, churn.rate, 42}));
}

TEST(Churn, KindsHaveTheirSign) {
  ScenarioParams params;
  params.size = 10;
  params.seed = 13;
  Database db = GenerateErdosRenyiVC(params);
  ChurnParams churn;
  churn.epochs = 4;
  churn.rate = 0.15;
  churn.seed = 8;
  UpdateLog inserts = GenerateChurn(db, "insert", churn);
  for (const Update& u : inserts.epochs[0].updates) {
    EXPECT_EQ(u.kind, UpdateKind::kInsert);
  }
  UpdateLog deletes = GenerateChurn(db, "delete", churn);
  for (const Update& u : deletes.epochs[0].updates) {
    EXPECT_EQ(u.kind, UpdateKind::kDelete);
  }
}

// --- stream runner ----------------------------------------------------------

TEST(Stream, RunStreamChecksOracleAndWritesSchemaV4) {
  ScenarioParams params;
  params.size = 10;
  params.seed = 21;
  Database db = GenerateErdosRenyiVC(params);
  Query q = MustParseQuery("R(x), S(x,y), R(y)");
  ChurnParams churn;
  churn.epochs = 4;
  churn.rate = 0.15;
  churn.seed = 3;
  UpdateLog log = GenerateChurn(db, "mixed", churn);
  StreamOptions options;
  options.check_oracle = true;
  StreamReport report = RunStream(q, "q_vc", db, log, options);
  ASSERT_EQ(report.rows.size(), 5u);  // epoch 0 + 4 epochs
  EXPECT_EQ(report.mismatches, 0);
  for (const StreamRow& row : report.rows) {
    EXPECT_TRUE(row.oracle_checked);
    EXPECT_TRUE(row.oracle_match);
  }

  std::ostringstream json, csv;
  WriteStreamJson(report, json);
  EXPECT_NE(json.str().find("\"schema\": \"rescq-stream-report/v6\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"mismatches\": 0"), std::string::npos);
  WriteStreamCsv(report, csv);
  const std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("epoch,inserted,deleted,tuples,delta_witnesses"),
            std::string::npos);
  // One header line plus one line per row.
  EXPECT_EQ(static_cast<size_t>(
                std::count(csv_text.begin(), csv_text.end(), '\n')),
            report.rows.size() + 1);
}

}  // namespace
}  // namespace rescq
