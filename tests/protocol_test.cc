// Protocol-layer tests: drive a ProtocolHandler directly (no sockets)
// through the happy path and every error path, plus the table-driven
// malformed-input sweep over the text parsers the server exposes to
// untrusted bytes. Nothing in here may abort or throw — that is the
// hardening contract.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cq/parser.h"
#include "db/tuple_io.h"
#include "gtest/gtest.h"
#include "resilience/engine.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/session_registry.h"

namespace rescq {
namespace {

bool StartsWithStr(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

class ProtocolTest : public ::testing::Test {
 protected:
  std::string Req(const std::string& line) {
    ProtocolResult r = handler_.Handle(line);
    EXPECT_FALSE(r.close_connection) << line;
    EXPECT_FALSE(r.stop_server) << line;
    return r.response;
  }

  SessionRegistry registry_;
  ResilienceEngine engine_;
  ServerLimits limits_;
  ProtocolHandler handler_{&registry_, &engine_, &limits_};
};

TEST_F(ProtocolTest, HappyPathSessionLifecycle) {
  EXPECT_EQ(Req("ping"), "ok pong\n");
  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  EXPECT_EQ(Req("push R(c, d)"), "ok push 2\n");

  std::string begin = Req("begin");
  ASSERT_TRUE(StartsWithStr(begin, "ok begin ")) << begin;
  EXPECT_NE(begin.find("resilience=2"), std::string::npos) << begin;
  EXPECT_NE(begin.find("unbreakable=0"), std::string::npos) << begin;
  EXPECT_NE(begin.find("tuples=2"), std::string::npos) << begin;

  EXPECT_EQ(Req("resilience"), "ok resilience 2\n");
  EXPECT_EQ(Req("- R(a, b)"), "ok queued 1\n");
  std::string epoch = Req("epoch");
  ASSERT_TRUE(StartsWithStr(epoch, "ok epoch ")) << epoch;
  EXPECT_NE(epoch.find("n=1"), std::string::npos) << epoch;
  EXPECT_NE(epoch.find("resilience=1"), std::string::npos) << epoch;
  EXPECT_EQ(Req("resilience"), "ok resilience 1\n");

  std::string stats = Req("stats");
  ASSERT_TRUE(StartsWithStr(stats, "ok stats session=s1 state=live "))
      << stats;
  EXPECT_NE(stats.find("poisoned=0"), std::string::npos) << stats;

  std::string classify = Req("classify");
  ASSERT_TRUE(StartsWithStr(classify, "ok classify PTIME ")) << classify;
  std::string explain = Req("explain");
  ASSERT_TRUE(StartsWithStr(explain, "ok explain ")) << explain;

  std::string sessions = Req("sessions");
  ASSERT_TRUE(StartsWithStr(sessions, "ok sessions 1\ns1 live ")) << sessions;

  EXPECT_EQ(Req("close"), "ok close s1\n");
  EXPECT_EQ(registry_.size(), 0u);
}

TEST_F(ProtocolTest, BlankAndCommentLinesGetNoReply) {
  EXPECT_EQ(Req(""), "");
  EXPECT_EQ(Req("   "), "");
  EXPECT_EQ(Req("# piped update file comment"), "");
}

// CRLF round trip: a telnet/netcat-style client terminating lines with
// \r\n (the transport strips the \n, leaving a trailing \r) must see
// byte-identical replies to an LF client.
TEST_F(ProtocolTest, CrlfLinesBehaveLikeLfLines) {
  EXPECT_EQ(Req("ping\r"), "ok pong\n");
  EXPECT_EQ(Req("open s1 R(x,y)\r"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)\r"), "ok push 1\n");
  EXPECT_EQ(Req("push R(c, d)\r"), "ok push 2\n");
  ASSERT_TRUE(StartsWithStr(Req("begin\r"), "ok begin "));
  EXPECT_EQ(Req("- R(a, b)\r"), "ok queued 1\n");
  ASSERT_TRUE(StartsWithStr(Req("epoch\r"), "ok epoch "));
  EXPECT_EQ(Req("resilience\r"), "ok resilience 1\n");
  EXPECT_EQ(Req("\r"), "");
  EXPECT_EQ(Req("# comment\r"), "");
  EXPECT_EQ(Req("close\r"), "ok close s1\n");
}

// With no session selected, `stats` reports one summable server-scope
// line — the form the shard router scatter-gathers and adds up.
TEST_F(ProtocolTest, StatsWithoutSessionReportsServerScope) {
  EXPECT_EQ(Req("stats"),
            "ok stats scope=server sessions=0 live=0 staging=0 tuples=0 "
            "sets=0\n");

  EXPECT_EQ(Req("open a R(x,y)"), "ok open a staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  ASSERT_TRUE(StartsWithStr(Req("begin"), "ok begin "));
  EXPECT_EQ(Req("open b R(x,y)"), "ok open b staging\n");
  EXPECT_EQ(Req("push R(c, d)"), "ok push 1\n");
  EXPECT_EQ(Req("push R(e, f)"), "ok push 2\n");

  // A fresh handler (same registry) has no current session and sums
  // both: one live session with 1 tuple, one staging with 2.
  ProtocolHandler fresh(&registry_, &engine_, &limits_);
  EXPECT_EQ(fresh.Handle("stats").response,
            "ok stats scope=server sessions=2 live=1 staging=1 tuples=3 "
            "sets=1\n");
}

TEST_F(ProtocolTest, QuitAndShutdownControlTheConnection) {
  ProtocolResult quit = handler_.Handle("quit");
  EXPECT_EQ(quit.response, "ok bye\n");
  EXPECT_TRUE(quit.close_connection);
  EXPECT_FALSE(quit.stop_server);

  ProtocolResult shutdown = handler_.Handle("shutdown");
  EXPECT_EQ(shutdown.response, "ok shutdown\n");
  EXPECT_TRUE(shutdown.close_connection);
  EXPECT_TRUE(shutdown.stop_server);
}

TEST_F(ProtocolTest, ShutdownCanBeDisabled) {
  limits_.allow_shutdown = false;
  ProtocolResult r = handler_.Handle("shutdown");
  EXPECT_TRUE(StartsWithStr(r.response, "err shutdown-disabled "));
  EXPECT_FALSE(r.stop_server);
}

TEST_F(ProtocolTest, ErrorPathsAreStructured) {
  // No session selected yet.
  EXPECT_TRUE(StartsWithStr(Req("push R(a)"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("begin"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("+ R(a)"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("epoch"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("resilience"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("explain"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("close"), "err no-session "));

  // Malformed opens.
  EXPECT_TRUE(StartsWithStr(Req("open"), "err bad-request "));
  EXPECT_TRUE(StartsWithStr(Req("open s1"), "err bad-request "));
  EXPECT_TRUE(StartsWithStr(Req("open s1 not a query ((("), "err parse "));
  EXPECT_TRUE(StartsWithStr(
      Req("open " + std::string(300, 'x') + " R(x,y)"), "err bad-request "));

  // Unknown verbs and sessions.
  EXPECT_TRUE(StartsWithStr(Req("frobnicate"), "err bad-request "));
  EXPECT_TRUE(StartsWithStr(Req("use nope"), "err no-session "));
  EXPECT_TRUE(StartsWithStr(Req("close nope"), "err no-session "));

  // Duplicate session names.
  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_TRUE(StartsWithStr(Req("open s1 R(x,y)"), "err session-exists "));

  // Staging-state violations and malformed facts.
  EXPECT_TRUE(StartsWithStr(Req("epoch"), "err not-live "));
  EXPECT_TRUE(StartsWithStr(Req("+ R(a, b)"), "err not-live "));
  EXPECT_TRUE(StartsWithStr(Req("resilience"), "err not-live "));
  EXPECT_TRUE(StartsWithStr(Req("push nonsense(("), "err parse "));
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  EXPECT_TRUE(StartsWithStr(Req("push R(a, b, c)"), "err parse "));

  // begin option validation.
  EXPECT_TRUE(StartsWithStr(Req("begin frobs=3"), "err bad-request "));
  EXPECT_TRUE(
      StartsWithStr(Req("begin witness_limit=banana"), "err bad-request "));

  // Live-state violations.
  ASSERT_TRUE(StartsWithStr(Req("begin"), "ok begin "));
  EXPECT_TRUE(StartsWithStr(Req("begin"), "err not-staging "));
  EXPECT_TRUE(StartsWithStr(Req("push R(c, d)"), "err not-staging "));
  EXPECT_TRUE(StartsWithStr(Req("+ R(a, b, c)"), "err parse "));
  EXPECT_TRUE(StartsWithStr(Req("+ garbage"), "err parse "));

  EXPECT_EQ(Req("close"), "ok close s1\n");
  EXPECT_TRUE(StartsWithStr(Req("resilience"), "err no-session "));
}

TEST_F(ProtocolTest, AdmissionControlLimits) {
  SessionRegistry registry(/*max_sessions=*/1);
  limits_.max_sessions = 1;
  limits_.max_base_tuples = 2;
  limits_.max_epoch_updates = 1;
  ProtocolHandler handler(&registry, &engine_, &limits_);
  auto req = [&](const std::string& line) {
    return handler.Handle(line).response;
  };

  EXPECT_EQ(req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_TRUE(StartsWithStr(req("open s2 R(x,y)"), "err limit "));

  EXPECT_EQ(req("push R(a, b)"), "ok push 1\n");
  EXPECT_EQ(req("push R(c, d)"), "ok push 2\n");
  EXPECT_TRUE(StartsWithStr(req("push R(e, f)"), "err limit "));

  ASSERT_TRUE(StartsWithStr(req("begin"), "ok begin "));
  EXPECT_EQ(req("- R(a, b)"), "ok queued 1\n");
  EXPECT_TRUE(StartsWithStr(req("- R(c, d)"), "err limit "));
}

TEST_F(ProtocolTest, BudgetAdmissionClampAndReject) {
  limits_.max_witness_limit = 100;
  limits_.max_node_budget = 1000;

  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");

  // Asking for more than the cap (or for unlimited via 0) is rejected.
  EXPECT_TRUE(StartsWithStr(Req("begin witness_limit=101"), "err budget "));
  EXPECT_TRUE(StartsWithStr(Req("begin node_budget=0"), "err budget "));
  // Within the cap is fine; unset budgets clamp to the cap silently.
  ASSERT_TRUE(StartsWithStr(Req("begin witness_limit=50 node_budget=1000"),
                            "ok begin "));
  EXPECT_EQ(Req("resilience"), "ok resilience 1\n");
}

TEST_F(ProtocolTest, WitnessBudgetTripPoisonsTheSession) {
  limits_.default_witness_limit = 1;
  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  EXPECT_EQ(Req("push R(c, d)"), "ok push 2\n");
  // Epoch 0 must stream 2 witnesses against a budget of 1.
  EXPECT_TRUE(StartsWithStr(Req("begin"), "err budget "));
  EXPECT_TRUE(StartsWithStr(Req("resilience"), "err poisoned "));
  EXPECT_TRUE(StartsWithStr(Req("epoch"), "err poisoned "));
  std::string stats = Req("stats");
  EXPECT_NE(stats.find("poisoned=1"), std::string::npos) << stats;
}

TEST_F(ProtocolTest, EvictedSessionAnswersAfterLazyRebuild) {
  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  EXPECT_EQ(Req("push R(c, d)"), "ok push 2\n");
  ASSERT_TRUE(StartsWithStr(Req("begin"), "ok begin "));
  EXPECT_EQ(Req("resilience"), "ok resilience 2\n");

  // Force an idle sweep far in the future of any touch stamp: the
  // session drops its index but keeps serving reads from the
  // maintained answer.
  EXPECT_EQ(registry_.EvictColdSessions(SteadyNowMs() + 1000000, 1, 0), 1u);
  std::string stats = Req("stats");
  EXPECT_NE(stats.find("index=evicted evictions=1 rebuilds=0"),
            std::string::npos)
      << stats;
  EXPECT_EQ(Req("resilience"), "ok resilience 2\n");

  // The next epoch rebuilds lazily and answers exactly what a
  // never-evicted session would.
  EXPECT_EQ(Req("- R(a, b)"), "ok queued 1\n");
  std::string epoch = Req("epoch");
  ASSERT_TRUE(StartsWithStr(epoch, "ok epoch ")) << epoch;
  EXPECT_NE(epoch.find("resilience=1"), std::string::npos) << epoch;
  EXPECT_EQ(Req("resilience"), "ok resilience 1\n");
  stats = Req("stats");
  EXPECT_NE(stats.find("index=resident evictions=1 rebuilds=1"),
            std::string::npos)
      << stats;

  // A sweep under a generous byte cap with no idle limit is a no-op.
  EXPECT_EQ(registry_.EvictColdSessions(SteadyNowMs(), 0, 1u << 30), 0u);
}

TEST_F(ProtocolTest, ResidentByteCapEvictsThroughTheHandler) {
  limits_.max_resident_bytes = 1;  // every live session is over the cap
  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  EXPECT_EQ(Req("push R(c, d)"), "ok push 2\n");
  ASSERT_TRUE(StartsWithStr(Req("begin"), "ok begin "));
  // The post-request sweep already ran: the just-begun session was over
  // the 1-byte cap and lost its index, yet still answers.
  std::string stats = Req("stats");
  EXPECT_NE(stats.find("index=evicted evictions=1 rebuilds=0"),
            std::string::npos)
      << stats;
  EXPECT_EQ(Req("resilience"), "ok resilience 2\n");
  EXPECT_EQ(Req("- R(a, b)"), "ok queued 1\n");
  std::string epoch = Req("epoch");
  ASSERT_TRUE(StartsWithStr(epoch, "ok epoch ")) << epoch;
  EXPECT_NE(epoch.find("resilience=1"), std::string::npos) << epoch;
  EXPECT_EQ(Req("resilience"), "ok resilience 1\n");
  stats = Req("stats");
  EXPECT_NE(stats.find("index=evicted evictions=2 rebuilds=1"),
            std::string::npos)
      << stats;
}

TEST_F(ProtocolTest, ClassifyInlineAndUnbreakable) {
  EXPECT_TRUE(StartsWithStr(Req("classify R(x,y), R(y,z), R(z,x)"),
                            "ok classify NP-complete "));
  EXPECT_TRUE(StartsWithStr(Req("classify ((("), "err parse "));

  // An exogenous-only witness makes the query unbreakable.
  EXPECT_EQ(Req("open s1 R^x(x,y)"), "ok open s1 staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  std::string begin = Req("begin");
  ASSERT_TRUE(StartsWithStr(begin, "ok begin ")) << begin;
  EXPECT_NE(begin.find("unbreakable=1"), std::string::npos) << begin;
  EXPECT_EQ(Req("resilience"), "ok resilience unbreakable\n");
}

TEST_F(ProtocolTest, UseSwitchesBetweenSessions) {
  EXPECT_EQ(Req("open a R(x,y)"), "ok open a staging\n");
  EXPECT_EQ(Req("push R(a, b)"), "ok push 1\n");
  ASSERT_TRUE(StartsWithStr(Req("begin"), "ok begin "));
  EXPECT_EQ(Req("open b R(x,y)"), "ok open b staging\n");
  EXPECT_EQ(Req("use a"), "ok use a live\n");
  EXPECT_EQ(Req("resilience"), "ok resilience 1\n");
  EXPECT_EQ(Req("use b"), "ok use b staging\n");
  EXPECT_TRUE(StartsWithStr(Req("resilience"), "err not-live "));
  std::string sessions = Req("sessions");
  EXPECT_TRUE(StartsWithStr(sessions, "ok sessions 2\n")) << sessions;
}

TEST_F(ProtocolTest, LoadCanBeDisabledAndReportsIoErrors) {
  EXPECT_EQ(Req("open s1 R(x,y)"), "ok open s1 staging\n");
  EXPECT_TRUE(StartsWithStr(Req("load"), "err bad-request "));
  EXPECT_TRUE(StartsWithStr(Req("load /nonexistent/nope.tuples"), "err io "));
  limits_.allow_load = false;
  EXPECT_TRUE(StartsWithStr(Req("load x.tuples"), "err bad-request "));
}

// --- Satellite 1: table-driven malformed-input hardening ---------------------

struct MalformedCase {
  const char* name;
  const char* input;
};

TEST(ParserHardeningTest, ParseFactLineRejectsMalformedInput) {
  const MalformedCase kCases[] = {
      {"empty", ""},
      {"whitespace", "   "},
      {"no-parens", "R"},
      {"no-close", "R(a, b"},
      {"no-open", "R a, b)"},
      {"empty-relation", "(a, b)"},
      {"lowercase-relation", "r(a, b)"},
      {"empty-constant", "R(a, )"},
      {"only-comma", "R(,)"},
      {"trailing-junk", "R(a, b) extra"},
      {"nested-parens", "R((a), b)"},
      {"control-bytes", "R(\x01, \x02)x\x7f"},
      {"unbalanced-deep", "R(((((((((("},
  };
  for (const MalformedCase& c : kCases) {
    std::string relation, error;
    std::vector<std::string> constants;
    EXPECT_FALSE(ParseFactLine(c.input, &relation, &constants, &error))
        << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
  // And the sanity case that must keep working.
  std::string relation, error;
  std::vector<std::string> constants;
  ASSERT_TRUE(ParseFactLine("  R(a, b)  ", &relation, &constants, &error));
  EXPECT_EQ(relation, "R");
  EXPECT_EQ(constants, (std::vector<std::string>{"a", "b"}));
}

TEST(ParserHardeningTest, ParseUpdateLineRejectsMalformedInput) {
  const MalformedCase kCases[] = {
      {"empty", ""},
      {"no-sign", "R(a, b)"},
      {"sign-only-plus", "+"},
      {"sign-only-minus", "-"},
      {"double-sign", "+- R(a, b)"},
      {"bad-fact", "+ R(a,"},
      {"epoch-is-not-an-update", "epoch"},
      {"unicode-sign", "\xe2\x88\x92 R(a, b)"},
  };
  for (const MalformedCase& c : kCases) {
    Update update;
    std::string error;
    EXPECT_FALSE(ParseUpdateLine(c.input, &update, &error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
  Update update;
  std::string error;
  ASSERT_TRUE(ParseUpdateLine("-R(a, b)", &update, &error));
  EXPECT_EQ(update.kind, UpdateKind::kDelete);
  EXPECT_EQ(update.relation, "R");
}

TEST(ParserHardeningTest, AddFactCheckedVetsArity) {
  Database db;
  std::string error;
  ASSERT_TRUE(AddFactChecked(&db, "R", {"a", "b"}, &error));
  EXPECT_FALSE(AddFactChecked(&db, "R", {"a"}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(db.NumActiveTuples(), 1);  // the mismatch left db unchanged
}

TEST(ParserHardeningTest, ReadTuplesRejectsMalformedStreams) {
  const MalformedCase kCases[] = {
      {"garbage-line", "R(a, b)\nnot a fact\n"},
      {"arity-flip", "R(a, b)\nR(c)\n"},
      {"binary-noise", "\x01\x02(\xff)\n"},
  };
  for (const MalformedCase& c : kCases) {
    std::istringstream in(c.input);
    Database db;
    std::string error;
    EXPECT_FALSE(ReadTuples(in, "<test>", &db, &error)) << c.name;
    EXPECT_NE(error.find("<test>"), std::string::npos) << c.name;
  }
}

TEST(ParserHardeningTest, ReadUpdatesRejectsMalformedStreams) {
  const MalformedCase kCases[] = {
      {"unsigned-fact", "R(a, b)\n"},
      {"bad-fact", "+ R(a,\n"},
      {"arity-flip-in-log", "+ R(a, b)\n- R(c)\n"},
      {"sign-noise", "* R(a, b)\n"},
  };
  for (const MalformedCase& c : kCases) {
    std::istringstream in(c.input);
    UpdateLog log;
    std::string error;
    EXPECT_FALSE(ReadUpdates(in, "<test>", &log, &error)) << c.name;
    EXPECT_FALSE(error.empty()) << c.name;
  }
}

TEST(ParserHardeningTest, ParseQueryRejectsMalformedInput) {
  const MalformedCase kCases[] = {
      {"empty", ""},
      {"bare-head", "q :-"},
      {"unclosed-atom", "R(x, y"},
      {"numeric-relation", "1(x, y)"},
      {"stray-comma", "R(x,y),, S(y)"},
      {"binary-noise", "\x01\x02\x03"},
      {"arity-disagreement", "R(x, y), R(x)"},
  };
  for (const MalformedCase& c : kCases) {
    ParseResult r = ParseQuery(c.input);
    EXPECT_FALSE(r.ok) << c.name;
    EXPECT_FALSE(r.error.empty()) << c.name;
  }
}

// --- LineClient transport hardening ------------------------------------------

/// A bare TCP listener with no protocol behind it: connections land in
/// the backlog (or are accepted by the test) and never get a reply —
/// exactly the half-dead-server shape the client deadlines exist for.
class RawListener {
 public:
  RawListener() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    EXPECT_EQ(::listen(fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(
        ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~RawListener() {
    if (fd_ >= 0) ::close(fd_);
  }

  int Accept() { return ::accept(fd_, nullptr, nullptr); }
  int port() const { return port_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

TEST(LineClientTest, RequestTimesOutAgainstASilentServer) {
  RawListener listener;  // never replies; the connect rides the backlog
  LineClient client;
  client.set_io_timeout_ms(150);
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", listener.port(), &error)) << error;
  std::string reply;
  EXPECT_FALSE(client.Request("ping", &reply, &error));
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
  EXPECT_FALSE(client.connected());  // the failed request closed it
}

TEST(LineClientTest, OversizedReplyLineIsAStructuredError) {
  RawListener listener;
  std::thread peer([&listener] {
    int fd = listener.Accept();
    ASSERT_GE(fd, 0);
    // 80 KiB of reply bytes and never a newline: past the client's
    // 64 KiB line cap.
    std::string noise(80 * 1024, 'a');
    size_t sent = 0;
    while (sent < noise.size()) {
      ssize_t n = ::send(fd, noise.data() + sent, noise.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(fd);
  });
  LineClient client;
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", listener.port(), &error)) << error;
  std::string reply;
  EXPECT_FALSE(client.Request("ping", &reply, &error));
  EXPECT_NE(error.find("reply line over"), std::string::npos) << error;
  peer.join();
}

TEST(LineClientTest, ConnectResolvesHostNames) {
  RawListener listener;
  LineClient client;
  std::string error;
  // getaddrinfo resolution: "localhost" must work, not just numeric
  // IPv4 (the shard-spec form is host:port with arbitrary hosts).
  EXPECT_TRUE(client.Connect("localhost", listener.port(), &error)) << error;
  LineClient bad;
  bad.set_connect_timeout_ms(500);
  EXPECT_FALSE(
      bad.Connect("no-such-host.invalid", listener.port(), &error));
  EXPECT_NE(error.find("no-such-host.invalid"), std::string::npos) << error;
}

}  // namespace
}  // namespace rescq
