#!/usr/bin/env bash
# End-to-end smoke test for the rescq CLI, run by CTest.
#
# Usage: cli_smoke_test.sh <path-to-rescq-binary> <repo-source-dir>
#
# Covers every subcommand: classify and explain on one PTIME and one
# NP-complete catalog query, the full catalog self-check, a resilience
# computation over the Section 2 example database, and the incremental
# stream pipeline (churn generation, update-file round trip, golden
# table output).
set -u

RESCQ="${1:?usage: cli_smoke_test.sh <rescq-binary> <source-dir>}"
SRC="${2:?usage: cli_smoke_test.sh <rescq-binary> <source-dir>}"

failures=0

# expect <description> <needle> <argv...>: the command must exit 0 and
# print a line containing the needle.
expect() {
  local desc="$1" needle="$2"
  shift 2
  local out
  if ! out="$("$RESCQ" "$@" 2>&1)"; then
    echo "FAIL: $desc: '$RESCQ $*' exited non-zero"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  if ! grep -qF "$needle" <<<"$out"; then
    echo "FAIL: $desc: output of '$RESCQ $*' lacks '$needle'"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  echo "ok: $desc"
}

# expect_same <description> <file-a> <file-b>: byte equality, reported
# with the unified diff on failure (not just exit 1), so a stale fixture
# or golden file names exactly what drifted.
expect_same() {
  local desc="$1" a="$2" b="$3"
  local delta
  if delta="$(diff -u "$a" "$b" 2>&1)"; then
    echo "ok: $desc"
  else
    echo "FAIL: $desc: files differ"
    echo "$delta" | sed 's/^/    /'
    failures=$((failures + 1))
  fi
}

# normalize_times: volatile wall-clock fields become <t> so table output
# can be compared against checked-in golden files; the spaces padding
# them collapse too, since wider times shift the column.
normalize_times() {
  sed -E 's/ *[0-9]+\.[0-9]+/ <t>/g'
}

# classify: a PTIME catalog query (q_ACconf, Proposition 12) ...
expect "classify PTIME query" "RES(q) is PTIME" \
    classify "A(x), R(x,y), R(z,y), C(z)"

# ... and an NP-complete one (q_chain, Proposition 10).
expect "classify NP-complete query" "RES(q) is NP-complete" \
    classify "R(x,y), R(y,z)"

# classify by catalog name, including the triangle triad of the issue.
expect "classify triad by text" "triad" classify "R(x,y), S(y,z), T(z,x)"
expect "classify by --name" "RES(q) is PTIME" classify --name q_perm

# explain: the plan printer shows the pipeline and the registered solver
# (with paper citation) for one PTIME and one NP-complete query.
expect "explain PTIME query routes to linear-flow" "linear-flow" \
    explain "A(x), R(x,y), R(z,y), C(z)"
expect "explain names the pipeline" "pipeline" \
    explain "A(x), R(x,y), R(z,y), C(z)"
expect "explain NP-complete query plans the exact solver" "branch-and-bound" \
    explain "R(x,y), R(y,z)"
expect "explain cites the paper" "Proposition 33" explain --name q_perm

# catalog: exits 0 only if the classifier matches every published verdict.
expect "catalog self-check" "classifier agrees on" catalog
expect "catalog detail view" "Proposition 39" catalog q_AC3conf

# resilience: Section 2 running example, rho(q_chain, D) = 2, and the
# CLI verifies the contingency set before reporting success.
expect "resilience of Section 2 example" "rho(q, D) = 2" \
    resilience "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples"
expect "contingency verification" "query is false" \
    resilience "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples"
expect "exact reference solver" "rho(q, D) = 1" \
    resilience --name q_vc "$SRC/data/vc_path.tuples" --exact

# budgets: an ample node budget must not change the exact answer, and a
# tiny witness limit must surface as a structured outcome (exit 1 with a
# "witness budget exceeded" line), never as a silently wrong answer.
expect "node budget keeps the exact answer" "rho(q, D) = 2" \
    resilience "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples" \
    --exact --exact-node-budget 100000
budget_out="$("$RESCQ" resilience "R(x,y), R(y,z)" \
    "$SRC/data/section2_chain.tuples" --exact --witness-limit 1 2>&1)"
budget_status=$?
if [ "$budget_status" -eq 1 ] \
    && grep -q "witness budget exceeded" <<<"$budget_out"; then
  echo "ok: witness budget exceeded is a structured outcome"
else
  echo "FAIL: --witness-limit 1 should exit 1 with a budget message"
  echo "$budget_out" | sed 's/^/    /'
  failures=$((failures + 1))
fi
expect "batch reports budget-exceeded cells" "(budget exceeded)" \
    batch --scenarios chain --sizes 4 --seeds 1 --witness-limit 1
expect "batch counts budget cells in the summary" "1 over budget" \
    batch --scenarios chain --sizes 4 --seeds 1 --witness-limit 1

# gen: the scenario catalog lists the workload families, and generated
# fixtures are deterministic in the seed.
expect "gen scenario catalog" "vc_er" gen --list
expect "resilience of generated perm fixture" "rho(q, D) = 5" \
    resilience "R(x,y), R(y,x)" "$SRC/data/gen_perm_small.tuples"
expect "perm fixture solved by perm-count" "perm-count" \
    resilience "R(x,y), R(y,x)" "$SRC/data/gen_perm_small.tuples"
expect "resilience of generated ER fixture" "rho(q, D) = 4" \
    resilience --name q_vc "$SRC/data/gen_vc_er.tuples"

gen_a="$(mktemp)" ; gen_b="$(mktemp)"
"$RESCQ" gen --scenario vc_er --size 8 --seed 1 --out "$gen_a" >/dev/null
"$RESCQ" gen --scenario vc_er --size 8 --seed 1 --out "$gen_b" >/dev/null
if diff -q "$gen_a" "$gen_b" >/dev/null; then
  echo "ok: gen is deterministic in the seed"
else
  echo "FAIL: gen produced different files for the same seed"
  failures=$((failures + 1))
fi
# the checked-in fixture must match what `rescq gen --seed 1` emits
# today (compare facts only, so future header tweaks don't break this);
# a mismatch prints the diff so the stale facts are named directly.
facts_now="$(mktemp)" ; facts_repo="$(mktemp)"
grep -v '^#' "$gen_a" > "$facts_now"
grep -v '^#' "$SRC/data/gen_vc_er.tuples" > "$facts_repo"
expect_same "checked-in gen_vc_er.tuples matches the generator" \
    "$facts_repo" "$facts_now"
rm -f "$gen_a" "$gen_b" "$facts_now" "$facts_repo"

# The perm fixture gets the same freshness check.
gen_perm="$(mktemp)" ; facts_now="$(mktemp)" ; facts_repo="$(mktemp)"
"$RESCQ" gen --scenario perm --size 6 --seed 1 --out "$gen_perm" >/dev/null
grep -v '^#' "$gen_perm" > "$facts_now"
grep -v '^#' "$SRC/data/gen_perm_small.tuples" > "$facts_repo"
expect_same "checked-in gen_perm_small.tuples matches the generator" \
    "$facts_repo" "$facts_now"
rm -f "$gen_perm" "$facts_now" "$facts_repo"

# stream: incremental maintenance under churn. The generated stream is
# deterministic, every epoch cross-checks against the from-scratch
# oracle, and the table output matches the checked-in golden file after
# timing normalization.
expect "stream epochs match the oracle" "0 mismatch(es)" \
    stream "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples" \
    --churn mixed --epochs 4 --rate 0.25 --seed 7 --check-oracle
stream_out="$(mktemp)"
"$RESCQ" stream "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples" \
    --churn mixed --epochs 4 --rate 0.25 --seed 7 --check-oracle \
    | normalize_times > "$stream_out"
expect_same "stream table matches the golden file" \
    "$SRC/tests/golden/stream_chain.golden" "$stream_out"
rm -f "$stream_out"

# explain output is fully deterministic: compare verbatim.
explain_out="$(mktemp)"
"$RESCQ" explain --name q_vc > "$explain_out"
expect_same "explain output matches the golden file" \
    "$SRC/tests/golden/explain_q_vc.golden" "$explain_out"
rm -f "$explain_out"

# update-file round trip: a generated churn stream saved with
# --emit-updates and replayed with --updates must produce the identical
# report (and the file must survive a second round trip byte-for-byte).
upd_a="$(mktemp)" ; upd_b="$(mktemp)" ; rep_a="$(mktemp)" ; rep_b="$(mktemp)"
"$RESCQ" stream --name q_vc "$SRC/data/gen_vc_er.tuples" \
    --churn hub --epochs 3 --rate 0.2 --seed 5 --check-oracle \
    --emit-updates "$upd_a" | normalize_times > "$rep_a"
"$RESCQ" stream --name q_vc "$SRC/data/gen_vc_er.tuples" \
    --updates "$upd_a" --check-oracle --emit-updates "$upd_b" \
    | normalize_times > "$rep_b"
expect_same "replaying an emitted update file reproduces the report" \
    "$rep_a" "$rep_b"
if diff -q <(grep -v '^#' "$upd_a") <(grep -v '^#' "$upd_b") >/dev/null; then
  echo "ok: update files round-trip byte-for-byte (modulo headers)"
else
  echo "FAIL: update file changed across a read/write round trip"
  diff -u <(grep -v '^#' "$upd_a") <(grep -v '^#' "$upd_b") | sed 's/^/    /'
  failures=$((failures + 1))
fi
rm -f "$upd_a" "$upd_b" "$rep_a" "$rep_b"

# stream report files: the JSON carries the v6 schema (with a metrics
# block) and a zero mismatch summary.
stream_json="$(mktemp)"
"$RESCQ" stream --name q_vc "$SRC/data/gen_vc_er.tuples" \
    --churn mixed --epochs 3 --rate 0.2 --seed 2 --check-oracle \
    --json "$stream_json" >/dev/null
if grep -q '"schema": "rescq-stream-report/v6"' "$stream_json" \
    && grep -q '"metrics"' "$stream_json" \
    && grep -q '"mismatches": 0' "$stream_json"; then
  echo "ok: stream JSON report is v6 with metrics and 0 mismatches"
else
  echo "FAIL: stream JSON report lacks the v6 schema/metrics or has mismatches"
  sed 's/^/    /' "$stream_json"
  failures=$((failures + 1))
fi
rm -f "$stream_json"

# observability sinks: --metrics-json and --trace-out on a stream run
# must write valid JSON — the rescq-metrics/v1 snapshot with the
# bytes/tuple and bytes/witness gauges, and a Chrome trace_event
# document with at least one complete event. python3 -m json.tool is the
# well-formedness oracle when python3 is available.
metrics_json="$(mktemp)" ; trace_json="$(mktemp)"
"$RESCQ" stream --name q_vc "$SRC/data/gen_vc_er.tuples" \
    --churn hub --epochs 3 --rate 0.2 --seed 5 \
    --metrics-json "$metrics_json" --trace-out "$trace_json" >/dev/null
if grep -q '"schema": "rescq-metrics/v1"' "$metrics_json" \
    && grep -q '"mem.bytes_per_tuple"' "$metrics_json" \
    && grep -q '"mem.bytes_per_witness"' "$metrics_json" \
    && grep -q '"incremental.epochs": 3' "$metrics_json"; then
  echo "ok: --metrics-json writes a rescq-metrics/v1 snapshot with mem gauges"
else
  echo "FAIL: metrics snapshot lacks the v1 schema or the mem.* gauges"
  sed 's/^/    /' "$metrics_json"
  failures=$((failures + 1))
fi
if grep -q '"traceEvents"' "$trace_json" \
    && grep -q '"ph": "X"' "$trace_json" \
    && grep -q '"name": "epoch-apply"' "$trace_json"; then
  echo "ok: --trace-out writes Chrome trace events incl. epoch-apply spans"
else
  echo "FAIL: trace output lacks traceEvents / epoch-apply spans"
  sed 's/^/    /' "$trace_json"
  failures=$((failures + 1))
fi
if command -v python3 >/dev/null 2>&1; then
  if python3 -m json.tool "$metrics_json" >/dev/null \
      && python3 -m json.tool "$trace_json" >/dev/null; then
    echo "ok: metrics and trace files parse as JSON"
  else
    echo "FAIL: metrics or trace file is not valid JSON"
    failures=$((failures + 1))
  fi
fi
rm -f "$metrics_json" "$trace_json"

# resilience --stats: the timing/counter block is golden-checked (the
# counters are deterministic by the thread-invariance contract; the
# wall-clock fields normalize to <t>).
stats_out="$(mktemp)"
"$RESCQ" resilience "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples" \
    --stats | normalize_times > "$stats_out"
expect_same "resilience --stats matches the golden file" \
    "$SRC/tests/golden/resilience_stats_chain.golden" "$stats_out"
rm -f "$stats_out"

# batch: a tiny smoke sweep over every scenario on 2 threads, with the
# exact-solver cross-check on; the JSON report is left in the working
# directory for CI to upload as an artifact.
expect "batch smoke sweep (oracle clean)" "0 mismatch(es)" \
    batch --scenarios all --max-size 4 --seeds 1 --threads 2 \
    --check-oracle --json batch_report.json
if grep -q '"mismatches": 0' batch_report.json; then
  echo "ok: batch JSON report written with 0 mismatches"
else
  echo "FAIL: batch_report.json missing or reports mismatches"
  failures=$((failures + 1))
fi
# schema v5: the report must carry the plan-cache counters, the
# budget-exceeded accounting, the solver_threads option, and the
# metrics block.
if grep -q '"schema": "rescq-batch-report/v5"' batch_report.json \
    && grep -q '"plan_cache"' batch_report.json \
    && grep -q '"budget_exceeded"' batch_report.json \
    && grep -q '"solver_threads"' batch_report.json \
    && grep -q '"metrics"' batch_report.json; then
  echo "ok: batch JSON report is v5 with plan-cache, budget, solver, metrics"
else
  echo "FAIL: batch_report.json lacks the v5 plan-cache/budget/solver/metrics fields"
  failures=$((failures + 1))
fi

# determinism across thread counts: every column up to oracle_resilience
# (1-15) must be byte-identical between --threads 1 and --threads 4;
# only memo attribution and wall time may differ.
csv_1="$(mktemp)" ; csv_4="$(mktemp)"
"$RESCQ" batch --scenarios all --max-size 4 --seeds 1,2 --threads 1 \
    --check-oracle --csv "$csv_1" >/dev/null
"$RESCQ" batch --scenarios all --max-size 4 --seeds 1,2 --threads 4 \
    --check-oracle --csv "$csv_4" >/dev/null
if diff -q <(cut -d, -f1-15 "$csv_1") <(cut -d, -f1-15 "$csv_4") >/dev/null; then
  echo "ok: batch results identical on 1 and 4 threads"
else
  echo "FAIL: batch results differ between --threads 1 and --threads 4"
  failures=$((failures + 1))
fi
rm -f "$csv_1" "$csv_4"

# plan file: flags and files drive the same engine.
plan="$(mktemp)"
printf 'scenarios = vc_path, chain\nsizes = 4\nseeds = 1\ncheck_oracle = true\n' > "$plan"
expect "batch from plan file" "0 mismatch(es)" batch --plan "$plan"
rm -f "$plan"

# error handling: bad input must fail with the documented usage-error
# exit code 2 — any other status (including a crash) is a failure.
expect_usage_error() {
  local desc="$1"
  shift
  "$RESCQ" "$@" >/dev/null 2>&1
  local status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: $desc: expected exit 2, got $status"
    failures=$((failures + 1))
  else
    echo "ok: $desc"
  fi
}

expect_usage_error "malformed query rejected" classify "lower(x)"
expect_usage_error "explain without a query rejected" explain
expect_usage_error "explain with stray argument rejected" explain \
    "R(x,y), R(y,z)" extra
expect_usage_error "missing tuple file rejected" \
    resilience "R(x,y)" /nonexistent.tuples
tmpfile="$(mktemp)"
printf 'R(1)\nR(1,2)\n' > "$tmpfile"
expect_usage_error "arity-inconsistent tuple file rejected" \
    resilience "R(x,y)" "$tmpfile"
printf 'R(a,b) R(c,d)\n' > "$tmpfile"
expect_usage_error "two facts on one line rejected" \
    resilience "R(x,y)" "$tmpfile"
rm -f "$tmpfile"
expect_usage_error "unknown scenario rejected" gen --scenario bogus
expect_usage_error "gen without scenario rejected" gen --size 5
expect_usage_error "unknown batch scenario rejected" batch --scenarios bogus
expect_usage_error "unknown batch flag rejected" batch --frobnicate
expect_usage_error "stream without a source of updates rejected" \
    stream "R(x,y)" "$SRC/data/section2_chain.tuples"
expect_usage_error "stream with unknown churn kind rejected" \
    stream "R(x,y)" "$SRC/data/section2_chain.tuples" --churn bogus
expect_usage_error "stream with both update sources rejected" \
    stream "R(x,y)" "$SRC/data/section2_chain.tuples" --churn mixed \
    --updates /nonexistent.updates
tmpupd="$(mktemp)"
printf 'R(a,b)\n' > "$tmpupd"  # unsigned fact: not an update file
expect_usage_error "malformed update file rejected" \
    stream "R(x,y)" "$SRC/data/section2_chain.tuples" --updates "$tmpupd"
printf '+ R(a)\n' > "$tmpupd"  # arity clash with the base database
expect_usage_error "arity-inconsistent update file rejected" \
    stream "R(x,y)" "$SRC/data/section2_chain.tuples" --updates "$tmpupd"
rm -f "$tmpupd"

# serve + loadgen: a daemon on an ephemeral port (parsed from its
# announcement line), driven by an oracle-checked loadgen run, then shut
# down by SIGTERM — which must still produce the metrics snapshot.
serve_log="$(mktemp)" ; serve_metrics="$(mktemp)" ; loadgen_json="$(mktemp)"
"$RESCQ" serve --port 0 --threads 2 --metrics-json "$serve_metrics" \
    > "$serve_log" 2>&1 &
serve_pid=$!
serve_port=""
for _ in $(seq 1 50); do
  serve_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$serve_log" | head -n1)"
  [ -n "$serve_port" ] && break
  sleep 0.1
done
if [ -z "$serve_port" ]; then
  echo "FAIL: serve never announced its port"
  sed 's/^/    /' "$serve_log"
  failures=$((failures + 1))
  kill "$serve_pid" 2>/dev/null
else
  echo "ok: serve announced an ephemeral port ($serve_port)"
  loadgen_out="$("$RESCQ" loadgen --port "$serve_port" --connections 4 \
      --scenario vc_er --size 8 --epochs 2 --rate 0.15 --seed 3 \
      --check-oracle --json "$loadgen_json" 2>&1)"
  loadgen_status=$?
  if [ "$loadgen_status" -eq 0 ] \
      && grep -qF "0 mismatch" <<<"$loadgen_out"; then
    echo "ok: loadgen against live serve is oracle-clean"
  else
    echo "FAIL: loadgen exited $loadgen_status or reported mismatches"
    echo "$loadgen_out" | sed 's/^/    /'
    failures=$((failures + 1))
  fi
  if grep -q '"schema": "rescq-loadgen-report/v1"' "$loadgen_json" \
      && grep -q '"oracle_mismatches": 0' "$loadgen_json" \
      && grep -q '"p50_ms"' "$loadgen_json"; then
    echo "ok: loadgen JSON report is v1 with latency fields"
  else
    echo "FAIL: loadgen JSON report lacks the v1 schema/latency fields"
    sed 's/^/    /' "$loadgen_json"
    failures=$((failures + 1))
  fi
  kill -TERM "$serve_pid"
  if wait "$serve_pid"; then
    echo "ok: serve exits 0 on SIGTERM"
  else
    echo "FAIL: serve exited non-zero on SIGTERM"
    sed 's/^/    /' "$serve_log"
    failures=$((failures + 1))
  fi
  if grep -q '"schema": "rescq-metrics/v1"' "$serve_metrics" \
      && grep -q '"server.requests"' "$serve_metrics" \
      && grep -q '"server.request_ms"' "$serve_metrics"; then
    echo "ok: serve wrote a metrics snapshot with server.* series"
  else
    echo "FAIL: serve metrics snapshot lacks the server.* series"
    sed 's/^/    /' "$serve_metrics"
    failures=$((failures + 1))
  fi
  if command -v python3 >/dev/null 2>&1; then
    if python3 -m json.tool "$loadgen_json" >/dev/null \
        && python3 -m json.tool "$serve_metrics" >/dev/null; then
      echo "ok: loadgen report and serve metrics parse as JSON"
    else
      echo "FAIL: loadgen report or serve metrics is not valid JSON"
      failures=$((failures + 1))
    fi
  fi
fi
rm -f "$serve_log" "$serve_metrics" "$loadgen_json"

# route + loadgen: the consistent-hash front-end over two in-process
# shards (parsed from its own announcement line), driven by the same
# oracle-checked loadgen run through the router port, then shut down by
# SIGTERM — which must still flush the shard.* metrics snapshot.
route_log="$(mktemp)" ; route_metrics="$(mktemp)" ; route_json="$(mktemp)"
"$RESCQ" route --shards 2 --port 0 --threads 2 \
    --metrics-json "$route_metrics" > "$route_log" 2>&1 &
route_pid=$!
route_port=""
for _ in $(seq 1 50); do
  route_port="$(sed -n 's/.*routing on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "$route_log" | head -n1)"
  [ -n "$route_port" ] && break
  sleep 0.1
done
if [ -z "$route_port" ]; then
  echo "FAIL: route never announced its port"
  sed 's/^/    /' "$route_log"
  failures=$((failures + 1))
  kill "$route_pid" 2>/dev/null
else
  echo "ok: route announced an ephemeral port ($route_port)"
  route_out="$("$RESCQ" loadgen --port "$route_port" --connections 4 \
      --scenario vc_er --size 8 --epochs 2 --rate 0.15 --seed 3 \
      --check-oracle --json "$route_json" 2>&1)"
  route_status=$?
  if [ "$route_status" -eq 0 ] \
      && grep -qF "0 mismatch" <<<"$route_out" \
      && grep -qF "0 err replies" <<<"$route_out"; then
    echo "ok: loadgen through the 2-shard router is oracle-clean"
  else
    echo "FAIL: routed loadgen exited $route_status or reported errors"
    echo "$route_out" | sed 's/^/    /'
    failures=$((failures + 1))
  fi
  kill -TERM "$route_pid"
  if wait "$route_pid"; then
    echo "ok: route exits 0 on SIGTERM"
  else
    echo "FAIL: route exited non-zero on SIGTERM"
    sed 's/^/    /' "$route_log"
    failures=$((failures + 1))
  fi
  if grep -q '"schema": "rescq-metrics/v1"' "$route_metrics" \
      && grep -q '"shard.requests"' "$route_metrics" \
      && grep -q '"shard.forwarded"' "$route_metrics"; then
    echo "ok: route wrote a metrics snapshot with shard.* series"
  else
    echo "FAIL: route metrics snapshot lacks the shard.* series"
    sed 's/^/    /' "$route_metrics"
    failures=$((failures + 1))
  fi
fi
rm -f "$route_log" "$route_metrics" "$route_json"

expect_usage_error "loadgen without a port rejected" loadgen
expect_usage_error "serve with a bad port rejected" serve --port 99999
expect_usage_error "route without backends rejected" route
expect_usage_error "route with a bad shard spec rejected" route --shard bogus

if [ "$failures" -ne 0 ]; then
  echo "$failures smoke-test failure(s)"
  exit 1
fi
echo "all CLI smoke tests passed"
