#!/usr/bin/env bash
# End-to-end smoke test for the rescq CLI, run by CTest.
#
# Usage: cli_smoke_test.sh <path-to-rescq-binary> <repo-source-dir>
#
# Covers every subcommand: classify on one PTIME and one NP-complete
# catalog query, the full catalog self-check, and a resilience
# computation over the Section 2 example database.
set -u

RESCQ="${1:?usage: cli_smoke_test.sh <rescq-binary> <source-dir>}"
SRC="${2:?usage: cli_smoke_test.sh <rescq-binary> <source-dir>}"

failures=0

# expect <description> <needle> <argv...>: the command must exit 0 and
# print a line containing the needle.
expect() {
  local desc="$1" needle="$2"
  shift 2
  local out
  if ! out="$("$RESCQ" "$@" 2>&1)"; then
    echo "FAIL: $desc: '$RESCQ $*' exited non-zero"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  if ! grep -qF "$needle" <<<"$out"; then
    echo "FAIL: $desc: output of '$RESCQ $*' lacks '$needle'"
    echo "$out" | sed 's/^/    /'
    failures=$((failures + 1))
    return
  fi
  echo "ok: $desc"
}

# classify: a PTIME catalog query (q_ACconf, Proposition 12) ...
expect "classify PTIME query" "RES(q) is PTIME" \
    classify "A(x), R(x,y), R(z,y), C(z)"

# ... and an NP-complete one (q_chain, Proposition 10).
expect "classify NP-complete query" "RES(q) is NP-complete" \
    classify "R(x,y), R(y,z)"

# classify by catalog name, including the triangle triad of the issue.
expect "classify triad by text" "triad" classify "R(x,y), S(y,z), T(z,x)"
expect "classify by --name" "RES(q) is PTIME" classify --name q_perm

# catalog: exits 0 only if the classifier matches every published verdict.
expect "catalog self-check" "classifier agrees on" catalog
expect "catalog detail view" "Proposition 39" catalog q_AC3conf

# resilience: Section 2 running example, rho(q_chain, D) = 2, and the
# CLI verifies the contingency set before reporting success.
expect "resilience of Section 2 example" "rho(q, D) = 2" \
    resilience "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples"
expect "contingency verification" "query is false" \
    resilience "R(x,y), R(y,z)" "$SRC/data/section2_chain.tuples"
expect "exact reference solver" "rho(q, D) = 1" \
    resilience --name q_vc "$SRC/data/vc_path.tuples" --exact

# error handling: bad input must fail with the documented usage-error
# exit code 2 — any other status (including a crash) is a failure.
expect_usage_error() {
  local desc="$1"
  shift
  "$RESCQ" "$@" >/dev/null 2>&1
  local status=$?
  if [ "$status" -ne 2 ]; then
    echo "FAIL: $desc: expected exit 2, got $status"
    failures=$((failures + 1))
  else
    echo "ok: $desc"
  fi
}

expect_usage_error "malformed query rejected" classify "lower(x)"
expect_usage_error "missing tuple file rejected" \
    resilience "R(x,y)" /nonexistent.tuples
tmpfile="$(mktemp)"
printf 'R(1)\nR(1,2)\n' > "$tmpfile"
expect_usage_error "arity-inconsistent tuple file rejected" \
    resilience "R(x,y)" "$tmpfile"
printf 'R(a,b) R(c,d)\n' > "$tmpfile"
expect_usage_error "two facts on one line rejected" \
    resilience "R(x,y)" "$tmpfile"
rm -f "$tmpfile"

if [ "$failures" -ne 0 ]; then
  echo "$failures smoke-test failure(s)"
  exit 1
fi
echo "all CLI smoke tests passed"
