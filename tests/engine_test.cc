// ResilienceEngine: plan-once/solve-many API, the solver registry, and
// the plan cache — including the engine-vs-legacy equivalence sweep
// over the whole paper catalog and every workload scenario.

#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "complexity/catalog.h"
#include "cq/parser.h"
#include "resilience/engine.h"
#include "resilience/exact_solver.h"
#include "resilience/solver.h"
#include "workload/batch.h"
#include "workload/generators.h"
#include "workload/report.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

// --- Registry self-check: report strings are a compatibility surface --------

TEST(Registry, CoversEverySolverKindWithUniqueStableNames) {
  const SolverRegistry& registry = DefaultRegistry();
  std::set<std::string> names;
  for (SolverKind kind : kAllSolverKinds) {
    const SolverEntry* entry = registry.Find(kind);
    ASSERT_NE(entry, nullptr) << SolverKindName(kind);
    EXPECT_EQ(entry->name, SolverKindName(kind));
    EXPECT_TRUE(names.insert(entry->name).second)
        << "duplicate registry name " << entry->name;
    EXPECT_FALSE(entry->citation.empty()) << entry->name;
    EXPECT_FALSE(entry->description.empty()) << entry->name;
  }
  EXPECT_EQ(registry.entries().size(), std::size(kAllSolverKinds));
}

TEST(Registry, FallbacksAreNeverProbeSelected) {
  const SolverRegistry& registry = DefaultRegistry();
  for (const CatalogEntry& entry : PaperCatalog()) {
    Query q = MustParseQuery(entry.text);
    Classification c = ClassifyResilience(q);
    for (SolverKind kind : registry.Probe(q, c)) {
      const SolverEntry* e = registry.Find(kind);
      ASSERT_NE(e, nullptr);
      EXPECT_FALSE(e->is_fallback) << entry.name;
    }
  }
}

// --- Engine-vs-legacy equivalence sweep --------------------------------------

void ExpectMatchesReference(ResilienceEngine& engine, const Query& q,
                            const Database& db, const std::string& label) {
  SolveOutcome out = engine.Solve(q, db);
  ASSERT_TRUE(out.error.empty()) << label << ": " << out.error;
  ResilienceResult oracle = ComputeResilienceReference(q, db);
  ASSERT_EQ(out.result.unbreakable, oracle.unbreakable) << label;
  if (oracle.unbreakable) return;
  EXPECT_EQ(out.result.resilience, oracle.resilience)
      << label << " solver " << SolverKindName(out.result.solver);
  Database copy = db;
  EXPECT_TRUE(VerifyContingency(q, copy, out.result.contingency)) << label;
}

class EngineCatalogEquivalence
    : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(EngineCatalogEquivalence, SolveMatchesReferenceOnUniformInstances) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  ResilienceEngine engine;
  for (int size : {3, 5}) {
    for (uint64_t seed : {1u, 2u}) {
      Database db = GenerateUniform(q, {size, 0.5, seed});
      ExpectMatchesReference(
          engine, q, db,
          entry.name + " size " + std::to_string(size) + " seed " +
              std::to_string(seed));
    }
  }
  // The second size/seed rounds must have reused the memoized plan.
  EXPECT_EQ(engine.plan_cache_stats().misses, 1u);
  EXPECT_EQ(engine.plan_cache_stats().hits, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, EngineCatalogEquivalence, ::testing::ValuesIn(PaperCatalog()),
    [](const ::testing::TestParamInfo<CatalogEntry>& info) {
      return info.param.name;
    });

TEST(Engine, SolveMatchesReferenceOnEveryScenario) {
  ResilienceEngine engine;
  for (const Scenario& scenario : ScenarioCatalog()) {
    Query q = MustParseQuery(scenario.query);
    for (int size : {4, 6}) {
      for (uint64_t seed : {1u, 2u}) {
        Database db = scenario.generate({size, 0.5, seed});
        ExpectMatchesReference(
            engine, q, db,
            scenario.name + " size " + std::to_string(size) + " seed " +
                std::to_string(seed));
      }
    }
  }
}

TEST(Engine, DisconnectedQueryTakesComponentMinimum) {
  // Two components: the permutation pair and an independent S-edge;
  // Lemma 14 takes the cheaper side.
  Query q = MustParseQuery("R(x,y), R(y,x), S(u,v)");
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  db.AddTuple("R", {db.Intern("b"), db.Intern("a")});
  db.AddTuple("S", {db.Intern("u"), db.Intern("v")});
  ResilienceEngine engine;
  SolveOutcome out = engine.Solve(q, db);
  EXPECT_EQ(out.plan->components.size(), 2u);
  EXPECT_FALSE(out.result.unbreakable);
  EXPECT_EQ(out.result.resilience, 1);
  EXPECT_EQ(out.result.resilience,
            ComputeResilienceReference(q, db).resilience);
}

// --- Plan cache --------------------------------------------------------------

TEST(Engine, PlanIsMemoizedOnTheQueryFingerprint) {
  ResilienceEngine engine;
  Query q = MustParseQuery("R(x,y), R(y,x)");
  std::shared_ptr<const ResiliencePlan> first = engine.Plan(q);
  std::shared_ptr<const ResiliencePlan> second = engine.Plan(q);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(first->fingerprint, QueryFingerprint(q));
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Engine, PlanCacheEvictsLeastRecentlyUsed) {
  EngineOptions options;
  options.plan_cache_capacity = 1;
  ResilienceEngine engine(options);
  Query a = MustParseQuery("R(x,y), R(y,x)");
  Query b = MustParseQuery("R(x), S(x,y), R(y)");
  engine.Plan(a);
  engine.Plan(b);  // evicts a
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  engine.Plan(a);  // cold again
  EXPECT_EQ(engine.plan_cache_stats().misses, 3u);
  EXPECT_EQ(engine.plan_cache_stats().hits, 0u);
}

TEST(Engine, SolveReportsPlanCacheHits) {
  ResilienceEngine engine;
  Query q = MustParseQuery("R(x,y), R(y,x)");
  Database db = GeneratePermutation({6, 0.5, 1});
  SolveOutcome cold = engine.Solve(q, db);
  SolveOutcome warm = engine.Solve(q, db);
  EXPECT_FALSE(cold.plan_cache_hit);
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_EQ(warm.plan_ms, 0);
  EXPECT_EQ(cold.result.resilience, warm.result.resilience);
  EXPECT_EQ(cold.result.solver, warm.result.solver);
}

TEST(Engine, ZeroCapacityDisablesCaching) {
  EngineOptions options;
  options.plan_cache_capacity = 0;
  ResilienceEngine engine(options);
  Query q = MustParseQuery("R(x,y), R(y,x)");
  engine.Plan(q);
  engine.Plan(q);
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

// --- Options -----------------------------------------------------------------

TEST(Engine, ForceExactRunsTheReferenceSolver) {
  EngineOptions options;
  options.force_exact = true;
  ResilienceEngine engine(options);
  Query q = MustParseQuery("A(x), R(x,y), R(z,y), C(z)");
  Database db = GenerateDominationHeavy({6, 0.5, 1});
  SolveOutcome out = engine.Solve(q, db);
  EXPECT_EQ(out.result.solver, SolverKind::kExact);
  ResilienceResult oracle = ComputeResilienceReference(q, db);
  EXPECT_EQ(out.result.unbreakable, oracle.unbreakable);
  EXPECT_EQ(out.result.resilience, oracle.resilience);
}

TEST(Engine, WitnessBudgetSurfacesAsStructuredError) {
  // q_chain is NP-complete, so the engine plans the exact solver; with a
  // one-witness budget the Solve must report the budget error and the
  // default result, never a truncated answer.
  EngineOptions options;
  options.witness_limit = 1;
  ResilienceEngine engine(options);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  db.AddTuple("R", {v3, v3});
  SolveOutcome out = engine.Solve(q, db);
  EXPECT_NE(out.error.find("witness budget exceeded"), std::string::npos);
  EXPECT_TRUE(out.exact.witness_budget_exceeded);
  EXPECT_EQ(out.result.resilience, 0);

  // A roomy budget behaves exactly like no budget.
  EngineOptions roomy;
  roomy.witness_limit = 1000;
  ResilienceEngine roomy_engine(roomy);
  SolveOutcome ok = roomy_engine.Solve(q, db);
  EXPECT_TRUE(ok.error.empty());
  EXPECT_EQ(ok.result.resilience, 2);
  EXPECT_FALSE(ok.exact.witness_budget_exceeded);
}

TEST(Engine, SolveOutcomeCarriesExactSearchStats) {
  ResilienceEngine engine;
  Query q = MustParseQuery("R(x,y), R(y,z)");  // NP-complete: exact runs
  Database db;
  Value v1 = db.Intern("1"), v2 = db.Intern("2"), v3 = db.Intern("3");
  db.AddTuple("R", {v1, v2});
  db.AddTuple("R", {v2, v3});
  db.AddTuple("R", {v3, v3});
  SolveOutcome out = engine.Solve(q, db);
  EXPECT_EQ(out.result.resilience, 2);
  EXPECT_EQ(out.exact.witnesses, 3u);
  EXPECT_EQ(out.exact.witness_sets, 3u);
  EXPECT_GE(out.exact.nodes, 1u);

  // PTIME queries dispatched to a construction never touch the exact
  // path: the counters stay zero.
  Query ptime = MustParseQuery("R(x,y), R(y,x)");
  Database perm = GeneratePermutation({6, 0.5, 1});
  SolveOutcome fast = engine.Solve(ptime, perm);
  EXPECT_EQ(fast.result.solver, SolverKind::kPermCount);
  EXPECT_EQ(fast.exact.witnesses, 0u);
  EXPECT_EQ(fast.exact.nodes, 0u);
}

TEST(Engine, NodeBudgetReturnsVerifiedUpperBound) {
  EngineOptions options;
  options.exact_node_budget = 1;
  ResilienceEngine engine(options);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database db = GenerateChain({8, 0.5, 3});
  SolveOutcome out = engine.Solve(q, db);
  EXPECT_TRUE(out.error.empty());
  ResilienceResult oracle = ComputeResilienceReference(q, db);
  if (!oracle.unbreakable && oracle.resilience > 0) {
    EXPECT_GE(out.result.resilience, oracle.resilience);
    EXPECT_TRUE(VerifyContingency(q, db, out.result.contingency));
  }
}

TEST(Engine, FallbackReasonsRecordDeclinedConstructions) {
  // q_Aperm: perm-count probes as applicable (unbound permutation) but
  // declines at run time because A is also endogenous; the König cover
  // then solves it. The declined attempt must be visible.
  Query q = CatalogQuery("q_Aperm");
  Database db;
  db.AddTuple("A", {db.Intern("a")});
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  db.AddTuple("R", {db.Intern("b"), db.Intern("a")});
  ResilienceEngine engine;
  SolveOutcome out = engine.Solve(q, db);
  EXPECT_EQ(out.result.solver, SolverKind::kPermBipartite);
  ASSERT_FALSE(out.fallback_reasons.empty());
  EXPECT_NE(out.fallback_reasons[0].find("perm-count"), std::string::npos);
}

// A registry whose only construction always declines, to exercise the
// allow_fallback gate deterministically.
SolverRegistry DecliningRegistry() {
  SolverRegistry registry;
  SolverEntry declines;
  declines.kind = SolverKind::kLinearFlow;
  declines.name = "linear-flow";
  declines.citation = "test";
  declines.description = "always declines";
  declines.probe = [](const Query&, const Classification& c) {
    return c.complexity == Complexity::kPTime;
  };
  declines.run = [](const Query&,
                    const Database&) -> std::optional<ResilienceResult> {
    return std::nullopt;
  };
  registry.Register(std::move(declines));

  SolverEntry exact;
  exact.kind = SolverKind::kExact;
  exact.name = "exact";
  exact.citation = "test";
  exact.description = "exact";
  exact.run = [](const Query& q,
                 const Database& db) -> std::optional<ResilienceResult> {
    return ComputeResilienceExact(q, db);
  };
  exact.is_fallback = true;
  registry.Register(std::move(exact));

  SolverEntry fallback;
  fallback.kind = SolverKind::kExactFallback;
  fallback.name = "exact-fallback";
  fallback.citation = "test";
  fallback.description = "exact fallback";
  fallback.run = [](const Query& q,
                    const Database& db) -> std::optional<ResilienceResult> {
    ResilienceResult r = ComputeResilienceExact(q, db);
    r.solver = SolverKind::kExactFallback;
    return r;
  };
  fallback.is_fallback = true;
  registry.Register(std::move(fallback));
  return registry;
}

TEST(Engine, AllowFallbackGatesTheExactFallback) {
  static const SolverRegistry registry = DecliningRegistry();
  Query q = MustParseQuery("A(x), R(x,y), R(z,y), C(z)");
  Database db;
  db.AddTuple("A", {db.Intern("a")});
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  db.AddTuple("R", {db.Intern("c"), db.Intern("b")});
  db.AddTuple("C", {db.Intern("c")});

  EngineOptions strict;
  strict.allow_fallback = false;
  ResilienceEngine no_fallback(strict, &registry);
  SolveOutcome blocked = no_fallback.Solve(q, db);
  EXPECT_FALSE(blocked.error.empty());

  ResilienceEngine with_fallback(EngineOptions{}, &registry);
  SolveOutcome out = with_fallback.Solve(q, db);
  EXPECT_TRUE(out.error.empty());
  EXPECT_EQ(out.result.solver, SolverKind::kExactFallback);
  EXPECT_EQ(out.result.resilience,
            ComputeResilienceReference(q, db).resilience);
  ASSERT_FALSE(out.fallback_reasons.empty());
}

// --- Explain -----------------------------------------------------------------

// --- Engine sharing: concurrent Solve calls on one instance -----------------

// The documented concurrency contract (engine.h): every public method is
// safe from any number of threads; the only shared mutable state is the
// mutex-guarded plan-cache LRU. This hammers one engine from 8 threads
// over a working set larger than the cache (forcing concurrent splices,
// inserts, and evictions) and checks every answer against serially
// precomputed references. Runs under TSan via the `parallel` CI job's
// unit label.
void StressConcurrentSolves(EngineOptions options) {
  options.plan_cache_capacity = 3;  // < working set: constant LRU churn
  ResilienceEngine engine(options);
  struct Case {
    Query q;
    Database db;
    bool unbreakable;
    int resilience;
  };
  std::vector<Case> cases;
  const char* texts[] = {"R(x,y), R(y,x)", "R(x,y), R(y,z)",
                         "R(x), S(x,y), R(y)", "R(x,y), S(y,z), T(z,x)",
                         "A(x), R(x,y), R(y,x)", "R(x,y), R(y,z), S^x(z,w)"};
  for (const char* text : texts) {
    Case c;
    c.q = MustParseQuery(text);
    c.db = GenerateUniform(c.q, {4, 0.5, 7});
    ResilienceResult reference = ComputeResilienceReference(c.q, c.db);
    c.unbreakable = reference.unbreakable;
    c.resilience = reference.resilience;
    cases.push_back(std::move(c));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        const Case& c = cases[static_cast<size_t>(t + i) % cases.size()];
        SolveOutcome out = engine.Solve(c.q, c.db);
        bool ok = out.error.empty() &&
                  out.result.unbreakable == c.unbreakable &&
                  (c.unbreakable || out.result.resilience == c.resilience);
        if (!ok) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCacheStats stats = engine.plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 8u * 30u);
  EXPECT_LE(stats.entries, 3u);
}

TEST(Engine, ConcurrentSolvesOnOneEngineAreSafe) {
  StressConcurrentSolves(EngineOptions{});
}

TEST(Engine, ConcurrentSolvesComposeWithSolverWorkers) {
  // Each Solve additionally spins up its own private solver fan-out:
  // concurrent Solves nest independent pools without interference.
  EngineOptions options;
  options.solver_threads = 2;
  StressConcurrentSolves(options);
}

TEST(Plan, ExplainNamesPipelineSolverAndCitation) {
  ResilienceEngine engine;
  std::string ptime =
      engine.Plan(CatalogQuery("q_ACconf"))->Explain(engine.registry());
  EXPECT_NE(ptime.find("pipeline"), std::string::npos);
  EXPECT_NE(ptime.find("linear-flow"), std::string::npos);
  EXPECT_NE(ptime.find("Proposition"), std::string::npos);
  EXPECT_NE(ptime.find("fallback"), std::string::npos);

  std::string hard =
      engine.Plan(MustParseQuery("R(x,y), R(y,z)"))->Explain(
          engine.registry());
  EXPECT_NE(hard.find("NP-complete"), std::string::npos);
  EXPECT_NE(hard.find("branch-and-bound"), std::string::npos);
}

// --- Batch integration: cold vs cached plans ---------------------------------

TEST(Batch, CachedPlanYieldsByteIdenticalReportRows) {
  // The same (scenario, size, seed) twice with memoization off: the
  // second cell re-solves with the cached plan and must produce a
  // byte-identical deterministic row prefix (columns 1-15).
  BatchPlan plan;
  plan.scenarios = {"perm", "perm"};
  plan.sizes = {5};
  plan.seeds = {3};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 2u);
  BatchOptions options;  // threads = 1: deterministic attribution
  options.memoize = false;
  options.check_oracle = true;
  BatchReport report = RunBatch(jobs, options);
  EXPECT_FALSE(report.cells[0].plan_cache_hit);
  EXPECT_TRUE(report.cells[1].plan_cache_hit);
  EXPECT_EQ(report.plan_cache_hits, 1u);
  EXPECT_EQ(report.plan_cache_misses, 1u);
  EXPECT_EQ(report.plan_cache_entries, 1u);

  std::stringstream csv;
  WriteReportCsv(report, csv);
  std::vector<std::string> lines;
  for (std::string line; std::getline(csv, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // header + 2 cells
  auto prefix = [](const std::string& line) {
    // Strip the volatile tail: memo_hit, plan_cache_hit, wall_ms.
    size_t end = line.size();
    for (int cut = 0; cut < 3; ++cut) end = line.rfind(',', end - 1);
    return line.substr(0, end);
  };
  EXPECT_EQ(prefix(lines[1]), prefix(lines[2]));
}

TEST(Batch, MemoizedCellsDoNotTouchThePlanCache) {
  BatchPlan plan;
  plan.scenarios = {"perm", "perm"};
  plan.sizes = {5};
  plan.seeds = {3};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  BatchOptions options;  // memoize = true
  BatchReport report = RunBatch(jobs, options);
  EXPECT_TRUE(report.cells[1].memo_hit);
  EXPECT_FALSE(report.cells[1].plan_cache_hit);
  EXPECT_EQ(report.plan_cache_hits, 0u);
  EXPECT_EQ(report.plan_cache_misses, 1u);
}

}  // namespace
}  // namespace rescq
