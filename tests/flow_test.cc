#include <gtest/gtest.h>

#include <set>

#include "flow/bipartite.h"
#include "flow/max_flow.h"

namespace rescq {
namespace {

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.AddEdge(0, 1, 5);
  EXPECT_EQ(f.Compute(0, 1), 5);
}

TEST(MaxFlow, ParallelAndSeries) {
  // s -(3)-> a -(2)-> t  and s -(1)-> t.
  MaxFlow f(3);
  f.AddEdge(0, 1, 3);
  f.AddEdge(1, 2, 2);
  f.AddEdge(0, 2, 1);
  EXPECT_EQ(f.Compute(0, 2), 3);
}

TEST(MaxFlow, ClassicDiamond) {
  // Classic 4-node example with a cross edge; max flow 2000 + ... known.
  MaxFlow f(4);
  f.AddEdge(0, 1, 100);
  f.AddEdge(0, 2, 100);
  f.AddEdge(1, 3, 100);
  f.AddEdge(2, 3, 100);
  f.AddEdge(1, 2, 1);
  EXPECT_EQ(f.Compute(0, 3), 200);
}

TEST(MaxFlow, MinCutEdgesFormACut) {
  MaxFlow f(4);
  int e0 = f.AddEdge(0, 1, 1, /*tag=*/10);
  int e1 = f.AddEdge(0, 2, 1, /*tag=*/11);
  f.AddEdge(1, 3, 5);
  f.AddEdge(2, 3, 5);
  EXPECT_EQ(f.Compute(0, 3), 2);
  std::vector<int> cut = f.MinCutEdges();
  std::set<int> cut_set(cut.begin(), cut.end());
  EXPECT_EQ(cut_set, (std::set<int>{e0, e1}));
  EXPECT_EQ(f.edge(e0).tag, 10);
  EXPECT_EQ(f.edge(e1).tag, 11);
}

TEST(MaxFlow, InfiniteEdgesNeverInCut) {
  // s -∞-> a -1-> b -∞-> t : cut must be the middle edge.
  MaxFlow f(4);
  f.AddEdge(0, 1, kInfCapacity);
  int mid = f.AddEdge(1, 2, 1);
  f.AddEdge(2, 3, kInfCapacity);
  EXPECT_EQ(f.Compute(0, 3), 1);
  std::vector<int> cut = f.MinCutEdges();
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0], mid);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 7);
  f.AddEdge(2, 3, 7);
  EXPECT_EQ(f.Compute(0, 3), 0);
  EXPECT_TRUE(f.OnSourceSide(1));
  EXPECT_FALSE(f.OnSourceSide(3));
}

TEST(MaxFlow, LayeredGraphValue) {
  // 3 layers of 3 nodes, unit capacities, complete between layers:
  // value = 3.
  MaxFlow f(11);  // s=0, t=10, layers 1-3, 4-6, 7-9
  for (int i = 1; i <= 3; ++i) f.AddEdge(0, i, 1);
  for (int i = 1; i <= 3; ++i) {
    for (int j = 4; j <= 6; ++j) f.AddEdge(i, j, 1);
  }
  for (int j = 4; j <= 6; ++j) {
    for (int k = 7; k <= 9; ++k) f.AddEdge(j, k, 1);
  }
  for (int k = 7; k <= 9; ++k) f.AddEdge(k, 10, 1);
  EXPECT_EQ(f.Compute(0, 10), 3);
}

TEST(MaxFlow, AddNode) {
  MaxFlow f(2);
  int mid = f.AddNode();
  f.AddEdge(0, mid, 2);
  f.AddEdge(mid, 1, 1);
  EXPECT_EQ(f.Compute(0, 1), 1);
}

TEST(MaxFlow, SelfLoopDoesNotCorruptResidualGraph) {
  // Regression: AddEdge(u, u, ...) used to compute both rev indices
  // before the second push, leaving the forward edge pointing at itself
  // and corrupting augmentation through u. The loop must be inert: flow
  // values and min cuts are as if it were absent.
  MaxFlow f(3);
  f.AddEdge(0, 1, 2);
  int loop = f.AddEdge(1, 1, 5);
  int mid = f.AddEdge(1, 2, 1);
  EXPECT_EQ(f.Compute(0, 2), 1);
  EXPECT_EQ(f.edge(loop).to, 1);
  EXPECT_EQ(f.edge(loop).capacity, 5);  // untouched by augmentation
  std::vector<int> cut = f.MinCutEdges();
  ASSERT_EQ(cut.size(), 1u);
  EXPECT_EQ(cut[0], mid);
}

TEST(MaxFlow, SelfLoopReverseIndicesAreMutual) {
  // The forward/backward pair of a self-loop sits in one adjacency list;
  // their rev slots must reference each other, not themselves.
  MaxFlow f(1);
  f.AddEdge(0, 0, 3);
  const MaxFlow::Edge& forward = f.edge(0);
  EXPECT_TRUE(forward.forward);
  EXPECT_EQ(forward.capacity, 3);
  EXPECT_NE(forward.rev, 0);  // must point at the backward edge's slot
}

TEST(MaxFlow, SelfLoopOnSourceAndSink) {
  MaxFlow f(2);
  f.AddEdge(0, 0, 7);
  f.AddEdge(0, 1, 4);
  f.AddEdge(1, 1, 7);
  EXPECT_EQ(f.Compute(0, 1), 4);
}

TEST(Bipartite, PerfectMatchingSquare) {
  // K2,2: cover size 2.
  BipartiteCover c(2, 2);
  c.AddEdge(0, 0);
  c.AddEdge(0, 1);
  c.AddEdge(1, 0);
  c.AddEdge(1, 1);
  c.Compute();
  EXPECT_EQ(c.MatchingSize(), 2);
  EXPECT_EQ(c.CoverSize(), 2);
}

TEST(Bipartite, StarNeedsOneVertex) {
  // One left vertex connected to 4 rights: cover = {left}.
  BipartiteCover c(1, 4);
  for (int r = 0; r < 4; ++r) c.AddEdge(0, r);
  c.Compute();
  EXPECT_EQ(c.CoverSize(), 1);
  EXPECT_TRUE(c.left_in_cover()[0]);
}

TEST(Bipartite, CoverEqualsMatchingByKonig) {
  // Path: L0-R0, L1-R0, L1-R1, L2-R1. Max matching 2, cover 2.
  BipartiteCover c(3, 2);
  c.AddEdge(0, 0);
  c.AddEdge(1, 0);
  c.AddEdge(1, 1);
  c.AddEdge(2, 1);
  c.Compute();
  EXPECT_EQ(c.MatchingSize(), 2);
  EXPECT_EQ(c.CoverSize(), 2);
}

TEST(Bipartite, CoverIsActuallyACover) {
  BipartiteCover c(4, 4);
  std::vector<std::pair<int, int>> edges = {{0, 1}, {0, 2}, {1, 0}, {2, 3},
                                            {3, 3}, {1, 2}, {2, 0}};
  for (auto [l, r] : edges) c.AddEdge(l, r);
  c.Compute();
  for (auto [l, r] : edges) {
    EXPECT_TRUE(c.left_in_cover()[static_cast<size_t>(l)] ||
                c.right_in_cover()[static_cast<size_t>(r)])
        << l << "-" << r;
  }
  EXPECT_EQ(c.CoverSize(), c.MatchingSize());
}

TEST(Bipartite, EmptyGraph) {
  BipartiteCover c(3, 3);
  c.Compute();
  EXPECT_EQ(c.CoverSize(), 0);
  EXPECT_EQ(c.MatchingSize(), 0);
}

}  // namespace
}  // namespace rescq
