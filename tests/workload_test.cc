// Tests for the workload subsystem: scenario generators (determinism,
// tuple-file round trips) and the parallel batch engine (oracle
// agreement, thread-count invariance, memoization, plan parsing).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cq/parser.h"
#include "db/tuple_io.h"
#include "resilience/solver.h"
#include "workload/batch.h"
#include "workload/generators.h"
#include "workload/report.h"

namespace rescq {
namespace {

BatchPlan SmallPlan() {
  BatchPlan plan;
  plan.scenarios = AllScenarioNames();
  plan.sizes = {3, 4};
  plan.seeds = {1, 2};
  plan.density = 0.5;
  return plan;
}

TEST(Generators, SameSeedSameInstance) {
  for (const Scenario& s : ScenarioCatalog()) {
    ScenarioParams params{6, 0.5, 42};
    Database a = s.generate(params);
    Database b = s.generate(params);
    EXPECT_EQ(DatabaseFingerprint(a), DatabaseFingerprint(b))
        << "scenario " << s.name;
    EXPECT_EQ(a.NumActiveTuples(), b.NumActiveTuples()) << s.name;
  }
}

TEST(Generators, SeedChangesRandomizedInstances) {
  // vc_path and vc_grid are intentionally seed-free; every other family
  // must actually consume its seed.
  for (const Scenario& s : ScenarioCatalog()) {
    if (s.name == "vc_path" || s.name == "vc_grid") continue;
    Database a = s.generate({8, 0.5, 1});
    Database b = s.generate({8, 0.5, 2});
    EXPECT_NE(DatabaseFingerprint(a), DatabaseFingerprint(b))
        << "scenario " << s.name;
  }
}

TEST(Generators, EveryInstanceRoundTripsThroughTupleIo) {
  for (const Scenario& s : ScenarioCatalog()) {
    for (uint64_t seed : {1u, 7u}) {
      Database original = s.generate({5, 0.6, seed});
      std::stringstream buffer;
      WriteTuples(original, buffer, "round trip of " + s.name);
      Database reloaded;
      std::string error;
      ASSERT_TRUE(ReadTuples(buffer, "<buffer>", &reloaded, &error))
          << s.name << ": " << error;
      EXPECT_EQ(DatabaseFingerprint(original), DatabaseFingerprint(reloaded))
          << "scenario " << s.name << " seed " << seed;
      EXPECT_EQ(original.NumActiveTuples(), reloaded.NumActiveTuples());
    }
  }
}

TEST(Generators, UniformFillerRespectsQueryShape) {
  Query q = MustParseQuery("R(x,y), A(x)");
  Database db = GenerateUniform(q, {10, 0.5, 3});
  int r = db.RelationId("R");
  int a = db.RelationId("A");
  ASSERT_GE(r, 0);
  ASSERT_GE(a, 0);
  EXPECT_EQ(db.relation_arity(r), 2);
  EXPECT_EQ(db.relation_arity(a), 1);
  EXPECT_GT(db.NumActiveTuples(), 0);
}

TEST(Batch, SmallSizesMatchReferenceForAllScenarios) {
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(SmallPlan(), &jobs, &error)) << error;
  BatchOptions options;
  options.threads = 2;
  options.check_oracle = true;
  options.oracle_cutoff = 1000;  // check every cell at these sizes
  BatchReport report = RunBatch(jobs, options);
  ASSERT_EQ(report.cells.size(), jobs.size());
  EXPECT_EQ(report.mismatches, 0);
  for (const BatchCell& cell : report.cells) {
    EXPECT_TRUE(cell.oracle_checked)
        << cell.scenario << " size " << cell.size << " seed " << cell.seed;
    EXPECT_TRUE(cell.oracle_match) << cell.scenario << " size " << cell.size;
    EXPECT_TRUE(cell.verified) << cell.scenario << " size " << cell.size;
  }
}

TEST(Batch, ThreadCountDoesNotChangeResults) {
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(SmallPlan(), &jobs, &error)) << error;
  BatchOptions one;
  one.threads = 1;
  BatchOptions four;
  four.threads = 4;
  BatchReport a = RunBatch(jobs, one);
  BatchReport b = RunBatch(jobs, four);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].query, b.cells[i].query);
    EXPECT_EQ(a.cells[i].fingerprint, b.cells[i].fingerprint) << i;
    EXPECT_EQ(a.cells[i].unbreakable, b.cells[i].unbreakable) << i;
    EXPECT_EQ(a.cells[i].resilience, b.cells[i].resilience)
        << a.cells[i].scenario << " size " << a.cells[i].size << " seed "
        << a.cells[i].seed;
    EXPECT_EQ(a.cells[i].solver, b.cells[i].solver) << i;
  }
}

TEST(Batch, CsvRowsStayInvariantAcrossCellAndSolverThreads) {
  // Post-pool-migration regression: RunBatch now fans cells out via the
  // shared WorkerPool machinery, and each cell's exact solve may itself
  // use solver workers. The deterministic CSV prefix (columns 1-15,
  // through oracle_resilience) must stay byte-identical for every
  // combination — only memo/plan-cache attribution and timings (the
  // trailing columns) may vary.
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(SmallPlan(), &jobs, &error)) << error;
  auto deterministic_prefix = [](const BatchReport& report) {
    std::ostringstream csv;
    WriteReportCsv(report, csv);
    std::string out;
    std::istringstream lines(csv.str());
    std::string line;
    while (std::getline(lines, line)) {
      size_t pos = 0;
      for (int commas = 0; commas < 15 && pos != std::string::npos; ++commas) {
        pos = line.find(',', pos == 0 && commas == 0 ? 0 : pos + 1);
      }
      out += line.substr(0, pos) + "\n";
    }
    return out;
  };
  BatchOptions baseline;  // threads = 1, solver_threads = 1
  std::string expected = deterministic_prefix(RunBatch(jobs, baseline));
  struct Combo {
    int threads;
    int solver_threads;
  };
  for (Combo combo : {Combo{4, 1}, Combo{1, 4}, Combo{4, 2}}) {
    BatchOptions options;
    options.threads = combo.threads;
    options.solver_threads = combo.solver_threads;
    EXPECT_EQ(deterministic_prefix(RunBatch(jobs, options)), expected)
        << "threads " << combo.threads << " solver_threads "
        << combo.solver_threads;
  }
}

TEST(Batch, MemoizationReusesRepeatedCells) {
  // The same (scenario, size, seed) twice: the second cell must hit the
  // memo on one thread and still report the same resilience.
  BatchPlan plan;
  plan.scenarios = {"vc_er", "vc_er"};
  plan.sizes = {5};
  plan.seeds = {9};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 2u);
  BatchOptions options;  // threads = 1
  BatchReport report = RunBatch(jobs, options);
  EXPECT_EQ(report.memo_hits, 1);
  EXPECT_TRUE(report.cells[1].memo_hit);
  EXPECT_EQ(report.cells[0].resilience, report.cells[1].resilience);

  options.memoize = false;
  BatchReport uncached = RunBatch(jobs, options);
  EXPECT_EQ(uncached.memo_hits, 0);
  EXPECT_EQ(uncached.cells[1].resilience, report.cells[1].resilience);
}

TEST(Batch, ExpandPlanRejectsUnknownNames) {
  BatchPlan plan;
  plan.scenarios = {"no_such_scenario"};
  std::vector<BatchJob> jobs;
  std::string error;
  EXPECT_FALSE(ExpandPlan(plan, &jobs, &error));
  EXPECT_NE(error.find("no_such_scenario"), std::string::npos);

  plan.scenarios.clear();
  plan.query_names = {"q_does_not_exist"};
  EXPECT_FALSE(ExpandPlan(plan, &jobs, &error));
  EXPECT_NE(error.find("q_does_not_exist"), std::string::npos);
}

TEST(Batch, QueryNamesCrossUniformFiller) {
  BatchPlan plan;
  plan.query_names = {"q_perm"};
  plan.sizes = {4};
  plan.seeds = {1};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].query_name, "q_perm");
  EXPECT_EQ(jobs[0].scenario, "uniform");
  BatchOptions options;
  options.check_oracle = true;
  options.oracle_cutoff = 1000;
  BatchReport report = RunBatch(jobs, options);
  EXPECT_EQ(report.mismatches, 0);
}

TEST(Batch, PlanFileParses) {
  std::string path = testing::TempDir() + "/rescq_plan.txt";
  {
    std::ofstream out(path);
    out << "# tiny sweep\n"
        << "scenarios = vc_path, chain\n"
        << "sizes = 3, 5\n"
        << "seeds = 1, 2, 3\n"
        << "density = 0.25\n"
        << "threads = 2\n"
        << "check_oracle = true\n"
        << "oracle_cutoff = 50\n"
        << "witness_limit = 5000\n"
        << "exact_node_budget = 250000\n";
  }
  BatchPlan plan;
  BatchOptions options;
  std::string error;
  ASSERT_TRUE(ParsePlanFile(path, &plan, &options, &error)) << error;
  EXPECT_EQ(plan.scenarios, (std::vector<std::string>{"vc_path", "chain"}));
  EXPECT_EQ(plan.sizes, (std::vector<int>{3, 5}));
  EXPECT_EQ(plan.seeds.size(), 3u);
  EXPECT_DOUBLE_EQ(plan.density, 0.25);
  EXPECT_EQ(options.threads, 2);
  EXPECT_TRUE(options.check_oracle);
  EXPECT_EQ(options.oracle_cutoff, 50);
  EXPECT_EQ(options.witness_limit, 5000u);
  EXPECT_EQ(options.exact_node_budget, 250000u);
  std::remove(path.c_str());
}

TEST(Batch, WitnessBudgetCellsAreStructuredNotMismatches) {
  // The chain scenario at size 6 has more than one witness; a budget of
  // one stops the exact solve. The cell must surface the error, count as
  // budget_exceeded, and NOT as a mismatch (it is not a solver bug).
  BatchPlan plan;
  plan.scenarios = {"chain"};
  plan.sizes = {6};
  plan.seeds = {1};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  BatchOptions options;
  options.witness_limit = 1;
  options.check_oracle = true;
  BatchReport report = RunBatch(jobs, options);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_TRUE(report.cells[0].budget_exceeded);
  EXPECT_NE(report.cells[0].error.find("witness budget exceeded"),
            std::string::npos);
  EXPECT_EQ(report.budget_exceeded, 1);
  EXPECT_EQ(report.mismatches, 0);

  // The same sweep with a roomy budget solves and verifies normally.
  options.witness_limit = 1000000;
  BatchReport roomy = RunBatch(jobs, options);
  EXPECT_EQ(roomy.budget_exceeded, 0);
  EXPECT_EQ(roomy.mismatches, 0);
  EXPECT_FALSE(roomy.cells[0].budget_exceeded);
}

TEST(Batch, NodeBudgetCellsKeepVerifiedUpperBound) {
  // With a one-node search budget the chain cell returns the greedy
  // incumbent: a verified contingency whose size is only an upper
  // bound. The cell is budget_exceeded, skips the oracle (which would
  // flag the gap as a false mismatch), and keeps its value.
  BatchPlan plan;
  plan.scenarios = {"chain"};
  plan.sizes = {6};
  plan.seeds = {1};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  BatchOptions options;
  options.exact_node_budget = 1;
  options.check_oracle = true;
  BatchReport report = RunBatch(jobs, options);
  ASSERT_EQ(report.cells.size(), 1u);
  const BatchCell& cell = report.cells[0];
  EXPECT_TRUE(cell.budget_exceeded);
  EXPECT_NE(cell.error.find("node budget"), std::string::npos);
  EXPECT_TRUE(cell.verified);
  EXPECT_FALSE(cell.oracle_checked);
  EXPECT_EQ(report.mismatches, 0);
  EXPECT_EQ(report.budget_exceeded, 1);
  // The unbudgeted optimum never exceeds the incumbent.
  BatchReport full = RunBatch(jobs, BatchOptions{});
  EXPECT_LE(full.cells[0].resilience, cell.resilience);
}

TEST(Batch, PlanFileRejectsUnknownKey) {
  std::string path = testing::TempDir() + "/rescq_bad_plan.txt";
  {
    std::ofstream out(path);
    out << "sizez = 3\n";
  }
  BatchPlan plan;
  BatchOptions options;
  std::string error;
  EXPECT_FALSE(ParsePlanFile(path, &plan, &options, &error));
  EXPECT_NE(error.find("sizez"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Report, CsvAndJsonCarryEveryCell) {
  BatchPlan plan;
  plan.scenarios = {"vc_path"};
  plan.sizes = {4};
  plan.seeds = {1};
  std::vector<BatchJob> jobs;
  std::string error;
  ASSERT_TRUE(ExpandPlan(plan, &jobs, &error)) << error;
  BatchReport report = RunBatch(jobs, BatchOptions{});

  std::stringstream csv;
  WriteReportCsv(report, csv);
  std::string csv_text = csv.str();
  EXPECT_NE(csv_text.find("query,scenario,size"), std::string::npos);
  EXPECT_NE(csv_text.find("vc_path"), std::string::npos);

  std::stringstream json;
  WriteReportJson(report, json);
  std::string json_text = json.str();
  EXPECT_NE(json_text.find("\"schema\": \"rescq-batch-report/v5\""),
            std::string::npos);
  EXPECT_NE(json_text.find("\"scenario\": \"vc_path\""), std::string::npos);
  EXPECT_NE(json_text.find("\"mismatches\": 0"), std::string::npos);
  EXPECT_NE(json_text.find("\"plan_cache\""), std::string::npos);
  EXPECT_NE(json_text.find("\"plan_cache_hit\""), std::string::npos);
  EXPECT_NE(json_text.find("\"budget_exceeded\": 0"), std::string::npos);
  EXPECT_NE(csv_text.find("budget_exceeded"), std::string::npos);
}

TEST(Fingerprint, SensitiveToContentNotJustSize) {
  Database a;
  a.AddTuple("R", {a.Intern("x"), a.Intern("y")});
  Database b;
  b.AddTuple("R", {b.Intern("x"), b.Intern("z")});
  EXPECT_NE(DatabaseFingerprint(a), DatabaseFingerprint(b));
  Database c;
  c.AddTuple("R", {c.Intern("x"), c.Intern("y")});
  EXPECT_EQ(DatabaseFingerprint(a), DatabaseFingerprint(c));
}

TEST(Fingerprint, DistinguishesArityWithSameValueStream) {
  // Same relation name and flattened value sequence, different shapes:
  // R/2 {(a,b),(c,d)} vs R/4 {(a,b,c,d)} must not collide.
  Database two;
  two.AddTuple("R", {two.Intern("a"), two.Intern("b")});
  two.AddTuple("R", {two.Intern("c"), two.Intern("d")});
  Database four;
  four.AddTuple("R", {four.Intern("a"), four.Intern("b"), four.Intern("c"),
                      four.Intern("d")});
  EXPECT_NE(DatabaseFingerprint(two), DatabaseFingerprint(four));
}

}  // namespace
}  // namespace rescq
