// Dedicated tests for the linear-query flow solver: agreement with the
// exact oracle across a family of linear queries (sj-free, confluence,
// REP), exogenous handling, and the Lemma 55 no-duplicate-cut property
// that makes the confluence case sound.

#include <gtest/gtest.h>

#include "cq/parser.h"
#include "db/witness.h"
#include "resilience/exact_solver.h"
#include "resilience/linear_flow_solver.h"
#include "resilience/rep_solver.h"
#include "resilience/solver.h"
#include "util/rng.h"

namespace rescq {
namespace {

Database RandomDatabase(const Query& q, int domain, int tuples, Rng& rng) {
  Database db;
  std::vector<Value> dom;
  for (int i = 0; i < domain; ++i) dom.push_back(db.InternIndexed("c", i));
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < tuples; ++t) {
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

// Linear queries the flow solver must handle exactly. Mixed arities,
// exogenous atoms in every position, and the confluence pattern.
class LinearFlowAgreement : public ::testing::TestWithParam<const char*> {};

TEST_P(LinearFlowAgreement, MatchesExactOracle) {
  Query q = MustParseQuery(GetParam());
  Rng rng(std::hash<std::string>()(GetParam()) ^ 0x11);
  for (int trial = 0; trial < 25; ++trial) {
    Database db = RandomDatabase(q, 3 + static_cast<int>(rng.Below(4)),
                                 4 + static_cast<int>(rng.Below(12)), rng);
    std::optional<ResilienceResult> flow = SolveLinearFlow(q, db);
    ASSERT_TRUE(flow.has_value()) << "query should be linear";
    ResilienceResult exact = ComputeResilienceExact(q, db);
    ASSERT_EQ(flow->unbreakable, exact.unbreakable) << "trial " << trial;
    if (exact.unbreakable) continue;
    EXPECT_EQ(flow->resilience, exact.resilience) << "trial " << trial;
    EXPECT_TRUE(VerifyContingency(q, db, flow->contingency))
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, LinearFlowAgreement,
    ::testing::Values(
        // sj-free linear chains of various lengths and arities
        "A(x), R(x,y), B(y)",                       //
        "A(x), R(x,y), S(y,z), C(z)",               //
        "A(x), R(x,y), S(y,z), T(z,w), D(w)",       //
        "A(x), W(x,y,z), S(y,z)",                   // ternary middle
        "R(x,y), S(y,z)",                           // no unary anchors
        // exogenous atoms at the ends and in the middle
        "A^x(x), R(x,y), B(y)",                     //
        "A(x), R^x(x,y), B(y)",                     //
        "A(x), R(x,y), S^x(y,z), T(z,w)",           //
        // the confluence family (Propositions 12 and 31)
        "A(x), R(x,y), R(z,y), C(z)",               //
        "A(x), R(x,y), R(z,y)",                     //
        "U(v,x), R(x,y), R(z,y), C(z)",             // binary left anchor
        "A(x), R(x,y), R(z,y), G^x(z,w), C(w)"),    // exo tail
    [](const ::testing::TestParamInfo<const char*>& info) {
      return "q" + std::to_string(info.index);
    });

TEST(LinearFlow, RepOverrideAgreesOnZ3Family) {
  for (const char* text :
       {"R(x,x), R(x,y), A(y)", "B(x), R(x,x), R(x,y), A(y)"}) {
    Query q = MustParseQuery(text);
    Rng rng(std::hash<std::string>()(text));
    for (int trial = 0; trial < 20; ++trial) {
      Database db = RandomDatabase(q, 4, 9, rng);
      std::optional<ResilienceResult> rep = SolveRepFlow(q, db);
      ASSERT_TRUE(rep.has_value()) << text;
      ResilienceResult exact = ComputeResilienceExact(q, db);
      ASSERT_EQ(rep->unbreakable, exact.unbreakable);
      if (!exact.unbreakable) {
        EXPECT_EQ(rep->resilience, exact.resilience)
            << text << " trial " << trial;
      }
    }
  }
}

TEST(LinearFlow, CutNeverContainsExogenousTuples) {
  Query q = MustParseQuery("A(x), R^x(x,y), B(y)");
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 4, 8, rng);
    std::optional<ResilienceResult> r = SolveLinearFlow(q, db);
    ASSERT_TRUE(r.has_value());
    if (r->unbreakable) continue;
    int r_rel = db.RelationId("R");
    for (TupleId t : r->contingency) EXPECT_NE(t.relation, r_rel);
  }
}

TEST(LinearFlow, SharedMiddleValueForcesBottleneckCut) {
  // All chains pass through R(m, m'); the min cut is that single tuple.
  Database db;
  Value m = db.Intern("m"), m2 = db.Intern("m'");
  for (int i = 0; i < 4; ++i) {
    db.AddTuple("A", {db.InternIndexed("a", i)});
    db.AddTuple("L", {db.InternIndexed("a", i), m});
    db.AddTuple("B", {db.InternIndexed("b", i)});
    db.AddTuple("T", {m2, db.InternIndexed("b", i)});
  }
  TupleId mid = db.AddTuple("R", {m, m2});
  Query q = MustParseQuery("A(x), L(x,u), R(u,v), T(v,y), B(y)");
  std::optional<ResilienceResult> r = SolveLinearFlow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
  EXPECT_EQ(r->contingency, (std::vector<TupleId>{mid}));
}

TEST(LinearFlow, DispatchedSolverHandlesLargeInstancesFast) {
  // 2000 tuples per relation: far beyond the exact oracle's comfort zone.
  Query q = MustParseQuery("A(x), R(x,y), R(z,y), C(z)");
  Rng rng(1234);
  Database db = RandomDatabase(q, 60, 2000, rng);
  ResilienceResult r = ComputeResilience(q, db);
  EXPECT_FALSE(r.unbreakable);
  EXPECT_TRUE(VerifyContingency(q, db, r.contingency));
  EXPECT_EQ(SolverKindName(r.solver),
            SolverKindName(SolverKind::kLinearFlow));
}

}  // namespace
}  // namespace rescq
