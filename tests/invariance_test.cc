// Property tests for the paper's query-transformation equivalences:
//  - minimization preserves resilience exactly (Section 4.1: q ≡ q'),
//  - domination normalization preserves resilience exactly (Prop 4 / 18),
//  - component decomposition: rho(q) = min over components (Lemma 14),
//  - self-join variations relate to their sj-free counterparts (Lemma 21
//    direction: the variation is at least as hard on mapped instances).

#include <gtest/gtest.h>

#include "complexity/catalog.h"
#include "cq/components.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "cq/parser.h"
#include "db/witness.h"
#include "resilience/exact_solver.h"
#include "util/rng.h"

namespace rescq {
namespace {

Database RandomDatabase(const Query& q, int domain, int tuples, Rng& rng) {
  Database db;
  std::vector<Value> dom;
  for (int i = 0; i < domain; ++i) dom.push_back(db.InternIndexed("c", i));
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < tuples; ++t) {
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

class TransformInvariance : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(TransformInvariance, MinimizationPreservesResilience) {
  Query q = MustParseQuery(GetParam().text);
  Query m = Minimize(q);
  Rng rng(0xAA ^ std::hash<std::string>()(GetParam().name));
  for (int trial = 0; trial < 8; ++trial) {
    Database db = RandomDatabase(q, 4, 8, rng);
    ResilienceResult a = ComputeResilienceExact(q, db);
    ResilienceResult b = ComputeResilienceExact(m, db);
    ASSERT_EQ(a.unbreakable, b.unbreakable) << GetParam().name;
    if (!a.unbreakable) {
      EXPECT_EQ(a.resilience, b.resilience)
          << GetParam().name << " trial " << trial;
    }
  }
}

TEST_P(TransformInvariance, DominationPreservesResilience) {
  Query q = MustParseQuery(GetParam().text);
  Query n = NormalizeDomination(Minimize(q));
  Rng rng(0xBB ^ std::hash<std::string>()(GetParam().name));
  for (int trial = 0; trial < 8; ++trial) {
    Database db = RandomDatabase(q, 4, 8, rng);
    ResilienceResult a = ComputeResilienceExact(q, db);
    ResilienceResult b = ComputeResilienceExact(n, db);
    // Normalization can only *shrink* the deletable tuple space, so
    // unbreakable may flip from false to true only if a was unbreakable
    // too; resilience values must match when both finite (Prop 18).
    if (!a.unbreakable && !b.unbreakable) {
      EXPECT_EQ(a.resilience, b.resilience)
          << GetParam().name << " trial " << trial;
    } else {
      EXPECT_EQ(a.unbreakable, b.unbreakable) << GetParam().name;
    }
  }
}

std::vector<CatalogEntry> SmallCatalogEntries() {
  // All catalog entries with at most 5 atoms (keeps the exact oracle
  // cheap on 8 random databases each).
  std::vector<CatalogEntry> out;
  for (const CatalogEntry& e : PaperCatalog()) {
    if (MustParseQuery(e.text).num_atoms() <= 5) out.push_back(e);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TransformInvariance, ::testing::ValuesIn(SmallCatalogEntries()),
    [](const ::testing::TestParamInfo<CatalogEntry>& info) {
      return info.param.name;
    });

TEST(Components, ResilienceIsMinimumOverComponents) {
  // Lemma 14 on a two-component query.
  Query q = MustParseQuery("A(x), R(x,y), B(w), S(w,v)");
  std::vector<Query> comps = SplitIntoComponents(Minimize(q));
  ASSERT_EQ(comps.size(), 2u);
  Rng rng(77);
  for (int trial = 0; trial < 12; ++trial) {
    Database db = RandomDatabase(q, 4, 6, rng);
    ResilienceResult whole = ComputeResilienceExact(q, db);
    if (whole.unbreakable) continue;
    bool all_hold = true;
    int min_comp = 1 << 30;
    for (const Query& comp : comps) {
      if (!QueryHolds(comp, db)) {
        all_hold = false;
        break;
      }
      ResilienceResult r = ComputeResilienceExact(comp, db);
      if (!r.unbreakable) min_comp = std::min(min_comp, r.resilience);
    }
    if (!all_hold) {
      EXPECT_EQ(whole.resilience, 0) << "trial " << trial;
    } else {
      EXPECT_EQ(whole.resilience, min_comp) << "trial " << trial;
    }
  }
}

TEST(SelfJoinVariation, Lemma21MappedInstancesPreserveResilience) {
  // Lemma 21's construction: marking tuples by the variables they bind
  // turns an instance of the sj-free query into one of the self-join
  // variation with equal resilience. We spot-check the q_triangle ->
  // q_sj1_triangle direction: take D for the triangle, build D' for
  // R(x,y),R(y,z),R(z,x) by tagging values with their variable role.
  Query q_free = MustParseQuery("R(x,y), S(y,z), T(z,x)");
  Query q_sj = MustParseQuery("R(x,y), R(y,z), R(z,x)");
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    Database d = RandomDatabase(q_free, 4, 7, rng);
    // Build D': every witness (a,b,c) contributes R(a_x,b_y), R(b_y,c_z),
    // R(c_z,a_x).
    Database d2;
    std::vector<Witness> ws = EnumerateWitnesses(q_free, d, kNoWitnessLimit);
    for (const Witness& w : ws) {
      std::string a = d.ValueName(w.assignment[0]) + "_x";
      std::string b = d.ValueName(w.assignment[1]) + "_y";
      std::string c = d.ValueName(w.assignment[2]) + "_z";
      d2.AddTuple("R", {d2.Intern(a), d2.Intern(b)});
      d2.AddTuple("R", {d2.Intern(b), d2.Intern(c)});
      d2.AddTuple("R", {d2.Intern(c), d2.Intern(a)});
    }
    ResilienceResult r_free = ComputeResilienceExact(q_free, d);
    ResilienceResult r_sj = ComputeResilienceExact(q_sj, d2);
    EXPECT_EQ(r_free.resilience, r_sj.resilience) << "trial " << trial;
  }
}

TEST(ExogenousRelabeling, MakingRelationsExogenousNeverLowersResilience) {
  // Deleting from a smaller allowed set can only need more deletions (or
  // become impossible).
  Rng rng(31);
  for (const char* text : {"R(x,y), R(y,z)", "A(x), R(x,y), R(y,x), B(y)",
                           "R(x), S(x,y), R(y)"}) {
    Query q = MustParseQuery(text);
    for (const std::string& rel : q.RelationNames()) {
      Query q_exo = q.WithRelationExogenous(rel);
      Database db = RandomDatabase(q, 4, 8, rng);
      ResilienceResult a = ComputeResilienceExact(q, db);
      ResilienceResult b = ComputeResilienceExact(q_exo, db);
      if (a.unbreakable) continue;
      if (!b.unbreakable) {
        EXPECT_GE(b.resilience, a.resilience) << text << " exo " << rel;
      }
    }
  }
}

}  // namespace
}  // namespace rescq
