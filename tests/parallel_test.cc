// The component-parallel exact path: the WorkerPool contract, the
// solver-threads invariance sweeps (every catalog query and workload
// scenario must answer — and count — identically at 1/2/4 workers),
// node-budget semantics when the budget trips mid-flight, and the
// incremental session's byte-identical parallel epochs. Each component
// solve is a pure function of its task (no cross-component state beyond
// the optional node budget), so nodes / prune counters are asserted
// byte-identical across thread counts, not just the answers. Carries
// the `parallel` CTest label and runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "complexity/catalog.h"
#include "cq/parser.h"
#include "db/witness.h"
#include "resilience/engine.h"
#include "resilience/exact_solver.h"
#include "resilience/incremental.h"
#include "resilience/solver.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "workload/churn.h"
#include "workload/generators.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

// --- WorkerPool contract ----------------------------------------------------

TEST(WorkerPool, RunsEveryIndexExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.threads(), 4);
  // Per-index slots exercise the happens-before contract: each slot is
  // written by exactly one worker and read after Run with no extra
  // synchronization — any double execution or missing fence is a TSan
  // race and a value mismatch here.
  std::vector<int> slot(1000, 0);
  std::atomic<int> total{0};
  pool.Run(slot.size(), [&](size_t i) {
    slot[i] += static_cast<int>(i) + 1;
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000);
  for (size_t i = 0; i < slot.size(); ++i) {
    ASSERT_EQ(slot[i], static_cast<int>(i) + 1) << "index " << i;
  }
}

TEST(WorkerPool, IsReusableAcrossRunsOfAnySize) {
  WorkerPool pool(3);
  for (size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{97},
                       size_t{5}, size_t{0}, size_t{64}}) {
    std::vector<int> slot(count, 0);
    pool.Run(count, [&](size_t i) { slot[i] = 1; });
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(slot[i], 1) << "count " << count << " index " << i;
    }
  }
}

TEST(WorkerPool, ClampsThreadCountToAtLeastOne) {
  WorkerPool zero(0);
  EXPECT_EQ(zero.threads(), 1);
  WorkerPool negative(-3);
  EXPECT_EQ(negative.threads(), 1);
  // A one-thread pool is an inline loop; still exactly-once.
  int sum = 0;
  zero.Run(10, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(WorkerPool, ParallelForCoversInlineAndPooledPaths) {
  for (int threads : {1, 2, 4, 9}) {
    std::vector<int> slot(33, 0);
    ParallelFor(threads, slot.size(), [&](size_t i) { slot[i] = 1; });
    for (size_t i = 0; i < slot.size(); ++i) {
      ASSERT_EQ(slot[i], 1) << "threads " << threads << " index " << i;
    }
  }
  ParallelFor(4, 0, [](size_t) { FAIL() << "count 0 must not call fn"; });
  EXPECT_GE(HardwareThreads(), 1);
}

// --- Hitting-set helpers ----------------------------------------------------

bool HitsEverySet(const std::vector<std::vector<int>>& sets,
                  const std::vector<int>& chosen) {
  for (const std::vector<int>& s : sets) {
    bool hit = false;
    for (int e : s) {
      for (int c : chosen) hit = hit || c == e;
    }
    if (!hit) return false;
  }
  return true;
}

// Asserts the parallel solve of `sets` at each thread count matches the
// serial answer on everything the determinism contract promises: the
// optimum size, feasibility, proof status, the chosen set, and — since
// every component searches against only its own incumbent — the exact
// node and prune counters.
void ExpectThreadInvariantHittingSet(const std::vector<std::vector<int>>& sets,
                                     const std::string& label) {
  ExactStats serial_stats;
  HittingSetResult serial =
      SolveMinHittingSet(sets, ExactOptions{}, &serial_stats);
  EXPECT_TRUE(serial.proven_optimal) << label;
  for (int threads : {2, 4}) {
    ExactOptions options;
    options.solver_threads = threads;
    ExactStats stats;
    HittingSetResult out = SolveMinHittingSet(sets, options, &stats);
    ASSERT_EQ(out.size, serial.size) << label << " threads " << threads;
    ASSERT_EQ(static_cast<int>(out.chosen.size()), out.size)
        << label << " threads " << threads;
    EXPECT_TRUE(out.proven_optimal) << label << " threads " << threads;
    EXPECT_TRUE(HitsEverySet(sets, out.chosen))
        << label << " threads " << threads;
    EXPECT_EQ(out.chosen, serial.chosen) << label << " threads " << threads;
    EXPECT_EQ(stats.components, serial_stats.components)
        << label << " threads " << threads;
    EXPECT_EQ(stats.nodes, serial_stats.nodes)
        << label << " threads " << threads;
    EXPECT_EQ(stats.packing_prunes, serial_stats.packing_prunes)
        << label << " threads " << threads;
    EXPECT_EQ(stats.flow_prunes, serial_stats.flow_prunes)
        << label << " threads " << threads;
  }
}

// --- Deterministic component fan-out ----------------------------------------

TEST(ComponentParallel, ManyEqualComponentsStayExact) {
  // Maximum fan-out pressure: 20 structurally identical components keep
  // every worker busy simultaneously. 12 triangles (the vertex-cover
  // path; each needs 2) and 8 three-element sets (the general path;
  // each needs 1).
  std::vector<std::vector<int>> sets;
  int next = 0;
  for (int c = 0; c < 12; ++c) {
    int a = next++, b = next++, d = next++;
    sets.push_back({a, b});
    sets.push_back({b, d});
    sets.push_back({a, d});
  }
  for (int c = 0; c < 8; ++c) {
    int a = next++, b = next++, d = next++;
    sets.push_back({a, b, d});
  }
  ExactStats stats;
  HittingSetResult serial = SolveMinHittingSet(sets, ExactOptions{}, &stats);
  EXPECT_EQ(serial.size, 12 * 2 + 8 * 1);
  EXPECT_EQ(stats.components, 20);
  ExpectThreadInvariantHittingSet(sets, "equal components");
}

TEST(ComponentParallel, RandomMultiComponentInstancesStayExact) {
  // Nontrivial per-component searches: each component is a random
  // 3-uniform family, so the branch-and-bound actually descends while
  // siblings are still in flight. Mixing a vertex-cover component in
  // exercises both search cores side by side.
  Rng rng(0x9A11E7);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<int>> sets;
    int components = 3 + static_cast<int>(rng.Below(4));
    for (int c = 0; c < components; ++c) {
      int base = c * 100;
      if (rng.Chance(1, 3)) {
        // An Erdos–Renyi-ish edge component: pure vertex cover.
        for (int e = 0; e < 10; ++e) {
          int a = base + static_cast<int>(rng.Below(7));
          int b = base + static_cast<int>(rng.Below(7));
          if (a != b) sets.push_back({a, b});
        }
        sets.push_back({base, base + 1});  // keep the component non-empty
      } else {
        for (int s = 0; s < 8; ++s) {
          std::vector<int> set;
          for (int k = 0; k < 3; ++k) {
            set.push_back(base + static_cast<int>(rng.Below(9)));
          }
          sets.push_back(set);
        }
      }
    }
    ExpectThreadInvariantHittingSet(sets,
                                    "round " + std::to_string(round));
  }
}

// --- Node-budget semantics mid-flight ---------------------------------------

std::vector<std::vector<int>> HardMultiComponentFamily() {
  Rng rng(0xB0D6E7);
  std::vector<std::vector<int>> sets;
  for (int c = 0; c < 8; ++c) {
    for (int s = 0; s < 12; ++s) {
      std::vector<int> set;
      for (int k = 0; k < 3; ++k) {
        set.push_back(c * 100 + static_cast<int>(rng.Below(12)));
      }
      sets.push_back(set);
    }
  }
  return sets;
}

TEST(NodeBudget, TrippingMidFlightKeepsAFeasibleIncumbent) {
  std::vector<std::vector<int>> sets = HardMultiComponentFamily();
  HittingSetResult optimal = SolveMinHittingSet(sets);
  ASSERT_TRUE(optimal.proven_optimal);
  for (int threads : {1, 2, 4}) {
    ExactOptions options;
    options.solver_threads = threads;
    options.node_budget = 4;  // trips inside the first components' searches
    ExactStats stats;
    HittingSetResult out = SolveMinHittingSet(sets, options, &stats);
    EXPECT_TRUE(stats.node_budget_exceeded) << "threads " << threads;
    EXPECT_FALSE(out.proven_optimal) << "threads " << threads;
    // The incumbent is still a real hitting set (the greedy seeds run
    // before any budgeted search), just possibly not minimum.
    EXPECT_TRUE(HitsEverySet(sets, out.chosen)) << "threads " << threads;
    EXPECT_EQ(static_cast<int>(out.chosen.size()), out.size)
        << "threads " << threads;
    EXPECT_GE(out.size, optimal.size) << "threads " << threads;
    // One worker tripping the shared budget stops the others; the node
    // count may overshoot by at most one node per worker.
    EXPECT_LE(stats.nodes,
              options.node_budget + static_cast<uint64_t>(threads))
        << "threads " << threads;
  }
}

TEST(NodeBudget, GenerousBudgetIsNeverTrippedInParallel) {
  std::vector<std::vector<int>> sets = HardMultiComponentFamily();
  HittingSetResult optimal = SolveMinHittingSet(sets);
  ExactOptions options;
  options.solver_threads = 4;
  options.node_budget = 1u << 20;
  ExactStats stats;
  HittingSetResult out = SolveMinHittingSet(sets, options, &stats);
  EXPECT_FALSE(stats.node_budget_exceeded);
  EXPECT_TRUE(out.proven_optimal);
  EXPECT_EQ(out.size, optimal.size);
}

// --- Engine-level invariance sweeps -----------------------------------------

// Solves one instance on the serial reference engine and at 2 and 4
// solver threads, asserting everything the contract keeps deterministic:
// the answer, the contingency size (and that it verifies), and ALL the
// search counters — witnesses, sets, components, nodes, and both prune
// kinds. Un-budgeted component solves share no state, so even the node
// counts are byte-identical at any thread count.
void ExpectEngineInvariance(ResilienceEngine& serial, ResilienceEngine& two,
                            ResilienceEngine& four, const Query& q,
                            const Database& db, const std::string& label) {
  SolveOutcome ref = serial.Solve(q, db);
  ASSERT_TRUE(ref.error.empty()) << label << ": " << ref.error;
  ResilienceEngine* engines[] = {&two, &four};
  for (ResilienceEngine* engine : engines) {
    int threads = engine->options().solver_threads;
    SolveOutcome out = engine->Solve(q, db);
    ASSERT_TRUE(out.error.empty())
        << label << " threads " << threads << ": " << out.error;
    ASSERT_EQ(out.result.unbreakable, ref.result.unbreakable)
        << label << " threads " << threads;
    ASSERT_EQ(out.result.resilience, ref.result.resilience)
        << label << " threads " << threads;
    EXPECT_EQ(out.result.contingency.size(), ref.result.contingency.size())
        << label << " threads " << threads;
    EXPECT_EQ(out.exact.witnesses, ref.exact.witnesses)
        << label << " threads " << threads;
    EXPECT_EQ(out.exact.witness_sets, ref.exact.witness_sets)
        << label << " threads " << threads;
    EXPECT_EQ(out.exact.components, ref.exact.components)
        << label << " threads " << threads;
    EXPECT_EQ(out.exact.nodes, ref.exact.nodes)
        << label << " threads " << threads;
    EXPECT_EQ(out.exact.packing_prunes, ref.exact.packing_prunes)
        << label << " threads " << threads;
    EXPECT_EQ(out.exact.flow_prunes, ref.exact.flow_prunes)
        << label << " threads " << threads;
    if (!out.result.unbreakable) {
      Database copy = db;
      EXPECT_TRUE(VerifyContingency(q, copy, out.result.contingency))
          << label << " threads " << threads;
    }
  }
}

struct EngineTriple {
  EngineTriple() : serial(Options(1)), two(Options(2)), four(Options(4)) {}
  static EngineOptions Options(int threads) {
    EngineOptions options;
    options.solver_threads = threads;
    return options;
  }
  ResilienceEngine serial;
  ResilienceEngine two;
  ResilienceEngine four;
};

class ParallelCatalogInvariance
    : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(ParallelCatalogInvariance, UniformInstancesMatchAcrossThreadCounts) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  EngineTriple engines;
  for (int size : {4, 6}) {
    for (uint64_t seed : {1u, 2u}) {
      Database db = GenerateUniform(q, {size, 0.5, seed});
      ExpectEngineInvariance(engines.serial, engines.two, engines.four, q, db,
                             entry.name + " size " + std::to_string(size) +
                                 " seed " + std::to_string(seed));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Paper, ParallelCatalogInvariance, ::testing::ValuesIn(PaperCatalog()),
    [](const ::testing::TestParamInfo<CatalogEntry>& info) {
      return info.param.name;
    });

TEST(ParallelInvariance, EveryScenarioMatchesAcrossThreadCounts) {
  EngineTriple engines;
  for (const Scenario& scenario : ScenarioCatalog()) {
    Query q = MustParseQuery(scenario.query);
    for (int size : {4, 6}) {
      for (uint64_t seed : {1u, 2u}) {
        Database db = scenario.generate({size, 0.5, seed});
        ExpectEngineInvariance(engines.serial, engines.two, engines.four, q,
                               db,
                               scenario.name + " size " +
                                   std::to_string(size) + " seed " +
                                   std::to_string(seed));
      }
    }
  }
}

// --- Incremental sessions: byte-identical parallel epochs -------------------

TEST(ParallelInvariance, IncrementalEpochsAreByteIdentical) {
  // Unlike the engine path, the incremental contract promises FULL
  // determinism — contingency included — because per-component solves
  // stay internally serial and adoption runs in partition order.
  for (const char* text : {"R(x,y), R(y,x)", "R(x,y), R(y,z)",
                           "R(x,y), R(y,z), S^x(z,w)"}) {
    Query q = MustParseQuery(text);
    for (const ChurnKind& kind : ChurnCatalog()) {
      ScenarioParams params;
      params.size = 6;
      params.density = 0.5;
      params.seed = 7;
      Database base = GenerateUniform(q, params);
      ChurnParams churn;
      churn.epochs = 4;
      churn.rate = 0.3;
      churn.seed = 11;
      UpdateLog log = GenerateChurn(base, kind.name, churn);

      EngineOptions parallel_options;
      parallel_options.solver_threads = 4;
      IncrementalSession serial(q, base, EngineOptions{});
      IncrementalSession parallel(q, base, parallel_options);
      int epoch = 0;
      auto check = [&](const EpochOutcome& a, const EpochOutcome& b) {
        std::string label = std::string(text) + " " + kind.name + " epoch " +
                            std::to_string(epoch);
        ASSERT_EQ(a.unbreakable, b.unbreakable) << label;
        ASSERT_EQ(a.resilience, b.resilience) << label;
        EXPECT_EQ(a.lower_bound, b.lower_bound) << label;
        EXPECT_EQ(a.upper_bound, b.upper_bound) << label;
        EXPECT_EQ(a.family_sets, b.family_sets) << label;
        EXPECT_EQ(a.resolved, b.resolved) << label;
        EXPECT_EQ(a.contingency, b.contingency) << label;
      };
      check(serial.current(), parallel.current());
      for (const Epoch& e : log.epochs) {
        ++epoch;
        EpochOutcome a = serial.Apply(e);
        EpochOutcome b = parallel.Apply(e);
        check(a, b);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

}  // namespace
}  // namespace rescq
