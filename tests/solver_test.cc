#include <gtest/gtest.h>

#include "complexity/catalog.h"
#include "cq/parser.h"
#include "db/database.h"
#include "db/witness.h"
#include "resilience/exact_solver.h"
#include "resilience/linear_flow_solver.h"
#include "resilience/perm3_solver.h"
#include "resilience/perm_solver.h"
#include "resilience/solver.h"
#include "util/rng.h"

namespace rescq {
namespace {

// Fills db with `tuples_per_relation` random tuples per query relation
// over a domain of `domain` constants.
Database RandomDatabase(const Query& q, int domain, int tuples_per_relation,
                        Rng& rng) {
  Database db;
  std::vector<Value> dom;
  for (int i = 0; i < domain; ++i) dom.push_back(db.InternIndexed("c", i));
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < tuples_per_relation; ++t) {
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

// --- Property sweep: dispatcher agrees with the exact oracle on every
// --- PTIME query of the paper, over many random databases.

class PTimeSolverAgreement : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(PTimeSolverAgreement, MatchesExactOracleOnRandomDatabases) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  Rng rng(0xC0FFEE ^ std::hash<std::string>()(entry.name));
  for (int trial = 0; trial < 30; ++trial) {
    int domain = 3 + static_cast<int>(rng.Below(4));
    int tuples = 4 + static_cast<int>(rng.Below(10));
    Database db = RandomDatabase(q, domain, tuples, rng);
    ResilienceResult fast = ComputeResilience(q, db);
    ResilienceResult exact = ComputeResilienceExact(q, db);
    ASSERT_EQ(fast.unbreakable, exact.unbreakable)
        << entry.name << " trial " << trial;
    if (exact.unbreakable) continue;
    EXPECT_EQ(fast.resilience, exact.resilience)
        << entry.name << " trial " << trial << " solver "
        << SolverKindName(fast.solver);
    EXPECT_EQ(static_cast<int>(fast.contingency.size()), fast.resilience);
    EXPECT_TRUE(VerifyContingency(q, db, fast.contingency))
        << entry.name << " trial " << trial;
  }
}

std::vector<CatalogEntry> PTimeEntries() {
  std::vector<CatalogEntry> out;
  for (const CatalogEntry& e : PaperCatalog()) {
    if (e.expected == Complexity::kPTime) out.push_back(e);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, PTimeSolverAgreement, ::testing::ValuesIn(PTimeEntries()),
    [](const ::testing::TestParamInfo<CatalogEntry>& info) {
      return info.param.name;
    });

// --- Hard queries still get correct answers through the exact solver ---------

class HardSolverAgreement : public ::testing::TestWithParam<CatalogEntry> {};

TEST_P(HardSolverAgreement, ExactPathIsUsedAndVerifies) {
  const CatalogEntry& entry = GetParam();
  Query q = MustParseQuery(entry.text);
  Rng rng(0xBEEF ^ std::hash<std::string>()(entry.name));
  for (int trial = 0; trial < 8; ++trial) {
    Database db = RandomDatabase(q, 4, 8, rng);
    ResilienceResult r = ComputeResilience(q, db);
    if (r.unbreakable) continue;
    EXPECT_TRUE(VerifyContingency(q, db, r.contingency))
        << entry.name << " trial " << trial;
    EXPECT_EQ(ComputeResilienceExact(q, db).resilience, r.resilience);
  }
}

std::vector<CatalogEntry> SomeHardEntries() {
  // A representative sample (the full NPC set would be slow under the
  // exact oracle on every trial).
  std::vector<CatalogEntry> out;
  for (const char* name : {"q_vc", "q_chain", "q_ABperm", "q_triangle",
                           "cf_p", "q_3chain", "z5"}) {
    out.push_back(*FindCatalogEntry(name));
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, HardSolverAgreement, ::testing::ValuesIn(SomeHardEntries()),
    [](const ::testing::TestParamInfo<CatalogEntry>& info) {
      return info.param.name;
    });

// --- Dispatcher picks the published algorithm ---------------------------------

struct KindCase {
  const char* query_name;
  SolverKind kind;
};

class DispatcherKind : public ::testing::TestWithParam<KindCase> {};

TEST_P(DispatcherKind, UsesExpectedAlgorithm) {
  const KindCase& kc = GetParam();
  Query q = CatalogQuery(kc.query_name);
  Rng rng(17);
  // Retry until a satisfying database is found so the solver actually runs.
  for (int trial = 0; trial < 50; ++trial) {
    Database db = RandomDatabase(q, 4, 12, rng);
    if (!QueryHolds(q, db)) continue;
    ResilienceResult r = ComputeResilience(q, db);
    if (r.unbreakable || r.resilience == 0) continue;
    EXPECT_EQ(SolverKindName(r.solver), SolverKindName(kc.kind))
        << kc.query_name;
    return;
  }
  GTEST_SKIP() << "no satisfying database generated";
}

INSTANTIATE_TEST_SUITE_P(
    Paper, DispatcherKind,
    ::testing::Values(KindCase{"q_lin", SolverKind::kLinearFlow},
                      KindCase{"q_ACconf", SolverKind::kLinearFlow},
                      KindCase{"q_perm", SolverKind::kPermCount},
                      KindCase{"q_Aperm", SolverKind::kPermBipartite},
                      KindCase{"z3", SolverKind::kRepFlow},
                      KindCase{"q_TS3conf", SolverKind::kConf3Forced},
                      KindCase{"q_A3perm_R", SolverKind::kPerm3Flow},
                      KindCase{"q_Swx3perm_R", SolverKind::kPerm3Flow},
                      KindCase{"q_chain", SolverKind::kExact}),
    [](const ::testing::TestParamInfo<KindCase>& info) {
      return info.param.query_name;
    });

// --- Hand-built scenarios ------------------------------------------------------

TEST(LinearFlow, SimpleLinearChainOfRelations) {
  // A(x), R(x,y), B(y): two witnesses sharing A(a) -> delete A(a).
  Database db;
  Value a = db.Intern("a"), b1 = db.Intern("b1"), b2 = db.Intern("b2");
  TupleId ta = db.AddTuple("A", {a});
  db.AddTuple("R", {a, b1});
  db.AddTuple("R", {a, b2});
  db.AddTuple("B", {b1});
  db.AddTuple("B", {b2});
  Query q = MustParseQuery("A(x), R(x,y), B(y)");
  std::optional<ResilienceResult> r = SolveLinearFlow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
  EXPECT_EQ(r->contingency, (std::vector<TupleId>{ta}));
}

TEST(LinearFlow, ExogenousTuplesNeverChosen) {
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  db.AddTuple("A", {a});
  db.AddTuple("R", {a, b});
  db.AddTuple("B", {b});
  Query q = MustParseQuery("A^x(x), R(x,y), B^x(y)");
  std::optional<ResilienceResult> r = SolveLinearFlow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
  EXPECT_EQ(db.TupleToString(r->contingency[0]), "R(a,b)");
}

TEST(LinearFlow, UnbreakableAllExogenous) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  Query q = MustParseQuery("R^x(x,y)");
  std::optional<ResilienceResult> r = SolveLinearFlow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->unbreakable);
}

TEST(LinearFlow, NotLinearReturnsNullopt) {
  Database db;
  Query q = MustParseQuery("R(x,y), S(y,z), T(z,x)");
  EXPECT_FALSE(SolveLinearFlow(q, db).has_value());
}

TEST(LinearFlow, ConfluenceSharedTupleCountedOnce) {
  // q_ACconf over a database where one R tuple serves both R positions:
  // A(a), R(a,b), C(a): witness (a,b,a) uses R(a,b) twice.
  Database db;
  Value a = db.Intern("a"), b = db.Intern("b");
  db.AddTuple("A", {a});
  db.AddTuple("R", {a, b});
  db.AddTuple("C", {a});
  Query q = CatalogQuery("q_ACconf");
  std::optional<ResilienceResult> r = SolveLinearFlow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
}

TEST(PermSolvers, CountOnPairsAndLoops) {
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("R", {v("a"), v("b")});
  db.AddTuple("R", {v("b"), v("a")});
  db.AddTuple("R", {v("c"), v("c")});  // loop: witness by itself
  db.AddTuple("R", {v("d"), v("e")});  // no inverse: no witness
  Query q = CatalogQuery("q_perm");
  std::optional<ResilienceResult> r = SolvePermutationCount(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 2);
}

TEST(PermSolvers, BipartiteSharedATuple) {
  // A(a) joins two pairs; deleting A(a) is optimal.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {v("a")});
  db.AddTuple("R", {v("a"), v("b")});
  db.AddTuple("R", {v("b"), v("a")});
  db.AddTuple("R", {v("a"), v("c")});
  db.AddTuple("R", {v("c"), v("a")});
  Query q = CatalogQuery("q_Aperm");
  std::optional<ResilienceResult> r = SolvePermutationBipartite(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
  EXPECT_EQ(db.TupleToString(r->contingency[0]), "A(a)");

  std::optional<ResilienceResult> f = SolveUnboundPermutationFlow(q, db);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->resilience, 1);
}

TEST(PermSolvers, SharedRPairBeatsTwoATuples) {
  // A(a), A(b) each witness only via pair {a,b}: deleting one R tuple of
  // the pair kills both witnesses.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {v("a")});
  db.AddTuple("A", {v("b")});
  db.AddTuple("R", {v("a"), v("b")});
  db.AddTuple("R", {v("b"), v("a")});
  Query q = CatalogQuery("q_Aperm");
  std::optional<ResilienceResult> r = SolvePermutationBipartite(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
  EXPECT_EQ(db.TupleToString(r->contingency[0]).substr(0, 1), "R");
}

TEST(Perm3, OneWayTuplesAreDominatedByUnaryL) {
  // Proposition 13 graph: with A(x), a 1-way connector is never chosen.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {v("a")});
  db.AddTuple("R", {v("a"), v("b")});  // 1-way connector
  db.AddTuple("R", {v("b"), v("c")});
  db.AddTuple("R", {v("c"), v("b")});  // pair {b,c}
  Query q = CatalogQuery("q_A3perm_R");
  std::optional<ResilienceResult> r = SolvePerm3Flow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
  // Either A(a) or one pair tuple; never the 1-way R(a,b).
  EXPECT_NE(db.TupleToString(r->contingency[0]), "R(a,b)");
}

TEST(Perm3, LoopPairs) {
  // Witness A(a),R(a,a): loop pair {a,a}.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {v("a")});
  db.AddTuple("R", {v("a"), v("a")});
  Query q = CatalogQuery("q_A3perm_R");
  std::optional<ResilienceResult> r = SolvePerm3Flow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
}

TEST(Perm3, BinaryLMayPreferOneWayTuple) {
  // Prop 44: with many S(e,a) behind one 1-way R(a,b), deleting R(a,b)
  // (1 tuple) beats deleting all S tuples.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  for (int e = 0; e < 3; ++e) {
    db.AddTuple("S", {db.InternIndexed("e", e), v("a")});
  }
  db.AddTuple("R", {v("a"), v("b")});  // 1-way
  db.AddTuple("R", {v("b"), v("c")});
  db.AddTuple("R", {v("c"), v("b")});
  Query q = CatalogQuery("q_Swx3perm_R");
  std::optional<ResilienceResult> r = SolvePerm3Flow(q, db);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->resilience, 1);
}

TEST(Dispatcher, DisconnectedQueryTakesMinimumOverComponents) {
  // Component 1: A(x),R(x,y) with 3 witnesses; component 2: B(w) with 1
  // tuple. Minimum is the B side.
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {v("a1")});
  db.AddTuple("A", {v("a2")});
  db.AddTuple("R", {v("a1"), v("b")});
  db.AddTuple("R", {v("a2"), v("b")});
  TupleId bw = db.AddTuple("B", {v("w")});
  Query q = MustParseQuery("A(x), R(x,y), B(w)");
  ResilienceResult r = ComputeResilience(q, db);
  EXPECT_EQ(r.resilience, 1);
  EXPECT_EQ(r.contingency, (std::vector<TupleId>{bw}));
}

TEST(Dispatcher, QueryFalseIsZero) {
  Database db;
  db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  Query q = MustParseQuery("R(x,y), R(y,z)");
  ResilienceResult r = ComputeResilience(q, db);
  EXPECT_EQ(r.resilience, 0);
  EXPECT_FALSE(r.unbreakable);
}

TEST(Dispatcher, Example11EndToEnd) {
  // The Section 3.2 example through the dispatcher (exact path: the query
  // has a triad).
  Database db;
  auto v = [&](const char* s) { return db.Intern(s); };
  db.AddTuple("A", {v("1")});
  db.AddTuple("A", {v("5")});
  db.AddTuple("R", {v("1"), v("2")});
  db.AddTuple("R", {v("2"), v("3")});
  db.AddTuple("R", {v("3"), v("1")});
  db.AddTuple("R", {v("5"), v("1")});
  db.AddTuple("R", {v("2"), v("5")});
  Query q = MustParseQuery("A(x), R(x,y), R(y,z), R(z,x)");
  ResilienceResult r = ComputeResilience(q, db);
  EXPECT_EQ(r.resilience, 1);
  EXPECT_EQ(SolverKindName(r.solver), SolverKindName(SolverKind::kExact));
}

TEST(Dispatcher, DominationNormalizationPreservesValue) {
  // Example 17 q2: A dominates R and S; answers must match the exact
  // solver on the raw query.
  Query q = MustParseQuery("R(x,y), A(y), R(z,y), S(y,z)");
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Database db = RandomDatabase(q, 4, 8, rng);
    ResilienceResult fast = ComputeResilience(q, db);
    ResilienceResult exact = ComputeResilienceExact(q, db);
    ASSERT_EQ(fast.unbreakable, exact.unbreakable);
    if (!exact.unbreakable) {
      EXPECT_EQ(fast.resilience, exact.resilience) << "trial " << trial;
    }
  }
}

TEST(Dispatcher, MinimizationPreservesValue) {
  // Example 22's non-minimal query is equivalent to R(x,y).
  Query q = MustParseQuery("R(x,y), R(z,y), R(z,w), R(x,w)");
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    Database db = RandomDatabase(q, 4, 6, rng);
    ResilienceResult fast = ComputeResilience(q, db);
    ResilienceResult exact = ComputeResilienceExact(q, db);
    EXPECT_EQ(fast.resilience, exact.resilience) << "trial " << trial;
  }
}

TEST(VerifyContingency, RestoresDatabaseWithDuplicateTupleIds) {
  // Regression: with a duplicate id the second occurrence records the
  // tuple as already-inactive; a forward-order restore would apply that
  // state last and leave the tuple deactivated after the call.
  Query q = MustParseQuery("R(x,y)");
  Database db;
  TupleId t = db.AddTuple("R", {db.Intern("a"), db.Intern("b")});
  TupleId u = db.AddTuple("R", {db.Intern("c"), db.Intern("d")});
  std::vector<TupleId> duplicated = {t, t, u, t};
  EXPECT_TRUE(VerifyContingency(q, db, duplicated));
  EXPECT_TRUE(db.IsActive(t));
  EXPECT_TRUE(db.IsActive(u));
  EXPECT_EQ(db.NumActiveTuples(), 2);
}

TEST(Dispatcher, PseudoLinearSjFreeFallsBackExactly) {
  // q_rats is PTIME but cyclic in the hypergraph (not linear), so the
  // dispatcher falls back to the exact solver with the fallback label.
  Query q = CatalogQuery("q_rats");
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    Database db = RandomDatabase(q, 4, 10, rng);
    if (!QueryHolds(q, db)) continue;
    ResilienceResult r = ComputeResilience(q, db);
    if (r.unbreakable || r.resilience == 0) continue;
    EXPECT_EQ(SolverKindName(r.solver),
              SolverKindName(SolverKind::kExactFallback));
    return;
  }
  GTEST_SKIP() << "no satisfying database generated";
}

}  // namespace
}  // namespace rescq
