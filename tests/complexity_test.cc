#include <gtest/gtest.h>

#include "complexity/catalog.h"
#include "complexity/linearity.h"
#include "complexity/patterns.h"
#include "complexity/triad.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "cq/parser.h"

namespace rescq {
namespace {

// --- Triads ---------------------------------------------------------------

TEST(Triad, TriangleHasTriad) {
  EXPECT_TRUE(HasTriad(MustParseQuery("R(x,y), S(y,z), T(z,x)")));
}

TEST(Triad, TripodHasTriadAfterDomination) {
  Query qT = MustParseQuery("A(x), B(y), C(z), W(x,y,z)");
  // Raw: W is endogenous; domination makes it exogenous, and {A,B,C}
  // connect through W's variables.
  Query n = NormalizeDomination(qT);
  std::optional<Triad> t = FindTriad(n);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(n.atom(t->atoms[0]).relation, "A");
  EXPECT_EQ(n.atom(t->atoms[1]).relation, "B");
  EXPECT_EQ(n.atom(t->atoms[2]).relation, "C");
}

TEST(Triad, RatsHasNoTriadAfterDomination) {
  Query q = NormalizeDomination(CatalogQuery("q_rats"));
  EXPECT_FALSE(HasTriad(q));
  EXPECT_TRUE(IsPseudoLinear(q));
}

TEST(Triad, SelfJoinTriangleVariationsHaveTriads) {
  for (const char* name :
       {"q_sj1_triangle", "q_sj2_triangle", "q_sj3_triangle", "q_sj1rats",
        "q_sj2rats", "q_sj1brats"}) {
    Query q = NormalizeDomination(CatalogQuery(name));
    EXPECT_TRUE(HasTriad(q)) << name;
  }
}

TEST(Triad, TwoAtomQueriesHaveNoTriad) {
  EXPECT_FALSE(HasTriad(MustParseQuery("R(x,y), R(y,z)")));
  EXPECT_FALSE(HasTriad(MustParseQuery("R(x,y), R(y,x)")));
}

TEST(Triad, QvcHasNoTriad) {
  // R(x), S(x,y), R(y): R(x)-R(y) cannot avoid var(S) = {x,y}.
  EXPECT_FALSE(HasTriad(CatalogQuery("q_vc")));
}

TEST(Triad, ExogenousAtomsExcluded) {
  Query q = MustParseQuery("R(x,y), S(y,z), T^x(z,x)");
  EXPECT_FALSE(HasTriad(q));
}

TEST(Triad, ThreeConfluenceQueriesHaveNoTriad) {
  for (const char* name : {"q_AC3conf", "q_TS3conf", "q_AS3conf"}) {
    EXPECT_FALSE(HasTriad(NormalizeDomination(CatalogQuery(name)))) << name;
  }
}

// --- Linearity --------------------------------------------------------------

TEST(Linearity, LinearQueries) {
  EXPECT_TRUE(IsLinear(MustParseQuery("A(x), R(x,y,z), S(y,z)")));
  EXPECT_TRUE(IsLinear(MustParseQuery("A(x), R(x,y), S(y,z), C(z)")));
  EXPECT_TRUE(IsLinear(MustParseQuery("R(x,y), R(y,z)")));
  EXPECT_TRUE(IsLinear(MustParseQuery("A(x), R(x,y), R(z,y), C(z)")));
}

TEST(Linearity, TriangleIsNotLinear) {
  EXPECT_FALSE(IsLinear(MustParseQuery("R(x,y), S(y,z), T(z,x)")));
}

TEST(Linearity, TripodIsNotLinear) {
  EXPECT_FALSE(IsLinear(MustParseQuery("A(x), B(y), C(z), W(x,y,z)")));
}

TEST(Linearity, OrderHasContiguousVariables) {
  Query q = MustParseQuery("C(z), A(x), S(y,z), R(x,y)");
  std::optional<std::vector<int>> order = FindLinearOrder(q);
  ASSERT_TRUE(order.has_value());
  // Each variable occupies a contiguous run.
  for (int v = 0; v < q.num_vars(); ++v) {
    int first = -1, last = -1;
    for (size_t i = 0; i < order->size(); ++i) {
      if (q.atom((*order)[i]).HasVar(v)) {
        if (first < 0) first = static_cast<int>(i);
        last = static_cast<int>(i);
      }
    }
    for (int i = first; i <= last; ++i) {
      EXPECT_TRUE(q.atom((*order)[static_cast<size_t>(i)]).HasVar(v));
    }
  }
}

TEST(Linearity, Interfaces) {
  Query q = MustParseQuery("A(x), R(x,y), S(y,z)");
  std::vector<int> order = {0, 1, 2};
  std::vector<std::vector<VarId>> ifs = LinearInterfaces(q, order);
  ASSERT_EQ(ifs.size(), 2u);
  EXPECT_EQ(ifs[0], (std::vector<VarId>{q.VarIdOf("x")}));
  EXPECT_EQ(ifs[1], (std::vector<VarId>{q.VarIdOf("y")}));
}

// --- Self-join info -----------------------------------------------------------

TEST(Patterns, SingleSelfJoin) {
  std::optional<SelfJoinInfo> sj =
      GetSingleSelfJoin(MustParseQuery("A(x), R(x,y), R(y,z)"));
  ASSERT_TRUE(sj.has_value());
  EXPECT_EQ(sj->relation, "R");
  EXPECT_EQ(sj->atoms, (std::vector<int>{1, 2}));
}

TEST(Patterns, NoSelfJoin) {
  EXPECT_FALSE(GetSingleSelfJoin(MustParseQuery("R(x,y), S(y,z)")).has_value());
}

TEST(Patterns, TwoRepeatedRelationsRejected) {
  EXPECT_FALSE(GetSingleSelfJoin(
                   MustParseQuery("R(x), S(x,y), R(y), S(y,z)"))
                   .has_value());
}

TEST(Patterns, ExogenousRepetitionIgnored) {
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(
      MustParseQuery("R^x(x,y), R^x(y,z), A(x), B(y)"));
  EXPECT_FALSE(sj.has_value());
}

// --- Paths --------------------------------------------------------------------

TEST(Patterns, QvcIsUnaryPath) {
  Query q = CatalogQuery("q_vc");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(HasUnaryPath(q, *sj));
}

TEST(Patterns, BinaryPathDetected) {
  // R(x,y), S(y,z), R(z,w): variable-disjoint R-atoms joined R-free.
  Query q = MustParseQuery("R(x,y), S(y,z), R(z,w)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(HasBinaryPath(q, *sj));
}

TEST(Patterns, ChainIsNotBinaryPath) {
  Query q = CatalogQuery("q_chain");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(HasBinaryPath(q, *sj));
}

TEST(Patterns, ThreeChainOuterAtomsAreNotAPath) {
  // In R(x,y),R(y,z),R(z,w) the outer atoms are disjoint but every
  // connecting path passes through the middle R-atom.
  Query q = CatalogQuery("q_3chain");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(HasBinaryPath(q, *sj));
}

TEST(Patterns, Z1Z4AreBinaryPaths) {
  for (const char* name : {"z1", "z4"}) {
    Query q = CatalogQuery(name);
    std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
    ASSERT_TRUE(sj.has_value()) << name;
    EXPECT_TRUE(HasBinaryPath(q, *sj)) << name;
  }
}

// --- Pair patterns ---------------------------------------------------------------

TEST(Patterns, PairClassification) {
  Query chain = CatalogQuery("q_chain");
  EXPECT_EQ(ClassifyPair(chain, 0, 1), PairPattern::kChain);

  Query conf = MustParseQuery("R(x,y), R(z,y)");
  EXPECT_EQ(ClassifyPair(conf, 0, 1), PairPattern::kConfluence);

  Query divergence = MustParseQuery("R(x,y), R(x,z)");
  EXPECT_EQ(ClassifyPair(divergence, 0, 1), PairPattern::kConfluence);

  Query perm = CatalogQuery("q_perm");
  EXPECT_EQ(ClassifyPair(perm, 0, 1), PairPattern::kPermutation);

  Query rep = MustParseQuery("R(x,x), R(x,y)");
  EXPECT_EQ(ClassifyPair(rep, 0, 1), PairPattern::kRep);

  Query disj = MustParseQuery("R(x,y), R(z,w)");
  EXPECT_EQ(ClassifyPair(disj, 0, 1), PairPattern::kDisjoint);

  // R(x,y), R(z,x): shares x in different positions -> chain.
  Query chain2 = MustParseQuery("R(x,y), R(z,x)");
  EXPECT_EQ(ClassifyPair(chain2, 0, 1), PairPattern::kChain);
}

// --- Permutation bounds -------------------------------------------------------------

TEST(Patterns, ABpermIsBound) {
  Query q = CatalogQuery("q_ABperm");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(PermutationIsBound(q, sj->atoms[0], sj->atoms[1]));
}

TEST(Patterns, ApermIsUnbound) {
  Query q = CatalogQuery("q_Aperm");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(PermutationIsBound(q, sj->atoms[0], sj->atoms[1]));
}

TEST(Patterns, ExogenousBoundDoesNotCount) {
  Query q = MustParseQuery("A(x), R(x,y), R(y,x), B^x(y)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(PermutationIsBound(q, sj->atoms[0], sj->atoms[1]));
}

// --- Confluence exogenous path -----------------------------------------------------

TEST(Patterns, CfpHasExogenousPath) {
  Query q = CatalogQuery("cf_p");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(ConfluenceHasExogenousPath(q, sj->atoms[0], sj->atoms[1]));
}

TEST(Patterns, ACconfHasNoExogenousPath) {
  Query q = CatalogQuery("q_ACconf");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(ConfluenceHasExogenousPath(q, sj->atoms[0], sj->atoms[1]));
}

TEST(Patterns, MultiHopExogenousPath) {
  Query q = MustParseQuery("R(x,y), G^x(x,u), H^x(u,z), R(z,y)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(ConfluenceHasExogenousPath(q, sj->atoms[0], sj->atoms[1]));
}

TEST(Patterns, PathThroughSharedVarDoesNotCount) {
  // Connector G(x,y) touches the shared variable y: not an x-z path
  // avoiding y.
  Query q = MustParseQuery("R(x,y), G^x(x,y), R(z,y), A(x), C(z)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(ConfluenceHasExogenousPath(q, sj->atoms[0], sj->atoms[1]));
}

// --- k-chains and 3-confluences -----------------------------------------------------

TEST(Patterns, ThreeChainDetected) {
  Query q = CatalogQuery("q_3chain");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(RAtomsFormChain(q, *sj));
}

TEST(Patterns, FourChainDetected) {
  Query q = MustParseQuery("R(x,y), R(y,z), R(z,w), R(w,v)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(RAtomsFormChain(q, *sj));
}

TEST(Patterns, ChainDetectionHandlesColumnSwap) {
  // Globally swapped 3-chain: R(y,x), R(z,y), R(w,z).
  Query q = MustParseQuery("R(y,x), R(z,y), R(w,z)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_TRUE(RAtomsFormChain(q, *sj));
}

TEST(Patterns, ThreeConfluenceIsNotAChain) {
  Query q = MustParseQuery("R(x,y), R(z,y), R(z,w)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(RAtomsFormChain(q, *sj));
  std::optional<ThreeConfluence> conf = FindThreeConfluence(q, *sj);
  ASSERT_TRUE(conf.has_value());
  EXPECT_EQ(conf->end_x, q.VarIdOf("x"));
  EXPECT_EQ(conf->end_w, q.VarIdOf("w"));
}

TEST(Patterns, ChainConfluenceMixIsNeither) {
  // q_C3cc core: R(x,y), R(y,z), R(w,z).
  Query q = MustParseQuery("R(x,y), R(y,z), R(w,z), C(w)");
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  ASSERT_TRUE(sj.has_value());
  EXPECT_FALSE(RAtomsFormChain(q, *sj));
  EXPECT_FALSE(FindThreeConfluence(q, *sj).has_value());
}

// --- Catalog sanity -----------------------------------------------------------------

TEST(Catalog, AllEntriesParseAndAreMinimalAfterMinimize) {
  for (const CatalogEntry& e : PaperCatalog()) {
    ParseResult r = ParseQuery(e.text);
    ASSERT_TRUE(r.ok) << e.name << ": " << r.error;
    Query m = Minimize(r.query);
    EXPECT_TRUE(IsMinimal(m)) << e.name;
  }
}

TEST(Catalog, EntriesWithDifferentComplexityAreDistinct) {
  const std::vector<CatalogEntry>& cat = PaperCatalog();
  for (size_t i = 0; i < cat.size(); ++i) {
    Query qi = NormalizeDomination(Minimize(MustParseQuery(cat[i].text)));
    for (size_t j = i + 1; j < cat.size(); ++j) {
      if (cat[i].expected == cat[j].expected) continue;
      Query qj = NormalizeDomination(Minimize(MustParseQuery(cat[j].text)));
      EXPECT_FALSE(AreIsomorphicModuloRelabeling(qi, qj))
          << cat[i].name << " vs " << cat[j].name;
    }
  }
}

TEST(Catalog, LookupByName) {
  EXPECT_TRUE(FindCatalogEntry("q_chain").has_value());
  EXPECT_FALSE(FindCatalogEntry("no_such_query").has_value());
  EXPECT_EQ(CatalogQuery("q_chain").num_atoms(), 2);
}

}  // namespace
}  // namespace rescq
