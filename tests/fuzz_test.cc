// End-to-end differential fuzzing: random single-self-join binary
// queries (beyond the named catalog) pushed through the full pipeline.
// Invariants checked on every instance:
//  - the classifier never crashes and never contradicts itself
//    (hard patterns imply NP-complete, etc.);
//  - the dispatcher's answer equals the exact oracle;
//  - returned contingency sets really falsify the query;
//  - PTIME-classified connected queries in the two-R-atom class are
//    answered by a specialized construction or the documented fallback.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "complexity/catalog.h"
#include "complexity/classifier.h"
#include "complexity/patterns.h"
#include "cq/parser.h"
#include "db/database.h"
#include "db/delta.h"
#include "resilience/engine.h"
#include "resilience/exact_solver.h"
#include "resilience/incremental.h"
#include "resilience/solver.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "workload/churn.h"
#include "workload/generators.h"

namespace rescq {
namespace {

// Random ssj binary query: two or three R-atoms over up to 4 variables,
// a sprinkle of unary pins and at most one binary connector, random
// exogenous flags on the non-R relations.
Query RandomQuery(Rng& rng) {
  static const char* kVars[] = {"x", "y", "z", "w"};
  int num_vars = 2 + static_cast<int>(rng.Below(3));
  int num_r = 2 + static_cast<int>(rng.Chance(1, 3) ? 1 : 0);
  std::vector<std::string> parts;
  for (int i = 0; i < num_r; ++i) {
    const char* a = kVars[rng.Below(static_cast<uint64_t>(num_vars))];
    const char* b = kVars[rng.Below(static_cast<uint64_t>(num_vars))];
    parts.push_back(StrFormat("R(%s,%s)", a, b));
  }
  if (rng.Chance(1, 2)) {
    const char* a = kVars[rng.Below(static_cast<uint64_t>(num_vars))];
    const char* b = kVars[rng.Below(static_cast<uint64_t>(num_vars))];
    parts.push_back(StrFormat("S%s(%s,%s)", rng.Chance(1, 2) ? "^x" : "", a,
                              b));
  }
  for (int v = 0; v < num_vars; ++v) {
    if (rng.Chance(1, 3)) {
      parts.push_back(StrFormat("U%d%s(%s)", v,
                                rng.Chance(1, 3) ? "^x" : "", kVars[v]));
    }
  }
  return MustParseQuery(Join(parts, ", "));
}

Database RandomDatabase(const Query& q, int domain, int tuples, Rng& rng) {
  Database db;
  std::vector<Value> dom;
  for (int i = 0; i < domain; ++i) dom.push_back(db.InternIndexed("c", i));
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < tuples; ++t) {
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

TEST(Fuzz, RandomQueriesSurviveTheFullPipeline) {
  Rng rng(0xD1CE);
  int ptime_seen = 0, hard_seen = 0;
  for (int round = 0; round < 200; ++round) {
    Query q = RandomQuery(rng);
    Classification c = ClassifyResilience(q);
    // Self-consistency: the paper's class never leaves a verdict open
    // for <= 2 R-atoms (Theorem 37); 3 R-atoms may be open.
    if (c.complexity == Complexity::kPTime) ++ptime_seen;
    if (c.complexity == Complexity::kNpComplete) ++hard_seen;

    Database db = RandomDatabase(q, 4, 7, rng);
    ResilienceResult fast = ComputeResilience(q, db);
    ResilienceResult exact = ComputeResilienceExact(q, db);
    ASSERT_EQ(fast.unbreakable, exact.unbreakable)
        << q.ToString() << " round " << round;
    if (exact.unbreakable) continue;
    ASSERT_EQ(fast.resilience, exact.resilience)
        << q.ToString() << " round " << round << " via "
        << SolverKindName(fast.solver);
    ASSERT_EQ(static_cast<int>(fast.contingency.size()), fast.resilience);
    ASSERT_TRUE(VerifyContingency(q, db, fast.contingency))
        << q.ToString() << " round " << round;
  }
  // The generator must exercise both sides of the dichotomy.
  EXPECT_GT(ptime_seen, 10);
  EXPECT_GT(hard_seen, 10);
}

TEST(Fuzz, TwoAtomClassNeverComesBackOpen) {
  Rng rng(0xFACE);
  for (int round = 0; round < 300; ++round) {
    Query q = RandomQuery(rng);
    // Restrict to the fully characterized class: one repeated relation,
    // exactly two R-atoms after minimization.
    Classification c = ClassifyResilience(q);
    std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(c.normalized);
    if (!sj.has_value() || sj->atoms.size() != 2) continue;
    if (c.normalized.RepeatedRelations().size() > 1) continue;
    EXPECT_NE(c.complexity, Complexity::kOpen)
        << q.ToString() << " -> " << c.reason;
    EXPECT_NE(c.complexity, Complexity::kOutOfScope)
        << q.ToString() << " -> " << c.reason;
  }
}

TEST(Fuzz, ClassificationIsInvariantUnderVariableRenaming) {
  Rng rng(0xBEAD);
  for (int round = 0; round < 100; ++round) {
    Query q = RandomQuery(rng);
    // Rename variables by reversing the name table.
    std::vector<std::string> names = q.var_names();
    std::vector<std::string> reversed(names.rbegin(), names.rend());
    Query renamed(q.atoms(), reversed);
    Classification a = ClassifyResilience(q);
    Classification b = ClassifyResilience(renamed);
    EXPECT_EQ(static_cast<int>(a.complexity), static_cast<int>(b.complexity))
        << q.ToString();
  }
}

// Old-style brute-force reference: branch on every element of the first
// open set with only incumbent pruning — no reductions, no components,
// no flow bounds. Exponential, but the sweep keeps instances tiny.
void ReferenceHittingSetSearch(const std::vector<std::vector<int>>& sets,
                               std::vector<bool>& chosen, int chosen_count,
                               int* best) {
  if (chosen_count >= *best) return;
  const std::vector<int>* open = nullptr;
  for (const std::vector<int>& s : sets) {
    bool hit = false;
    for (int e : s) hit = hit || chosen[static_cast<size_t>(e)];
    if (!hit) {
      open = &s;
      break;
    }
  }
  if (open == nullptr) {
    *best = chosen_count;
    return;
  }
  for (int e : *open) {
    chosen[static_cast<size_t>(e)] = true;
    ReferenceHittingSetSearch(sets, chosen, chosen_count + 1, best);
    chosen[static_cast<size_t>(e)] = false;
  }
}

int ReferenceHittingSet(const std::vector<std::vector<int>>& sets,
                        int num_elements) {
  std::vector<bool> chosen(static_cast<size_t>(num_elements), false);
  int best = num_elements;
  ReferenceHittingSetSearch(sets, chosen, 0, &best);
  return best;
}

TEST(Fuzz, CatalogWideExactDifferentialSweep) {
  // Every named query of the paper, over random uniform instances:
  //  - the overhauled exact solver (streaming witnesses, domination,
  //    components, flow bounds) must agree with the bound-free
  //    brute-force search on the same hitting-set family;
  //  - the engine's dispatched answer must agree with the exact
  //    reference, and its contingency set must verify.
  for (const CatalogEntry& entry : PaperCatalog()) {
    Query q = MustParseQuery(entry.text);
    uint64_t seed_base = std::hash<std::string>()(entry.name);
    for (int trial = 0; trial < 2; ++trial) {
      ScenarioParams params;
      params.size = 4 + trial;
      params.density = 0.5;
      params.seed = seed_base + static_cast<uint64_t>(trial);
      Database db = GenerateUniform(q, params);

      WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
      ResilienceResult exact = ComputeResilienceExact(q, db);
      if (family.unbreakable) {
        EXPECT_TRUE(exact.unbreakable) << entry.name;
        continue;
      }
      std::map<TupleId, int> ids;
      std::vector<std::vector<int>> sets;
      for (const std::vector<TupleId>& w : family.Materialize()) {
        std::vector<int> s;
        for (TupleId t : w) {
          auto [it, inserted] = ids.emplace(t, static_cast<int>(ids.size()));
          s.push_back(it->second);
        }
        sets.push_back(std::move(s));
      }
      int reference = ReferenceHittingSet(sets, static_cast<int>(ids.size()));
      ASSERT_EQ(exact.resilience, reference)
          << entry.name << " trial " << trial;

      ResilienceResult fast = ComputeResilience(q, db);
      ASSERT_EQ(fast.unbreakable, exact.unbreakable) << entry.name;
      ASSERT_EQ(fast.resilience, exact.resilience)
          << entry.name << " via " << SolverKindName(fast.solver);
      ASSERT_TRUE(VerifyContingency(q, db, fast.contingency)) << entry.name;
    }
  }
}

TEST(Fuzz, SpanFamilyMatchesLegacyEnumerationAcrossTheCatalog) {
  // The arena-backed WitnessFamily must present exactly the element
  // sequences the legacy vector-of-vectors surface produced, for every
  // named query of the paper: WitnessTupleSets is the legacy reference
  // (own enumeration + dedup), Materialize() bridges the spans back.
  for (const CatalogEntry& entry : PaperCatalog()) {
    Query q = MustParseQuery(entry.text);
    uint64_t seed_base = std::hash<std::string>()(entry.name);
    for (int trial = 0; trial < 2; ++trial) {
      ScenarioParams params;
      params.size = 4 + trial;
      params.density = 0.5;
      params.seed = seed_base + 77 + static_cast<uint64_t>(trial);
      Database db = GenerateUniform(q, params);
      WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
      ASSERT_EQ(family.Materialize(), WitnessTupleSets(q, db))
          << entry.name << " trial " << trial;
      // The spans really are interned: every presented set resolves to
      // an arena id, and distinct presented sets resolve to distinct
      // ids (dedup happened in the arena, not by the surface sort).
      ASSERT_EQ(family.arena.num_spans(), family.size()) << entry.name;
      std::set<uint32_t> arena_ids;
      for (size_t i = 0; i < family.size(); ++i) {
        std::vector<TupleId> content = family.set(i);
        uint32_t id = family.arena.Find(content.data(), content.size());
        ASSERT_LT(id, family.arena.num_spans()) << entry.name;
        arena_ids.insert(id);
      }
      EXPECT_EQ(arena_ids.size(), family.size()) << entry.name;
    }
  }
}

TEST(Fuzz, SpanAndVectorSolverAreIdenticalDownToTheCounters) {
  // The vector SolveMinHittingSet overload is a thin wrapper over the
  // span-native core; this sweep pins that they stay one algorithm —
  // same answer, same chosen set, same node/prune counters — on random
  // multi-set instances including duplicates and supersets.
  Rng rng(0x5BA2F00D);
  for (int round = 0; round < 40; ++round) {
    std::vector<std::vector<int>> sets;
    int family = 4 + static_cast<int>(rng.Below(10));
    int num_elements = 0;
    for (int s = 0; s < family; ++s) {
      std::vector<int> set;
      int arity = 1 + static_cast<int>(rng.Below(4));
      for (int k = 0; k < arity; ++k) {
        int e = static_cast<int>(rng.Below(12));
        set.push_back(e);
        num_elements = std::max(num_elements, e + 1);
      }
      sets.push_back(set);
      if (rng.Chance(1, 5)) sets.push_back(sets.back());  // duplicate
    }
    ExactOptions options;
    ExactStats vec_stats, span_stats;
    HittingSetResult vec = SolveMinHittingSet(sets, options, &vec_stats);
    ASSERT_EQ(vec.size, ReferenceHittingSet(sets, num_elements))
        << "round " << round;
    HittingSetResult spn =
        SolveMinHittingSet(HittingSetFamily::From(sets), options, &span_stats);
    ASSERT_EQ(spn.size, vec.size) << "round " << round;
    ASSERT_EQ(spn.chosen, vec.chosen) << "round " << round;
    ASSERT_EQ(spn.proven_optimal, vec.proven_optimal) << "round " << round;
    ASSERT_EQ(span_stats.nodes, vec_stats.nodes) << "round " << round;
    ASSERT_EQ(span_stats.components, vec_stats.components)
        << "round " << round;
    ASSERT_EQ(span_stats.packing_prunes, vec_stats.packing_prunes)
        << "round " << round;
    ASSERT_EQ(span_stats.flow_prunes, vec_stats.flow_prunes)
        << "round " << round;
  }
}

TEST(Fuzz, ParallelExactDifferentialSweep) {
  // Randomized multi-component hitting-set instances: the parallel
  // solver (2 and 4 workers, self-contained component searches) against
  // the serial solver against the bound-free brute-force reference. Element
  // ids are blocked per component so every instance genuinely fans out.
  Rng rng(0x9A7A11E1);
  for (int round = 0; round < 60; ++round) {
    std::vector<std::vector<int>> sets;
    int components = 2 + static_cast<int>(rng.Below(4));
    int num_elements = 0;
    for (int c = 0; c < components; ++c) {
      int base = c * 8;
      int family = 3 + static_cast<int>(rng.Below(6));
      for (int s = 0; s < family; ++s) {
        std::vector<int> set;
        int arity = 1 + static_cast<int>(rng.Below(3));
        for (int k = 0; k < arity; ++k) {
          int e = base + static_cast<int>(rng.Below(6));
          set.push_back(e);
          num_elements = std::max(num_elements, e + 1);
        }
        sets.push_back(set);
      }
    }
    int reference = ReferenceHittingSet(sets, num_elements);
    HittingSetResult serial = SolveMinHittingSet(sets);
    ASSERT_EQ(serial.size, reference) << "round " << round;
    for (int threads : {2, 4}) {
      ExactOptions options;
      options.solver_threads = threads;
      ExactStats stats;
      HittingSetResult parallel = SolveMinHittingSet(sets, options, &stats);
      ASSERT_EQ(parallel.size, reference)
          << "round " << round << " threads " << threads;
      ASSERT_TRUE(parallel.proven_optimal)
          << "round " << round << " threads " << threads;
      ASSERT_EQ(static_cast<int>(parallel.chosen.size()), parallel.size);
      for (const std::vector<int>& s : sets) {
        bool hit = false;
        for (int e : s) {
          for (int c : parallel.chosen) hit = hit || c == e;
        }
        ASSERT_TRUE(hit) << "round " << round << " threads " << threads;
      }
    }
  }
}

TEST(Fuzz, ParallelIncrementalChurnSweep) {
  // Random queries under churn with solver_threads > 1: the parallel
  // session must stay byte-identical to the serial session (the
  // incremental contract keeps even the contingency deterministic) and
  // both must agree with the from-scratch exact oracle.
  Rng rng(0xC0FFEE);
  EngineOptions parallel_options;
  parallel_options.solver_threads = 3;
  for (int round = 0; round < 25; ++round) {
    Query q = RandomQuery(rng);
    Database base = RandomDatabase(q, 4, 8, rng);
    const ChurnKind& kind =
        ChurnCatalog()[round % ChurnCatalog().size()];
    ChurnParams churn;
    churn.epochs = 3;
    churn.rate = 0.3;
    churn.seed = 0x5EED + static_cast<uint64_t>(round);
    UpdateLog log = GenerateChurn(base, kind.name, churn);

    IncrementalSession serial(q, base, EngineOptions{});
    IncrementalSession parallel(q, base, parallel_options);
    int epoch = 0;
    auto check = [&](const EpochOutcome& a, const EpochOutcome& b) {
      ASSERT_EQ(a.unbreakable, b.unbreakable)
          << q.ToString() << " round " << round << " epoch " << epoch;
      ASSERT_EQ(a.resilience, b.resilience)
          << q.ToString() << " round " << round << " epoch " << epoch;
      ASSERT_EQ(a.contingency, b.contingency)
          << q.ToString() << " round " << round << " epoch " << epoch;
      ASSERT_EQ(a.lower_bound, b.lower_bound)
          << q.ToString() << " round " << round << " epoch " << epoch;
      ResilienceResult exact = ComputeResilienceExact(q, parallel.db());
      ASSERT_EQ(b.unbreakable, exact.unbreakable)
          << q.ToString() << " round " << round << " epoch " << epoch;
      if (!exact.unbreakable) {
        ASSERT_EQ(b.resilience, exact.resilience)
            << q.ToString() << " round " << round << " epoch " << epoch;
      }
    };
    check(serial.current(), parallel.current());
    if (::testing::Test::HasFatalFailure()) return;
    for (const Epoch& e : log.epochs) {
      ++epoch;
      EpochOutcome a = serial.Apply(e);
      EpochOutcome b = parallel.Apply(e);
      check(a, b);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Fuzz, BudgetedEngineNeverMisreports) {
  // Random queries under a tiny witness budget: every outcome is either
  // a correct answer (error empty, agrees with the oracle) or a
  // structured budget error — never a silently wrong value.
  Rng rng(0xB1D6E7);
  EngineOptions options;
  options.witness_limit = 5;
  ResilienceEngine engine(options);
  int errors_seen = 0, answers_seen = 0;
  for (int round = 0; round < 60; ++round) {
    Query q = RandomQuery(rng);
    Database db = RandomDatabase(q, 4, 6, rng);
    SolveOutcome out = engine.Solve(q, db);
    if (!out.error.empty()) {
      EXPECT_NE(out.error.find("witness budget exceeded"), std::string::npos);
      ++errors_seen;
      continue;
    }
    ++answers_seen;
    ResilienceResult oracle = ComputeResilienceReference(q, db);
    ASSERT_EQ(out.result.unbreakable, oracle.unbreakable)
        << q.ToString() << " round " << round;
    if (!oracle.unbreakable) {
      ASSERT_EQ(out.result.resilience, oracle.resilience)
          << q.ToString() << " round " << round;
    }
  }
  // The sweep must exercise both outcomes.
  EXPECT_GT(errors_seen, 0);
  EXPECT_GT(answers_seen, 0);
}

TEST(Fuzz, IncrementalSessionDifferentialSweep) {
  // Every named query of the paper × every churn generator × seeds:
  // IncrementalSession after every epoch must agree exactly with
  // ComputeResilienceExact from scratch over the session's database —
  // the witness-delta maintenance, the component decomposition, and
  // every warm path (closed forms, incumbent repair, packing certify,
  // proof cache) all sit between those two answers.
  for (const CatalogEntry& entry : PaperCatalog()) {
    Query q = MustParseQuery(entry.text);
    uint64_t seed_base = std::hash<std::string>()(entry.name);
    for (const ChurnKind& kind : ChurnCatalog()) {
      for (uint64_t seed = 1; seed <= 2; ++seed) {
        ScenarioParams params;
        params.size = 4;
        params.density = 0.5;
        params.seed = seed_base + seed;
        Database base = GenerateUniform(q, params);

        ChurnParams churn;
        churn.epochs = 3;
        churn.rate = 0.3;
        churn.seed = seed_base ^ (seed * 0x9e3779b9u);
        UpdateLog log = GenerateChurn(base, kind.name, churn);

        IncrementalSession session(q, base, EngineOptions{});
        int epoch = 0;
        auto check = [&](const EpochOutcome& out) {
          ResilienceResult exact =
              ComputeResilienceExact(q, session.db());
          ASSERT_EQ(out.unbreakable, exact.unbreakable)
              << entry.name << " " << kind.name << " seed " << seed
              << " epoch " << epoch;
          if (exact.unbreakable) return;
          ASSERT_EQ(out.resilience, exact.resilience)
              << entry.name << " " << kind.name << " seed " << seed
              << " epoch " << epoch;
          Database copy = session.db();
          ASSERT_TRUE(VerifyContingency(q, copy, out.contingency))
              << entry.name << " " << kind.name << " seed " << seed
              << " epoch " << epoch;
        };
        check(session.current());
        if (::testing::Test::HasFatalFailure()) return;
        for (const Epoch& e : log.epochs) {
          ++epoch;
          EpochOutcome out = session.Apply(e);
          check(out);
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(Fuzz, ResilienceIsMonotoneUnderTupleRemoval) {
  // Removing a tuple never increases resilience (fewer witnesses).
  Rng rng(0xF00D);
  Query q = MustParseQuery("R(x,y), R(y,z)");
  for (int round = 0; round < 25; ++round) {
    Database db = RandomDatabase(q, 5, 12, rng);
    ResilienceResult before = ComputeResilienceExact(q, db);
    // Deactivate a random active tuple.
    std::vector<TupleId> all = db.ActiveTuples(db.RelationId("R"));
    if (all.empty()) continue;
    TupleId victim = all[rng.Below(all.size())];
    db.SetActive(victim, false);
    ResilienceResult after = ComputeResilienceExact(q, db);
    EXPECT_LE(after.resilience, before.resilience) << "round " << round;
    // And it drops by at most 1: the removed tuple could have been a
    // contingency member.
    EXPECT_GE(after.resilience, before.resilience - 1) << "round " << round;
  }
}

}  // namespace
}  // namespace rescq
