// The observability layer: metrics registry semantics (counters,
// gauges, histogram bucket edges, snapshot schema), concurrent counter
// updates from WorkerPool workers (the `parallel` CTest label puts this
// file under TSan in CI), trace JSON well-formedness across threads,
// and memstats monotonicity while an incremental session absorbs
// inserts. Tests that touch the process-global registry / trace buffer
// restore the disabled state before returning so the rest of the suite
// keeps its zero-cost default.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cq/parser.h"
#include "db/database.h"
#include "db/delta.h"
#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/incremental.h"
#include "util/parallel.h"

namespace rescq {
namespace {

// --- Registry ---------------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesAndLookup) {
  obs::Registry registry;
  registry.GetCounter("a.hits").Add(3);
  registry.GetCounter("a.hits").Increment();
  registry.GetGauge("a.bytes").Set(128.5);

  const obs::Counter* hits = registry.FindCounter("a.hits");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->Value(), 4u);
  const obs::Gauge* bytes = registry.FindGauge("a.bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_DOUBLE_EQ(bytes->Value(), 128.5);

  EXPECT_EQ(registry.FindCounter("never.registered"), nullptr);
  EXPECT_EQ(registry.FindGauge("a.hits"), nullptr);  // wrong kind

  registry.Reset();
  EXPECT_EQ(hits->Value(), 0u);  // registration survives, value zeroed
  EXPECT_DOUBLE_EQ(bytes->Value(), 0.0);
}

TEST(MetricsRegistry, RegistrationReturnsStableReferences) {
  obs::Registry registry;
  obs::Counter& first = registry.GetCounter("x");
  // Registering many more names must not move the first slot.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler." + std::to_string(i));
  }
  obs::Counter& again = registry.GetCounter("x");
  EXPECT_EQ(&first, &again);
}

TEST(MetricsRegistry, SnapshotJsonIsStableAndSchemaTagged) {
  obs::Registry registry;
  registry.GetCounter("b.count").Add(7);
  registry.GetCounter("a.count").Add(2);
  registry.GetGauge("m.ratio").Set(0.25);
  registry.GetHistogram("lat_ms", {1.0, 10.0}).Observe(0.5);

  std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("\"schema\": \"rescq-metrics/v1\""), std::string::npos);
  // Sorted keys: a.count before b.count.
  EXPECT_LT(json.find("\"a.count\": 2"), json.find("\"b.count\": 7"));
  EXPECT_NE(json.find("\"m.ratio\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"lat_ms\""), std::string::npos);
  // Two identical registries snapshot to identical text.
  obs::Registry twin;
  twin.GetCounter("b.count").Add(7);
  twin.GetCounter("a.count").Add(2);
  twin.GetGauge("m.ratio").Set(0.25);
  twin.GetHistogram("lat_ms", {1.0, 10.0}).Observe(0.5);
  EXPECT_EQ(json, twin.SnapshotJson());
}

// --- Histogram bucket edges -------------------------------------------------

TEST(MetricsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 5.0, 25.0});
  h.Observe(1.0);   // exactly the first bound -> bucket 0
  h.Observe(0.1);   // below the first bound  -> bucket 0
  h.Observe(1.001); // just above            -> bucket 1
  h.Observe(5.0);   // exactly the second    -> bucket 1
  h.Observe(25.0);  // exactly the last      -> bucket 2
  h.Observe(25.1);  // above every bound     -> overflow
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.OverflowCount(), 1u);
  EXPECT_EQ(h.Count(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1.0 + 0.1 + 1.001 + 5.0 + 25.0 + 25.1);
  EXPECT_EQ(h.BucketCount(99), 0u);  // out of range reads as zero

  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.OverflowCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.bounds().size(), 3u);  // bounds survive a reset
}

// --- Concurrent updates (raced under TSan via the parallel label) -----------

TEST(MetricsConcurrency, WorkerPoolHammerKeepsExactCounts) {
  obs::SetMetricsEnabled(true);
  obs::GlobalRegistry().Reset();
  constexpr int kTasks = 2000;
  WorkerPool pool(4);
  pool.Run(kTasks, [&](size_t i) {
    obs::Count("obs_test.hammer");
    obs::Count("obs_test.weighted", 3);
    obs::ObserveLatencyMs("obs_test.lat_ms", static_cast<double>(i % 7));
    obs::SetGauge("obs_test.gauge", static_cast<double>(i));
  });
  obs::SetMetricsEnabled(false);

  const obs::Counter* hammer =
      obs::GlobalRegistry().FindCounter("obs_test.hammer");
  ASSERT_NE(hammer, nullptr);
  EXPECT_EQ(hammer->Value(), static_cast<uint64_t>(kTasks));
  const obs::Counter* weighted =
      obs::GlobalRegistry().FindCounter("obs_test.weighted");
  ASSERT_NE(weighted, nullptr);
  EXPECT_EQ(weighted->Value(), static_cast<uint64_t>(kTasks) * 3);
  const obs::Histogram* lat =
      obs::GlobalRegistry().FindHistogram("obs_test.lat_ms");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Count(), static_cast<uint64_t>(kTasks));
  uint64_t bucketed = lat->OverflowCount();
  for (size_t b = 0; b < lat->bounds().size(); ++b) {
    bucketed += lat->BucketCount(b);
  }
  EXPECT_EQ(bucketed, static_cast<uint64_t>(kTasks));
  obs::GlobalRegistry().Reset();
}

TEST(MetricsConcurrency, DisabledHelpersTouchNothing) {
  ASSERT_FALSE(obs::MetricsEnabled());
  obs::Count("obs_test.never");
  obs::SetGauge("obs_test.never_gauge", 1.0);
  obs::ObserveLatencyMs("obs_test.never_ms", 1.0);
  EXPECT_EQ(obs::GlobalRegistry().FindCounter("obs_test.never"), nullptr);
  EXPECT_EQ(obs::GlobalRegistry().FindGauge("obs_test.never_gauge"), nullptr);
  EXPECT_EQ(obs::GlobalRegistry().FindHistogram("obs_test.never_ms"), nullptr);
}

// --- Trace ------------------------------------------------------------------

// Crude but dependency-free well-formedness probe: balanced braces /
// brackets outside of (escaped) strings.
void ExpectBalancedJson(const std::string& json) {
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(Trace, SpansFromWorkersProduceWellFormedChromeJson) {
  obs::StartTrace();
  {
    obs::Span outer("outer", "test");
    WorkerPool pool(4);
    pool.Run(16, [&](size_t) { obs::Span inner("inner", "test"); });
  }
  obs::StopTrace();
  EXPECT_EQ(obs::TraceEventCount(), 17u);  // 16 inner + 1 outer

  std::string json = obs::TraceJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // StartTrace clears the previous run's buffer.
  obs::StartTrace();
  obs::StopTrace();
  EXPECT_EQ(obs::TraceEventCount(), 0u);
  ExpectBalancedJson(obs::TraceJson());
}

TEST(Trace, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::TraceEnabled());
  size_t before = obs::TraceEventCount();
  { obs::Span span("ghost", "test"); }
  EXPECT_EQ(obs::TraceEventCount(), before);
}

// --- Memstats ---------------------------------------------------------------

TEST(MemStats, ContainerGeometryHelpers) {
  std::vector<int> v;
  v.reserve(10);
  EXPECT_EQ(obs::VectorBytes(v), 10u * sizeof(int));
  std::vector<std::vector<int>> nested(2);
  nested[0].reserve(4);
  EXPECT_GE(obs::NestedVectorBytes(nested), 4u * sizeof(int));

  obs::MemBreakdown mem;
  EXPECT_DOUBLE_EQ(mem.BytesPerTuple(), 0.0);    // no division by zero
  EXPECT_DOUBLE_EQ(mem.BytesPerWitness(), 0.0);
  mem.index_bytes = 600;
  mem.family_bytes = 300;
  mem.component_bytes = 100;
  mem.tuples = 10;
  mem.witness_sets = 4;
  EXPECT_EQ(mem.TotalBytes(), 1000u);
  EXPECT_DOUBLE_EQ(mem.BytesPerTuple(), 100.0);
  EXPECT_DOUBLE_EQ(mem.BytesPerWitness(), 250.0);
}

TEST(MemStats, SessionFootprintGrowsMonotonicallyUnderInserts) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database base;
  base.AddTuple("R", {base.Intern("a0"), base.Intern("a1")});

  IncrementalSession session(q, std::move(base), EngineOptions{});
  obs::MemBreakdown prev = session.ApproxMemory();
  EXPECT_GT(prev.TotalBytes(), 0u);
  EXPECT_EQ(prev.tuples, 1u);

  // Insert-only epochs growing a chain: capacities and hash tables only
  // grow, so every breakdown dominates the previous one in total bytes
  // and covered tuples, and witnesses eventually appear.
  for (int i = 1; i <= 12; ++i) {
    Epoch e;
    Update u;
    u.kind = UpdateKind::kInsert;
    u.relation = "R";
    u.constants = {"a" + std::to_string(i), "a" + std::to_string(i + 1)};
    e.updates.push_back(u);
    session.Apply(e);

    obs::MemBreakdown mem = session.ApproxMemory();
    EXPECT_GE(mem.TotalBytes(), prev.TotalBytes()) << "epoch " << i;
    EXPECT_EQ(mem.tuples, static_cast<uint64_t>(i + 1)) << "epoch " << i;
    EXPECT_GE(mem.witness_sets, prev.witness_sets) << "epoch " << i;
    prev = mem;
  }
  EXPECT_GT(prev.witness_sets, 0u);
  EXPECT_GT(prev.BytesPerTuple(), 0.0);
  EXPECT_GT(prev.BytesPerWitness(), 0.0);
}

TEST(MemStats, PublishMemBreakdownSetsGauges) {
  obs::SetMetricsEnabled(true);
  obs::GlobalRegistry().Reset();
  obs::MemBreakdown mem;
  mem.index_bytes = 600;
  mem.family_bytes = 300;
  mem.component_bytes = 100;
  mem.tuples = 10;
  mem.witness_sets = 4;
  obs::PublishMemBreakdown(mem);
  obs::SetMetricsEnabled(false);

  const obs::Gauge* total = obs::GlobalRegistry().FindGauge("mem.total_bytes");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->Value(), 1000.0);
  const obs::Gauge* per_tuple =
      obs::GlobalRegistry().FindGauge("mem.bytes_per_tuple");
  ASSERT_NE(per_tuple, nullptr);
  EXPECT_DOUBLE_EQ(per_tuple->Value(), 100.0);
  const obs::Gauge* per_witness =
      obs::GlobalRegistry().FindGauge("mem.bytes_per_witness");
  ASSERT_NE(per_witness, nullptr);
  EXPECT_DOUBLE_EQ(per_witness->Value(), 250.0);
  obs::GlobalRegistry().Reset();
}

}  // namespace
}  // namespace rescq
