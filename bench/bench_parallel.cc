// E-parallel: the component-parallel exact path. The artifact tables
// report (a) multi-component minimum-hitting-set solves at 1/2/4
// workers — wall time, speedup, and agreement with the serial solver,
// which the fuzz suite pins to the brute-force oracle — and (b)
// hub-churn incremental epoch latency versus worker count, where every
// epoch outcome must be byte-identical across thread counts. Set
// RESCQ_BENCH_SNAPSHOT=<path> to also write the machine-readable JSON
// snapshot (BENCH_parallel.json in the repo root is a checked-in run;
// its host.cores field says how many cores the numbers were taken on —
// speedups are only meaningful when cores >= workers).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cq/parser.h"
#include "db/witness.h"
#include "obs/metrics.h"
#include "resilience/exact_solver.h"
#include "resilience/incremental.h"
#include "util/parallel.h"
#include "workload/churn.h"
#include "workload/generators.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

const int kThreadCounts[] = {1, 2, 4};

// The hitting-set family of one scenario instance, as dense element ids
// shifted by `offset` so copies stay element-disjoint (= independent
// components for the solver). Returns the number of ids used — offsets
// stay compact, because the solver's scratch arrays scale with the
// maximum element id.
int AppendScenarioFamily(const char* scenario_name, int size, uint64_t seed,
                         int offset, std::vector<std::vector<int>>* sets) {
  const Scenario* scenario = FindScenario(scenario_name);
  if (scenario == nullptr) return 0;
  ScenarioParams params;
  params.size = size;
  params.seed = seed;
  Database db = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  std::map<TupleId, int> ids;
  for (const std::vector<TupleId>& w : WitnessTupleSets(q, db)) {
    if (w.empty()) continue;
    std::vector<int> s;
    for (TupleId t : w) {
      auto [it, inserted] = ids.emplace(t, static_cast<int>(ids.size()));
      s.push_back(offset + it->second);
    }
    sets->push_back(std::move(s));
  }
  return static_cast<int>(ids.size());
}

// `copies` element-disjoint instances of one scenario — the
// multi-component workload the parallel dispatch is built for.
std::vector<std::vector<int>> MultiComponentFamily(const char* scenario_name,
                                                   int size, int copies) {
  std::vector<std::vector<int>> sets;
  int offset = 0;
  for (int c = 0; c < copies; ++c) {
    offset += AppendScenarioFamily(scenario_name, size,
                                   /*seed=*/static_cast<uint64_t>(c) + 1,
                                   offset, &sets);
  }
  return sets;
}

// Best-of-N wall time; a single run when slow so the CI smoke stays
// bounded (the solvers are deterministic, so min is the statistic).
double BestMs(const std::function<void()>& fn) {
  auto once = [&] {
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  double best = once();
  if (best < 200.0) {
    for (int r = 0; r < 4; ++r) best = std::min(best, once());
  }
  return best;
}

// --- Snapshot rows ----------------------------------------------------------

struct SolveRow {
  std::string family;
  int copies = 0;
  int size = 0;
  size_t sets = 0;
  int rho = 0;
  int components = 0;
  double ms[3] = {0, 0, 0};  // indexed like kThreadCounts
  bool agree = true;
};

struct ChurnRow {
  std::string scenario;
  std::string kind;
  int epochs = 0;
  double mean_epoch_ms[3] = {0, 0, 0};
  bool agree = true;
};

std::vector<SolveRow> g_solve_rows;
std::vector<ChurnRow> g_churn_rows;

// --- Table (a): multi-component exact solve scaling -------------------------

void PrintSolveScaling() {
  bench::PrintHeader(
      "E-parallel: component-parallel exact solve, 1/2/4 workers",
      "Minimum hitting set over element-disjoint copies of scenario "
      "witness families (each copy is one independent component). The "
      "1-worker column is the serial solver — the oracle the fuzz suite "
      "pins to brute force; every parallel row must agree with it. "
      "Speedup is serial/parallel wall time and is bounded by the host "
      "core count printed below.");
  std::printf("host cores: %d\n\n", HardwareThreads());
  struct Case {
    const char* scenario;
    int size;
    int copies;
  };
  const Case cases[] = {
      {"vc_er", 20, 8},  {"vc_er", 24, 8},   {"perm", 14, 8},
      {"perm", 18, 8},   {"vc_grid", 49, 8}, {"triad", 7, 6},
  };
  std::printf("%-9s %5s %6s %6s %5s %5s | %10s %10s %10s | %7s %7s\n",
              "family", "size", "copies", "sets", "rho", "comp", "t1_ms",
              "t2_ms", "t4_ms", "x2", "x4");
  for (const Case& c : cases) {
    std::vector<std::vector<int>> sets =
        MultiComponentFamily(c.scenario, c.size, c.copies);
    SolveRow row;
    row.family = c.scenario;
    row.copies = c.copies;
    row.size = c.size;
    row.sets = sets.size();
    int serial_size = 0;
    for (size_t t = 0; t < 3; ++t) {
      ExactOptions options;
      options.solver_threads = kThreadCounts[t];
      ExactStats stats;
      HittingSetResult result;
      row.ms[t] = BestMs([&] {
        stats = ExactStats{};
        result = SolveMinHittingSet(sets, options, &stats);
      });
      if (t == 0) {
        serial_size = result.size;
        row.rho = result.size;
        row.components = stats.components;
      } else {
        row.agree = row.agree && result.size == serial_size &&
                    result.proven_optimal;
      }
    }
    g_solve_rows.push_back(row);
    std::printf(
        "%-9s %5d %6d %6zu %5d %5d | %10.3f %10.3f %10.3f | %6.2fx %6.2fx%s\n",
        row.family.c_str(), row.size, row.copies, row.sets, row.rho,
        row.components, row.ms[0], row.ms[1], row.ms[2],
        row.ms[1] > 0 ? row.ms[0] / row.ms[1] : 0.0,
        row.ms[2] > 0 ? row.ms[0] / row.ms[2] : 0.0,
        row.agree ? "" : "  DISAGREE");
  }
}

// --- Table (b): hub-churn incremental epoch latency -------------------------

void PrintChurnScaling() {
  bench::PrintHeader(
      "E-parallel: incremental epoch latency vs solver workers, hub churn",
      "IncrementalSession over scenario instances under hub-skewed "
      "update streams: one constant's posting list keeps dissolving "
      "several components per epoch, so the epoch re-answers fan out to "
      "the worker pool. The incremental contract is full determinism — "
      "every epoch outcome (contingency included) must be byte-identical "
      "at any worker count; any drift is flagged on the row.");
  struct Case {
    const char* scenario;
    int size;
    int epochs;
  };
  const Case cases[] = {{"triad", 8, 6}, {"vc_er", 22, 6}, {"perm", 16, 6}};
  std::printf("%-9s %5s %7s | %12s %12s %12s | %7s %7s\n", "scenario", "size",
              "epochs", "t1_ep_ms", "t2_ep_ms", "t4_ep_ms", "x2", "x4");
  for (const Case& c : cases) {
    const Scenario* scenario = FindScenario(c.scenario);
    ScenarioParams params;
    params.size = c.size;
    params.seed = 3;
    Database base = scenario->generate(params);
    Query q = MustParseQuery(scenario->query);
    ChurnParams churn;
    churn.epochs = c.epochs;
    churn.rate = 0.25;
    churn.seed = 5;
    UpdateLog log = GenerateChurn(base, "hub", churn);

    ChurnRow row;
    row.scenario = c.scenario;
    row.kind = "hub";
    row.epochs = c.epochs;
    std::vector<int> serial_res;
    for (size_t t = 0; t < 3; ++t) {
      EngineOptions options;
      options.solver_threads = kThreadCounts[t];
      std::vector<int> res;
      row.mean_epoch_ms[t] = BestMs([&] {
        res.clear();
        IncrementalSession session(q, base, options);
        for (const Epoch& e : log.epochs) {
          res.push_back(session.Apply(e).resilience);
        }
      }) / c.epochs;
      if (t == 0) {
        serial_res = res;
      } else {
        row.agree = row.agree && res == serial_res;
      }
    }
    g_churn_rows.push_back(row);
    std::printf("%-9s %5d %7d | %12.3f %12.3f %12.3f | %6.2fx %6.2fx%s\n",
                row.scenario.c_str(), c.size, c.epochs, row.mean_epoch_ms[0],
                row.mean_epoch_ms[1], row.mean_epoch_ms[2],
                row.mean_epoch_ms[1] > 0
                    ? row.mean_epoch_ms[0] / row.mean_epoch_ms[1]
                    : 0.0,
                row.mean_epoch_ms[2] > 0
                    ? row.mean_epoch_ms[0] / row.mean_epoch_ms[2]
                    : 0.0,
                row.agree ? "" : "  DISAGREE");
  }
}

// --- Table (c): worker-pool utilization -------------------------------------

// Re-runs the largest solve case per thread count with the metrics
// registry armed: every WorkerPool publishes pool.* counters on
// destruction, so the registry delta around one solve shows how many
// tasks the pool drained and how much wall time its workers spent
// parked on the condition variables. Table-only — the snapshot schema
// (rescq-bench-parallel/v1) is unchanged.
void PrintPoolUtilization() {
  bench::PrintHeader(
      "E-parallel: worker-pool utilization (pool.* metrics registry "
      "counters)",
      "tasks = component solves drained across the pool's lifetime, "
      "idle_ms = summed worker wait on the task / done condition "
      "variables (slot 0 is the Run caller). High idle at 4 workers on "
      "few components is expected: the pool parks whoever runs out of "
      "components.");
  std::vector<std::vector<int>> sets = MultiComponentFamily("vc_er", 24, 8);
  std::printf("%-9s %7s | %8s %8s %10s\n", "workers", "runs", "tasks",
              "workers", "idle_ms");
  obs::SetMetricsEnabled(true);
  for (int threads : kThreadCounts) {
    obs::GlobalRegistry().Reset();
    ExactOptions options;
    options.solver_threads = threads;
    ExactStats stats;
    HittingSetResult result = SolveMinHittingSet(sets, options, &stats);
    benchmark::DoNotOptimize(result);
    auto counter = [](const char* name) -> uint64_t {
      const obs::Counter* c = obs::GlobalRegistry().FindCounter(name);
      return c == nullptr ? 0 : c->Value();
    };
    std::printf("%-9d %7llu | %8llu %8llu %10.3f\n", threads,
                static_cast<unsigned long long>(counter("pool.runs")),
                static_cast<unsigned long long>(counter("pool.tasks_run")),
                static_cast<unsigned long long>(counter("pool.workers")),
                static_cast<double>(counter("pool.idle_ns")) / 1e6);
  }
  obs::SetMetricsEnabled(false);
  obs::GlobalRegistry().Reset();
}

// --- Machine-readable snapshot ----------------------------------------------

void WriteSnapshot(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write snapshot %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"rescq-bench-parallel/v1\",\n");
  std::fprintf(f, "  \"host\": { \"cores\": %d },\n", HardwareThreads());
  std::fprintf(f, "  \"thread_counts\": [1, 2, 4],\n");
  std::fprintf(f, "  \"solve\": [\n");
  for (size_t i = 0; i < g_solve_rows.size(); ++i) {
    const SolveRow& r = g_solve_rows[i];
    std::fprintf(f,
                 "    { \"family\": \"%s\", \"size\": %d, \"copies\": %d, "
                 "\"sets\": %zu, \"rho\": %d, \"components\": %d, "
                 "\"ms\": [%.3f, %.3f, %.3f], \"agree\": %s }%s\n",
                 r.family.c_str(), r.size, r.copies, r.sets, r.rho,
                 r.components, r.ms[0], r.ms[1], r.ms[2],
                 r.agree ? "true" : "false",
                 i + 1 < g_solve_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"churn\": [\n");
  for (size_t i = 0; i < g_churn_rows.size(); ++i) {
    const ChurnRow& r = g_churn_rows[i];
    std::fprintf(f,
                 "    { \"scenario\": \"%s\", \"kind\": \"%s\", "
                 "\"epochs\": %d, \"mean_epoch_ms\": [%.3f, %.3f, %.3f], "
                 "\"agree\": %s }%s\n",
                 r.scenario.c_str(), r.kind.c_str(), r.epochs,
                 r.mean_epoch_ms[0], r.mean_epoch_ms[1], r.mean_epoch_ms[2],
                 r.agree ? "true" : "false",
                 i + 1 < g_churn_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nsnapshot written: %s\n", path);
}

// --- Timing series ----------------------------------------------------------

void BM_ParallelHittingSet(benchmark::State& state, const char* scenario) {
  std::vector<std::vector<int>> sets =
      MultiComponentFamily(scenario, scenario == std::string("perm") ? 14 : 20,
                           /*copies=*/8);
  ExactOptions options;
  options.solver_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExactStats stats;
    benchmark::DoNotOptimize(SolveMinHittingSet(sets, options, &stats));
  }
}

BENCHMARK_CAPTURE(BM_ParallelHittingSet, vc_er, "vc_er")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_ParallelHittingSet, perm, "perm")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

void BM_HubChurnEpochs(benchmark::State& state) {
  const Scenario* scenario = FindScenario("triad");
  ScenarioParams params;
  params.size = 8;
  params.seed = 3;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  ChurnParams churn;
  churn.epochs = 6;
  churn.rate = 0.25;
  churn.seed = 5;
  UpdateLog log = GenerateChurn(base, "hub", churn);
  EngineOptions options;
  options.solver_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    IncrementalSession session(q, base, options);
    for (const Epoch& e : log.epochs) {
      benchmark::DoNotOptimize(session.Apply(e));
    }
  }
}

BENCHMARK(BM_HubChurnEpochs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintSolveScaling();
  rescq::PrintChurnScaling();
  rescq::PrintPoolUtilization();
  if (const char* path = std::getenv("RESCQ_BENCH_SNAPSHOT")) {
    rescq::WriteSnapshot(path);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
