// E-memory: the arena-backed witness storage against the pre-refactor
// vector-of-vectors representation, and the eviction/rebuild cycle that
// keeps a serving session memory-bounded. Two artifact tables:
//
//  (a) representation — for the vc_er and perm workloads, the bytes the
//      legacy representation held (per-set vectors plus the
//      content-hash dedup index that owned a second copy of every set,
//      rebuilt honestly here and measured with the same memstats
//      geometry helpers) against WitnessFamily::ApproxBytes() of the
//      span arena. The acceptance bar is a >= 2x bytes/witness
//      reduction on both workloads; a row under the bar prints REGRESS
//      and fails the CI bench job.
//
//  (b) eviction — an IncrementalSession under churn with
//      EvictColdState() forced every few epochs, against a never-
//      evicted twin: every epoch's answer must agree with the twin and
//      with a from-scratch exact recompute (a DISAGREE row fails CI),
//      and the table reports the rebuild overhead and the bytes each
//      eviction returns.
//
// Set RESCQ_BENCH_SNAPSHOT=<path> to also write the machine-readable
// JSON (schema rescq-bench-memory/v1); BENCH_memory.json in the repo
// root is a checked-in run. The timing series then measures one epoch
// with and without a preceding eviction (the lazy-rebuild toll).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "cq/parser.h"
#include "db/delta.h"
#include "db/witness.h"
#include "obs/memstats.h"
#include "resilience/exact_solver.h"
#include "resilience/incremental.h"
#include "workload/churn.h"
#include "workload/generators.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct WorkloadConfig {
  const char* name;
  const char* scenario;
  int size;
  double density;
};

// The serving-shaped workloads: sparse ER vertex cover (many small
// components, the bench_incremental config) and a *dense* permutation
// instance — density 8 puts ~8 noise edges per node on top of the
// permutation, so q_perm's mutual-pair witnesses number in the dozens
// instead of the near-zero a sparse instance produces.
const WorkloadConfig kWorkloads[] = {
    {"vc_er", "vc_er", 1200, 0.00075},
    {"perm", "perm", 64, 8.0},
};

constexpr double kMinReduction = 2.0;  // acceptance: >= 2x bytes/witness

struct TupleVecHash {
  size_t operator()(const std::vector<TupleId>& v) const {
    size_t h = 1469598103934665603ull;
    for (const TupleId& t : v) {
      h ^= TupleIdHash()(t);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// What the pre-arena representation held for one collected family: the
/// materialized per-set vectors plus the content-hash dedup index that
/// owned its own copy of every set, measured with the same geometry
/// helpers ApproxBytes uses (obs/memstats.h).
uint64_t LegacyFamilyBytes(const std::vector<std::vector<TupleId>>& sets) {
  std::unordered_set<std::vector<TupleId>, TupleVecHash> dedup(sets.begin(),
                                                               sets.end());
  uint64_t bytes = obs::NestedVectorBytes(sets);
  bytes += obs::HashContainerBytes(dedup);
  for (const std::vector<TupleId>& s : dedup) bytes += obs::VectorBytes(s);
  return bytes;
}

// --- Table (a): representation ----------------------------------------------

struct ReprRow {
  std::string workload;
  size_t sets = 0;
  uint64_t legacy_bytes = 0;
  uint64_t arena_bytes = 0;
  double Ratio() const {
    return arena_bytes == 0 ? 0.0
                            : static_cast<double>(legacy_bytes) /
                                  static_cast<double>(arena_bytes);
  }
  bool Ok() const { return Ratio() >= kMinReduction; }
};

// --- Table (b): eviction ----------------------------------------------------

struct EvictRow {
  std::string workload;
  int epochs = 0;
  uint64_t evictions = 0;
  uint64_t rebuilds = 0;
  double evict_ms = 0;     // avg epoch, eviction forced before apply
  double resident_ms = 0;  // avg epoch, never-evicted twin
  uint64_t peak_bytes = 0;          // evicting session, after-epoch peak
  uint64_t peak_resident_bytes = 0;  // twin, after-epoch peak
  uint64_t freed_avg = 0;  // avg bytes one eviction returned
  bool agree = true;
  double RebuildToll() const {
    return resident_ms > 0 ? evict_ms / resident_ms : 0.0;
  }
};

std::vector<ReprRow> g_repr;
std::vector<EvictRow> g_evict;

ReprRow RunRepresentation(const WorkloadConfig& w) {
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = 1;
  Database db = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);

  WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
  ReprRow row;
  row.workload = w.name;
  row.sets = family.size();
  row.arena_bytes = family.ApproxBytes();
  row.legacy_bytes = LegacyFamilyBytes(family.Materialize());
  return row;
}

EvictRow RunEviction(const WorkloadConfig& w) {
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = 1;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);

  ChurnParams churn;
  churn.epochs = 12;
  churn.rate = 0.05;
  churn.seed = 18;
  UpdateLog log = GenerateChurn(base, "mixed", churn);

  EvictRow row;
  row.workload = w.name;
  IncrementalSession evicting(q, base, EngineOptions{});
  IncrementalSession twin(q, base, EngineOptions{});
  Database mirror = base;
  uint64_t freed_total = 0;
  int epoch_index = 0;
  for (const Epoch& epoch : log.epochs) {
    if (epoch_index % 3 == 0) {
      freed_total += evicting.EvictColdState();
    }
    Clock::time_point t0 = Clock::now();
    EpochOutcome a = evicting.Apply(epoch);
    row.evict_ms += MsSince(t0);

    Clock::time_point t1 = Clock::now();
    EpochOutcome b = twin.Apply(epoch);
    row.resident_ms += MsSince(t1);

    ApplyEpoch(epoch, &mirror);
    ResilienceResult scratch = ComputeResilienceExact(q, mirror);
    if (a.resilience != b.resilience || a.unbreakable != b.unbreakable ||
        a.unbreakable != scratch.unbreakable ||
        (!a.unbreakable && a.resilience != scratch.resilience)) {
      row.agree = false;
    }
    uint64_t bytes = evicting.ApproxMemory().TotalBytes();
    if (bytes > row.peak_bytes) row.peak_bytes = bytes;
    uint64_t resident = twin.ApproxMemory().TotalBytes();
    if (resident > row.peak_resident_bytes) row.peak_resident_bytes = resident;
    ++epoch_index;
  }
  row.epochs = epoch_index;
  row.evictions = evicting.evictions();
  row.rebuilds = evicting.rebuilds();
  row.evict_ms /= row.epochs;
  row.resident_ms /= row.epochs;
  row.freed_avg = row.evictions > 0 ? freed_total / row.evictions : 0;
  return row;
}

void WriteSnapshot(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_memory: cannot write snapshot %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"rescq-bench-memory/v1\",\n");
  std::fprintf(f, "  \"min_reduction\": %.1f,\n", kMinReduction);
  std::fprintf(f, "  \"representation\": [\n");
  for (size_t i = 0; i < g_repr.size(); ++i) {
    const ReprRow& r = g_repr[i];
    std::fprintf(f,
                 "    { \"workload\": \"%s\", \"sets\": %zu, "
                 "\"legacy_bytes\": %llu, \"arena_bytes\": %llu, "
                 "\"ratio\": %.2f, \"ok\": %s }%s\n",
                 r.workload.c_str(), r.sets,
                 static_cast<unsigned long long>(r.legacy_bytes),
                 static_cast<unsigned long long>(r.arena_bytes), r.Ratio(),
                 r.Ok() ? "true" : "false",
                 i + 1 < g_repr.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"eviction\": [\n");
  for (size_t i = 0; i < g_evict.size(); ++i) {
    const EvictRow& r = g_evict[i];
    std::fprintf(
        f,
        "    { \"workload\": \"%s\", \"epochs\": %d, \"evictions\": %llu, "
        "\"rebuilds\": %llu, \"evict_ms\": %.3f, \"resident_ms\": %.3f, "
        "\"rebuild_toll\": %.2f, \"peak_bytes\": %llu, "
        "\"peak_resident_bytes\": %llu, \"freed_avg\": %llu, "
        "\"agree\": %s }%s\n",
        r.workload.c_str(), r.epochs,
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.rebuilds), r.evict_ms, r.resident_ms,
        r.RebuildToll(), static_cast<unsigned long long>(r.peak_bytes),
        static_cast<unsigned long long>(r.peak_resident_bytes),
        static_cast<unsigned long long>(r.freed_avg),
        r.agree ? "true" : "false", i + 1 < g_evict.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nsnapshot written: %s\n", path);
}

int CheckAcceptance() {
  int violations = 0;
  for (const ReprRow& r : g_repr) {
    if (!r.Ok()) {
      std::fprintf(stderr,
                   "bench_memory: %s arena reduction %.2fx is under the "
                   "%.1fx bar — REGRESS\n",
                   r.workload.c_str(), r.Ratio(), kMinReduction);
      ++violations;
    }
  }
  for (const EvictRow& r : g_evict) {
    if (!r.agree) {
      std::fprintf(stderr,
                   "bench_memory: %s eviction stream DISAGREE with the "
                   "oracle\n",
                   r.workload.c_str());
      ++violations;
    }
  }
  return violations;
}

// --- Timing series ----------------------------------------------------------

// One epoch with an eviction forced first: the apply pays the lazy
// index rebuild on top of the normal delta work.
void BM_EvictRebuildEpoch(benchmark::State& state) {
  const WorkloadConfig& w = kWorkloads[static_cast<size_t>(state.range(0))];
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = 1;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  ChurnParams churn;
  churn.epochs = 256;
  churn.rate = 0.05;
  churn.seed = 18;
  UpdateLog log = GenerateChurn(base, "mixed", churn);

  IncrementalSession session(q, base, EngineOptions{});
  size_t next = 0;
  for (auto _ : state) {
    session.EvictColdState();
    benchmark::DoNotOptimize(session.Apply(log.epochs[next]).resilience);
    next = (next + 1) % log.epochs.size();
  }
}
BENCHMARK(BM_EvictRebuildEpoch)
    ->ArgsProduct({{0, 1}})
    ->Unit(benchmark::kMicrosecond);

// The resident baseline: same stream, index never dropped.
void BM_ResidentEpoch(benchmark::State& state) {
  const WorkloadConfig& w = kWorkloads[static_cast<size_t>(state.range(0))];
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = 1;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  ChurnParams churn;
  churn.epochs = 256;
  churn.rate = 0.05;
  churn.seed = 18;
  UpdateLog log = GenerateChurn(base, "mixed", churn);

  IncrementalSession session(q, base, EngineOptions{});
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Apply(log.epochs[next]).resilience);
    next = (next + 1) % log.epochs.size();
  }
}
BENCHMARK(BM_ResidentEpoch)
    ->ArgsProduct({{0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

void PrintArtifactTables() {
  bench::PrintHeader(
      "E-memory (a): arena vs legacy witness-family representation",
      "Bytes held by the pre-refactor representation (per-set vectors +\n"
      "the dedup index owning a second copy of every set, rebuilt here\n"
      "and measured with the same geometry helpers) against the span\n"
      "arena's ApproxBytes. A ratio under the printed bar is REGRESS and\n"
      "fails the CI bench job.");
  std::printf("acceptance bar: >= %.1fx\n\n", kMinReduction);
  std::printf("%-8s %8s %14s %13s %8s %9s\n", "workload", "sets",
              "legacy_bytes", "arena_bytes", "ratio", "verdict");
  for (const WorkloadConfig& w : kWorkloads) {
    ReprRow r = RunRepresentation(w);
    std::printf("%-8s %8zu %14llu %13llu %7.2fx %9s\n", r.workload.c_str(),
                r.sets, static_cast<unsigned long long>(r.legacy_bytes),
                static_cast<unsigned long long>(r.arena_bytes), r.Ratio(),
                r.Ok() ? "ok" : "REGRESS");
    g_repr.push_back(std::move(r));
  }

  bench::PrintHeader(
      "E-memory (b): eviction / lazy-rebuild epochs",
      "IncrementalSession under mixed churn with EvictColdState() forced\n"
      "every 3rd epoch, against a never-evicted twin and a from-scratch\n"
      "exact recompute of every answer. agree=DISAGREE fails CI; the\n"
      "toll column is evicting/resident per-epoch time (the price of\n"
      "serving memory-bounded).");
  std::printf("%-8s %7s %6s %8s %11s %12s %6s %11s %11s %9s\n", "workload",
              "epochs", "evict", "rebuild", "evict ms", "resident ms", "toll",
              "peak_evict", "peak_resid", "agree");
  for (const WorkloadConfig& w : kWorkloads) {
    EvictRow r = RunEviction(w);
    std::printf("%-8s %7d %6llu %8llu %11.3f %12.3f %5.1fx %11llu %11llu %9s\n",
                r.workload.c_str(), r.epochs,
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.rebuilds), r.evict_ms,
                r.resident_ms, r.RebuildToll(),
                static_cast<unsigned long long>(r.peak_bytes),
                static_cast<unsigned long long>(r.peak_resident_bytes),
                r.agree ? "yes" : "DISAGREE");
    g_evict.push_back(std::move(r));
  }
  std::printf("\n");
}

}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintArtifactTables();
  if (const char* path = std::getenv("RESCQ_BENCH_SNAPSHOT")) {
    rescq::WriteSnapshot(path);
  }
  int violations = rescq::CheckAcceptance();
  if (violations > 0) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
