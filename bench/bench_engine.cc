// E9: plan-once / solve-many engine. First a table comparing, for a few
// representative queries, one planned engine solving a repeated-query
// workload against the legacy per-call path (plan cache disabled, so
// every call re-runs minimize / normalize / classify / probe) — then
// google-benchmark series for the same pair plus the bare planning cost.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "complexity/catalog.h"
#include "resilience/engine.h"
#include "workload/generators.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

struct Workload {
  const char* label;
  const char* query;       // catalog name
  const char* scenario;    // generator keyed to the query family
  int size;
};

constexpr Workload kWorkloads[] = {
    {"q_ACconf / domination", "q_ACconf", "domination", 10},
    {"q_Aperm / perm_bipartite", "q_Aperm", "perm_bipartite", 16},
    {"q_perm / perm", "q_perm", "perm", 16},
};

Database MakeInstance(const Workload& w, uint64_t seed) {
  const Scenario* scenario = FindScenario(w.scenario);
  if (scenario == nullptr) std::abort();
  return scenario->generate({w.size, 0.5, seed});
}

EngineOptions Unplanned() {
  EngineOptions options;
  options.plan_cache_capacity = 0;  // legacy: re-analyze on every call
  options.collect_stats = false;
  return options;
}

EngineOptions Planned() {
  EngineOptions options;
  options.collect_stats = false;
  return options;
}

void PrintRepeatedSolveTable() {
  bench::PrintHeader(
      "E9: planned vs unplanned repeated solves",
      "1000 Solve calls on one query over a fresh small instance each "
      "call; `planned` reuses the cached ResiliencePlan, `unplanned` "
      "re-runs the query analysis per call (the pre-engine behavior).");
  std::printf("%-26s %14s %14s %9s\n", "workload", "planned_ms",
              "unplanned_ms", "speedup");
  constexpr int kCalls = 1000;
  for (const Workload& w : kWorkloads) {
    Query q = CatalogQuery(w.query);
    double ms[2] = {0, 0};
    for (int planned = 0; planned < 2; ++planned) {
      ResilienceEngine engine(planned ? Planned() : Unplanned());
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kCalls; ++i) {
        Database db = MakeInstance(w, 1 + static_cast<uint64_t>(i % 8));
        benchmark::DoNotOptimize(engine.Solve(q, db).result.resilience);
      }
      ms[planned] = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    }
    std::printf("%-26s %14.1f %14.1f %8.1fx\n", w.label, ms[1], ms[0],
                ms[0] / ms[1]);
  }
}

void BM_SolvePlanned(benchmark::State& state, const Workload& w) {
  Query q = CatalogQuery(w.query);
  ResilienceEngine engine(Planned());
  Database db = MakeInstance(w, 1);
  engine.Solve(q, db);  // warm the plan cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Solve(q, db).result.resilience);
  }
}

void BM_SolveUnplanned(benchmark::State& state, const Workload& w) {
  Query q = CatalogQuery(w.query);
  ResilienceEngine engine(Unplanned());
  Database db = MakeInstance(w, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Solve(q, db).result.resilience);
  }
}

void BM_PlanOnly(benchmark::State& state, const Workload& w) {
  Query q = CatalogQuery(w.query);
  ResilienceEngine engine(Unplanned());  // no cache: measure BuildPlan
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Plan(q)->components.size());
  }
}

BENCHMARK_CAPTURE(BM_SolvePlanned, q_ACconf, kWorkloads[0]);
BENCHMARK_CAPTURE(BM_SolveUnplanned, q_ACconf, kWorkloads[0]);
BENCHMARK_CAPTURE(BM_PlanOnly, q_ACconf, kWorkloads[0]);
BENCHMARK_CAPTURE(BM_SolvePlanned, q_Aperm, kWorkloads[1]);
BENCHMARK_CAPTURE(BM_SolveUnplanned, q_Aperm, kWorkloads[1]);
BENCHMARK_CAPTURE(BM_PlanOnly, q_Aperm, kWorkloads[1]);
BENCHMARK_CAPTURE(BM_SolvePlanned, q_perm, kWorkloads[2]);
BENCHMARK_CAPTURE(BM_SolveUnplanned, q_perm, kWorkloads[2]);
BENCHMARK_CAPTURE(BM_PlanOnly, q_perm, kWorkloads[2]);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintRepeatedSolveTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
