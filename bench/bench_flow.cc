// E12: the network-flow substrate that every PTIME construction rests on.
// Dinic max-flow on layered graphs and König bipartite vertex cover.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "flow/bipartite.h"
#include "flow/max_flow.h"
#include "util/rng.h"

namespace rescq {
namespace {

// Layered graph: `layers` layers of `width` nodes, complete unit-capacity
// edges between consecutive layers.
int64_t LayeredFlow(int layers, int width) {
  MaxFlow f(2 + layers * width);
  int s = 0, t = 1;
  auto node = [&](int layer, int i) { return 2 + layer * width + i; };
  for (int i = 0; i < width; ++i) f.AddEdge(s, node(0, i), 1);
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < width; ++i) {
      for (int j = 0; j < width; ++j) f.AddEdge(node(l, i), node(l + 1, j), 1);
    }
  }
  for (int i = 0; i < width; ++i) f.AddEdge(node(layers - 1, i), t, 1);
  return f.Compute(s, t);
}

void PrintFlowTable() {
  bench::PrintHeader("E12: flow substrate sanity",
                     "Layered unit-capacity graphs: max flow equals the "
                     "layer width; König cover equals max matching.");
  std::printf("%-20s %10s %10s\n", "instance", "expected", "got");
  for (int width : {4, 8, 16}) {
    int64_t flow = LayeredFlow(6, width);
    std::printf("layered(6,%-2d)        %10d %10lld\n", width, width,
                static_cast<long long>(flow));
  }
  Rng rng(9);
  for (int n : {16, 64}) {
    BipartiteCover cover(n, n);
    for (int l = 0; l < n; ++l) {
      for (int r = 0; r < n; ++r) {
        if (rng.Chance(1, 8)) cover.AddEdge(l, r);
      }
    }
    cover.Compute();
    std::printf("konig(G(%3d,1/8))    %10d %10d\n", n, cover.MatchingSize(),
                cover.CoverSize());
  }
}

void BM_DinicLayered(benchmark::State& state) {
  int width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayeredFlow(8, width));
  }
}
BENCHMARK(BM_DinicLayered)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_Konig(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(n));
  std::vector<std::pair<int, int>> edges;
  for (int l = 0; l < n; ++l) {
    for (int r = 0; r < n; ++r) {
      if (rng.Chance(1, 8)) edges.emplace_back(l, r);
    }
  }
  for (auto _ : state) {
    BipartiteCover cover(n, n);
    for (auto [l, r] : edges) cover.AddEdge(l, r);
    cover.Compute();
    benchmark::DoNotOptimize(cover.CoverSize());
  }
}
BENCHMARK(BM_Konig)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintFlowTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
