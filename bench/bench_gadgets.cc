// E5/E6: the hardness gadgets.
//  - VC -> q_vc (Proposition 9): resilience equals the vertex cover number.
//  - VC -> q_chain (the Figure 8 or-property paths): rho = VC + |E|.
//  - 3SAT -> q_chain (Proposition 10 / Figure 10): satisfiable iff
//    rho = n*m + 5m, checked against DPLL.
// Timing series: gadget construction and exact solving vs instance size.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "reductions/gadget_sat_qchain.h"
#include "reductions/gadget_vc_qchain.h"
#include "reductions/gadget_vc_qvc.h"
#include "reductions/sat_solver.h"
#include "reductions/vertex_cover.h"
#include "resilience/exact_solver.h"

namespace rescq {
namespace {

void PrintVcTables() {
  bench::PrintHeader("E5a: VC -> q_vc (Proposition 9)",
                     "rho(q_vc, D_G) must equal the minimum vertex cover.");
  std::printf("%-14s %4s %4s %6s %6s %6s\n", "graph", "|V|", "|E|", "VC",
              "rho", "match");
  Rng rng(5);
  auto row = [&](const char* name, const Graph& g) {
    VcQvcGadget gadget = BuildVcQvcGadget(g);
    int vc = MinVertexCover(g).size;
    int rho = ComputeResilienceExact(gadget.query, gadget.db).resilience;
    std::printf("%-14s %4d %4zu %6d %6d %6s\n", name, g.num_vertices,
                g.edges.size(), vc, rho, vc == rho ? "ok" : "MISMATCH");
  };
  row("C5", CycleGraph(5));
  row("C8", CycleGraph(8));
  row("K4", CompleteGraph(4));
  row("K5", CompleteGraph(5));
  row("Petersen", PetersenGraph());
  row("G(10,0.3)", RandomGraph(10, 3, 10, rng));
  row("G(12,0.5)", RandomGraph(12, 1, 2, rng));

  bench::PrintHeader("E5b: VC -> q_chain (or-property paths, Figure 8)",
                     "rho(q_chain, D_G) must equal VC(G) + |E(G)|.");
  std::printf("%-14s %4s %4s %6s %10s %6s %6s\n", "graph", "|V|", "|E|",
              "VC", "VC+|E|", "rho", "match");
  auto row2 = [&](const char* name, const Graph& g) {
    VcChainGadget gadget = BuildVcQchainGadget(g);
    int vc = MinVertexCover(g).size;
    int expect = vc + gadget.offset;
    int rho = ComputeResilienceExact(gadget.query, gadget.db).resilience;
    std::printf("%-14s %4d %4zu %6d %10d %6d %6s\n", name, g.num_vertices,
                g.edges.size(), vc, expect, rho,
                expect == rho ? "ok" : "MISMATCH");
  };
  row2("C5", CycleGraph(5));
  row2("K4", CompleteGraph(4));
  row2("Petersen", PetersenGraph());
  row2("G(10,0.3)", RandomGraph(10, 3, 10, rng));
}

void PrintSatTable() {
  bench::PrintHeader(
      "E5c: 3SAT -> q_chain (Proposition 10 / Figure 10)",
      "For each formula: satisfiable (DPLL) iff rho equals k = n*m + 5m "
      "(exact solver on the gadget database).");
  std::printf("%-10s %3s %3s %5s %5s %5s %8s %6s\n", "formula", "n", "m",
              "sat", "k", "rho", "tuples", "match");
  Rng rng(2020);
  for (int trial = 0; trial < 8; ++trial) {
    int n = 3 + static_cast<int>(rng.Below(2));
    int m = 2 + static_cast<int>(rng.Below(3));
    CnfFormula f = RandomCnf(n, m, 3, rng);
    bool sat = IsSatisfiable(f);
    SatChainGadget gadget = BuildSatQchainGadget(f);
    int rho = ComputeResilienceExact(gadget.query, gadget.db).resilience;
    bool match = sat ? rho == gadget.k : rho >= gadget.k + 1;
    std::printf("random#%-3d %3d %3d %5s %5d %5d %8d %6s\n", trial, n, m,
                sat ? "yes" : "no", gadget.k, rho,
                gadget.db.NumActiveTuples(), match ? "ok" : "MISMATCH");
  }
  // The canonical unsatisfiable formula.
  CnfFormula unsat;
  unsat.num_vars = 3;
  for (int mask = 0; mask < 8; ++mask) {
    Clause c;
    for (int v = 0; v < 3; ++v) {
      c.literals.push_back(Literal{v, ((mask >> v) & 1) != 0});
    }
    unsat.clauses.push_back(c);
  }
  SatChainGadget gadget = BuildSatQchainGadget(unsat);
  int rho = ComputeResilienceExact(gadget.query, gadget.db).resilience;
  std::printf("%-10s %3d %3zu %5s %5d %5d %8d %6s\n", "unsat8", 3,
              unsat.clauses.size(), "no", gadget.k, rho,
              gadget.db.NumActiveTuples(),
              rho >= gadget.k + 1 ? "ok" : "MISMATCH");
}

void BM_BuildSatGadget(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  Rng rng(1);
  CnfFormula f = RandomCnf(4, m, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSatQchainGadget(f));
  }
}
BENCHMARK(BM_BuildSatGadget)->Arg(4)->Arg(16)->Arg(64);

void BM_ExactSolveSatGadget(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  Rng rng(1);
  CnfFormula f = RandomCnf(4, m, 3, rng);
  SatChainGadget gadget = BuildSatQchainGadget(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeResilienceExact(gadget.query, gadget.db));
  }
}
BENCHMARK(BM_ExactSolveSatGadget)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ExactSolveVcGadget(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(n);
  Graph g = RandomGraph(n, 1, 2, rng);
  VcQvcGadget gadget = BuildVcQvcGadget(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeResilienceExact(gadget.query, gadget.db));
  }
}
BENCHMARK(BM_ExactSolveVcGadget)->Arg(8)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintVcTables();
  rescq::PrintSatTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
