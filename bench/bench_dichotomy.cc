// E1/E2/E4: regenerate the paper's classification artifacts.
//  - E1: the Figure 1 intro queries (triangle/tripod hard, rats/linear easy);
//  - E2: the Figure 5 two-R-atom pattern table;
//  - E4: the Section 8 three-R-atom map (hard / PTIME / open).
// Then times the Theorem 37 decision procedure itself.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "complexity/classifier.h"
#include "complexity/patterns.h"
#include "cq/parser.h"

namespace rescq {
namespace {

void PrintRow(const char* name, const std::string& text) {
  Classification c = ClassifyResilience(MustParseQuery(text));
  std::printf("%-16s %-46s %-12s %s\n", name, text.c_str(),
              ComplexityName(c.complexity), c.pattern.c_str());
}

void PrintIntroTable() {
  bench::PrintHeader("E1: Figure 1 / Section 2",
                     "The four intro queries: triads make the triangle and "
                     "tripod hard; domination and linearity make rats and "
                     "q_lin easy.");
  std::printf("%-16s %-46s %-12s %s\n", "query", "body", "RES(q)", "pattern");
  PrintRow("q_triangle", "R(x,y), S(y,z), T(z,x)");
  PrintRow("q_T", "A(x), B(y), C(z), W(x,y,z)");
  PrintRow("q_rats", "R(x,y), A(x), T(z,x), S(y,z)");
  PrintRow("q_lin", "A(x), R(x,y,z), S(y,z)");
}

void PrintFigure5Table() {
  bench::PrintHeader("E2: Figure 5 (two-R-atom patterns)",
                     "PTIME and NP-hard cases per self-join pattern, as in "
                     "the paper's pattern table.");
  std::printf("%-16s %-46s %-12s %s\n", "pattern", "example query", "RES(q)",
              "decisive structure");
  // Chains: no PTIME case.
  PrintRow("chain", "R(x,y), R(y,z)");
  PrintRow("chain", "A(x), R(x,y), R(y,z), C(z)");
  PrintRow("chain", "A(x), R(x,y), B(y), R(y,z), C(z)");
  // Confluences: easy without, hard with an exogenous path.
  PrintRow("confluence", "A(x), R(x,y), R(z,y), C(z)");
  PrintRow("confluence", "R(x,y), H^x(x,z), R(z,y)");
  // Permutations: easy unbound, hard bound.
  PrintRow("permutation", "R(x,y), R(y,x)");
  PrintRow("permutation", "A(x), R(x,y), R(y,x)");
  PrintRow("permutation", "A(x), R(x,y), R(y,x), B(y)");
  // REP: no NP-hard case (when the atoms share a variable).
  PrintRow("rep", "R(x,x), R(x,y), A(y)");
  PrintRow("rep(path)", "R(x,x), S(x,y), R(y,y)");
}

void PrintSection8Table() {
  bench::PrintHeader("E4: Section 8 (three R-atoms)",
                     "The Section 8 catalog: k-chains and most mixed "
                     "patterns are hard; two flow constructions stay easy; "
                     "several cases remain open.");
  std::printf("%-16s %-46s %-12s %s\n", "name", "body", "RES(q)", "reference");
  for (const CatalogEntry& e : PaperCatalog()) {
    Query q = MustParseQuery(e.text);
    std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
    if (!sj.has_value() || sj->atoms.size() != 3) continue;
    Classification c = ClassifyResilience(q);
    std::printf("%-16s %-46s %-12s %s\n", e.name.c_str(), e.text.c_str(),
                ComplexityName(c.complexity), e.reference.c_str());
  }
}

void BM_ClassifyCatalog(benchmark::State& state) {
  std::vector<Query> queries;
  for (const CatalogEntry& e : PaperCatalog()) {
    queries.push_back(MustParseQuery(e.text));
  }
  for (auto _ : state) {
    for (const Query& q : queries) {
      benchmark::DoNotOptimize(ClassifyResilience(q));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_ClassifyCatalog);

void BM_ClassifySingle(benchmark::State& state, const char* text) {
  Query q = MustParseQuery(text);
  for (auto _ : state) benchmark::DoNotOptimize(ClassifyResilience(q));
}
BENCHMARK_CAPTURE(BM_ClassifySingle, triangle, "R(x,y), S(y,z), T(z,x)");
BENCHMARK_CAPTURE(BM_ClassifySingle, qchain, "R(x,y), R(y,z)");
BENCHMARK_CAPTURE(BM_ClassifySingle, qABperm, "A(x), R(x,y), R(y,x), B(y)");
BENCHMARK_CAPTURE(BM_ClassifySingle, qTS3conf,
                  "T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)");

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintIntroTable();
  rescq::PrintFigure5Table();
  rescq::PrintSection8Table();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
