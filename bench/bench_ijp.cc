// E9/E10/E11: Independent Join Paths (Section 9 + Appendix C).
//  - E9: the checker on the four worked examples, including the Example 60
//    erratum (the printed database fails condition 5) and its repair.
//  - E10: the automated search (Example 62: Bell(9) = 21147 partitions).
//  - E11: the generalized VC construction behind Conjecture 49:
//    rho(D_G) = VC(G) + |E|*(c-1), validated on oriented graphs.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "complexity/catalog.h"
#include "ijp/examples.h"
#include "ijp/ijp.h"
#include "ijp/ijp_search.h"
#include "ijp/ijp_vc_reduction.h"
#include "reductions/vertex_cover.h"
#include "resilience/exact_solver.h"
#include "util/combinatorics.h"

namespace rescq {
namespace {

void PrintCheckerTable() {
  bench::PrintHeader("E9: Definition 48 checker on the worked examples",
                     "Examples 58-60 are IJPs; Example 61 fails condition "
                     "4 by design. Example 60 as printed fails condition 5 "
                     "(erratum: the undrawn witness (5,2,3)); one private "
                     "hop repairs it.");
  std::printf("%-28s %-10s %6s %12s\n", "example", "verdict", "c",
              "failed cond");
  auto row = [&](const char* name, IjpExample ex) {
    IjpCheckResult r = CheckIjp(ex.query, ex.db, ex.endpoint_a,
                                ex.endpoint_b);
    std::printf("%-28s %-10s %6d %12d\n", name,
                r.is_ijp ? "IJP" : "not-IJP", r.resilience,
                r.failed_condition);
  };
  row("58 (q_vc)", BuildIjpExample58());
  row("59 (triangle)", BuildIjpExample59());
  row("60 (z5, as printed)", BuildIjpExample60AsPrinted());
  row("60 (z5, repaired)", BuildIjpExample60());
  row("61 (two self-joins)", BuildIjpExample61());
}

void PrintSearchTable() {
  bench::PrintHeader(
      "E10: automated IJP search (Appendix C.2 / Example 62)",
      "Canonical databases + set-partition enumeration. Hard queries "
      "yield IJPs; PTIME queries must not (Conjecture 49's converse).");
  std::printf("%-12s %6s %6s %12s %12s %8s\n", "query", "found", "joins",
              "partitions", "candidates", "c");
  auto row = [&](const char* name, int min_joins, int max_joins) {
    IjpSearchOptions options;
    options.min_joins = min_joins;
    options.max_joins = max_joins;
    IjpSearchResult r = SearchForIjp(CatalogQuery(name), options);
    std::printf("%-12s %6s %6d %12llu %12llu %8d\n", name,
                r.found ? "yes" : "no", r.joins,
                static_cast<unsigned long long>(r.partitions_examined),
                static_cast<unsigned long long>(r.candidates_checked),
                r.resilience);
  };
  std::printf("(Bell(9) = %llu as quoted in Example 62)\n",
              static_cast<unsigned long long>(BellNumber(9)));
  row("q_vc", 1, 2);
  row("q_chain", 1, 2);
  row("q_triangle", 3, 3);
  row("q_ABperm", 1, 3);   // hard (Prop 34): certificate found automatically
  row("q_achain", 1, 3);   // Lemma 53
  row("q_bchain", 1, 3);   // Lemma 52
  row("q_acchain", 1, 3);  // Lemma 54
  row("cf_p", 1, 2);       // Prop 32 (exogenous relation in play)
  row("z1", 1, 2);         // Thm 28
  row("q_perm", 1, 2);
  row("q_Aperm", 1, 2);
  row("q_ACconf", 1, 2);
  row("z3", 1, 2);         // Prop 36 (PTIME)
}

Graph Star(int leaves) {
  Graph g;
  g.num_vertices = leaves + 1;
  for (int i = 1; i <= leaves; ++i) g.edges.emplace_back(0, i);
  return g;
}

Graph EvenCycleOriented(int n) {
  Graph g;
  g.num_vertices = n;
  for (int i = 0; i < n; ++i) {
    int j = (i + 1) % n;
    g.edges.emplace_back(i % 2 == 0 ? i : j, i % 2 == 0 ? j : i);
  }
  return g;
}

void PrintConjectureTable() {
  bench::PrintHeader(
      "E11: Conjecture 49's reduction template",
      "Compose an IJP per graph edge (endpoint tuples shared per vertex); "
      "the or-property predicts rho(D_G) = VC(G) + |E|*(c-1).");
  std::printf("%-14s %-12s %4s %4s %10s %6s %6s\n", "query", "graph", "VC",
              "|E|", "predicted", "rho", "match");
  struct Case {
    const char* name;
    IjpExample ex;
  };
  std::vector<Case> cases;
  cases.push_back({"q_vc", BuildIjpExample58()});
  cases.push_back({"q_triangle", BuildIjpExample59()});
  cases.push_back({"z5", BuildIjpExample60()});
  for (Case& c : cases) {
    for (auto& [gname, graph] :
         std::vector<std::pair<const char*, Graph>>{
             {"star3", Star(3)},
             {"star5", Star(5)},
             {"C4", EvenCycleOriented(4)},
             {"C6", EvenCycleOriented(6)}}) {
      std::optional<IjpVcInstance> inst = BuildIjpVcInstance(
          c.ex.query, c.ex.db, c.ex.endpoint_a, c.ex.endpoint_b,
          c.ex.expected_resilience, graph);
      if (!inst.has_value()) {
        std::printf("%-14s %-12s construction not applicable\n", c.name,
                    gname);
        continue;
      }
      int rho = ComputeResilienceExact(inst->query, inst->db).resilience;
      std::printf("%-14s %-12s %4d %4zu %10d %6d %6s\n", c.name, gname,
                  MinVertexCover(graph).size, graph.edges.size(),
                  inst->expected_resilience, rho,
                  rho == inst->expected_resilience ? "ok" : "MISMATCH");
    }
  }
}

void BM_IjpSearchTriangle(benchmark::State& state) {
  Query q = CatalogQuery("q_triangle");
  IjpSearchOptions options;
  options.min_joins = 3;
  options.max_joins = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SearchForIjp(q, options));
  }
}
BENCHMARK(BM_IjpSearchTriangle)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_IjpCheck59(benchmark::State& state) {
  IjpExample ex = BuildIjpExample59();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckIjp(ex.query, ex.db, ex.endpoint_a, ex.endpoint_b));
  }
}
BENCHMARK(BM_IjpCheck59);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintCheckerTable();
  rescq::PrintSearchTable();
  rescq::PrintConjectureTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
