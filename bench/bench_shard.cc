// E-shard: throughput of the consistent-hash router vs shard count. The
// artifact table runs an in-process `rescq route` over 1, 2, and 4
// in-process `rescq serve` shards and drives the router port with the
// loadgen harness — concurrent sessions doing the open -> churn ->
// query loop — reporting sustained requests/sec and p50/p99 request
// latency per fleet size. Set RESCQ_BENCH_SNAPSHOT=<path> to also write
// the machine-readable JSON snapshot (BENCH_shard.json in the repo root
// is a checked-in run; host.cores says how many cores it was taken on).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "server/client.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "server/server.h"
#include "util/parallel.h"

namespace rescq {
namespace {

const size_t kShardCounts[] = {1, 2, 4};

struct ShardRow {
  size_t shards = 0;
  int connections = 0;
  uint64_t requests = 0;
  double requests_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double epoch_p50_ms = 0;
  double epoch_p99_ms = 0;
  bool clean = true;  // no err replies, no transport errors
};

std::vector<ShardRow> g_rows;

LoadgenOptions BaseLoadgen() {
  LoadgenOptions options;
  options.host = "127.0.0.1";
  options.connections = 8;
  options.scenario = "vc_er";
  options.size = 10;
  options.churn = "mixed";
  options.epochs = 6;
  options.rate = 0.15;
  options.seed = 11;
  options.timeout_ms = 60000;
  return options;
}

void PrintShardScaling() {
  std::printf(
      "\n==== E-shard: router throughput vs shard count ====\n"
      "An in-process `rescq route` over N in-process `rescq serve` "
      "shards,\ndriven by the loadgen harness on the router port: 8 "
      "concurrent connections,\neach one session of open -> push -> "
      "begin -> 6 churn epochs (with\nresilience + stats queries per "
      "epoch). Sessions spread over the shards by\nconsistent hashing; "
      "every reply crosses two hops (client -> router ->\nshard), so "
      "1 shard prices the forwarding overhead and 2/4 shards price "
      "how\nmuch independent backends buy back.\n\n");
  std::printf("%-8s %6s %9s %12s | %8s %8s | %9s %9s\n", "shards", "conns",
              "requests", "req_per_s", "p50_ms", "p99_ms", "ep_p50", "ep_p99");
  for (size_t shard_count : kShardCounts) {
    InProcessShards shards;
    ServerOptions base;
    base.port = 0;
    base.threads = 4;
    std::string error;
    if (!shards.Start(shard_count, base, &error)) {
      std::fprintf(stderr, "bench_shard: %s\n", error.c_str());
      return;
    }
    RouterOptions roptions;
    roptions.port = 0;
    roptions.threads = 4;
    roptions.shards = shards.specs();
    ShardRouter router(roptions);
    if (!router.Start(&error)) {
      std::fprintf(stderr, "bench_shard: %s\n", error.c_str());
      return;
    }
    LoadgenOptions loptions = BaseLoadgen();
    loptions.port = router.port();
    // Warm up (plan caches, allocator, TCP stack), then measure.
    loptions.session_prefix = "warm";
    RunLoadgen(loptions);
    loptions.session_prefix = "bench";
    LoadgenReport report = RunLoadgen(loptions);
    router.Stop();
    shards.Stop();

    ShardRow row;
    row.shards = shard_count;
    row.connections = loptions.connections;
    row.requests = report.requests;
    row.requests_per_sec = report.requests_per_sec;
    row.p50_ms = report.latency.p50_ms;
    row.p99_ms = report.latency.p99_ms;
    row.epoch_p50_ms = report.epoch_latency.p50_ms;
    row.epoch_p99_ms = report.epoch_latency.p99_ms;
    row.clean = report.error.empty() && report.err_replies == 0;
    g_rows.push_back(row);
    std::printf("%-8zu %6d %9llu %12.1f | %8.3f %8.3f | %9.3f %9.3f%s\n",
                row.shards, row.connections,
                static_cast<unsigned long long>(row.requests),
                row.requests_per_sec, row.p50_ms, row.p99_ms,
                row.epoch_p50_ms, row.epoch_p99_ms,
                row.clean ? "" : "  UNCLEAN");
  }
}

void WriteSnapshot(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_shard: cannot write snapshot %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"rescq-bench-shard/v1\",\n");
  std::fprintf(f, "  \"host\": { \"cores\": %d },\n", HardwareThreads());
  std::fprintf(f, "  \"workload\": { \"connections\": 8, \"scenario\": "
                  "\"vc_er\", \"size\": 10, \"churn\": \"mixed\", "
                  "\"epochs\": 6 },\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const ShardRow& r = g_rows[i];
    std::fprintf(f,
                 "    { \"shards\": %zu, \"requests\": %llu, "
                 "\"requests_per_sec\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"epoch_p50_ms\": %.3f, "
                 "\"epoch_p99_ms\": %.3f, \"clean\": %s }%s\n",
                 r.shards, static_cast<unsigned long long>(r.requests),
                 r.requests_per_sec, r.p50_ms, r.p99_ms, r.epoch_p50_ms,
                 r.epoch_p99_ms, r.clean ? "true" : "false",
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nsnapshot written: %s\n", path);
}

// --- Timing series ----------------------------------------------------------

// Round-trip floor through the router: client -> router -> shard and
// back for a session verb (resilience on a tiny live session), vs the
// one-hop cost bench_server's BM_PingRoundTrip prices. The ping verb
// itself is answered by the router locally, so a session verb is the
// honest two-hop number.
void BM_RoutedResilience(benchmark::State& state) {
  InProcessShards shards;
  ServerOptions base;
  base.port = 0;
  base.threads = 2;
  std::string error;
  if (!shards.Start(static_cast<size_t>(state.range(0)), base, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  RouterOptions roptions;
  roptions.port = 0;
  roptions.shards = shards.specs();
  ShardRouter router(roptions);
  if (!router.Start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  LineClient client;
  std::string reply;
  bool ok = client.Connect("127.0.0.1", router.port(), &error);
  ok = ok && client.Request("open hot R(x,y), S(y)", &reply, &error);
  ok = ok && client.Request("push R(a, b)", &reply, &error);
  ok = ok && client.Request("push S(b)", &reply, &error);
  ok = ok && client.Request("begin", &reply, &error);
  if (!ok) {
    state.SkipWithError(error.c_str());
    router.Stop();
    return;
  }
  for (auto _ : state) {
    if (!client.Request("resilience", &reply, &error)) {
      state.SkipWithError(error.c_str());
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
  client.Close();
  router.Stop();
}
BENCHMARK(BM_RoutedResilience)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// Scatter-gather cost: one aggregated `stats` across the whole fleet.
void BM_ScatterGatherStats(benchmark::State& state) {
  InProcessShards shards;
  ServerOptions base;
  base.port = 0;
  base.threads = 2;
  std::string error;
  if (!shards.Start(static_cast<size_t>(state.range(0)), base, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  RouterOptions roptions;
  roptions.port = 0;
  roptions.shards = shards.specs();
  ShardRouter router(roptions);
  if (!router.Start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  LineClient client;
  std::string reply;
  if (!client.Connect("127.0.0.1", router.port(), &error)) {
    state.SkipWithError(error.c_str());
    router.Stop();
    return;
  }
  for (auto _ : state) {
    if (!client.Request("stats", &reply, &error)) {
      state.SkipWithError(error.c_str());
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
  client.Close();
  router.Stop();
}
BENCHMARK(BM_ScatterGatherStats)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintShardScaling();
  if (const char* path = std::getenv("RESCQ_BENCH_SNAPSHOT")) {
    rescq::WriteSnapshot(path);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
