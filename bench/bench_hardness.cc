// E8: "self-joins change everything" (Section 3.1) — already two atoms
// (q_chain) or two variables (q_vc) force NP-hardness. The exact solver's
// cost on the hard queries grows with instance size while the PTIME
// confluence twin of the same size stays cheap.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "complexity/catalog.h"
#include "cq/parser.h"
#include "resilience/exact_solver.h"
#include "resilience/solver.h"

namespace rescq {
namespace {

void PrintContrastTable() {
  bench::PrintHeader(
      "E8: hard twins vs easy twins (Section 3.1)",
      "q_chain (hard) vs q_ACconf (easy) on random databases of the same "
      "size: single-run wall-clock of the best available algorithm.");
  std::printf("%-12s %-12s %8s %8s %14s\n", "query", "class", "tuples",
              "rho", "time (us)");
  using Clock = std::chrono::steady_clock;
  for (const char* name : {"q_chain", "q_vc", "q_ACconf", "q_Aperm"}) {
    CatalogEntry entry = *FindCatalogEntry(name);
    Query q = MustParseQuery(entry.text);
    for (int tuples : {20, 40, 80}) {
      Rng rng(static_cast<uint64_t>(tuples) ^ 0x5EED);
      Database db = bench::RandomDatabase(q, std::max(4, tuples / 4),
                                          tuples, rng);
      auto t0 = Clock::now();
      ResilienceResult r = ComputeResilience(q, db);
      auto t1 = Clock::now();
      std::printf("%-12s %-12s %8d %8d %14.1f\n", name,
                  ComplexityName(entry.expected), tuples, r.resilience,
                  std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  }
}

void BM_ExactHardQuery(benchmark::State& state, const char* name) {
  Query q = MustParseQuery(FindCatalogEntry(name)->text);
  int tuples = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(tuples) * 131 + 7);
  Database db = bench::RandomDatabase(q, std::max(4, tuples / 4), tuples, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeResilienceExact(q, db));
  }
}
BENCHMARK_CAPTURE(BM_ExactHardQuery, qchain, "q_chain")
    ->Arg(20)->Arg(40)->Arg(80)->Arg(160)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ExactHardQuery, qvc, "q_vc")
    ->Arg(20)->Arg(40)->Arg(80)->Arg(160)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ExactHardQuery, qABperm, "q_ABperm")
    ->Arg(20)->Arg(40)->Arg(80)->Unit(benchmark::kMicrosecond);
// The 3-chain's witness sets have three tuples, so the general
// branch-and-bound (not the vertex-cover fast path) carries them; 40
// tuples is already two decades slower than 20 — the blow-up the
// dichotomy predicts.
BENCHMARK_CAPTURE(BM_ExactHardQuery, q3chain, "q_3chain")
    ->Arg(20)->Arg(40)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintContrastTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
