// E3: Theorem 37's claim that "there is a PTIME algorithm that on input q
// determines which case occurs", exercised exhaustively: enumerate every
// single-self-join binary query with exactly two R-atoms (over up to four
// variables, decorated with endogenous/exogenous unary atoms), classify
// all of them, and report the census. No query in the class may come back
// out-of-scope or open — that is the dichotomy.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "complexity/classifier.h"
#include "cq/homomorphism.h"

namespace rescq {
namespace {

// Canonicalizes a variable vector to first-occurrence order so renamings
// collapse.
std::vector<int> Canonicalize(const std::vector<int>& vars) {
  std::map<int, int> remap;
  std::vector<int> out;
  for (int v : vars) {
    auto [it, inserted] = remap.emplace(v, static_cast<int>(remap.size()));
    out.push_back(it->second);
  }
  return out;
}

// Enumerates the query family; calls visit(query).
void EnumerateTwoAtomFamily(const std::function<void(const Query&)>& visit) {
  static const char* kVarNames[] = {"x", "y", "z", "w"};
  std::set<std::vector<int>> seen_pairs;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        for (int d = 0; d < 4; ++d) {
          std::vector<int> pair = Canonicalize({a, b, c, d});
          if (!seen_pairs.insert(pair).second) continue;
          int num_vars = 1;
          for (int v : pair) num_vars = std::max(num_vars, v + 1);
          // Decorations: each variable gets nothing (0), an endogenous
          // unary atom (1), or an exogenous unary atom (2).
          int combos = 1;
          for (int v = 0; v < num_vars; ++v) combos *= 3;
          for (int deco = 0; deco < combos; ++deco) {
            // Connector between the first and last variable: none,
            // endogenous S, or exogenous S^x. This adds the path and
            // exogenous-confluence-path cases to the family.
            for (int conn = 0; conn < (num_vars >= 2 ? 3 : 1); ++conn) {
              std::vector<Atom> atoms;
              atoms.push_back(Atom{"R", {pair[0], pair[1]}, false});
              atoms.push_back(Atom{"R", {pair[2], pair[3]}, false});
              if (conn > 0) {
                atoms.push_back(Atom{"S", {0, num_vars - 1}, conn == 2});
              }
              int d2 = deco;
              for (int v = 0; v < num_vars; ++v) {
                int kind = d2 % 3;
                d2 /= 3;
                if (kind == 0) continue;
                std::string rel =
                    std::string(kind == 1 ? "U" : "X") + kVarNames[v];
                atoms.push_back(Atom{rel, {v}, kind == 2});
              }
              std::vector<std::string> names(kVarNames,
                                             kVarNames + num_vars);
              visit(Query(std::move(atoms), std::move(names)));
            }
          }
        }
      }
    }
  }
}

void PrintCensus() {
  bench::PrintHeader(
      "E3: exhaustive two-R-atom census (Theorem 37)",
      "All ssj binary queries with two R-atoms over <=4 variables, each "
      "variable optionally pinned by an endogenous or exogenous unary "
      "atom. The dichotomy assigns every one of them PTIME or "
      "NP-complete.");
  std::map<std::string, int> census;
  std::map<std::string, int> by_pattern;
  int total = 0;
  EnumerateTwoAtomFamily([&](const Query& q) {
    Classification c = ClassifyResilience(q);
    ++census[ComplexityName(c.complexity)];
    ++by_pattern[c.pattern];
    ++total;
  });
  std::printf("queries enumerated: %d\n\n", total);
  std::printf("%-14s %8s\n", "verdict", "count");
  for (const auto& [verdict, count] : census) {
    std::printf("%-14s %8d\n", verdict.c_str(), count);
  }
  std::printf("\n%-28s %8s\n", "decisive pattern", "count");
  for (const auto& [pattern, count] : by_pattern) {
    std::printf("%-28s %8d\n", pattern.c_str(), count);
  }
}

void BM_ClassifyFamily(benchmark::State& state) {
  std::vector<Query> family;
  EnumerateTwoAtomFamily([&](const Query& q) { family.push_back(q); });
  for (auto _ : state) {
    for (const Query& q : family) {
      benchmark::DoNotOptimize(ClassifyResilience(q));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(family.size()));
}
BENCHMARK(BM_ClassifyFamily)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintCensus();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
