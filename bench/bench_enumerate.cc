// E3: Theorem 37's claim that "there is a PTIME algorithm that on input q
// determines which case occurs", exercised exhaustively: enumerate every
// single-self-join binary query with exactly two R-atoms (over up to four
// variables, decorated with endogenous/exogenous unary atoms), classify
// all of them, and report the census. No query in the class may come back
// out-of-scope or open — that is the dichotomy.

// The file also benchmarks the witness enumerator itself: the
// smallest-posting-list probe on column-skewed instances (where probing
// the first bound column degenerates to a full posting-list scan) and
// the streaming ForEachWitness pipeline against materializing
// EnumerateWitnesses.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "complexity/classifier.h"
#include "cq/homomorphism.h"
#include "cq/parser.h"
#include "db/witness.h"

namespace rescq {
namespace {

// Canonicalizes a variable vector to first-occurrence order so renamings
// collapse.
std::vector<int> Canonicalize(const std::vector<int>& vars) {
  std::map<int, int> remap;
  std::vector<int> out;
  for (int v : vars) {
    auto [it, inserted] = remap.emplace(v, static_cast<int>(remap.size()));
    out.push_back(it->second);
  }
  return out;
}

// Enumerates the query family; calls visit(query).
void EnumerateTwoAtomFamily(const std::function<void(const Query&)>& visit) {
  static const char* kVarNames[] = {"x", "y", "z", "w"};
  std::set<std::vector<int>> seen_pairs;
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      for (int c = 0; c < 4; ++c) {
        for (int d = 0; d < 4; ++d) {
          std::vector<int> pair = Canonicalize({a, b, c, d});
          if (!seen_pairs.insert(pair).second) continue;
          int num_vars = 1;
          for (int v : pair) num_vars = std::max(num_vars, v + 1);
          // Decorations: each variable gets nothing (0), an endogenous
          // unary atom (1), or an exogenous unary atom (2).
          int combos = 1;
          for (int v = 0; v < num_vars; ++v) combos *= 3;
          for (int deco = 0; deco < combos; ++deco) {
            // Connector between the first and last variable: none,
            // endogenous S, or exogenous S^x. This adds the path and
            // exogenous-confluence-path cases to the family.
            for (int conn = 0; conn < (num_vars >= 2 ? 3 : 1); ++conn) {
              std::vector<Atom> atoms;
              atoms.push_back(Atom{"R", {pair[0], pair[1]}, false});
              atoms.push_back(Atom{"R", {pair[2], pair[3]}, false});
              if (conn > 0) {
                atoms.push_back(Atom{"S", {0, num_vars - 1}, conn == 2});
              }
              int d2 = deco;
              for (int v = 0; v < num_vars; ++v) {
                int kind = d2 % 3;
                d2 /= 3;
                if (kind == 0) continue;
                std::string rel =
                    std::string(kind == 1 ? "U" : "X") + kVarNames[v];
                atoms.push_back(Atom{rel, {v}, kind == 2});
              }
              std::vector<std::string> names(kVarNames,
                                             kVarNames + num_vars);
              visit(Query(std::move(atoms), std::move(names)));
            }
          }
        }
      }
    }
  }
}

void PrintCensus() {
  bench::PrintHeader(
      "E3: exhaustive two-R-atom census (Theorem 37)",
      "All ssj binary queries with two R-atoms over <=4 variables, each "
      "variable optionally pinned by an endogenous or exogenous unary "
      "atom. The dichotomy assigns every one of them PTIME or "
      "NP-complete.");
  std::map<std::string, int> census;
  std::map<std::string, int> by_pattern;
  int total = 0;
  EnumerateTwoAtomFamily([&](const Query& q) {
    Classification c = ClassifyResilience(q);
    ++census[ComplexityName(c.complexity)];
    ++by_pattern[c.pattern];
    ++total;
  });
  std::printf("queries enumerated: %d\n\n", total);
  std::printf("%-14s %8s\n", "verdict", "count");
  for (const auto& [verdict, count] : census) {
    std::printf("%-14s %8d\n", verdict.c_str(), count);
  }
  std::printf("\n%-28s %8s\n", "decisive pattern", "count");
  for (const auto& [pattern, count] : by_pattern) {
    std::printf("%-28s %8d\n", pattern.c_str(), count);
  }
}

void BM_ClassifyFamily(benchmark::State& state) {
  std::vector<Query> family;
  EnumerateTwoAtomFamily([&](const Query& q) { family.push_back(q); });
  for (auto _ : state) {
    for (const Query& q : family) {
      benchmark::DoNotOptimize(ClassifyResilience(q));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(family.size()));
}
BENCHMARK(BM_ClassifyFamily)->Unit(benchmark::kMillisecond);

// --- Witness enumeration -----------------------------------------------------

// Hub-skewed instance for "A(x), B(y), R(x,y)": R's hub column holds one
// value shared by every row (a posting list as long as the relation)
// while the other column is distinct. With x and y both bound at the R
// atom, probing the hub column scans every row per probe — the
// smallest-posting-list choice probes the distinct column and touches
// one row. `hub_first` flips which column carries the skew; a
// first-bound-column probe is fast on one orientation and quadratic on
// the other, while the smallest-list probe makes both orientations
// equally fast.
Database SkewedHub(int rows, int selected, bool hub_first) {
  Database db;
  Value hub = db.Intern("hub");
  for (int i = 0; i < rows; ++i) {
    Value other = db.InternIndexed("v", i);
    if (hub_first) {
      db.AddTuple("R", {hub, other});
    } else {
      db.AddTuple("R", {other, hub});
    }
  }
  if (hub_first) {
    db.AddTuple("A", {hub});
    for (int i = 0; i < selected; ++i) {
      db.AddTuple("B", {db.InternIndexed("v", i)});
    }
  } else {
    db.AddTuple("B", {hub});
    for (int i = 0; i < selected; ++i) {
      db.AddTuple("A", {db.InternIndexed("v", i)});
    }
  }
  return db;
}

void BM_WitnessSkewedProbe(benchmark::State& state, bool hub_first) {
  Query q = MustParseQuery("A(x), B(y), R(x,y)");
  Database db = SkewedHub(static_cast<int>(state.range(0)),
                          /*selected=*/64, hub_first);
  size_t witnesses = 0;
  for (auto _ : state) {
    witnesses = 0;
    ForEachWitness(q, db, [&](const Witness&) {
      ++witnesses;
      return true;
    });
    benchmark::DoNotOptimize(witnesses);
  }
  state.counters["witnesses"] = static_cast<double>(witnesses);
}

BENCHMARK_CAPTURE(BM_WitnessSkewedProbe, hub_in_first_column, true)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_WitnessSkewedProbe, hub_in_second_column, false)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

// Long chain: many witnesses, each tiny — the regime where materializing
// every Witness (assignment + atom tuples + endo set) costs real
// allocation traffic that the streaming family collector never pays.
Database LongChain(int edges) {
  Database db;
  for (int i = 0; i < edges; ++i) {
    db.AddTuple("R", {db.InternIndexed("n", i), db.InternIndexed("n", i + 1)});
  }
  return db;
}

void BM_MaterializeWitnesses(benchmark::State& state) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database db = LongChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::vector<Witness> ws = EnumerateWitnesses(q, db, kNoWitnessLimit);
    std::set<std::vector<TupleId>> sets;
    for (Witness& w : ws) sets.insert(std::move(w.endo_tuples));
    benchmark::DoNotOptimize(sets.size());
  }
}
BENCHMARK(BM_MaterializeWitnesses)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_StreamWitnessFamily(benchmark::State& state) {
  Query q = MustParseQuery("R(x,y), R(y,z)");
  Database db = LongChain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    WitnessFamily family = CollectWitnessFamily(q, db, kNoWitnessLimit);
    benchmark::DoNotOptimize(family.sets.size());
  }
}
BENCHMARK(BM_StreamWitnessFamily)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintCensus();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
