// E-server: throughput and request latency of the rescq daemon. The
// artifact table runs an in-process `rescq serve` (ephemeral port) and
// drives it with the loadgen harness — concurrent sessions doing the
// open -> churn -> query loop — at 1, 2, and 4 connection handler
// threads, reporting sustained requests/sec and p50/p99 request
// latency. Set RESCQ_BENCH_SNAPSHOT=<path> to also write the
// machine-readable JSON snapshot (BENCH_server.json in the repo root is
// a checked-in run; host.cores says how many cores it was taken on).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "resilience/engine.h"
#include "server/client.h"
#include "server/loadgen.h"
#include "server/server.h"
#include "util/parallel.h"

namespace rescq {
namespace {

const int kThreadCounts[] = {1, 2, 4};

struct ServerRow {
  int threads = 0;
  int connections = 0;
  uint64_t requests = 0;
  double requests_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double epoch_p50_ms = 0;
  double epoch_p99_ms = 0;
  bool clean = true;  // no err replies, no transport errors
};

std::vector<ServerRow> g_rows;

LoadgenOptions BaseLoadgen() {
  LoadgenOptions options;
  options.host = "127.0.0.1";
  options.connections = 8;
  options.scenario = "vc_er";
  options.size = 10;
  options.churn = "mixed";
  options.epochs = 6;
  options.rate = 0.15;
  options.seed = 11;
  return options;
}

void PrintThroughputScaling() {
  std::printf(
      "\n==== E-server: daemon throughput vs handler threads ====\n"
      "An in-process `rescq serve` driven by the loadgen harness: 8 "
      "concurrent\nconnections, each one session of open -> push -> "
      "begin -> 6 churn epochs\n(with resilience + stats queries per "
      "epoch). Handler threads bound how many\nrequests make progress "
      "concurrently; the plan cache is shared across all\nsessions.\n\n");
  std::printf("%-8s %6s %9s %12s | %8s %8s | %9s %9s\n", "threads", "conns",
              "requests", "req_per_s", "p50_ms", "p99_ms", "ep_p50", "ep_p99");
  for (int threads : kThreadCounts) {
    ServerOptions soptions;
    soptions.port = 0;
    soptions.threads = threads;
    ResilienceEngine engine;
    ResilienceServer server(soptions, &engine);
    std::string error;
    if (!server.Start(&error)) {
      std::fprintf(stderr, "bench_server: %s\n", error.c_str());
      return;
    }
    LoadgenOptions loptions = BaseLoadgen();
    loptions.port = server.port();
    // Warm up (plan cache, allocator, TCP stack), then measure.
    loptions.session_prefix = "warm";
    RunLoadgen(loptions);
    loptions.session_prefix = "bench";
    LoadgenReport report = RunLoadgen(loptions);
    server.Stop();

    ServerRow row;
    row.threads = threads;
    row.connections = loptions.connections;
    row.requests = report.requests;
    row.requests_per_sec = report.requests_per_sec;
    row.p50_ms = report.latency.p50_ms;
    row.p99_ms = report.latency.p99_ms;
    row.epoch_p50_ms = report.epoch_latency.p50_ms;
    row.epoch_p99_ms = report.epoch_latency.p99_ms;
    row.clean = report.error.empty() && report.err_replies == 0;
    g_rows.push_back(row);
    std::printf("%-8d %6d %9llu %12.1f | %8.3f %8.3f | %9.3f %9.3f%s\n",
                row.threads, row.connections,
                static_cast<unsigned long long>(row.requests),
                row.requests_per_sec, row.p50_ms, row.p99_ms,
                row.epoch_p50_ms, row.epoch_p99_ms,
                row.clean ? "" : "  UNCLEAN");
  }
}

void WriteSnapshot(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_server: cannot write snapshot %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"rescq-bench-server/v1\",\n");
  std::fprintf(f, "  \"host\": { \"cores\": %d },\n", HardwareThreads());
  std::fprintf(f, "  \"workload\": { \"connections\": 8, \"scenario\": "
                  "\"vc_er\", \"size\": 10, \"churn\": \"mixed\", "
                  "\"epochs\": 6 },\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const ServerRow& r = g_rows[i];
    std::fprintf(f,
                 "    { \"threads\": %d, \"requests\": %llu, "
                 "\"requests_per_sec\": %.1f, \"p50_ms\": %.3f, "
                 "\"p99_ms\": %.3f, \"epoch_p50_ms\": %.3f, "
                 "\"epoch_p99_ms\": %.3f, \"clean\": %s }%s\n",
                 r.threads, static_cast<unsigned long long>(r.requests),
                 r.requests_per_sec, r.p50_ms, r.p99_ms, r.epoch_p50_ms,
                 r.epoch_p99_ms, r.clean ? "true" : "false",
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nsnapshot written: %s\n", path);
}

// --- Timing series ----------------------------------------------------------

// Round-trip floor of the wire protocol: one connection, ping/pong.
void BM_PingRoundTrip(benchmark::State& state) {
  ServerOptions soptions;
  soptions.port = 0;
  soptions.threads = static_cast<int>(state.range(0));
  ResilienceEngine engine;
  ResilienceServer server(soptions, &engine);
  std::string error;
  if (!server.Start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  LineClient client;
  std::string reply;
  if (!client.Connect("127.0.0.1", server.port(), &error)) {
    state.SkipWithError(error.c_str());
    server.Stop();
    return;
  }
  for (auto _ : state) {
    if (!client.Request("ping", &reply, &error)) {
      state.SkipWithError(error.c_str());
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
  client.Close();
  server.Stop();
}
BENCHMARK(BM_PingRoundTrip)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// One full served session per iteration: open, base, begin, one epoch,
// resilience — the protocol cost on top of the incremental engine.
void BM_ServedSession(benchmark::State& state) {
  ServerOptions soptions;
  soptions.port = 0;
  soptions.threads = static_cast<int>(state.range(0));
  ResilienceEngine engine;
  ResilienceServer server(soptions, &engine);
  std::string error;
  if (!server.Start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  LineClient client;
  std::string reply;
  if (!client.Connect("127.0.0.1", server.port(), &error)) {
    state.SkipWithError(error.c_str());
    server.Stop();
    return;
  }
  int i = 0;
  for (auto _ : state) {
    std::string name = "b" + std::to_string(i++);
    bool ok = client.Request("open " + name + " R(x,y), S(y)", &reply, &error);
    ok = ok && client.Request("push R(a, b)", &reply, &error);
    ok = ok && client.Request("push S(b)", &reply, &error);
    ok = ok && client.Request("begin", &reply, &error);
    ok = ok && client.Request("+ S(c)", &reply, &error);
    ok = ok && client.Request("+ R(b, c)", &reply, &error);
    ok = ok && client.Request("epoch", &reply, &error);
    ok = ok && client.Request("resilience", &reply, &error);
    ok = ok && client.Request("close", &reply, &error);
    if (!ok) {
      state.SkipWithError(error.c_str());
      break;
    }
    benchmark::DoNotOptimize(reply);
  }
  client.Close();
  server.Stop();
}
BENCHMARK(BM_ServedSession)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintThroughputScaling();
  if (const char* path = std::getenv("RESCQ_BENCH_SNAPSHOT")) {
    rescq::WriteSnapshot(path);
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
