// E8: workload subsystem. First a scaling table — the same small
// oracle-checked sweep on 1, 2, and 4 worker threads, demonstrating that
// the batch engine's results are thread-invariant while its wall clock
// shrinks — then google-benchmark series for generator throughput and
// end-to-end batch latency.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workload/batch.h"
#include "workload/generators.h"

namespace rescq {
namespace {

std::vector<BatchJob> ScalingJobs() {
  BatchPlan plan;
  plan.scenarios = AllScenarioNames();
  plan.sizes = {4, 6, 8};
  plan.seeds = {1, 2};
  std::vector<BatchJob> jobs;
  std::string error;
  if (!ExpandPlan(plan, &jobs, &error)) {
    std::fprintf(stderr, "ExpandPlan failed: %s\n", error.c_str());
  }
  return jobs;
}

void PrintScalingTable() {
  bench::PrintHeader(
      "E8: batch engine thread scaling",
      "Every scenario x sizes {4,6,8} x seeds {1,2} with the exact-oracle "
      "cross-check on; identical resilience values on every thread count.");
  std::vector<BatchJob> jobs = ScalingJobs();
  std::printf("%8s %8s %12s %12s %10s\n", "threads", "cells", "solver_ms",
              "elapsed_ms", "mismatch");
  for (int threads : {1, 2, 4}) {
    BatchOptions options;
    options.threads = threads;
    options.check_oracle = true;
    BatchReport report = RunBatch(jobs, options);
    std::printf("%8d %8zu %12.1f %12.1f %10d\n", threads, report.cells.size(),
                report.total_wall_ms, report.elapsed_ms, report.mismatches);
  }
}

void BM_Generate(benchmark::State& state, const char* name) {
  const Scenario* scenario = FindScenario(name);
  ScenarioParams params{static_cast<int>(state.range(0)), 0.5, 1};
  for (auto _ : state) {
    params.seed++;  // vary the instance, stay deterministic
    Database db = scenario->generate(params);
    benchmark::DoNotOptimize(db.NumActiveTuples());
  }
}
BENCHMARK_CAPTURE(BM_Generate, chain, "chain")->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_Generate, perm, "perm")->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_Generate, vc_er, "vc_er")->Arg(64)->Arg(256);
BENCHMARK_CAPTURE(BM_Generate, triad, "triad")->Arg(16)->Arg(64);
BENCHMARK_CAPTURE(BM_Generate, uniform, "uniform")->Arg(64)->Arg(256);

void BM_BatchSweep(benchmark::State& state) {
  std::vector<BatchJob> jobs = ScalingJobs();
  BatchOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BatchReport report = RunBatch(jobs, options);
    benchmark::DoNotOptimize(report.mismatches);
  }
}
BENCHMARK(BM_BatchSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_Fingerprint(benchmark::State& state) {
  Database db = GenerateErdosRenyiVC({static_cast<int>(state.range(0)), 0.5, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(DatabaseFingerprint(db));
  }
}
BENCHMARK(BM_Fingerprint)->Arg(64)->Arg(256);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintScalingTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
