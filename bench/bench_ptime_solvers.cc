// E7: the PTIME side of the dichotomy. For every PTIME query family with
// a published construction (Props 12/13/31/33/36/41/44), check agreement
// between the specialized solver and the exact oracle on small random
// databases, then time both as the database grows — the flow solvers stay
// polynomial while the exact branch-and-bound blows up.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "complexity/catalog.h"
#include "cq/parser.h"
#include "resilience/exact_solver.h"
#include "resilience/solver.h"

namespace rescq {
namespace {

const char* kFamilies[] = {"q_lin",     "q_ACconf",     "q_perm",
                           "q_Aperm",   "z3",           "q_TS3conf",
                           "q_A3perm_R", "q_Swx3perm_R", "q_rats"};

void PrintAgreementTable() {
  bench::PrintHeader(
      "E7a: PTIME solver vs exact oracle (agreement)",
      "20 random databases per family; the dispatcher's answer must equal "
      "the exact branch-and-bound, and its contingency set must falsify "
      "the query.");
  std::printf("%-14s %-18s %8s %8s\n", "family", "solver used", "trials",
              "status");
  for (const char* name : kFamilies) {
    Query q = MustParseQuery(FindCatalogEntry(name)->text);
    Rng rng(0xFEED ^ std::hash<std::string>()(name));
    int trials = 0;
    bool ok = true;
    const char* solver = "-";
    for (int t = 0; t < 20; ++t) {
      Database db = bench::RandomDatabase(q, 5, 12, rng);
      ResilienceResult fast = ComputeResilience(q, db);
      ResilienceResult exact = ComputeResilienceExact(q, db);
      if (fast.unbreakable != exact.unbreakable ||
          (!exact.unbreakable && fast.resilience != exact.resilience)) {
        ok = false;
      }
      if (!fast.unbreakable && fast.resilience > 0) {
        solver = SolverKindName(fast.solver);
        if (!VerifyContingency(q, db, fast.contingency)) ok = false;
      }
      ++trials;
    }
    std::printf("%-14s %-18s %8d %8s\n", name, solver, trials,
                ok ? "ok" : "MISMATCH");
  }
}

void PrintScalingTable() {
  bench::PrintHeader(
      "E7b: who wins, by what factor",
      "Wall-clock (microseconds, single run) of the dispatcher's PTIME "
      "construction vs the exact solver as tuples grow. The shape to "
      "reproduce: flow stays flat-polynomial, exact explodes.");
  std::printf("%-14s %8s %14s %14s %10s\n", "family", "tuples",
              "ptime (us)", "exact (us)", "factor");
  using Clock = std::chrono::steady_clock;
  for (const char* name : {"q_ACconf", "q_Aperm", "q_A3perm_R"}) {
    Query q = MustParseQuery(FindCatalogEntry(name)->text);
    for (int tuples : {50, 200, 800, 3200}) {
      Rng rng(0xABC ^ static_cast<uint64_t>(tuples));
      Database db = bench::RandomDatabase(q, tuples / 4, tuples, rng);
      auto t0 = Clock::now();
      ResilienceResult fast = ComputeResilience(q, db);
      auto t1 = Clock::now();
      double fast_us =
          std::chrono::duration<double, std::micro>(t1 - t0).count();
      if (tuples > 200) {
        // The exact branch-and-bound is no longer affordable here; the
        // flow construction keeps scaling — that is the dichotomy's
        // practical payoff.
        std::printf("%-14s %8d %14.1f %14s %10s\n", name, tuples, fast_us,
                    "(skipped)", "-");
        continue;
      }
      ResilienceResult exact = ComputeResilienceExact(q, db);
      auto t2 = Clock::now();
      double exact_us =
          std::chrono::duration<double, std::micro>(t2 - t1).count();
      std::printf("%-14s %8d %14.1f %14.1f %9.1fx%s\n", name, tuples,
                  fast_us, exact_us, exact_us / fast_us,
                  fast.resilience == exact.resilience ? "" : "  MISMATCH");
    }
  }
}

void BM_PtimeSolver(benchmark::State& state, const char* name) {
  Query q = MustParseQuery(FindCatalogEntry(name)->text);
  int tuples = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(tuples) * 31 + 7);
  Database db = bench::RandomDatabase(q, std::max(3, tuples / 3), tuples, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeResilience(q, db));
  }
}
BENCHMARK_CAPTURE(BM_PtimeSolver, qACconf, "q_ACconf")
    ->Arg(30)->Arg(100)->Arg(300);
BENCHMARK_CAPTURE(BM_PtimeSolver, qAperm, "q_Aperm")
    ->Arg(30)->Arg(100)->Arg(300);
BENCHMARK_CAPTURE(BM_PtimeSolver, z3, "z3")->Arg(30)->Arg(100)->Arg(300);
BENCHMARK_CAPTURE(BM_PtimeSolver, qTS3conf, "q_TS3conf")
    ->Arg(30)->Arg(100);
BENCHMARK_CAPTURE(BM_PtimeSolver, qA3permR, "q_A3perm_R")
    ->Arg(30)->Arg(100)->Arg(300);

void BM_ExactOracle(benchmark::State& state, const char* name) {
  Query q = MustParseQuery(FindCatalogEntry(name)->text);
  int tuples = static_cast<int>(state.range(0));
  Rng rng(static_cast<uint64_t>(tuples) * 31 + 7);
  Database db = bench::RandomDatabase(q, std::max(3, tuples / 3), tuples, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeResilienceExact(q, db));
  }
}
BENCHMARK_CAPTURE(BM_ExactOracle, qACconf, "q_ACconf")->Arg(30)->Arg(100);
BENCHMARK_CAPTURE(BM_ExactOracle, qAperm, "q_Aperm")->Arg(30)->Arg(100);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintAgreementTable();
  rescq::PrintScalingTable();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
