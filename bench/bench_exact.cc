// E-exact: the overhauled exact path (streaming witnesses, connected
// components, max-flow lower bound) against the seed branch-and-bound it
// replaced, on the hitting-set families the vc_er / vc_grid workload
// scenarios produce. The artifact table reports per-size wall times for
// both solvers, agreement of the optima, and the new solver's search
// counters; the timing series then benchmarks both on fixed instances.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "bench_util.h"
#include "cq/parser.h"
#include "db/witness.h"
#include "resilience/exact_solver.h"
#include "workload/generators.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

// ---------------------------------------------------------------------------
// Seed baseline: a faithful copy of the pre-overhaul SolveMinHittingSet —
// one global branch-and-bound (no component split), greedy packing lower
// bound only, and the specialized vertex-cover search with the greedy
// maximal-matching bound. Kept here so the benchmark measures the real
// before/after, not a strawman.
// ---------------------------------------------------------------------------
namespace seedbb {

struct Solver {
  std::vector<std::vector<int>> sets;
  std::vector<std::vector<int>> element_sets;
  int num_elements = 0;

  std::vector<int> hit_count;
  std::vector<bool> chosen;
  std::vector<int> current;
  std::vector<int> best;
  int best_size = 0;
  uint64_t nodes = 0;

  void Init(const std::vector<std::vector<int>>& input) {
    std::vector<std::vector<int>> uniq;
    {
      std::set<std::vector<int>> seen;
      for (const std::vector<int>& s : input) {
        std::vector<int> sorted = s;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
        if (seen.insert(sorted).second) uniq.push_back(std::move(sorted));
      }
    }
    std::sort(uniq.begin(), uniq.end(),
              [](const std::vector<int>& a, const std::vector<int>& b) {
                return a.size() < b.size();
              });
    for (const std::vector<int>& s : uniq) {
      bool has_subset = false;
      for (const std::vector<int>& t : sets) {
        if (t.size() >= s.size()) continue;
        if (std::includes(s.begin(), s.end(), t.begin(), t.end())) {
          has_subset = true;
          break;
        }
      }
      if (!has_subset) sets.push_back(s);
    }
    for (const std::vector<int>& s : sets) {
      for (int e : s) num_elements = std::max(num_elements, e + 1);
    }
    element_sets.resize(static_cast<size_t>(num_elements));
    for (size_t i = 0; i < sets.size(); ++i) {
      for (int e : sets[i]) {
        element_sets[static_cast<size_t>(e)].push_back(static_cast<int>(i));
      }
    }
    hit_count.assign(sets.size(), 0);
    chosen.assign(static_cast<size_t>(num_elements), false);
  }

  void Choose(int e) {
    chosen[static_cast<size_t>(e)] = true;
    current.push_back(e);
    for (int s : element_sets[static_cast<size_t>(e)]) {
      ++hit_count[static_cast<size_t>(s)];
    }
  }

  void Unchoose(int e) {
    chosen[static_cast<size_t>(e)] = false;
    current.pop_back();
    for (int s : element_sets[static_cast<size_t>(e)]) {
      --hit_count[static_cast<size_t>(s)];
    }
  }

  void GreedyUpperBound() {
    std::vector<bool> open(sets.size(), true);
    size_t open_count = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      open[i] = hit_count[i] == 0;
      open_count += open[i] ? 1 : 0;
    }
    std::vector<int> greedy = current;
    std::vector<int> freq(static_cast<size_t>(num_elements), 0);
    while (open_count > 0) {
      std::fill(freq.begin(), freq.end(), 0);
      for (size_t i = 0; i < sets.size(); ++i) {
        if (!open[i]) continue;
        for (int e : sets[i]) ++freq[static_cast<size_t>(e)];
      }
      int best_e = 0;
      for (int e = 1; e < num_elements; ++e) {
        if (freq[static_cast<size_t>(e)] > freq[static_cast<size_t>(best_e)]) {
          best_e = e;
        }
      }
      greedy.push_back(best_e);
      for (int s : element_sets[static_cast<size_t>(best_e)]) {
        if (open[static_cast<size_t>(s)]) {
          open[static_cast<size_t>(s)] = false;
          --open_count;
        }
      }
    }
    if (best.empty() || static_cast<int>(greedy.size()) < best_size) {
      best = greedy;
      best_size = static_cast<int>(greedy.size());
    }
  }

  int PackingLowerBound() {
    int packed = 0;
    std::vector<bool> used(static_cast<size_t>(num_elements), false);
    for (const std::vector<int>& s : sets) {
      bool open = true;
      bool disjoint = true;
      for (int e : s) {
        if (chosen[static_cast<size_t>(e)]) {
          open = false;
          break;
        }
        if (used[static_cast<size_t>(e)]) disjoint = false;
      }
      if (!open || !disjoint) continue;
      ++packed;
      for (int e : s) used[static_cast<size_t>(e)] = true;
    }
    return packed;
  }

  int PickBranchSet() {
    int best_set = -1;
    size_t best_sz = ~size_t{0};
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hit_count[i] > 0) continue;
      if (sets[i].size() < best_sz) {
        best_sz = sets[i].size();
        best_set = static_cast<int>(i);
        if (best_sz == 1) break;
      }
    }
    return best_set;
  }

  void Search() {
    ++nodes;
    int branch_set = PickBranchSet();
    if (branch_set < 0) {
      if (static_cast<int>(current.size()) < best_size) {
        best = current;
        best_size = static_cast<int>(current.size());
      }
      return;
    }
    int lb = PackingLowerBound();
    if (static_cast<int>(current.size()) + lb >= best_size) return;

    std::vector<int> elems = sets[static_cast<size_t>(branch_set)];
    std::sort(elems.begin(), elems.end(), [&](int a, int b) {
      return element_sets[static_cast<size_t>(a)].size() >
             element_sets[static_cast<size_t>(b)].size();
    });
    for (int e : elems) {
      Choose(e);
      Search();
      Unchoose(e);
    }
  }
};

struct VcSolver {
  std::vector<std::set<int>> adj;
  std::vector<int> cover;
  std::vector<int> best;
  size_t best_size = ~size_t{0};
  uint64_t nodes = 0;

  void TakeVertex(int v) {
    cover.push_back(v);
    std::set<int> neighbors = adj[static_cast<size_t>(v)];
    for (int u : neighbors) {
      adj[static_cast<size_t>(u)].erase(v);
    }
    adj[static_cast<size_t>(v)].clear();
  }

  void Reduce() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t v = 0; v < adj.size(); ++v) {
        if (adj[v].size() == 1) {
          TakeVertex(*adj[v].begin());
          changed = true;
        }
      }
    }
  }

  size_t MatchingLowerBound() const {
    std::vector<bool> used(adj.size(), false);
    size_t matching = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (used[v]) continue;
      for (int u : adj[v]) {
        if (!used[static_cast<size_t>(u)]) {
          used[v] = true;
          used[static_cast<size_t>(u)] = true;
          ++matching;
          break;
        }
      }
    }
    return matching;
  }

  void Search() {
    ++nodes;
    Reduce();
    int branch = -1;
    size_t max_deg = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (adj[v].size() > max_deg) {
        max_deg = adj[v].size();
        branch = static_cast<int>(v);
      }
    }
    if (branch < 0) {
      if (cover.size() < best_size) {
        best = cover;
        best_size = cover.size();
      }
      return;
    }
    if (cover.size() + MatchingLowerBound() >= best_size) return;

    std::vector<std::set<int>> saved_adj = adj;
    size_t saved_cover = cover.size();
    TakeVertex(branch);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
    std::set<int> neighbors = adj[static_cast<size_t>(branch)];
    for (int u : neighbors) TakeVertex(u);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
  }
};

struct Result {
  int size = 0;
  uint64_t nodes = 0;
};

Result SolveAsVertexCover(const std::vector<std::vector<int>>& sets,
                          int num_elements) {
  std::vector<bool> forced(static_cast<size_t>(num_elements), false);
  for (const std::vector<int>& s : sets) {
    if (s.size() == 1) forced[static_cast<size_t>(s[0])] = true;
  }
  VcSolver vc;
  vc.adj.resize(static_cast<size_t>(num_elements));
  for (const std::vector<int>& s : sets) {
    if (s.size() != 2) continue;
    if (forced[static_cast<size_t>(s[0])] ||
        forced[static_cast<size_t>(s[1])]) {
      continue;
    }
    vc.adj[static_cast<size_t>(s[0])].insert(s[1]);
    vc.adj[static_cast<size_t>(s[1])].insert(s[0]);
  }
  vc.Search();
  Result result;
  result.size = static_cast<int>(vc.best.size());
  result.nodes = vc.nodes;
  for (int e = 0; e < num_elements; ++e) {
    if (forced[static_cast<size_t>(e)]) ++result.size;
  }
  return result;
}

Result SolveMinHittingSet(const std::vector<std::vector<int>>& sets) {
  Result result;
  if (sets.empty()) return result;
  Solver solver;
  solver.Init(sets);
  bool all_small = true;
  for (const std::vector<int>& s : solver.sets) {
    all_small = all_small && s.size() <= 2;
  }
  if (all_small) return SolveAsVertexCover(solver.sets, solver.num_elements);
  solver.best_size = 1 << 30;
  solver.GreedyUpperBound();
  solver.Search();
  result.size = solver.best_size;
  result.nodes = solver.nodes;
  return result;
}

}  // namespace seedbb

// ---------------------------------------------------------------------------

// The hitting-set family of one scenario instance, as dense element ids.
std::vector<std::vector<int>> ScenarioHittingSets(const char* scenario_name,
                                                  int size, uint64_t seed) {
  const Scenario* scenario = FindScenario(scenario_name);
  if (scenario == nullptr) return {};
  ScenarioParams params;
  params.size = size;
  params.seed = seed;
  Database db = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  std::vector<std::vector<TupleId>> families = WitnessTupleSets(q, db);
  std::map<TupleId, int> ids;
  std::vector<std::vector<int>> sets;
  for (const std::vector<TupleId>& w : families) {
    if (w.empty()) continue;
    std::vector<int> s;
    for (TupleId t : w) {
      auto [it, inserted] = ids.emplace(t, static_cast<int>(ids.size()));
      s.push_back(it->second);
    }
    sets.push_back(std::move(s));
  }
  return sets;
}

// Best-of-N: the solvers are deterministic, so the minimum is the
// noise-free statistic. A single run when the solve is slow (the CI
// smoke run must stay bounded).
double BestMs(const std::function<void()>& fn) {
  auto once = [&] {
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  double best = once();
  if (best < 100.0) {
    for (int r = 0; r < 8; ++r) best = std::min(best, once());
  }
  return best;
}

void PrintComparison() {
  bench::PrintHeader(
      "E-exact: component-split + flow-bound solver vs the seed "
      "branch-and-bound",
      "Minimum hitting set over the witness families of the vc_er and "
      "vc_grid scenarios (q_vc; Proposition 9 territory). 'seed' is the "
      "pre-overhaul global branch-and-bound with the greedy packing / "
      "matching bounds; 'new' splits connected components and adds the "
      "fractional-matching max-flow bound. Both return the optimum; the "
      "speedup column is seed/new median wall time.");
  struct Case {
    const char* scenario;
    int size;
  };
  const Case cases[] = {
      {"vc_er", 16},   {"vc_er", 20},   {"vc_er", 24},   {"vc_er", 26},
      {"vc_grid", 25}, {"vc_grid", 49}, {"vc_grid", 64}, {"vc_grid", 81},
  };
  std::printf("%-9s %5s %6s %6s | %12s %12s %8s | %10s %10s\n", "scenario",
              "size", "sets", "rho", "seed_ms", "new_ms", "speedup",
              "seed_nodes", "new_nodes");
  for (const Case& c : cases) {
    std::vector<std::vector<int>> sets =
        ScenarioHittingSets(c.scenario, c.size, /*seed=*/1);
    seedbb::Result seed_result;
    double seed_ms =
        BestMs([&] { seed_result = seedbb::SolveMinHittingSet(sets); });
    HittingSetResult new_result;
    ExactStats stats;
    double new_ms = BestMs([&] {
      stats = ExactStats{};
      new_result = SolveMinHittingSet(sets, ExactOptions{}, &stats);
    });
    const char* agree = seed_result.size == new_result.size ? "" : "  DISAGREE";
    std::printf(
        "%-9s %5d %6zu %6d | %12.3f %12.3f %7.1fx | %10llu %10llu%s\n",
        c.scenario, c.size, sets.size(), new_result.size, seed_ms, new_ms,
        new_ms > 0 ? seed_ms / new_ms : 0.0,
        static_cast<unsigned long long>(seed_result.nodes),
        static_cast<unsigned long long>(stats.nodes), agree);
  }
}

void BM_SeedHittingSet(benchmark::State& state, const char* scenario) {
  std::vector<std::vector<int>> sets =
      ScenarioHittingSets(scenario, static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(seedbb::SolveMinHittingSet(sets));
  }
}

void BM_ComponentFlowHittingSet(benchmark::State& state,
                                const char* scenario) {
  std::vector<std::vector<int>> sets =
      ScenarioHittingSets(scenario, static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveMinHittingSet(sets));
  }
}

BENCHMARK_CAPTURE(BM_SeedHittingSet, vc_er, "vc_er")
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ComponentFlowHittingSet, vc_er, "vc_er")
    ->Arg(16)
    ->Arg(20)
    ->Arg(24)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_SeedHittingSet, vc_grid, "vc_grid")
    ->Arg(25)
    ->Arg(49)
    ->Arg(81)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ComponentFlowHittingSet, vc_grid, "vc_grid")
    ->Arg(25)
    ->Arg(49)
    ->Arg(81)
    ->Unit(benchmark::kMicrosecond);

// End to end: streaming witness collection + the new solver, the path
// `rescq batch` pays for every exact cell.
void BM_ExactResilienceEndToEnd(benchmark::State& state,
                                const char* scenario_name) {
  const Scenario* scenario = FindScenario(scenario_name);
  ScenarioParams params;
  params.size = static_cast<int>(state.range(0));
  params.seed = 1;
  Database db = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeResilienceExact(q, db));
  }
}

BENCHMARK_CAPTURE(BM_ExactResilienceEndToEnd, vc_er, "vc_er")
    ->Arg(16)
    ->Arg(20)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_ExactResilienceEndToEnd, vc_grid, "vc_grid")
    ->Arg(49)
    ->Arg(81)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintComparison();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
