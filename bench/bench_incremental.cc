// E-incremental: IncrementalSession epochs against from-scratch
// ComputeResilienceExact recomputation, on the vc_er / perm workloads
// under the churn generators. The artifact table reports, per (workload,
// churn rate), the steady-state per-epoch wall times of both paths, the
// speedup, and agreement of every epoch's answer (a DISAGREE row fails
// the CI smoke run); the timing series then benchmarks one epoch of each
// path on fixed configurations.
//
// The acceptance bar this binary demonstrates: at <= 5% churn each of
// the vc_er and perm workloads has an update stream whose incremental
// epochs run >= 5x faster than from-scratch recompute (vc_er on the
// skewed hub stream, perm on the uniform mixed stream; at 1% churn
// every stream on both workloads clears 5x). Epoch 0 (the initial full
// build) is excluded — it *is* a from-scratch computation.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cq/parser.h"
#include "db/delta.h"
#include "resilience/exact_solver.h"
#include "resilience/incremental.h"
#include "workload/churn.h"
#include "workload/generators.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct WorkloadConfig {
  const char* name;
  const char* scenario;  // ScenarioCatalog entry
  int size;
  double density;
};

// Sparse ER (average degree ~0.9) is the serving-shaped instance: many
// small components, churn touches few of them, and the proof cache
// answers the rest.
const WorkloadConfig kWorkloads[] = {
    {"vc_er", "vc_er", 1200, 0.00075},
    {"perm", "perm", 300, 0.5},
};

// The uniform coin-flip stream and the skewed stream that hammers the
// most frequent constant — the latter is the serving-shaped load
// (power-law traffic) where churn locality pays off most.
const char* kChurnKinds[] = {"mixed", "hub"};
const double kRates[] = {0.01, 0.05, 0.20};
constexpr int kEpochs = 24;

struct SweepResult {
  double inc_ms = 0;      // avg incremental epoch
  double scratch_ms = 0;  // avg from-scratch recompute
  int epochs = 0;
  bool agree = true;
};

SweepResult RunSweep(const WorkloadConfig& w, const char* kind, double rate,
                     uint64_t seed) {
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = seed;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);

  ChurnParams churn;
  churn.epochs = kEpochs;
  churn.rate = rate;
  churn.seed = seed + 17;
  UpdateLog log = GenerateChurn(base, kind, churn);

  SweepResult result;
  IncrementalSession session(q, base, EngineOptions{});
  // The from-scratch competitor maintains its own database mirror: both
  // sides pay for applying the epoch's updates, and only the
  // maintain-vs-recompute difference is measured.
  Database mirror = base;
  for (const Epoch& epoch : log.epochs) {
    Clock::time_point t0 = Clock::now();
    EpochOutcome out = session.Apply(epoch);
    result.inc_ms += MsSince(t0);

    Clock::time_point t1 = Clock::now();
    ApplyEpoch(epoch, &mirror);
    ResilienceResult scratch = ComputeResilienceExact(q, mirror);
    result.scratch_ms += MsSince(t1);

    ++result.epochs;
    if (out.unbreakable != scratch.unbreakable ||
        (!out.unbreakable && out.resilience != scratch.resilience)) {
      result.agree = false;
    }
  }
  result.inc_ms /= result.epochs;
  result.scratch_ms /= result.epochs;
  return result;
}

}  // namespace

void PrintArtifactTable() {
  bench::PrintHeader(
      "incremental epochs vs from-scratch recompute",
      "Per-epoch wall time of IncrementalSession::Apply against applying\n"
      "the same epoch to a mirror database and recomputing with\n"
      "ComputeResilienceExact (steady state, epoch 0 excluded — both\n"
      "sides pay for update application). The agree column compares\n"
      "every epoch's resilience; a disagreement row is a correctness\n"
      "bug and fails the CI smoke run.");
  std::printf("%-8s %-6s %6s %7s %12s %12s %9s %9s\n", "workload", "churn",
              "rate", "epochs", "inc ms/ep", "scratch ms", "speedup",
              "agree");
  for (const WorkloadConfig& w : kWorkloads) {
    for (const char* kind : kChurnKinds) {
      for (double rate : kRates) {
        SweepResult r = RunSweep(w, kind, rate, 1);
        std::printf("%-8s %-6s %5.0f%% %7d %12.3f %12.3f %8.1fx %9s\n",
                    w.name, kind, rate * 100, r.epochs, r.inc_ms,
                    r.scratch_ms, r.inc_ms > 0 ? r.scratch_ms / r.inc_ms : 0.0,
                    r.agree ? "yes" : "DISAGREE");
      }
    }
  }
  std::printf("\n");
}

namespace {

// --- timing series ----------------------------------------------------------

// One incremental epoch, cycling through a pre-generated churn log (the
// session keeps evolving; the log is long enough that steady state
// dominates).
void BM_IncrementalEpoch(benchmark::State& state) {
  const WorkloadConfig& w = kWorkloads[static_cast<size_t>(state.range(0))];
  const double rate = state.range(1) / 100.0;
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = 1;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  ChurnParams churn;
  churn.epochs = 512;
  churn.rate = rate;
  churn.seed = 18;
  UpdateLog log = GenerateChurn(base, "mixed", churn);

  IncrementalSession session(q, base, EngineOptions{});
  size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Apply(log.epochs[next]).resilience);
    next = (next + 1) % log.epochs.size();
  }
}
BENCHMARK(BM_IncrementalEpoch)
    ->ArgsProduct({{0, 1}, {1, 5, 20}})
    ->Unit(benchmark::kMicrosecond);

// The from-scratch baseline on the same base instance (static database:
// the cost being measured is the full enumerate + solve pipeline).
void BM_FromScratchRecompute(benchmark::State& state) {
  const WorkloadConfig& w = kWorkloads[static_cast<size_t>(state.range(0))];
  const Scenario* scenario = FindScenario(w.scenario);
  ScenarioParams params;
  params.size = w.size;
  params.density = w.density;
  params.seed = 1;
  Database db = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeResilienceExact(q, db).resilience);
  }
}
BENCHMARK(BM_FromScratchRecompute)
    ->ArgsProduct({{0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::PrintArtifactTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
