// E-obs: observability overhead. The artifact table answers one
// question: what do the metrics registry and the solve tracer cost when
// off (the default every solve pays) and when armed? Three probes: the
// raw helper (obs::Count in a tight loop), the component-parallel exact
// solve, and hub-churn incremental epochs — each timed dark
// (instrumentation off), with metrics on, and with metrics + tracing
// on. The contract (docs/OBSERVABILITY.md) is that the armed
// end-to-end paths stay within RESCQ_OBS_MAX_OVERHEAD of dark; with
// RESCQ_BENCH_OBS_ENFORCE=1 in the environment (the release-bench CI
// job) a violation fails the run. Set RESCQ_BENCH_SNAPSHOT=<path> to
// write the machine-readable JSON (BENCH_observability.json in the repo
// root is a checked-in run).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "cq/parser.h"
#include "db/witness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/exact_solver.h"
#include "resilience/incremental.h"
#include "workload/churn.h"
#include "workload/scenario.h"

namespace rescq {
namespace {

// The armed end-to-end paths must stay within this factor of the dark
// run. Generous against CI timer noise; the measured ratios on an idle
// host sit well under 1.1.
constexpr double kMaxOverheadRatio = 1.30;

double BestMs(const std::function<void()>& fn) {
  auto once = [&] {
    auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  double best = once();
  if (best < 200.0) {
    for (int r = 0; r < 4; ++r) best = std::min(best, once());
  }
  return best;
}

struct ObsRow {
  std::string workload;
  double dark_ms = 0;     // instrumentation off
  double metrics_ms = 0;  // metrics registry armed
  double full_ms = 0;     // metrics + tracing armed
  bool enforced = true;   // participates in the overhead bound

  double MetricsRatio() const {
    return dark_ms > 0 ? metrics_ms / dark_ms : 1.0;
  }
  double FullRatio() const { return dark_ms > 0 ? full_ms / dark_ms : 1.0; }
};

std::vector<ObsRow> g_rows;

// Runs `fn` dark / metrics / metrics+trace and appends the row. Every
// probe leaves the process back in the dark default.
void Measure(const std::string& workload, bool enforced,
             const std::function<void()>& fn) {
  ObsRow row;
  row.workload = workload;
  row.enforced = enforced;

  obs::SetMetricsEnabled(false);
  row.dark_ms = BestMs(fn);

  obs::SetMetricsEnabled(true);
  obs::GlobalRegistry().Reset();
  row.metrics_ms = BestMs(fn);

  obs::StartTrace();
  row.full_ms = BestMs(fn);
  obs::StopTrace();
  obs::SetMetricsEnabled(false);

  g_rows.push_back(row);
  std::printf("%-22s | %10.3f %10.3f %10.3f | %6.3fx %6.3fx%s\n",
              row.workload.c_str(), row.dark_ms, row.metrics_ms, row.full_ms,
              row.MetricsRatio(), row.FullRatio(),
              row.enforced ? "" : "  (informational)");
}

// --- Probes -----------------------------------------------------------------

// Raw helper cost: 8M disabled Count() calls — the price every
// uninstrumented solve pays — versus the same loop armed. The armed
// loop is a worst case (nothing but atomic adds), so it is reported but
// not held to the end-to-end bound.
void ProbeRawHelpers() {
  constexpr int kCalls = 8'000'000;
  Measure("count-loop-8M", /*enforced=*/false, [&] {
    for (int i = 0; i < kCalls; ++i) obs::Count("bench.obs.raw");
  });
}

std::vector<std::vector<int>> SolveFamily() {
  // Element-disjoint copies of the vc_er scenario family — the same
  // multi-component shape bench_parallel scales over.
  const Scenario* scenario = FindScenario("vc_er");
  std::vector<std::vector<int>> sets;
  int offset = 0;
  for (int c = 0; c < 6; ++c) {
    ScenarioParams params;
    params.size = 20;
    params.seed = static_cast<uint64_t>(c) + 1;
    Database db = scenario->generate(params);
    Query q = MustParseQuery(scenario->query);
    std::map<TupleId, int> ids;
    for (const std::vector<TupleId>& w : WitnessTupleSets(q, db)) {
      if (w.empty()) continue;
      std::vector<int> s;
      for (TupleId t : w) {
        auto [it, inserted] = ids.emplace(t, static_cast<int>(ids.size()));
        s.push_back(offset + it->second);
      }
      sets.push_back(std::move(s));
    }
    offset += static_cast<int>(ids.size());
  }
  return sets;
}

void ProbeExactSolve() {
  std::vector<std::vector<int>> sets = SolveFamily();
  for (int threads : {1, 4}) {
    ExactOptions options;
    options.solver_threads = threads;
    Measure("exact-solve-t" + std::to_string(threads), /*enforced=*/true, [&] {
      ExactStats stats;
      benchmark::DoNotOptimize(SolveMinHittingSet(sets, options, &stats));
    });
  }
}

void ProbeIncrementalEpochs() {
  const Scenario* scenario = FindScenario("triad");
  ScenarioParams params;
  params.size = 8;
  params.seed = 3;
  Database base = scenario->generate(params);
  Query q = MustParseQuery(scenario->query);
  ChurnParams churn;
  churn.epochs = 6;
  churn.rate = 0.25;
  churn.seed = 5;
  UpdateLog log = GenerateChurn(base, "hub", churn);
  Measure("hub-churn-epochs", /*enforced=*/true, [&] {
    IncrementalSession session(q, base, EngineOptions{});
    for (const Epoch& e : log.epochs) {
      benchmark::DoNotOptimize(session.Apply(e));
    }
  });
}

// --- Snapshot + enforcement -------------------------------------------------

void WriteSnapshot(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_obs: cannot write snapshot %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"schema\": \"rescq-bench-obs/v1\",\n");
  std::fprintf(f, "  \"max_overhead_ratio\": %.2f,\n", kMaxOverheadRatio);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < g_rows.size(); ++i) {
    const ObsRow& r = g_rows[i];
    std::fprintf(f,
                 "    { \"workload\": \"%s\", \"dark_ms\": %.3f, "
                 "\"metrics_ms\": %.3f, \"full_ms\": %.3f, "
                 "\"metrics_ratio\": %.3f, \"full_ratio\": %.3f, "
                 "\"enforced\": %s }%s\n",
                 r.workload.c_str(), r.dark_ms, r.metrics_ms, r.full_ms,
                 r.MetricsRatio(), r.FullRatio(),
                 r.enforced ? "true" : "false",
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nsnapshot written: %s\n", path);
}

int CheckOverheadBound() {
  int violations = 0;
  for (const ObsRow& r : g_rows) {
    if (!r.enforced) continue;
    if (r.FullRatio() > kMaxOverheadRatio) {
      std::fprintf(stderr,
                   "bench_obs: %s armed overhead %.3fx exceeds the %.2fx "
                   "bound\n",
                   r.workload.c_str(), r.FullRatio(), kMaxOverheadRatio);
      ++violations;
    }
  }
  return violations;
}

// --- Timing series ----------------------------------------------------------

void BM_CountDisabled(benchmark::State& state) {
  obs::SetMetricsEnabled(false);
  for (auto _ : state) obs::Count("bench.obs.bm");
}
BENCHMARK(BM_CountDisabled);

void BM_CountEnabled(benchmark::State& state) {
  obs::SetMetricsEnabled(true);
  for (auto _ : state) obs::Count("bench.obs.bm");
  obs::SetMetricsEnabled(false);
  obs::GlobalRegistry().Reset();
}
BENCHMARK(BM_CountEnabled);

void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) obs::Span span("bench", "obs");
}
BENCHMARK(BM_SpanDisabled);

}  // namespace
}  // namespace rescq

int main(int argc, char** argv) {
  rescq::bench::PrintHeader(
      "E-obs: observability overhead, dark vs metrics vs metrics+trace",
      "Each workload is timed with instrumentation off (dark), with the "
      "metrics registry armed, and with metrics + Chrome tracing armed. "
      "The armed end-to-end rows must stay within the printed bound of "
      "dark; the raw helper loop is a worst case reported for context.");
  std::printf("overhead bound: %.2fx (enforced with RESCQ_BENCH_OBS_ENFORCE=1)"
              "\n\n",
              rescq::kMaxOverheadRatio);
  std::printf("%-22s | %10s %10s %10s | %6s %6s\n", "workload", "dark_ms",
              "metrics_ms", "full_ms", "xmet", "xfull");
  rescq::ProbeRawHelpers();
  rescq::ProbeExactSolve();
  rescq::ProbeIncrementalEpochs();
  if (const char* path = std::getenv("RESCQ_BENCH_SNAPSHOT")) {
    rescq::WriteSnapshot(path);
  }
  int violations = rescq::CheckOverheadBound();
  if (violations > 0 && std::getenv("RESCQ_BENCH_OBS_ENFORCE") != nullptr) {
    return 1;
  }
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
