#ifndef RESCQ_BENCH_BENCH_UTIL_H_
#define RESCQ_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark binaries: each binary prints the
// paper-artifact tables on stdout first, then runs its google-benchmark
// timing series.

#include <cstdio>

#include "cq/query.h"
#include "db/database.h"
#include "util/rng.h"

namespace rescq::bench {

/// Fills db with `tuples_per_relation` random tuples per query relation
/// over `domain` constants (deterministic in rng).
inline Database RandomDatabase(const Query& q, int domain,
                               int tuples_per_relation, Rng& rng) {
  Database db;
  std::vector<Value> dom;
  for (int i = 0; i < domain; ++i) dom.push_back(db.InternIndexed("c", i));
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < tuples_per_relation; ++t) {
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("\n==== %s ====\n%s\n\n", experiment, description);
}

}  // namespace rescq::bench

#endif  // RESCQ_BENCH_BENCH_UTIL_H_
