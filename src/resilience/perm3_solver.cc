#include "resilience/perm3_solver.h"

#include <algorithm>
#include <map>
#include <set>

#include "db/witness.h"
#include "flow/max_flow.h"
#include "util/check.h"

namespace rescq {

namespace {

struct Perm3Shape {
  std::string r;       // self-join relation
  bool r_swapped;      // read R columns swapped to canonical orientation
  int l_atom;          // the L atom index
  bool l_unary;        // A(x) vs S(w,x)
  int l_x_pos;         // column of x within L
};

// Matches q against A(x),R(x,y),R(y,z),R(z,y) / S(w,x),R(...) modulo
// variable names, relation names, and a global column swap of R.
std::optional<Perm3Shape> MatchPerm3(const Query& q) {
  if (q.num_atoms() != 4) return std::nullopt;
  if (!q.EndogenousAtoms().empty() &&
      q.EndogenousAtoms().size() != static_cast<size_t>(4)) {
    return std::nullopt;  // all four atoms must be endogenous
  }
  // Identify the self-join relation: exactly 3 atoms of one relation.
  std::map<std::string, std::vector<int>> by_rel;
  for (int i = 0; i < 4; ++i) by_rel[q.atom(i).relation].push_back(i);
  std::string r;
  int l_atom = -1;
  for (const auto& [rel, atoms] : by_rel) {
    if (atoms.size() == 3) {
      r = rel;
    } else if (atoms.size() == 1) {
      l_atom = atoms[0];
    } else {
      return std::nullopt;
    }
  }
  if (r.empty() || l_atom < 0) return std::nullopt;
  if (q.RelationArity(r) != 2) return std::nullopt;
  const Atom& l = q.atom(l_atom);
  if (l.arity() > 2 || l.HasRepeatedVar()) return std::nullopt;

  std::vector<int> r_atoms = by_rel[r];
  for (bool swapped : {false, true}) {
    auto col = [&](int atom, int c) {
      return q.atom(atom).vars[static_cast<size_t>(swapped ? 1 - c : c)];
    };
    // Try each R-atom as the connector R(x,y).
    std::sort(r_atoms.begin(), r_atoms.end());
    do {
      int conn = r_atoms[0], p1 = r_atoms[1], p2 = r_atoms[2];
      VarId x = col(conn, 0), y = col(conn, 1);
      VarId y1 = col(p1, 0), z1 = col(p1, 1);
      if (!(y1 == y && col(p2, 0) == z1 && col(p2, 1) == y)) continue;
      VarId z = z1;
      if (x == y || x == z || y == z) continue;
      // L must contain x and otherwise a fresh variable.
      int x_pos = -1;
      bool fresh_ok = true;
      for (int c = 0; c < l.arity(); ++c) {
        VarId v = l.vars[static_cast<size_t>(c)];
        if (v == x) {
          x_pos = c;
        } else if (v == y || v == z) {
          fresh_ok = false;
        }
      }
      if (x_pos < 0 || !fresh_ok) continue;
      return Perm3Shape{r, swapped, l_atom, l.arity() == 1, x_pos};
    } while (std::next_permutation(r_atoms.begin(), r_atoms.end()));
  }
  return std::nullopt;
}

}  // namespace

std::optional<ResilienceResult> SolvePerm3Flow(const Query& q,
                                               const Database& db) {
  std::optional<Perm3Shape> shape = MatchPerm3(q);
  if (!shape.has_value()) return std::nullopt;
  ResilienceResult result;
  result.solver = SolverKind::kPerm3Flow;
  if (!QueryHolds(q, db)) return result;

  int r_rel = db.RelationId(shape->r);
  int l_rel = db.RelationId(q.atom(shape->l_atom).relation);
  RESCQ_CHECK(r_rel >= 0 && l_rel >= 0);

  // Canonical read of an R tuple (column swap applied).
  auto r_row = [&](TupleId id) {
    const std::vector<Value>& row = db.Row(id);
    return shape->r_swapped ? std::make_pair(row[1], row[0])
                            : std::make_pair(row[0], row[1]);
  };
  std::map<std::pair<Value, Value>, TupleId> r_tuples;
  for (TupleId id : db.ActiveTuples(r_rel)) r_tuples[r_row(id)] = id;

  // Classify: 2-way pairs {a,b} with a<=b (loops included) vs 1-way.
  std::set<std::pair<Value, Value>> pairs;
  std::vector<TupleId> one_way;
  for (const auto& [ab, id] : r_tuples) {
    auto [a, b] = ab;
    if (r_tuples.count({b, a})) {
      pairs.insert({std::min(a, b), std::max(a, b)});
    } else {
      one_way.push_back(id);
    }
  }

  MaxFlow flow(2);
  const int s = 0;
  const int t = 1;
  // Tag space: 0..N-1 index tuple tags, N.. index pair tags.
  std::vector<TupleId> tuple_tags;
  std::vector<std::pair<Value, Value>> pair_tags;
  constexpr int64_t kPairBase = 1'000'000'000;

  std::map<Value, int> v_nodes;  // value a -> v_a
  auto v_node = [&](Value a) {
    auto [it, inserted] = v_nodes.try_emplace(a, -1);
    if (inserted) it->second = flow.AddNode();
    return it->second;
  };
  std::map<Value, int> u_nodes;  // value b -> u_b (reached via connector)
  auto u_node = [&](Value b) {
    auto [it, inserted] = u_nodes.try_emplace(b, -1);
    if (inserted) it->second = flow.AddNode();
    return it->second;
  };
  std::map<std::pair<Value, Value>, int> pair_nodes;
  std::vector<int> l_edges;                 // edge idx per L tuple
  std::vector<TupleId> l_edge_tuple;

  // L tuples feed v_a with capacity 1.
  for (TupleId id : db.ActiveTuples(l_rel)) {
    Value a = db.Row(id)[static_cast<size_t>(shape->l_x_pos)];
    int tag = static_cast<int>(tuple_tags.size());
    tuple_tags.push_back(id);
    int e = flow.AddEdge(s, v_node(a), 1, tag);
    l_edges.push_back(e);
    l_edge_tuple.push_back(id);
  }
  // Pair nodes with capacity-1 edge to t.
  for (const auto& p : pairs) {
    int node = flow.AddNode();
    pair_nodes[p] = node;
    int64_t tag = kPairBase + static_cast<int64_t>(pair_tags.size());
    pair_tags.push_back(p);
    flow.AddEdge(node, t, 1, tag);
  }
  // Direct membership edges v_a -> pair containing a.
  for (const auto& [p, node] : pair_nodes) {
    for (Value a : {p.first, p.second}) {
      if (v_nodes.count(a)) {
        flow.AddEdge(v_nodes[a], node, kInfCapacity);
      }
      if (p.first == p.second) break;
    }
  }
  // 1-way connector edges v_a -> u_b (-> pairs containing b).
  std::set<Value> u_values;
  for (TupleId id : one_way) {
    auto [a, b] = r_row(id);
    if (!v_nodes.count(a)) continue;  // no L tuple can reach it
    int tag = static_cast<int>(tuple_tags.size());
    tuple_tags.push_back(id);
    int64_t cap = shape->l_unary ? kInfCapacity : 1;
    flow.AddEdge(v_nodes[a], u_node(b), cap, tag);
    u_values.insert(b);
  }
  for (Value b : u_values) {
    for (const auto& [p, node] : pair_nodes) {
      if (p.first == b || p.second == b) {
        flow.AddEdge(u_nodes[b], node, kInfCapacity);
      }
    }
  }

  int64_t value = flow.Compute(s, t);
  RESCQ_CHECK_LT(value, kInfCapacity);
  result.resilience = static_cast<int>(value);

  // Which L values are still alive (some uncut L-edge feeds them)?
  std::vector<int> cut = flow.MinCutEdges();
  std::set<int> cut_set(cut.begin(), cut.end());
  std::set<Value> alive;
  for (size_t i = 0; i < l_edges.size(); ++i) {
    if (!cut_set.count(l_edges[i])) {
      Value a = db.Row(l_edge_tuple[i])[static_cast<size_t>(shape->l_x_pos)];
      alive.insert(a);
    }
  }
  for (int e : cut) {
    int64_t tag = flow.edge(e).tag;
    if (tag < kPairBase) {
      result.contingency.push_back(tuple_tags[static_cast<size_t>(tag)]);
      continue;
    }
    auto [a, b] = pair_tags[static_cast<size_t>(tag - kPairBase)];
    // Side rule from the proofs: delete the tuple leaving the side that
    // is still alive.
    std::pair<Value, Value> choice;
    if (alive.count(a) && !alive.count(b)) {
      choice = {a, b};
    } else if (alive.count(b) && !alive.count(a)) {
      choice = {b, a};
    } else {
      choice = {a, b};  // both or neither alive: arbitrary
    }
    auto it = r_tuples.find(choice);
    RESCQ_CHECK(it != r_tuples.end());
    result.contingency.push_back(it->second);
  }
  std::sort(result.contingency.begin(), result.contingency.end());
  RESCQ_CHECK_EQ(static_cast<int>(result.contingency.size()),
                 result.resilience);
  return result;
}

}  // namespace rescq
