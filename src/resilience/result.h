#ifndef RESCQ_RESILIENCE_RESULT_H_
#define RESCQ_RESILIENCE_RESULT_H_

#include <string>
#include <vector>

#include "db/value.h"

namespace rescq {

/// Which algorithm produced a resilience result.
enum class SolverKind {
  kExact,             // branch-and-bound hitting set (any query)
  kLinearFlow,        // linear-query network flow (incl. Prop 31 confluence)
  kPermCount,         // q_perm witness counting (Prop 33)
  kPermBipartite,     // q_Aperm König cover (Prop 33)
  kUnboundPermFlow,   // unbound permutation flow (Prop 35, case 1)
  kPerm3Flow,         // q_{A3perm-R} / q_{Swx3perm-R} pair flow (Props 13/44)
  kRepFlow,           // REP z3-style flow (Prop 36)
  kConf3Forced,       // q^TS_3conf forced tuples + flow (Prop 41)
  kExactFallback,     // PTIME-classified query without a matching
                      // implemented construction; solved exactly
};

const char* SolverKindName(SolverKind kind);

/// The answer to a resilience computation on (q, D).
struct ResilienceResult {
  /// True if some witness uses no endogenous tuple: q cannot be made
  /// false by endogenous deletions, so resilience is undefined (infinite).
  bool unbreakable = false;

  /// ρ(q, D): the minimum number of endogenous tuples whose deletion
  /// makes q false. 0 if D does not satisfy q.
  int resilience = 0;

  /// A minimum contingency set achieving `resilience`.
  std::vector<TupleId> contingency;

  SolverKind solver = SolverKind::kExact;
};

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_RESULT_H_
