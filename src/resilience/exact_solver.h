#ifndef RESCQ_RESILIENCE_EXACT_SOLVER_H_
#define RESCQ_RESILIENCE_EXACT_SOLVER_H_

#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/witness.h"
#include "resilience/result.h"

namespace rescq {

/// Result of a minimum hitting set computation.
struct HittingSetResult {
  int size = 0;
  std::vector<int> chosen;  // element ids
};

/// Exact minimum hitting set via branch and bound:
///  - supersets of other sets are discarded,
///  - singleton sets force their element,
///  - branching picks the smallest open set and tries each element,
///  - lower bound: greedy packing of pairwise-disjoint open sets,
///  - upper bound: greedy max-frequency hitting.
/// `sets` must be non-empty sets of non-negative element ids.
HittingSetResult SolveMinHittingSet(const std::vector<std::vector<int>>& sets);

/// Exact resilience of q over the active tuples of db: enumerate
/// witnesses, then solve minimum hitting set over their endogenous
/// tuple-sets. Works for every conjunctive query; exponential worst case.
ResilienceResult ComputeResilienceExact(const Query& q, const Database& db);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_EXACT_SOLVER_H_
