#ifndef RESCQ_RESILIENCE_EXACT_SOLVER_H_
#define RESCQ_RESILIENCE_EXACT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/witness.h"
#include "resilience/result.h"
#include "util/span_arena.h"

namespace rescq {

/// Arena-backed hitting-set instance: every set is a SetSpan into one
/// pool of non-negative element ids. This is the native input of the
/// exact solver — reduction, component split, and branch-and-bound all
/// operate on the spans directly, so a family collected into an arena
/// (WitnessFamily, the incremental support family) reaches the search
/// without ever being copied into per-set vectors.
struct HittingSetFamily {
  std::vector<int> pool;
  std::vector<SetSpan> sets;

  void Add(const int* data, size_t n) {
    SetSpan span{static_cast<uint32_t>(pool.size()),
                 static_cast<uint32_t>(n)};
    pool.insert(pool.end(), data, data + n);
    sets.push_back(span);
  }
  void Add(const std::vector<int>& s) { Add(s.data(), s.size()); }

  size_t size() const { return sets.size(); }
  bool empty() const { return sets.empty(); }
  const int* begin(size_t i) const { return pool.data() + sets[i].offset; }
  const int* end(size_t i) const { return begin(i) + sets[i].len; }
  size_t len(size_t i) const { return sets[i].len; }

  static HittingSetFamily From(const std::vector<std::vector<int>>& sets) {
    HittingSetFamily f;
    f.sets.reserve(sets.size());
    for (const std::vector<int>& s : sets) f.Add(s);
    return f;
  }
};

/// Budgets for the exact resilience path. The defaults are unbounded —
/// the solver is then the reference oracle. With a budget set the solve
/// stays safe but may stop early; see ExactStats for how that surfaces.
struct ExactOptions {
  /// Maximum raw witnesses enumerated (kNoWitnessLimit = all). When
  /// exceeded the witness family is incomplete, the returned result is
  /// the default (resilience 0) and ExactStats::witness_budget_exceeded
  /// is set — never a silently truncated answer.
  size_t witness_limit = kNoWitnessLimit;
  /// Maximum branch-and-bound nodes across all components (0 =
  /// unlimited). When exhausted, the incumbent is returned: a valid
  /// hitting set / contingency set that may not be minimum
  /// (HittingSetResult::proven_optimal false,
  /// ExactStats::node_budget_exceeded set). With solver_threads > 1 the
  /// budget is shared by all workers: one worker tripping it stops the
  /// others, and the node count may overshoot by at most one node per
  /// worker. A budgeted parallel solve is the one place scheduling can
  /// show: which nodes fit under the shared budget — and therefore the
  /// counters and the returned incumbent — may vary run to run.
  uint64_t node_budget = 0;
  /// Workers for the per-component branch-and-bound fan-out (<= 1 =
  /// serial, the default). Components share no elements, so each one is
  /// solved by exactly one worker as a pure function of the component
  /// with its own counter slot; the slots are merged in partition
  /// order. Every output — the resilience value, the chosen set, and
  /// the nodes / packing_prunes / flow_prunes counters — is therefore
  /// byte-identical across any thread count and identical to the
  /// serial path (un-budgeted; see node_budget for the exception).
  int solver_threads = 1;
};

/// Search counters reported by the exact path. Monotone within one
/// solve; merged across components (and across the engine's per-plan
/// component solves).
struct ExactStats {
  size_t witnesses = 0;       // raw witnesses visited
  size_t witness_sets = 0;    // distinct endogenous tuple-sets
  int components = 0;         // independent hitting-set components
  uint64_t nodes = 0;         // branch-and-bound nodes expanded
  uint64_t packing_prunes = 0;  // subtrees cut by the greedy packing bound
  uint64_t flow_prunes = 0;     // subtrees cut by the max-flow bound
  bool witness_budget_exceeded = false;
  bool node_budget_exceeded = false;

  void Merge(const ExactStats& other);
};

/// Result of a minimum hitting set computation.
struct HittingSetResult {
  int size = 0;
  std::vector<int> chosen;  // element ids
  /// False when the node budget stopped the search: `chosen` still hits
  /// every set but may not be minimum.
  bool proven_optimal = true;
};

/// Exact minimum hitting set via branch and bound:
///  - supersets of other sets are discarded, duplicates collapse, and
///    dominated elements (every set containing b also contains a) are
///    deleted, iterated to fixpoint — q_vc-style families reduce to
///    pure vertex cover here,
///  - the instance splits into connected components (sets sharing no
///    element are independent) solved separately,
///  - singleton sets force their element,
///  - branching picks the smallest open set and tries each element,
///  - lower bounds: greedy packing of pairwise-disjoint open sets, then
///    (when that fails to prune) a max-flow bound — the LP-dual
///    fractional matching over the open size-2 sets, computed as half
///    the maximum matching of the bipartite double cover, stacked on a
///    disjoint packing of the larger sets,
///  - upper bound: greedy max-frequency hitting seeds the incumbent.
/// `sets` must be non-empty sets of non-negative element ids.
HittingSetResult SolveMinHittingSet(const std::vector<std::vector<int>>& sets);

/// As above with budgets and counters. `stats` may be null.
HittingSetResult SolveMinHittingSet(const std::vector<std::vector<int>>& sets,
                                    const ExactOptions& options,
                                    ExactStats* stats);

/// Span-native core the vector overloads wrap: identical search,
/// identical counters (the fuzz sweeps assert it), no per-set copies.
HittingSetResult SolveMinHittingSet(const HittingSetFamily& family,
                                    const ExactOptions& options,
                                    ExactStats* stats);

/// Root-level lower bound on the minimum hitting set of `sets`, without
/// searching: the family is reduced exactly as SolveMinHittingSet would
/// (dedup / supersets / element domination to fixpoint, all
/// value-preserving) and the branch-and-bound's packing and
/// fractional-matching flow bounds are evaluated once at the root.
/// Always <= SolveMinHittingSet(sets).size; 0 for an empty family. This
/// is what keeps incremental sessions warm: when it meets a feasible
/// upper bound, the exact search need not run at all.
int HittingSetLowerBound(const std::vector<std::vector<int>>& sets);

/// Span-native form of the root bound (same reduction, same bounds).
int HittingSetLowerBound(const HittingSetFamily& family);

/// Exact resilience of q over the active tuples of db: stream witnesses
/// (deduplicating their endogenous tuple-sets on the fly), then solve
/// minimum hitting set over the family. Works for every conjunctive
/// query; exponential worst case.
ResilienceResult ComputeResilienceExact(const Query& q, const Database& db);

/// As above with budgets and counters. `stats` may be null. When the
/// witness budget is exceeded the result is the default (resilience 0)
/// and must not be used — check stats->witness_budget_exceeded.
ResilienceResult ComputeResilienceExact(const Query& q, const Database& db,
                                        const ExactOptions& options,
                                        ExactStats* stats);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_EXACT_SOLVER_H_
