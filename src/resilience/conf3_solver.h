#ifndef RESCQ_RESILIENCE_CONF3_SOLVER_H_
#define RESCQ_RESILIENCE_CONF3_SOLVER_H_

#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Proposition 41 (q^TS_3conf): tuples that form a witness all by
/// themselves (singleton witness tuple-sets) are forced into every
/// contingency set. After deleting them, the remaining problem is solved
/// by the linear-query network flow; the proof's exchange argument shows
/// the flow's min cut is optimal on the residual database.
///
/// The solver is generic "forced tuples + linear flow"; the dispatcher
/// applies it to queries isomorphic to q^TS_3conf. Returns nullopt if q
/// is not linear.
std::optional<ResilienceResult> SolveForcedThenFlow(const Query& q,
                                                    const Database& db);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_CONF3_SOLVER_H_
