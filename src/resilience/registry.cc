#include "resilience/registry.h"

#include "complexity/catalog.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "resilience/conf3_solver.h"
#include "resilience/exact_solver.h"
#include "resilience/linear_flow_solver.h"
#include "resilience/perm3_solver.h"
#include "resilience/perm_solver.h"
#include "resilience/rep_solver.h"
#include "util/check.h"

namespace rescq {

namespace {

/// The q_Aperm shape (unary L bound to the permutation's x side) routes
/// to the paper's König reduction; prepared once because the
/// isomorphism probe runs at plan time for every unbound permutation.
const Query& NormalizedAperm() {
  static const Query* const kAperm = new Query(
      NormalizeDomination(Minimize(CatalogQuery("q_Aperm"))));
  return *kAperm;
}

bool PatternIs(const Classification& c, const char* pattern) {
  return c.pattern == pattern;
}

}  // namespace

void SolverRegistry::Register(SolverEntry entry) {
  RESCQ_CHECK_MSG(entry.name == SolverKindName(entry.kind),
                  "registry name must match the stable SolverKindName");
  for (const SolverEntry& existing : entries_) {
    RESCQ_CHECK_MSG(existing.kind != entry.kind, entry.name.c_str());
    RESCQ_CHECK_MSG(existing.name != entry.name, entry.name.c_str());
  }
  RESCQ_CHECK_MSG(entry.run != nullptr, entry.name.c_str());
  RESCQ_CHECK_MSG(entry.is_fallback || entry.probe != nullptr,
                  entry.name.c_str());
  entries_.push_back(std::move(entry));
}

const SolverEntry* SolverRegistry::Find(SolverKind kind) const {
  for (const SolverEntry& e : entries_) {
    if (e.kind == kind) return &e;
  }
  return nullptr;
}

std::vector<SolverKind> SolverRegistry::Probe(const Query& component,
                                              const Classification& c) const {
  std::vector<SolverKind> kinds;
  for (const SolverEntry& e : entries_) {
    if (e.is_fallback) continue;
    if (e.probe(component, c)) kinds.push_back(e.kind);
  }
  return kinds;
}

const SolverRegistry& DefaultRegistry() {
  static const SolverRegistry* const kRegistry = [] {
    auto* r = new SolverRegistry();

    r->Register({SolverKind::kLinearFlow, "linear-flow",
                 "Propositions 12, 31, 32",
                 "linear-query network flow (covers sj-free triad-free "
                 "components and confluences without exogenous path)",
                 [](const Query&, const Classification& c) {
                   return PatternIs(c, "sj-free-triad-free") ||
                          PatternIs(c, "confluence");
                 },
                 [](const Query& q, const Database& db) {
                   return SolveLinearFlow(q, db);
                 }});

    r->Register({SolverKind::kRepFlow, "rep-flow", "Proposition 36",
                 "z3-family flow with non-loop R-tuples forced undeletable",
                 [](const Query&, const Classification& c) {
                   return PatternIs(c, "rep");
                 },
                 [](const Query& q, const Database& db) {
                   return SolveRepFlow(q, db);
                 }});

    // The three unbound-permutation constructions are probed in cost
    // order: witness counting when the pair is the whole endogenous
    // part, the König cover for the q_Aperm shape, and the Prop 35 pair
    // flow as the general case. Each declines at run time when the
    // instance-level shape check fails, handing off to the next.
    r->Register({SolverKind::kPermCount, "perm-count", "Proposition 33",
                 "q_perm witness counting: each tuple lies in exactly one "
                 "witness tuple-set",
                 [](const Query&, const Classification& c) {
                   return PatternIs(c, "unbound-permutation");
                 },
                 [](const Query& q, const Database& db) {
                   return SolvePermutationCount(q, db);
                 }});

    r->Register({SolverKind::kPermBipartite, "perm-bipartite",
                 "Proposition 33 (König)",
                 "q_Aperm minimum vertex cover over (L-tuples) x (2-way "
                 "pairs) via König's theorem",
                 [](const Query& q, const Classification& c) {
                   return PatternIs(c, "unbound-permutation") &&
                          AreIsomorphicModuloRelabeling(
                              NormalizeDomination(Minimize(q)),
                              NormalizedAperm());
                 },
                 [](const Query& q, const Database& db) {
                   return SolvePermutationBipartite(q, db);
                 }});

    r->Register({SolverKind::kUnboundPermFlow, "unbound-perm-flow",
                 "Proposition 35",
                 "unbound-permutation flow with capacity-1 pair edges",
                 [](const Query&, const Classification& c) {
                   return PatternIs(c, "unbound-permutation");
                 },
                 [](const Query& q, const Database& db) {
                   return SolveUnboundPermutationFlow(q, db);
                 }});

    r->Register({SolverKind::kPerm3Flow, "perm3-flow", "Propositions 13, 44",
                 "q_A3perm-R / q_Swx3perm-R pair-node flow",
                 [](const Query&, const Classification& c) {
                   return PatternIs(c, "catalog:q_A3perm_R") ||
                          PatternIs(c, "catalog:q_Swx3perm_R");
                 },
                 [](const Query& q, const Database& db) {
                   return SolvePerm3Flow(q, db);
                 }});

    r->Register({SolverKind::kConf3Forced, "conf3-forced", "Proposition 41",
                 "q^TS_3conf forced singleton-witness tuples, then linear "
                 "flow on the residual",
                 [](const Query&, const Classification& c) {
                   return PatternIs(c, "catalog:q_TS3conf");
                 },
                 [](const Query& q, const Database& db) {
                   return SolveForcedThenFlow(q, db);
                 }});

    // Fallbacks: exact is the planned solver for NP-complete / open /
    // out-of-scope components; exact-fallback records that a PTIME
    // component had no construction (or every construction declined).
    SolverEntry exact;
    exact.kind = SolverKind::kExact;
    exact.name = "exact";
    exact.citation = "Section 3";
    exact.description =
        "branch-and-bound minimum hitting set over witness tuple-sets "
        "(correct for every CQ)";
    exact.run = [](const Query& q, const Database& db) {
      return std::optional<ResilienceResult>(ComputeResilienceExact(q, db));
    };
    exact.is_fallback = true;
    r->Register(std::move(exact));

    SolverEntry fallback;
    fallback.kind = SolverKind::kExactFallback;
    fallback.name = "exact-fallback";
    fallback.citation = "Section 3";
    fallback.description =
        "exact solver standing in for a PTIME construction that is not "
        "implemented or declined the instance";
    fallback.run = [](const Query& q, const Database& db) {
      ResilienceResult r = ComputeResilienceExact(q, db);
      r.solver = SolverKind::kExactFallback;
      return std::optional<ResilienceResult>(std::move(r));
    };
    fallback.is_fallback = true;
    r->Register(std::move(fallback));

    return r;
  }();
  return *kRegistry;
}

}  // namespace rescq
