#ifndef RESCQ_RESILIENCE_PERM3_SOLVER_H_
#define RESCQ_RESILIENCE_PERM3_SOLVER_H_

#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Flow algorithm for the "permutation plus R" PTIME queries
///
///   q_A3perm-R  :- A(x),   R(x,y), R(y,z), R(z,y)   (Proposition 13)
///   q_Swx3perm-R:- S(w,x), R(x,y), R(y,z), R(z,y)   (Proposition 44)
///
/// recognized up to variable renaming, relation renaming, and a global
/// column swap of R. The flow graph follows the paper's proofs:
///
///   s --cap1 per L-tuple--> v_a
///   v_a --inf--> pair{u,v}            if a ∈ {u,v}
///   v_a --R(a,b)--> u_b --inf--> pair{u,v} containing b,
///       where the R(a,b) edge is a *1-way* tuple (no inverse), with
///       capacity ∞ when L is unary (A(a) dominates it) and capacity 1
///       when L is binary (Prop 44: S(e,a) does not dominate R(a,b))
///   pair{u,v} --cap1--> t             one per 2-way pair (incl. loops)
///
/// A minimum cut maps to a minimum contingency set: cut L-edges and
/// (binary case) cut 1-way R-edges are taken verbatim; for a cut pair
/// {a,b} the proofs' side rule picks R(a,b) when a's side is still alive
/// and b's is not, and symmetrically.
///
/// Returns nullopt if q does not match either shape.
std::optional<ResilienceResult> SolvePerm3Flow(const Query& q,
                                               const Database& db);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_PERM3_SOLVER_H_
