#ifndef RESCQ_RESILIENCE_REGISTRY_H_
#define RESCQ_RESILIENCE_REGISTRY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "complexity/classifier.h"
#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Every SolverKind in declaration order. Kept next to the registry so
/// the self-check test can assert the registry covers the whole enum —
/// adding a kind without registering it (or without a SolverKindName
/// case) fails the build or the test, not a production report.
inline constexpr SolverKind kAllSolverKinds[] = {
    SolverKind::kExact,           SolverKind::kLinearFlow,
    SolverKind::kPermCount,       SolverKind::kPermBipartite,
    SolverKind::kUnboundPermFlow, SolverKind::kPerm3Flow,
    SolverKind::kRepFlow,         SolverKind::kConf3Forced,
    SolverKind::kExactFallback,
};

/// A self-describing resilience solver: how to recognize the queries it
/// covers (pure query analysis, run once at plan time) and how to run
/// the construction on an instance.
struct SolverEntry {
  SolverKind kind = SolverKind::kExact;
  /// Stable report string; must equal SolverKindName(kind). Report
  /// strings are a compatibility surface (CSV/JSON schemas, the CLI).
  std::string name;
  /// The paper result the construction implements, e.g. "Proposition 33".
  std::string citation;
  /// One-line description for `rescq explain`.
  std::string description;
  /// True when this construction applies to the given connected,
  /// minimized, domination-normalized component. Instance-independent.
  std::function<bool(const Query& component, const Classification& c)> probe;
  /// Runs the construction. nullopt means it declined: the probe matched
  /// the classification but the concrete instance shape does not fit.
  std::function<std::optional<ResilienceResult>(const Query& component,
                                                const Database& db)>
      run;
  /// Fallback entries (exact / exact-fallback) terminate every dispatch
  /// chain and are never probe-selected as constructions.
  bool is_fallback = false;
};

/// Ordered collection of solver entries; registration order is dispatch
/// order (e.g. the cheap q_perm witness count is probed before the
/// König cover before the generic pair flow).
class SolverRegistry {
 public:
  /// Registers an entry. Aborts on a duplicate kind or duplicate name,
  /// or when name != SolverKindName(kind).
  void Register(SolverEntry entry);

  /// Entry for this kind, or nullptr.
  const SolverEntry* Find(SolverKind kind) const;

  const std::vector<SolverEntry>& entries() const { return entries_; }

  /// Kinds of the non-fallback constructions applicable to this
  /// component, in registration order — the plan's dispatch chain.
  std::vector<SolverKind> Probe(const Query& component,
                                const Classification& c) const;

 private:
  std::vector<SolverEntry> entries_;
};

/// The built-in registry: every published construction this repo
/// implements plus the exact fallbacks, mirroring the Theorem 37 /
/// Section 8 dispatch that used to live in a hard-coded if/else chain.
const SolverRegistry& DefaultRegistry();

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_REGISTRY_H_
