#include "resilience/incremental.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/exact_solver.h"
#include "util/check.h"
#include "util/disjoint_set.h"

namespace rescq {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string WitnessBudgetError(size_t limit) {
  return "witness budget exceeded (witness_limit=" + std::to_string(limit) +
         "): the maintained witness family is incomplete and the session "
         "cannot answer";
}

/// Greedy packing of pairwise element-disjoint sets — each packed set
/// needs its own element, so the count bounds the minimum hitting set
/// from below. No reduction, no flow: the O(total set size) bound that
/// certifies the tree-shaped components sparse churn mostly touches;
/// the branch-and-bound core (with its own domination and flow-bound
/// machinery) is the escalation when this one leaves a gap.
int QuickPackingBound(const HittingSetFamily& sets, int num_elements) {
  std::vector<bool> used(static_cast<size_t>(num_elements), false);
  int packed = 0;
  for (size_t i = 0; i < sets.size(); ++i) {
    bool disjoint = true;
    for (const int* p = sets.begin(i); p != sets.end(i); ++p) {
      if (used[static_cast<size_t>(*p)]) disjoint = false;
    }
    if (!disjoint) continue;
    ++packed;
    for (const int* p = sets.begin(i); p != sets.end(i); ++p) {
      used[static_cast<size_t>(*p)] = true;
    }
  }
  return packed;
}

/// Repairs `incumbent` (element ids of a previously good hitting set)
/// into a feasible, inclusion-tight hitting set of `sets`: uncovered
/// sets are greedily covered by the max-frequency element, then members
/// every one of whose sets is multiply covered are stripped — the warm
/// upper bound of a touched component. Deliberately set-major
/// (membership is rescanned instead of materializing element->sets
/// lists): touched components are small and the pass must stay
/// allocation-light.
std::vector<int> RepairIncumbent(const HittingSetFamily& sets,
                                 int num_elements,
                                 std::vector<int> incumbent) {
  std::sort(incumbent.begin(), incumbent.end());
  incumbent.erase(std::unique(incumbent.begin(), incumbent.end()),
                  incumbent.end());
  std::vector<bool> chosen(static_cast<size_t>(num_elements), false);
  for (int e : incumbent) chosen[static_cast<size_t>(e)] = true;
  std::vector<int> cover(sets.size(), 0);
  size_t uncovered = 0;
  for (size_t s = 0; s < sets.size(); ++s) {
    for (const int* p = sets.begin(s); p != sets.end(s); ++p) {
      cover[s] += chosen[static_cast<size_t>(*p)] ? 1 : 0;
    }
    uncovered += cover[s] == 0 ? 1 : 0;
  }
  std::vector<int> freq(static_cast<size_t>(num_elements), 0);
  while (uncovered > 0) {
    std::fill(freq.begin(), freq.end(), 0);
    for (size_t s = 0; s < sets.size(); ++s) {
      if (cover[s] > 0) continue;
      for (const int* p = sets.begin(s); p != sets.end(s); ++p) {
        ++freq[static_cast<size_t>(*p)];
      }
    }
    int best = 0;
    for (size_t e = 1; e < freq.size(); ++e) {
      if (freq[e] > freq[static_cast<size_t>(best)]) best = static_cast<int>(e);
    }
    RESCQ_CHECK(freq[static_cast<size_t>(best)] > 0);
    chosen[static_cast<size_t>(best)] = true;
    incumbent.push_back(best);
    for (size_t s = 0; s < sets.size(); ++s) {
      bool has = false;
      for (const int* p = sets.begin(s); p != sets.end(s); ++p) {
        has = has || *p == best;
      }
      if (has && cover[s]++ == 0) --uncovered;
    }
  }
  // Redundancy strip: a member every one of whose sets is multiply
  // covered can go (keeps delete-churn upper bounds tight).
  std::sort(incumbent.begin(), incumbent.end());
  std::vector<int> repaired;
  repaired.reserve(incumbent.size());
  for (int e : incumbent) {
    bool needed = false;
    for (size_t s = 0; s < sets.size(); ++s) {
      if (cover[s] != 1) continue;
      for (const int* p = sets.begin(s); p != sets.end(s); ++p) {
        needed = needed || *p == e;
      }
      if (needed) break;
    }
    if (!needed) {
      for (size_t s = 0; s < sets.size(); ++s) {
        for (const int* p = sets.begin(s); p != sets.end(s); ++p) {
          if (*p == e) {
            --cover[s];
            break;
          }
        }
      }
      continue;
    }
    repaired.push_back(e);
  }
  return repaired;
}

// Exhaustive first-open-set branch and bound for tiny components — no
// reductions, no heap churn. The odd (non-star, non-tree) components
// sparse churn leaves behind have a handful of small sets; the full
// SolveMinHittingSet pipeline (sort/dedup/domination fixpoint/flow)
// costs more than this whole search there. Bounded: <= kTinySets sets
// of size <= kTinySetSize, so the tree is at most 4^8 nodes and the
// incumbent prune keeps it far below that.
constexpr size_t kTinySets = 8;
constexpr size_t kTinySetSize = 4;

struct TinySolver {
  const HittingSetFamily& sets;
  std::vector<bool> chosen;
  std::vector<int> current;
  std::vector<int> best;  // seeded with a feasible incumbent

  void Search() {
    if (current.size() + 1 > best.size()) return;  // can't beat incumbent
    size_t open = sets.size();
    for (size_t s = 0; s < sets.size(); ++s) {
      bool hit = false;
      for (const int* p = sets.begin(s); p != sets.end(s); ++p) {
        hit = hit || chosen[static_cast<size_t>(*p)];
      }
      if (!hit) {
        open = s;
        break;
      }
    }
    if (open == sets.size()) {
      best = current;
      return;
    }
    for (const int* p = sets.begin(open); p != sets.end(open); ++p) {
      const int e = *p;
      chosen[static_cast<size_t>(e)] = true;
      current.push_back(e);
      Search();
      current.pop_back();
      chosen[static_cast<size_t>(e)] = false;
    }
  }
};

bool TinyEligible(const HittingSetFamily& sets) {
  if (sets.size() > kTinySets) return false;
  for (size_t s = 0; s < sets.size(); ++s) {
    if (sets.len(s) > kTinySetSize) return false;
  }
  return true;
}

}  // namespace

int IncrementalSession::DenseId(TupleId t) {
  auto [it, inserted] =
      dense_ids_.emplace(t, static_cast<int>(dense_tuples_.size()));
  if (inserted) {
    dense_tuples_.push_back(t);
    comp_label_.push_back(-1);
  }
  return it->second;
}

void IncrementalSession::TouchSet(const std::vector<TupleId>& endo_tuples,
                                  int64_t sign) {
  const uint32_t id =
      family_arena_.Intern(endo_tuples.data(), endo_tuples.size());
  if (id == set_states_.size()) {
    // First appearance: extend the flat per-set state and mirror the
    // new arena run into dense element ids (same offsets).
    set_states_.emplace_back();
    for (TupleId t : endo_tuples) dense_pool_.push_back(DenseId(t));
    if (endo_tuples.empty()) empty_set_id_ = static_cast<int32_t>(id);
  }
  SetState& state = set_states_[id];
  const bool was_dead = state.count == 0;
  state.count += sign;
  RESCQ_CHECK(state.count >= 0);
  const uint32_t len = SetLen(static_cast<int32_t>(id));
  if (len == 0) return;  // the unbreakable key joins no component
  if (was_dead && state.count > 0) {
    // Newly live — first appearance or a revival: it may attach to (or
    // bridge) the components its elements currently live in — flag
    // them for dissolution.
    const int* e = DenseBegin(static_cast<int32_t>(id));
    for (uint32_t i = 0; i < len; ++i) {
      int label = comp_label_[static_cast<size_t>(e[i])];
      if (label >= 0) affected_labels_.push_back(label);
    }
    state.label = -1;
    state.label_slot = static_cast<int>(fresh_sets_.size());
    fresh_sets_.push_back(static_cast<int32_t>(id));
    ++live_sets_;
  } else if (!was_dead && state.count == 0) {
    // Died: tombstone wherever the set currently sits. Its span stays
    // in the arena — a later revival reuses the same SetId.
    if (state.label >= 0) {
      affected_labels_.push_back(state.label);
      auto comp = components_.find(state.label);
      RESCQ_CHECK(comp != components_.end());
      comp->second.sets[static_cast<size_t>(state.label_slot)] = -1;
    } else {
      fresh_sets_[static_cast<size_t>(state.label_slot)] = -1;
    }
    state.label = -1;
    state.label_slot = -1;
    --live_sets_;
  }
}

bool IncrementalSession::ShiftSupport(const std::vector<TupleId>& changed,
                                      int64_t sign, EpochOutcome* out) {
  const size_t limit =
      options_.witness_limit == 0 ? kNoWitnessLimit : options_.witness_limit;
  bool ok = true;
  index_->ForEachDelta(changed, [&](const Witness& w) {
    if (out->delta_witnesses >= limit) {
      poisoned_ = true;
      poison_error_ = WitnessBudgetError(options_.witness_limit);
      ok = false;
      return false;
    }
    ++out->delta_witnesses;
    TouchSet(w.endo_tuples, sign);
    return true;
  });
  return ok;
}

void IncrementalSession::AdoptComponent(int label, Component component) {
  total_size_ += component.size;
  total_lower_ += component.lower;
  if (!component.proven) ++unproven_components_;
  bool inserted = components_.emplace(label, std::move(component)).second;
  RESCQ_CHECK(inserted);
}

IncrementalSession::IncrementalSession(const Query& q, Database base,
                                       EngineOptions options)
    : q_(q), db_(std::move(base)), options_(options) {
  Clock::time_point start = Clock::now();
  index_.reset(new WitnessIndex(q_, db_));
  last_.epoch = 0;
  const size_t limit =
      options_.witness_limit == 0 ? kNoWitnessLimit : options_.witness_limit;
  // Full build: count the support of every endogenous set. Unlike
  // CollectWitnessFamily this cannot short-circuit on an unbreakable
  // witness — deletions may later revive the query's breakability, and
  // the rest of the family must be live by then.
  index_->ForEach([&](const Witness& w) {
    if (last_.delta_witnesses >= limit) {
      poisoned_ = true;
      poison_error_ = WitnessBudgetError(options_.witness_limit);
      return false;
    }
    ++last_.delta_witnesses;
    TouchSet(w.endo_tuples, +1);
    return true;
  });
  Refresh(&last_);
  last_.wall_ms = MsSince(start);
  if (obs::MetricsEnabled()) obs::PublishMemBreakdown(ApproxMemory());
}

size_t IncrementalSession::EvictColdState() {
  if (index_ == nullptr) return 0;
  size_t freed = index_->ApproxBytes() +
                 static_cast<size_t>(obs::VectorBytes(global_to_local_));
  index_.reset();
  std::vector<int>().swap(global_to_local_);
  ++evictions_;
  obs::Count("mem.evictions");
  return freed;
}

EpochOutcome IncrementalSession::Apply(const Epoch& epoch) {
  obs::Span span("epoch-apply", "incremental");
  obs::Count("incremental.epochs");
  obs::Count("incremental.updates", epoch.updates.size());
  Clock::time_point start = Clock::now();
  EpochOutcome out;
  out.epoch = ++epoch_count_;

  // Lazy rebuild after an eviction: a fresh index over the current
  // database enumerates exactly what the dropped, synced one would —
  // activity is checked at probe time and appended rows are indexed on
  // construction — so the delta streams below pick up mid-session as
  // if nothing happened. (A poisoned session skips the rebuild: its
  // batches never stream.)
  if (index_ == nullptr && !poisoned_) {
    index_.reset(new WitnessIndex(q_, db_));
    ++rebuilds_;
    obs::Count("mem.rebuilds");
  }

  // Within an epoch, the last update of each fact wins: activity is
  // last-writer, and the support invariant (the family = the witness
  // family of the current database, restored after every batch) only
  // depends on the final database state — so an insert-then-delete of
  // an initially absent fact nets to nothing, exactly as if the
  // sequence had been applied one by one. The netted epoch then
  // coalesces into one insert batch and one delete batch: a batch of
  // inserts is activated first and its incident witnesses arrive with
  // +1 support; a batch of deletions streams its incident witnesses
  // *while still active* with -1 support, then deactivates. Each
  // witness born or killed by a batch is visited exactly once
  // (ForEachDelta's first-changed-atom rule).
  std::vector<const Update*> net;
  net.reserve(epoch.updates.size());
  {
    std::unordered_map<std::string, size_t> last;  // fact key -> net slot
    last.reserve(epoch.updates.size());
    std::string key;
    for (const Update& u : epoch.updates) {
      key = u.relation;
      for (const std::string& c : u.constants) {
        key += '\x01';
        key += c;
      }
      auto [it, inserted] = last.emplace(key, net.size());
      if (inserted) {
        net.push_back(&u);
      } else {
        net[it->second] = &u;
      }
    }
  }

  auto run_batch = [&](UpdateKind kind, const std::vector<const Update*>&
                                            batch) {
    if (batch.empty() || poisoned_) return;
    std::vector<TupleId> changed;
    for (const Update* u : batch) {
      if (kind == UpdateKind::kInsert) {
        std::optional<TupleId> id = ApplyUpdate(*u, &db_);
        if (id.has_value()) changed.push_back(*id);
      } else {
        // Resolve without applying: the delta stream needs the tuple
        // still active.
        if (db_.RelationId(u->relation) < 0) continue;
        std::vector<Value> row;
        row.reserve(u->constants.size());
        for (const std::string& c : u->constants) row.push_back(db_.Intern(c));
        std::optional<TupleId> id = db_.FindTuple(u->relation, row);
        if (id.has_value() && db_.IsActive(*id)) changed.push_back(*id);
      }
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    if (kind == UpdateKind::kInsert) {
      out.inserted += static_cast<int>(changed.size());
      index_->SyncNewRows();  // the batch may have appended rows
      ShiftSupport(changed, +1, &out);
    } else {
      out.deleted += static_cast<int>(changed.size());
      ShiftSupport(changed, -1, &out);
      for (TupleId t : changed) db_.SetActive(t, false);
    }
  };

  std::vector<const Update*> inserts, deletes;
  inserts.reserve(net.size());
  deletes.reserve(net.size());
  for (const Update* u : net) {
    (u->kind == UpdateKind::kInsert ? inserts : deletes).push_back(u);
  }
  run_batch(UpdateKind::kInsert, inserts);
  run_batch(UpdateKind::kDelete, deletes);

  Refresh(&out);
  out.wall_ms = MsSince(start);
  obs::ObserveLatencyMs("incremental.epoch_ms", out.wall_ms);
  if (obs::MetricsEnabled()) obs::PublishMemBreakdown(ApproxMemory());
  last_ = out;
  return out;
}

obs::MemBreakdown IncrementalSession::ApproxMemory() const {
  obs::MemBreakdown mem;
  mem.index_bytes = index_ != nullptr ? index_->ApproxBytes() : 0;

  mem.family_bytes = family_arena_.ApproxBytes() +
                     obs::VectorBytes(dense_pool_) +
                     obs::VectorBytes(set_states_);
  mem.family_bytes += obs::HashContainerBytes(dense_ids_);
  mem.family_bytes += obs::VectorBytes(dense_tuples_);
  mem.arena_reserved_bytes = family_arena_.ReservedBytes();
  mem.arena_live_bytes = family_arena_.LiveBytes();

  mem.component_bytes = obs::HashContainerBytes(components_);
  for (const auto& [label, comp] : components_) {
    mem.component_bytes +=
        obs::VectorBytes(comp.sets) + obs::VectorBytes(comp.solution);
  }
  mem.component_bytes += obs::VectorBytes(comp_label_);
  mem.component_bytes += obs::VectorBytes(global_to_local_);

  mem.tuples = static_cast<size_t>(db_.NumActiveTuples());
  mem.witness_sets = static_cast<size_t>(live_sets_);
  return mem;
}

void IncrementalSession::Refresh(EpochOutcome* out) {
  const bool unbreakable =
      empty_set_id_ >= 0 &&
      set_states_[static_cast<size_t>(empty_set_id_)].count > 0;
  out->family_sets = static_cast<size_t>(live_sets_);

  if (poisoned_) {
    affected_labels_.clear();
    fresh_sets_.clear();
    out->budget_exceeded = true;
    out->error = poison_error_;
    return;
  }

  // Dissolve the touched components and collect the region to rebuild:
  // their surviving sets, this epoch's fresh sets, and — as the repair
  // seed — their old solutions. Components outside the region are
  // untouched and keep their records, so the work below scales with the
  // churn's footprint. This runs even while the query is unbreakable:
  // the decomposition must be current the moment breakability resumes.
  std::sort(affected_labels_.begin(), affected_labels_.end());
  affected_labels_.erase(
      std::unique(affected_labels_.begin(), affected_labels_.end()),
      affected_labels_.end());
  std::vector<int32_t> region;  // SetIds
  std::vector<int> seeds;
  for (int label : affected_labels_) {
    auto it = components_.find(label);
    if (it == components_.end()) continue;  // stale element label
    for (int32_t s : it->second.sets) {
      if (s >= 0) region.push_back(s);
    }
    seeds.insert(seeds.end(), it->second.solution.begin(),
                 it->second.solution.end());
    total_size_ -= it->second.size;
    total_lower_ -= it->second.lower;
    if (!it->second.proven) --unproven_components_;
    components_.erase(it);
  }
  for (int32_t s : fresh_sets_) {
    if (s >= 0) region.push_back(s);
  }
  affected_labels_.clear();
  fresh_sets_.clear();

  if (!region.empty()) {
    // Local dense ids over the region and its sub-components. The
    // localized region is itself a span family — one pool, no per-set
    // vectors.
    if (global_to_local_.size() < dense_tuples_.size()) {
      global_to_local_.resize(dense_tuples_.size(), -1);
    }
    std::vector<int> local_to_dense;
    HittingSetFamily region_local;
    region_local.pool.reserve(region.size() * 2);
    region_local.sets.reserve(region.size());
    for (int32_t id : region) {
      const uint32_t offset = static_cast<uint32_t>(region_local.pool.size());
      const int* e = DenseBegin(id);
      const uint32_t len = SetLen(id);
      for (uint32_t i = 0; i < len; ++i) {
        int& slot = global_to_local_[static_cast<size_t>(e[i])];
        if (slot < 0) {
          slot = static_cast<int>(local_to_dense.size());
          local_to_dense.push_back(e[i]);
        }
        region_local.pool.push_back(slot);
      }
      region_local.sets.push_back(SetSpan{offset, len});
    }
    DisjointSet dsu(static_cast<int>(local_to_dense.size()));
    for (size_t s = 0; s < region_local.size(); ++s) {
      const int* p = region_local.begin(s);
      for (size_t j = 1; j < region_local.len(s); ++j) {
        dsu.Union(p[0], p[static_cast<size_t>(j)]);
      }
    }
    // Group region sets by sub-component, first-seen order.
    std::vector<int> root_group(local_to_dense.size(), -1);
    std::vector<std::vector<int>> group_sets;  // indices into region
    for (size_t s = 0; s < region.size(); ++s) {
      int root = dsu.Find(region_local.begin(s)[0]);
      int& g = root_group[static_cast<size_t>(root)];
      if (g < 0) {
        g = static_cast<int>(group_sets.size());
        group_sets.emplace_back();
      }
      group_sets[static_cast<size_t>(g)].push_back(static_cast<int>(s));
    }
    // Distribute the seed elements to their sub-components.
    std::vector<std::vector<int>> group_seeds(group_sets.size());
    for (int e : seeds) {
      int slot = global_to_local_[static_cast<size_t>(e)];
      if (slot < 0) continue;  // the seed's element dropped out entirely
      int g = root_group[static_cast<size_t>(dsu.Find(slot))];
      if (g >= 0) group_seeds[static_cast<size_t>(g)].push_back(e);
    }

    // The rebuild is three passes so the hard solves can fan out to a
    // worker pool without touching shared session state:
    //  1. (serial) label assignment, comp_label_/SetState mutation, and
    //     the closed-form tiers — all the passes that write shared
    //     structures are cheap;
    //  2. (parallel when solver_threads > 1) the hard sub-components —
    //     each task reads only its own comp.sets / seeds and writes
    //     only its own GroupTask slot, with the nested exact solve kept
    //     serial (the pool is not reentrant);
    //  3. (serial, partition order) adoption into components_ and the
    //     running totals.
    // Pass 2 tasks are self-contained and internally serial, so every
    // epoch outcome is byte-identical to the serial session.
    struct GroupTask {
      int label = -1;
      Component comp;
      bool done = false;      // a pass-1 closed form finished it
      bool resolved = false;  // a pass-2 search tier ran
    };
    std::vector<GroupTask> tasks(group_sets.size());

    for (size_t g = 0; g < group_sets.size(); ++g) {
      const std::vector<int>& members = group_sets[g];
      Component& comp = tasks[g].comp;
      comp.sets.reserve(members.size());
      // The label is the component's minimum dense element: unique per
      // component, stable while the component is untouched.
      int label = std::numeric_limits<int>::max();
      for (int m : members) {
        const int32_t id = region[static_cast<size_t>(m)];
        const int* e = DenseBegin(id);
        const uint32_t len = SetLen(id);
        for (uint32_t i = 0; i < len; ++i) label = std::min(label, e[i]);
        comp.sets.push_back(id);
      }
      for (size_t k = 0; k < members.size(); ++k) {
        SetState& s = set_states_[static_cast<size_t>(comp.sets[k])];
        s.label = label;
        s.label_slot = static_cast<int>(k);
        const int* e = DenseBegin(comp.sets[k]);
        const uint32_t len = SetLen(comp.sets[k]);
        for (uint32_t i = 0; i < len; ++i) {
          comp_label_[static_cast<size_t>(e[i])] = label;
        }
      }
      tasks[g].label = label;

      // Tiered solve. Closed forms first: one set (any element), two
      // sets (a shared element or one of each), a common element across
      // all sets (the star shape a graph vertex's edges produce).
      const size_t count = comp.sets.size();
      bool done = false;
      if (count == 1) {
        const int* s0 = DenseBegin(comp.sets[0]);
        comp.size = 1;
        comp.solution.push_back(
            *std::min_element(s0, s0 + SetLen(comp.sets[0])));
        done = true;
      } else if (count == 2) {
        const int* s0 = DenseBegin(comp.sets[0]);
        const uint32_t n0 = SetLen(comp.sets[0]);
        const int* s1 = DenseBegin(comp.sets[1]);
        const uint32_t n1 = SetLen(comp.sets[1]);
        int common = -1;
        for (uint32_t i = 0; i < n0; ++i) {
          for (uint32_t j = 0; j < n1; ++j) {
            if (s0[i] == s1[j] && (common < 0 || s0[i] < common)) {
              common = s0[i];
            }
          }
        }
        if (common >= 0) {
          comp.size = 1;
          comp.solution.push_back(common);
        } else {
          comp.size = 2;
          comp.solution.push_back(*std::min_element(s0, s0 + n0));
          comp.solution.push_back(*std::min_element(s1, s1 + n1));
        }
        done = true;
      } else {
        std::vector<int> common(DenseBegin(comp.sets[0]),
                                DenseBegin(comp.sets[0]) +
                                    SetLen(comp.sets[0]));
        for (size_t k = 1; !common.empty() && k < count; ++k) {
          const int* s = DenseBegin(comp.sets[k]);
          const uint32_t n = SetLen(comp.sets[k]);
          std::vector<int> kept;
          for (int e : common) {
            for (uint32_t i = 0; i < n; ++i) {
              if (s[i] == e) {
                kept.push_back(e);
                break;
              }
            }
          }
          common.swap(kept);
        }
        if (!common.empty()) {
          comp.size = 1;
          comp.solution.push_back(
              *std::min_element(common.begin(), common.end()));
          done = true;
        }
      }
      if (done) {
        comp.lower = comp.size;
        comp.proven = true;
        std::sort(comp.solution.begin(), comp.solution.end());
        tasks[g].done = true;
      }
    }

    // Pass 2: the hard sub-components. Each task is self-contained —
    // compact local ids, repair the dissolved incumbent for the upper
    // bound, certify with the packing dual, and only a remaining gap
    // pays for the branch-and-bound core (whose own domination / flow
    // machinery then runs on this component alone).
    std::vector<size_t> hard;
    for (size_t g = 0; g < tasks.size(); ++g) {
      if (!tasks[g].done) hard.push_back(g);
    }
    auto solve_hard = [&](size_t idx) {
      const size_t g = hard[idx];
      GroupTask& task = tasks[g];
      Component& comp = task.comp;
      const size_t count = comp.sets.size();
      std::vector<int> sub_to_dense;
      HittingSetFamily local_sets;
      local_sets.sets.reserve(count);
      {
        std::unordered_map<int, int> sub_ids;
        sub_ids.reserve(16);
        for (size_t k = 0; k < count; ++k) {
          const int* s = DenseBegin(comp.sets[k]);
          const uint32_t n = SetLen(comp.sets[k]);
          const uint32_t offset =
              static_cast<uint32_t>(local_sets.pool.size());
          for (uint32_t i = 0; i < n; ++i) {
            auto [it, inserted] =
                sub_ids.emplace(s[i], static_cast<int>(sub_to_dense.size()));
            if (inserted) sub_to_dense.push_back(s[i]);
            local_sets.pool.push_back(it->second);
          }
          local_sets.sets.push_back(SetSpan{offset, n});
        }
        std::vector<int> incumbent;
        for (int e : group_seeds[g]) {
          auto it = sub_ids.find(e);
          if (it != sub_ids.end()) incumbent.push_back(it->second);
        }
        std::vector<int> repaired =
            RepairIncumbent(local_sets, static_cast<int>(sub_to_dense.size()),
                            std::move(incumbent));
        const int upper = static_cast<int>(repaired.size());
        const int packing = QuickPackingBound(
            local_sets, static_cast<int>(sub_to_dense.size()));
        if (packing == upper) {
          comp.size = upper;
          comp.lower = upper;
          comp.proven = true;
          for (int e : repaired) {
            comp.solution.push_back(sub_to_dense[static_cast<size_t>(e)]);
          }
        } else if (TinyEligible(local_sets)) {
          task.resolved = true;
          TinySolver tiny{local_sets,
                          std::vector<bool>(sub_to_dense.size(), false),
                          {},
                          repaired};
          tiny.Search();
          comp.size = static_cast<int>(tiny.best.size());
          comp.lower = comp.size;
          comp.proven = true;
          for (int e : tiny.best) {
            comp.solution.push_back(sub_to_dense[static_cast<size_t>(e)]);
          }
        } else if (HittingSetLowerBound(local_sets) == upper) {
          // The full root bound (domination + fractional matching) can
          // still certify a big component the cheap packing could not —
          // one reduction pass instead of a search.
          comp.size = upper;
          comp.lower = upper;
          comp.proven = true;
          for (int e : repaired) {
            comp.solution.push_back(sub_to_dense[static_cast<size_t>(e)]);
          }
        } else {
          task.resolved = true;
          ExactOptions exact;
          exact.witness_limit = kNoWitnessLimit;  // stream already budgeted
          exact.node_budget = options_.exact_node_budget;
          // Deliberately serial (the default): this task already runs
          // on a pool worker and the pool is not reentrant, and a
          // serial inner solve keeps the component's answer — size,
          // proof, and chosen set — byte-identical to the serial
          // session.
          ExactStats stats;
          HittingSetResult hs = SolveMinHittingSet(local_sets, exact, &stats);
          if (!hs.proven_optimal && upper < hs.size) {
            // The budget-stopped search's incumbent lost to the
            // repaired restriction — keep the better feasible answer.
            hs.size = upper;
            hs.chosen = std::move(repaired);
          }
          comp.size = hs.size;
          comp.proven = hs.proven_optimal;
          comp.lower = comp.proven ? hs.size : std::max(packing, 1);
          for (int e : hs.chosen) {
            comp.solution.push_back(sub_to_dense[static_cast<size_t>(e)]);
          }
        }
      }
      std::sort(comp.solution.begin(), comp.solution.end());
    };
    obs::Count("incremental.hard_solves", hard.size());
    const int threads = std::max(1, options_.solver_threads);
    if (threads > 1 && hard.size() > 1) {
      if (pool_ == nullptr) pool_.reset(new WorkerPool(threads));
      pool_->Run(hard.size(), solve_hard);
    } else {
      for (size_t idx = 0; idx < hard.size(); ++idx) solve_hard(idx);
    }

    // Pass 3: adopt in partition order.
    {
      obs::Span adopt_span("adopt", "incremental");
      for (GroupTask& task : tasks) {
        out->resolved = out->resolved || task.resolved;
        AdoptComponent(task.label, std::move(task.comp));
      }
    }
    for (int e : local_to_dense) {
      global_to_local_[static_cast<size_t>(e)] = -1;
    }
  }

  if (unbreakable) {
    // Some live witness uses no endogenous tuple: resilience is
    // undefined until deletions kill every such witness. The
    // decomposition keeps being maintained so the session can resume.
    out->unbreakable = true;
    return;
  }

  out->resilience = total_size_;
  out->upper_bound = total_size_;
  out->lower_bound = total_lower_;
  if (unproven_components_ > 0) {
    out->budget_exceeded = true;
    out->error = "exact node budget exhausted: resilience is an upper bound";
  }

  out->contingency.reserve(static_cast<size_t>(total_size_));
  for (const auto& [label, comp] : components_) {
    for (int e : comp.solution) {
      out->contingency.push_back(dense_tuples_[static_cast<size_t>(e)]);
    }
  }
  std::sort(out->contingency.begin(), out->contingency.end());
}

}  // namespace rescq
