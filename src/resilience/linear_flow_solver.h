#ifndef RESCQ_RESILIENCE_LINEAR_FLOW_SOLVER_H_
#define RESCQ_RESILIENCE_LINEAR_FLOW_SOLVER_H_

#include <functional>
#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Treats selected tuples as undeletable in the flow network even though
/// their atoms are endogenous (used by the REP solver, which proves
/// non-loop R-tuples are never needed in a minimum contingency set).
using TupleOverride = std::function<bool(const Database&, TupleId)>;

/// Computes resilience for a *linear* query by reduction to network flow
/// ([31]; Proposition 31 for the confluence case):
///
///  - arrange the atoms in a linear order; between consecutive atoms the
///    shared variables form an "interface";
///  - each witness becomes an s-t path whose i-th edge is the tuple
///    matched by the i-th atom, connecting interface-value nodes;
///  - endogenous tuples get capacity 1 (one edge per (position, tuple),
///    shared across witnesses), exogenous (or overridden) tuples get ∞;
///  - a minimum cut is a minimum contingency set.
///
/// With a self-join, one tuple may appear at several positions (the
/// paper's duplicated R_l/R_r edges); Lemma 55 shows a minimal cut never
/// takes two copies of one tuple, and cardinality-minimal cuts are
/// inclusion-minimal, so the cut maps 1:1 onto tuples. This holds for
/// confluences and REP queries, but NOT for permutations — exactly the
/// paper's point in Section 7.3 — so callers must not use this solver on
/// permutation self-joins.
///
/// Returns nullopt if q is not linear.
std::optional<ResilienceResult> SolveLinearFlow(
    const Query& q, const Database& db,
    const TupleOverride& force_undeletable = nullptr);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_LINEAR_FLOW_SOLVER_H_
