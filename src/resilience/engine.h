#ifndef RESCQ_RESILIENCE_ENGINE_H_
#define RESCQ_RESILIENCE_ENGINE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "resilience/exact_solver.h"
#include "resilience/plan.h"
#include "resilience/registry.h"
#include "resilience/result.h"

namespace rescq {

/// Engine knobs. The defaults reproduce ComputeResilience exactly.
struct EngineOptions {
  /// Always run the exact solver on the original query (the reference
  /// oracle); planning is skipped entirely.
  bool force_exact = false;
  /// When a PTIME component's every probed construction declines (or
  /// none exists), fall back to the exact solver. With false, Solve
  /// reports the failure in SolveOutcome::error instead of silently
  /// paying an exponential solve.
  bool allow_fallback = true;
  /// Collect per-stage wall times in the outcome.
  bool collect_stats = true;
  /// LRU capacity of the plan cache, in plans. 0 disables caching
  /// (every Solve re-runs the query analysis — the legacy behavior).
  size_t plan_cache_capacity = 256;
  /// Witness budget per exact component solve (0 = unlimited): the
  /// streaming enumerator stops after this many raw witnesses and the
  /// Solve reports a structured "witness budget exceeded" error instead
  /// of a silently truncated answer. PTIME constructions are unaffected.
  size_t witness_limit = 0;
  /// Branch-and-bound node budget per exact component solve (0 =
  /// unlimited). Exhausting it returns the incumbent — a verified
  /// contingency set that may not be minimum — with
  /// SolveOutcome::exact.node_budget_exceeded set.
  uint64_t exact_node_budget = 0;
  /// Workers for the exact solver's per-component fan-out (<= 1 =
  /// serial). Every Solve output — the resilience value, the reported
  /// contingency set, and the search counters in SolveOutcome::exact —
  /// is byte-identical across any thread count (un-budgeted; see
  /// ExactOptions::solver_threads for the node-budget exception). Each
  /// Solve spins its workers up and down on its own, so concurrent
  /// Solve calls on one engine stay independent.
  int solver_threads = 1;
};

/// Counters for the plan cache, monotone over the engine's lifetime.
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;  // current size
};

/// Everything a Solve call produced beyond the bare result.
struct SolveOutcome {
  ResilienceResult result;
  /// The plan used (null when force_exact skipped planning).
  std::shared_ptr<const ResiliencePlan> plan;
  /// True when Solve(q, db) found the plan already cached.
  bool plan_cache_hit = false;
  double plan_ms = 0;   // query analysis time (0 on a cache hit)
  double solve_ms = 0;  // data-dependent solve time
  /// One entry per construction that declined at run time, in dispatch
  /// order, e.g. "perm-count declined the instance shape".
  std::vector<std::string> fallback_reasons;
  /// Aggregated exact-path counters for this Solve: witnesses streamed,
  /// distinct witness sets, hitting-set components, branch-and-bound
  /// nodes, and which bound pruned. All zero when no exact solver ran.
  ExactStats exact;
  /// Non-empty when allow_fallback=false blocked the exact fallback or a
  /// witness budget was exceeded; the result is then the default
  /// (resilience 0) and must not be used.
  std::string error;
};

/// Plan-once / solve-many resilience engine.
///
/// Plan(q) runs the pure query analysis (minimize, normalize, split,
/// classify, probe the registry) once and memoizes the immutable plan on
/// the canonical query text behind a mutex-guarded LRU. Solve(q, db) reuses
/// the cached plan and only pays for the data-dependent work. Plans are
/// shared_ptr<const> — hold one engine per batch run and call it from
/// any number of threads.
///
/// Concurrency contract: every public method is safe to call from any
/// number of threads on one engine instance. The only mutable state is
/// the plan cache — LRU splices, inserts, evictions, and the hit/miss
/// counters all happen under mu_, while plan *construction* happens
/// outside it (a racing duplicate build is benign; first insert wins).
/// All per-call state (SolveOutcome, ExactStats, timings) lives on the
/// caller's stack, so Solve calls never share accumulators. With
/// options.solver_threads > 1 each Solve additionally runs its own
/// private worker fan-out; concurrent Solves just nest independent
/// pools. tests/engine_test.cc stress-tests this under TSan.
class ResilienceEngine {
 public:
  /// `registry` defaults to DefaultRegistry(); it must outlive the
  /// engine. A custom registry is the seam for tests and future
  /// alternative solver sets.
  explicit ResilienceEngine(EngineOptions options = {},
                            const SolverRegistry* registry = nullptr);

  /// The memoized plan for q (built on first use).
  std::shared_ptr<const ResiliencePlan> Plan(const Query& q);

  /// Plan (cached) and solve.
  SolveOutcome Solve(const Query& q, const Database& db);

  /// Solve with a plan obtained earlier from Plan() — the hot path for
  /// repeated solves of one query. Thread-safe and lock-free.
  SolveOutcome Solve(const std::shared_ptr<const ResiliencePlan>& plan,
                     const Database& db) const;

  PlanCacheStats plan_cache_stats() const;

  const EngineOptions& options() const { return options_; }
  const SolverRegistry& registry() const { return *registry_; }

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const ResiliencePlan>>>;

  std::shared_ptr<const ResiliencePlan> PlanInternal(const Query& q,
                                                     bool* cache_hit);

  /// Runs the exact solver with the engine's budgets, labels the result
  /// with `kind`, and merges search stats (and any witness-budget error)
  /// into the outcome. The engine executes exact dispatches itself —
  /// registry fallback entries describe them for Explain, but only the
  /// engine can thread budgets and counters through.
  ResilienceResult RunExact(const Query& q, const Database& db,
                            SolverKind kind, SolveOutcome* out) const;

  EngineOptions options_;
  const SolverRegistry* registry_;

  mutable std::mutex mu_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  PlanCacheStats stats_;
};

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_ENGINE_H_
