#include "resilience/perm_solver.h"

#include <algorithm>
#include <map>

#include "complexity/patterns.h"
#include "db/witness.h"
#include "flow/bipartite.h"
#include "flow/max_flow.h"
#include "util/check.h"

namespace rescq {

namespace {

// Shape of an unbound-permutation query: the permutation pair plus at
// most one further endogenous atom L containing exactly one of the pair's
// variables.
struct PermShape {
  int a1 = -1;
  int a2 = -1;
  int l_atom = -1;  // -1 if the pair are the only endogenous atoms
};

std::optional<PermShape> MatchPermShape(const Query& q) {
  std::vector<int> endo = q.EndogenousAtoms();
  PermShape shape;
  // Find the permutation pair.
  for (size_t i = 0; i < endo.size() && shape.a1 < 0; ++i) {
    for (size_t j = i + 1; j < endo.size() && shape.a1 < 0; ++j) {
      const Atom& p = q.atom(endo[i]);
      const Atom& r = q.atom(endo[j]);
      if (p.relation != r.relation || p.arity() != 2 || r.arity() != 2) {
        continue;
      }
      if (ClassifyPair(q, endo[i], endo[j]) == PairPattern::kPermutation) {
        shape.a1 = endo[i];
        shape.a2 = endo[j];
      }
    }
  }
  if (shape.a1 < 0) return std::nullopt;
  VarId x = q.atom(shape.a1).vars[0];
  VarId y = q.atom(shape.a1).vars[1];
  for (int i : endo) {
    if (i == shape.a1 || i == shape.a2) continue;
    if (shape.l_atom != -1) return std::nullopt;  // more than one extra atom
    const Atom& a = q.atom(i);
    bool has_x = a.HasVar(x);
    bool has_y = a.HasVar(y);
    if (has_x == has_y) return std::nullopt;  // both or neither: not case 1
    shape.l_atom = i;
  }
  return shape;
}

// The pair tuples of a witness under a shape: the (deduplicated) tuples
// matched by the two permutation atoms.
std::vector<TupleId> PairOf(const Witness& w, const PermShape& shape) {
  std::vector<TupleId> pair = {
      w.atom_tuples[static_cast<size_t>(shape.a1)],
      w.atom_tuples[static_cast<size_t>(shape.a2)]};
  std::sort(pair.begin(), pair.end());
  pair.erase(std::unique(pair.begin(), pair.end()), pair.end());
  return pair;
}

}  // namespace

std::optional<ResilienceResult> SolvePermutationCount(const Query& q,
                                                      const Database& db) {
  std::optional<PermShape> shape = MatchPermShape(q);
  if (!shape.has_value() || shape->l_atom != -1) return std::nullopt;
  ResilienceResult result;
  result.solver = SolverKind::kPermCount;
  std::vector<std::vector<TupleId>> sets = WitnessTupleSets(q, db);
  // Each tuple participates in exactly one witness tuple-set: the sets are
  // pairwise disjoint, so the minimum hitting set takes one per set.
  result.resilience = static_cast<int>(sets.size());
  for (const std::vector<TupleId>& s : sets) {
    RESCQ_CHECK(!s.empty());
    result.contingency.push_back(s.front());
  }
  std::sort(result.contingency.begin(), result.contingency.end());
  return result;
}

std::optional<ResilienceResult> SolvePermutationBipartite(
    const Query& q, const Database& db) {
  std::optional<PermShape> shape = MatchPermShape(q);
  if (!shape.has_value() || shape->l_atom == -1) return std::nullopt;
  std::vector<Witness> witnesses = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ResilienceResult result;
  result.solver = SolverKind::kPermBipartite;
  if (witnesses.empty()) return result;

  // Left: L-tuples; right: pair tuple-sets. One bipartite edge per
  // witness. Deleting the L-tuple or either tuple of the pair kills the
  // witness, so a vertex cover = a contingency set.
  std::map<TupleId, int> left_ids;
  std::vector<TupleId> lefts;
  std::map<std::vector<TupleId>, int> right_ids;
  std::vector<std::vector<TupleId>> rights;
  std::vector<std::pair<int, int>> bip_edges;
  for (const Witness& w : witnesses) {
    TupleId l = w.atom_tuples[static_cast<size_t>(shape->l_atom)];
    auto [lit, lnew] = left_ids.emplace(l, static_cast<int>(lefts.size()));
    if (lnew) lefts.push_back(l);
    std::vector<TupleId> pair = PairOf(w, *shape);
    auto [rit, rnew] = right_ids.emplace(pair, static_cast<int>(rights.size()));
    if (rnew) rights.push_back(pair);
    bip_edges.emplace_back(lit->second, rit->second);
  }
  BipartiteCover cover(static_cast<int>(lefts.size()),
                       static_cast<int>(rights.size()));
  std::sort(bip_edges.begin(), bip_edges.end());
  bip_edges.erase(std::unique(bip_edges.begin(), bip_edges.end()),
                  bip_edges.end());
  for (auto [l, r] : bip_edges) cover.AddEdge(l, r);
  cover.Compute();
  result.resilience = cover.CoverSize();
  for (size_t i = 0; i < lefts.size(); ++i) {
    if (cover.left_in_cover()[i]) result.contingency.push_back(lefts[i]);
  }
  for (size_t i = 0; i < rights.size(); ++i) {
    if (cover.right_in_cover()[i]) {
      result.contingency.push_back(rights[i].front());
    }
  }
  std::sort(result.contingency.begin(), result.contingency.end());
  return result;
}

std::optional<ResilienceResult> SolveUnboundPermutationFlow(
    const Query& q, const Database& db) {
  std::optional<PermShape> shape = MatchPermShape(q);
  if (!shape.has_value() || shape->l_atom == -1) return std::nullopt;
  std::vector<Witness> witnesses = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ResilienceResult result;
  result.solver = SolverKind::kUnboundPermFlow;
  if (witnesses.empty()) return result;

  MaxFlow flow(2);
  const int s = 0;
  const int t = 1;
  std::map<TupleId, std::pair<int, int>> l_nodes;   // L-tuple -> (node, edge)
  std::map<std::vector<TupleId>, std::pair<int, int>> pair_nodes;
  std::vector<TupleId> edge_tuple;                  // tag -> L tuple
  std::vector<std::vector<TupleId>> edge_pair;      // tag -> pair (offset)
  constexpr int64_t kPairTagBase = 1'000'000'000;

  for (const Witness& w : witnesses) {
    TupleId l = w.atom_tuples[static_cast<size_t>(shape->l_atom)];
    auto [lit, lnew] = l_nodes.try_emplace(l, std::make_pair(-1, -1));
    if (lnew) {
      int node = flow.AddNode();
      int tag = static_cast<int>(edge_tuple.size());
      edge_tuple.push_back(l);
      int e = flow.AddEdge(s, node, 1, tag);
      lit->second = {node, e};
    }
    std::vector<TupleId> pair = PairOf(w, *shape);
    auto [pit, pnew] = pair_nodes.try_emplace(pair, std::make_pair(-1, -1));
    if (pnew) {
      int node = flow.AddNode();
      int64_t tag = kPairTagBase + static_cast<int64_t>(edge_pair.size());
      edge_pair.push_back(pair);
      int e = flow.AddEdge(node, t, 1, tag);
      pit->second = {node, e};
    }
    flow.AddEdge(lit->second.first, pit->second.first, kInfCapacity);
  }
  int64_t value = flow.Compute(s, t);
  RESCQ_CHECK_LT(value, kInfCapacity);
  for (int e : flow.MinCutEdges()) {
    int64_t tag = flow.edge(e).tag;
    if (tag >= kPairTagBase) {
      result.contingency.push_back(
          edge_pair[static_cast<size_t>(tag - kPairTagBase)].front());
    } else {
      result.contingency.push_back(edge_tuple[static_cast<size_t>(tag)]);
    }
  }
  std::sort(result.contingency.begin(), result.contingency.end());
  result.contingency.erase(
      std::unique(result.contingency.begin(), result.contingency.end()),
      result.contingency.end());
  result.resilience = static_cast<int>(value);
  RESCQ_CHECK_EQ(result.resilience,
                 static_cast<int>(result.contingency.size()));
  return result;
}

}  // namespace rescq
