#include "resilience/rep_solver.h"

#include "complexity/patterns.h"
#include "resilience/linear_flow_solver.h"

namespace rescq {

std::optional<ResilienceResult> SolveRepFlow(const Query& q,
                                             const Database& db) {
  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(q);
  if (!sj.has_value() || sj->atoms.size() != 2) return std::nullopt;
  if (q.RelationArity(sj->relation) != 2) return std::nullopt;
  if (ClassifyPair(q, sj->atoms[0], sj->atoms[1]) != PairPattern::kRep) {
    return std::nullopt;
  }
  int r_rel = db.RelationId(sj->relation);
  std::optional<ResilienceResult> result = SolveLinearFlow(
      q, db, [r_rel](const Database& d, TupleId t) {
        if (t.relation != r_rel) return false;
        const std::vector<Value>& row = d.Row(t);
        return row[0] != row[1];  // non-loop R tuples are never needed
      });
  if (result.has_value()) result->solver = SolverKind::kRepFlow;
  return result;
}

}  // namespace rescq
