#include "resilience/engine.h"

#include <chrono>

#include "db/witness.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resilience/exact_solver.h"
#include "util/check.h"

namespace rescq {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

ExactOptions MakeExactOptions(const EngineOptions& options) {
  ExactOptions exact;
  exact.witness_limit =
      options.witness_limit == 0 ? kNoWitnessLimit : options.witness_limit;
  exact.node_budget = options.exact_node_budget;
  exact.solver_threads = options.solver_threads;
  return exact;
}

}  // namespace

ResilienceEngine::ResilienceEngine(EngineOptions options,
                                   const SolverRegistry* registry)
    : options_(options),
      registry_(registry != nullptr ? registry : &DefaultRegistry()) {}

std::shared_ptr<const ResiliencePlan> ResilienceEngine::Plan(const Query& q) {
  bool cache_hit = false;
  return PlanInternal(q, &cache_hit);
}

std::shared_ptr<const ResiliencePlan> ResilienceEngine::PlanInternal(
    const Query& q, bool* cache_hit) {
  const std::string key = q.ToString();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      *cache_hit = true;
      lru_.splice(lru_.begin(), lru_, it->second);  // mark most recent
      obs::Count("engine.plan_cache_hits");
      return it->second->second;
    }
    ++stats_.misses;
    *cache_hit = false;
  }
  obs::Count("engine.plan_cache_misses");
  // Build outside the lock: planning can be expensive (isomorphism
  // probes) and concurrent workers planning distinct queries should not
  // serialize. A racing duplicate build is benign — the first insert
  // wins and the losing thread's build is discarded (both builds still
  // count as cache misses).
  std::shared_ptr<const ResiliencePlan> plan;
  {
    obs::Span span("plan", "engine");
    plan = std::make_shared<const ResiliencePlan>(BuildPlan(q, *registry_));
  }
  if (options_.plan_cache_capacity == 0) return plan;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second->second;  // lost the race
  lru_.emplace_front(key, plan);
  index_[key] = lru_.begin();
  while (lru_.size() > options_.plan_cache_capacity) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  return plan;
}

ResilienceResult ResilienceEngine::RunExact(const Query& q, const Database& db,
                                            SolverKind kind,
                                            SolveOutcome* out) const {
  ResilienceResult result =
      ComputeResilienceExact(q, db, MakeExactOptions(options_), &out->exact);
  result.solver = kind;
  if (out->exact.witness_budget_exceeded && out->error.empty()) {
    out->error = "witness budget exceeded (witness_limit=" +
                 std::to_string(options_.witness_limit) +
                 "): the witness family is incomplete and no exact answer "
                 "can be given";
  }
  return result;
}

SolveOutcome ResilienceEngine::Solve(const Query& q, const Database& db) {
  if (options_.force_exact) {
    SolveOutcome out;
    Clock::time_point start = Clock::now();
    out.result = RunExact(q, db, SolverKind::kExact, &out);
    if (options_.collect_stats) out.solve_ms = MsSince(start);
    return out;
  }
  Clock::time_point start = Clock::now();
  bool hit = false;
  std::shared_ptr<const ResiliencePlan> plan = PlanInternal(q, &hit);
  double plan_ms = options_.collect_stats ? MsSince(start) : 0;
  SolveOutcome out = Solve(plan, db);
  out.plan_cache_hit = hit;
  out.plan_ms = hit ? 0 : plan_ms;
  return out;
}

SolveOutcome ResilienceEngine::Solve(
    const std::shared_ptr<const ResiliencePlan>& plan,
    const Database& db) const {
  RESCQ_CHECK(plan != nullptr);
  obs::Span span("solve", "engine");
  obs::Count("engine.solves");
  SolveOutcome out;
  out.plan = plan;
  Clock::time_point start = Clock::now();

  if (options_.force_exact) {
    out.result = RunExact(plan->original, db, SolverKind::kExact, &out);
    if (options_.collect_stats) out.solve_ms = MsSince(start);
    return out;
  }

  // Lemma 14: the query is false as soon as one component is false, so
  // rho(q, D) = min_i rho(q_i, D); a failing component means rho = 0.
  for (const ComponentPlan& comp : plan->components) {
    if (!QueryHolds(comp.query, db)) {
      if (options_.collect_stats) out.solve_ms = MsSince(start);
      return out;  // default result: resilience 0
    }
  }

  ResilienceResult best;
  best.unbreakable = true;
  for (const ComponentPlan& comp : plan->components) {
    if (comp.no_endogenous) continue;  // unbreakable whenever it holds

    ResilienceResult r;
    bool solved = false;
    for (SolverKind kind : comp.candidates) {
      const SolverEntry* entry = registry_->Find(kind);
      RESCQ_CHECK(entry != nullptr);
      if (std::optional<ResilienceResult> attempt =
              entry->run(comp.query, db)) {
        r = std::move(*attempt);
        solved = true;
        break;
      }
      out.fallback_reasons.push_back(entry->name +
                                     " declined the instance shape");
    }
    if (!solved) {
      if (comp.fallback == SolverKind::kExactFallback &&
          !options_.allow_fallback) {
        out.error = "allow_fallback=false: " + comp.fallback_reason;
        if (options_.collect_stats) out.solve_ms = MsSince(start);
        return out;
      }
      // The registry entry documents the fallback (Explain, self-checks)
      // but the engine runs it: only the engine can thread the witness /
      // node budgets and collect search stats.
      RESCQ_CHECK(registry_->Find(comp.fallback) != nullptr);
      r = RunExact(comp.query, db, comp.fallback, &out);
      if (!out.error.empty()) {
        if (options_.collect_stats) out.solve_ms = MsSince(start);
        return out;  // witness budget exceeded: result must not be used
      }
      if (comp.fallback == SolverKind::kExactFallback &&
          !comp.candidates.empty()) {
        out.fallback_reasons.push_back(
            "exact-fallback ran: " + comp.fallback_reason);
      }
    }
    if (r.unbreakable) continue;
    if (best.unbreakable || r.resilience < best.resilience) best = r;
  }
  out.result = std::move(best);
  if (options_.collect_stats) {
    out.solve_ms = MsSince(start);
    obs::ObserveLatencyMs("engine.solve_ms", out.solve_ms);
  }
  return out;
}

PlanCacheStats ResilienceEngine::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats stats = stats_;
  stats.entries = lru_.size();
  return stats;
}

}  // namespace rescq
