#ifndef RESCQ_RESILIENCE_INCREMENTAL_H_
#define RESCQ_RESILIENCE_INCREMENTAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/delta.h"
#include "db/witness.h"
#include "obs/memstats.h"
#include "resilience/engine.h"
#include "util/parallel.h"
#include "util/span_arena.h"

namespace rescq {

/// Everything one epoch application reports. Epoch 0 is the initial full
/// build; later epochs are incremental.
struct EpochOutcome {
  int epoch = 0;
  int inserted = 0;            // tuples whose activity actually flipped on
  int deleted = 0;             // ... and off
  size_t delta_witnesses = 0;  // witnesses streamed this epoch (epoch 0:
                               // the full enumeration)
  size_t family_sets = 0;      // live distinct endogenous sets afterwards
  /// Certified interval around the answer: `upper_bound` is the size of
  /// the maintained feasible contingency set (= `resilience`), and
  /// `lower_bound` the sum of per-component proven optima and duals.
  /// They are equal whenever every component's proof is complete; they
  /// separate only when an exact_node_budget stopped some component's
  /// search.
  int lower_bound = 0;
  int upper_bound = 0;
  bool resolved = false;  // some component re-ran the exact search
  bool unbreakable = false;
  int resilience = 0;
  std::vector<TupleId> contingency;  // a minimum contingency set
  /// True when a budget stopped this epoch; `error` says which. A
  /// witness budget poisons the session (the family is incomplete, so
  /// every later epoch reports the same error); an exhausted node budget
  /// keeps a feasible `resilience` that is only an upper bound.
  bool budget_exceeded = false;
  std::string error;
  double wall_ms = 0;
};

/// Incremental resilience under an update stream.
///
/// The session owns a Database and the deduplicated endogenous
/// set-family of (q, D) *with per-set witness support counts*: by the
/// witness-based formulation, an epoch of base-table updates only adds
/// witnesses incident to inserted tuples and only removes witnesses
/// incident to deleted ones, so the family is maintained from a
/// persistent WitnessIndex's delta streams instead of re-enumerated. A
/// set leaves the family when its last supporting witness dies; the
/// empty set's support count is the number of unbreakable witnesses.
///
/// The family lives in a SpanArena (util/span_arena.h): each distinct
/// endogenous tuple-set is interned once — by content hash, straight
/// from the enumerator's scratch, no key vector is ever allocated — and
/// identified by a dense SetId for the rest of the session. All per-set
/// state (support count, component membership, the set in dense element
/// ids) is in flat arrays indexed by SetId, so an epoch's support
/// arithmetic touches a handful of cache lines per witness and the
/// family's footprint is plain arena geometry.
///
/// On top of the family the session maintains the *hitting-set
/// decomposition itself* incrementally: the family's connected
/// components (sets sharing no element are independent, so minima add)
/// are kept as labelled component records with per-element labels.
/// An epoch dissolves only the components its set additions/removals
/// actually touch, re-partitions that region, and answers each new
/// piece through a tier of warm paths — closed forms for one-set,
/// two-set, and common-element (star) components; an incumbent repaired
/// from the dissolved components' solutions, certified by a greedy
/// packing dual; and, last, the branch-and-bound core (whose own
/// domination / flow-bound machinery then runs on that component
/// alone). Untouched components cost nothing, so epoch work scales with
/// the churn's footprint, not the database.
///
/// EngineOptions budgets thread through: `witness_limit` caps the
/// witness stream per epoch (exceeding it is a structured error, never
/// a silently wrong answer) and `exact_node_budget` caps each
/// per-component re-solve (an unproven component keeps its feasible
/// upper bound and retries when next touched).
///
/// With `EngineOptions::solver_threads > 1` an epoch's hard
/// sub-components (those the closed forms don't finish) re-answer in
/// parallel on a worker pool the session keeps warm across epochs.
/// Every per-component solve is self-contained and runs serially
/// inside its worker (the nested exact solve stays at one thread —
/// the pool is not reentrant), and components are adopted in
/// partition order afterwards, so every epoch outcome — including the
/// contingency set — is byte-identical to the serial session at any
/// thread count.
///
/// Thread contract — one writer, concurrent readers of published
/// answers: Apply and EvictColdState are the only mutators and must be
/// externally serialized (one at a time, never concurrent with any
/// other member). The read-only accessors — Peek/current, poisoned,
/// db, query, options, epochs_applied, index_resident, evictions,
/// rebuilds, ApproxMemory — may be called from any number of threads
/// concurrently with each other, provided the caller establishes a
/// happens-before edge from the last mutation (the server's session
/// registry does this with a per-session shared mutex: mutators under
/// the exclusive lock, readers under the shared one). Peek never
/// re-enters the solve path; it returns the answer the last epoch
/// published.
class IncrementalSession {
 public:
  /// Builds the family for `q` over `base` (the epoch-0 full build) and
  /// solves it once. The session owns its copy of the database.
  IncrementalSession(const Query& q, Database base, EngineOptions options = {});

  // The witness index and component records hold indices into the
  // session's own structures.
  IncrementalSession(const IncrementalSession&) = delete;
  IncrementalSession& operator=(const IncrementalSession&) = delete;

  const Query& query() const { return q_; }
  const Database& db() const { return db_; }
  const EngineOptions& options() const { return options_; }
  int epochs_applied() const { return epoch_count_; }

  /// The latest outcome (epoch 0's right after construction).
  const EpochOutcome& current() const { return last_; }

  /// Alias of current() under the name the serving path uses: a cheap
  /// read-only view of the published answer for `resilience`/`stats`
  /// style requests. Never solves, never touches the index — one
  /// reference return (see the thread contract above).
  const EpochOutcome& Peek() const { return last_; }

  /// True once an epoch's witness budget tripped: the maintained family
  /// is incomplete and every later Apply reports the same structured
  /// error. (A node-budget stop does NOT poison — the session keeps a
  /// feasible upper bound and retries the component when next touched.)
  bool poisoned() const { return poisoned_; }

  /// Applies the epoch's updates, maintains family and decomposition
  /// from delta witness streams, and re-answers only the touched
  /// region. Returns (and remembers) the epoch's outcome. When the
  /// session was evicted (EvictColdState), the witness index is
  /// rebuilt here first — lazily, so evicted sessions that are never
  /// touched again never pay for it.
  EpochOutcome Apply(const Epoch& epoch);

  /// Drops the rebuildable hot state — the WitnessIndex posting lists
  /// and the refresh scratch — and returns the approximate bytes freed.
  /// The family, the decomposition, and the published answer survive:
  /// Peek() keeps answering, and the next Apply() rebuilds the index
  /// from the database (a fresh index over the current rows enumerates
  /// exactly what a synced one would — activity is checked at probe
  /// time). A mutator under the thread contract: callers hold the same
  /// exclusive lock Apply needs. Idempotent; returns 0 when already
  /// evicted.
  size_t EvictColdState();

  /// False while evicted (between EvictColdState and the next Apply).
  bool index_resident() const { return index_ != nullptr; }
  /// Lifetime counts of EvictColdState() drops and lazy index rebuilds
  /// — the per-session view of the mem.evictions / mem.rebuilds
  /// counters.
  uint64_t evictions() const { return evictions_; }
  uint64_t rebuilds() const { return rebuilds_; }

  /// Approximate heap footprint of the session's maintained state —
  /// the witness index's posting lists, the set-family (arena + flat
  /// per-set state + dense id space), and the component records — from
  /// container geometry (obs/memstats.h). O(live containers), computed
  /// per epoch behind the metrics gate and per registry sweep, never
  /// per update.
  obs::MemBreakdown ApproxMemory() const;

 private:
  /// Per-set state, indexed by the set's arena SetId (dense,
  /// first-appearance order, stable for the session's lifetime). The
  /// set's elements live in the arena span; `dense_pool_` mirrors the
  /// arena pool with the elements' dense ids, so the dense form needs
  /// no storage here. `label`/`label_slot` place the set in its
  /// component record (label -1 = pending or dead).
  struct SetState {
    int64_t count = 0;
    int label = -1;
    int label_slot = -1;
  };

  /// One live component: its member SetIds (-1 tombstones keep
  /// label_slots stable; the record is dissolved and rebuilt whenever a
  /// member set is added or removed), a feasible minimum-or-upper-bound
  /// `size` with its solution, and the proven lower bound (`size` when
  /// `proven`).
  struct Component {
    std::vector<int32_t> sets;
    int size = 0;
    int lower = 0;
    bool proven = true;
    std::vector<int> solution;  // dense element ids
  };

  /// Interns a tuple into the dense id space.
  int DenseId(TupleId t);

  /// The dense-element form of set `id`: the arena span's offsets into
  /// dense_pool_.
  const int* DenseBegin(int32_t id) const {
    return dense_pool_.data() + family_arena_.span(static_cast<uint32_t>(id))
                                    .offset;
  }
  uint32_t SetLen(int32_t id) const {
    return family_arena_.span(static_cast<uint32_t>(id)).len;
  }

  /// Shifts one witness's set support by `sign`, maintaining the arena
  /// interning, the affected-region lists, and the component
  /// tombstones.
  void TouchSet(const std::vector<TupleId>& endo_tuples, int64_t sign);

  /// Streams witnesses incident to `changed` and shifts their sets'
  /// support by `sign`. Returns false when the epoch witness budget
  /// tripped (the session is then poisoned).
  bool ShiftSupport(const std::vector<TupleId>& changed, int64_t sign,
                    EpochOutcome* out);

  /// Dissolves the affected components, re-partitions their sets plus
  /// the epoch's fresh ones, solves each new piece, and fills `out`.
  void Refresh(EpochOutcome* out);

  /// Installs a finished component record and updates the running
  /// totals.
  void AdoptComponent(int label, Component component);

  Query q_;
  Database db_;
  EngineOptions options_;
  /// Null while evicted; rebuilt lazily at the top of Apply.
  std::unique_ptr<WitnessIndex> index_;

  /// The set-family: every distinct endogenous tuple-set interned once,
  /// SetId = dense first-appearance index. Sets are never physically
  /// removed (their spans are immutable arena runs); a set with
  /// count 0 is simply dead and revives in place if churn brings its
  /// witnesses back. `live_sets_` counts the non-empty sets with
  /// support > 0; `empty_set_id_` is the interned empty set (its count
  /// is the number of unbreakable witnesses), -1 until one is seen.
  SpanArena<TupleId> family_arena_;
  std::vector<int> dense_pool_;  // arena pool mirrored in dense ids
  std::vector<SetState> set_states_;  // indexed by SetId
  int64_t live_sets_ = 0;
  int32_t empty_set_id_ = -1;

  /// Grow-only dense id space over every endogenous tuple ever seen in
  /// a set; ids of deleted tuples go stale harmlessly.
  std::unordered_map<TupleId, int, TupleIdHash> dense_ids_;
  std::vector<TupleId> dense_tuples_;

  /// The current decomposition: label -> component record, where a
  /// component's label is its minimum dense element id (so a label
  /// always identifies the unique live component containing that
  /// element), plus the per-element labels. `comp_label_` entries of
  /// elements that dropped out of every set go stale; they are only
  /// ever used to locate components to dissolve, and a stale label at
  /// worst dissolves (and faithfully rebuilds) an extra component.
  std::unordered_map<int, Component> components_;
  std::vector<int> comp_label_;

  // Running totals over `components_`.
  int total_size_ = 0;
  int total_lower_ = 0;
  int unproven_components_ = 0;

  // Epoch-scoped affected region, collected by TouchSet: labels of
  // components that lost or gained... (gained = via fresh sets whose
  // elements carry these labels), and the fresh SetIds themselves
  // (-1 = died again within the epoch).
  std::vector<int> affected_labels_;
  std::vector<int32_t> fresh_sets_;

  // Scratch reused across refreshes (slots are reset after each use, so
  // the array stays clean between epochs and only grows with the
  // universe). Dropped by EvictColdState, re-grown on demand.
  std::vector<int> global_to_local_;

  // Lazily created when solver_threads > 1 and an epoch leaves more
  // than one hard sub-component; kept warm across epochs.
  std::unique_ptr<WorkerPool> pool_;

  bool poisoned_ = false;  // witness budget tripped; family incomplete
  std::string poison_error_;

  uint64_t evictions_ = 0;
  uint64_t rebuilds_ = 0;

  int epoch_count_ = 0;
  EpochOutcome last_;
};

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_INCREMENTAL_H_
