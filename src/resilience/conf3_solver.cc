#include "resilience/conf3_solver.h"

#include <algorithm>
#include <set>

#include "db/witness.h"
#include "resilience/linear_flow_solver.h"
#include "util/check.h"

namespace rescq {

std::optional<ResilienceResult> SolveForcedThenFlow(const Query& q,
                                                    const Database& db) {
  ResilienceResult result;
  result.solver = SolverKind::kConf3Forced;

  std::vector<std::vector<TupleId>> sets = WitnessTupleSets(q, db);
  if (sets.empty()) return result;
  std::set<TupleId> forced;
  for (const std::vector<TupleId>& s : sets) {
    if (s.empty()) {
      result.unbreakable = true;
      return result;
    }
    if (s.size() == 1) forced.insert(s.front());
  }

  // Delete the forced tuples, flow on the rest, then restore.
  Database& mutable_db = const_cast<Database&>(db);
  for (TupleId t : forced) mutable_db.SetActive(t, false);
  std::optional<ResilienceResult> flow = SolveLinearFlow(q, mutable_db);
  for (TupleId t : forced) mutable_db.SetActive(t, true);
  if (!flow.has_value()) return std::nullopt;
  RESCQ_CHECK(!flow->unbreakable);

  result.resilience = static_cast<int>(forced.size()) + flow->resilience;
  result.contingency.assign(forced.begin(), forced.end());
  result.contingency.insert(result.contingency.end(),
                            flow->contingency.begin(),
                            flow->contingency.end());
  std::sort(result.contingency.begin(), result.contingency.end());
  return result;
}

}  // namespace rescq
