#ifndef RESCQ_RESILIENCE_PERM_SOLVER_H_
#define RESCQ_RESILIENCE_PERM_SOLVER_H_

#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Proposition 33 (q_perm): when the permutation pair R(x,y),R(y,x) are
/// the only endogenous atoms, each tuple belongs to exactly one witness
/// tuple-set, so resilience equals the number of distinct witness
/// tuple-sets. Requires q's endogenous atoms to be exactly one
/// permutation pair; returns nullopt otherwise.
std::optional<ResilienceResult> SolvePermutationCount(const Query& q,
                                                      const Database& db);

/// Proposition 33 (q_Aperm): with one more endogenous atom L bound to the
/// permutation's x side, resilience reduces to minimum vertex cover in
/// the bipartite graph (L-tuples) x (2-way pairs), solved via König.
/// Requires: endogenous atoms = {L, R-pair}, L contains x but not y.
/// Returns nullopt if the shape does not match.
std::optional<ResilienceResult> SolvePermutationBipartite(const Query& q,
                                                          const Database& db);

/// Proposition 35, case 1 (unbound permutations): q = q_l(x), G(x,y) where
/// q_l has exactly one endogenous atom. Network flow with a capacity-1
/// pair edge per 2-way pair. This is König generalized to weighted L
/// sides; implemented via max-flow so exogenous decorations of G are
/// handled uniformly. Returns nullopt if the shape does not match.
std::optional<ResilienceResult> SolveUnboundPermutationFlow(
    const Query& q, const Database& db);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_PERM_SOLVER_H_
