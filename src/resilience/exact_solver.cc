#include "resilience/exact_solver.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <utility>

#include "flow/max_flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/disjoint_set.h"
#include "util/parallel.h"

namespace rescq {

void ExactStats::Merge(const ExactStats& other) {
  witnesses += other.witnesses;
  witness_sets += other.witness_sets;
  components += other.components;
  nodes += other.nodes;
  packing_prunes += other.packing_prunes;
  flow_prunes += other.flow_prunes;
  witness_budget_exceeded = witness_budget_exceeded ||
                            other.witness_budget_exceeded;
  node_budget_exceeded = node_budget_exceeded || other.node_budget_exceeded;
}

namespace {

using Family = HittingSetFamily;

// Node-budget state shared by all components of one solve — and, when
// components fan out to a worker pool, by all workers at once, so its
// fields are atomics. Relaxed ordering suffices: the budget only gates
// a heuristic cutoff, never publishes data between threads. Once it
// trips, every further Search() on any worker returns immediately and
// the incumbents (seeded by the greedy upper bounds, so always
// feasible) stand as the answer. Under contention the taken count may
// overshoot the limit by at most one per worker (each worker checks,
// then increments). With no budget set (limit 0, the default) the
// atomics are never touched at all.
struct NodeBudget {
  uint64_t limit = 0;  // 0 = unlimited
  std::atomic<uint64_t> taken{0};
  std::atomic<bool> exceeded{false};
};

// Per-component search counters. Exactly one worker owns a component,
// so the counters are plain integers: summing them in partition order
// afterwards makes ExactStats byte-identical at any thread count —
// there is no shared mutable reporting state for schedules to race on.
// Only the budget (when set) crosses components.
struct SearchCtx {
  NodeBudget* budget = nullptr;
  uint64_t nodes = 0;
  uint64_t packing_prunes = 0;
  uint64_t flow_prunes = 0;

  bool TakeNode() {
    if (budget->limit != 0) {
      if (budget->taken.load(std::memory_order_relaxed) >= budget->limit) {
        budget->exceeded.store(true, std::memory_order_relaxed);
        return false;
      }
      budget->taken.fetch_add(1, std::memory_order_relaxed);
    }
    ++nodes;
    return true;
  }

  bool BudgetExceeded() const {
    return budget->limit != 0 &&
           budget->exceeded.load(std::memory_order_relaxed);
  }
};

// Below this many residual edges a Dinic run costs more than the nodes
// it could prune — the greedy bounds and the eager reductions already
// dispatch such instances in a handful of nodes.
constexpr size_t kFlowBoundMinEdges = 8;

// The flow bound also waits until the component's search has expanded
// this many nodes: a component that finishes earlier was never going to
// repay a Dinic run per node, while a search still alive past the
// threshold is exactly where the stronger bound cuts whole subtrees.
// The gate reads the component-local counter, so whether it fires never
// depends on sibling components or on the worker schedule.
constexpr uint64_t kFlowBoundMinNodes = 32;

// LP-dual lower bound over size-2 sets: a maximum *fractional* matching
// of the graph they form is dual-feasible for the hitting-set LP, so its
// value bounds any hitting set of those edges from below. Its value is
// half the maximum integral matching of the bipartite double cover
// (each vertex split into a left and a right copy, each edge doubled),
// which Dinic computes directly — no blossom needed. Returns the ceiling,
// which is still a valid bound because hitting sets are integral.
int FractionalMatchingBound(const std::vector<std::pair<int, int>>& edges,
                            int max_id) {
  if (edges.empty()) return 0;
  std::vector<int> dense(static_cast<size_t>(max_id), -1);
  int k = 0;
  for (const auto& [a, b] : edges) {
    if (dense[static_cast<size_t>(a)] < 0) dense[static_cast<size_t>(a)] = k++;
    if (dense[static_cast<size_t>(b)] < 0) dense[static_cast<size_t>(b)] = k++;
  }
  MaxFlow flow(2 + 2 * k);
  const int s = 0, t = 1;
  for (int i = 0; i < k; ++i) {
    flow.AddEdge(s, 2 + i, 1);
    flow.AddEdge(2 + k + i, t, 1);
  }
  for (const auto& [a, b] : edges) {
    int ia = dense[static_cast<size_t>(a)];
    int ib = dense[static_cast<size_t>(b)];
    flow.AddEdge(2 + ia, 2 + k + ib, 1);
    flow.AddEdge(2 + ib, 2 + k + ia, 1);
  }
  int64_t f = flow.Compute(s, t);
  return static_cast<int>((f + 1) / 2);
}

// Sorts every span in place, deduplicates the family, and drops
// supersets (hitting a subset hits all of its supersets). Output spans
// are size-ascending; the pool is shared and never copied — dedup
// inside a span just shrinks its len, leaving a dead gap the family's
// lifetime amortizes away. This runs 2-3x per solve on the reduction
// fixpoint, so it must not allocate per set.
Family ReduceFamily(Family f) {
  for (SetSpan& s : f.sets) {
    RESCQ_CHECK(s.len > 0);
    int* b = f.pool.data() + s.offset;
    std::sort(b, b + s.len);
    s.len = static_cast<uint32_t>(std::unique(b, b + s.len) - b);
  }
  const int* pool = f.pool.data();
  std::sort(f.sets.begin(), f.sets.end(), [pool](SetSpan a, SetSpan b) {
    if (a.len != b.len) return a.len < b.len;
    return std::lexicographical_compare(pool + a.offset,
                                        pool + a.offset + a.len,
                                        pool + b.offset,
                                        pool + b.offset + b.len);
  });
  f.sets.erase(std::unique(f.sets.begin(), f.sets.end(),
                           [pool](SetSpan a, SetSpan b) {
                             return a.len == b.len &&
                                    std::equal(pool + a.offset,
                                               pool + a.offset + a.len,
                                               pool + b.offset);
                           }),
               f.sets.end());
  std::vector<SetSpan> out;
  out.reserve(f.sets.size());
  for (SetSpan s : f.sets) {
    bool has_subset = false;
    for (SetSpan t : out) {
      if (t.len >= s.len) continue;
      if (std::includes(pool + s.offset, pool + s.offset + s.len,
                        pool + t.offset, pool + t.offset + t.len)) {
        has_subset = true;
        break;
      }
    }
    if (!has_subset) out.push_back(s);
  }
  f.sets = std::move(out);
  return f;
}

// CSR element -> set-id lists: offsets[e]..offsets[e+1] indexes `flat`.
// Filled in ascending set order, so every per-element list is sorted —
// the same sequences per-element push_back produced.
struct ElementSets {
  std::vector<int> offsets;
  std::vector<int> flat;

  void Build(const Family& f, int num_elements) {
    offsets.assign(static_cast<size_t>(num_elements) + 1, 0);
    for (size_t i = 0; i < f.size(); ++i) {
      for (const int* p = f.begin(i); p != f.end(i); ++p) {
        ++offsets[static_cast<size_t>(*p) + 1];
      }
    }
    for (size_t e = 0; e < static_cast<size_t>(num_elements); ++e) {
      offsets[e + 1] += offsets[e];
    }
    flat.resize(static_cast<size_t>(offsets[static_cast<size_t>(
        num_elements)]));
    std::vector<int> pos(offsets.begin(), offsets.end() - 1);
    for (size_t i = 0; i < f.size(); ++i) {
      for (const int* p = f.begin(i); p != f.end(i); ++p) {
        flat[static_cast<size_t>(pos[static_cast<size_t>(*p)]++)] =
            static_cast<int>(i);
      }
    }
  }

  const int* begin(int e) const {
    return flat.data() + offsets[static_cast<size_t>(e)];
  }
  const int* end(int e) const {
    return flat.data() + offsets[static_cast<size_t>(e) + 1];
  }
  int count(int e) const {
    return offsets[static_cast<size_t>(e) + 1] -
           offsets[static_cast<size_t>(e)];
  }
};

int MaxElementPlusOne(const Family& f) {
  int num_elements = 0;
  for (size_t i = 0; i < f.size(); ++i) {
    for (const int* p = f.begin(i); p != f.end(i); ++p) {
      num_elements = std::max(num_elements, *p + 1);
    }
  }
  return num_elements;
}

// State for the branch-and-bound search. Sets are spans into the
// component's pool; "open" sets are those not yet hit by the current
// partial choice.
struct Solver {
  Family family;
  ElementSets element_sets;
  int num_elements = 0;
  SearchCtx* ctx = nullptr;

  std::vector<int> hit_count;    // per set: #chosen elements in it
  std::vector<bool> chosen;      // per element
  std::vector<int> current;      // chosen stack
  std::vector<int> best;
  int best_size = 0;

  // For families that are already sorted, deduplicated, and subset-free
  // (per-component slices of a globally reduced family).
  void InitReduced(Family reduced) {
    family = std::move(reduced);
    num_elements = MaxElementPlusOne(family);
    element_sets.Build(family, num_elements);
    hit_count.assign(family.size(), 0);
    chosen.assign(static_cast<size_t>(num_elements), false);
  }

  void Choose(int e) {
    chosen[static_cast<size_t>(e)] = true;
    current.push_back(e);
    for (const int* s = element_sets.begin(e); s != element_sets.end(e);
         ++s) {
      ++hit_count[static_cast<size_t>(*s)];
    }
  }

  void Unchoose(int e) {
    chosen[static_cast<size_t>(e)] = false;
    current.pop_back();
    for (const int* s = element_sets.begin(e); s != element_sets.end(e);
         ++s) {
      --hit_count[static_cast<size_t>(*s)];
    }
  }

  // Greedy upper bound: repeatedly pick the element hitting the most open
  // sets. Also used to initialize `best`.
  void GreedyUpperBound() {
    std::vector<bool> open(family.size(), true);
    size_t open_count = 0;
    for (size_t i = 0; i < family.size(); ++i) {
      open[i] = hit_count[i] == 0;
      open_count += open[i] ? 1 : 0;
    }
    std::vector<int> greedy = current;
    std::vector<int> freq(static_cast<size_t>(num_elements), 0);
    while (open_count > 0) {
      std::fill(freq.begin(), freq.end(), 0);
      for (size_t i = 0; i < family.size(); ++i) {
        if (!open[i]) continue;
        for (const int* p = family.begin(i); p != family.end(i); ++p) {
          ++freq[static_cast<size_t>(*p)];
        }
      }
      int best_e = 0;
      for (int e = 1; e < num_elements; ++e) {
        if (freq[static_cast<size_t>(e)] > freq[static_cast<size_t>(best_e)]) {
          best_e = e;
        }
      }
      greedy.push_back(best_e);
      for (const int* s = element_sets.begin(best_e);
           s != element_sets.end(best_e); ++s) {
        if (open[static_cast<size_t>(*s)]) {
          open[static_cast<size_t>(*s)] = false;
          --open_count;
        }
      }
    }
    if (best.empty() || static_cast<int>(greedy.size()) < best_size) {
      best = greedy;
      best_size = static_cast<int>(greedy.size());
    }
  }

  // Lower bound on additional elements: greedily pack pairwise
  // element-disjoint open sets; each needs a distinct element.
  int PackingLowerBound() {
    int packed = 0;
    std::vector<bool> used(static_cast<size_t>(num_elements), false);
    // Smaller sets first makes the packing larger on average; sets are
    // globally sorted by size already (the reduction sorts before
    // superset removal; removal preserves order).
    for (size_t i = 0; i < family.size(); ++i) {
      if (hit_count[i] > 0) continue;
      bool disjoint = true;
      for (const int* p = family.begin(i); p != family.end(i); ++p) {
        if (used[static_cast<size_t>(*p)]) disjoint = false;
      }
      if (!disjoint) continue;
      ++packed;
      for (const int* p = family.begin(i); p != family.end(i); ++p) {
        used[static_cast<size_t>(*p)] = true;
      }
    }
    return packed;
  }

  // Stronger lower bound: disjoint-pack the open sets of size != 2, then
  // add the fractional-matching dual over the open 2-sets that avoid the
  // packed elements. Dual-feasible for the hitting-set LP (each element
  // is claimed by at most one packed set or by the matching, never
  // both), so it is a valid bound; it beats pure packing whenever the
  // 2-sets form odd structures the greedy can only half-use.
  int FlowLowerBound() {
    std::vector<bool> used(static_cast<size_t>(num_elements), false);
    int packed = 0;
    for (size_t i = 0; i < family.size(); ++i) {
      if (hit_count[i] > 0) continue;
      if (family.len(i) == 2) continue;  // handled by the matching below
      bool disjoint = true;
      for (const int* p = family.begin(i); p != family.end(i); ++p) {
        if (used[static_cast<size_t>(*p)]) disjoint = false;
      }
      if (!disjoint) continue;
      ++packed;
      for (const int* p = family.begin(i); p != family.end(i); ++p) {
        used[static_cast<size_t>(*p)] = true;
      }
    }
    std::vector<std::pair<int, int>> edges;
    for (size_t i = 0; i < family.size(); ++i) {
      if (hit_count[i] > 0 || family.len(i) != 2) continue;
      int a = family.begin(i)[0], b = family.begin(i)[1];
      if (used[static_cast<size_t>(a)] || used[static_cast<size_t>(b)]) {
        continue;
      }
      edges.emplace_back(a, b);
    }
    if (edges.size() < kFlowBoundMinEdges) {
      return packed;  // skip the Dinic run, keep the packing just computed
    }
    return packed + FractionalMatchingBound(edges, num_elements);
  }

  // Finds the open set with the fewest elements; -1 if none.
  int PickBranchSet() {
    int best_set = -1;
    size_t best_sz = ~size_t{0};
    for (size_t i = 0; i < family.size(); ++i) {
      if (hit_count[i] > 0) continue;
      if (family.len(i) < best_sz) {
        best_sz = family.len(i);
        best_set = static_cast<int>(i);
        if (best_sz == 1) break;
      }
    }
    return best_set;
  }

  void Search() {
    if (!ctx->TakeNode()) return;
    int branch_set = PickBranchSet();
    if (branch_set < 0) {
      if (static_cast<int>(current.size()) < best_size) {
        best = current;
        best_size = static_cast<int>(current.size());
      }
      return;
    }
    int lb = PackingLowerBound();
    if (static_cast<int>(current.size()) + lb >= best_size) {
      ++ctx->packing_prunes;
      return;
    }
    // The flow bound costs a Dinic run, so it only fires where the cheap
    // packing bound failed to prune and the search is demonstrably
    // non-trivial — exactly the nodes worth cutting.
    if (ctx->nodes >= kFlowBoundMinNodes) {
      int flow_lb = FlowLowerBound();
      if (flow_lb > lb &&
          static_cast<int>(current.size()) + flow_lb >= best_size) {
        ++ctx->flow_prunes;
        return;
      }
    }

    // Branch over the elements of the smallest open set, most-frequent
    // first.
    std::vector<int> elems(family.begin(static_cast<size_t>(branch_set)),
                           family.end(static_cast<size_t>(branch_set)));
    std::sort(elems.begin(), elems.end(), [&](int a, int b) {
      return element_sets.count(a) > element_sets.count(b);
    });
    for (int e : elems) {
      Choose(e);
      Search();
      Unchoose(e);
      if (ctx->BudgetExceeded()) return;
    }
  }
};

// Element domination: if every set containing b also contains some a
// (a != b), a minimum hitting set never needs b — any solution using b
// can swap it for a — so b is deleted from the family. Ties (identical
// membership) break toward the smaller id so exactly one of the pair
// survives. Classic hitting-set preprocessing; on the q_vc witness
// families it strips the per-edge S-tuples (each private to one set that
// also holds both endpoint R-tuples) and leaves a pure vertex-cover
// instance the matching bounds are exact on. Sets stay non-empty: every
// set that loses b still contains its dominator. Returns true when
// something was removed (callers re-reduce and iterate to fixpoint).
bool EliminateDominatedElements(Family* f) {
  const int num_elements = MaxElementPlusOne(*f);
  ElementSets element_sets;
  element_sets.Build(*f, num_elements);
  std::vector<bool> removed(static_cast<size_t>(num_elements), false);
  bool changed = false;
  for (int b = 0; b < num_elements; ++b) {
    if (element_sets.count(b) == 0) continue;
    const int* sb_begin = element_sets.begin(b);
    const int* sb_end = element_sets.end(b);
    // A dominator of b sits in every set containing b, in particular the
    // first one — so only its elements need checking.
    const size_t first_set = static_cast<size_t>(*sb_begin);
    for (const int* p = f->begin(first_set); p != f->end(first_set); ++p) {
      const int a = *p;
      if (a == b || removed[static_cast<size_t>(a)]) continue;
      if (element_sets.count(a) < element_sets.count(b)) continue;
      if (!std::includes(element_sets.begin(a), element_sets.end(a),
                         sb_begin, sb_end)) {
        continue;
      }
      if (element_sets.count(a) == element_sets.count(b) && a > b) {
        continue;  // keep the smaller id
      }
      removed[static_cast<size_t>(b)] = true;
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  for (SetSpan& s : f->sets) {
    int* b = f->pool.data() + s.offset;
    int* kept = std::remove_if(b, b + s.len, [&](int e) {
      return removed[static_cast<size_t>(e)];
    });
    s.len = static_cast<uint32_t>(kept - b);
  }
  return true;
}

// Specialized exact vertex cover for the all-sets-size-<=2 case (graph
// instances; the hardness gadgets produce exactly these). Classic branch
// and bound: eager degree-0/1 reductions, branching "v in cover" vs
// "N(v) in cover" on a maximum-degree vertex, a greedy-matching lower
// bound backed by the fractional-matching flow bound, and a max-degree
// greedy cover seeding the incumbent. Cycles and trees collapse under
// the reductions, which is what the paper's variable gadgets are made of.
struct VcSolver {
  std::vector<std::set<int>> adj;
  SearchCtx* ctx = nullptr;
  std::vector<int> cover;   // current partial cover
  std::vector<int> best;
  size_t best_size = ~size_t{0};

  void TakeVertex(int v) {
    cover.push_back(v);
    std::set<int> neighbors = adj[static_cast<size_t>(v)];
    for (int u : neighbors) {
      adj[static_cast<size_t>(u)].erase(v);
    }
    adj[static_cast<size_t>(v)].clear();
  }

  void Reduce() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t v = 0; v < adj.size(); ++v) {
        if (adj[v].size() == 1) {
          TakeVertex(*adj[v].begin());
          changed = true;
        }
      }
    }
  }

  // Max-degree greedy cover: seeds `best` so that pruning bites from the
  // first search node and a budget-stopped search still holds a feasible
  // answer.
  void GreedySeed() {
    std::vector<std::set<int>> saved = adj;
    for (;;) {
      int v = -1;
      size_t max_deg = 0;
      for (size_t u = 0; u < adj.size(); ++u) {
        if (adj[u].size() > max_deg) {
          max_deg = adj[u].size();
          v = static_cast<int>(u);
        }
      }
      if (v < 0) break;
      TakeVertex(v);
    }
    best = cover;
    best_size = cover.size();
    adj = std::move(saved);
    cover.clear();
  }

  size_t MatchingLowerBound() const {
    std::vector<bool> used(adj.size(), false);
    size_t matching = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (used[v]) continue;
      for (int u : adj[v]) {
        if (!used[static_cast<size_t>(u)]) {
          used[v] = true;
          used[static_cast<size_t>(u)] = true;
          ++matching;
          break;
        }
      }
    }
    return matching;
  }

  // Fractional matching over the remaining edges (see
  // FractionalMatchingBound): exact on bipartite residuals by König, and
  // gains the +1/2-per-odd-component the greedy matching leaves behind.
  size_t FlowLowerBound() const {
    std::vector<std::pair<int, int>> edges;
    for (size_t v = 0; v < adj.size(); ++v) {
      for (int u : adj[v]) {
        if (u > static_cast<int>(v)) edges.emplace_back(static_cast<int>(v), u);
      }
    }
    if (edges.size() < kFlowBoundMinEdges) return 0;  // not worth a Dinic run
    return static_cast<size_t>(
        FractionalMatchingBound(edges, static_cast<int>(adj.size())));
  }

  void Search() {
    if (!ctx->TakeNode()) return;
    Reduce();
    int branch = -1;
    size_t max_deg = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (adj[v].size() > max_deg) {
        max_deg = adj[v].size();
        branch = static_cast<int>(v);
      }
    }
    if (branch < 0) {
      if (cover.size() < best_size) {
        best = cover;
        best_size = cover.size();
      }
      return;
    }
    size_t lb = MatchingLowerBound();
    if (cover.size() + lb >= best_size) {
      ++ctx->packing_prunes;
      return;
    }
    if (ctx->nodes >= kFlowBoundMinNodes) {
      size_t flow_lb = FlowLowerBound();
      if (flow_lb > lb && cover.size() + flow_lb >= best_size) {
        ++ctx->flow_prunes;
        return;
      }
    }

    std::vector<std::set<int>> saved_adj = adj;
    size_t saved_cover = cover.size();
    // Branch 1: v in the cover.
    TakeVertex(branch);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
    if (ctx->BudgetExceeded()) return;
    // Branch 2: all neighbors of v in the cover.
    std::set<int> neighbors = adj[static_cast<size_t>(branch)];
    for (int u : neighbors) TakeVertex(u);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
  }
};

// A vertex-cover component split into its solver and the elements the
// singleton sets force: the forced part needs no search.
struct VcInstance {
  VcSolver vc;
  std::vector<int> forced;  // ascending element ids forced by 1-sets
};

// Builds the cover instance for one component; every span must have
// size 1 or 2 (deduplicated). Edges touching a forced element are
// already hit and stay out of the graph.
VcInstance BuildVcInstance(const Family& f, int num_elements) {
  std::vector<bool> forced(static_cast<size_t>(num_elements), false);
  for (size_t i = 0; i < f.size(); ++i) {
    if (f.len(i) == 1) forced[static_cast<size_t>(f.begin(i)[0])] = true;
  }
  VcInstance inst;
  inst.vc.adj.resize(static_cast<size_t>(num_elements));
  for (size_t i = 0; i < f.size(); ++i) {
    if (f.len(i) != 2) continue;
    const int a = f.begin(i)[0], b = f.begin(i)[1];
    if (forced[static_cast<size_t>(a)] || forced[static_cast<size_t>(b)]) {
      continue;  // already hit
    }
    inst.vc.adj[static_cast<size_t>(a)].insert(b);
    inst.vc.adj[static_cast<size_t>(b)].insert(a);
  }
  for (int e = 0; e < num_elements; ++e) {
    if (forced[static_cast<size_t>(e)]) inst.forced.push_back(e);
  }
  return inst;
}

// Solves one hitting-set component as vertex cover; every span must have
// size 1 or 2 (deduplicated). Singleton sets are forced.
std::vector<int> SolveAsVertexCover(const Family& f, int num_elements,
                                    SearchCtx* ctx) {
  VcInstance inst = BuildVcInstance(f, num_elements);
  inst.vc.ctx = ctx;
  inst.vc.GreedySeed();
  inst.vc.Search();
  std::vector<int> chosen = inst.vc.best;
  chosen.insert(chosen.end(), inst.forced.begin(), inst.forced.end());
  return chosen;
}

// Solves one general component with the branch-and-bound solver. The
// component's spans are already reduced (slices of the global fixpoint).
std::vector<int> SolveComponent(Family f, SearchCtx* ctx) {
  Solver solver;
  solver.ctx = ctx;
  solver.InitReduced(std::move(f));
  solver.best_size = 1 << 30;
  solver.GreedyUpperBound();
  solver.Search();
  return solver.best;
}

// Reduction fixpoint shared by the solve and the root bound: dedup +
// superset removal, then element domination, re-reduced until nothing
// changes (domination shrinks sets, which can expose new subset
// relations and vice versa).
Family ReduceToFixpoint(Family f) {
  f = ReduceFamily(std::move(f));
  while (EliminateDominatedElements(&f)) {
    f = ReduceFamily(std::move(f));
  }
  return f;
}

}  // namespace

HittingSetResult SolveMinHittingSet(
    const std::vector<std::vector<int>>& sets) {
  return SolveMinHittingSet(sets, ExactOptions{}, nullptr);
}

int HittingSetLowerBound(const HittingSetFamily& family) {
  if (family.empty()) return 0;
  Solver solver;  // ctx stays null: the root bounds never take a node
  solver.InitReduced(ReduceToFixpoint(family));
  // Both bounds with nothing chosen yet (every set open); the flow bound
  // subsumes the packing one only on 2-set-heavy families, so take the
  // max.
  return std::max(solver.PackingLowerBound(), solver.FlowLowerBound());
}

int HittingSetLowerBound(const std::vector<std::vector<int>>& sets) {
  return HittingSetLowerBound(HittingSetFamily::From(sets));
}

HittingSetResult SolveMinHittingSet(const std::vector<std::vector<int>>& sets,
                                    const ExactOptions& options,
                                    ExactStats* stats) {
  return SolveMinHittingSet(HittingSetFamily::From(sets), options, stats);
}

HittingSetResult SolveMinHittingSet(const HittingSetFamily& family,
                                    const ExactOptions& options,
                                    ExactStats* stats) {
  HittingSetResult result;
  if (family.empty()) return result;

  // Global reduction to fixpoint, then split into connected components
  // over shared elements: two sets with no element in common constrain
  // disjoint parts of the universe, so the minimum hitting set is the
  // concatenation of per-component minima. Components shrink the
  // branching factor *and* let small parts finish instantly while the
  // search budget concentrates on the hard core.
  Family reduced;
  {
    obs::Span span("reduce", "exact");
    reduced = ReduceToFixpoint(family);
  }
  const int num_elements = MaxElementPlusOne(reduced);

  DisjointSet components(num_elements);
  for (size_t i = 0; i < reduced.size(); ++i) {
    const int* s = reduced.begin(i);
    for (size_t j = 1; j < reduced.len(i); ++j) components.Union(s[0], s[j]);
  }
  std::map<int, std::vector<uint32_t>> groups;  // root -> span ids
  for (size_t i = 0; i < reduced.size(); ++i) {
    groups[components.Find(reduced.begin(i)[0])].push_back(
        static_cast<uint32_t>(i));
  }

  // Localize every component up front (serial, in deterministic
  // map-of-roots order): dense local ids keep each component's solver
  // small, and a flat task vector is what the worker pool fans out over.
  struct ComponentTask {
    std::vector<int> local_to_global;
    Family local;
    bool all_small = true;
  };
  std::vector<ComponentTask> tasks;
  tasks.reserve(groups.size());
  std::vector<int> global_to_local(static_cast<size_t>(num_elements), -1);
  for (const auto& [root, group] : groups) {
    ComponentTask task;
    task.local.sets.reserve(group.size());
    for (uint32_t si : group) {
      const uint32_t offset = static_cast<uint32_t>(task.local.pool.size());
      for (const int* p = reduced.begin(si); p != reduced.end(si); ++p) {
        int& slot = global_to_local[static_cast<size_t>(*p)];
        if (slot < 0) {
          slot = static_cast<int>(task.local_to_global.size());
          task.local_to_global.push_back(*p);
        }
        task.local.pool.push_back(slot);
      }
      task.all_small = task.all_small && reduced.len(si) <= 2;
      task.local.sets.push_back(
          SetSpan{offset, reduced.sets[si].len});
    }
    for (int e : task.local_to_global) {
      global_to_local[static_cast<size_t>(e)] = -1;
    }
    tasks.push_back(std::move(task));
  }

  // One budget for the whole solve, one counter slot per component.
  // Components share no elements, so each solve below is a pure
  // function of its task (plus, under a budget, the raced budget
  // atomics) — which worker runs it cannot change its answer or its
  // counters. That is what makes the parallel path byte-identical to
  // the serial one: same per-component searches, same counter slots,
  // merged in the same partition order.
  NodeBudget budget;
  budget.limit = options.node_budget;
  std::vector<SearchCtx> ctxs(tasks.size());
  for (SearchCtx& c : ctxs) c.budget = &budget;
  std::vector<std::vector<int>> chosen(tasks.size());  // local ids per task

  auto solve_component = [&](size_t i) {
    obs::Span span("component-solve", "exact");
    ComponentTask& task = tasks[i];
    chosen[i] =
        task.all_small
            ? SolveAsVertexCover(task.local,
                                 static_cast<int>(task.local_to_global.size()),
                                 &ctxs[i])
            : SolveComponent(std::move(task.local), &ctxs[i]);
  };
  int threads = std::max(1, options.solver_threads);
  if (threads <= 1 || tasks.size() <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) solve_component(i);
  } else {
    WorkerPool pool(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads), tasks.size())));
    pool.Run(tasks.size(), solve_component);
  }

  // Deterministic component-index-ordered merge (the final sort makes
  // the member order canonical regardless of which worker finished
  // first).
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (int e : chosen[i]) {
      result.chosen.push_back(
          tasks[i].local_to_global[static_cast<size_t>(e)]);
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  result.size = static_cast<int>(result.chosen.size());

  // Partition-order merge of the per-component slots (the order is the
  // deterministic map-of-roots order the tasks were built in).
  ExactStats search;
  search.components = static_cast<int>(groups.size());
  for (const SearchCtx& c : ctxs) {
    search.nodes += c.nodes;
    search.packing_prunes += c.packing_prunes;
    search.flow_prunes += c.flow_prunes;
  }
  search.node_budget_exceeded =
      budget.exceeded.load(std::memory_order_relaxed);
  result.proven_optimal = !search.node_budget_exceeded;

  obs::Count("exact.solves");
  obs::Count("exact.components", static_cast<uint64_t>(search.components));
  obs::Count("exact.nodes", search.nodes);
  obs::Count("exact.packing_prunes", search.packing_prunes);
  obs::Count("exact.flow_prunes", search.flow_prunes);

  if (stats != nullptr) stats->Merge(search);
  return result;
}

ResilienceResult ComputeResilienceExact(const Query& q, const Database& db) {
  return ComputeResilienceExact(q, db, ExactOptions{}, nullptr);
}

ResilienceResult ComputeResilienceExact(const Query& q, const Database& db,
                                        const ExactOptions& options,
                                        ExactStats* stats) {
  ResilienceResult result;
  result.solver = SolverKind::kExact;
  WitnessFamily family = CollectWitnessFamily(q, db, options.witness_limit);

  ExactStats local;
  local.witnesses = family.witnesses;
  local.witness_sets = family.size();
  local.witness_budget_exceeded = family.budget_exceeded;

  if (family.unbreakable) {
    result.unbreakable = true;
    if (stats != nullptr) stats->Merge(local);
    return result;
  }
  if (family.budget_exceeded) {
    // Incomplete family: any hitting set of it could miss witnesses, so
    // no answer is returned. Callers must check the stats flag.
    if (stats != nullptr) stats->Merge(local);
    return result;
  }
  if (family.sets.empty()) {
    if (stats != nullptr) stats->Merge(local);
    return result;  // D does not satisfy q
  }

  // Map tuples to dense element ids, straight from the family's spans
  // into the solver's pool — no per-set vectors in between.
  std::map<TupleId, int> ids;
  std::vector<TupleId> tuples;
  HittingSetFamily hs;
  hs.pool.reserve(family.arena.pool_size());
  hs.sets.reserve(family.size());
  for (size_t i = 0; i < family.size(); ++i) {
    const uint32_t offset = static_cast<uint32_t>(hs.pool.size());
    for (const TupleId* t = family.begin(i); t != family.end(i); ++t) {
      auto [it, inserted] = ids.emplace(*t, static_cast<int>(tuples.size()));
      if (inserted) tuples.push_back(*t);
      hs.pool.push_back(it->second);
    }
    hs.sets.push_back(SetSpan{offset, family.sets[i].len});
  }
  HittingSetResult hs_result = SolveMinHittingSet(hs, options, &local);
  result.resilience = hs_result.size;
  for (int e : hs_result.chosen) {
    result.contingency.push_back(tuples[static_cast<size_t>(e)]);
  }
  std::sort(result.contingency.begin(), result.contingency.end());
  if (stats != nullptr) stats->Merge(local);
  return result;
}

}  // namespace rescq
