#include "resilience/exact_solver.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace rescq {

namespace {

// State for the branch-and-bound search. Sets are stored once; "open"
// sets are those not yet hit by the current partial choice.
struct Solver {
  std::vector<std::vector<int>> sets;
  std::vector<std::vector<int>> element_sets;  // element -> set ids
  int num_elements = 0;

  std::vector<int> hit_count;    // per set: #chosen elements in it
  std::vector<bool> chosen;      // per element
  std::vector<int> current;      // chosen stack
  std::vector<int> best;
  int best_size = 0;

  void Init(const std::vector<std::vector<int>>& input) {
    // Deduplicate and discard supersets: hitting a subset hits all of its
    // supersets.
    std::vector<std::vector<int>> uniq;
    {
      std::set<std::vector<int>> seen;
      for (const std::vector<int>& s : input) {
        RESCQ_CHECK(!s.empty());
        std::vector<int> sorted = s;
        std::sort(sorted.begin(), sorted.end());
        sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
        if (seen.insert(sorted).second) uniq.push_back(std::move(sorted));
      }
    }
    std::sort(uniq.begin(), uniq.end(),
              [](const std::vector<int>& a, const std::vector<int>& b) {
                return a.size() < b.size();
              });
    for (const std::vector<int>& s : uniq) {
      bool has_subset = false;
      for (const std::vector<int>& t : sets) {
        if (t.size() >= s.size()) continue;
        if (std::includes(s.begin(), s.end(), t.begin(), t.end())) {
          has_subset = true;
          break;
        }
      }
      if (!has_subset) sets.push_back(s);
    }
    for (const std::vector<int>& s : sets) {
      for (int e : s) num_elements = std::max(num_elements, e + 1);
    }
    element_sets.resize(static_cast<size_t>(num_elements));
    for (size_t i = 0; i < sets.size(); ++i) {
      for (int e : sets[i]) {
        element_sets[static_cast<size_t>(e)].push_back(static_cast<int>(i));
      }
    }
    hit_count.assign(sets.size(), 0);
    chosen.assign(static_cast<size_t>(num_elements), false);
  }

  void Choose(int e) {
    chosen[static_cast<size_t>(e)] = true;
    current.push_back(e);
    for (int s : element_sets[static_cast<size_t>(e)]) {
      ++hit_count[static_cast<size_t>(s)];
    }
  }

  void Unchoose(int e) {
    chosen[static_cast<size_t>(e)] = false;
    current.pop_back();
    for (int s : element_sets[static_cast<size_t>(e)]) {
      --hit_count[static_cast<size_t>(s)];
    }
  }

  // Greedy upper bound: repeatedly pick the element hitting the most open
  // sets. Also used to initialize `best`.
  void GreedyUpperBound() {
    std::vector<bool> open(sets.size(), true);
    size_t open_count = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      open[i] = hit_count[i] == 0;
      open_count += open[i] ? 1 : 0;
    }
    std::vector<int> greedy = current;
    std::vector<int> freq(static_cast<size_t>(num_elements), 0);
    while (open_count > 0) {
      std::fill(freq.begin(), freq.end(), 0);
      for (size_t i = 0; i < sets.size(); ++i) {
        if (!open[i]) continue;
        for (int e : sets[i]) ++freq[static_cast<size_t>(e)];
      }
      int best_e = 0;
      for (int e = 1; e < num_elements; ++e) {
        if (freq[static_cast<size_t>(e)] > freq[static_cast<size_t>(best_e)]) {
          best_e = e;
        }
      }
      greedy.push_back(best_e);
      for (int s : element_sets[static_cast<size_t>(best_e)]) {
        if (open[static_cast<size_t>(s)]) {
          open[static_cast<size_t>(s)] = false;
          --open_count;
        }
      }
    }
    if (best.empty() || static_cast<int>(greedy.size()) < best_size) {
      best = greedy;
      best_size = static_cast<int>(greedy.size());
    }
  }

  // Lower bound on additional elements: greedily pack pairwise
  // element-disjoint open sets; each needs a distinct element.
  int PackingLowerBound() {
    int packed = 0;
    std::vector<bool> used(static_cast<size_t>(num_elements), false);
    // Smaller sets first makes the packing larger on average; sets are
    // globally sorted by size already (Init sorts before superset
    // removal; removal preserves order).
    for (const std::vector<int>& s : sets) {
      bool open = true;
      bool disjoint = true;
      for (int e : s) {
        if (chosen[static_cast<size_t>(e)]) {
          open = false;
          break;
        }
        if (used[static_cast<size_t>(e)]) disjoint = false;
      }
      if (!open || !disjoint) continue;
      ++packed;
      for (int e : s) used[static_cast<size_t>(e)] = true;
    }
    return packed;
  }

  // Finds the open set with the fewest elements; -1 if none.
  int PickBranchSet() {
    int best_set = -1;
    size_t best_sz = ~size_t{0};
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hit_count[i] > 0) continue;
      if (sets[i].size() < best_sz) {
        best_sz = sets[i].size();
        best_set = static_cast<int>(i);
        if (best_sz == 1) break;
      }
    }
    return best_set;
  }

  void Search() {
    int branch_set = PickBranchSet();
    if (branch_set < 0) {
      if (static_cast<int>(current.size()) < best_size) {
        best = current;
        best_size = static_cast<int>(current.size());
      }
      return;
    }
    int lb = PackingLowerBound();
    if (static_cast<int>(current.size()) + lb >= best_size) return;

    // Branch over the elements of the smallest open set, most-frequent
    // first.
    std::vector<int> elems = sets[static_cast<size_t>(branch_set)];
    std::sort(elems.begin(), elems.end(), [&](int a, int b) {
      return element_sets[static_cast<size_t>(a)].size() >
             element_sets[static_cast<size_t>(b)].size();
    });
    for (int e : elems) {
      Choose(e);
      Search();
      Unchoose(e);
    }
  }
};

// Specialized exact vertex cover for the all-sets-size-<=2 case (graph
// instances; the hardness gadgets produce exactly these). Classic branch
// and bound: eager degree-0/1 reductions, branching "v in cover" vs
// "N(v) in cover" on a maximum-degree vertex, greedy-matching lower
// bound. Cycles and trees collapse under the reductions, which is what
// the paper's variable gadgets are made of.
struct VcSolver {
  std::vector<std::set<int>> adj;
  std::vector<int> cover;   // current partial cover
  std::vector<int> best;
  size_t best_size = ~size_t{0};

  void TakeVertex(int v) {
    cover.push_back(v);
    std::set<int> neighbors = adj[static_cast<size_t>(v)];
    for (int u : neighbors) {
      adj[static_cast<size_t>(u)].erase(v);
    }
    adj[static_cast<size_t>(v)].clear();
  }

  void Reduce() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t v = 0; v < adj.size(); ++v) {
        if (adj[v].size() == 1) {
          TakeVertex(*adj[v].begin());
          changed = true;
        }
      }
    }
  }

  size_t MatchingLowerBound() const {
    std::vector<bool> used(adj.size(), false);
    size_t matching = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (used[v]) continue;
      for (int u : adj[v]) {
        if (!used[static_cast<size_t>(u)]) {
          used[v] = true;
          used[static_cast<size_t>(u)] = true;
          ++matching;
          break;
        }
      }
    }
    return matching;
  }

  void Search() {
    Reduce();
    int branch = -1;
    size_t max_deg = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (adj[v].size() > max_deg) {
        max_deg = adj[v].size();
        branch = static_cast<int>(v);
      }
    }
    if (branch < 0) {
      if (cover.size() < best_size) {
        best = cover;
        best_size = cover.size();
      }
      return;
    }
    if (cover.size() + MatchingLowerBound() >= best_size) return;

    std::vector<std::set<int>> saved_adj = adj;
    size_t saved_cover = cover.size();
    // Branch 1: v in the cover.
    TakeVertex(branch);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
    // Branch 2: all neighbors of v in the cover.
    std::set<int> neighbors = adj[static_cast<size_t>(branch)];
    for (int u : neighbors) TakeVertex(u);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
  }
};

// Solves the hitting-set instance as vertex cover; `sets` must all have
// size 1 or 2 (after Init's dedup). Singleton sets are forced.
HittingSetResult SolveAsVertexCover(const std::vector<std::vector<int>>& sets,
                                    int num_elements) {
  std::vector<bool> forced(static_cast<size_t>(num_elements), false);
  for (const std::vector<int>& s : sets) {
    if (s.size() == 1) forced[static_cast<size_t>(s[0])] = true;
  }
  VcSolver vc;
  vc.adj.resize(static_cast<size_t>(num_elements));
  for (const std::vector<int>& s : sets) {
    if (s.size() != 2) continue;
    if (forced[static_cast<size_t>(s[0])] || forced[static_cast<size_t>(s[1])]) {
      continue;  // already hit
    }
    vc.adj[static_cast<size_t>(s[0])].insert(s[1]);
    vc.adj[static_cast<size_t>(s[1])].insert(s[0]);
  }
  vc.Search();
  HittingSetResult result;
  result.chosen = vc.best;
  for (int e = 0; e < num_elements; ++e) {
    if (forced[static_cast<size_t>(e)]) result.chosen.push_back(e);
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  result.size = static_cast<int>(result.chosen.size());
  return result;
}

}  // namespace

HittingSetResult SolveMinHittingSet(
    const std::vector<std::vector<int>>& sets) {
  HittingSetResult result;
  if (sets.empty()) return result;
  Solver solver;
  solver.Init(sets);
  bool all_small = true;
  for (const std::vector<int>& s : solver.sets) {
    all_small = all_small && s.size() <= 2;
  }
  if (all_small) return SolveAsVertexCover(solver.sets, solver.num_elements);
  solver.best_size = 1 << 30;
  solver.GreedyUpperBound();
  solver.Search();
  result.size = solver.best_size;
  result.chosen = solver.best;
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

ResilienceResult ComputeResilienceExact(const Query& q, const Database& db) {
  ResilienceResult result;
  result.solver = SolverKind::kExact;
  std::vector<std::vector<TupleId>> witness_sets = WitnessTupleSets(q, db);
  if (witness_sets.empty()) return result;  // D does not satisfy q

  // Map tuples to dense element ids.
  std::map<TupleId, int> ids;
  std::vector<TupleId> tuples;
  std::vector<std::vector<int>> sets;
  for (const std::vector<TupleId>& w : witness_sets) {
    if (w.empty()) {
      result.unbreakable = true;
      return result;
    }
    std::vector<int> s;
    for (TupleId t : w) {
      auto [it, inserted] = ids.emplace(t, static_cast<int>(tuples.size()));
      if (inserted) tuples.push_back(t);
      s.push_back(it->second);
    }
    sets.push_back(std::move(s));
  }
  HittingSetResult hs = SolveMinHittingSet(sets);
  result.resilience = hs.size;
  for (int e : hs.chosen) result.contingency.push_back(tuples[static_cast<size_t>(e)]);
  std::sort(result.contingency.begin(), result.contingency.end());
  return result;
}

}  // namespace rescq
