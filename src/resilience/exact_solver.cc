#include "resilience/exact_solver.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "flow/max_flow.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/disjoint_set.h"
#include "util/parallel.h"

namespace rescq {

void ExactStats::Merge(const ExactStats& other) {
  witnesses += other.witnesses;
  witness_sets += other.witness_sets;
  components += other.components;
  nodes += other.nodes;
  packing_prunes += other.packing_prunes;
  flow_prunes += other.flow_prunes;
  witness_budget_exceeded = witness_budget_exceeded ||
                            other.witness_budget_exceeded;
  node_budget_exceeded = node_budget_exceeded || other.node_budget_exceeded;
}

namespace {

// Node-budget state shared by all components of one solve — and, when
// components fan out to a worker pool, by all workers at once, so its
// fields are atomics. Relaxed ordering suffices: the budget only gates
// a heuristic cutoff, never publishes data between threads. Once it
// trips, every further Search() on any worker returns immediately and
// the incumbents (seeded by the greedy upper bounds, so always
// feasible) stand as the answer. Under contention the taken count may
// overshoot the limit by at most one per worker (each worker checks,
// then increments). With no budget set (limit 0, the default) the
// atomics are never touched at all.
struct NodeBudget {
  uint64_t limit = 0;  // 0 = unlimited
  std::atomic<uint64_t> taken{0};
  std::atomic<bool> exceeded{false};
};

// Per-component search counters. Exactly one worker owns a component,
// so the counters are plain integers: summing them in partition order
// afterwards makes ExactStats byte-identical at any thread count —
// there is no shared mutable reporting state for schedules to race on.
// Only the budget (when set) crosses components.
struct SearchCtx {
  NodeBudget* budget = nullptr;
  uint64_t nodes = 0;
  uint64_t packing_prunes = 0;
  uint64_t flow_prunes = 0;

  bool TakeNode() {
    if (budget->limit != 0) {
      if (budget->taken.load(std::memory_order_relaxed) >= budget->limit) {
        budget->exceeded.store(true, std::memory_order_relaxed);
        return false;
      }
      budget->taken.fetch_add(1, std::memory_order_relaxed);
    }
    ++nodes;
    return true;
  }

  bool BudgetExceeded() const {
    return budget->limit != 0 &&
           budget->exceeded.load(std::memory_order_relaxed);
  }
};

// Below this many residual edges a Dinic run costs more than the nodes
// it could prune — the greedy bounds and the eager reductions already
// dispatch such instances in a handful of nodes.
constexpr size_t kFlowBoundMinEdges = 8;

// The flow bound also waits until the component's search has expanded
// this many nodes: a component that finishes earlier was never going to
// repay a Dinic run per node, while a search still alive past the
// threshold is exactly where the stronger bound cuts whole subtrees.
// The gate reads the component-local counter, so whether it fires never
// depends on sibling components or on the worker schedule.
constexpr uint64_t kFlowBoundMinNodes = 32;

// LP-dual lower bound over size-2 sets: a maximum *fractional* matching
// of the graph they form is dual-feasible for the hitting-set LP, so its
// value bounds any hitting set of those edges from below. Its value is
// half the maximum integral matching of the bipartite double cover
// (each vertex split into a left and a right copy, each edge doubled),
// which Dinic computes directly — no blossom needed. Returns the ceiling,
// which is still a valid bound because hitting sets are integral.
int FractionalMatchingBound(const std::vector<std::pair<int, int>>& edges,
                            int max_id) {
  if (edges.empty()) return 0;
  std::vector<int> dense(static_cast<size_t>(max_id), -1);
  int k = 0;
  for (const auto& [a, b] : edges) {
    if (dense[static_cast<size_t>(a)] < 0) dense[static_cast<size_t>(a)] = k++;
    if (dense[static_cast<size_t>(b)] < 0) dense[static_cast<size_t>(b)] = k++;
  }
  MaxFlow flow(2 + 2 * k);
  const int s = 0, t = 1;
  for (int i = 0; i < k; ++i) {
    flow.AddEdge(s, 2 + i, 1);
    flow.AddEdge(2 + k + i, t, 1);
  }
  for (const auto& [a, b] : edges) {
    int ia = dense[static_cast<size_t>(a)];
    int ib = dense[static_cast<size_t>(b)];
    flow.AddEdge(2 + ia, 2 + k + ib, 1);
    flow.AddEdge(2 + ib, 2 + k + ia, 1);
  }
  int64_t f = flow.Compute(s, t);
  return static_cast<int>((f + 1) / 2);
}

// Sorts every set, deduplicates the family, and drops supersets (hitting
// a subset hits all of its supersets). Output is size-ascending; all
// flat sort-based passes — this runs 2-3x per solve on the reduction
// fixpoint, so it must not allocate per set like a std::set would.
std::vector<std::vector<int>> ReduceFamily(std::vector<std::vector<int>> sets) {
  for (std::vector<int>& s : sets) {
    RESCQ_CHECK(!s.empty());
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  std::sort(sets.begin(), sets.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              return a.size() != b.size() ? a.size() < b.size() : a < b;
            });
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  std::vector<std::vector<int>> out;
  out.reserve(sets.size());
  for (std::vector<int>& s : sets) {
    bool has_subset = false;
    for (const std::vector<int>& t : out) {
      if (t.size() >= s.size()) continue;
      if (std::includes(s.begin(), s.end(), t.begin(), t.end())) {
        has_subset = true;
        break;
      }
    }
    if (!has_subset) out.push_back(std::move(s));
  }
  return out;
}

// State for the branch-and-bound search. Sets are stored once; "open"
// sets are those not yet hit by the current partial choice.
struct Solver {
  std::vector<std::vector<int>> sets;
  std::vector<std::vector<int>> element_sets;  // element -> set ids
  int num_elements = 0;
  SearchCtx* ctx = nullptr;

  std::vector<int> hit_count;    // per set: #chosen elements in it
  std::vector<bool> chosen;      // per element
  std::vector<int> current;      // chosen stack
  std::vector<int> best;
  int best_size = 0;

  void Init(const std::vector<std::vector<int>>& input) {
    InitReduced(ReduceFamily(input));
  }

  // For families that are already sorted, deduplicated, and subset-free
  // (per-component slices of a globally reduced family).
  void InitReduced(std::vector<std::vector<int>> reduced) {
    sets = std::move(reduced);
    for (const std::vector<int>& s : sets) {
      for (int e : s) num_elements = std::max(num_elements, e + 1);
    }
    element_sets.resize(static_cast<size_t>(num_elements));
    for (size_t i = 0; i < sets.size(); ++i) {
      for (int e : sets[i]) {
        element_sets[static_cast<size_t>(e)].push_back(static_cast<int>(i));
      }
    }
    hit_count.assign(sets.size(), 0);
    chosen.assign(static_cast<size_t>(num_elements), false);
  }

  void Choose(int e) {
    chosen[static_cast<size_t>(e)] = true;
    current.push_back(e);
    for (int s : element_sets[static_cast<size_t>(e)]) {
      ++hit_count[static_cast<size_t>(s)];
    }
  }

  void Unchoose(int e) {
    chosen[static_cast<size_t>(e)] = false;
    current.pop_back();
    for (int s : element_sets[static_cast<size_t>(e)]) {
      --hit_count[static_cast<size_t>(s)];
    }
  }

  // Greedy upper bound: repeatedly pick the element hitting the most open
  // sets. Also used to initialize `best`.
  void GreedyUpperBound() {
    std::vector<bool> open(sets.size(), true);
    size_t open_count = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      open[i] = hit_count[i] == 0;
      open_count += open[i] ? 1 : 0;
    }
    std::vector<int> greedy = current;
    std::vector<int> freq(static_cast<size_t>(num_elements), 0);
    while (open_count > 0) {
      std::fill(freq.begin(), freq.end(), 0);
      for (size_t i = 0; i < sets.size(); ++i) {
        if (!open[i]) continue;
        for (int e : sets[i]) ++freq[static_cast<size_t>(e)];
      }
      int best_e = 0;
      for (int e = 1; e < num_elements; ++e) {
        if (freq[static_cast<size_t>(e)] > freq[static_cast<size_t>(best_e)]) {
          best_e = e;
        }
      }
      greedy.push_back(best_e);
      for (int s : element_sets[static_cast<size_t>(best_e)]) {
        if (open[static_cast<size_t>(s)]) {
          open[static_cast<size_t>(s)] = false;
          --open_count;
        }
      }
    }
    if (best.empty() || static_cast<int>(greedy.size()) < best_size) {
      best = greedy;
      best_size = static_cast<int>(greedy.size());
    }
  }

  // Lower bound on additional elements: greedily pack pairwise
  // element-disjoint open sets; each needs a distinct element.
  int PackingLowerBound() {
    int packed = 0;
    std::vector<bool> used(static_cast<size_t>(num_elements), false);
    // Smaller sets first makes the packing larger on average; sets are
    // globally sorted by size already (Init sorts before superset
    // removal; removal preserves order).
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hit_count[i] > 0) continue;
      const std::vector<int>& s = sets[i];
      bool disjoint = true;
      for (int e : s) {
        if (used[static_cast<size_t>(e)]) disjoint = false;
      }
      if (!disjoint) continue;
      ++packed;
      for (int e : s) used[static_cast<size_t>(e)] = true;
    }
    return packed;
  }

  // Stronger lower bound: disjoint-pack the open sets of size != 2, then
  // add the fractional-matching dual over the open 2-sets that avoid the
  // packed elements. Dual-feasible for the hitting-set LP (each element
  // is claimed by at most one packed set or by the matching, never
  // both), so it is a valid bound; it beats pure packing whenever the
  // 2-sets form odd structures the greedy can only half-use.
  int FlowLowerBound() {
    std::vector<bool> used(static_cast<size_t>(num_elements), false);
    int packed = 0;
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hit_count[i] > 0) continue;
      const std::vector<int>& s = sets[i];
      if (s.size() == 2) continue;  // handled by the matching below
      bool disjoint = true;
      for (int e : s) {
        if (used[static_cast<size_t>(e)]) disjoint = false;
      }
      if (!disjoint) continue;
      ++packed;
      for (int e : s) used[static_cast<size_t>(e)] = true;
    }
    std::vector<std::pair<int, int>> edges;
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hit_count[i] > 0 || sets[i].size() != 2) continue;
      int a = sets[i][0], b = sets[i][1];
      if (used[static_cast<size_t>(a)] || used[static_cast<size_t>(b)]) {
        continue;
      }
      edges.emplace_back(a, b);
    }
    if (edges.size() < kFlowBoundMinEdges) {
      return packed;  // skip the Dinic run, keep the packing just computed
    }
    return packed + FractionalMatchingBound(edges, num_elements);
  }

  // Finds the open set with the fewest elements; -1 if none.
  int PickBranchSet() {
    int best_set = -1;
    size_t best_sz = ~size_t{0};
    for (size_t i = 0; i < sets.size(); ++i) {
      if (hit_count[i] > 0) continue;
      if (sets[i].size() < best_sz) {
        best_sz = sets[i].size();
        best_set = static_cast<int>(i);
        if (best_sz == 1) break;
      }
    }
    return best_set;
  }

  void Search() {
    if (!ctx->TakeNode()) return;
    int branch_set = PickBranchSet();
    if (branch_set < 0) {
      if (static_cast<int>(current.size()) < best_size) {
        best = current;
        best_size = static_cast<int>(current.size());
      }
      return;
    }
    int lb = PackingLowerBound();
    if (static_cast<int>(current.size()) + lb >= best_size) {
      ++ctx->packing_prunes;
      return;
    }
    // The flow bound costs a Dinic run, so it only fires where the cheap
    // packing bound failed to prune and the search is demonstrably
    // non-trivial — exactly the nodes worth cutting.
    if (ctx->nodes >= kFlowBoundMinNodes) {
      int flow_lb = FlowLowerBound();
      if (flow_lb > lb &&
          static_cast<int>(current.size()) + flow_lb >= best_size) {
        ++ctx->flow_prunes;
        return;
      }
    }

    // Branch over the elements of the smallest open set, most-frequent
    // first.
    std::vector<int> elems = sets[static_cast<size_t>(branch_set)];
    std::sort(elems.begin(), elems.end(), [&](int a, int b) {
      return element_sets[static_cast<size_t>(a)].size() >
             element_sets[static_cast<size_t>(b)].size();
    });
    for (int e : elems) {
      Choose(e);
      Search();
      Unchoose(e);
      if (ctx->BudgetExceeded()) return;
    }
  }
};

// Element domination: if every set containing b also contains some a
// (a != b), a minimum hitting set never needs b — any solution using b
// can swap it for a — so b is deleted from the family. Ties (identical
// membership) break toward the smaller id so exactly one of the pair
// survives. Classic hitting-set preprocessing; on the q_vc witness
// families it strips the per-edge S-tuples (each private to one set that
// also holds both endpoint R-tuples) and leaves a pure vertex-cover
// instance the matching bounds are exact on. Sets stay non-empty: every
// set that loses b still contains its dominator. Returns true when
// something was removed (callers re-reduce and iterate to fixpoint).
bool EliminateDominatedElements(std::vector<std::vector<int>>* sets) {
  int num_elements = 0;
  for (const std::vector<int>& s : *sets) {
    for (int e : s) num_elements = std::max(num_elements, e + 1);
  }
  std::vector<std::vector<int>> element_sets(
      static_cast<size_t>(num_elements));
  for (size_t i = 0; i < sets->size(); ++i) {
    for (int e : (*sets)[i]) {
      element_sets[static_cast<size_t>(e)].push_back(static_cast<int>(i));
    }
  }
  std::vector<bool> removed(static_cast<size_t>(num_elements), false);
  bool changed = false;
  for (int b = 0; b < num_elements; ++b) {
    const std::vector<int>& sb = element_sets[static_cast<size_t>(b)];
    if (sb.empty()) continue;
    // A dominator of b sits in every set containing b, in particular the
    // first one — so only its elements need checking.
    for (int a : (*sets)[static_cast<size_t>(sb[0])]) {
      if (a == b || removed[static_cast<size_t>(a)]) continue;
      const std::vector<int>& sa = element_sets[static_cast<size_t>(a)];
      if (sa.size() < sb.size()) continue;
      if (!std::includes(sa.begin(), sa.end(), sb.begin(), sb.end())) {
        continue;
      }
      if (sa.size() == sb.size() && a > b) continue;  // keep the smaller id
      removed[static_cast<size_t>(b)] = true;
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  for (std::vector<int>& s : *sets) {
    s.erase(std::remove_if(
                s.begin(), s.end(),
                [&](int e) { return removed[static_cast<size_t>(e)]; }),
            s.end());
  }
  return true;
}

// Specialized exact vertex cover for the all-sets-size-<=2 case (graph
// instances; the hardness gadgets produce exactly these). Classic branch
// and bound: eager degree-0/1 reductions, branching "v in cover" vs
// "N(v) in cover" on a maximum-degree vertex, a greedy-matching lower
// bound backed by the fractional-matching flow bound, and a max-degree
// greedy cover seeding the incumbent. Cycles and trees collapse under
// the reductions, which is what the paper's variable gadgets are made of.
struct VcSolver {
  std::vector<std::set<int>> adj;
  SearchCtx* ctx = nullptr;
  std::vector<int> cover;   // current partial cover
  std::vector<int> best;
  size_t best_size = ~size_t{0};

  void TakeVertex(int v) {
    cover.push_back(v);
    std::set<int> neighbors = adj[static_cast<size_t>(v)];
    for (int u : neighbors) {
      adj[static_cast<size_t>(u)].erase(v);
    }
    adj[static_cast<size_t>(v)].clear();
  }

  void Reduce() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (size_t v = 0; v < adj.size(); ++v) {
        if (adj[v].size() == 1) {
          TakeVertex(*adj[v].begin());
          changed = true;
        }
      }
    }
  }

  // Max-degree greedy cover: seeds `best` so that pruning bites from the
  // first search node and a budget-stopped search still holds a feasible
  // answer.
  void GreedySeed() {
    std::vector<std::set<int>> saved = adj;
    for (;;) {
      int v = -1;
      size_t max_deg = 0;
      for (size_t u = 0; u < adj.size(); ++u) {
        if (adj[u].size() > max_deg) {
          max_deg = adj[u].size();
          v = static_cast<int>(u);
        }
      }
      if (v < 0) break;
      TakeVertex(v);
    }
    best = cover;
    best_size = cover.size();
    adj = std::move(saved);
    cover.clear();
  }

  size_t MatchingLowerBound() const {
    std::vector<bool> used(adj.size(), false);
    size_t matching = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (used[v]) continue;
      for (int u : adj[v]) {
        if (!used[static_cast<size_t>(u)]) {
          used[v] = true;
          used[static_cast<size_t>(u)] = true;
          ++matching;
          break;
        }
      }
    }
    return matching;
  }

  // Fractional matching over the remaining edges (see
  // FractionalMatchingBound): exact on bipartite residuals by König, and
  // gains the +1/2-per-odd-component the greedy matching leaves behind.
  size_t FlowLowerBound() const {
    std::vector<std::pair<int, int>> edges;
    for (size_t v = 0; v < adj.size(); ++v) {
      for (int u : adj[v]) {
        if (u > static_cast<int>(v)) edges.emplace_back(static_cast<int>(v), u);
      }
    }
    if (edges.size() < kFlowBoundMinEdges) return 0;  // not worth a Dinic run
    return static_cast<size_t>(
        FractionalMatchingBound(edges, static_cast<int>(adj.size())));
  }

  void Search() {
    if (!ctx->TakeNode()) return;
    Reduce();
    int branch = -1;
    size_t max_deg = 0;
    for (size_t v = 0; v < adj.size(); ++v) {
      if (adj[v].size() > max_deg) {
        max_deg = adj[v].size();
        branch = static_cast<int>(v);
      }
    }
    if (branch < 0) {
      if (cover.size() < best_size) {
        best = cover;
        best_size = cover.size();
      }
      return;
    }
    size_t lb = MatchingLowerBound();
    if (cover.size() + lb >= best_size) {
      ++ctx->packing_prunes;
      return;
    }
    if (ctx->nodes >= kFlowBoundMinNodes) {
      size_t flow_lb = FlowLowerBound();
      if (flow_lb > lb && cover.size() + flow_lb >= best_size) {
        ++ctx->flow_prunes;
        return;
      }
    }

    std::vector<std::set<int>> saved_adj = adj;
    size_t saved_cover = cover.size();
    // Branch 1: v in the cover.
    TakeVertex(branch);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
    if (ctx->BudgetExceeded()) return;
    // Branch 2: all neighbors of v in the cover.
    std::set<int> neighbors = adj[static_cast<size_t>(branch)];
    for (int u : neighbors) TakeVertex(u);
    Search();
    adj = saved_adj;
    cover.resize(saved_cover);
  }
};

// A vertex-cover component split into its solver and the elements the
// singleton sets force: the forced part needs no search.
struct VcInstance {
  VcSolver vc;
  std::vector<int> forced;  // ascending element ids forced by 1-sets
};

// Builds the cover instance for one component; `sets` must all have
// size 1 or 2 (deduplicated). Edges touching a forced element are
// already hit and stay out of the graph.
VcInstance BuildVcInstance(const std::vector<std::vector<int>>& sets,
                           int num_elements) {
  std::vector<bool> forced(static_cast<size_t>(num_elements), false);
  for (const std::vector<int>& s : sets) {
    if (s.size() == 1) forced[static_cast<size_t>(s[0])] = true;
  }
  VcInstance inst;
  inst.vc.adj.resize(static_cast<size_t>(num_elements));
  for (const std::vector<int>& s : sets) {
    if (s.size() != 2) continue;
    if (forced[static_cast<size_t>(s[0])] || forced[static_cast<size_t>(s[1])]) {
      continue;  // already hit
    }
    inst.vc.adj[static_cast<size_t>(s[0])].insert(s[1]);
    inst.vc.adj[static_cast<size_t>(s[1])].insert(s[0]);
  }
  for (int e = 0; e < num_elements; ++e) {
    if (forced[static_cast<size_t>(e)]) inst.forced.push_back(e);
  }
  return inst;
}

// Solves one hitting-set component as vertex cover; `sets` must all have
// size 1 or 2 (deduplicated). Singleton sets are forced.
std::vector<int> SolveAsVertexCover(const std::vector<std::vector<int>>& sets,
                                    int num_elements, SearchCtx* ctx) {
  VcInstance inst = BuildVcInstance(sets, num_elements);
  inst.vc.ctx = ctx;
  inst.vc.GreedySeed();
  inst.vc.Search();
  std::vector<int> chosen = inst.vc.best;
  chosen.insert(chosen.end(), inst.forced.begin(), inst.forced.end());
  return chosen;
}

// Solves one general component with the branch-and-bound solver. The
// component's sets are already reduced (slices of the global fixpoint).
std::vector<int> SolveComponent(std::vector<std::vector<int>> sets,
                                SearchCtx* ctx) {
  Solver solver;
  solver.ctx = ctx;
  solver.InitReduced(std::move(sets));
  solver.best_size = 1 << 30;
  solver.GreedyUpperBound();
  solver.Search();
  return solver.best;
}

}  // namespace

HittingSetResult SolveMinHittingSet(
    const std::vector<std::vector<int>>& sets) {
  return SolveMinHittingSet(sets, ExactOptions{}, nullptr);
}

int HittingSetLowerBound(const std::vector<std::vector<int>>& sets) {
  if (sets.empty()) return 0;
  std::vector<std::vector<int>> reduced = ReduceFamily(sets);
  while (EliminateDominatedElements(&reduced)) {
    reduced = ReduceFamily(std::move(reduced));
  }
  Solver solver;  // ctx stays null: the root bounds never take a node
  solver.InitReduced(std::move(reduced));
  // Both bounds with nothing chosen yet (every set open); the flow bound
  // subsumes the packing one only on 2-set-heavy families, so take the
  // max.
  return std::max(solver.PackingLowerBound(), solver.FlowLowerBound());
}

HittingSetResult SolveMinHittingSet(const std::vector<std::vector<int>>& sets,
                                    const ExactOptions& options,
                                    ExactStats* stats) {
  HittingSetResult result;
  if (sets.empty()) return result;

  // Global reduction to fixpoint — dedup + superset removal, then
  // element domination, re-reduced until nothing changes (domination
  // shrinks sets, which can expose new subset relations and vice
  // versa) — then split into connected components over shared elements:
  // two sets with no element in common constrain disjoint parts of the
  // universe, so the minimum hitting set is the concatenation of
  // per-component minima. Components shrink the branching factor *and*
  // let small parts finish instantly while the search budget
  // concentrates on the hard core.
  std::vector<std::vector<int>> reduced;
  {
    obs::Span span("reduce", "exact");
    reduced = ReduceFamily(sets);
    while (EliminateDominatedElements(&reduced)) {
      reduced = ReduceFamily(std::move(reduced));
    }
  }
  int num_elements = 0;
  for (const std::vector<int>& s : reduced) {
    for (int e : s) num_elements = std::max(num_elements, e + 1);
  }

  DisjointSet components(num_elements);
  for (const std::vector<int>& s : reduced) {
    for (size_t j = 1; j < s.size(); ++j) components.Union(s[0], s[j]);
  }
  std::map<int, std::vector<const std::vector<int>*>> groups;
  for (const std::vector<int>& s : reduced) {
    groups[components.Find(s[0])].push_back(&s);
  }

  // Localize every component up front (serial, in deterministic
  // map-of-roots order): dense local ids keep each component's solver
  // small, and a flat task vector is what the worker pool fans out over.
  struct ComponentTask {
    std::vector<int> local_to_global;
    std::vector<std::vector<int>> local_sets;
    bool all_small = true;
  };
  std::vector<ComponentTask> tasks;
  tasks.reserve(groups.size());
  std::vector<int> global_to_local(static_cast<size_t>(num_elements), -1);
  for (const auto& [root, group] : groups) {
    ComponentTask task;
    task.local_sets.reserve(group.size());
    for (const std::vector<int>* s : group) {
      std::vector<int> local;
      local.reserve(s->size());
      for (int e : *s) {
        int& slot = global_to_local[static_cast<size_t>(e)];
        if (slot < 0) {
          slot = static_cast<int>(task.local_to_global.size());
          task.local_to_global.push_back(e);
        }
        local.push_back(slot);
      }
      task.all_small = task.all_small && local.size() <= 2;
      task.local_sets.push_back(std::move(local));
    }
    for (int e : task.local_to_global) {
      global_to_local[static_cast<size_t>(e)] = -1;
    }
    tasks.push_back(std::move(task));
  }

  // One budget for the whole solve, one counter slot per component.
  // Components share no elements, so each solve below is a pure
  // function of its task (plus, under a budget, the raced budget
  // atomics) — which worker runs it cannot change its answer or its
  // counters. That is what makes the parallel path byte-identical to
  // the serial one: same per-component searches, same counter slots,
  // merged in the same partition order.
  NodeBudget budget;
  budget.limit = options.node_budget;
  std::vector<SearchCtx> ctxs(tasks.size());
  for (SearchCtx& c : ctxs) c.budget = &budget;
  std::vector<std::vector<int>> chosen(tasks.size());  // local ids per task

  auto solve_component = [&](size_t i) {
    obs::Span span("component-solve", "exact");
    ComponentTask& task = tasks[i];
    chosen[i] =
        task.all_small
            ? SolveAsVertexCover(task.local_sets,
                                 static_cast<int>(task.local_to_global.size()),
                                 &ctxs[i])
            : SolveComponent(std::move(task.local_sets), &ctxs[i]);
  };
  int threads = std::max(1, options.solver_threads);
  if (threads <= 1 || tasks.size() <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) solve_component(i);
  } else {
    WorkerPool pool(static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads), tasks.size())));
    pool.Run(tasks.size(), solve_component);
  }

  // Deterministic component-index-ordered merge (the final sort makes
  // the member order canonical regardless of which worker finished
  // first).
  for (size_t i = 0; i < tasks.size(); ++i) {
    for (int e : chosen[i]) {
      result.chosen.push_back(
          tasks[i].local_to_global[static_cast<size_t>(e)]);
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  result.size = static_cast<int>(result.chosen.size());

  // Partition-order merge of the per-component slots (the order is the
  // deterministic map-of-roots order the tasks were built in).
  ExactStats search;
  search.components = static_cast<int>(groups.size());
  for (const SearchCtx& c : ctxs) {
    search.nodes += c.nodes;
    search.packing_prunes += c.packing_prunes;
    search.flow_prunes += c.flow_prunes;
  }
  search.node_budget_exceeded =
      budget.exceeded.load(std::memory_order_relaxed);
  result.proven_optimal = !search.node_budget_exceeded;

  obs::Count("exact.solves");
  obs::Count("exact.components", static_cast<uint64_t>(search.components));
  obs::Count("exact.nodes", search.nodes);
  obs::Count("exact.packing_prunes", search.packing_prunes);
  obs::Count("exact.flow_prunes", search.flow_prunes);

  if (stats != nullptr) stats->Merge(search);
  return result;
}

ResilienceResult ComputeResilienceExact(const Query& q, const Database& db) {
  return ComputeResilienceExact(q, db, ExactOptions{}, nullptr);
}

ResilienceResult ComputeResilienceExact(const Query& q, const Database& db,
                                        const ExactOptions& options,
                                        ExactStats* stats) {
  ResilienceResult result;
  result.solver = SolverKind::kExact;
  WitnessFamily family = CollectWitnessFamily(q, db, options.witness_limit);

  ExactStats local;
  local.witnesses = family.witnesses;
  local.witness_sets = family.sets.size();
  local.witness_budget_exceeded = family.budget_exceeded;

  if (family.unbreakable) {
    result.unbreakable = true;
    if (stats != nullptr) stats->Merge(local);
    return result;
  }
  if (family.budget_exceeded) {
    // Incomplete family: any hitting set of it could miss witnesses, so
    // no answer is returned. Callers must check the stats flag.
    if (stats != nullptr) stats->Merge(local);
    return result;
  }
  if (family.sets.empty()) {
    if (stats != nullptr) stats->Merge(local);
    return result;  // D does not satisfy q
  }

  // Map tuples to dense element ids.
  std::map<TupleId, int> ids;
  std::vector<TupleId> tuples;
  std::vector<std::vector<int>> sets;
  sets.reserve(family.sets.size());
  for (const std::vector<TupleId>& w : family.sets) {
    std::vector<int> s;
    s.reserve(w.size());
    for (TupleId t : w) {
      auto [it, inserted] = ids.emplace(t, static_cast<int>(tuples.size()));
      if (inserted) tuples.push_back(t);
      s.push_back(it->second);
    }
    sets.push_back(std::move(s));
  }
  HittingSetResult hs = SolveMinHittingSet(sets, options, &local);
  result.resilience = hs.size;
  for (int e : hs.chosen) {
    result.contingency.push_back(tuples[static_cast<size_t>(e)]);
  }
  std::sort(result.contingency.begin(), result.contingency.end());
  if (stats != nullptr) stats->Merge(local);
  return result;
}

}  // namespace rescq
