#include "resilience/linear_flow_solver.h"

#include <algorithm>
#include <map>

#include "complexity/linearity.h"
#include "db/witness.h"
#include "flow/max_flow.h"
#include "util/check.h"

namespace rescq {

std::optional<ResilienceResult> SolveLinearFlow(
    const Query& q, const Database& db,
    const TupleOverride& force_undeletable) {
  std::optional<std::vector<int>> order_opt = FindLinearOrder(q);
  if (!order_opt.has_value()) return std::nullopt;
  const std::vector<int>& order = *order_opt;
  const int m = q.num_atoms();
  std::vector<std::vector<VarId>> interfaces = LinearInterfaces(q, order);

  std::vector<Witness> witnesses = EnumerateWitnesses(q, db, kNoWitnessLimit);
  ResilienceResult result;
  result.solver = SolverKind::kLinearFlow;
  if (witnesses.empty()) return result;

  MaxFlow flow(2);  // s = 0, t = 1
  const int s = 0;
  const int t = 1;
  // Interface nodes: (boundary index, interface values) -> node.
  std::map<std::pair<int, std::vector<Value>>, int> nodes;
  auto boundary_node = [&](int boundary, const std::vector<Value>& key) {
    if (boundary == 0) return s;
    if (boundary == m) return t;
    auto [it, inserted] = nodes.try_emplace({boundary, key}, -1);
    if (inserted) it->second = flow.AddNode();
    return it->second;
  };
  // Edges: (position, tuple) -> edge index; edge tag indexes edge_tuples.
  std::map<std::pair<int, TupleId>, int> edges;
  std::vector<TupleId> edge_tuples;
  std::vector<bool> edge_deletable;

  for (const Witness& w : witnesses) {
    for (int pos = 0; pos < m; ++pos) {
      int atom_idx = order[static_cast<size_t>(pos)];
      TupleId tuple = w.atom_tuples[static_cast<size_t>(atom_idx)];
      auto key = std::make_pair(pos, tuple);
      if (edges.count(key)) continue;

      std::vector<Value> left_key, right_key;
      if (pos > 0) {
        for (VarId v : interfaces[static_cast<size_t>(pos - 1)]) {
          left_key.push_back(w.assignment[static_cast<size_t>(v)]);
        }
      }
      if (pos < m - 1) {
        for (VarId v : interfaces[static_cast<size_t>(pos)]) {
          right_key.push_back(w.assignment[static_cast<size_t>(v)]);
        }
      }
      int from = boundary_node(pos, left_key);
      int to = boundary_node(pos + 1, right_key);
      bool deletable = !q.atom(atom_idx).exogenous &&
                       !(force_undeletable && force_undeletable(db, tuple));
      int64_t cap = deletable ? 1 : kInfCapacity;
      int tag = static_cast<int>(edge_tuples.size());
      edge_tuples.push_back(tuple);
      edge_deletable.push_back(deletable);
      edges[key] = flow.AddEdge(from, to, cap, tag);
    }
  }

  int64_t value = flow.Compute(s, t);
  if (value >= kInfCapacity) {
    result.unbreakable = true;
    return result;
  }
  std::vector<TupleId> cut_tuples;
  for (int e : flow.MinCutEdges()) {
    int64_t tag = flow.edge(e).tag;
    RESCQ_CHECK(edge_deletable[static_cast<size_t>(tag)]);
    cut_tuples.push_back(edge_tuples[static_cast<size_t>(tag)]);
  }
  std::sort(cut_tuples.begin(), cut_tuples.end());
  cut_tuples.erase(std::unique(cut_tuples.begin(), cut_tuples.end()),
                   cut_tuples.end());
  // Lemma 55: a (cardinality-)minimal cut never takes two copies of one
  // tuple, so the cut value equals the number of distinct tuples.
  RESCQ_CHECK_EQ(static_cast<int64_t>(cut_tuples.size()), value);
  result.resilience = static_cast<int>(value);
  result.contingency = std::move(cut_tuples);
  return result;
}

}  // namespace rescq
