#ifndef RESCQ_RESILIENCE_PLAN_H_
#define RESCQ_RESILIENCE_PLAN_H_

#include <string>
#include <vector>

#include "complexity/classifier.h"
#include "cq/query.h"
#include "resilience/registry.h"
#include "resilience/result.h"

namespace rescq {

/// The plan for one connected component of the normalized query: its
/// classification and the dispatch chain the engine will run.
struct ComponentPlan {
  /// The component itself — connected, minimized, domination-normalized.
  Query query;
  Classification classification;
  /// True when the component has no endogenous atoms: whenever it holds
  /// it is unbreakable, so it never contributes to the Lemma 14 minimum.
  bool no_endogenous = false;
  /// Probe-selected constructions in dispatch order (empty for
  /// non-PTIME components and for PTIME patterns without an
  /// implemented construction).
  std::vector<SolverKind> candidates;
  /// What ends the chain: kExact (the planned solver for NP-complete /
  /// open / out-of-scope components) or kExactFallback (a PTIME
  /// component whose constructions may decline or do not exist).
  SolverKind fallback = SolverKind::kExact;
  /// Why the chain ends in an exact solver.
  std::string fallback_reason;
};

/// A reusable, explainable query plan: all the pure query analysis of
/// the paper's pipeline (minimize, Section 4.1; normalize domination,
/// Proposition 18; split components, Lemma 14; classify, Theorem 37 /
/// Section 8; pick the published construction) done once, so repeated
/// Solve calls on the same query only pay for the data-dependent part.
/// Immutable after BuildPlan — safe to share read-only across threads.
struct ResiliencePlan {
  Query original;
  /// FNV-1a hex of the canonical query text — a compact display handle
  /// for logs and `rescq explain`. The engine's plan cache keys on the
  /// full canonical text itself, so hash collisions cannot mix plans.
  std::string fingerprint;
  Query minimized;
  Query normalized;
  std::vector<ComponentPlan> components;

  /// Human-readable plan: pipeline stages, per-component classification,
  /// chosen solver with its paper citation, and the fallback. This is
  /// what `rescq explain` prints.
  std::string Explain(const SolverRegistry& registry) const;
};

/// Stable fingerprint of the query's canonical text; two parses of the
/// same text always agree. Display/identification only — see
/// ResiliencePlan::fingerprint.
std::string QueryFingerprint(const Query& q);

/// Runs the full query-analysis pipeline and probes the registry.
ResiliencePlan BuildPlan(const Query& q, const SolverRegistry& registry);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_PLAN_H_
