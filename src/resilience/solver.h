#ifndef RESCQ_RESILIENCE_SOLVER_H_
#define RESCQ_RESILIENCE_SOLVER_H_

#include <vector>

#include "complexity/classifier.h"
#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Computes the resilience ρ(q, D) with the best available algorithm.
///
/// Thin wrapper over a process-shared ResilienceEngine (see engine.h):
/// the query analysis is planned once per distinct query and memoized,
/// then dispatched through the SolverRegistry. The pipeline follows the
/// paper: minimize the query (Section 4.1), normalize domination
/// (Proposition 18), split into components (Lemma 14: the minimum over
/// components), classify (Theorem 37 / Section 8), and then:
///
///  - PTIME-classified queries run the matching published construction
///    (linear flow, permutation count / König / pair flow, REP flow,
///    forced-tuples + flow, the Prop 13/44 pair-node flow);
///  - PTIME queries whose construction is not implemented fall back to
///    the exact solver (`kExactFallback`);
///  - NP-complete / open / out-of-scope queries use the exact
///    branch-and-bound solver (`kExact`), which is correct for every CQ.
ResilienceResult ComputeResilience(const Query& q, const Database& db);

/// Like ComputeResilience but forces the exact solver (reference
/// oracle); equivalent to an engine with EngineOptions::force_exact.
ResilienceResult ComputeResilienceReference(const Query& q,
                                            const Database& db);

/// True if deactivating `tuples` makes q false over db (db is restored
/// before returning).
bool VerifyContingency(const Query& q, Database& db,
                       const std::vector<TupleId>& tuples);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_SOLVER_H_
