#include "resilience/solver.h"

#include <cstdlib>

#include "db/witness.h"
#include "resilience/engine.h"

namespace rescq {

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kExact:
      return "exact";
    case SolverKind::kLinearFlow:
      return "linear-flow";
    case SolverKind::kPermCount:
      return "perm-count";
    case SolverKind::kPermBipartite:
      return "perm-bipartite";
    case SolverKind::kUnboundPermFlow:
      return "unbound-perm-flow";
    case SolverKind::kPerm3Flow:
      return "perm3-flow";
    case SolverKind::kRepFlow:
      return "rep-flow";
    case SolverKind::kConf3Forced:
      return "conf3-forced";
    case SolverKind::kExactFallback:
      return "exact-fallback";
  }
  // Exhaustive by construction: a new SolverKind without a case above is
  // a -Wswitch warning, and a corrupted value aborts instead of leaking
  // a placeholder into reports (the names are a compatibility surface).
  std::abort();
}

namespace {

// Process-wide engines behind the legacy entry points. Plans are shared
// across every caller of ComputeResilience (mutex-guarded LRU), so even
// code that never sees a ResilienceEngine benefits from plan reuse.
ResilienceEngine& SharedEngine() {
  static ResilienceEngine* const kEngine = [] {
    EngineOptions options;
    options.collect_stats = false;
    return new ResilienceEngine(options);
  }();
  return *kEngine;
}

ResilienceEngine& SharedReferenceEngine() {
  static ResilienceEngine* const kEngine = [] {
    EngineOptions options;
    options.force_exact = true;
    options.collect_stats = false;
    options.plan_cache_capacity = 0;  // force_exact never plans
    return new ResilienceEngine(options);
  }();
  return *kEngine;
}

}  // namespace

ResilienceResult ComputeResilience(const Query& q, const Database& db) {
  return SharedEngine().Solve(q, db).result;
}

ResilienceResult ComputeResilienceReference(const Query& q,
                                            const Database& db) {
  return SharedReferenceEngine().Solve(q, db).result;
}

bool VerifyContingency(const Query& q, Database& db,
                       const std::vector<TupleId>& tuples) {
  std::vector<std::pair<TupleId, bool>> saved;
  for (TupleId t : tuples) {
    saved.emplace_back(t, db.IsActive(t));
    db.SetActive(t, false);
  }
  bool broken = !QueryHolds(q, db);
  // Restore in reverse: with duplicate ids in `tuples` the second
  // occurrence saves "already inactive", and a forward restore would
  // apply that state last, leaving the tuple deactivated.
  for (auto it = saved.rbegin(); it != saved.rend(); ++it) {
    db.SetActive(it->first, it->second);
  }
  return broken;
}

}  // namespace rescq
