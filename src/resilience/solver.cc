#include "resilience/solver.h"

#include <algorithm>

#include "complexity/patterns.h"
#include "cq/components.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "db/witness.h"
#include "resilience/conf3_solver.h"
#include "resilience/exact_solver.h"
#include "resilience/linear_flow_solver.h"
#include "resilience/perm3_solver.h"
#include "resilience/perm_solver.h"
#include "resilience/rep_solver.h"
#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

const char* SolverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kExact:
      return "exact";
    case SolverKind::kLinearFlow:
      return "linear-flow";
    case SolverKind::kPermCount:
      return "perm-count";
    case SolverKind::kPermBipartite:
      return "perm-bipartite";
    case SolverKind::kUnboundPermFlow:
      return "unbound-perm-flow";
    case SolverKind::kPerm3Flow:
      return "perm3-flow";
    case SolverKind::kRepFlow:
      return "rep-flow";
    case SolverKind::kConf3Forced:
      return "conf3-forced";
    case SolverKind::kExactFallback:
      return "exact-fallback";
  }
  return "?";
}

namespace {

ResilienceResult ExactFallback(const Query& q, const Database& db) {
  ResilienceResult r = ComputeResilienceExact(q, db);
  r.solver = SolverKind::kExactFallback;
  return r;
}

// Solves a connected, minimized, domination-normalized query.
ResilienceResult SolveConnected(const Query& n, const Database& db) {
  ResilienceResult zero;
  if (!QueryHolds(n, db)) return zero;

  if (n.EndogenousAtoms().empty()) {
    ResilienceResult r;
    r.unbreakable = true;
    return r;
  }

  Classification c = ClassifyResilience(n);
  if (c.complexity != Complexity::kPTime) {
    return ComputeResilienceExact(n, db);
  }

  if (c.pattern == "sj-free-triad-free" || c.pattern == "confluence") {
    std::optional<ResilienceResult> r = SolveLinearFlow(n, db);
    if (r.has_value()) return *r;
    return ExactFallback(n, db);
  }
  if (c.pattern == "rep") {
    std::optional<ResilienceResult> r = SolveRepFlow(n, db);
    if (r.has_value()) return *r;
    return ExactFallback(n, db);
  }
  if (c.pattern == "unbound-permutation") {
    if (std::optional<ResilienceResult> r = SolvePermutationCount(n, db)) {
      return *r;
    }
    // Prefer the paper's König reduction for the q_Aperm shape (unary L);
    // the Prop 35 pair flow covers the rest.
    if (AreIsomorphicModuloRelabeling(
            NormalizeDomination(Minimize(n)),
            NormalizeDomination(Minimize(CatalogQuery("q_Aperm"))))) {
      if (std::optional<ResilienceResult> r =
              SolvePermutationBipartite(n, db)) {
        return *r;
      }
    }
    if (std::optional<ResilienceResult> r =
            SolveUnboundPermutationFlow(n, db)) {
      return *r;
    }
    return ExactFallback(n, db);
  }
  if (c.pattern == "catalog:q_TS3conf") {
    std::optional<ResilienceResult> r = SolveForcedThenFlow(n, db);
    if (r.has_value()) return *r;
    return ExactFallback(n, db);
  }
  if (c.pattern == "catalog:q_A3perm_R" ||
      c.pattern == "catalog:q_Swx3perm_R") {
    std::optional<ResilienceResult> r = SolvePerm3Flow(n, db);
    if (r.has_value()) return *r;
    return ExactFallback(n, db);
  }
  return ExactFallback(n, db);
}

}  // namespace

ResilienceResult ComputeResilience(const Query& q, const Database& db) {
  // Minimization and domination preserve both satisfaction and the
  // optimum contingency size (Section 4.1, Proposition 18).
  Query n = NormalizeDomination(Minimize(q));
  std::vector<Query> components = SplitIntoComponents(n);
  if (components.size() == 1) return SolveConnected(n, db);

  // Lemma 14: the query is false as soon as one component is false, so
  // ρ(q, D) = min_i ρ(q_i, D).
  ResilienceResult zero;
  for (const Query& comp : components) {
    if (!QueryHolds(comp, db)) return zero;
  }
  ResilienceResult best;
  best.unbreakable = true;
  for (const Query& comp : components) {
    ResilienceResult r = SolveConnected(comp, db);
    if (r.unbreakable) continue;
    if (best.unbreakable || r.resilience < best.resilience) best = r;
  }
  return best;
}

ResilienceResult ComputeResilienceReference(const Query& q,
                                            const Database& db) {
  return ComputeResilienceExact(q, db);
}

bool VerifyContingency(const Query& q, Database& db,
                       const std::vector<TupleId>& tuples) {
  std::vector<std::pair<TupleId, bool>> saved;
  for (TupleId t : tuples) {
    saved.emplace_back(t, db.IsActive(t));
    db.SetActive(t, false);
  }
  bool broken = !QueryHolds(q, db);
  for (auto& [t, was_active] : saved) db.SetActive(t, was_active);
  return broken;
}

}  // namespace rescq
