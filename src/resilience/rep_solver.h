#ifndef RESCQ_RESILIENCE_REP_SOLVER_H_
#define RESCQ_RESILIENCE_REP_SOLVER_H_

#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "resilience/result.h"

namespace rescq {

/// Proposition 36 (the z3 family): a linear query whose only self-join is
/// a REP pair sharing a variable, e.g. R(x,x),R(x,y),A(y). Every witness
/// matches the REP atom with a loop tuple R(a,a), so a non-loop tuple
/// R(a,b) is dominated by R(a,a) at the tuple level and never needed in a
/// minimum contingency set. The solver runs the linear-query network flow
/// with non-loop R-tuples forced undeletable.
///
/// Returns nullopt if q is not linear or has no REP self-join pair.
std::optional<ResilienceResult> SolveRepFlow(const Query& q,
                                             const Database& db);

}  // namespace rescq

#endif  // RESCQ_RESILIENCE_REP_SOLVER_H_
