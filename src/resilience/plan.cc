#include "resilience/plan.h"

#include "cq/components.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "util/fnv.h"
#include "util/string_util.h"

namespace rescq {

std::string QueryFingerprint(const Query& q) { return Fnv1aHex(q.ToString()); }

ResiliencePlan BuildPlan(const Query& q, const SolverRegistry& registry) {
  ResiliencePlan plan;
  plan.original = q;
  plan.fingerprint = QueryFingerprint(q);
  // Minimization and domination preserve both satisfaction and the
  // optimum contingency size (Section 4.1, Proposition 18).
  plan.minimized = Minimize(q);
  plan.normalized = NormalizeDomination(plan.minimized);
  for (Query& comp : SplitIntoComponents(plan.normalized)) {
    ComponentPlan cp;
    cp.classification = ClassifyResilience(comp);
    cp.no_endogenous = comp.EndogenousAtoms().empty();
    if (cp.no_endogenous) {
      cp.fallback_reason = "no endogenous atoms: unbreakable whenever true";
    } else if (cp.classification.complexity != Complexity::kPTime) {
      cp.fallback = SolverKind::kExact;
      cp.fallback_reason =
          StrFormat("RES(component) is %s: exact branch-and-bound is the "
                    "planned solver",
                    ComplexityName(cp.classification.complexity));
    } else {
      cp.candidates = registry.Probe(comp, cp.classification);
      cp.fallback = SolverKind::kExactFallback;
      cp.fallback_reason =
          cp.candidates.empty()
              ? StrFormat("PTIME pattern '%s' has no implemented construction",
                          cp.classification.pattern.c_str())
              : "every probed construction declined the instance shape";
    }
    cp.query = std::move(comp);
    plan.components.push_back(std::move(cp));
  }
  return plan;
}

std::string ResiliencePlan::Explain(const SolverRegistry& registry) const {
  std::string out;
  out += StrFormat("query:        %s\n", original.ToString().c_str());
  out += StrFormat("fingerprint:  %s\n", fingerprint.c_str());
  out +=
      "pipeline:     minimize (Sec 4.1) -> normalize domination (Prop 18) "
      "-> split components (Lemma 14) -> classify (Thm 37 / Sec 8) -> "
      "dispatch\n";
  if (!(minimized == original)) {
    out += StrFormat("minimized:    %s\n", minimized.ToString().c_str());
  }
  if (!(normalized == minimized)) {
    out += StrFormat("normalized:   %s\n", normalized.ToString().c_str());
  }
  out += StrFormat("components:   %zu\n", components.size());
  for (size_t i = 0; i < components.size(); ++i) {
    const ComponentPlan& cp = components[i];
    out += StrFormat("component %zu:  %s\n", i + 1,
                     cp.query.ToString().c_str());
    out += StrFormat("  complexity: RES is %s\n",
                     ComplexityName(cp.classification.complexity));
    out += StrFormat("  pattern:    %s\n", cp.classification.pattern.c_str());
    out += StrFormat("  reason:     %s\n", cp.classification.reason.c_str());
    if (cp.no_endogenous) {
      out += StrFormat("  solver:     none needed — %s\n",
                       cp.fallback_reason.c_str());
      continue;
    }
    for (size_t j = 0; j < cp.candidates.size(); ++j) {
      const SolverEntry* e = registry.Find(cp.candidates[j]);
      out += StrFormat("  solver:     %s%s (%s) — %s\n",
                       j == 0 ? "" : "then ",
                       e ? e->name.c_str() : SolverKindName(cp.candidates[j]),
                       e ? e->citation.c_str() : "?",
                       e ? e->description.c_str() : "unregistered");
    }
    const SolverEntry* fb = registry.Find(cp.fallback);
    out += StrFormat("  %s %s (%s) — %s; %s\n",
                     cp.candidates.empty() ? "solver:    " : "fallback:  ",
                     fb ? fb->name.c_str() : SolverKindName(cp.fallback),
                     fb ? fb->citation.c_str() : "?",
                     fb ? fb->description.c_str() : "unregistered",
                     cp.fallback_reason.c_str());
  }
  return out;
}

}  // namespace rescq
