#include "workload/batch.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <unordered_map>

#include "complexity/catalog.h"
#include "cq/parser.h"
#include "resilience/engine.h"
#include "resilience/solver.h"
#include "util/fnv.h"
#include "util/parallel.h"
#include "util/string_util.h"
#include "workload/generators.h"

namespace rescq {

namespace {

/// Cache of finished cells keyed by (query text, db fingerprint). A
/// worker that finds the key reuses the solver outcome instead of
/// re-running it; identity fields are still taken from its own job.
struct Memo {
  std::mutex mu;
  std::unordered_map<std::string, BatchCell> cells;
};

void CopyOutcome(const BatchCell& from, BatchCell* to) {
  to->unbreakable = from.unbreakable;
  to->resilience = from.resilience;
  to->solver = from.solver;
  to->verified = from.verified;
  to->oracle_checked = from.oracle_checked;
  to->oracle_match = from.oracle_match;
  to->oracle_resilience = from.oracle_resilience;
  to->budget_exceeded = from.budget_exceeded;
  to->error = from.error;
}

BatchCell RunCell(const BatchJob& job, const BatchOptions& opts,
                  ResilienceEngine* engine, Memo* memo) {
  BatchCell cell;
  cell.query = job.query_name;
  cell.query_text = job.query_text;
  cell.scenario = job.scenario;
  cell.size = job.params.size;
  cell.density = job.params.density;
  cell.seed = job.params.seed;

  Database db = job.generate(job.params);
  cell.tuples = db.NumActiveTuples();
  cell.domain = db.domain_size();
  cell.fingerprint = DatabaseFingerprint(db);

  const std::string key = job.query_text + "|" + cell.fingerprint;
  if (opts.memoize) {
    std::lock_guard<std::mutex> lock(memo->mu);
    auto it = memo->cells.find(key);
    if (it != memo->cells.end()) {
      CopyOutcome(it->second, &cell);
      cell.memo_hit = true;
      return cell;
    }
  }

  Query q = MustParseQuery(job.query_text);
  auto start = std::chrono::steady_clock::now();
  SolveOutcome outcome = engine->Solve(q, db);
  cell.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  const ResilienceResult& r = outcome.result;
  cell.plan_cache_hit = outcome.plan_cache_hit;
  if (!outcome.error.empty()) {
    // Structured budget outcome: the result is the default and must not
    // be verified or oracle-checked — the cell reports the error
    // instead of masquerading as a solved (or mismatched) one.
    cell.budget_exceeded = true;
    cell.error = outcome.error;
    cell.verified = true;  // nothing to verify; not a solver bug
    if (opts.memoize) {
      std::lock_guard<std::mutex> lock(memo->mu);
      memo->cells.emplace(key, cell);
    }
    return cell;
  }
  cell.unbreakable = r.unbreakable;
  cell.resilience = r.resilience;
  cell.solver = r.solver;
  cell.verified = r.unbreakable || VerifyContingency(q, db, r.contingency);
  if (outcome.exact.node_budget_exceeded) {
    // The incumbent is a verified contingency set but only an upper
    // bound on the resilience: mark the cell and skip the oracle — an
    // exhausted budget the user asked for is not a solver mismatch.
    cell.budget_exceeded = true;
    cell.error = "exact node budget exhausted: resilience is an upper bound";
  }

  if (opts.check_oracle && !cell.budget_exceeded &&
      cell.tuples <= opts.oracle_cutoff) {
    ResilienceResult oracle = ComputeResilienceReference(q, db);
    cell.oracle_checked = true;
    cell.oracle_resilience = oracle.unbreakable ? -1 : oracle.resilience;
    cell.oracle_match = oracle.unbreakable == r.unbreakable &&
                        (r.unbreakable || oracle.resilience == r.resilience);
  }

  if (opts.memoize) {
    std::lock_guard<std::mutex> lock(memo->mu);
    memo->cells.emplace(key, cell);
  }
  return cell;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

bool ParseIntList(const std::string& text, std::vector<int>* out) {
  out->clear();
  for (const std::string& item : SplitTrimmed(text, ',')) {
    int v = 0;
    if (!ParsePositiveInt(item, &v)) return false;
    out->push_back(v);
  }
  return !out->empty();
}

bool ParseSeedList(const std::string& text, std::vector<uint64_t>* out) {
  out->clear();
  for (const std::string& item : SplitTrimmed(text, ',')) {
    uint64_t v = 0;
    if (!ParseUint64(item, &v)) return false;
    out->push_back(v);
  }
  return !out->empty();
}

bool ExpandPlan(const BatchPlan& plan, std::vector<BatchJob>* jobs,
                std::string* error) {
  jobs->clear();
  if (plan.scenarios.empty() && plan.query_names.empty()) {
    *error = "plan selects no scenarios and no queries";
    return false;
  }
  if (plan.sizes.empty() || plan.seeds.empty()) {
    *error = "plan needs at least one size and one seed";
    return false;
  }
  for (const std::string& name : plan.scenarios) {
    const Scenario* scenario = FindScenario(name);
    if (scenario == nullptr) {
      *error = "unknown scenario '" + name + "' (try `rescq gen --list`)";
      return false;
    }
    for (int size : plan.sizes) {
      for (uint64_t seed : plan.seeds) {
        BatchJob job;
        job.query_name = scenario->name;
        job.query_text = scenario->query;
        job.scenario = scenario->name;
        job.params = {size, plan.density, seed};
        job.generate = scenario->generate;
        jobs->push_back(std::move(job));
      }
    }
  }
  for (const std::string& name : plan.query_names) {
    std::optional<CatalogEntry> entry = FindCatalogEntry(name);
    if (!entry) {
      *error = "unknown catalog query '" + name + "' (try `rescq catalog`)";
      return false;
    }
    Query q = MustParseQuery(entry->text);
    for (int size : plan.sizes) {
      for (uint64_t seed : plan.seeds) {
        BatchJob job;
        job.query_name = entry->name;
        job.query_text = entry->text;
        job.scenario = "uniform";
        job.params = {size, plan.density, seed};
        job.generate = [q](const ScenarioParams& p) {
          return GenerateUniform(q, p);
        };
        jobs->push_back(std::move(job));
      }
    }
  }
  return true;
}

bool ParsePlanFile(const std::string& path, BatchPlan* plan,
                   BatchOptions* options, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open plan file '" + path + "'";
    return false;
  }
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      *error = StrFormat("%s:%d: expected `key = value`", path.c_str(), lineno);
      return false;
    }
    std::string key(Trim(line.substr(0, eq)));
    std::string value(Trim(line.substr(eq + 1)));
    bool ok = true;
    if (key == "scenarios") {
      plan->scenarios =
          value == "all" ? AllScenarioNames() : SplitTrimmed(value, ',');
      ok = !plan->scenarios.empty();
    } else if (key == "queries") {
      plan->query_names = SplitTrimmed(value, ',');
      ok = !plan->query_names.empty();
    } else if (key == "sizes") {
      ok = ParseIntList(value, &plan->sizes);
    } else if (key == "seeds") {
      ok = ParseSeedList(value, &plan->seeds);
    } else if (key == "density") {
      ok = ParseProbability(value, &plan->density);
    } else if (key == "threads") {
      ok = ParsePositiveInt(value, &options->threads);
    } else if (key == "oracle_cutoff") {
      ok = ParsePositiveInt(value, &options->oracle_cutoff);
    } else if (key == "check_oracle") {
      ok = ParseBool(value, &options->check_oracle);
    } else if (key == "memoize") {
      ok = ParseBool(value, &options->memoize);
    } else if (key == "witness_limit") {
      uint64_t limit = 0;
      ok = ParseUint64(value, &limit);
      options->witness_limit = static_cast<size_t>(limit);
    } else if (key == "exact_node_budget") {
      ok = ParseUint64(value, &options->exact_node_budget);
    } else if (key == "solver_threads") {
      ok = ParsePositiveInt(value, &options->solver_threads);
    } else {
      *error = StrFormat("%s:%d: unknown plan key '%s'", path.c_str(), lineno,
                         key.c_str());
      return false;
    }
    if (!ok) {
      *error = StrFormat("%s:%d: bad value '%s' for key '%s'", path.c_str(),
                         lineno, value.c_str(), key.c_str());
      return false;
    }
  }
  return true;
}

BatchReport RunBatch(const std::vector<BatchJob>& jobs,
                     const BatchOptions& options) {
  BatchReport report;
  report.options = options;
  report.cells.resize(jobs.size());
  Memo memo;
  // One engine per run: each distinct query is planned once (minimize,
  // normalize, classify, probe the registry) and the immutable plan is
  // shared read-only by every worker thread. The run's budgets ride on
  // the engine so every exact solve honors them.
  EngineOptions engine_options;
  engine_options.witness_limit = options.witness_limit;
  engine_options.exact_node_budget = options.exact_node_budget;
  engine_options.solver_threads = options.solver_threads;
  ResilienceEngine engine(engine_options);

  auto start = std::chrono::steady_clock::now();
  ParallelFor(std::max(1, options.threads), jobs.size(), [&](size_t i) {
    report.cells[i] = RunCell(jobs[i], options, &engine, &memo);
  });
  report.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  for (const BatchCell& cell : report.cells) {
    if (cell.budget_exceeded) {
      ++report.budget_exceeded;
    } else if (!cell.oracle_match || !cell.verified) {
      ++report.mismatches;
    }
    if (cell.memo_hit) ++report.memo_hits;
    report.total_wall_ms += cell.wall_ms;
  }
  PlanCacheStats plan_stats = engine.plan_cache_stats();
  report.plan_cache_hits = plan_stats.hits;
  report.plan_cache_misses = plan_stats.misses;
  report.plan_cache_entries = plan_stats.entries;
  return report;
}

std::string DatabaseFingerprint(const Database& db) {
  Fnv1a h;
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    h.MixString(db.relation_name(rel));
    h.MixByte(static_cast<unsigned char>(db.relation_arity(rel)));
    for (TupleId id : db.ActiveTuples(rel)) {
      for (Value v : db.Row(id)) h.MixString(db.ValueName(v));
      h.MixByte(0xfe);  // row boundary
    }
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h.digest()));
}

}  // namespace rescq
