#ifndef RESCQ_WORKLOAD_BATCH_H_
#define RESCQ_WORKLOAD_BATCH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "db/database.h"
#include "resilience/result.h"
#include "workload/scenario.h"

namespace rescq {

/// One cell of the sweep matrix: solve `query_text` over the instance
/// `generate(params)` and record what happened.
struct BatchJob {
  std::string query_name;  // catalog or scenario name, for reports
  std::string query_text;  // parseable query body
  std::string scenario;    // scenario name ("uniform" for --names jobs)
  ScenarioParams params;
  std::function<Database(const ScenarioParams&)> generate;
};

/// The declarative sweep: (scenario × size × seed) for every named
/// scenario, plus an optional catalog-query dimension (`query_names`)
/// crossed with the generic uniform filler. Expansion order is
/// deterministic: scenarios first (size-major, then seeds), then
/// queries.
struct BatchPlan {
  std::vector<std::string> scenarios;
  std::vector<std::string> query_names;
  std::vector<int> sizes = {4, 6, 8};
  std::vector<uint64_t> seeds = {1};
  double density = 0.5;
};

/// Engine knobs, settable from flags or a plan file.
struct BatchOptions {
  int threads = 1;
  bool check_oracle = false;  // cross-check ComputeResilienceReference
  int oracle_cutoff = 80;     // skip the oracle above this many tuples
  bool memoize = true;        // reuse (query, db-fingerprint) results
  /// Witness budget per exact component solve (0 = unlimited); exceeding
  /// it marks the cell budget_exceeded instead of mis-reporting a value.
  size_t witness_limit = 0;
  /// Branch-and-bound node budget per exact component solve (0 =
  /// unlimited); exhausted budgets return the verified incumbent.
  uint64_t exact_node_budget = 0;
  /// Workers *inside* each exact solve (EngineOptions::solver_threads);
  /// independent of `threads`, which fans out across cells. Resilience
  /// values stay identical for any setting.
  int solver_threads = 1;
};

/// Expands the plan into the job matrix. Returns false and fills *error
/// on an unknown scenario or catalog-query name.
bool ExpandPlan(const BatchPlan& plan, std::vector<BatchJob>* jobs,
                std::string* error);

/// Parses a `key = value` plan file (docs/WORKLOADS.md). Recognized
/// keys: scenarios, queries, sizes, seeds, density, threads,
/// check_oracle, oracle_cutoff, memoize, witness_limit,
/// exact_node_budget, solver_threads; '#' starts a comment. Unknown
/// keys and unparseable values are errors.
bool ParsePlanFile(const std::string& path, BatchPlan* plan,
                   BatchOptions* options, std::string* error);

// Comma-separated list parsers shared by plan files and the CLI's
// --sizes/--seeds flags. Both reject empty lists and bad items.
bool ParseIntList(const std::string& text, std::vector<int>* out);
bool ParseSeedList(const std::string& text, std::vector<uint64_t>* out);

/// Everything recorded about one executed cell.
struct BatchCell {
  // Identity (copied from the job).
  std::string query;
  std::string query_text;
  std::string scenario;
  int size = 0;
  double density = 0;
  uint64_t seed = 0;
  // Instance stats.
  int tuples = 0;
  int domain = 0;
  std::string fingerprint;
  // Results.
  bool unbreakable = false;
  int resilience = 0;
  SolverKind solver = SolverKind::kExact;
  bool verified = false;  // the contingency set falsified the query
  bool oracle_checked = false;
  bool oracle_match = true;
  int oracle_resilience = -1;
  bool memo_hit = false;
  /// True when the engine reused a cached ResiliencePlan for this cell
  /// (always false for memoized cells — they never reach the engine).
  bool plan_cache_hit = false;
  /// True when a budget stopped the solve; `error` says which. A
  /// witness budget leaves the resilience / verification / oracle
  /// fields meaningless; an exhausted node budget keeps a *verified*
  /// resilience that is only an upper bound (the oracle check is
  /// skipped). Either way the cell is counted separately from
  /// mismatches — an exceeded budget the user asked for is not a
  /// solver bug.
  bool budget_exceeded = false;
  std::string error;
  double wall_ms = 0;
};

struct BatchReport {
  std::vector<BatchCell> cells;  // in job order, regardless of threads
  BatchOptions options;
  int mismatches = 0;  // oracle disagreements + unverified contingencies
  int memo_hits = 0;
  int budget_exceeded = 0;  // cells stopped by a witness budget
  // Final counters of the run's shared ResilienceEngine plan cache:
  // each distinct query is planned once and the plan is reused
  // read-only across all worker threads.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  size_t plan_cache_entries = 0;
  double total_wall_ms = 0;  // sum of per-cell solver time
  double elapsed_ms = 0;     // end-to-end wall clock
};

/// Fans the jobs out across a fixed pool of options.threads workers.
/// Each worker generates its own private database per cell (generation
/// is deterministic in the params), so results — in particular every
/// resilience value — are identical for any thread count; only timings
/// and memo-hit attribution may vary.
BatchReport RunBatch(const std::vector<BatchJob>& jobs,
                     const BatchOptions& options);

/// Structural hash (FNV-1a over relation names, arities, and the value
/// names of active rows, in storage order) used as the memo key
/// together with the query text. Stable across a WriteTuples/ReadTuples
/// round trip.
std::string DatabaseFingerprint(const Database& db);

}  // namespace rescq

#endif  // RESCQ_WORKLOAD_BATCH_H_
