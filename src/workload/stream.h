#ifndef RESCQ_WORKLOAD_STREAM_H_
#define RESCQ_WORKLOAD_STREAM_H_

#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "db/delta.h"
#include "resilience/incremental.h"

namespace rescq {

/// Knobs for one stream run, settable from `rescq stream` flags.
struct StreamOptions {
  /// Cross-check every epoch against ComputeResilienceExact from
  /// scratch over the session's database (the differential oracle).
  bool check_oracle = false;
  /// Budgets threaded into the IncrementalSession (0 = unlimited), with
  /// the same semantics as EngineOptions.
  size_t witness_limit = 0;
  uint64_t exact_node_budget = 0;
  /// Workers for the session's per-epoch hard-component fan-out
  /// (EngineOptions::solver_threads). Every report row is byte-identical
  /// for any setting — the incremental parallel path is fully
  /// deterministic.
  int solver_threads = 1;
};

/// One report row: epoch 0 is the initial full build, later rows one
/// applied epoch each.
struct StreamRow {
  int epoch = 0;
  int inserted = 0;
  int deleted = 0;
  int tuples = 0;  // active tuples after the epoch
  size_t delta_witnesses = 0;
  size_t family_sets = 0;
  int lower_bound = 0;
  int upper_bound = 0;
  bool resolved = false;  // the exact search re-ran this epoch
  bool unbreakable = false;
  int resilience = 0;
  bool oracle_checked = false;
  bool oracle_match = true;
  int oracle_resilience = -1;
  bool budget_exceeded = false;
  std::string error;
  double wall_ms = 0;     // incremental time for this epoch
  double oracle_ms = 0;   // from-scratch time when the oracle ran
};

struct StreamReport {
  std::string query;  // display name
  std::string query_text;
  StreamOptions options;
  std::vector<StreamRow> rows;
  int mismatches = 0;       // oracle disagreements
  int resolves = 0;         // epochs that re-ran the exact search
  int budget_exceeded = 0;  // epochs stopped by a budget
  double total_wall_ms = 0;
  double total_oracle_ms = 0;
};

/// Runs the update log through an IncrementalSession epoch by epoch and
/// collects one row each (plus the epoch-0 build row).
StreamReport RunStream(const Query& q, const std::string& query_name,
                       const Database& base, const UpdateLog& log,
                       const StreamOptions& options);

/// CSV, one row per epoch plus a header. Column order is part of the
/// schema (docs/WORKLOADS.md): everything up to and including
/// `oracle_resilience` is deterministic for a given (query, base, log);
/// the timing columns come last.
void WriteStreamCsv(const StreamReport& report, std::ostream& out);

/// JSON document (`rescq-stream-report/v6` — v5 added
/// `options.solver_threads`, v6 a `metrics` block holding the global
/// registry's rescq-metrics/v1 snapshot fields, empty objects unless
/// metrics collection was on):
/// {"schema", "query", "options", "summary", "metrics",
/// "epochs": [...]}.
void WriteStreamJson(const StreamReport& report, std::ostream& out);

bool SaveStreamCsv(const StreamReport& report, const std::string& path,
                   std::string* error);
bool SaveStreamJson(const StreamReport& report, const std::string& path,
                    std::string* error);

/// Human-readable per-epoch table + summary line, as printed by
/// `rescq stream`.
void PrintStreamTable(const StreamReport& report, std::FILE* out);

}  // namespace rescq

#endif  // RESCQ_WORKLOAD_STREAM_H_
