#ifndef RESCQ_WORKLOAD_GENERATORS_H_
#define RESCQ_WORKLOAD_GENERATORS_H_

#include "cq/query.h"
#include "db/database.h"
#include "workload/scenario.h"

namespace rescq {

// Deterministic instance factories for the paper's query families. Each
// is a pure function of its params (the Rng seed included), so the same
// call always yields byte-identical databases — tests, the batch engine,
// and checked-in fixtures all rely on that. The named scenarios in
// ScenarioCatalog() bind these to their default queries.

/// Chain database for q_chain :- R(x,y), R(y,z) (Section 2): a directed
/// path over `size` nodes plus ~density*size extra forward edges and an
/// occasional self-loop, so witnesses overlap the way the running
/// example's do.
Database GenerateChain(const ScenarioParams& p);

/// Permutation instance for q_perm :- R(x,y), R(y,x) (Prop 33): a random
/// permutation's edges (2-cycles and fixpoints are the witnesses) plus
/// ~density*size noise edges.
Database GeneratePermutation(const ScenarioParams& p);

/// Bipartite variant for q_Aperm :- A(x), R(x,y), R(y,x): the
/// permutation instance with each constant added to A with probability
/// `density` (König-cover side of Prop 33).
Database GenerateBipartitePermutation(const ScenarioParams& p);

/// Erdős–Rényi G(size, density) encoded for q_vc :- R(x), S(x,y), R(y)
/// (Prop 9): R holds every vertex, S one direction of each sampled edge.
Database GenerateErdosRenyiVC(const ScenarioParams& p);

/// Path graph over `size` vertices for q_vc (minimum VC = floor(size/2)).
Database GeneratePathVC(const ScenarioParams& p);

/// Near-square grid graph with `size` vertices for q_vc.
Database GenerateGridVC(const ScenarioParams& p);

/// Planted vertex cover: ~density*size cover vertices, every edge
/// touches the cover, so the optimum is at most the planted size.
Database GeneratePlantedVC(const ScenarioParams& p);

/// Domination-heavy instance for q_ACconf :- A(x), R(x,y), R(z,y), C(z)
/// (Prop 12): few hub y-values shared by many x/z spokes, stressing the
/// domination normalization and the confluence flow solver.
Database GenerateDominationHeavy(const ScenarioParams& p);

/// Tripartite Erdős–Rényi instance for the triad q_triangle :- R(x,y),
/// S(y,z), T(z,x) (Theorem 24, NP-complete — exercises the exact
/// solver). Parts have `size` vertices each.
Database GenerateTriadHard(const ScenarioParams& p);

/// Generic per-atom uniform filler for *any* parsed query: `size` random
/// tuples per relation over a domain of ~density*size constants (at
/// least 2). This is what `rescq batch --names ...` crosses with the
/// paper catalog.
Database GenerateUniform(const Query& q, const ScenarioParams& p);

}  // namespace rescq

#endif  // RESCQ_WORKLOAD_GENERATORS_H_
