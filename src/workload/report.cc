#include "workload/report.h"

#include <fstream>
#include <ostream>

#include "obs/metrics.h"
#include "util/string_util.h"

namespace rescq {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* BoolName(bool b) { return b ? "true" : "false"; }

void WriteReportCsv(const BatchReport& report, std::ostream& out) {
  out << "query,scenario,size,density,seed,tuples,domain,fingerprint,"
         "unbreakable,resilience,solver,verified,oracle_checked,oracle_match,"
         "oracle_resilience,memo_hit,plan_cache_hit,budget_exceeded,"
         "wall_ms\n";
  for (const BatchCell& c : report.cells) {
    out << c.query << "," << c.scenario << "," << c.size << ","
        << StrFormat("%.3f", c.density) << "," << c.seed << "," << c.tuples
        << "," << c.domain << "," << c.fingerprint << ","
        << BoolName(c.unbreakable) << "," << c.resilience << ","
        << SolverKindName(c.solver) << "," << BoolName(c.verified) << ","
        << BoolName(c.oracle_checked) << "," << BoolName(c.oracle_match) << ","
        << c.oracle_resilience << "," << BoolName(c.memo_hit) << ","
        << BoolName(c.plan_cache_hit) << "," << BoolName(c.budget_exceeded)
        << "," << StrFormat("%.3f", c.wall_ms) << "\n";
  }
}

void WriteReportJson(const BatchReport& report, std::ostream& out) {
  out << "{\n  \"schema\": \"rescq-batch-report/v5\",\n";
  out << "  \"options\": {\"threads\": " << report.options.threads
      << ", \"check_oracle\": " << BoolName(report.options.check_oracle)
      << ", \"oracle_cutoff\": " << report.options.oracle_cutoff
      << ", \"memoize\": " << BoolName(report.options.memoize)
      << ", \"witness_limit\": " << report.options.witness_limit
      << ", \"exact_node_budget\": " << report.options.exact_node_budget
      << ", \"solver_threads\": " << report.options.solver_threads
      << "},\n";
  out << "  \"summary\": {\"cells\": " << report.cells.size()
      << ", \"mismatches\": " << report.mismatches
      << ", \"memo_hits\": " << report.memo_hits
      << ", \"budget_exceeded\": " << report.budget_exceeded
      << ", \"plan_cache\": {"
      << "\"hits\": " << report.plan_cache_hits
      << ", \"misses\": " << report.plan_cache_misses
      << ", \"entries\": " << report.plan_cache_entries
      << "}, \"total_wall_ms\": " << StrFormat("%.3f", report.total_wall_ms)
      << ", \"elapsed_ms\": " << StrFormat("%.3f", report.elapsed_ms)
      << "},\n";
  // v5: the global metrics registry's snapshot fields. Empty objects
  // unless a sink (--metrics-json or a test) enabled collection.
  std::string metrics;
  obs::GlobalRegistry().AppendSnapshotFields(&metrics, 4);
  out << "  \"metrics\": {\n" << metrics << "\n  },\n";
  out << "  \"cells\": [\n";
  for (size_t i = 0; i < report.cells.size(); ++i) {
    const BatchCell& c = report.cells[i];
    out << "    {\"query\": \"" << JsonEscape(c.query) << "\", \"query_text\": \""
        << JsonEscape(c.query_text) << "\", \"scenario\": \""
        << JsonEscape(c.scenario) << "\", \"size\": " << c.size
        << ", \"density\": " << StrFormat("%.3f", c.density)
        << ", \"seed\": " << c.seed << ", \"tuples\": " << c.tuples
        << ", \"domain\": " << c.domain << ", \"fingerprint\": \""
        << c.fingerprint << "\", \"unbreakable\": " << BoolName(c.unbreakable)
        << ", \"resilience\": " << c.resilience << ", \"solver\": \""
        << SolverKindName(c.solver) << "\", \"verified\": "
        << BoolName(c.verified)
        << ", \"oracle_checked\": " << BoolName(c.oracle_checked)
        << ", \"oracle_match\": " << BoolName(c.oracle_match)
        << ", \"oracle_resilience\": " << c.oracle_resilience
        << ", \"memo_hit\": " << BoolName(c.memo_hit)
        << ", \"plan_cache_hit\": " << BoolName(c.plan_cache_hit)
        << ", \"budget_exceeded\": " << BoolName(c.budget_exceeded)
        << ", \"error\": \"" << JsonEscape(c.error) << "\""
        << ", \"wall_ms\": " << StrFormat("%.3f", c.wall_ms) << "}"
        << (i + 1 < report.cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

namespace {

bool SaveWith(void (*write)(const BatchReport&, std::ostream&),
              const BatchReport& report, const std::string& path,
              std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create report file '" + path + "'";
    return false;
  }
  write(report, out);
  return true;
}

}  // namespace

bool SaveReportCsv(const BatchReport& report, const std::string& path,
                   std::string* error) {
  return SaveWith(WriteReportCsv, report, path, error);
}

bool SaveReportJson(const BatchReport& report, const std::string& path,
                    std::string* error) {
  return SaveWith(WriteReportJson, report, path, error);
}

void PrintReportTable(const BatchReport& report, std::FILE* out) {
  std::fprintf(out, "%-16s %-15s %5s %6s %7s %5s %-18s %-8s %9s\n", "query",
               "scenario", "size", "seed", "tuples", "rho", "solver", "oracle",
               "wall_ms");
  for (const BatchCell& c : report.cells) {
    const char* oracle = !c.oracle_checked ? "-"
                         : c.oracle_match  ? "match"
                                           : "MISMATCH";
    std::fprintf(out, "%-16s %-15s %5d %6llu %7d %5s %-18s %-8s %9.3f%s%s\n",
                 c.query.c_str(), c.scenario.c_str(), c.size,
                 static_cast<unsigned long long>(c.seed), c.tuples,
                 // A node-budget cell still carries a verified upper
                 // bound; a witness-budget cell has no value at all.
                 c.budget_exceeded
                     ? (c.resilience > 0
                            ? StrFormat(">=%d", c.resilience).c_str()
                            : "-")
                 : c.unbreakable ? "inf"
                                 : StrFormat("%d", c.resilience).c_str(),
                 SolverKindName(c.solver), oracle, c.wall_ms,
                 c.memo_hit ? "  (memo)" : "",
                 c.budget_exceeded ? "  (budget exceeded)" : "");
  }
  std::fprintf(out,
               "\n%zu cells, %d mismatch(es), %d memo hit(s), %d over "
               "budget; plan cache %llu hit(s) / %llu miss(es); solver "
               "time %.1f ms, elapsed %.1f ms on %d thread(s)\n",
               report.cells.size(), report.mismatches, report.memo_hits,
               report.budget_exceeded,
               static_cast<unsigned long long>(report.plan_cache_hits),
               static_cast<unsigned long long>(report.plan_cache_misses),
               report.total_wall_ms, report.elapsed_ms,
               report.options.threads);
}

}  // namespace rescq
