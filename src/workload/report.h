#ifndef RESCQ_WORKLOAD_REPORT_H_
#define RESCQ_WORKLOAD_REPORT_H_

#include <cstdio>
#include <iosfwd>
#include <string>

#include "workload/batch.h"

namespace rescq {

// Tiny JSON-writer helpers shared by the batch and stream report
// writers — one escaping implementation, so the two reports cannot
// silently diverge.
std::string JsonEscape(const std::string& s);
const char* BoolName(bool b);

/// CSV, one row per cell plus a header row. Column order is part of the
/// schema (docs/WORKLOADS.md): every column up to and including
/// `oracle_resilience` (1-15) is deterministic for a given plan
/// regardless of thread count; `memo_hit`, `plan_cache_hit`, and
/// `wall_ms` come last because cache attribution and timing may
/// legitimately vary between runs.
void WriteReportCsv(const BatchReport& report, std::ostream& out);

/// JSON document (`rescq-batch-report/v5` — v4 added
/// `options.solver_threads`, v5 a `metrics` block holding the global
/// registry's rescq-metrics/v1 snapshot fields, empty objects unless
/// metrics collection was on):
/// {"schema", "options", "summary" (incl. plan_cache), "metrics",
/// "cells": [...]}.
void WriteReportJson(const BatchReport& report, std::ostream& out);

/// Writes the CSV/JSON to a file; false + *error if it cannot be
/// created.
bool SaveReportCsv(const BatchReport& report, const std::string& path,
                   std::string* error);
bool SaveReportJson(const BatchReport& report, const std::string& path,
                    std::string* error);

/// Human-readable per-cell table + summary line, as printed by
/// `rescq batch`.
void PrintReportTable(const BatchReport& report, std::FILE* out);

}  // namespace rescq

#endif  // RESCQ_WORKLOAD_REPORT_H_
