#ifndef RESCQ_WORKLOAD_SCENARIO_H_
#define RESCQ_WORKLOAD_SCENARIO_H_

#include <functional>
#include <string>
#include <vector>

#include "db/database.h"

namespace rescq {

/// Shape knobs for one generated instance. `size` is the scenario's
/// primary scale (vertices, chain length, permutation width, ...);
/// `density` tunes edge probability / extra-tuple fill where the family
/// has such a knob; `seed` drives the deterministic Rng, so equal params
/// always produce the identical database.
struct ScenarioParams {
  int size = 8;
  double density = 0.5;
  uint64_t seed = 1;
};

/// A named instance family keyed to one of the paper's query families —
/// the data-side analogue of complexity/catalog. `query` is the
/// parseable query the family is designed to exercise (batch runs solve
/// it over the generated database); `generate` is a pure function of the
/// params.
struct Scenario {
  std::string name;         // e.g. "vc_er"
  std::string query;        // default query text, e.g. "R(x), S(x,y), R(y)"
  std::string description;  // one-liner for `rescq gen --list`
  std::function<Database(const ScenarioParams&)> generate;
};

/// Every registered scenario, in a stable order.
const std::vector<Scenario>& ScenarioCatalog();

/// The names of every registered scenario, in catalog order — what
/// `--scenarios all` (and an unconstrained plan) expands to.
std::vector<std::string> AllScenarioNames();

/// Looks up a scenario by name; nullptr if absent.
const Scenario* FindScenario(const std::string& name);

}  // namespace rescq

#endif  // RESCQ_WORKLOAD_SCENARIO_H_
