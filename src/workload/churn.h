#ifndef RESCQ_WORKLOAD_CHURN_H_
#define RESCQ_WORKLOAD_CHURN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "db/delta.h"

namespace rescq {

/// Shape knobs for a generated update stream. `rate` is the fraction of
/// the *current* active tuples touched per epoch (at least one update);
/// `seed` drives the deterministic Rng, so equal params over an equal
/// base always produce the identical log.
struct ChurnParams {
  int epochs = 4;
  double rate = 0.05;
  uint64_t seed = 1;
};

/// A named update-stream family — the updates axis of the workload
/// subsystem, the data-side analogue of ScenarioCatalog for streams.
struct ChurnKind {
  std::string name;         // e.g. "mixed"
  std::string description;  // one-liner for `rescq stream` usage/docs
};

/// Every registered churn kind, in a stable order: insert (new facts
/// only), delete (existing facts only), mixed (a coin flip per update),
/// hub (updates target the most frequent constant, stressing the
/// delta enumerator's skewed posting lists).
const std::vector<ChurnKind>& ChurnCatalog();

/// The registered names, catalog order.
std::vector<std::string> AllChurnNames();

bool IsChurnKind(const std::string& name);

/// Deterministically generates an update log against `base`: `epochs`
/// epochs, each touching ~rate * (active tuples at that point) facts.
/// The generator simulates application on a working copy so deletions
/// always name live facts and inserts always name absent ones; inserts
/// draw constants from the existing domain with an occasional fresh
/// one. `kind` must be registered (RESCQ_CHECKed).
UpdateLog GenerateChurn(const Database& base, const std::string& kind,
                        const ChurnParams& params);

}  // namespace rescq

#endif  // RESCQ_WORKLOAD_CHURN_H_
