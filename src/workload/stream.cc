#include "workload/stream.h"

#include <chrono>
#include <fstream>
#include <ostream>

#include "obs/metrics.h"
#include "resilience/exact_solver.h"
#include "util/string_util.h"
#include "workload/report.h"

namespace rescq {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

StreamRow RowFromOutcome(const EpochOutcome& o, const IncrementalSession& s) {
  StreamRow row;
  row.epoch = o.epoch;
  row.inserted = o.inserted;
  row.deleted = o.deleted;
  row.tuples = s.db().NumActiveTuples();
  row.delta_witnesses = o.delta_witnesses;
  row.family_sets = o.family_sets;
  row.lower_bound = o.lower_bound;
  row.upper_bound = o.upper_bound;
  row.resolved = o.resolved;
  row.unbreakable = o.unbreakable;
  row.resilience = o.resilience;
  row.budget_exceeded = o.budget_exceeded;
  row.error = o.error;
  row.wall_ms = o.wall_ms;
  return row;
}

void MaybeCheckOracle(const Query& q, const IncrementalSession& session,
                      const StreamOptions& options, StreamRow* row) {
  if (!options.check_oracle) return;
  // A witness-budget row has no value to check; a node-budget row is a
  // deliberate upper bound — neither is a mismatch.
  if (row->budget_exceeded) return;
  Clock::time_point start = Clock::now();
  ResilienceResult oracle = ComputeResilienceExact(q, session.db());
  row->oracle_ms = MsSince(start);
  row->oracle_checked = true;
  row->oracle_resilience = oracle.unbreakable ? -1 : oracle.resilience;
  row->oracle_match =
      oracle.unbreakable == row->unbreakable &&
      (oracle.unbreakable || oracle.resilience == row->resilience);
}

}  // namespace

StreamReport RunStream(const Query& q, const std::string& query_name,
                       const Database& base, const UpdateLog& log,
                       const StreamOptions& options) {
  StreamReport report;
  report.query = query_name;
  report.query_text = q.ToString();
  report.options = options;

  EngineOptions engine_options;
  engine_options.witness_limit = options.witness_limit;
  engine_options.exact_node_budget = options.exact_node_budget;
  engine_options.solver_threads = options.solver_threads;
  IncrementalSession session(q, base, engine_options);

  StreamRow row = RowFromOutcome(session.current(), session);
  MaybeCheckOracle(q, session, options, &row);
  report.rows.push_back(row);
  for (const Epoch& epoch : log.epochs) {
    EpochOutcome outcome = session.Apply(epoch);
    row = RowFromOutcome(outcome, session);
    MaybeCheckOracle(q, session, options, &row);
    report.rows.push_back(row);
  }

  for (const StreamRow& r : report.rows) {
    report.mismatches += r.oracle_checked && !r.oracle_match ? 1 : 0;
    report.resolves += r.resolved ? 1 : 0;
    report.budget_exceeded += r.budget_exceeded ? 1 : 0;
    report.total_wall_ms += r.wall_ms;
    report.total_oracle_ms += r.oracle_ms;
  }
  return report;
}

void WriteStreamCsv(const StreamReport& report, std::ostream& out) {
  out << "epoch,inserted,deleted,tuples,delta_witnesses,family_sets,"
         "lower_bound,upper_bound,resolved,unbreakable,resilience,"
         "oracle_checked,oracle_match,oracle_resilience,budget_exceeded,"
         "wall_ms,oracle_ms\n";
  for (const StreamRow& r : report.rows) {
    out << r.epoch << "," << r.inserted << "," << r.deleted << "," << r.tuples
        << "," << r.delta_witnesses << "," << r.family_sets << ","
        << r.lower_bound << "," << r.upper_bound << "," << BoolName(r.resolved)
        << "," << BoolName(r.unbreakable) << "," << r.resilience << ","
        << BoolName(r.oracle_checked) << "," << BoolName(r.oracle_match) << ","
        << r.oracle_resilience << "," << BoolName(r.budget_exceeded) << ","
        << StrFormat("%.3f", r.wall_ms) << ","
        << StrFormat("%.3f", r.oracle_ms) << "\n";
  }
}

void WriteStreamJson(const StreamReport& report, std::ostream& out) {
  out << "{\n  \"schema\": \"rescq-stream-report/v6\",\n";
  out << "  \"query\": \"" << JsonEscape(report.query)
      << "\", \"query_text\": \"" << JsonEscape(report.query_text) << "\",\n";
  out << "  \"options\": {\"check_oracle\": "
      << BoolName(report.options.check_oracle)
      << ", \"witness_limit\": " << report.options.witness_limit
      << ", \"exact_node_budget\": " << report.options.exact_node_budget
      << ", \"solver_threads\": " << report.options.solver_threads
      << "},\n";
  out << "  \"summary\": {\"epochs\": " << report.rows.size()
      << ", \"mismatches\": " << report.mismatches
      << ", \"resolves\": " << report.resolves
      << ", \"budget_exceeded\": " << report.budget_exceeded
      << ", \"total_wall_ms\": " << StrFormat("%.3f", report.total_wall_ms)
      << ", \"total_oracle_ms\": "
      << StrFormat("%.3f", report.total_oracle_ms) << "},\n";
  // v6: the global metrics registry's snapshot fields. Empty objects
  // unless a sink (--metrics-json or a test) enabled collection.
  std::string metrics;
  obs::GlobalRegistry().AppendSnapshotFields(&metrics, 4);
  out << "  \"metrics\": {\n" << metrics << "\n  },\n";
  out << "  \"epochs\": [\n";
  for (size_t i = 0; i < report.rows.size(); ++i) {
    const StreamRow& r = report.rows[i];
    out << "    {\"epoch\": " << r.epoch << ", \"inserted\": " << r.inserted
        << ", \"deleted\": " << r.deleted << ", \"tuples\": " << r.tuples
        << ", \"delta_witnesses\": " << r.delta_witnesses
        << ", \"family_sets\": " << r.family_sets
        << ", \"lower_bound\": " << r.lower_bound
        << ", \"upper_bound\": " << r.upper_bound
        << ", \"resolved\": " << BoolName(r.resolved)
        << ", \"unbreakable\": " << BoolName(r.unbreakable)
        << ", \"resilience\": " << r.resilience
        << ", \"oracle_checked\": " << BoolName(r.oracle_checked)
        << ", \"oracle_match\": " << BoolName(r.oracle_match)
        << ", \"oracle_resilience\": " << r.oracle_resilience
        << ", \"budget_exceeded\": " << BoolName(r.budget_exceeded)
        << ", \"error\": \"" << JsonEscape(r.error) << "\""
        << ", \"wall_ms\": " << StrFormat("%.3f", r.wall_ms)
        << ", \"oracle_ms\": " << StrFormat("%.3f", r.oracle_ms) << "}"
        << (i + 1 < report.rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

namespace {

bool SaveWith(void (*write)(const StreamReport&, std::ostream&),
              const StreamReport& report, const std::string& path,
              std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create report file '" + path + "'";
    return false;
  }
  write(report, out);
  return true;
}

}  // namespace

bool SaveStreamCsv(const StreamReport& report, const std::string& path,
                   std::string* error) {
  return SaveWith(WriteStreamCsv, report, path, error);
}

bool SaveStreamJson(const StreamReport& report, const std::string& path,
                    std::string* error) {
  return SaveWith(WriteStreamJson, report, path, error);
}

void PrintStreamTable(const StreamReport& report, std::FILE* out) {
  std::fprintf(out, "query: %s\n", report.query_text.c_str());
  std::fprintf(out, "%5s %5s %5s %7s %7s %6s %5s %5s %6s %5s %-8s %9s\n",
               "epoch", "+ins", "-del", "tuples", "d_wit", "sets", "lb", "ub",
               "solve", "rho", "oracle", "wall_ms");
  for (const StreamRow& r : report.rows) {
    const char* oracle = !r.oracle_checked ? "-"
                         : r.oracle_match  ? "match"
                                           : "MISMATCH";
    // A node-budget row carries a *feasible* value: an upper bound on
    // the true resilience. A witness-budget row has no value at all.
    std::string rho =
        r.budget_exceeded
            ? (r.resilience > 0 ? StrFormat("<=%d", r.resilience) : "-")
        : r.unbreakable ? "inf"
                        : StrFormat("%d", r.resilience);
    std::fprintf(out, "%5d %5d %5d %7d %7zu %6zu %5d %5d %6s %5s %-8s %9.3f%s\n",
                 r.epoch, r.inserted, r.deleted, r.tuples, r.delta_witnesses,
                 r.family_sets, r.lower_bound, r.upper_bound,
                 r.resolved ? "yes" : "-", rho.c_str(), oracle, r.wall_ms,
                 r.budget_exceeded ? "  (budget exceeded)" : "");
  }
  std::fprintf(out,
               "\n%zu epoch(s), %d mismatch(es), %d exact re-solve(s), %d "
               "over budget; incremental %.1f ms, oracle %.1f ms\n",
               report.rows.size(), report.mismatches, report.resolves,
               report.budget_exceeded, report.total_wall_ms,
               report.total_oracle_ms);
}

}  // namespace rescq
