#include "workload/churn.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "util/check.h"
#include "util/rng.h"

namespace rescq {

namespace {

Update MakeDelete(const Database& db, TupleId t) {
  Update u;
  u.kind = UpdateKind::kDelete;
  u.relation = db.relation_name(t.relation);
  for (Value v : db.Row(t)) u.constants.push_back(db.ValueName(v));
  return u;
}

// The stream applied so far, with the live-tuple list and per-constant
// occurrence counts maintained incrementally — a generator draw is O(1)
// (plus O(domain) for the hub argmax), never a database rescan.
struct ChurnGenerator {
  const std::string& kind;
  Rng rng;
  Database working;
  int fresh = 0;  // counter for fresh constant names

  std::vector<TupleId> active;
  std::unordered_map<TupleId, size_t, TupleIdHash> active_pos;
  std::vector<int64_t> freq;  // per Value: occurrences in live tuples

  void Init() {
    for (int rel = 0; rel < working.num_relations(); ++rel) {
      for (TupleId t : working.ActiveTuples(rel)) Track(t, +1);
    }
  }

  void Track(TupleId t, int sign) {
    if (sign > 0) {
      active_pos[t] = active.size();
      active.push_back(t);
    } else {
      size_t pos = active_pos.at(t);
      active_pos[active.back()] = pos;
      std::swap(active[pos], active.back());
      active.pop_back();
      active_pos.erase(t);
    }
    if (freq.size() < static_cast<size_t>(working.domain_size())) {
      freq.resize(static_cast<size_t>(working.domain_size()), 0);
    }
    for (Value v : working.Row(t)) freq[static_cast<size_t>(v)] += sign;
  }

  /// Applies the update to the working copy and the bookkeeping.
  void Apply(const Update& u) {
    const UpdateKind k = u.kind;
    std::optional<TupleId> id = ApplyUpdate(u, &working);
    if (id.has_value()) Track(*id, k == UpdateKind::kInsert ? +1 : -1);
  }

  /// The most frequent constant among the live tuples; -1 when empty.
  Value Hub() const {
    Value hub = -1;
    int64_t best = 0;
    for (size_t v = 0; v < freq.size(); ++v) {
      if (freq[v] > best) {
        best = freq[v];
        hub = static_cast<Value>(v);
      }
    }
    return hub;
  }

  /// A new fact for `rel` (db relation id): existing constants with an
  /// occasional fresh one; `forced` (if >= 0) is planted at a random
  /// position. Retries a few times to avoid already-active facts; a
  /// stubbornly dense relation yields nullopt (the update is skipped).
  std::optional<Update> MakeInsert(int rel, Value forced) {
    const int arity = working.relation_arity(rel);
    for (int attempt = 0; attempt < 8; ++attempt) {
      Update u;
      u.kind = UpdateKind::kInsert;
      u.relation = working.relation_name(rel);
      std::vector<Value> row;
      for (int c = 0; c < arity; ++c) {
        if (rng.Chance(1, 8)) {
          row.push_back(working.Intern("new" + std::to_string(fresh++)));
        } else {
          row.push_back(static_cast<Value>(
              rng.Below(static_cast<uint64_t>(working.domain_size()))));
        }
      }
      if (forced >= 0) {
        row[rng.Below(static_cast<uint64_t>(arity))] = forced;
      }
      std::optional<TupleId> existing = working.FindTuple(u.relation, row);
      if (existing.has_value() && working.IsActive(*existing)) continue;
      for (Value v : row) u.constants.push_back(working.ValueName(v));
      return u;
    }
    return std::nullopt;
  }

  std::optional<Update> NextUpdate() {
    const bool can_delete = !active.empty();
    const bool can_insert = working.num_relations() > 0;
    if (!can_insert && !can_delete) return std::nullopt;

    auto random_insert = [&](Value forced) -> std::optional<Update> {
      if (!can_insert) return std::nullopt;
      int rel = static_cast<int>(
          rng.Below(static_cast<uint64_t>(working.num_relations())));
      return MakeInsert(rel, forced);
    };
    auto random_delete = [&]() -> std::optional<Update> {
      if (!can_delete) return std::nullopt;
      return MakeDelete(working, active[rng.Below(active.size())]);
    };

    if (kind == "insert") return random_insert(-1);
    if (kind == "delete") return random_delete();
    if (kind == "mixed") {
      if (can_delete && (!can_insert || rng.Chance(1, 2))) {
        return random_delete();
      }
      return random_insert(-1);
    }

    RESCQ_CHECK(kind == "hub");
    Value hub = Hub();
    if (hub < 0) return std::nullopt;
    if (can_insert && (!can_delete || rng.Chance(1, 2))) {
      // A dense relation can reject every forced-hub fact (a unary
      // R(hub) exists exactly once); fall back to deleting at the hub
      // instead of stalling the epoch.
      std::optional<Update> u = random_insert(hub);
      if (u.has_value()) return u;
    }
    // Delete among the hub's facts: rejection-sample the live list (a
    // hub by definition sits in many of them), with a full scan as the
    // deterministic fallback for sparse hubs.
    for (int attempt = 0; attempt < 32 && can_delete; ++attempt) {
      TupleId t = active[rng.Below(active.size())];
      const std::vector<Value>& row = working.Row(t);
      if (std::find(row.begin(), row.end(), hub) != row.end()) {
        return MakeDelete(working, t);
      }
    }
    std::vector<TupleId> touching;
    for (TupleId t : active) {
      const std::vector<Value>& row = working.Row(t);
      if (std::find(row.begin(), row.end(), hub) != row.end()) {
        touching.push_back(t);
      }
    }
    if (touching.empty()) return random_delete();
    return MakeDelete(working, touching[rng.Below(touching.size())]);
  }
};

}  // namespace

const std::vector<ChurnKind>& ChurnCatalog() {
  static const std::vector<ChurnKind>* kCatalog = new std::vector<ChurnKind>{
      {"insert", "insert-only churn: new facts over the existing domain"},
      {"delete", "delete-only churn: random live facts are removed"},
      {"mixed", "a fair coin per update between insert and delete"},
      {"hub", "updates target the most frequent constant (skewed load)"},
  };
  return *kCatalog;
}

std::vector<std::string> AllChurnNames() {
  std::vector<std::string> names;
  for (const ChurnKind& k : ChurnCatalog()) names.push_back(k.name);
  return names;
}

bool IsChurnKind(const std::string& name) {
  for (const ChurnKind& k : ChurnCatalog()) {
    if (k.name == name) return true;
  }
  return false;
}

UpdateLog GenerateChurn(const Database& base, const std::string& kind,
                        const ChurnParams& params) {
  RESCQ_CHECK(IsChurnKind(kind));
  UpdateLog log;
  ChurnGenerator gen{kind, Rng(params.seed), base, 0, {}, {}, {}};
  gen.Init();
  for (int e = 0; e < params.epochs; ++e) {
    Epoch epoch;
    const int budget = std::max(
        1,
        static_cast<int>(std::lround(params.rate *
                                     static_cast<double>(gen.active.size()))));
    for (int u = 0; u < budget; ++u) {
      std::optional<Update> update = gen.NextUpdate();
      if (!update.has_value()) continue;  // e.g. nothing left to delete
      gen.Apply(*update);
      epoch.updates.push_back(std::move(*update));
    }
    log.epochs.push_back(std::move(epoch));
  }
  return log;
}

}  // namespace rescq
