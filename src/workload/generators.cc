#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "cq/parser.h"
#include "util/rng.h"

namespace rescq {

namespace {

/// Bernoulli draw with probability p (clamped to [0,1]), deterministic
/// in rng. Rng::Chance wants a rational, so fix the denominator.
bool Bern(Rng& rng, double p) {
  constexpr uint64_t kDen = 1u << 20;
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return rng.Chance(static_cast<uint64_t>(p * kDen), kDen);
}

/// ~density*size, but at least `floor` — the "extra edges" knob shared
/// by several families.
int Extras(const ScenarioParams& p, int floor_count = 0) {
  return std::max(floor_count, static_cast<int>(p.density * p.size));
}

std::vector<Value> InternAll(Database* db, const char* prefix, int count) {
  std::vector<Value> vals;
  vals.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) vals.push_back(db->InternIndexed(prefix, i));
  return vals;
}

}  // namespace

Database GenerateChain(const ScenarioParams& p) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(2, p.size);
  std::vector<Value> node = InternAll(&db, "n", n);
  for (int i = 0; i + 1 < n; ++i) db.AddTuple("R", {node[i], node[i + 1]});
  for (int e = 0; e < Extras(p); ++e) {
    // Forward skip edges keep the instance chain-shaped (acyclic but for
    // the optional self-loop below).
    int u = static_cast<int>(rng.Below(static_cast<uint64_t>(n - 1)));
    int v = u + 1 + static_cast<int>(rng.Range(0, n - 1 - u - 1));
    db.AddTuple("R", {node[u], node[v]});
  }
  // The Section 2 example's R(3,3): a self-loop forces its own deletion.
  if (Bern(rng, p.density)) db.AddTuple("R", {node[n - 1], node[n - 1]});
  return db;
}

namespace {

Database PermutationEdges(const ScenarioParams& p, std::vector<Value>* out) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(2, p.size);
  std::vector<Value> node = InternAll(&db, "a", n);
  std::vector<int> perm(static_cast<size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  for (int i = 0; i < n; ++i) {
    db.AddTuple("R", {node[i], node[perm[static_cast<size_t>(i)]]});
  }
  for (int e = 0; e < Extras(p); ++e) {
    Value u = node[rng.Below(static_cast<uint64_t>(n))];
    Value v = node[rng.Below(static_cast<uint64_t>(n))];
    db.AddTuple("R", {u, v});
  }
  if (out) *out = node;
  return db;
}

}  // namespace

Database GeneratePermutation(const ScenarioParams& p) {
  return PermutationEdges(p, nullptr);
}

Database GenerateBipartitePermutation(const ScenarioParams& p) {
  std::vector<Value> node;
  Database db = PermutationEdges(p, &node);
  // Distinct stream for the A-membership draws so they do not perturb
  // the shared permutation edges.
  Rng rng(p.seed ^ 0x9e3779b97f4a7c15ULL);
  for (Value v : node) {
    if (Bern(rng, p.density)) db.AddTuple("A", {v});
  }
  return db;
}

namespace {

/// Encodes an undirected edge list as a q_vc instance: R holds every
/// vertex, S one direction per edge.
Database EncodeVC(const std::vector<Value>& vertex,
                  const std::vector<std::pair<int, int>>& edges, Database db) {
  for (Value v : vertex) db.AddTuple("R", {v});
  for (const auto& [u, v] : edges) {
    db.AddTuple("S", {vertex[static_cast<size_t>(u)],
                      vertex[static_cast<size_t>(v)]});
  }
  return db;
}

}  // namespace

Database GenerateErdosRenyiVC(const ScenarioParams& p) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(2, p.size);
  std::vector<Value> vertex = InternAll(&db, "v", n);
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (Bern(rng, p.density)) edges.push_back({u, v});
    }
  }
  return EncodeVC(vertex, edges, std::move(db));
}

Database GeneratePathVC(const ScenarioParams& p) {
  Database db;
  int n = std::max(2, p.size);
  std::vector<Value> vertex = InternAll(&db, "v", n);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return EncodeVC(vertex, edges, std::move(db));
}

Database GenerateGridVC(const ScenarioParams& p) {
  Database db;
  int n = std::max(2, p.size);
  int width = std::max(1, static_cast<int>(std::ceil(std::sqrt(n))));
  std::vector<Value> vertex = InternAll(&db, "v", n);
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    if ((i + 1) % width != 0 && i + 1 < n) edges.push_back({i, i + 1});
    if (i + width < n) edges.push_back({i, i + width});
  }
  return EncodeVC(vertex, edges, std::move(db));
}

Database GeneratePlantedVC(const ScenarioParams& p) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(3, p.size);
  int cover = std::min(n - 1, std::max(1, static_cast<int>(p.density * n)));
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);  // order[0..cover) is the planted cover
  std::vector<Value> vertex = InternAll(&db, "v", n);
  std::vector<std::pair<int, int>> edges;
  for (int i = cover; i < n; ++i) {
    int fan = 1 + static_cast<int>(rng.Below(2));
    for (int e = 0; e < fan; ++e) {
      int c = order[rng.Below(static_cast<uint64_t>(cover))];
      edges.push_back({c, order[static_cast<size_t>(i)]});
    }
  }
  for (int e = 0; e < cover / 2; ++e) {
    int a = order[rng.Below(static_cast<uint64_t>(cover))];
    int b = order[rng.Below(static_cast<uint64_t>(cover))];
    if (a != b) edges.push_back({a, b});
  }
  return EncodeVC(vertex, edges, std::move(db));
}

Database GenerateDominationHeavy(const ScenarioParams& p) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(2, p.size);
  int hubs = std::max(1, n / 4);
  std::vector<Value> hub = InternAll(&db, "h", hubs);
  std::vector<Value> xs = InternAll(&db, "x", n);
  std::vector<Value> zs = InternAll(&db, "z", n);
  for (int i = 0; i < n; ++i) {
    db.AddTuple("A", {xs[static_cast<size_t>(i)]});
    db.AddTuple("C", {zs[static_cast<size_t>(i)]});
    // Every spoke reaches one hub, so witnesses always exist; extra
    // hub edges below create the skew that domination pruning feeds on.
    db.AddTuple("R", {xs[static_cast<size_t>(i)], hub[i % hubs]});
    db.AddTuple("R", {zs[static_cast<size_t>(i)], hub[i % hubs]});
  }
  for (int i = 0; i < n; ++i) {
    for (int h = 0; h < hubs; ++h) {
      if (Bern(rng, p.density / 2)) {
        db.AddTuple("R", {xs[static_cast<size_t>(i)], hub[h]});
      }
      if (Bern(rng, p.density / 2)) {
        db.AddTuple("R", {zs[static_cast<size_t>(i)], hub[h]});
      }
    }
  }
  return db;
}

Database GenerateTriadHard(const ScenarioParams& p) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(2, p.size);
  std::vector<Value> xs = InternAll(&db, "x", n);
  std::vector<Value> ys = InternAll(&db, "y", n);
  std::vector<Value> zs = InternAll(&db, "z", n);
  // One guaranteed triangle; the rest is tripartite Erdős–Rényi.
  db.AddTuple("R", {xs[0], ys[0]});
  db.AddTuple("S", {ys[0], zs[0]});
  db.AddTuple("T", {zs[0], xs[0]});
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (Bern(rng, p.density)) {
        db.AddTuple("R", {xs[static_cast<size_t>(a)],
                          ys[static_cast<size_t>(b)]});
      }
      if (Bern(rng, p.density)) {
        db.AddTuple("S", {ys[static_cast<size_t>(a)],
                          zs[static_cast<size_t>(b)]});
      }
      if (Bern(rng, p.density)) {
        db.AddTuple("T", {zs[static_cast<size_t>(a)],
                          xs[static_cast<size_t>(b)]});
      }
    }
  }
  return db;
}

Database GenerateUniform(const Query& q, const ScenarioParams& p) {
  Rng rng(p.seed);
  Database db;
  int n = std::max(1, p.size);
  int domain = std::max(2, static_cast<int>(p.density * n));
  std::vector<Value> dom = InternAll(&db, "c", domain);
  for (const std::string& rel : q.RelationNames()) {
    int arity = q.RelationArity(rel);
    for (int t = 0; t < n; ++t) {
      std::vector<Value> row;
      row.reserve(static_cast<size_t>(arity));
      for (int c = 0; c < arity; ++c) {
        row.push_back(dom[rng.Below(static_cast<uint64_t>(domain))]);
      }
      db.AddTuple(rel, row);
    }
  }
  return db;
}

const std::vector<Scenario>& ScenarioCatalog() {
  static const std::vector<Scenario>* catalog = new std::vector<Scenario>{
      {"chain", "R(x,y), R(y,z)",
       "directed path + skip edges for q_chain (Section 2, exact solver)",
       GenerateChain},
      {"perm", "R(x,y), R(y,x)",
       "random permutation + noise edges for q_perm (Prop 33 counting)",
       GeneratePermutation},
      {"perm_bipartite", "A(x), R(x,y), R(y,x)",
       "permutation instance with sampled A for q_Aperm (Prop 33 Koenig)",
       GenerateBipartitePermutation},
      {"vc_er", "R(x), S(x,y), R(y)",
       "Erdos-Renyi G(n, density) encoded for q_vc (Prop 9)",
       GenerateErdosRenyiVC},
      {"vc_path", "R(x), S(x,y), R(y)",
       "path graph for q_vc; optimum floor(n/2)", GeneratePathVC},
      {"vc_grid", "R(x), S(x,y), R(y)", "near-square grid graph for q_vc",
       GenerateGridVC},
      {"vc_planted", "R(x), S(x,y), R(y)",
       "planted cover of ~density*n vertices touching every edge",
       GeneratePlantedVC},
      {"domination", "A(x), R(x,y), R(z,y), C(z)",
       "hub-skewed instance for q_ACconf (Prop 12 flow + domination)",
       GenerateDominationHeavy},
      {"triad", "R(x,y), S(y,z), T(z,x)",
       "tripartite Erdos-Renyi for the triangle triad (Theorem 24, "
       "NP-complete)",
       GenerateTriadHard},
      {"uniform", "R(x,y), A(x), T(z,x), S(y,z)",
       "generic per-atom uniform filler (default query q_rats)",
       [](const ScenarioParams& p) {
         return GenerateUniform(MustParseQuery("R(x,y), A(x), T(z,x), S(y,z)"),
                                p);
       }},
  };
  return *catalog;
}

std::vector<std::string> AllScenarioNames() {
  std::vector<std::string> names;
  names.reserve(ScenarioCatalog().size());
  for (const Scenario& s : ScenarioCatalog()) names.push_back(s.name);
  return names;
}

const Scenario* FindScenario(const std::string& name) {
  for (const Scenario& s : ScenarioCatalog()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace rescq
