#ifndef RESCQ_COMPLEXITY_TRIAD_H_
#define RESCQ_COMPLEXITY_TRIAD_H_

#include <array>
#include <optional>

#include "cq/query.h"

namespace rescq {

/// A triad (Definition 5): three endogenous atoms {S0,S1,S2} such that for
/// every pair (i,j) there is a path from Si to Sj in the dual hypergraph
/// H(q) whose connecting variables avoid var(Sk) of the third atom.
struct Triad {
  std::array<int, 3> atoms;
};

/// Searches for a triad among the endogenous atoms of q. Queries with a
/// triad have NP-complete resilience (Theorem 24, generalizing Lemma 6 of
/// the sj-free case). Callers normally normalize domination first, since
/// dominated atoms must be exogenous for the theorem to apply.
std::optional<Triad> FindTriad(const Query& q);

bool HasTriad(const Query& q);

/// Theorem 25: a CQ with no triad has its endogenous atoms connected
/// linearly ("pseudo-linear"). This predicate is the theorem's
/// contrapositive gate: triad-free.
bool IsPseudoLinear(const Query& q);

}  // namespace rescq

#endif  // RESCQ_COMPLEXITY_TRIAD_H_
