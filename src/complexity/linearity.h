#ifndef RESCQ_COMPLEXITY_LINEARITY_H_
#define RESCQ_COMPLEXITY_LINEARITY_H_

#include <optional>
#include <vector>

#include "cq/query.h"

namespace rescq {

/// Searches for a *linear order* of all atoms of q: an arrangement in
/// which every variable occurs in a contiguous run of atoms (Section 2.4).
/// Returns the atom order, or nullopt if q is not linear.
///
/// This is the consecutive-ones property of the atom/variable incidence
/// matrix; query sizes are small, so a pruned backtracking search is used.
std::optional<std::vector<int>> FindLinearOrder(const Query& q);

/// True if q is a linear query.
bool IsLinear(const Query& q);

/// Variables shared by consecutive atoms in a linear order: the
/// "interface" at each boundary (used by the flow solver). Entry i holds
/// the variables live between order[i] and order[i+1]; the list has
/// q.num_atoms()-1 entries. For a valid linear order this equals
/// var(order[i]) ∩ var(order[i+1]).
std::vector<std::vector<VarId>> LinearInterfaces(
    const Query& q, const std::vector<int>& order);

}  // namespace rescq

#endif  // RESCQ_COMPLEXITY_LINEARITY_H_
