#include "complexity/catalog.h"

#include "cq/parser.h"
#include "util/check.h"

namespace rescq {

const char* ComplexityName(Complexity c) {
  switch (c) {
    case Complexity::kPTime:
      return "PTIME";
    case Complexity::kNpComplete:
      return "NP-complete";
    case Complexity::kOpen:
      return "open";
    case Complexity::kOutOfScope:
      return "out-of-scope";
  }
  return "?";
}

const std::vector<CatalogEntry>& PaperCatalog() {
  static const std::vector<CatalogEntry>* const kCatalog =
      new std::vector<CatalogEntry>{
          // --- Section 2: sj-free background queries -----------------------
          {"q_triangle", "R(x,y), S(y,z), T(z,x)", Complexity::kNpComplete,
           "Lemma 6 / Proposition 56 (triad)"},
          {"q_T", "A(x), B(y), C(z), W(x,y,z)", Complexity::kNpComplete,
           "Lemma 6 / Proposition 57 (triad)"},
          {"q_rats", "R(x,y), A(x), T(z,x), S(y,z)", Complexity::kPTime,
           "Section 2.2 (domination disarms the triad)"},
          {"q_brats", "B(y), R(x,y), A(x), T(z,x), S(y,z)",
           Complexity::kPTime, "Section 5.1 (sj-free, dominated)"},
          {"q_lin", "A(x), R(x,y,z), S(y,z)", Complexity::kPTime,
           "Section 2.4 (linear)"},
          // --- Section 3.1: basic hard self-join queries --------------------
          {"q_vc", "R(x), S(x,y), R(y)", Complexity::kNpComplete,
           "Proposition 9"},
          {"q_chain", "R(x,y), R(y,z)", Complexity::kNpComplete,
           "Proposition 10"},
          // --- Section 3.3: trickier flow --------------------------------
          {"q_ACconf", "A(x), R(x,y), R(z,y), C(z)", Complexity::kPTime,
           "Proposition 12"},
          {"q_A3perm_R", "A(x), R(x,y), R(y,z), R(z,y)", Complexity::kPTime,
           "Proposition 13"},
          // --- Section 5: self-join variations of the triangle -------------
          {"q_sj1_triangle", "R(x,y), R(y,z), R(z,x)",
           Complexity::kNpComplete, "Lemma 21 / Theorem 24 (triad)"},
          {"q_sj2_triangle", "R(x,y), R(y,z), T(z,x)",
           Complexity::kNpComplete, "Lemma 21 / Theorem 24 (triad)"},
          {"q_sj3_triangle", "R(x,y), S(y,z), R(z,x)",
           Complexity::kNpComplete, "Lemma 21 / Theorem 24 (triad)"},
          {"q_sj1rats", "R(x,y), A(x), R(y,z), R(z,x)",
           Complexity::kNpComplete, "Proposition 23 / Lemma 50"},
          {"q_sj2rats", "R(x,y), A(x), R(y,z), R(x,z)",
           Complexity::kNpComplete, "Proposition 23 / Lemma 50"},
          {"q_sj1brats", "B(y), R(x,y), A(x), R(z,x), R(y,z)",
           Complexity::kNpComplete, "Proposition 23 / Lemma 51"},
          // --- Section 7.1: chain expansions --------------------------------
          {"q_achain", "A(x), R(x,y), R(y,z)", Complexity::kNpComplete,
           "Lemma 53"},
          {"q_bchain", "R(x,y), B(y), R(y,z)", Complexity::kNpComplete,
           "Lemma 52"},
          {"q_cchain", "R(x,y), R(y,z), C(z)", Complexity::kNpComplete,
           "Lemma 53"},
          {"q_abchain", "A(x), R(x,y), B(y), R(y,z)", Complexity::kNpComplete,
           "Lemma 53"},
          {"q_bcchain", "R(x,y), B(y), R(y,z), C(z)", Complexity::kNpComplete,
           "Lemma 53"},
          {"q_acchain", "A(x), R(x,y), R(y,z), C(z)", Complexity::kNpComplete,
           "Lemma 54"},
          {"q_abcchain", "A(x), R(x,y), B(y), R(y,z), C(z)",
           Complexity::kNpComplete, "Lemma 54"},
          // --- Section 7.2: confluences -------------------------------------
          {"cf_p", "R(x,y), H^x(x,z), R(z,y)", Complexity::kNpComplete,
           "Proposition 32 (exogenous path; RES ≡ RES(q_vc))"},
          // --- Section 7.3: permutations ------------------------------------
          {"q_perm", "R(x,y), R(y,x)", Complexity::kPTime, "Proposition 33"},
          {"q_Aperm", "A(x), R(x,y), R(y,x)", Complexity::kPTime,
           "Proposition 33"},
          {"q_ABperm", "A(x), R(x,y), R(y,x), B(y)", Complexity::kNpComplete,
           "Proposition 34"},
          // --- Section 7.4: REP ---------------------------------------------
          {"z1", "R(x,x), S(x,y), R(y,y)", Complexity::kNpComplete,
           "Theorem 28 (binary path)"},
          {"z2", "R(x,x), S(x,y), R(y,z)", Complexity::kNpComplete,
           "Theorem 28 (binary path)"},
          {"z3", "R(x,x), R(x,y), A(y)", Complexity::kPTime,
           "Proposition 36"},
          // --- Section 8.1: 3-chains ----------------------------------------
          {"q_3chain", "R(x,y), R(y,z), R(z,w)", Complexity::kNpComplete,
           "Proposition 38"},
          // --- Section 8.2: 3-confluences -----------------------------------
          {"q_AC3conf", "A(x), R(x,y), R(z,y), R(z,w), C(w)",
           Complexity::kNpComplete, "Proposition 39"},
          {"q_TS3conf", "T^x(x,y), R(x,y), R(z,y), R(z,w), S^x(z,w)",
           Complexity::kPTime, "Proposition 41"},
          {"q_AS3conf", "A(x), R(x,y), R(z,y), R(z,w), S^x(z,w)",
           Complexity::kOpen, "Section 8.2 (open problem)"},
          // --- Section 8.3: chain + confluence -------------------------------
          {"q_AC3cc", "A(x), R(x,y), R(y,z), R(w,z), C(w)",
           Complexity::kNpComplete, "Proposition 42"},
          {"q_AS3cc", "A(x), R(x,y), R(y,z), R(w,z), S(w,z)",
           Complexity::kNpComplete, "Proposition 42"},
          {"q_C3cc", "R(x,y), R(y,z), R(w,z), C(w)", Complexity::kNpComplete,
           "Proposition 43"},
          {"q_S3cc", "R(x,y), R(y,z), R(w,z), S(w,z)", Complexity::kOpen,
           "Section 8.3 (open problem)"},
          // --- Section 8.4: permutation plus R --------------------------------
          {"q_Swx3perm_R", "S(w,x), R(x,y), R(y,z), R(z,y)",
           Complexity::kPTime, "Proposition 44"},
          {"q_Sxy3perm_R", "S^x(x,y), R(x,y), R(y,z), R(z,y)",
           Complexity::kNpComplete, "Proposition 45"},
          {"q_AC3perm_R", "A(x), R(x,y), R(y,z), R(z,y), C(z)",
           Complexity::kNpComplete, "Proposition 46"},
          {"q_AB3perm_R", "A(x), R(x,y), B(y), R(y,z), R(z,y)",
           Complexity::kNpComplete, "Proposition 46"},
          {"q_SxyBC3perm_R", "S(x,y), R(x,y), B(y), R(y,z), R(z,y), C(z)",
           Complexity::kNpComplete, "Proposition 46"},
          {"q_ASxy3perm_R", "A(x), S(x,y), R(x,y), R(y,z), R(z,y)",
           Complexity::kOpen, "Section 8.4 (open problem)"},
          {"q_SxyB3perm_R", "S(x,y), R(x,y), B(y), R(y,z), R(z,y)",
           Complexity::kOpen, "Section 8.4 (open problem)"},
          {"q_SxyC3perm_R", "S(x,y), R(x,y), R(y,z), R(z,y), C(z)",
           Complexity::kOpen, "Section 8.4 (open problem)"},
          // --- Section 8.5: REP with three R-atoms -----------------------------
          {"z4", "R(x,x), R(x,y), S(x,y), R(y,y)", Complexity::kNpComplete,
           "Proposition 47"},
          {"z5", "A(x), R(x,y), R(y,z), R(z,z)", Complexity::kNpComplete,
           "Proposition 47"},
          {"z6", "A(x), R(x,y), R(y,y), R(y,z), C(z)", Complexity::kOpen,
           "Section 8.5 (open problem)"},
          {"z7", "A(x), R(x,y), R(y,x), R(y,y)", Complexity::kOpen,
           "Section 8.5 (open problem)"},
      };
  return *kCatalog;
}

Query CatalogQuery(const std::string& name) {
  std::optional<CatalogEntry> entry = FindCatalogEntry(name);
  RESCQ_CHECK_MSG(entry.has_value(), name.c_str());
  return MustParseQuery(entry->text);
}

std::optional<CatalogEntry> FindCatalogEntry(const std::string& name) {
  for (const CatalogEntry& e : PaperCatalog()) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

}  // namespace rescq
