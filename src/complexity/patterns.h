#ifndef RESCQ_COMPLEXITY_PATTERNS_H_
#define RESCQ_COMPLEXITY_PATTERNS_H_

#include <optional>
#include <string>
#include <vector>

#include "cq/query.h"

namespace rescq {

/// The single self-join relation of a query (Section 6): the one relation
/// occurring in more than one *endogenous* atom.
struct SelfJoinInfo {
  std::string relation;
  std::vector<int> atoms;  // its endogenous atom indices
};

/// Returns the self-join info if exactly one relation repeats among the
/// endogenous atoms; nullopt if there is no endogenous self-join or more
/// than one repeated relation (outside the paper's ssj class).
std::optional<SelfJoinInfo> GetSingleSelfJoin(const Query& q);

/// Theorem 27 (unary path): q minimal ssj-CQ with two distinct unary
/// R-atoms => NP-complete.
bool HasUnaryPath(const Query& q, const SelfJoinInfo& sj);

/// Theorem 28 (binary path): two variable-disjoint R-atoms joined by an
/// R-free path ("consecutive") => NP-complete. Covers the REP queries z1,
/// z2 whose R-atoms are variable-disjoint.
bool HasBinaryPath(const Query& q, const SelfJoinInfo& sj);

/// How two binary R-atoms sharing at least one variable relate (Fig. 5).
enum class PairPattern {
  kChain,        // share one variable, different attribute positions
  kConfluence,   // share one variable, same attribute position
  kPermutation,  // R(x,y), R(y,x)
  kRep,          // at least one atom repeats a variable, shared var
  kDisjoint,     // no shared variable (path territory)
  kIdentical,    // same atom twice (non-minimal)
};

/// Classifies the relationship between two binary R-atoms.
PairPattern ClassifyPair(const Query& q, int a1, int a2);

/// Proposition 35's criterion for permutations R(x,y),R(y,x): the
/// permutation is *bound* if some endogenous atom (other than the pair)
/// contains x but not y, and another contains y but not x.
bool PermutationIsBound(const Query& q, int a1, int a2);

/// Proposition 32's criterion for confluences R(x,y),R(z,y): true if x
/// and z are connected by a path through non-R atoms avoiding the shared
/// variable y (the "exogenous path"; in triad-free queries any such
/// connector is exogenous). `a1`/`a2` are the confluence atoms.
bool ConfluenceHasExogenousPath(const Query& q, int a1, int a2);

/// Proposition 38: the endogenous R-atoms form a k-chain
/// R(x1,x2), R(x2,x3), ..., R(xk,xk+1) (all variables distinct) in some
/// order, possibly after globally swapping R's columns.
bool RAtomsFormChain(const Query& q, const SelfJoinInfo& sj);

/// Section 8.2: the three R-atoms form a 3-confluence
/// R(x,y), R(z,y), R(z,w) (up to global column swap). On success fills
/// the "end" variables x and w and the middle atoms.
struct ThreeConfluence {
  VarId end_x;     // the open end of the first atom
  VarId end_w;     // the open end of the last atom
  int atom_x;      // atom containing end_x
  int atom_w;      // atom containing end_w
};
std::optional<ThreeConfluence> FindThreeConfluence(const Query& q,
                                                   const SelfJoinInfo& sj);

}  // namespace rescq

#endif  // RESCQ_COMPLEXITY_PATTERNS_H_
