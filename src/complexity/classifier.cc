#include "complexity/classifier.h"

#include <map>

#include "complexity/patterns.h"
#include "complexity/triad.h"
#include "cq/components.h"
#include "cq/domination.h"
#include "cq/homomorphism.h"
#include "cq/parser.h"
#include "util/string_util.h"

namespace rescq {

namespace {

Classification Make(Complexity c, const std::string& pattern,
                    const std::string& reason, Query minimized,
                    Query normalized) {
  Classification out;
  out.complexity = c;
  out.pattern = pattern;
  out.reason = reason;
  out.minimized = std::move(minimized);
  out.normalized = std::move(normalized);
  return out;
}

// Normalized catalog queries, prepared once: each entry minimized and
// domination-normalized so inputs match after their own normalization.
struct NormalizedCatalog {
  std::vector<std::pair<Query, const CatalogEntry*>> entries;
};

const NormalizedCatalog& GetNormalizedCatalog() {
  static const NormalizedCatalog* const kNorm = [] {
    auto* norm = new NormalizedCatalog();
    for (const CatalogEntry& e : PaperCatalog()) {
      Query q = NormalizeDomination(Minimize(MustParseQuery(e.text)));
      norm->entries.emplace_back(std::move(q), &e);
    }
    return norm;
  }();
  return *kNorm;
}

const CatalogEntry* MatchCatalog(const Query& normalized) {
  for (const auto& [q, entry] : GetNormalizedCatalog().entries) {
    if (AreIsomorphicModuloRelabeling(normalized, q)) return entry;
  }
  return nullptr;
}

// Number of relations (over all atoms) that occur more than once.
std::vector<std::string> AllRepeatedRelations(const Query& q) {
  return q.RepeatedRelations();
}

Classification ClassifyComponent(const Query& minimized);

// Lemma 15: a disconnected minimal query has the complexity of its
// hardest component.
Classification CombineComponents(const Query& minimized,
                                 const std::vector<Query>& components) {
  Classification worst;
  bool first = true;
  auto rank = [](Complexity c) {
    switch (c) {
      case Complexity::kPTime:
        return 0;
      case Complexity::kOpen:
        return 1;
      case Complexity::kOutOfScope:
        return 2;
      case Complexity::kNpComplete:
        return 3;
    }
    return 0;
  };
  for (const Query& comp : components) {
    Classification c = ClassifyComponent(comp);
    if (first || rank(c.complexity) > rank(worst.complexity)) {
      worst = c;
      first = false;
    }
  }
  worst.reason = StrFormat(
      "disconnected query: hardest of %zu components (Lemma 15): %s",
      components.size(), worst.reason.c_str());
  worst.minimized = minimized;
  worst.normalized = minimized;
  return worst;
}

// Classifies q with exactly two endogenous R-atoms (Theorem 37), given
// that triads and paths have been ruled out.
Classification ClassifyTwoAtoms(const Query& minimized, const Query& n,
                                const SelfJoinInfo& sj) {
  int a1 = sj.atoms[0];
  int a2 = sj.atoms[1];
  switch (ClassifyPair(n, a1, a2)) {
    case PairPattern::kChain:
      return Make(Complexity::kNpComplete, "chain",
                  "contains a 2-chain as its only self-join "
                  "(Propositions 10, 29, 30)",
                  minimized, n);
    case PairPattern::kPermutation:
      if (PermutationIsBound(n, a1, a2)) {
        return Make(Complexity::kNpComplete, "bound-permutation",
                    "bound permutation R(x,y),R(y,x) (Propositions 34, 35)",
                    minimized, n);
      }
      return Make(Complexity::kPTime, "unbound-permutation",
                  "unbound permutation: witness pairs are independent / "
                  "bipartite vertex cover (Propositions 33, 35)",
                  minimized, n);
    case PairPattern::kConfluence:
      if (ConfluenceHasExogenousPath(n, a1, a2)) {
        return Make(Complexity::kNpComplete, "confluence-exogenous-path",
                    "confluence with an exogenous path between its open "
                    "ends (Proposition 32)",
                    minimized, n);
      }
      return Make(Complexity::kPTime, "confluence",
                  "confluence without exogenous path: standard network "
                  "flow with duplicated R-edges (Propositions 12, 31, 32)",
                  minimized, n);
    case PairPattern::kRep:
      return Make(Complexity::kPTime, "rep",
                  "repeated-variable self-join sharing a variable "
                  "(z3 family, Proposition 36)",
                  minimized, n);
    case PairPattern::kIdentical:
      // Unreachable after minimization (duplicate atoms collapse).
      return Make(Complexity::kOutOfScope, "identical-atoms",
                  "identical repeated atoms survived minimization "
                  "(unexpected)",
                  minimized, n);
    case PairPattern::kDisjoint:
      // Disjoint pairs in a connected query are paths, handled earlier.
      return Make(Complexity::kOutOfScope, "disjoint-pair",
                  "variable-disjoint R-atoms without a connecting R-free "
                  "path (unexpected in a connected query)",
                  minimized, n);
  }
  return Make(Complexity::kOutOfScope, "unreachable", "unreachable",
              minimized, n);
}

// Classifies q with three or more endogenous R-atoms (Section 8), given
// that triads and paths have been ruled out.
Classification ClassifyThreePlusAtoms(const Query& minimized, const Query& n,
                                      const SelfJoinInfo& sj) {
  if (RAtomsFormChain(n, sj)) {
    return Make(
        Complexity::kNpComplete, "k-chain",
        StrFormat("the %zu R-atoms form a k-chain (Proposition 38)",
                  sj.atoms.size()),
        minimized, n);
  }
  if (const CatalogEntry* entry = MatchCatalog(n)) {
    return Make(entry->expected, StrFormat("catalog:%s", entry->name.c_str()),
                StrFormat("matches %s from the paper (%s)",
                          entry->name.c_str(), entry->reference.c_str()),
                minimized, n);
  }
  // Proposition 40 generalization: a 3-confluence whose two open ends are
  // both pinned by endogenous unary atoms is NP-complete (any variation of
  // q^AC_3conf with unary relations).
  if (sj.atoms.size() == 3) {
    std::optional<ThreeConfluence> conf = FindThreeConfluence(n, sj);
    if (conf.has_value()) {
      bool end_x_pinned = false;
      bool end_w_pinned = false;
      for (int i : n.EndogenousAtoms()) {
        const Atom& a = n.atom(i);
        if (a.arity() != 1) continue;
        if (a.vars[0] == conf->end_x) end_x_pinned = true;
        if (a.vars[0] == conf->end_w) end_w_pinned = true;
      }
      if (end_x_pinned && end_w_pinned) {
        return Make(Complexity::kNpComplete, "3-confluence-unary-bounds",
                    "3-confluence with both open ends pinned by endogenous "
                    "unary atoms (Propositions 39, 40)",
                    minimized, n);
      }
    }
  }
  return Make(Complexity::kOpen, "3plus-atoms-uncharacterized",
              StrFormat("%zu R-atoms beyond the Section 8 catalog: the "
                        "dichotomy for this class is open",
                        sj.atoms.size()),
              minimized, n);
}

Classification ClassifyComponent(const Query& minimized) {
  Query n = NormalizeDomination(minimized);

  if (n.EndogenousAtoms().empty()) {
    return Make(Complexity::kPTime, "all-exogenous",
                "no endogenous atoms: the query can never be made false "
                "(resilience is undefined/infinite); trivially decidable",
                minimized, n);
  }

  if (HasTriad(n)) {
    std::optional<Triad> t = FindTriad(n);
    return Make(
        Complexity::kNpComplete, "triad",
        StrFormat("triad {%s, %s, %s} (Theorem 24)",
                  n.atom(t->atoms[0]).relation.c_str(),
                  n.atom(t->atoms[1]).relation.c_str(),
                  n.atom(t->atoms[2]).relation.c_str()),
        minimized, n);
  }

  std::optional<SelfJoinInfo> sj = GetSingleSelfJoin(n);
  std::vector<std::string> repeated = AllRepeatedRelations(n);

  if (!sj.has_value()) {
    if (repeated.empty() ||
        (repeated.size() <= 1 && n.IsRelationExogenous(repeated.front()))) {
      // No endogenous self-join: with no triad the endogenous atoms are
      // pseudo-linear (Theorem 25) and sj-free; PTIME by the sj-free
      // dichotomy (Theorem 7) resp. domination equivalence (Prop 18).
      return Make(Complexity::kPTime, "sj-free-triad-free",
                  "endogenous atoms are self-join-free and triad-free: "
                  "PTIME via network flow (Theorems 7, 25)",
                  minimized, n);
    }
    return Make(Complexity::kOutOfScope, "multiple-self-joins",
                "more than one repeated endogenous relation: outside the "
                "single-self-join class the paper characterizes",
                minimized, n);
  }

  // Exactly one endogenous self-join relation R. If any *other* relation
  // also repeats, q is not single-self-join.
  for (const std::string& rel : repeated) {
    if (rel != sj->relation) {
      return Make(Complexity::kOutOfScope, "multiple-self-joins",
                  StrFormat("relations %s and %s both repeat: outside the "
                            "single-self-join class",
                            sj->relation.c_str(), rel.c_str()),
                  minimized, n);
    }
  }

  int arity = n.RelationArity(sj->relation);
  if (arity == 1) {
    if (HasUnaryPath(n, *sj)) {
      return Make(Complexity::kNpComplete, "unary-path",
                  "two distinct unary R-atoms form a path (Theorem 27)",
                  minimized, n);
    }
    // Distinct unary atoms of the same relation always differ in variable
    // after minimization, so this is unreachable; defensively:
    return Make(Complexity::kOutOfScope, "unary-self-join",
                "unary self-join without a path (unexpected)", minimized, n);
  }
  if (arity > 2) {
    return Make(Complexity::kOutOfScope, "wide-self-join",
                "self-join relation of arity > 2: outside the binary class",
                minimized, n);
  }

  if (HasBinaryPath(n, *sj)) {
    return Make(Complexity::kNpComplete, "binary-path",
                "variable-disjoint consecutive R-atoms form a binary path "
                "(Theorem 28)",
                minimized, n);
  }

  if (!n.IsBinary()) {
    return Make(Complexity::kOutOfScope, "non-binary-query",
                "query has relations of arity > 2: the Section 7/8 "
                "analysis covers binary queries only",
                minimized, n);
  }

  if (sj->atoms.size() == 2) {
    return ClassifyTwoAtoms(minimized, n, *sj);
  }
  return ClassifyThreePlusAtoms(minimized, n, *sj);
}

}  // namespace

Classification ClassifyResilience(const Query& q) {
  Query minimized = Minimize(q);
  std::vector<Query> components = SplitIntoComponents(minimized);
  if (components.size() > 1) {
    return CombineComponents(minimized, components);
  }
  return ClassifyComponent(minimized);
}

}  // namespace rescq
