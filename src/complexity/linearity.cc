#include "complexity/linearity.h"

#include <algorithm>

#include "util/check.h"

namespace rescq {

namespace {

struct LinearSearch {
  const Query& q;
  std::vector<int> order;
  std::vector<bool> placed;
  // last_pos[v]: last prefix index whose atom contains v; -1 if unseen.
  std::vector<int> last_pos;

  bool Recurse() {
    size_t depth = order.size();
    if (depth == static_cast<size_t>(q.num_atoms())) return true;
    for (int a = 0; a < q.num_atoms(); ++a) {
      if (placed[static_cast<size_t>(a)]) continue;
      // Contiguity check: any already-seen variable of `a` must have been
      // seen in the immediately preceding atom.
      bool ok = true;
      for (VarId v : q.atom(a).DistinctVars()) {
        int lp = last_pos[static_cast<size_t>(v)];
        if (lp != -1 && lp != static_cast<int>(depth) - 1) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      std::vector<std::pair<VarId, int>> saved;
      for (VarId v : q.atom(a).DistinctVars()) {
        saved.emplace_back(v, last_pos[static_cast<size_t>(v)]);
        last_pos[static_cast<size_t>(v)] = static_cast<int>(depth);
      }
      placed[static_cast<size_t>(a)] = true;
      order.push_back(a);
      if (Recurse()) return true;
      order.pop_back();
      placed[static_cast<size_t>(a)] = false;
      for (auto& [v, lp] : saved) last_pos[static_cast<size_t>(v)] = lp;
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<int>> FindLinearOrder(const Query& q) {
  LinearSearch search{q,
                      {},
                      std::vector<bool>(static_cast<size_t>(q.num_atoms()), false),
                      std::vector<int>(static_cast<size_t>(q.num_vars()), -1)};
  if (search.Recurse()) return search.order;
  return std::nullopt;
}

bool IsLinear(const Query& q) { return FindLinearOrder(q).has_value(); }

std::vector<std::vector<VarId>> LinearInterfaces(
    const Query& q, const std::vector<int>& order) {
  RESCQ_CHECK_EQ(static_cast<int>(order.size()), q.num_atoms());
  std::vector<std::vector<VarId>> interfaces;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    std::vector<VarId> left = q.atom(order[i]).DistinctVars();
    std::vector<VarId> right = q.atom(order[i + 1]).DistinctVars();
    std::sort(left.begin(), left.end());
    std::sort(right.begin(), right.end());
    std::vector<VarId> shared;
    std::set_intersection(left.begin(), left.end(), right.begin(),
                          right.end(), std::back_inserter(shared));
    interfaces.push_back(std::move(shared));
  }
  return interfaces;
}

}  // namespace rescq
