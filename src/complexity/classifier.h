#ifndef RESCQ_COMPLEXITY_CLASSIFIER_H_
#define RESCQ_COMPLEXITY_CLASSIFIER_H_

#include <string>

#include "complexity/catalog.h"
#include "cq/query.h"

namespace rescq {

/// The verdict of the resilience-complexity decision procedure.
struct Classification {
  Complexity complexity = Complexity::kOutOfScope;
  /// Short machine-friendly tag for the decisive structure, e.g. "triad",
  /// "unary-path", "chain", "bound-permutation", "linear-flow".
  std::string pattern;
  /// Human-readable explanation with the paper reference.
  std::string reason;
  /// q after Chandra–Merlin minimization (Section 4.1).
  Query minimized;
  /// The minimized query after self-join domination normalization
  /// (Definition 16 / Proposition 18).
  Query normalized;
};

/// Decides the complexity of RES(q) following the paper's plan of attack
/// (Section 4.4):
///
///  1. minimize q (Section 4.1) and split into components (Lemmas 14/15);
///  2. normalize domination (Definition 16, Proposition 18);
///  3. triad => NP-complete (Theorem 24);
///  4. endogenous self-join-free and triad-free => PTIME (Theorem 7);
///  5. single-self-join analysis: unary/binary paths (Theorems 27/28),
///     then for two R-atoms the full dichotomy of Theorem 37
///     (chain / bounded permutation / confluence with exogenous path are
///     hard; everything else reduces to network flow), and for three or
///     more R-atoms the Section 8 map: k-chains (Prop 38), the
///     3-confluence criteria (Props 39-41), and the named catalog,
///     returning kOpen for the paper's open problems.
///
/// Queries outside the characterized classes (multiple repeated relations,
/// self-joins of arity > 2) report kOutOfScope unless a general hardness
/// criterion (triad, path) already applies.
Classification ClassifyResilience(const Query& q);

}  // namespace rescq

#endif  // RESCQ_COMPLEXITY_CLASSIFIER_H_
