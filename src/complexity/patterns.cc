#include "complexity/patterns.h"

#include <algorithm>
#include <deque>
#include <map>

#include "cq/hypergraph.h"
#include "util/check.h"

namespace rescq {

std::optional<SelfJoinInfo> GetSingleSelfJoin(const Query& q) {
  std::map<std::string, std::vector<int>> endo_by_relation;
  for (int i : q.EndogenousAtoms()) {
    endo_by_relation[q.atom(i).relation].push_back(i);
  }
  std::optional<SelfJoinInfo> found;
  for (const auto& [rel, atoms] : endo_by_relation) {
    if (atoms.size() < 2) continue;
    if (found.has_value()) return std::nullopt;  // two repeated relations
    found = SelfJoinInfo{rel, atoms};
  }
  return found;
}

bool HasUnaryPath(const Query& q, const SelfJoinInfo& sj) {
  if (q.RelationArity(sj.relation) != 1) return false;
  // Two distinct unary R-atoms: distinct variables (identical atoms are
  // removed by minimization).
  for (size_t i = 0; i < sj.atoms.size(); ++i) {
    for (size_t j = i + 1; j < sj.atoms.size(); ++j) {
      if (q.atom(sj.atoms[i]).vars != q.atom(sj.atoms[j]).vars) return true;
    }
  }
  return false;
}

bool HasBinaryPath(const Query& q, const SelfJoinInfo& sj) {
  if (q.RelationArity(sj.relation) != 2) return false;
  DualHypergraph h(q);
  // All R atoms (endogenous; R is uniformly labeled) are forbidden as
  // intermediate path vertices: "consecutive" means joined R-free.
  for (size_t i = 0; i < sj.atoms.size(); ++i) {
    for (size_t j = i + 1; j < sj.atoms.size(); ++j) {
      int a = sj.atoms[i], b = sj.atoms[j];
      std::vector<VarId> va = q.atom(a).DistinctVars();
      std::vector<VarId> vb = q.atom(b).DistinctVars();
      bool disjoint = true;
      for (VarId u : va) {
        for (VarId v : vb) disjoint = disjoint && (u != v);
      }
      if (!disjoint) continue;
      std::vector<int> other_r;
      for (int c : sj.atoms) {
        if (c != a && c != b) other_r.push_back(c);
      }
      if (h.PathAvoidingAtoms(a, b, other_r)) return true;
    }
  }
  return false;
}

PairPattern ClassifyPair(const Query& q, int a1, int a2) {
  const Atom& p = q.atom(a1);
  const Atom& r = q.atom(a2);
  RESCQ_CHECK_EQ(p.arity(), 2);
  RESCQ_CHECK_EQ(r.arity(), 2);
  if (p.vars == r.vars) return PairPattern::kIdentical;
  bool share = false;
  for (VarId u : p.DistinctVars()) {
    for (VarId v : r.DistinctVars()) share = share || (u == v);
  }
  if (!share) return PairPattern::kDisjoint;
  if (p.HasRepeatedVar() || r.HasRepeatedVar()) return PairPattern::kRep;
  if (p.vars[0] == r.vars[1] && p.vars[1] == r.vars[0]) {
    return PairPattern::kPermutation;
  }
  // Exactly one shared variable now: same position => confluence,
  // different position => chain.
  if (p.vars[0] == r.vars[0] || p.vars[1] == r.vars[1]) {
    return PairPattern::kConfluence;
  }
  return PairPattern::kChain;
}

bool PermutationIsBound(const Query& q, int a1, int a2) {
  VarId x = q.atom(a1).vars[0];
  VarId y = q.atom(a1).vars[1];
  bool bound_x = false;
  bool bound_y = false;
  for (int i : q.EndogenousAtoms()) {
    if (i == a1 || i == a2) continue;
    const Atom& a = q.atom(i);
    if (a.HasVar(x) && !a.HasVar(y)) bound_x = true;
    if (a.HasVar(y) && !a.HasVar(x)) bound_y = true;
  }
  return bound_x && bound_y;
}

bool ConfluenceHasExogenousPath(const Query& q, int a1, int a2) {
  const Atom& p = q.atom(a1);
  const Atom& r = q.atom(a2);
  VarId shared, end_x, end_z;
  if (p.vars[0] == r.vars[0]) {
    shared = p.vars[0];
    end_x = p.vars[1];
    end_z = r.vars[1];
  } else {
    RESCQ_CHECK(p.vars[1] == r.vars[1]);
    shared = p.vars[1];
    end_x = p.vars[0];
    end_z = r.vars[0];
  }
  // BFS over variables via atoms other than the confluence pair, never
  // stepping on the shared variable.
  std::vector<bool> visited(static_cast<size_t>(q.num_vars()), false);
  std::deque<VarId> queue = {end_x};
  visited[static_cast<size_t>(end_x)] = true;
  while (!queue.empty()) {
    VarId v = queue.front();
    queue.pop_front();
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (i == a1 || i == a2) continue;
      const Atom& a = q.atom(i);
      if (!a.HasVar(v)) continue;
      for (VarId w : a.DistinctVars()) {
        if (w == shared || visited[static_cast<size_t>(w)]) continue;
        if (w == end_z) return true;
        visited[static_cast<size_t>(w)] = true;
        queue.push_back(w);
      }
    }
  }
  return false;
}

namespace {

// Checks whether the given atoms, in the given order and orientation,
// form R(x1,x2), R(x2,x3), ..., all variables distinct.
bool IsChainSequence(const Query& q, const std::vector<int>& atoms,
                     bool swapped) {
  std::vector<VarId> seq;
  for (size_t i = 0; i < atoms.size(); ++i) {
    const Atom& a = q.atom(atoms[i]);
    if (a.arity() != 2 || a.HasRepeatedVar()) return false;
    VarId from = swapped ? a.vars[1] : a.vars[0];
    VarId to = swapped ? a.vars[0] : a.vars[1];
    if (i == 0) {
      seq.push_back(from);
    } else if (seq.back() != from) {
      return false;
    }
    seq.push_back(to);
  }
  std::vector<VarId> sorted = seq;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace

bool RAtomsFormChain(const Query& q, const SelfJoinInfo& sj) {
  if (q.RelationArity(sj.relation) != 2) return false;
  std::vector<int> atoms = sj.atoms;
  std::sort(atoms.begin(), atoms.end());
  do {
    if (IsChainSequence(q, atoms, /*swapped=*/false)) return true;
    if (IsChainSequence(q, atoms, /*swapped=*/true)) return true;
  } while (std::next_permutation(atoms.begin(), atoms.end()));
  return false;
}

namespace {

// Tries to see the three atoms as R(x,y), R(z,y), R(z,w) in the given
// orientation: mid = (z,y) shares y (pos 2) with p = (x,y) and z (pos 1)
// with r = (z,w); p and r are variable-disjoint.
std::optional<ThreeConfluence> MatchThreeConf(const Query& q, int p, int mid,
                                              int r, bool swapped) {
  auto col = [&](int atom, int c) {
    const Atom& a = q.atom(atom);
    return swapped ? a.vars[static_cast<size_t>(1 - c)]
                   : a.vars[static_cast<size_t>(c)];
  };
  for (int atom : {p, mid, r}) {
    const Atom& a = q.atom(atom);
    if (a.arity() != 2 || a.HasRepeatedVar()) return std::nullopt;
  }
  VarId z = col(mid, 0), y = col(mid, 1);
  if (col(p, 1) != y || col(r, 0) != z) return std::nullopt;
  VarId x = col(p, 0), w = col(r, 1);
  // All four variables distinct.
  std::vector<VarId> vars = {x, y, z, w};
  std::sort(vars.begin(), vars.end());
  if (std::adjacent_find(vars.begin(), vars.end()) != vars.end()) {
    return std::nullopt;
  }
  return ThreeConfluence{x, w, p, r};
}

}  // namespace

std::optional<ThreeConfluence> FindThreeConfluence(const Query& q,
                                                   const SelfJoinInfo& sj) {
  if (sj.atoms.size() != 3 || q.RelationArity(sj.relation) != 2) {
    return std::nullopt;
  }
  std::vector<int> atoms = sj.atoms;
  std::sort(atoms.begin(), atoms.end());
  do {
    for (bool swapped : {false, true}) {
      std::optional<ThreeConfluence> m =
          MatchThreeConf(q, atoms[0], atoms[1], atoms[2], swapped);
      if (m.has_value()) return m;
    }
  } while (std::next_permutation(atoms.begin(), atoms.end()));
  return std::nullopt;
}

}  // namespace rescq
