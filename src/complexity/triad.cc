#include "complexity/triad.h"

#include "cq/hypergraph.h"

namespace rescq {

std::optional<Triad> FindTriad(const Query& q) {
  std::vector<int> endo = q.EndogenousAtoms();
  if (endo.size() < 3) return std::nullopt;
  DualHypergraph h(q);

  auto vars_of = [&](int atom) { return q.atom(atom).DistinctVars(); };
  auto pair_connected = [&](int a, int b, int avoid) {
    return h.PathAvoiding(a, b, vars_of(avoid));
  };

  for (size_t i = 0; i < endo.size(); ++i) {
    for (size_t j = i + 1; j < endo.size(); ++j) {
      for (size_t k = j + 1; k < endo.size(); ++k) {
        int s0 = endo[i], s1 = endo[j], s2 = endo[k];
        if (pair_connected(s0, s1, s2) && pair_connected(s1, s2, s0) &&
            pair_connected(s0, s2, s1)) {
          return Triad{{s0, s1, s2}};
        }
      }
    }
  }
  return std::nullopt;
}

bool HasTriad(const Query& q) { return FindTriad(q).has_value(); }

bool IsPseudoLinear(const Query& q) { return !HasTriad(q); }

}  // namespace rescq
