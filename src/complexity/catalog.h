#ifndef RESCQ_COMPLEXITY_CATALOG_H_
#define RESCQ_COMPLEXITY_CATALOG_H_

#include <optional>
#include <string>
#include <vector>

#include "cq/query.h"

namespace rescq {

/// Complexity of the resilience decision problem RES(q).
enum class Complexity {
  kPTime,       // solvable in polynomial time
  kNpComplete,  // NP-complete
  kOpen,        // left open by the paper
  kOutOfScope,  // outside the query classes the paper characterizes
};

const char* ComplexityName(Complexity c);

/// One named query from the paper with its published classification.
struct CatalogEntry {
  std::string name;       // e.g. "q_AC3conf"
  std::string text;       // parseable query body
  Complexity expected;    // the paper's verdict
  std::string reference;  // e.g. "Proposition 39"
};

/// Every named query in the paper (Sections 2-8 and the appendix),
/// including the open problems. Used by the classifier for the 3-R-atom
/// cases of Section 8, and by tests/benchmarks as ground truth.
const std::vector<CatalogEntry>& PaperCatalog();

/// Looks up a catalog query by name (aborts if absent).
Query CatalogQuery(const std::string& name);

/// Finds the catalog entry for this name, if any.
std::optional<CatalogEntry> FindCatalogEntry(const std::string& name);

}  // namespace rescq

#endif  // RESCQ_COMPLEXITY_CATALOG_H_
