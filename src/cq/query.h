#ifndef RESCQ_CQ_QUERY_H_
#define RESCQ_CQ_QUERY_H_

#include <string>
#include <vector>

#include "cq/atom.h"

namespace rescq {

/// A Boolean conjunctive query: a bag of atoms over named variables.
///
/// Queries are immutable after construction; "transforms" (removing atoms,
/// relabeling relations exogenous) return new queries. Construction
/// validates that all atoms of one relation agree on arity and on the
/// exogenous flag.
class Query {
 public:
  Query() = default;

  /// Builds a query. Aborts on inconsistent relation arity or
  /// mixed endogenous/exogenous use of one relation (programmer error;
  /// use the parser for untrusted input).
  Query(std::vector<Atom> atoms, std::vector<std::string> var_names);

  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  int num_vars() const { return static_cast<int>(var_names_.size()); }

  const Atom& atom(int i) const { return atoms_[static_cast<size_t>(i)]; }
  const std::vector<Atom>& atoms() const { return atoms_; }

  const std::string& var_name(VarId v) const {
    return var_names_[static_cast<size_t>(v)];
  }
  const std::vector<std::string>& var_names() const { return var_names_; }

  /// Index of the named variable, or -1.
  VarId VarIdOf(const std::string& name) const;

  /// Distinct relation names in order of first occurrence.
  std::vector<std::string> RelationNames() const;

  /// Indices of the atoms using `relation`.
  std::vector<int> AtomsOfRelation(const std::string& relation) const;

  /// Arity of `relation` in this query. Aborts if the relation is absent.
  int RelationArity(const std::string& relation) const;

  bool IsRelationExogenous(const std::string& relation) const;

  /// Indices of endogenous atoms.
  std::vector<int> EndogenousAtoms() const;

  /// Relation names that occur in more than one atom (the self-join
  /// relations).
  std::vector<std::string> RepeatedRelations() const;

  /// True if no relation occurs in two atoms.
  bool IsSelfJoinFree() const { return RepeatedRelations().empty(); }

  /// True if every relation has arity 1 or 2 (the paper's "binary query").
  bool IsBinary() const;

  /// Variables occurring in the given atoms, in ascending VarId order.
  std::vector<VarId> VarsOfAtoms(const std::vector<int>& atom_indices) const;

  /// Returns this query with the atoms whose indices appear in `remove`
  /// deleted, dropping variables that no longer occur anywhere.
  Query WithAtomsRemoved(const std::vector<int>& remove) const;

  /// Returns this query with `relation` relabeled exogenous.
  Query WithRelationExogenous(const std::string& relation) const;

  /// Datalog-style rendering, e.g. "R(x,y), S^x(y,z)".
  std::string ToString() const;

  bool operator==(const Query& other) const {
    return atoms_ == other.atoms_ && var_names_ == other.var_names_;
  }

 private:
  std::vector<Atom> atoms_;
  std::vector<std::string> var_names_;
};

}  // namespace rescq

#endif  // RESCQ_CQ_QUERY_H_
