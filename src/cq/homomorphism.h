#ifndef RESCQ_CQ_HOMOMORPHISM_H_
#define RESCQ_CQ_HOMOMORPHISM_H_

#include <optional>
#include <vector>

#include "cq/query.h"

namespace rescq {

/// Searches for a homomorphism from `from` to `to`: a variable mapping h
/// such that every atom R(v1..vk) of `from` maps to some atom R(h(v1)..
/// h(vk)) of `to`. Exogenous labels are ignored (homomorphisms act on the
/// plain CQ structure). Returns the mapping (indexed by `from` VarId) or
/// nullopt.
std::optional<std::vector<VarId>> FindHomomorphism(const Query& from,
                                                   const Query& to);

/// Query containment q1 ⊆ q2 (answers of q1 always a subset of q2's):
/// holds iff there is a homomorphism from q2 to q1 (Chandra–Merlin).
bool IsContainedIn(const Query& q1, const Query& q2);

/// Query equivalence: containment both ways.
bool AreEquivalent(const Query& q1, const Query& q2);

/// True if the query is minimal: no equivalent query with fewer atoms
/// (Section 4.1).
bool IsMinimal(const Query& q);

/// Computes a minimal equivalent query (the core) by repeatedly removing
/// atoms that admit a retraction. Remaining atoms keep their exogenous
/// labels.
Query Minimize(const Query& q);

/// True if q1 and q2 are isomorphic: a bijective variable renaming maps
/// the atom multiset of q1 onto that of q2, preserving relation names and
/// exogenous labels.
bool AreIsomorphic(const Query& q1, const Query& q2);

/// True if q1 and q2 are isomorphic after optionally (a) renaming
/// relations of q1 via any bijection that preserves arity and exogenous
/// status, and (b) globally swapping the two columns of any binary
/// relations of q1. This is the similarity notion used for catalog
/// matching: the complexity results are invariant under both transforms.
bool AreIsomorphicModuloRelabeling(const Query& q1, const Query& q2);

}  // namespace rescq

#endif  // RESCQ_CQ_HOMOMORPHISM_H_
