#include "cq/components.h"

#include "cq/hypergraph.h"

namespace rescq {

std::vector<Query> SplitIntoComponents(const Query& q) {
  DualHypergraph h(q);
  std::vector<int> comp = h.AtomComponents();
  int num = 0;
  for (int c : comp) num = std::max(num, c + 1);
  std::vector<Query> out;
  for (int c = 0; c < num; ++c) {
    std::vector<int> remove;
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (comp[static_cast<size_t>(i)] != c) remove.push_back(i);
    }
    out.push_back(q.WithAtomsRemoved(remove));
  }
  return out;
}

bool IsConnected(const Query& q) {
  DualHypergraph h(q);
  for (int c : h.AtomComponents()) {
    if (c != 0) return false;
  }
  return true;
}

}  // namespace rescq
