#ifndef RESCQ_CQ_PARSER_H_
#define RESCQ_CQ_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "cq/query.h"

namespace rescq {

/// Result of parsing a query string.
struct ParseResult {
  bool ok = false;
  Query query;
  std::string error;
};

/// Parses a Boolean conjunctive query in Datalog-ish syntax:
///
///   "q :- R(x,y), R(y,z), A(x)"          (head optional)
///   "R(x,y), S^x(y,z)"                   (^x marks exogenous relations)
///
/// Relation names start with an upper-case letter; variable names with a
/// lower-case letter. Whitespace is insignificant. All atoms of one
/// relation must agree on arity; the parser makes the exogenous flag
/// uniform per relation (an `^x` on any atom marks the whole relation).
ParseResult ParseQuery(std::string_view text);

/// Convenience wrapper: aborts on parse failure. For literals in tests,
/// benchmarks, and the query catalog.
Query MustParseQuery(std::string_view text);

}  // namespace rescq

#endif  // RESCQ_CQ_PARSER_H_
