#include "cq/query.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

Query::Query(std::vector<Atom> atoms, std::vector<std::string> var_names)
    : atoms_(std::move(atoms)), var_names_(std::move(var_names)) {
  std::map<std::string, int> arity;
  std::map<std::string, bool> exo;
  for (const Atom& a : atoms_) {
    RESCQ_CHECK_GT(a.arity(), 0);
    for (VarId v : a.vars) {
      RESCQ_CHECK(v >= 0 && v < num_vars());
    }
    auto it = arity.find(a.relation);
    if (it == arity.end()) {
      arity[a.relation] = a.arity();
      exo[a.relation] = a.exogenous;
    } else {
      RESCQ_CHECK_MSG(it->second == a.arity(),
                      "inconsistent relation arity");
      RESCQ_CHECK_MSG(exo[a.relation] == a.exogenous,
                      "relation must be uniformly endogenous or exogenous");
    }
  }
}

VarId Query::VarIdOf(const std::string& name) const {
  for (int v = 0; v < num_vars(); ++v) {
    if (var_names_[static_cast<size_t>(v)] == name) return v;
  }
  return -1;
}

std::vector<std::string> Query::RelationNames() const {
  std::vector<std::string> out;
  for (const Atom& a : atoms_) {
    if (std::find(out.begin(), out.end(), a.relation) == out.end()) {
      out.push_back(a.relation);
    }
  }
  return out;
}

std::vector<int> Query::AtomsOfRelation(const std::string& relation) const {
  std::vector<int> out;
  for (int i = 0; i < num_atoms(); ++i) {
    if (atoms_[static_cast<size_t>(i)].relation == relation) out.push_back(i);
  }
  return out;
}

int Query::RelationArity(const std::string& relation) const {
  for (const Atom& a : atoms_) {
    if (a.relation == relation) return a.arity();
  }
  RESCQ_CHECK_MSG(false, "relation not in query");
  return -1;
}

bool Query::IsRelationExogenous(const std::string& relation) const {
  for (const Atom& a : atoms_) {
    if (a.relation == relation) return a.exogenous;
  }
  return false;
}

std::vector<int> Query::EndogenousAtoms() const {
  std::vector<int> out;
  for (int i = 0; i < num_atoms(); ++i) {
    if (!atoms_[static_cast<size_t>(i)].exogenous) out.push_back(i);
  }
  return out;
}

std::vector<std::string> Query::RepeatedRelations() const {
  std::vector<std::string> out;
  for (const std::string& r : RelationNames()) {
    if (AtomsOfRelation(r).size() > 1) out.push_back(r);
  }
  return out;
}

bool Query::IsBinary() const {
  for (const Atom& a : atoms_) {
    if (a.arity() > 2) return false;
  }
  return true;
}

std::vector<VarId> Query::VarsOfAtoms(
    const std::vector<int>& atom_indices) const {
  std::vector<bool> seen(static_cast<size_t>(num_vars()), false);
  for (int i : atom_indices) {
    for (VarId v : atoms_[static_cast<size_t>(i)].vars) {
      seen[static_cast<size_t>(v)] = true;
    }
  }
  std::vector<VarId> out;
  for (int v = 0; v < num_vars(); ++v) {
    if (seen[static_cast<size_t>(v)]) out.push_back(v);
  }
  return out;
}

Query Query::WithAtomsRemoved(const std::vector<int>& remove) const {
  std::vector<bool> drop(static_cast<size_t>(num_atoms()), false);
  for (int i : remove) drop[static_cast<size_t>(i)] = true;
  std::vector<Atom> kept;
  for (int i = 0; i < num_atoms(); ++i) {
    if (!drop[static_cast<size_t>(i)]) kept.push_back(atoms_[static_cast<size_t>(i)]);
  }
  // Re-index variables to drop those no longer used.
  std::vector<int> remap(static_cast<size_t>(num_vars()), -1);
  std::vector<std::string> names;
  for (Atom& a : kept) {
    for (VarId& v : a.vars) {
      if (remap[static_cast<size_t>(v)] == -1) {
        remap[static_cast<size_t>(v)] = static_cast<int>(names.size());
        names.push_back(var_names_[static_cast<size_t>(v)]);
      }
      v = remap[static_cast<size_t>(v)];
    }
  }
  return Query(std::move(kept), std::move(names));
}

Query Query::WithRelationExogenous(const std::string& relation) const {
  std::vector<Atom> atoms = atoms_;
  for (Atom& a : atoms) {
    if (a.relation == relation) a.exogenous = true;
  }
  return Query(std::move(atoms), var_names_);
}

std::string Query::ToString() const {
  std::vector<std::string> parts;
  for (const Atom& a : atoms_) {
    std::string s = a.relation;
    if (a.exogenous) s += "^x";
    s += "(";
    for (size_t i = 0; i < a.vars.size(); ++i) {
      if (i > 0) s += ",";
      s += var_names_[static_cast<size_t>(a.vars[i])];
    }
    s += ")";
    parts.push_back(std::move(s));
  }
  return Join(parts, ", ");
}

}  // namespace rescq
