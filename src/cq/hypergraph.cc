#include "cq/hypergraph.h"

#include <algorithm>
#include <deque>

#include "util/disjoint_set.h"

namespace rescq {

DualHypergraph::DualHypergraph(const Query& q)
    : num_atoms_(q.num_atoms()), num_vars_(q.num_vars()) {
  edges_.resize(static_cast<size_t>(num_vars_));
  atom_vars_.resize(static_cast<size_t>(num_atoms_));
  for (int i = 0; i < num_atoms_; ++i) {
    atom_vars_[static_cast<size_t>(i)] = q.atom(i).DistinctVars();
    for (VarId v : atom_vars_[static_cast<size_t>(i)]) {
      edges_[static_cast<size_t>(v)].push_back(i);
    }
  }
}

bool DualHypergraph::PathAvoiding(
    int from, int to, const std::vector<VarId>& forbidden_vars) const {
  if (from == to) return true;
  std::vector<bool> forbidden(static_cast<size_t>(num_vars_), false);
  for (VarId v : forbidden_vars) forbidden[static_cast<size_t>(v)] = true;
  std::vector<bool> visited(static_cast<size_t>(num_atoms_), false);
  std::deque<int> queue = {from};
  visited[static_cast<size_t>(from)] = true;
  while (!queue.empty()) {
    int g = queue.front();
    queue.pop_front();
    for (VarId v : atom_vars_[static_cast<size_t>(g)]) {
      if (forbidden[static_cast<size_t>(v)]) continue;
      for (int h : edges_[static_cast<size_t>(v)]) {
        if (visited[static_cast<size_t>(h)]) continue;
        if (h == to) return true;
        visited[static_cast<size_t>(h)] = true;
        queue.push_back(h);
      }
    }
  }
  return false;
}

bool DualHypergraph::PathAvoidingAtoms(
    int from, int to, const std::vector<int>& forbidden_atoms) const {
  if (from == to) return true;
  std::vector<bool> blocked(static_cast<size_t>(num_atoms_), false);
  for (int a : forbidden_atoms) blocked[static_cast<size_t>(a)] = true;
  blocked[static_cast<size_t>(from)] = false;  // endpoints always allowed
  blocked[static_cast<size_t>(to)] = false;
  std::vector<bool> visited(static_cast<size_t>(num_atoms_), false);
  std::deque<int> queue = {from};
  visited[static_cast<size_t>(from)] = true;
  while (!queue.empty()) {
    int g = queue.front();
    queue.pop_front();
    for (VarId v : atom_vars_[static_cast<size_t>(g)]) {
      for (int h : edges_[static_cast<size_t>(v)]) {
        if (visited[static_cast<size_t>(h)] || blocked[static_cast<size_t>(h)]) {
          continue;
        }
        if (h == to) return true;
        visited[static_cast<size_t>(h)] = true;
        queue.push_back(h);
      }
    }
  }
  return false;
}

std::vector<int> DualHypergraph::AtomComponents() const {
  DisjointSet ds(num_atoms_);
  for (const std::vector<int>& edge : edges_) {
    for (size_t i = 1; i < edge.size(); ++i) ds.Union(edge[0], edge[i]);
  }
  std::vector<int> comp(static_cast<size_t>(num_atoms_), -1);
  int next = 0;
  for (int i = 0; i < num_atoms_; ++i) {
    int root = ds.Find(i);
    if (comp[static_cast<size_t>(root)] == -1) {
      comp[static_cast<size_t>(root)] = next++;
    }
    comp[static_cast<size_t>(i)] = comp[static_cast<size_t>(root)];
  }
  return comp;
}

}  // namespace rescq
