#include "cq/domination.h"

#include <algorithm>

#include "util/check.h"

namespace rescq {

bool AtomDominatesSjFree(const Query& q, int a_idx, int b_idx) {
  const Atom& a = q.atom(a_idx);
  const Atom& b = q.atom(b_idx);
  if (a.exogenous || b.exogenous) return false;
  std::vector<VarId> va = a.DistinctVars();
  std::vector<VarId> vb = b.DistinctVars();
  if (va.size() >= vb.size()) return false;  // must be a proper subset
  for (VarId v : va) {
    if (std::find(vb.begin(), vb.end(), v) == vb.end()) return false;
  }
  return true;
}

namespace {

// Enumerates all functions f : [arity_a] -> [arity_b] as digit vectors.
bool NextFunction(std::vector<int>& f, int base) {
  for (size_t i = 0; i < f.size(); ++i) {
    if (++f[i] < base) return true;
    f[i] = 0;
  }
  return false;
}

bool MatchesUnderF(const Query& q, const std::vector<int>& a_atoms,
                   const std::vector<int>& b_atoms,
                   const std::vector<int>& f) {
  for (int gb : b_atoms) {
    const Atom& b_atom = q.atom(gb);
    bool found = false;
    for (int ha : a_atoms) {
      const Atom& a_atom = q.atom(ha);
      bool all = true;
      for (size_t i = 0; i < f.size(); ++i) {
        if (a_atom.vars[i] !=
            b_atom.vars[static_cast<size_t>(f[i])]) {
          all = false;
          break;
        }
      }
      if (all) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

}  // namespace

bool RelationDominates(const Query& q, const std::string& a,
                       const std::string& b) {
  if (a == b) return false;
  if (q.IsRelationExogenous(a) || q.IsRelationExogenous(b)) return false;
  std::vector<int> a_atoms = q.AtomsOfRelation(a);
  std::vector<int> b_atoms = q.AtomsOfRelation(b);
  if (a_atoms.empty() || b_atoms.empty()) return false;
  int arity_a = q.RelationArity(a);
  int arity_b = q.RelationArity(b);
  std::vector<int> f(static_cast<size_t>(arity_a), 0);
  do {
    if (MatchesUnderF(q, a_atoms, b_atoms, f)) return true;
  } while (NextFunction(f, arity_b));
  return false;
}

std::vector<std::string> DominatedRelations(const Query& q) {
  std::vector<std::string> out;
  std::vector<std::string> rels = q.RelationNames();
  for (const std::string& b : rels) {
    for (const std::string& a : rels) {
      if (RelationDominates(q, a, b)) {
        out.push_back(b);
        break;
      }
    }
  }
  return out;
}

Query NormalizeDomination(const Query& q) {
  Query cur = q;
  while (true) {
    // Label one dominated relation exogenous per round, in name order, so
    // mutual domination (A ≡ B structurally) resolves deterministically.
    std::vector<std::string> dominated = DominatedRelations(cur);
    if (dominated.empty()) return cur;
    std::sort(dominated.begin(), dominated.end());
    cur = cur.WithRelationExogenous(dominated.front());
  }
}

}  // namespace rescq
