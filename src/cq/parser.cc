#include "cq/parser.h"

#include <cctype>
#include <map>

#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

namespace {

struct Lexer {
  std::string_view text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }

  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos < text.size() ? text[pos] : '\0';
  }

  /// Reads an identifier: [A-Za-z_][A-Za-z0-9_']*.
  std::string Identifier() {
    SkipSpace();
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_' || text[pos] == '\'')) {
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }
};

}  // namespace

ParseResult ParseQuery(std::string_view text) {
  ParseResult result;
  // Strip an optional "name :-" head.
  size_t head = text.find(":-");
  std::string_view body = head == std::string_view::npos
                              ? text
                              : text.substr(head + 2);
  Lexer lex{body};

  std::vector<Atom> atoms;
  std::vector<std::string> var_names;
  std::map<std::string, VarId> var_ids;
  std::map<std::string, int> arities;

  while (!lex.AtEnd()) {
    std::string rel = lex.Identifier();
    if (rel.empty()) {
      result.error = StrFormat("expected relation name at offset %zu", lex.pos);
      return result;
    }
    if (!std::isupper(static_cast<unsigned char>(rel[0]))) {
      result.error =
          StrFormat("relation '%s' must start upper-case", rel.c_str());
      return result;
    }
    bool exo = false;
    if (lex.Peek() == '^') {
      lex.Consume('^');
      std::string marker = lex.Identifier();
      if (marker != "x") {
        result.error = StrFormat("unknown atom marker '^%s'", marker.c_str());
        return result;
      }
      exo = true;
    }
    if (!lex.Consume('(')) {
      result.error = StrFormat("expected '(' after '%s'", rel.c_str());
      return result;
    }
    Atom atom;
    atom.relation = rel;
    atom.exogenous = exo;
    while (true) {
      std::string var = lex.Identifier();
      if (var.empty()) {
        result.error = StrFormat("expected variable in atom '%s'", rel.c_str());
        return result;
      }
      if (!std::islower(static_cast<unsigned char>(var[0]))) {
        result.error =
            StrFormat("variable '%s' must start lower-case", var.c_str());
        return result;
      }
      auto it = var_ids.find(var);
      VarId id;
      if (it == var_ids.end()) {
        id = static_cast<VarId>(var_names.size());
        var_names.push_back(var);
        var_ids[var] = id;
      } else {
        id = it->second;
      }
      atom.vars.push_back(id);
      if (lex.Consume(',')) continue;
      if (lex.Consume(')')) break;
      result.error = StrFormat("expected ',' or ')' in atom '%s'", rel.c_str());
      return result;
    }
    auto ar = arities.find(rel);
    if (ar == arities.end()) {
      arities[rel] = atom.arity();
    } else if (ar->second != atom.arity()) {
      result.error =
          StrFormat("relation '%s' used with inconsistent arity", rel.c_str());
      return result;
    }
    atoms.push_back(std::move(atom));
    if (!lex.Consume(',')) break;
  }
  if (!lex.AtEnd()) {
    result.error = StrFormat("trailing input at offset %zu", lex.pos);
    return result;
  }
  if (atoms.empty()) {
    result.error = "query has no atoms";
    return result;
  }
  // Make the exogenous flag uniform per relation: any ^x marks the relation.
  std::map<std::string, bool> exo;
  for (const Atom& a : atoms) exo[a.relation] = exo[a.relation] || a.exogenous;
  for (Atom& a : atoms) a.exogenous = exo[a.relation];

  result.ok = true;
  result.query = Query(std::move(atoms), std::move(var_names));
  return result;
}

Query MustParseQuery(std::string_view text) {
  ParseResult r = ParseQuery(text);
  RESCQ_CHECK_MSG(r.ok, r.error.c_str());
  return r.query;
}

}  // namespace rescq
