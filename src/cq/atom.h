#ifndef RESCQ_CQ_ATOM_H_
#define RESCQ_CQ_ATOM_H_

#include <string>
#include <vector>

namespace rescq {

/// Index of a variable within a Query (position in the query's variable
/// table). Variables are existentially quantified: all queries in this
/// library are Boolean conjunctive queries.
using VarId = int;

/// One atom (subgoal) of a conjunctive query: a relation symbol applied to
/// a tuple of variables. Variables may repeat within an atom (the paper's
/// "REP" queries, e.g. R(x,x)). `exogenous` marks atoms whose tuples cannot
/// be deleted (written R^x in the paper); the flag is a property of the
/// relation, so all atoms of one relation in a query agree on it.
struct Atom {
  std::string relation;
  std::vector<VarId> vars;
  bool exogenous = false;

  int arity() const { return static_cast<int>(vars.size()); }

  bool HasVar(VarId v) const;

  /// True if some variable occurs at two positions (e.g. R(x,x)).
  bool HasRepeatedVar() const;

  /// Distinct variables, in order of first occurrence.
  std::vector<VarId> DistinctVars() const;

  bool operator==(const Atom& other) const {
    return relation == other.relation && vars == other.vars &&
           exogenous == other.exogenous;
  }
};

}  // namespace rescq

#endif  // RESCQ_CQ_ATOM_H_
