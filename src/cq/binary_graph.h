#ifndef RESCQ_CQ_BINARY_GRAPH_H_
#define RESCQ_CQ_BINARY_GRAPH_H_

#include <string>
#include <vector>

#include "cq/query.h"

namespace rescq {

/// One labeled edge of a binary graph (Definition 8): a binary atom
/// A(x,y) yields the directed edge x -> y labeled A; a unary atom A(x)
/// yields the loop x -> x labeled A.
struct BinaryEdge {
  VarId from;
  VarId to;
  std::string label;
  bool exogenous;
  bool unary;  // loop produced by a unary atom
};

/// The binary graph of a binary conjunctive query (Definition 8):
/// vertices are variables, labeled edges are atoms. This representation
/// captures variable *positions*, which the dual hypergraph does not.
class BinaryGraph {
 public:
  /// Requires q.IsBinary().
  explicit BinaryGraph(const Query& q);

  int num_vars() const { return num_vars_; }
  const std::vector<BinaryEdge>& edges() const { return edges_; }

  /// Out-edges / in-edges incident to variable v (edge indices).
  const std::vector<int>& OutEdges(VarId v) const {
    return out_[static_cast<size_t>(v)];
  }
  const std::vector<int>& InEdges(VarId v) const {
    return in_[static_cast<size_t>(v)];
  }

  /// GraphViz DOT rendering (solid = endogenous, dashed = exogenous).
  std::string ToDot(const Query& q) const;

 private:
  int num_vars_;
  std::vector<BinaryEdge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

}  // namespace rescq

#endif  // RESCQ_CQ_BINARY_GRAPH_H_
