#ifndef RESCQ_CQ_HYPERGRAPH_H_
#define RESCQ_CQ_HYPERGRAPH_H_

#include <vector>

#include "cq/query.h"

namespace rescq {

/// The dual hypergraph H(q) of a conjunctive query (Section 2 of the
/// paper): vertices are the atoms of q, and each variable x determines the
/// hyperedge { atoms containing x }. Paths alternate atoms and variables;
/// a step from atom g to atom h uses some shared variable.
class DualHypergraph {
 public:
  explicit DualHypergraph(const Query& q);

  int num_atoms() const { return num_atoms_; }

  /// Atoms containing variable v.
  const std::vector<int>& Hyperedge(VarId v) const {
    return edges_[static_cast<size_t>(v)];
  }

  /// True if a path exists from atom `from` to atom `to` whose connecting
  /// variables all avoid `forbidden_vars` (the triad path condition).
  /// `from == to` trivially holds.
  bool PathAvoiding(int from, int to,
                    const std::vector<VarId>& forbidden_vars) const;

  /// True if a path exists from atom `from` to atom `to` such that no
  /// *intermediate* atom on the path belongs to `forbidden_atoms`
  /// (endpoints are allowed). Used for "consecutive" self-join atoms
  /// (Theorem 28): two R-atoms are consecutive if they are joined by an
  /// R-free path.
  bool PathAvoidingAtoms(int from, int to,
                         const std::vector<int>& forbidden_atoms) const;

  /// Connected components of the atom set under shared variables;
  /// entry i is the component index of atom i.
  std::vector<int> AtomComponents() const;

 private:
  int num_atoms_;
  int num_vars_;
  std::vector<std::vector<int>> edges_;       // per variable: atoms
  std::vector<std::vector<VarId>> atom_vars_;  // per atom: distinct vars
};

}  // namespace rescq

#endif  // RESCQ_CQ_HYPERGRAPH_H_
