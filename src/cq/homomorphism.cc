#include "cq/homomorphism.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace rescq {

namespace {

// Backtracking homomorphism search. `h` maps `from` variables to `to`
// variables (-1 = unassigned). If `injective`, distinct variables must map
// to distinct variables. If `used` is non-null, each `from` atom must map
// to a distinct `to` atom and exogenous labels must match (isomorphism
// mode).
bool MatchAtoms(const Query& from, const Query& to, size_t atom_idx,
                std::vector<VarId>& h, bool injective,
                std::vector<bool>* used) {
  if (atom_idx == static_cast<size_t>(from.num_atoms())) return true;
  const Atom& a = from.atom(static_cast<int>(atom_idx));
  for (int j = 0; j < to.num_atoms(); ++j) {
    const Atom& b = to.atom(j);
    if (b.relation != a.relation || b.arity() != a.arity()) continue;
    if (used != nullptr) {
      if ((*used)[static_cast<size_t>(j)]) continue;
      if (b.exogenous != a.exogenous) continue;
    }
    // Try to unify a -> b.
    std::vector<std::pair<VarId, VarId>> bound;  // (from var, to var) set here
    bool ok = true;
    for (int p = 0; p < a.arity() && ok; ++p) {
      VarId u = a.vars[static_cast<size_t>(p)];
      VarId v = b.vars[static_cast<size_t>(p)];
      if (h[static_cast<size_t>(u)] == -1) {
        if (injective) {
          for (VarId w : h) {
            if (w == v) {
              ok = false;
              break;
            }
          }
        }
        if (ok) {
          h[static_cast<size_t>(u)] = v;
          bound.emplace_back(u, v);
        }
      } else if (h[static_cast<size_t>(u)] != v) {
        ok = false;
      }
    }
    if (ok) {
      if (used != nullptr) (*used)[static_cast<size_t>(j)] = true;
      if (MatchAtoms(from, to, atom_idx + 1, h, injective, used)) return true;
      if (used != nullptr) (*used)[static_cast<size_t>(j)] = false;
    }
    for (const auto& [u, v] : bound) {
      (void)v;
      h[static_cast<size_t>(u)] = -1;
    }
  }
  return false;
}

}  // namespace

std::optional<std::vector<VarId>> FindHomomorphism(const Query& from,
                                                   const Query& to) {
  std::vector<VarId> h(static_cast<size_t>(from.num_vars()), -1);
  if (MatchAtoms(from, to, 0, h, /*injective=*/false, /*used=*/nullptr)) {
    return h;
  }
  return std::nullopt;
}

bool IsContainedIn(const Query& q1, const Query& q2) {
  return FindHomomorphism(q2, q1).has_value();
}

bool AreEquivalent(const Query& q1, const Query& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

bool IsMinimal(const Query& q) {
  // Removing one atom at a time suffices: a homomorphism into a smaller
  // subquery restricts to a homomorphism into any single-atom removal.
  for (int i = 0; i < q.num_atoms(); ++i) {
    Query smaller = q.WithAtomsRemoved({i});
    if (FindHomomorphism(q, smaller).has_value()) return false;
  }
  return true;
}

Query Minimize(const Query& q) {
  Query cur = q;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < cur.num_atoms(); ++i) {
      Query smaller = cur.WithAtomsRemoved({i});
      if (FindHomomorphism(cur, smaller).has_value()) {
        cur = smaller;
        changed = true;
        break;
      }
    }
  }
  return cur;
}

bool AreIsomorphic(const Query& q1, const Query& q2) {
  if (q1.num_atoms() != q2.num_atoms() || q1.num_vars() != q2.num_vars()) {
    return false;
  }
  std::vector<VarId> h(static_cast<size_t>(q1.num_vars()), -1);
  std::vector<bool> used(static_cast<size_t>(q2.num_atoms()), false);
  return MatchAtoms(q1, q2, 0, h, /*injective=*/true, &used);
}

namespace {

// Signature used to group relations that may be matched to one another.
struct RelSignature {
  int arity;
  bool exogenous;
  int atom_count;
  bool operator<(const RelSignature& o) const {
    return std::tie(arity, exogenous, atom_count) <
           std::tie(o.arity, o.exogenous, o.atom_count);
  }
  bool operator==(const RelSignature& o) const {
    return arity == o.arity && exogenous == o.exogenous &&
           atom_count == o.atom_count;
  }
};

RelSignature SignatureOf(const Query& q, const std::string& rel) {
  return RelSignature{q.RelationArity(rel), q.IsRelationExogenous(rel),
                      static_cast<int>(q.AtomsOfRelation(rel).size())};
}

// Applies a relation renaming and a per-relation column swap to q1.
Query Transform(const Query& q1,
                const std::map<std::string, std::string>& rename,
                const std::vector<std::string>& swapped) {
  std::vector<Atom> atoms;
  for (const Atom& a : q1.atoms()) {
    Atom b = a;
    if (a.arity() == 2 &&
        std::find(swapped.begin(), swapped.end(), a.relation) !=
            swapped.end()) {
      std::swap(b.vars[0], b.vars[1]);
    }
    b.relation = rename.at(a.relation);
    atoms.push_back(std::move(b));
  }
  return Query(std::move(atoms), q1.var_names());
}

bool TryRelationMatchings(const Query& q1, const Query& q2,
                          const std::vector<std::string>& rels1,
                          size_t idx, std::map<std::string, std::string>& rename,
                          std::vector<bool>& taken) {
  if (idx == rels1.size()) {
    // Enumerate column swaps over the binary relations of q1.
    std::vector<std::string> binary;
    for (const std::string& r : rels1) {
      if (q1.RelationArity(r) == 2) binary.push_back(r);
    }
    RESCQ_CHECK_LE(binary.size(), 20u);
    uint32_t end = 1u << binary.size();
    for (uint32_t mask = 0; mask < end; ++mask) {
      std::vector<std::string> swapped;
      for (size_t b = 0; b < binary.size(); ++b) {
        if (mask & (1u << b)) swapped.push_back(binary[b]);
      }
      if (AreIsomorphic(Transform(q1, rename, swapped), q2)) return true;
    }
    return false;
  }
  const std::string& r1 = rels1[idx];
  RelSignature sig = SignatureOf(q1, r1);
  std::vector<std::string> rels2 = q2.RelationNames();
  for (size_t j = 0; j < rels2.size(); ++j) {
    if (taken[j]) continue;
    if (!(SignatureOf(q2, rels2[j]) == sig)) continue;
    taken[j] = true;
    rename[r1] = rels2[j];
    if (TryRelationMatchings(q1, q2, rels1, idx + 1, rename, taken)) {
      return true;
    }
    taken[j] = false;
    rename.erase(r1);
  }
  return false;
}

}  // namespace

bool AreIsomorphicModuloRelabeling(const Query& q1, const Query& q2) {
  if (q1.num_atoms() != q2.num_atoms() || q1.num_vars() != q2.num_vars()) {
    return false;
  }
  std::vector<std::string> rels1 = q1.RelationNames();
  std::vector<std::string> rels2 = q2.RelationNames();
  if (rels1.size() != rels2.size()) return false;
  std::map<std::string, std::string> rename;
  std::vector<bool> taken(rels2.size(), false);
  return TryRelationMatchings(q1, q2, rels1, 0, rename, taken);
}

}  // namespace rescq
