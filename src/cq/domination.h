#ifndef RESCQ_CQ_DOMINATION_H_
#define RESCQ_CQ_DOMINATION_H_

#include <string>
#include <vector>

#include "cq/query.h"

namespace rescq {

/// Classic sj-free domination (Definition 3): endogenous atom A dominates
/// endogenous atom B if var(A) is a proper subset of var(B). Only
/// meaningful for self-join-free queries (Section 3.2 shows it fails with
/// self-joins).
bool AtomDominatesSjFree(const Query& q, int a_idx, int b_idx);

/// Self-join domination (Definition 16): endogenous relation A dominates
/// endogenous relation B (A != B) if some position map
/// f : [arity(A)] -> [arity(B)] is such that every B-atom g has a matching
/// A-atom h with pos_h(i) = pos_g(f(i)) for all i. Then every B tuple in a
/// witness joins with a fixed A tuple, so B can be labeled exogenous
/// (Proposition 18). Coincides with var(A) ⊆ var(B) when B occurs once.
bool RelationDominates(const Query& q, const std::string& a,
                       const std::string& b);

/// Relations of q that are dominated by some other endogenous relation
/// under Definition 16.
std::vector<std::string> DominatedRelations(const Query& q);

/// The paper's normal form: repeatedly labels dominated relations
/// exogenous until a fixpoint (making B exogenous removes it from the set
/// of candidate dominators). RES(q) ≡ RES(NormalizeDomination(q))
/// (Propositions 4 and 18).
Query NormalizeDomination(const Query& q);

}  // namespace rescq

#endif  // RESCQ_CQ_DOMINATION_H_
