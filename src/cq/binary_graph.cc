#include "cq/binary_graph.h"

#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

BinaryGraph::BinaryGraph(const Query& q) : num_vars_(q.num_vars()) {
  RESCQ_CHECK_MSG(q.IsBinary(), "binary graph requires a binary query");
  out_.resize(static_cast<size_t>(num_vars_));
  in_.resize(static_cast<size_t>(num_vars_));
  for (const Atom& a : q.atoms()) {
    BinaryEdge e;
    e.label = a.relation;
    e.exogenous = a.exogenous;
    if (a.arity() == 1) {
      e.from = a.vars[0];
      e.to = a.vars[0];
      e.unary = true;
    } else {
      e.from = a.vars[0];
      e.to = a.vars[1];
      e.unary = false;
    }
    int idx = static_cast<int>(edges_.size());
    edges_.push_back(e);
    out_[static_cast<size_t>(e.from)].push_back(idx);
    in_[static_cast<size_t>(e.to)].push_back(idx);
  }
}

std::string BinaryGraph::ToDot(const Query& q) const {
  std::string dot = "digraph binary_graph {\n";
  for (int v = 0; v < num_vars_; ++v) {
    dot += StrFormat("  %s;\n", q.var_name(v).c_str());
  }
  for (const BinaryEdge& e : edges_) {
    dot += StrFormat("  %s -> %s [label=\"%s\"%s%s];\n",
                     q.var_name(e.from).c_str(), q.var_name(e.to).c_str(),
                     e.label.c_str(), e.exogenous ? ", style=dashed" : "",
                     e.unary ? ", dir=none" : "");
  }
  dot += "}\n";
  return dot;
}

}  // namespace rescq
