#ifndef RESCQ_CQ_COMPONENTS_H_
#define RESCQ_CQ_COMPONENTS_H_

#include <vector>

#include "cq/query.h"

namespace rescq {

/// Splits a query into its connected components (Section 4.2): maximal
/// subsets of atoms connected via shared existential variables. The
/// resilience of a disconnected query is the minimum of its components'
/// resiliences (Lemma 14); its complexity is that of its hardest
/// component (Lemma 15).
std::vector<Query> SplitIntoComponents(const Query& q);

/// True if the query has a single connected component.
bool IsConnected(const Query& q);

}  // namespace rescq

#endif  // RESCQ_CQ_COMPONENTS_H_
