#include "cq/atom.h"

#include <algorithm>

namespace rescq {

bool Atom::HasVar(VarId v) const {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

bool Atom::HasRepeatedVar() const {
  for (size_t i = 0; i < vars.size(); ++i) {
    for (size_t j = i + 1; j < vars.size(); ++j) {
      if (vars[i] == vars[j]) return true;
    }
  }
  return false;
}

std::vector<VarId> Atom::DistinctVars() const {
  std::vector<VarId> out;
  for (VarId v : vars) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

}  // namespace rescq
