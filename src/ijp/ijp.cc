#include "ijp/ijp.h"

#include <algorithm>
#include <set>

#include "db/witness.h"
#include "resilience/exact_solver.h"
#include "util/check.h"
#include "util/combinatorics.h"
#include "util/string_util.h"

namespace rescq {

namespace {

std::set<Value> ConstantSet(const Database& db, TupleId t) {
  const std::vector<Value>& row = db.Row(t);
  return std::set<Value>(row.begin(), row.end());
}

bool ProperSubset(const std::set<Value>& a, const std::set<Value>& b) {
  return a.size() < b.size() &&
         std::includes(b.begin(), b.end(), a.begin(), a.end());
}

// Resilience after deactivating `removed` (restores activity).
int ResilienceWithout(const Query& q, Database& db,
                      const std::vector<TupleId>& removed, bool* unbreakable) {
  for (TupleId t : removed) db.SetActive(t, false);
  ResilienceResult r = ComputeResilienceExact(q, db);
  for (TupleId t : removed) db.SetActive(t, true);
  *unbreakable = r.unbreakable;
  return r.resilience;
}

}  // namespace

IjpCheckResult CheckIjp(const Query& q, Database& db, TupleId endpoint_a,
                        TupleId endpoint_b) {
  IjpCheckResult out;

  // Condition 1: same relation, incomparable constant sets.
  if (endpoint_a == endpoint_b ||
      endpoint_a.relation != endpoint_b.relation || !db.IsActive(endpoint_a) ||
      !db.IsActive(endpoint_b)) {
    out.failed_condition = 1;
    out.explanation = "endpoints must be two distinct active tuples of one "
                      "relation";
    return out;
  }
  const std::string& rel_name = db.relation_name(endpoint_a.relation);
  if (q.AtomsOfRelation(rel_name).empty() ||
      q.IsRelationExogenous(rel_name)) {
    out.failed_condition = 1;
    out.explanation = "endpoint relation must be endogenous in the query";
    return out;
  }
  std::set<Value> set_a = ConstantSet(db, endpoint_a);
  std::set<Value> set_b = ConstantSet(db, endpoint_b);
  if (std::includes(set_a.begin(), set_a.end(), set_b.begin(), set_b.end()) ||
      std::includes(set_b.begin(), set_b.end(), set_a.begin(), set_a.end())) {
    out.failed_condition = 1;
    out.explanation = "endpoint constant sets are comparable (a ⊆ b or "
                      "b ⊆ a)";
    return out;
  }

  // Condition 2: each endpoint in exactly one witness; those witnesses use
  // exactly m distinct tuples.
  std::vector<Witness> witnesses = EnumerateWitnesses(q, db, kNoWitnessLimit);
  int count_a = 0, count_b = 0;
  const Witness* wa = nullptr;
  const Witness* wb = nullptr;
  for (const Witness& w : witnesses) {
    bool has_a = false, has_b = false;
    for (TupleId t : w.atom_tuples) {
      has_a = has_a || t == endpoint_a;
      has_b = has_b || t == endpoint_b;
    }
    if (has_a) {
      ++count_a;
      wa = &w;
    }
    if (has_b) {
      ++count_b;
      wb = &w;
    }
  }
  if (count_a != 1 || count_b != 1) {
    out.failed_condition = 2;
    out.explanation = StrFormat(
        "endpoints must participate in exactly one witness each (got %d "
        "and %d)",
        count_a, count_b);
    return out;
  }
  for (const Witness* w : {wa, wb}) {
    std::set<TupleId> distinct(w->atom_tuples.begin(), w->atom_tuples.end());
    if (static_cast<int>(distinct.size()) != q.num_atoms()) {
      out.failed_condition = 2;
      out.explanation = StrFormat(
          "endpoint witness uses %d distinct tuples; need m = %d",
          static_cast<int>(distinct.size()), q.num_atoms());
      return out;
    }
  }

  // Condition 3: no endogenous tuple with constants a proper subset of an
  // endpoint's.
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    const std::string& name = db.relation_name(rel);
    if (q.AtomsOfRelation(name).empty() || q.IsRelationExogenous(name)) {
      continue;
    }
    for (TupleId t : db.ActiveTuples(rel)) {
      std::set<Value> c = ConstantSet(db, t);
      if (ProperSubset(c, set_a) || ProperSubset(c, set_b)) {
        out.failed_condition = 3;
        out.explanation = StrFormat(
            "endogenous tuple %s has constants strictly inside an endpoint",
            db.TupleToString(t).c_str());
        return out;
      }
    }
  }

  // Condition 4: exogenous projections must exist for both endpoints.
  const std::vector<Value>& row_a = db.Row(endpoint_a);
  const std::vector<Value>& row_b = db.Row(endpoint_b);
  RESCQ_CHECK_EQ(row_a.size(), row_b.size());
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    const std::string& name = db.relation_name(rel);
    if (q.AtomsOfRelation(name).empty() || !q.IsRelationExogenous(name)) {
      continue;
    }
    int arity = db.relation_arity(rel);
    if (arity > static_cast<int>(row_a.size())) continue;
    bool ok = true;
    std::string missing;
    ForEachCombination(
        static_cast<int>(row_a.size()), arity, [&](const std::vector<int>& j) {
          std::vector<Value> aj, bj;
          for (int idx : j) {
            aj.push_back(row_a[static_cast<size_t>(idx)]);
            bj.push_back(row_b[static_cast<size_t>(idx)]);
          }
          auto have = [&](const std::vector<Value>& v) {
            std::optional<TupleId> t = db.FindTuple(name, v);
            return t.has_value() && db.IsActive(*t);
          };
          if (have(aj) != have(bj)) {
            ok = false;
            missing = StrFormat("relation %s: projection present for one "
                                "endpoint only",
                                name.c_str());
            return false;
          }
          return true;
        });
    if (!ok) {
      out.failed_condition = 4;
      out.explanation = missing;
      return out;
    }
  }

  // Condition 5: the or-property.
  ResilienceResult base = ComputeResilienceExact(q, db);
  if (base.unbreakable || base.resilience < 1) {
    out.failed_condition = 5;
    out.explanation = "base resilience must be a finite positive number";
    return out;
  }
  int c = base.resilience;
  out.resilience = c;
  for (const std::vector<TupleId>& removed :
       {std::vector<TupleId>{endpoint_a}, std::vector<TupleId>{endpoint_b},
        std::vector<TupleId>{endpoint_a, endpoint_b}}) {
    bool unbreakable = false;
    int r = ResilienceWithout(q, db, removed, &unbreakable);
    if (unbreakable || r != c - 1) {
      out.failed_condition = 5;
      out.explanation = StrFormat(
          "or-property violated: removing %zu endpoint(s) gives %d, want %d",
          removed.size(), r, c - 1);
      return out;
    }
  }
  out.is_ijp = true;
  out.explanation = StrFormat("IJP with base resilience c = %d", c);
  return out;
}

}  // namespace rescq
