#ifndef RESCQ_IJP_EXAMPLES_H_
#define RESCQ_IJP_EXAMPLES_H_

#include "cq/query.h"
#include "db/database.h"

namespace rescq {

/// The worked IJP examples of Appendix C.1. Each builder returns the
/// example's database and endpoint tuples for use with CheckIjp.
struct IjpExample {
  Query query;
  Database db;
  TupleId endpoint_a;
  TupleId endpoint_b;
  int expected_resilience;  // the c quoted by the paper
};

/// Example 58: the 3-tuple IJP for q_vc (c = 1).
IjpExample BuildIjpExample58();

/// Example 59: the 7-tuple IJP for the triangle query (c = 2).
IjpExample BuildIjpExample59();

/// Example 60: the IJP for z5 (c = 4), with one repair. As printed, the
/// paper's 21-tuple database admits a ninth witness (5,2,3) =
/// {A(5),R(5,2),R(2,3),R(3,3)} that Figure 19 does not draw; it breaks
/// condition 5 for endpoint A(13) (after removing A(13) the minimum
/// contingency set has size 4, not c-1 = 3). Rerouting A(5)'s attachment
/// through a private node — R(5,2c),R(2c,2) instead of R(5,2) — removes
/// the spurious witness and restores the or-property exactly as the
/// figure intends. See BuildIjpExample60AsPrinted for the original.
IjpExample BuildIjpExample60();

/// Example 60 exactly as printed in the paper (21 tuples). CheckIjp
/// rejects it at condition 5 — the erratum described above.
IjpExample BuildIjpExample60AsPrinted();

/// Example 61: the *failed* IJP attempt for
/// A^x(x),R(x),S(x,y),S(z,y),R(z),B^x(z); condition 4 rejects it.
IjpExample BuildIjpExample61();

}  // namespace rescq

#endif  // RESCQ_IJP_EXAMPLES_H_
