#include "ijp/ijp_vc_reduction.h"

#include <set>

#include "reductions/vertex_cover.h"
#include "util/string_util.h"

namespace rescq {

std::optional<IjpVcInstance> BuildIjpVcInstance(
    const Query& q, const Database& ijp_db, TupleId endpoint_a,
    TupleId endpoint_b, int base_resilience, const Graph& g) {
  std::set<Value> set_a(ijp_db.Row(endpoint_a).begin(),
                        ijp_db.Row(endpoint_a).end());
  std::set<Value> set_b(ijp_db.Row(endpoint_b).begin(),
                        ijp_db.Row(endpoint_b).end());
  for (Value v : set_a) {
    if (set_b.count(v)) return std::nullopt;  // endpoints share constants
  }
  // Role consistency: a vertex must not appear on both edge sides.
  std::set<int> as_a, as_b;
  for (auto [u, v] : g.edges) {
    as_a.insert(u);
    as_b.insert(v);
  }
  for (int u : as_a) {
    if (as_b.count(u)) return std::nullopt;
  }

  IjpVcInstance out;
  out.query = q;
  out.base_resilience = base_resilience;
  int edge_idx = 0;
  for (auto [u, v] : g.edges) {
    // Rename constants: endpoint-a constants -> vertex u, endpoint-b
    // constants -> vertex v, interior constants -> edge-fresh.
    auto rename = [&, u = u, v = v](Value orig) {
      const std::string& name = ijp_db.ValueName(orig);
      if (set_a.count(orig)) {
        return out.db.Intern(StrFormat("u%d_%s", u, name.c_str()));
      }
      if (set_b.count(orig)) {
        return out.db.Intern(StrFormat("u%d_%s", v, name.c_str()));
      }
      return out.db.Intern(StrFormat("e%d_%s", edge_idx, name.c_str()));
    };
    for (int rel = 0; rel < ijp_db.num_relations(); ++rel) {
      for (TupleId t : ijp_db.ActiveTuples(rel)) {
        std::vector<Value> row;
        for (Value val : ijp_db.Row(t)) row.push_back(rename(val));
        out.db.AddTuple(ijp_db.relation_name(rel), row);
      }
    }
    ++edge_idx;
  }
  out.expected_resilience =
      MinVertexCover(g).size +
      static_cast<int>(g.edges.size()) * (base_resilience - 1);
  return out;
}

}  // namespace rescq
