#include "ijp/examples.h"

#include "cq/parser.h"

namespace rescq {

namespace {

Value V(Database& db, int i) { return db.InternIndexed("n", i); }

}  // namespace

IjpExample BuildIjpExample58() {
  IjpExample out;
  out.query = MustParseQuery("R(x), S(x,y), R(y)");
  Database& db = out.db;
  out.endpoint_a = db.AddTuple("R", {V(db, 1)});
  db.AddTuple("S", {V(db, 1), V(db, 2)});
  out.endpoint_b = db.AddTuple("R", {V(db, 2)});
  out.expected_resilience = 1;
  return out;
}

IjpExample BuildIjpExample59() {
  IjpExample out;
  out.query = MustParseQuery("R(x,y), S(y,z), T(z,x)");
  Database& db = out.db;
  out.endpoint_a = db.AddTuple("R", {V(db, 1), V(db, 2)});
  db.AddTuple("R", {V(db, 4), V(db, 2)});
  out.endpoint_b = db.AddTuple("R", {V(db, 4), V(db, 5)});
  db.AddTuple("S", {V(db, 2), V(db, 3)});
  db.AddTuple("S", {V(db, 5), V(db, 3)});
  db.AddTuple("T", {V(db, 3), V(db, 1)});
  db.AddTuple("T", {V(db, 3), V(db, 4)});
  out.expected_resilience = 2;
  return out;
}

namespace {

IjpExample BuildExample60Impl(bool as_printed) {
  IjpExample out;
  out.query = MustParseQuery("A(x), R(x,y), R(y,z), R(z,z)");
  Database& db = out.db;
  db.AddTuple("A", {V(db, 1)});
  db.AddTuple("A", {V(db, 4)});
  db.AddTuple("A", {V(db, 5)});
  out.endpoint_a = db.AddTuple("A", {V(db, 9)});
  out.endpoint_b = db.AddTuple("A", {V(db, 13)});
  const int r_pairs[][2] = {{1, 2},   {2, 2},   {2, 3},   {3, 3},
                            {4, 1},   {5, 6},   {6, 7},   {7, 7},
                            {8, 7},   {9, 8},   {1, 10},  {10, 11},
                            {11, 11}, {12, 11}, {13, 12}};
  for (auto [a, b] : r_pairs) db.AddTuple("R", {V(db, a), V(db, b)});
  if (as_printed) {
    // The paper's attachment of A(5) to the 2-loop; together with
    // R(2,3), R(3,3) it creates the undrawn witness (5,2,3).
    db.AddTuple("R", {V(db, 5), V(db, 2)});
  } else {
    // Repair: a private hop 5 -> 2c -> 2 keeps witness (5,2c,2) but
    // cannot continue to the 3-loop.
    db.AddTuple("R", {V(db, 5), V(db, 20)});
    db.AddTuple("R", {V(db, 20), V(db, 2)});
  }
  out.expected_resilience = 4;
  return out;
}

}  // namespace

IjpExample BuildIjpExample60() { return BuildExample60Impl(false); }

IjpExample BuildIjpExample60AsPrinted() { return BuildExample60Impl(true); }

IjpExample BuildIjpExample61() {
  IjpExample out;
  out.query = MustParseQuery("A^x(x), R(x), S(x,y), S(z,y), R(z), B^x(z)");
  Database& db = out.db;
  out.endpoint_a = db.AddTuple("R", {V(db, 1)});
  db.AddTuple("A", {V(db, 1)});
  db.AddTuple("S", {V(db, 1), V(db, 2)});
  db.AddTuple("S", {V(db, 3), V(db, 2)});
  out.endpoint_b = db.AddTuple("R", {V(db, 3)});
  db.AddTuple("B", {V(db, 3)});
  out.expected_resilience = 1;
  return out;
}

}  // namespace rescq
