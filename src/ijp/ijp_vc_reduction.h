#ifndef RESCQ_IJP_IJP_VC_REDUCTION_H_
#define RESCQ_IJP_IJP_VC_REDUCTION_H_

#include <optional>

#include "cq/query.h"
#include "db/database.h"
#include "reductions/graph.h"

namespace rescq {

/// The generalized Vertex-Cover reduction behind Conjecture 49 (Fig. 8):
/// given an IJP for q with endpoint tuples R(a), R(b) and base resilience
/// c, every graph edge (u,v) becomes a fresh copy of the IJP database in
/// which endpoint a's constants are renamed to vertex-u constants and
/// endpoint b's to vertex-v constants (interior constants are
/// edge-fresh). A vertex's tuple is shared by all its incident copies.
/// The or-property then composes:
///
///    ρ(q, D_G) = VC(G) + |E(G)| · (c - 1).
///
/// Requirements (returns nullopt otherwise):
///  - the endpoint tuples use disjoint constant sets;
///  - the orientation is role-consistent: every vertex appears only as
///    the first component of edges (role a) or only as the second
///    (role b) — e.g. any bipartite orientation.
struct IjpVcInstance {
  Database db;
  Query query;
  int base_resilience;       // c
  int expected_resilience;   // VC(G) + |E|·(c-1), filled by the caller's VC
};

std::optional<IjpVcInstance> BuildIjpVcInstance(
    const Query& q, const Database& ijp_db, TupleId endpoint_a,
    TupleId endpoint_b, int base_resilience, const Graph& oriented_edges);

}  // namespace rescq

#endif  // RESCQ_IJP_IJP_VC_REDUCTION_H_
