#ifndef RESCQ_IJP_IJP_H_
#define RESCQ_IJP_IJP_H_

#include <optional>
#include <string>
#include <vector>

#include "cq/query.h"
#include "db/database.h"

namespace rescq {

/// A candidate Independent Join Path (Definition 48): a database together
/// with the two distinguished endpoint tuples of one relation.
struct IjpCandidate {
  const Database* db;
  TupleId endpoint_a;
  TupleId endpoint_b;
};

/// Outcome of checking Definition 48's five conditions.
struct IjpCheckResult {
  bool is_ijp = false;
  /// 1-based index of the first violated condition (0 when is_ijp).
  int failed_condition = 0;
  std::string explanation;
  /// Condition 5's base resilience c (valid when conditions 1-4 hold).
  int resilience = 0;
};

/// Checks whether (db, endpoints) forms an Independent Join Path for q:
///  (1) endpoints belong to one relation R, with incomparable constant
///      sets (a ⊈ b, b ⊈ a);
///  (2) each endpoint participates in exactly one witness, and that
///      witness has exactly m = |atoms(q)| distinct tuples;
///  (3) no endogenous relation has a tuple whose constant set is a
///      proper subset of an endpoint's;
///  (4) for every exogenous tuple equal to a subvector a_j of endpoint a,
///      the same relation also contains b_j (and vice versa);
///  (5) with ρ(q, D) = c, removing endpoint a, endpoint b, or both each
///      leaves resilience c - 1 (the "or-property").
/// Condition 5 uses the exact solver (4 calls).
IjpCheckResult CheckIjp(const Query& q, Database& db, TupleId endpoint_a,
                        TupleId endpoint_b);

}  // namespace rescq

#endif  // RESCQ_IJP_IJP_H_
