#ifndef RESCQ_IJP_IJP_SEARCH_H_
#define RESCQ_IJP_IJP_SEARCH_H_

#include <cstdint>
#include <string>

#include "cq/query.h"
#include "db/database.h"
#include "ijp/ijp.h"

namespace rescq {

/// Options for the automated IJP search (Appendix C.2).
struct IjpSearchOptions {
  int min_joins = 1;
  int max_joins = 3;
  /// Cap on partitions examined per join count (Bell numbers explode).
  uint64_t max_partitions = 1u << 22;
  /// Skip partitions that merge two constants of the same join; the
  /// canonical witnesses stay intact and the search space shrinks
  /// (Example 62's winning partition has this form).
  bool prune_within_join = true;
};

/// Result of an automated IJP search.
struct IjpSearchResult {
  bool found = false;
  int joins = 0;                     // k of the successful round
  uint64_t partitions_examined = 0;  // across all rounds
  uint64_t candidates_checked = 0;   // endpoint pairs fully checked
  Database db;                       // the IJP database (when found)
  TupleId endpoint_a;
  TupleId endpoint_b;
  int resilience = 0;                // base resilience c
  std::string description;
};

/// Implements the Appendix C.2 procedure: for k = min_joins..max_joins,
/// lay out k disjoint canonical databases of q (one witness each, fresh
/// constants), enumerate set partitions of the constants, merge, and test
/// every endpoint pair of every endogenous relation with CheckIjp.
/// Finding an IJP is (conjectured, Conjecture 49) a proof that RES(q) is
/// NP-complete.
IjpSearchResult SearchForIjp(const Query& q,
                             const IjpSearchOptions& options = {});

}  // namespace rescq

#endif  // RESCQ_IJP_IJP_SEARCH_H_
