#include "ijp/ijp_search.h"

#include <map>

#include "util/check.h"
#include "util/combinatorics.h"
#include "util/string_util.h"

namespace rescq {

namespace {

// Builds the merged database for one partition: constant (join j, var v)
// lives in block rgs[j * num_vars + v]; each join contributes one tuple
// per atom over its blocks.
Database BuildMergedDatabase(const Query& q, int joins,
                             const std::vector<int>& rgs) {
  Database db;
  int num_vars = q.num_vars();
  auto block_value = [&](int join, VarId v) {
    int block = rgs[static_cast<size_t>(join * num_vars + v)];
    return db.InternIndexed("n", block);
  };
  for (int j = 0; j < joins; ++j) {
    for (const Atom& atom : q.atoms()) {
      std::vector<Value> row;
      for (VarId v : atom.vars) row.push_back(block_value(j, v));
      db.AddTuple(atom.relation, row);
    }
  }
  return db;
}

bool MergesWithinJoin(int joins, int num_vars, const std::vector<int>& rgs) {
  for (int j = 0; j < joins; ++j) {
    std::map<int, int> seen;  // block -> first var
    for (int v = 0; v < num_vars; ++v) {
      int block = rgs[static_cast<size_t>(j * num_vars + v)];
      auto [it, inserted] = seen.emplace(block, v);
      if (!inserted) return true;
    }
  }
  return false;
}

}  // namespace

IjpSearchResult SearchForIjp(const Query& q, const IjpSearchOptions& options) {
  IjpSearchResult result;
  const int num_vars = q.num_vars();
  for (int k = options.min_joins; k <= options.max_joins && !result.found;
       ++k) {
    int n = k * num_vars;
    if (n > 25) break;  // Bell-number territory beyond any budget
    uint64_t examined_this_round = 0;
    ForEachSetPartition(n, [&](const std::vector<int>& rgs) {
      if (++examined_this_round > options.max_partitions) return false;
      ++result.partitions_examined;
      if (options.prune_within_join && MergesWithinJoin(k, num_vars, rgs)) {
        return true;
      }
      Database db = BuildMergedDatabase(q, k, rgs);
      // Try every endpoint pair of every endogenous relation.
      for (int rel = 0; rel < db.num_relations(); ++rel) {
        const std::string& name = db.relation_name(rel);
        if (q.IsRelationExogenous(name)) continue;
        std::vector<TupleId> tuples = db.ActiveTuples(rel);
        for (size_t i = 0; i < tuples.size(); ++i) {
          for (size_t j = i + 1; j < tuples.size(); ++j) {
            ++result.candidates_checked;
            IjpCheckResult check = CheckIjp(q, db, tuples[i], tuples[j]);
            if (check.is_ijp) {
              result.found = true;
              result.joins = k;
              result.db = db;
              result.endpoint_a = tuples[i];
              result.endpoint_b = tuples[j];
              result.resilience = check.resilience;
              result.description = StrFormat(
                  "IJP for '%s' with %d joins, endpoints %s / %s, c = %d",
                  q.ToString().c_str(), k,
                  db.TupleToString(tuples[i]).c_str(),
                  db.TupleToString(tuples[j]).c_str(), check.resilience);
              return false;  // stop enumeration
            }
          }
        }
      }
      return true;
    });
  }
  if (!result.found) {
    result.description =
        StrFormat("no IJP found for '%s' within the search budget",
                  q.ToString().c_str());
  }
  return result;
}

}  // namespace rescq
