#ifndef RESCQ_UTIL_STRING_UTIL_H_
#define RESCQ_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rescq {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

// Strict numeric parsers shared by the CLI flags and batch plan files.
// All of them require the whole string to parse and reject out-of-range
// input (no silent truncation or wrap).

/// Decimal integer in [1, INT_MAX].
bool ParsePositiveInt(const std::string& s, int* out);

/// Decimal unsigned 64-bit integer (rejects overflow and a leading '-').
bool ParseUint64(const std::string& s, uint64_t* out);

/// Floating-point probability in [0, 1]; NaN and infinities are rejected.
bool ParseProbability(const std::string& s, double* out);

/// Split on `sep`, Trim each piece, and drop empties.
std::vector<std::string> SplitTrimmed(std::string_view s, char sep);

}  // namespace rescq

#endif  // RESCQ_UTIL_STRING_UTIL_H_
