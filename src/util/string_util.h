#ifndef RESCQ_UTIL_STRING_UTIL_H_
#define RESCQ_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rescq {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace rescq

#endif  // RESCQ_UTIL_STRING_UTIL_H_
