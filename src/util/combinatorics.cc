#include "util/combinatorics.h"

#include "util/check.h"

namespace rescq {

uint64_t BellNumber(int n) {
  RESCQ_CHECK(n >= 0 && n <= 25);
  // Bell triangle.
  std::vector<std::vector<uint64_t>> tri(static_cast<size_t>(n) + 1);
  tri[0] = {1};
  for (int i = 1; i <= n; ++i) {
    tri[i].resize(static_cast<size_t>(i) + 1);
    tri[i][0] = tri[i - 1].back();
    for (int j = 1; j <= i; ++j) {
      tri[i][j] = tri[i][j - 1] + tri[i - 1][j - 1];
    }
  }
  return tri[n][0];
}

namespace {

bool PartitionRec(int n, int i, int max_block, std::vector<int>& rgs,
                  const std::function<bool(const std::vector<int>&)>& visit) {
  if (i == n) return visit(rgs);
  for (int b = 0; b <= max_block + 1; ++b) {
    rgs[i] = b;
    int next_max = b > max_block ? b : max_block;
    if (!PartitionRec(n, i + 1, next_max, rgs, visit)) return false;
  }
  return true;
}

}  // namespace

void ForEachSetPartition(
    int n,
    const std::function<bool(const std::vector<int>&)>& visit) {
  RESCQ_CHECK_GT(n, 0);
  std::vector<int> rgs(static_cast<size_t>(n), 0);
  PartitionRec(n, 1, 0, rgs, visit);
}

int NumBlocks(const std::vector<int>& rgs) {
  int mx = -1;
  for (int b : rgs) mx = b > mx ? b : mx;
  return mx + 1;
}

void ForEachSubset(int n, const std::function<bool(uint32_t)>& visit) {
  RESCQ_CHECK(n >= 0 && n <= 30);
  uint32_t end = 1u << n;
  for (uint32_t mask = 0; mask < end; ++mask) {
    if (!visit(mask)) return;
  }
}

void ForEachCombination(
    int n, int k,
    const std::function<bool(const std::vector<int>&)>& visit) {
  RESCQ_CHECK(k >= 0 && k <= n);
  std::vector<int> idx(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) idx[static_cast<size_t>(i)] = i;
  if (k == 0) {
    visit(idx);
    return;
  }
  while (true) {
    if (!visit(idx)) return;
    int i = k - 1;
    while (i >= 0 && idx[static_cast<size_t>(i)] == n - k + i) --i;
    if (i < 0) return;
    ++idx[static_cast<size_t>(i)];
    for (int j = i + 1; j < k; ++j) {
      idx[static_cast<size_t>(j)] = idx[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

void ForEachIndexVector(
    int n, const std::function<bool(const std::vector<int>&)>& visit) {
  for (int k = 1; k <= n; ++k) {
    bool keep_going = true;
    ForEachCombination(n, k, [&](const std::vector<int>& idx) {
      keep_going = visit(idx);
      return keep_going;
    });
    if (!keep_going) return;
  }
}

}  // namespace rescq
