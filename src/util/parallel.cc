#include "util/parallel.h"

#include <algorithm>

namespace rescq {

WorkerPool::WorkerPool(int threads) {
  int spawn = std::max(1, threads) - 1;
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::WorkerMain() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    const std::function<void(size_t)>* job = job_;
    const size_t count = count_;
    lock.unlock();
    for (;;) {
      // Relaxed is enough: the job state was published under mu_ before
      // the generation bump, and completion is published back under mu_
      // via running_. The cursor only partitions indices.
      size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*job)(i);
    }
    lock.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    count_ = count;
    cursor_.store(0, std::memory_order_relaxed);
    running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is the last worker: it drains the same cursor, then
  // waits for the spawned workers to finish their in-flight items.
  for (;;) {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
  }
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  job_ = nullptr;
}

void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (threads <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  WorkerPool pool(static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), count)));
  pool.Run(count, fn);
}

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace rescq
