#include "util/parallel.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace rescq {

namespace {

uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

WorkerPool::WorkerPool(int threads) {
  int spawn = std::max(1, threads) - 1;
  stats_.resize(static_cast<size_t>(spawn) + 1);
  workers_.reserve(static_cast<size_t>(spawn));
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back(
        [this, slot = static_cast<size_t>(i) + 1] { WorkerMain(slot); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (obs::MetricsEnabled()) {
    uint64_t tasks = 0;
    uint64_t idle = 0;
    for (const WorkerStats& s : stats_) {
      tasks += s.tasks_run;
      idle += s.idle_ns;
    }
    obs::Count("pool.runs", runs_);
    obs::Count("pool.tasks_run", tasks);
    obs::Count("pool.idle_ns", idle);
    obs::Count("pool.workers", static_cast<uint64_t>(threads()));
  }
}

void WorkerPool::WorkerMain(size_t slot) {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto wait_start = std::chrono::steady_clock::now();
    work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    stats_[slot].idle_ns += ElapsedNs(wait_start);
    if (stop_) return;
    seen = generation_;
    const std::function<void(size_t)>* job = job_;
    const size_t count = count_;
    lock.unlock();
    uint64_t drained = 0;
    for (;;) {
      // Relaxed is enough: the job state was published under mu_ before
      // the generation bump, and completion is published back under mu_
      // via running_. The cursor only partitions indices.
      size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      (*job)(i);
      ++drained;
    }
    lock.lock();
    stats_[slot].tasks_run += drained;
    if (--running_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::Run(size_t count, const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    stats_[0].tasks_run += count;
    ++runs_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    count_ = count;
    cursor_.store(0, std::memory_order_relaxed);
    running_ = static_cast<int>(workers_.size());
    ++generation_;
    ++runs_;
  }
  work_cv_.notify_all();
  // The caller is the last worker: it drains the same cursor, then
  // waits for the spawned workers to finish their in-flight items.
  uint64_t drained = 0;
  for (;;) {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    fn(i);
    ++drained;
  }
  auto wait_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return running_ == 0; });
  stats_[0].idle_ns += ElapsedNs(wait_start);
  stats_[0].tasks_run += drained;
  job_ = nullptr;
}

std::vector<WorkerPool::WorkerStats> WorkerPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn) {
  if (threads <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  WorkerPool pool(static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), count)));
  pool.Run(count, fn);
}

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace rescq
