#ifndef RESCQ_UTIL_COMBINATORICS_H_
#define RESCQ_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rescq {

/// Bell number B(n): the number of set partitions of an n-element set.
/// Valid for n <= 25 (fits in uint64_t).
uint64_t BellNumber(int n);

/// Enumerates all set partitions of {0,...,n-1} as restricted growth
/// strings: rgs[i] is the block index of element i, rgs[0] == 0, and
/// rgs[i] <= 1 + max(rgs[0..i-1]). Invokes `visit` once per partition;
/// if `visit` returns false, enumeration stops early.
///
/// The enumeration order is lexicographic on the growth string, so the
/// all-singletons partition (0,1,2,...) is visited last and the
/// single-block partition (0,0,...,0) first.
void ForEachSetPartition(int n,
                         const std::function<bool(const std::vector<int>&)>&
                             visit);

/// Number of blocks in a restricted growth string.
int NumBlocks(const std::vector<int>& rgs);

/// Enumerates all subsets of {0,...,n-1} as bitmasks, in increasing mask
/// order. If `visit` returns false, enumeration stops. Requires n <= 30.
void ForEachSubset(int n,
                   const std::function<bool(uint32_t)>& visit);

/// Enumerates all k-subsets of {0,...,n-1} in lexicographic order,
/// passing the chosen indices. If `visit` returns false, stops.
void ForEachCombination(
    int n, int k,
    const std::function<bool(const std::vector<int>&)>& visit);

/// Enumerates strictly increasing index vectors of each length 1..n over
/// {0,...,n-1} (i.e. all non-empty subsets in index-vector form). Used for
/// sub-vector projections (IJP condition 4).
void ForEachIndexVector(
    int n, const std::function<bool(const std::vector<int>&)>& visit);

}  // namespace rescq

#endif  // RESCQ_UTIL_COMBINATORICS_H_
