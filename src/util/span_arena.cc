#include "util/span_arena.h"

#include "db/value.h"

namespace rescq {

// Explicit instantiations for the two element types the repo stores in
// arenas — dense solver ids and tuple ids — so a template regression
// (padding, a type losing trivial copyability) fails this translation
// unit instead of whichever consumer includes the header next.
template class SpanArena<int32_t>;
template class SpanArena<TupleId>;

}  // namespace rescq
