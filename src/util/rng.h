#ifndef RESCQ_UTIL_RNG_H_
#define RESCQ_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rescq {

/// Deterministic splitmix64 RNG. Used by tests and benchmarks so that
/// random instances are reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased:
  /// draws below `2^64 mod bound` are rejected (arc4random_uniform
  /// style), so every residue is hit by the same number of raw words.
  uint64_t Below(uint64_t bound) {
    uint64_t threshold = (0 - bound) % bound;  // 2^64 mod bound
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Fisher–Yates shuffle, deterministic in this Rng's state.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[Below(i)]);
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace rescq

#endif  // RESCQ_UTIL_RNG_H_
