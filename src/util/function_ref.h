#ifndef RESCQ_UTIL_FUNCTION_REF_H_
#define RESCQ_UTIL_FUNCTION_REF_H_

// Non-owning, non-allocating callable reference — the hot-loop
// replacement for std::function in the witness visitors. A FunctionRef
// is two words (object pointer + thunk) built implicitly from any
// callable, so ForEachWitness / ForEachDelta call sites keep passing
// lambdas unchanged while per-enumeration std::function allocations
// disappear. Like a reference, it does not extend the callable's
// lifetime: store one only while the referenced callable is alive
// (every use in this repo passes it down a call stack).

#include <memory>
#include <type_traits>
#include <utility>

namespace rescq {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference; calling it is undefined. Exists so owners can hold
  /// a slot that is assigned before use (the enumerator scratch does).
  FunctionRef() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design —
  // call sites pass lambdas where a visitor is expected.
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace rescq

#endif  // RESCQ_UTIL_FUNCTION_REF_H_
