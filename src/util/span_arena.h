#ifndef RESCQ_UTIL_SPAN_ARENA_H_
#define RESCQ_UTIL_SPAN_ARENA_H_

// Arena-backed set storage: every set lives as one contiguous run inside
// a single bump-allocated pool, addressed by a {offset, len} handle
// instead of an owning std::vector. This is the data model of the
// serving hot path (witness families, solver input, the incremental
// support family): one allocation amortized over every set, cache-local
// iteration, and content-hash interning so duplicate sets collapse to
// one handle without ever materializing a key vector. Eviction and the
// memory gauges read the arena geometry directly — reserved (capacity
// high-water) vs live (appended) bytes — so accounting is O(1).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace rescq {

/// Handle to one contiguous run inside a span arena's pool. Plain
/// offsets, not pointers, so handles survive pool reallocation.
struct SetSpan {
  uint32_t offset = 0;
  uint32_t len = 0;
};

/// Bump arena of T with content-hash interning. Append() places a run
/// and returns its handle; Intern() deduplicates — equal contents map to
/// the same span id, assigned densely in first-appearance order. The
/// pool only grows (spans are immutable once placed); owners that need
/// to shed a cold arena drop the whole object and rebuild.
///
/// T must be trivially copyable with unique object representations
/// (no padding): contents are hashed and compared as raw bytes.
template <typename T>
class SpanArena {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpanArena hashes elements as raw bytes");
  static_assert(std::has_unique_object_representations_v<T>,
                "SpanArena compares elements as raw bytes; padding would "
                "make equal values compare unequal");

 public:
  static constexpr uint32_t kNoSpan = ~uint32_t{0};

  /// Appends a run without interning and returns its handle.
  SetSpan Append(const T* data, size_t n) {
    SetSpan span{static_cast<uint32_t>(pool_.size()),
                 static_cast<uint32_t>(n)};
    pool_.insert(pool_.end(), data, data + n);
    return span;
  }

  /// Returns the id of the span with exactly these contents, appending a
  /// new one when absent. Ids are dense: 0, 1, 2, ... in first-appearance
  /// order.
  uint32_t Intern(const T* data, size_t n) {
    if (spans_.size() + 1 > (table_.size() * 7) / 10) Rehash();
    const uint64_t hash = HashBytes(data, n);
    size_t slot = static_cast<size_t>(hash) & (table_.size() - 1);
    for (;;) {
      uint32_t id = table_[slot];
      if (id == kNoSpan) break;
      if (Equals(id, data, n)) return id;
      slot = (slot + 1) & (table_.size() - 1);
    }
    const uint32_t id = static_cast<uint32_t>(spans_.size());
    spans_.push_back(Append(data, n));
    table_[slot] = id;
    return id;
  }

  /// Id lookup without insertion; kNoSpan when absent.
  uint32_t Find(const T* data, size_t n) const {
    if (table_.empty()) return kNoSpan;
    const uint64_t hash = HashBytes(data, n);
    size_t slot = static_cast<size_t>(hash) & (table_.size() - 1);
    for (;;) {
      uint32_t id = table_[slot];
      if (id == kNoSpan) return kNoSpan;
      if (Equals(id, data, n)) return id;
      slot = (slot + 1) & (table_.size() - 1);
    }
  }

  size_t num_spans() const { return spans_.size(); }
  SetSpan span(uint32_t id) const { return spans_[id]; }
  const T* data(SetSpan s) const { return pool_.data() + s.offset; }
  const T* begin(uint32_t id) const { return data(spans_[id]); }
  const T* end(uint32_t id) const {
    return data(spans_[id]) + spans_[id].len;
  }

  /// Elements appended so far (live) and the pool's high-water mark
  /// (reserved) — the two numbers the mem.* arena gauges report.
  size_t pool_size() const { return pool_.size(); }
  size_t pool_capacity() const { return pool_.capacity(); }
  uint64_t LiveBytes() const {
    return static_cast<uint64_t>(pool_.size()) * sizeof(T);
  }
  uint64_t ReservedBytes() const {
    return static_cast<uint64_t>(pool_.capacity()) * sizeof(T);
  }

  /// Total heap geometry: pool + span table + intern table. O(1).
  uint64_t ApproxBytes() const {
    return ReservedBytes() +
           static_cast<uint64_t>(spans_.capacity()) * sizeof(SetSpan) +
           static_cast<uint64_t>(table_.capacity()) * sizeof(uint32_t);
  }

 private:
  static uint64_t HashBytes(const T* data, size_t n) {
    // FNV-1a over the raw bytes — same algorithm as util/fnv.h, inlined
    // here so the header stays dependency-free.
    uint64_t h = 0xcbf29ce484222325ULL;
    const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n * sizeof(T); ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;
    }
    return h;
  }

  bool Equals(uint32_t id, const T* data, size_t n) const {
    const SetSpan s = spans_[id];
    return s.len == n &&
           (n == 0 ||
            std::memcmp(pool_.data() + s.offset, data, n * sizeof(T)) == 0);
  }

  void Rehash() {
    size_t buckets = table_.empty() ? 64 : table_.size() * 2;
    table_.assign(buckets, kNoSpan);
    for (uint32_t id = 0; id < spans_.size(); ++id) {
      const SetSpan s = spans_[id];
      size_t slot = static_cast<size_t>(
                        HashBytes(pool_.data() + s.offset, s.len)) &
                    (buckets - 1);
      while (table_[slot] != kNoSpan) slot = (slot + 1) & (buckets - 1);
      table_[slot] = id;
    }
  }

  std::vector<T> pool_;
  std::vector<SetSpan> spans_;    // per interned id, appearance order
  std::vector<uint32_t> table_;   // open-addressing content-hash table
};

}  // namespace rescq

#endif  // RESCQ_UTIL_SPAN_ARENA_H_
