#ifndef RESCQ_UTIL_PARALLEL_H_
#define RESCQ_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rescq {

/// A fixed pool of workers draining an atomic index cursor — the
/// fan-out shape the workload batch engine always used, extracted so
/// the parallel exact solver and the incremental session share one
/// implementation. The pool spawns `threads - 1` std::threads up front
/// (the caller of Run is always the last worker), parks them on a
/// condition variable between jobs, and reuses them across Run calls —
/// an IncrementalSession solving touched components every epoch must
/// not pay a thread spawn per epoch.
///
/// Concurrency contract:
///  - Run(count, fn) calls fn(i) exactly once for every i in
///    [0, count), from an unspecified worker, in an unspecified order,
///    and returns only after every call finished. The Run caller's
///    writes before Run happen-before every fn(i); every fn(i)'s
///    writes happen-before Run returning (mutex + cv handoff both
///    ways), so callers need no extra synchronization for per-index
///    result slots.
///  - fn must synchronize any state shared *between* indices itself.
///  - Run is not reentrant: one Run at a time per pool, and fn must not
///    call Run on the same pool (workers would deadlock waiting for
///    themselves). Nested parallelism wants a second pool.
///  - fn must not throw (the library is exception-free; see check.h).
class WorkerPool {
 public:
  /// Per-worker utilization counters. tasks_run counts the indices the
  /// worker drained across every Run; idle_ns is the time it spent
  /// parked — for a spawned worker, waiting on the work signal between
  /// jobs; for the Run caller (slot 0), waiting for the spawned
  /// workers' in-flight items after its own drain finished.
  struct WorkerStats {
    uint64_t tasks_run = 0;
    uint64_t idle_ns = 0;
  };

  /// A pool that Run()s work across `threads` workers total; values
  /// below 1 are clamped to 1 (no spawned threads — Run degenerates to
  /// an inline loop, byte-identical to serial execution).
  explicit WorkerPool(int threads);

  /// Joins the workers and, when metrics are enabled, adds the pool's
  /// lifetime totals to the global registry (pool.runs, pool.tasks_run,
  /// pool.idle_ns, pool.workers).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers including the Run caller.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  void Run(size_t count, const std::function<void(size_t)>& fn);

  /// Snapshot of the per-worker counters, slot 0 = the Run caller,
  /// slots 1.. = the spawned workers. Only call between Runs (Run's
  /// completion handoff is what makes the workers' counts visible).
  std::vector<WorkerStats> Stats() const;

 private:
  void WorkerMain(size_t slot);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals a new generation (or stop)
  std::condition_variable done_cv_;  // signals running_ reaching zero
  // All guarded by mu_; cursor_ is the only cross-worker hot word.
  const std::function<void(size_t)>* job_ = nullptr;
  size_t count_ = 0;
  uint64_t generation_ = 0;
  uint64_t runs_ = 0;
  int running_ = 0;
  bool stop_ = false;
  std::atomic<size_t> cursor_{0};
  // stats_[slot] is written by its owning worker only (idle_ns under
  // mu_, tasks_run in the drain loop); Stats() copies between Runs.
  std::vector<WorkerStats> stats_;
  std::vector<std::thread> workers_;
};

/// One-shot fan-out: fn(i) for every i in [0, count) across `threads`
/// workers. threads <= 1 (or count <= 1) runs inline with no thread
/// machinery at all, so a serial configuration stays byte-identical to
/// a plain loop. Spawns and joins a transient WorkerPool otherwise —
/// callers with per-epoch or per-solve cadence should hold a WorkerPool
/// instead.
void ParallelFor(int threads, size_t count,
                 const std::function<void(size_t)>& fn);

/// max(1, std::thread::hardware_concurrency()) — the "use every core"
/// value for --solver-threads/--threads style flags.
int HardwareThreads();

}  // namespace rescq

#endif  // RESCQ_UTIL_PARALLEL_H_
