#include "util/fnv.h"

#include "util/string_util.h"

namespace rescq {

std::string Fnv1aHex(const std::string& s) {
  Fnv1a h;
  for (char c : s) h.MixByte(static_cast<unsigned char>(c));
  return StrFormat("%016llx", static_cast<unsigned long long>(h.digest()));
}

}  // namespace rescq
