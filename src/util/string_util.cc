#include "util/string_util.h"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rescq {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

namespace {

/// Non-empty and nothing but ASCII digits — rejects the signs and
/// leading whitespace that strtol/strtoull would otherwise skip (an
/// accidental "-1" or " -1" must not silently wrap to something huge).
bool AllDigits(const std::string& s) {
  return !s.empty() && s.find_first_not_of("0123456789") == std::string::npos;
}

}  // namespace

bool ParsePositiveInt(const std::string& s, int* out) {
  if (!AllDigits(s)) return false;
  errno = 0;
  long v = std::strtol(s.c_str(), nullptr, 10);
  if (errno == ERANGE || v <= 0 || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (!AllDigits(s)) return false;
  errno = 0;
  unsigned long long v = std::strtoull(s.c_str(), nullptr, 10);
  if (errno == ERANGE) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseProbability(const std::string& s, double* out) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  // The negated-range form also rejects NaN, which compares false to
  // everything and would otherwise sail through `v < 0 || v > 1`.
  if (end == s.c_str() || *end != '\0' || !(v >= 0.0 && v <= 1.0)) {
    return false;
  }
  *out = v;
  return true;
}

std::vector<std::string> SplitTrimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : Split(s, sep)) {
    std::string item(Trim(piece));
    if (!item.empty()) out.push_back(std::move(item));
  }
  return out;
}

}  // namespace rescq
