#ifndef RESCQ_UTIL_FNV_H_
#define RESCQ_UTIL_FNV_H_

#include <cstdint>
#include <string>

namespace rescq {

/// Incremental 64-bit FNV-1a — the one hash used for structural
/// fingerprints (plan cache display keys, database fingerprints), so
/// the algorithm cannot silently diverge between call sites.
class Fnv1a {
 public:
  void MixByte(unsigned char b) {
    hash_ ^= b;
    hash_ *= 0x100000001b3ULL;
  }

  /// Mixes the string plus a separator byte, so "ab"+"c" != "a"+"bc".
  void MixString(const std::string& s) {
    for (char c : s) MixByte(static_cast<unsigned char>(c));
    MixByte(0xff);
  }

  /// Mixes a 32-bit word, little-endian byte order.
  void MixU32(uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      MixByte(static_cast<unsigned char>((v >> shift) & 0xff));
    }
  }

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

/// 16-hex-digit FNV-1a digest of one string (no separator).
std::string Fnv1aHex(const std::string& s);

}  // namespace rescq

#endif  // RESCQ_UTIL_FNV_H_
