#ifndef RESCQ_UTIL_DISJOINT_SET_H_
#define RESCQ_UTIL_DISJOINT_SET_H_

#include <numeric>
#include <vector>

namespace rescq {

/// Union-find with path halving and union by size.
class DisjointSet {
 public:
  explicit DisjointSet(int n)
      : parent_(static_cast<size_t>(n)), size_(static_cast<size_t>(n), 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] =
          parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  /// Returns true if the two elements were in different sets.
  bool Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (size_[static_cast<size_t>(a)] < size_[static_cast<size_t>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<size_t>(b)] = a;
    size_[static_cast<size_t>(a)] += size_[static_cast<size_t>(b)];
    return true;
  }

  bool Same(int a, int b) { return Find(a) == Find(b); }

  int NumElements() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace rescq

#endif  // RESCQ_UTIL_DISJOINT_SET_H_
