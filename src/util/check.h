#ifndef RESCQ_UTIL_CHECK_H_
#define RESCQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking for programmer errors. The library does not use
// exceptions (data errors are reported through optional/expected-style
// returns); a failed RESCQ_CHECK indicates a bug and aborts with a message.

#define RESCQ_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RESCQ_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RESCQ_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RESCQ_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, (msg));                       \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RESCQ_CHECK_EQ(a, b) RESCQ_CHECK((a) == (b))
#define RESCQ_CHECK_NE(a, b) RESCQ_CHECK((a) != (b))
#define RESCQ_CHECK_LT(a, b) RESCQ_CHECK((a) < (b))
#define RESCQ_CHECK_LE(a, b) RESCQ_CHECK((a) <= (b))
#define RESCQ_CHECK_GT(a, b) RESCQ_CHECK((a) > (b))
#define RESCQ_CHECK_GE(a, b) RESCQ_CHECK((a) >= (b))

#endif  // RESCQ_UTIL_CHECK_H_
