#ifndef RESCQ_DB_DATABASE_H_
#define RESCQ_DB_DATABASE_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/value.h"
#include "util/fnv.h"

namespace rescq {

/// A database instance: a set of named relations over an interned value
/// domain. Tuples can be *deactivated* (simulating deletion) and
/// reactivated; ids stay stable, which lets contingency sets, witnesses,
/// and solvers refer to tuples across deletions.
class Database {
 public:
  Database() = default;

  // --- Domain -------------------------------------------------------------

  /// Interns a named constant, returning its Value (idempotent).
  Value Intern(const std::string& name);

  /// Convenience: interns "prefix_i".
  Value InternIndexed(const std::string& prefix, int i);

  const std::string& ValueName(Value v) const;
  int domain_size() const { return static_cast<int>(value_names_.size()); }

  // --- Relations ----------------------------------------------------------

  /// Returns the relation's index, creating it if needed.
  int AddRelation(const std::string& name, int arity);

  /// Index of the named relation, or -1.
  int RelationId(const std::string& name) const;

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::string& relation_name(int rel) const;
  int relation_arity(int rel) const;

  // --- Tuples ---------------------------------------------------------------

  /// Inserts a tuple (creating the relation on first use); duplicate
  /// inserts return the existing id. The tuple starts active.
  TupleId AddTuple(const std::string& relation,
                   const std::vector<Value>& values);

  /// Looks up an existing tuple, active or not.
  std::optional<TupleId> FindTuple(const std::string& relation,
                                   const std::vector<Value>& values) const;

  int NumRows(int rel) const;
  const std::vector<Value>& Row(TupleId id) const;
  bool IsActive(TupleId id) const;
  void SetActive(TupleId id, bool active);
  void ActivateAll();

  /// Total active tuples across all relations.
  int NumActiveTuples() const;

  /// All active tuple ids of a relation.
  std::vector<TupleId> ActiveTuples(int rel) const;

  /// Human-readable "R(a,b)".
  std::string TupleToString(TupleId id) const;

 private:
  // FNV-1a over the value ids (the shared util/fnv implementation) —
  // the exact-match row index is on the update hot path (every
  // insert/delete resolves through it), so rows hash directly instead
  // of being serialized into string keys.
  struct RowHash {
    size_t operator()(const std::vector<Value>& values) const {
      Fnv1a h;
      for (Value v : values) h.MixU32(static_cast<uint32_t>(v));
      return static_cast<size_t>(h.digest());
    }
  };

  struct RelationData {
    std::string name;
    int arity = 0;
    std::vector<std::vector<Value>> rows;
    std::vector<bool> active;
    // Exact-match index for FindTuple / duplicate suppression.
    std::unordered_map<std::vector<Value>, int, RowHash> row_index;
  };

  std::vector<std::string> value_names_;
  std::unordered_map<std::string, Value> value_ids_;
  std::vector<RelationData> relations_;
  std::unordered_map<std::string, int> relation_ids_;
};

}  // namespace rescq

#endif  // RESCQ_DB_DATABASE_H_
