#include "db/witness.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rescq {

std::vector<std::vector<TupleId>> WitnessFamily::Materialize() const {
  std::vector<std::vector<TupleId>> out;
  out.reserve(sets.size());
  for (size_t i = 0; i < sets.size(); ++i) out.push_back(set(i));
  return out;
}

uint64_t WitnessFamily::ApproxBytes() const {
  return arena.ApproxBytes() +
         static_cast<uint64_t>(sets.capacity()) * sizeof(SetSpan);
}

namespace {

using TupleIdSet = std::unordered_set<TupleId, TupleIdHash>;

// One posting list: a chain of segments inside the enumerator's shared
// row pool. A segment at pool offset s is [next, cap, row...] — `next`
// the offset of the following segment (-1 at the tail), `cap` its row
// capacity. Chains grow geometrically, so a value with many rows costs
// O(log rows) segments and a value with few costs one tiny one; rows
// iterate in append order, exactly the order the legacy per-value
// std::vector produced.
struct Posting {
  int32_t count = 0;      // rows in the chain
  int32_t head = -1;      // first segment offset, -1 = empty
  int32_t tail = -1;      // last segment offset
  int32_t tail_used = 0;  // rows used in the tail segment
};

constexpr int32_t kFirstSegmentRows = 4;
constexpr int32_t kMaxSegmentRows = 1024;

// Per-relation index: for each column, value -> posting chain (active
// rows are not distinguished here; activity is checked at probe time so
// the index can be built once per enumeration).
struct ColumnIndex {
  std::vector<std::unordered_map<Value, Posting>> by_column;
};

// Streaming witness enumerator. Prepare() resolves relations and builds
// the column indexes once; RunAll() enumerates every witness, and
// RunPinned() enumerates only witnesses whose *first* changed atom (in
// query order) is a given (atom, tuple) pair — the building block of
// ForEachDeltaWitness, sharing the prepared indexes across pins.
struct Enumerator {
  Enumerator(const Query& query, const Database& database)
      : q(query), db(database) {}

  const Query& q;
  const Database& db;

  std::vector<int> atom_rel;              // db relation id per atom
  std::vector<ColumnIndex> indexes;       // per db relation id
  std::vector<int32_t> pool;              // shared posting-segment pool
  size_t posting_keys = 0;                // live (column, value) postings
  std::vector<int> order;                 // atom visit order
  std::vector<Value> binding;             // per VarId, -1 if unbound
  std::vector<TupleId> matched;           // per atom (query order)
  Witness scratch;                        // reused between Emit calls
  WitnessVisitor visit;
  // Delta pinning: atom `pinned_atom` must match exactly `pinned_tuple`,
  // and atoms before it (query order) must avoid every tuple in
  // `changed` — so each incident witness is emitted by exactly one pin.
  int pinned_atom = -1;
  TupleId pinned_tuple;
  const TupleIdSet* changed = nullptr;
  bool order_cached = false;

  // Scratch reused across runs: delta maintenance fires thousands of
  // tiny pinned runs per epoch, so per-run allocations add up.
  std::vector<bool> placed_scratch;
  std::vector<bool> var_bound_scratch;
  std::vector<std::vector<VarId>> newly_bound_stack;  // per recursion depth

  bool prepared = false;
  std::vector<int> indexed_rows;  // per db relation id: rows indexed so far

  void AppendRow(Posting& p, int32_t row) {
    if (p.tail < 0 ||
        p.tail_used == pool[static_cast<size_t>(p.tail) + 1]) {
      const int32_t cap =
          p.tail < 0 ? kFirstSegmentRows
                     : std::min<int32_t>(
                           2 * pool[static_cast<size_t>(p.tail) + 1],
                           kMaxSegmentRows);
      const int32_t seg = static_cast<int32_t>(pool.size());
      pool.push_back(-1);   // next
      pool.push_back(cap);  // capacity
      pool.resize(pool.size() + static_cast<size_t>(cap));
      if (p.tail < 0) {
        p.head = seg;
      } else {
        pool[static_cast<size_t>(p.tail)] = seg;
      }
      p.tail = seg;
      p.tail_used = 0;
    }
    pool[static_cast<size_t>(p.tail) + 2 +
         static_cast<size_t>(p.tail_used)] = row;
    ++p.tail_used;
    ++p.count;
  }

  void IndexRow(ColumnIndex& idx, int rel, int row) {
    const std::vector<Value>& t = db.Row(TupleId{rel, row});
    const int arity = db.relation_arity(rel);
    for (int c = 0; c < arity; ++c) {
      auto [it, inserted] =
          idx.by_column[static_cast<size_t>(c)].emplace(
              t[static_cast<size_t>(c)], Posting{});
      if (inserted) ++posting_keys;
      AppendRow(it->second, row);
    }
  }

  /// False when some query relation is absent or has the wrong arity in
  /// the database: no witness can exist and no Run* call is needed.
  /// Retryable — an update stream may create the relation later.
  bool Prepare() {
    atom_rel.resize(static_cast<size_t>(q.num_atoms()));
    for (int i = 0; i < q.num_atoms(); ++i) {
      int rel = db.RelationId(q.atom(i).relation);
      if (rel < 0) return false;
      if (db.relation_arity(rel) != q.atom(i).arity()) return false;
      atom_rel[static_cast<size_t>(i)] = rel;
    }
    BuildIndexes();
    prepared = true;
    return true;
  }

  /// Appends rows added since BuildIndexes / the last sync to the
  /// posting lists (only for relations the query touches); retries the
  /// full Prepare when it failed before.
  void SyncIndexes() {
    if (!prepared) {
      Prepare();
      return;
    }
    std::set<int> needed(atom_rel.begin(), atom_rel.end());
    for (int rel : needed) {
      ColumnIndex& idx = indexes[static_cast<size_t>(rel)];
      for (int row = indexed_rows[static_cast<size_t>(rel)];
           row < db.NumRows(rel); ++row) {
        IndexRow(idx, rel, row);
      }
      indexed_rows[static_cast<size_t>(rel)] = db.NumRows(rel);
    }
  }

  bool RunAll(WitnessVisitor v) {
    visit = v;
    pinned_atom = -1;
    changed = nullptr;
    order_cached = false;
    BuildOrder();
    binding.assign(static_cast<size_t>(q.num_vars()), -1);
    matched.assign(static_cast<size_t>(q.num_atoms()), TupleId{});
    if (newly_bound_stack.size() < static_cast<size_t>(q.num_atoms())) {
      newly_bound_stack.resize(static_cast<size_t>(q.num_atoms()));
    }
    return Recurse(0);
  }

  bool RunPinned(int atom, TupleId tuple, const TupleIdSet& changed_set,
                 WitnessVisitor v) {
    visit = v;
    pinned_tuple = tuple;
    changed = &changed_set;
    if (pinned_atom != atom || !order_cached) {
      // The visit order depends only on the pinned atom (row counts are
      // fixed within one delta call), so consecutive pins of one atom —
      // the common case, RunDelta iterates atom-major — reuse it.
      pinned_atom = atom;
      BuildOrder();
      order_cached = true;
    }
    binding.assign(static_cast<size_t>(q.num_vars()), -1);
    matched.assign(static_cast<size_t>(q.num_atoms()), TupleId{});
    // Sized up front: a resize mid-recursion would dangle the per-frame
    // references into it.
    if (newly_bound_stack.size() < static_cast<size_t>(q.num_atoms())) {
      newly_bound_stack.resize(static_cast<size_t>(q.num_atoms()));
    }
    return Recurse(0);
  }

  /// Row counts changed (or a fresh delta call begins): cached visit
  /// orders are stale.
  void InvalidateOrder() { order_cached = false; }

  void BuildOrder() {
    // Greedy: start from the atom with the fewest rows, then repeatedly
    // take the connected atom with the fewest rows (connected = shares a
    // variable with an already-ordered atom). A pinned atom goes first —
    // it has exactly one candidate tuple, making it the most selective
    // anchor possible.
    int n = q.num_atoms();
    order.clear();
    placed_scratch.assign(static_cast<size_t>(n), false);
    var_bound_scratch.assign(static_cast<size_t>(q.num_vars()), false);
    std::vector<bool>& placed = placed_scratch;
    std::vector<bool>& var_bound = var_bound_scratch;
    if (pinned_atom >= 0) {
      placed[static_cast<size_t>(pinned_atom)] = true;
      for (VarId v : q.atom(pinned_atom).vars) {
        var_bound[static_cast<size_t>(v)] = true;
      }
      order.push_back(pinned_atom);
    }
    for (int step = static_cast<int>(order.size()); step < n; ++step) {
      int best = -1;
      bool best_connected = false;
      int best_rows = 0;
      for (int i = 0; i < n; ++i) {
        if (placed[static_cast<size_t>(i)]) continue;
        bool connected = false;
        for (VarId v : q.atom(i).vars) {
          if (var_bound[static_cast<size_t>(v)]) connected = true;
        }
        int rows = db.NumRows(atom_rel[static_cast<size_t>(i)]);
        if (best == -1 || (connected && !best_connected) ||
            (connected == best_connected && rows < best_rows)) {
          best = i;
          best_connected = connected;
          best_rows = rows;
        }
      }
      placed[static_cast<size_t>(best)] = true;
      for (VarId v : q.atom(best).vars) var_bound[static_cast<size_t>(v)] = true;
      order.push_back(best);
    }
  }

  void BuildIndexes() {
    indexes.assign(static_cast<size_t>(db.num_relations()), ColumnIndex{});
    indexed_rows.assign(static_cast<size_t>(db.num_relations()), 0);
    pool.clear();
    posting_keys = 0;
    std::set<int> needed(atom_rel.begin(), atom_rel.end());
    for (int rel : needed) {
      ColumnIndex& idx = indexes[static_cast<size_t>(rel)];
      idx.by_column.resize(static_cast<size_t>(db.relation_arity(rel)));
      for (int row = 0; row < db.NumRows(rel); ++row) {
        IndexRow(idx, rel, row);
      }
      indexed_rows[static_cast<size_t>(rel)] = db.NumRows(rel);
    }
  }

  // Returns false to stop enumeration (the callback asked to).
  bool Recurse(size_t depth) {
    if (depth == order.size()) return Emit();
    int ai = order[depth];
    const Atom& atom = q.atom(ai);
    int rel = atom_rel[static_cast<size_t>(ai)];

    // Unify-and-descend for one candidate row; returns false to abort
    // the whole enumeration (callback stop), true to keep going.
    auto try_row = [&](int row) -> bool {
      TupleId id{rel, row};
      if (!db.IsActive(id)) return true;
      // Delta dedup: the pinned atom must be the first (query-order)
      // atom matching a changed tuple, so earlier atoms avoid them all.
      if (changed != nullptr && ai < pinned_atom && changed->count(id) > 0) {
        return true;
      }
      const std::vector<Value>& t = db.Row(id);
      std::vector<VarId>& newly_bound = newly_bound_stack[depth];
      newly_bound.clear();
      bool ok = true;
      for (int c = 0; c < atom.arity() && ok; ++c) {
        VarId v = atom.vars[static_cast<size_t>(c)];
        Value cur = binding[static_cast<size_t>(v)];
        if (cur == -1) {
          binding[static_cast<size_t>(v)] = t[static_cast<size_t>(c)];
          newly_bound.push_back(v);
        } else if (cur != t[static_cast<size_t>(c)]) {
          ok = false;
        }
      }
      bool keep_going = true;
      if (ok) {
        matched[static_cast<size_t>(ai)] = id;
        keep_going = Recurse(depth + 1);
      }
      for (VarId v : newly_bound) binding[static_cast<size_t>(v)] = -1;
      return keep_going;
    };

    // Probe the index on the bound column with the smallest posting
    // chain — any bound column is sound, the smallest one is the fewest
    // candidate rows to unify. A bound value absent from its column
    // means no row can match at all. With no bound column, scan. A
    // pinned atom has exactly one candidate row.
    if (ai == pinned_atom) {
      return try_row(pinned_tuple.row);
    }
    const Posting* posting = nullptr;
    for (int c = 0; c < atom.arity(); ++c) {
      Value v =
          binding[static_cast<size_t>(atom.vars[static_cast<size_t>(c)])];
      if (v == -1) continue;
      const auto& column =
          indexes[static_cast<size_t>(rel)].by_column[static_cast<size_t>(c)];
      auto it = column.find(v);
      if (it == column.end()) return true;  // no matching row exists
      if (posting == nullptr || it->second.count < posting->count) {
        posting = &it->second;
      }
    }
    if (posting != nullptr) {
      for (int32_t seg = posting->head; seg >= 0;
           seg = pool[static_cast<size_t>(seg)]) {
        const int32_t used = seg == posting->tail
                                 ? posting->tail_used
                                 : pool[static_cast<size_t>(seg) + 1];
        for (int32_t i = 0; i < used; ++i) {
          if (!try_row(pool[static_cast<size_t>(seg) + 2 +
                            static_cast<size_t>(i)])) {
            return false;
          }
        }
      }
      return true;
    }
    for (int r = 0; r < db.NumRows(rel); ++r) {
      if (!try_row(r)) return false;
    }
    return true;
  }

  // Geometry-based heap accounting (obs/memstats.h): the posting pool is
  // one tracked arena and the per-column maps are approximated from the
  // tracked key count, so this is O(relations + atoms) bookkeeping, not
  // a walk of the postings — cheap enough to read per probe.
  size_t ApproxBytes() const {
    uint64_t bytes = obs::VectorBytes(pool) + obs::VectorBytes(indexes);
    for (const ColumnIndex& idx : indexes) {
      bytes += obs::VectorBytes(idx.by_column);
    }
    // Per (column, value) key: the map's value_type, two pointers of
    // node overhead, and ~one bucket slot (libstdc++ keeps the load
    // factor near 1) — the HashContainerBytes convention, from the
    // tracked count instead of a map walk.
    bytes += static_cast<uint64_t>(posting_keys) *
             (sizeof(std::pair<const Value, Posting>) + 3 * sizeof(void*));
    bytes += obs::VectorBytes(atom_rel) + obs::VectorBytes(indexed_rows) +
             obs::VectorBytes(order) + obs::VectorBytes(binding) +
             obs::VectorBytes(matched) + obs::VectorBytes(placed_scratch) +
             obs::VectorBytes(var_bound_scratch) +
             obs::NestedVectorBytes(newly_bound_stack) +
             obs::VectorBytes(scratch.assignment) +
             obs::VectorBytes(scratch.atom_tuples) +
             obs::VectorBytes(scratch.endo_tuples);
    return static_cast<size_t>(bytes);
  }

  bool Emit() {
    scratch.assignment = binding;
    scratch.atom_tuples = matched;
    scratch.endo_tuples.clear();
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (!q.atom(i).exogenous) {
        scratch.endo_tuples.push_back(matched[static_cast<size_t>(i)]);
      }
    }
    std::sort(scratch.endo_tuples.begin(), scratch.endo_tuples.end());
    scratch.endo_tuples.erase(
        std::unique(scratch.endo_tuples.begin(), scratch.endo_tuples.end()),
        scratch.endo_tuples.end());
    return visit(scratch);
  }
};

// Pin-loop shared by the one-shot ForEachDeltaWitness and
// WitnessIndex::ForEachDelta; `e` must be prepared.
bool RunDelta(Enumerator& e, const std::vector<TupleId>& changed,
              WitnessVisitor visit) {
  // Deduplicate and order the changed tuples: the pin loop must try each
  // tuple once, and a deterministic order keeps enumeration reproducible.
  TupleIdSet changed_set(changed.begin(), changed.end());
  std::vector<TupleId> pins(changed_set.begin(), changed_set.end());
  std::sort(pins.begin(), pins.end());
  // Atom-major so consecutive pins share one cached visit order.
  e.InvalidateOrder();
  for (int i = 0; i < e.q.num_atoms(); ++i) {
    for (TupleId t : pins) {
      if (e.atom_rel[static_cast<size_t>(i)] != t.relation) continue;
      if (!e.db.IsActive(t)) continue;
      if (!e.RunPinned(i, t, changed_set, visit)) return false;
    }
  }
  return true;
}

}  // namespace

bool ForEachWitness(const Query& q, const Database& db, WitnessVisitor visit) {
  Enumerator e{q, db};
  if (!e.Prepare()) return true;  // a missing relation means no witnesses
  return e.RunAll(visit);
}

bool ForEachDeltaWitness(const Query& q, const Database& db,
                         const std::vector<TupleId>& changed,
                         WitnessVisitor visit) {
  if (changed.empty()) return true;
  Enumerator e{q, db};
  if (!e.Prepare()) return true;
  return RunDelta(e, changed, visit);
}

struct WitnessIndex::Impl {
  Impl(const Query& q, const Database& db) : e(q, db) { e.Prepare(); }
  Enumerator e;
};

WitnessIndex::WitnessIndex(const Query& q, const Database& db)
    : impl_(new Impl(q, db)) {}

WitnessIndex::~WitnessIndex() = default;

void WitnessIndex::SyncNewRows() { impl_->e.SyncIndexes(); }

bool WitnessIndex::ForEach(WitnessVisitor visit) {
  if (!impl_->e.prepared) return true;
  return impl_->e.RunAll(visit);
}

bool WitnessIndex::ForEachDelta(const std::vector<TupleId>& changed,
                                WitnessVisitor visit) {
  if (!impl_->e.prepared || changed.empty()) return true;
  return RunDelta(impl_->e, changed, visit);
}

size_t WitnessIndex::ApproxBytes() const { return impl_->e.ApproxBytes(); }

std::vector<Witness> EnumerateWitnesses(const Query& q, const Database& db,
                                        size_t limit) {
  std::vector<Witness> out;
  if (limit == 0) return out;
  ForEachWitness(q, db, [&](const Witness& w) {
    out.push_back(w);
    return out.size() < limit;
  });
  return out;
}

bool QueryHolds(const Query& q, const Database& db) {
  return !ForEachWitness(q, db, [](const Witness&) { return false; });
}

WitnessFamily CollectWitnessFamily(const Query& q, const Database& db,
                                   size_t witness_limit) {
  obs::Span span("enumerate", "witness");
  WitnessFamily family;
  ForEachWitness(q, db, [&](const Witness& w) {
    if (family.witnesses >= witness_limit) {
      // Only trips when a witness beyond the budget actually exists: an
      // instance with exactly `witness_limit` witnesses is complete.
      family.budget_exceeded = true;
      return false;
    }
    ++family.witnesses;
    if (w.endo_tuples.empty()) {
      // Unbreakable: no endogenous deletion kills this witness, so the
      // rest of the family is irrelevant — stop enumerating.
      family.unbreakable = true;
      return false;
    }
    family.arena.Intern(w.endo_tuples.data(), w.endo_tuples.size());
    return true;
  });
  // The interner assigns ids in first-appearance order; the family
  // surface is sorted lexicographically by content, the order the
  // legacy std::set<std::vector<TupleId>> produced (the fuzz sweeps
  // hold the two representations element-identical).
  family.sets.reserve(family.arena.num_spans());
  for (uint32_t id = 0; id < family.arena.num_spans(); ++id) {
    family.sets.push_back(family.arena.span(id));
  }
  std::sort(family.sets.begin(), family.sets.end(),
            [&](SetSpan a, SetSpan b) {
              return std::lexicographical_compare(
                  family.arena.data(a), family.arena.data(a) + a.len,
                  family.arena.data(b), family.arena.data(b) + b.len);
            });
  obs::Count("witness.enumerated", family.witnesses);
  obs::Count("witness.families");
  return family;
}

std::vector<std::vector<TupleId>> WitnessTupleSets(const Query& q,
                                                   const Database& db) {
  std::set<std::vector<TupleId>> sets;
  ForEachWitness(q, db, [&](const Witness& w) {
    sets.insert(w.endo_tuples);
    return true;
  });
  return std::vector<std::vector<TupleId>>(sets.begin(), sets.end());
}

}  // namespace rescq
