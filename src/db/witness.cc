#include "db/witness.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "util/check.h"

namespace rescq {

namespace {

// Per-relation index: for each column, value -> row ids (active rows are
// not distinguished here; activity is checked at probe time so the index
// can be built once per enumeration).
struct ColumnIndex {
  // maps (column, value) -> rows
  std::vector<std::unordered_map<Value, std::vector<int>>> by_column;
};

struct Enumerator {
  const Query& q;
  const Database& db;
  const std::function<bool(const Witness&)>& visit;

  std::vector<int> atom_rel;              // db relation id per atom
  std::vector<int> order;                 // atom visit order
  std::vector<Value> binding;             // per VarId, -1 if unbound
  std::vector<TupleId> matched;           // per atom (query order)
  std::vector<ColumnIndex> indexes;       // per db relation id
  Witness scratch;                        // reused between Emit calls

  bool Run() {
    // Resolve relations; a missing relation means no witnesses.
    atom_rel.resize(static_cast<size_t>(q.num_atoms()));
    for (int i = 0; i < q.num_atoms(); ++i) {
      int rel = db.RelationId(q.atom(i).relation);
      if (rel < 0) return true;
      if (db.relation_arity(rel) != q.atom(i).arity()) return true;
      atom_rel[static_cast<size_t>(i)] = rel;
    }
    BuildOrder();
    BuildIndexes();
    binding.assign(static_cast<size_t>(q.num_vars()), -1);
    matched.assign(static_cast<size_t>(q.num_atoms()), TupleId{});
    return Recurse(0);
  }

  void BuildOrder() {
    // Greedy: start from the atom with the fewest rows, then repeatedly
    // take the connected atom with the fewest rows (connected = shares a
    // variable with an already-ordered atom).
    int n = q.num_atoms();
    std::vector<bool> placed(static_cast<size_t>(n), false);
    std::vector<bool> var_bound(static_cast<size_t>(q.num_vars()), false);
    for (int step = 0; step < n; ++step) {
      int best = -1;
      bool best_connected = false;
      int best_rows = 0;
      for (int i = 0; i < n; ++i) {
        if (placed[static_cast<size_t>(i)]) continue;
        bool connected = false;
        for (VarId v : q.atom(i).vars) {
          if (var_bound[static_cast<size_t>(v)]) connected = true;
        }
        int rows = db.NumRows(atom_rel[static_cast<size_t>(i)]);
        if (best == -1 || (connected && !best_connected) ||
            (connected == best_connected && rows < best_rows)) {
          best = i;
          best_connected = connected;
          best_rows = rows;
        }
      }
      placed[static_cast<size_t>(best)] = true;
      for (VarId v : q.atom(best).vars) var_bound[static_cast<size_t>(v)] = true;
      order.push_back(best);
    }
  }

  void BuildIndexes() {
    indexes.resize(static_cast<size_t>(db.num_relations()));
    std::set<int> needed(atom_rel.begin(), atom_rel.end());
    for (int rel : needed) {
      ColumnIndex& idx = indexes[static_cast<size_t>(rel)];
      int arity = db.relation_arity(rel);
      idx.by_column.resize(static_cast<size_t>(arity));
      for (int row = 0; row < db.NumRows(rel); ++row) {
        const std::vector<Value>& t = db.Row(TupleId{rel, row});
        for (int c = 0; c < arity; ++c) {
          idx.by_column[static_cast<size_t>(c)][t[static_cast<size_t>(c)]]
              .push_back(row);
        }
      }
    }
  }

  // Returns false to stop enumeration (the callback asked to).
  bool Recurse(size_t depth) {
    if (depth == order.size()) return Emit();
    int ai = order[depth];
    const Atom& atom = q.atom(ai);
    int rel = atom_rel[static_cast<size_t>(ai)];

    // Probe the index on the bound column with the smallest posting
    // list — any bound column is sound, the smallest one is the fewest
    // candidate rows to unify. A bound value absent from its column
    // means no row can match at all. With no bound column, scan.
    const std::vector<int>* rows = nullptr;
    std::vector<int> all_rows;
    for (int c = 0; c < atom.arity(); ++c) {
      Value v = binding[static_cast<size_t>(atom.vars[static_cast<size_t>(c)])];
      if (v == -1) continue;
      const auto& column =
          indexes[static_cast<size_t>(rel)].by_column[static_cast<size_t>(c)];
      auto it = column.find(v);
      if (it == column.end()) return true;  // no matching row exists
      if (rows == nullptr || it->second.size() < rows->size()) {
        rows = &it->second;
      }
    }
    if (rows == nullptr) {
      all_rows.resize(static_cast<size_t>(db.NumRows(rel)));
      for (int r = 0; r < db.NumRows(rel); ++r) {
        all_rows[static_cast<size_t>(r)] = r;
      }
      rows = &all_rows;
    }

    for (int row : *rows) {
      TupleId id{rel, row};
      if (!db.IsActive(id)) continue;
      const std::vector<Value>& t = db.Row(id);
      // Unify.
      std::vector<VarId> newly_bound;
      bool ok = true;
      for (int c = 0; c < atom.arity() && ok; ++c) {
        VarId v = atom.vars[static_cast<size_t>(c)];
        Value cur = binding[static_cast<size_t>(v)];
        if (cur == -1) {
          binding[static_cast<size_t>(v)] = t[static_cast<size_t>(c)];
          newly_bound.push_back(v);
        } else if (cur != t[static_cast<size_t>(c)]) {
          ok = false;
        }
      }
      if (ok) {
        matched[static_cast<size_t>(ai)] = id;
        if (!Recurse(depth + 1)) return false;
      }
      for (VarId v : newly_bound) binding[static_cast<size_t>(v)] = -1;
    }
    return true;
  }

  bool Emit() {
    scratch.assignment = binding;
    scratch.atom_tuples = matched;
    scratch.endo_tuples.clear();
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (!q.atom(i).exogenous) {
        scratch.endo_tuples.push_back(matched[static_cast<size_t>(i)]);
      }
    }
    std::sort(scratch.endo_tuples.begin(), scratch.endo_tuples.end());
    scratch.endo_tuples.erase(
        std::unique(scratch.endo_tuples.begin(), scratch.endo_tuples.end()),
        scratch.endo_tuples.end());
    return visit(scratch);
  }
};

}  // namespace

bool ForEachWitness(const Query& q, const Database& db,
                    const std::function<bool(const Witness&)>& visit) {
  Enumerator e{q, db, visit, {}, {}, {}, {}, {}, {}};
  return e.Run();
}

std::vector<Witness> EnumerateWitnesses(const Query& q, const Database& db,
                                        size_t limit) {
  std::vector<Witness> out;
  if (limit == 0) return out;
  ForEachWitness(q, db, [&](const Witness& w) {
    out.push_back(w);
    return out.size() < limit;
  });
  return out;
}

bool QueryHolds(const Query& q, const Database& db) {
  return !ForEachWitness(q, db, [](const Witness&) { return false; });
}

WitnessFamily CollectWitnessFamily(const Query& q, const Database& db,
                                   size_t witness_limit) {
  WitnessFamily family;
  std::set<std::vector<TupleId>> sets;
  ForEachWitness(q, db, [&](const Witness& w) {
    if (family.witnesses >= witness_limit) {
      // Only trips when a witness beyond the budget actually exists: an
      // instance with exactly `witness_limit` witnesses is complete.
      family.budget_exceeded = true;
      return false;
    }
    ++family.witnesses;
    if (w.endo_tuples.empty()) {
      // Unbreakable: no endogenous deletion kills this witness, so the
      // rest of the family is irrelevant — stop enumerating.
      family.unbreakable = true;
      return false;
    }
    sets.insert(w.endo_tuples);
    return true;
  });
  family.sets.assign(sets.begin(), sets.end());
  return family;
}

std::vector<std::vector<TupleId>> WitnessTupleSets(const Query& q,
                                                   const Database& db) {
  std::set<std::vector<TupleId>> sets;
  ForEachWitness(q, db, [&](const Witness& w) {
    sets.insert(w.endo_tuples);
    return true;
  });
  return std::vector<std::vector<TupleId>>(sets.begin(), sets.end());
}

}  // namespace rescq
