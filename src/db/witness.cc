#include "db/witness.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "obs/memstats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace rescq {

namespace {

using TupleIdSet = std::unordered_set<TupleId, TupleIdHash>;

// Per-relation index: for each column, value -> row ids (active rows are
// not distinguished here; activity is checked at probe time so the index
// can be built once per enumeration).
struct ColumnIndex {
  // maps (column, value) -> rows
  std::vector<std::unordered_map<Value, std::vector<int>>> by_column;
};

// Streaming witness enumerator. Prepare() resolves relations and builds
// the column indexes once; RunAll() enumerates every witness, and
// RunPinned() enumerates only witnesses whose *first* changed atom (in
// query order) is a given (atom, tuple) pair — the building block of
// ForEachDeltaWitness, sharing the prepared indexes across pins.
struct Enumerator {
  Enumerator(const Query& query, const Database& database)
      : q(query), db(database) {}

  const Query& q;
  const Database& db;

  std::vector<int> atom_rel;              // db relation id per atom
  std::vector<ColumnIndex> indexes;       // per db relation id
  std::vector<int> order;                 // atom visit order
  std::vector<Value> binding;             // per VarId, -1 if unbound
  std::vector<TupleId> matched;           // per atom (query order)
  Witness scratch;                        // reused between Emit calls
  const std::function<bool(const Witness&)>* visit = nullptr;
  // Delta pinning: atom `pinned_atom` must match exactly `pinned_tuple`,
  // and atoms before it (query order) must avoid every tuple in
  // `changed` — so each incident witness is emitted by exactly one pin.
  int pinned_atom = -1;
  TupleId pinned_tuple;
  const TupleIdSet* changed = nullptr;
  bool order_cached = false;

  // Scratch reused across runs: delta maintenance fires thousands of
  // tiny pinned runs per epoch, so per-run allocations add up.
  std::vector<bool> placed_scratch;
  std::vector<bool> var_bound_scratch;
  std::vector<std::vector<VarId>> newly_bound_stack;  // per recursion depth

  bool prepared = false;
  std::vector<int> indexed_rows;  // per db relation id: rows indexed so far

  /// False when some query relation is absent or has the wrong arity in
  /// the database: no witness can exist and no Run* call is needed.
  /// Retryable — an update stream may create the relation later.
  bool Prepare() {
    atom_rel.resize(static_cast<size_t>(q.num_atoms()));
    for (int i = 0; i < q.num_atoms(); ++i) {
      int rel = db.RelationId(q.atom(i).relation);
      if (rel < 0) return false;
      if (db.relation_arity(rel) != q.atom(i).arity()) return false;
      atom_rel[static_cast<size_t>(i)] = rel;
    }
    BuildIndexes();
    prepared = true;
    return true;
  }

  /// Appends rows added since BuildIndexes / the last sync to the
  /// posting lists (only for relations the query touches); retries the
  /// full Prepare when it failed before.
  void SyncIndexes() {
    if (!prepared) {
      Prepare();
      return;
    }
    std::set<int> needed(atom_rel.begin(), atom_rel.end());
    for (int rel : needed) {
      ColumnIndex& idx = indexes[static_cast<size_t>(rel)];
      int arity = db.relation_arity(rel);
      for (int row = indexed_rows[static_cast<size_t>(rel)];
           row < db.NumRows(rel); ++row) {
        const std::vector<Value>& t = db.Row(TupleId{rel, row});
        for (int c = 0; c < arity; ++c) {
          idx.by_column[static_cast<size_t>(c)][t[static_cast<size_t>(c)]]
              .push_back(row);
        }
      }
      indexed_rows[static_cast<size_t>(rel)] = db.NumRows(rel);
    }
  }

  bool RunAll(const std::function<bool(const Witness&)>& v) {
    visit = &v;
    pinned_atom = -1;
    changed = nullptr;
    order_cached = false;
    BuildOrder();
    binding.assign(static_cast<size_t>(q.num_vars()), -1);
    matched.assign(static_cast<size_t>(q.num_atoms()), TupleId{});
    if (newly_bound_stack.size() < static_cast<size_t>(q.num_atoms())) {
      newly_bound_stack.resize(static_cast<size_t>(q.num_atoms()));
    }
    return Recurse(0);
  }

  bool RunPinned(int atom, TupleId tuple, const TupleIdSet& changed_set,
                 const std::function<bool(const Witness&)>& v) {
    visit = &v;
    pinned_tuple = tuple;
    changed = &changed_set;
    if (pinned_atom != atom || !order_cached) {
      // The visit order depends only on the pinned atom (row counts are
      // fixed within one delta call), so consecutive pins of one atom —
      // the common case, RunDelta iterates atom-major — reuse it.
      pinned_atom = atom;
      BuildOrder();
      order_cached = true;
    }
    binding.assign(static_cast<size_t>(q.num_vars()), -1);
    matched.assign(static_cast<size_t>(q.num_atoms()), TupleId{});
    // Sized up front: a resize mid-recursion would dangle the per-frame
    // references into it.
    if (newly_bound_stack.size() < static_cast<size_t>(q.num_atoms())) {
      newly_bound_stack.resize(static_cast<size_t>(q.num_atoms()));
    }
    return Recurse(0);
  }

  /// Row counts changed (or a fresh delta call begins): cached visit
  /// orders are stale.
  void InvalidateOrder() { order_cached = false; }

  void BuildOrder() {
    // Greedy: start from the atom with the fewest rows, then repeatedly
    // take the connected atom with the fewest rows (connected = shares a
    // variable with an already-ordered atom). A pinned atom goes first —
    // it has exactly one candidate tuple, making it the most selective
    // anchor possible.
    int n = q.num_atoms();
    order.clear();
    placed_scratch.assign(static_cast<size_t>(n), false);
    var_bound_scratch.assign(static_cast<size_t>(q.num_vars()), false);
    std::vector<bool>& placed = placed_scratch;
    std::vector<bool>& var_bound = var_bound_scratch;
    if (pinned_atom >= 0) {
      placed[static_cast<size_t>(pinned_atom)] = true;
      for (VarId v : q.atom(pinned_atom).vars) {
        var_bound[static_cast<size_t>(v)] = true;
      }
      order.push_back(pinned_atom);
    }
    for (int step = static_cast<int>(order.size()); step < n; ++step) {
      int best = -1;
      bool best_connected = false;
      int best_rows = 0;
      for (int i = 0; i < n; ++i) {
        if (placed[static_cast<size_t>(i)]) continue;
        bool connected = false;
        for (VarId v : q.atom(i).vars) {
          if (var_bound[static_cast<size_t>(v)]) connected = true;
        }
        int rows = db.NumRows(atom_rel[static_cast<size_t>(i)]);
        if (best == -1 || (connected && !best_connected) ||
            (connected == best_connected && rows < best_rows)) {
          best = i;
          best_connected = connected;
          best_rows = rows;
        }
      }
      placed[static_cast<size_t>(best)] = true;
      for (VarId v : q.atom(best).vars) var_bound[static_cast<size_t>(v)] = true;
      order.push_back(best);
    }
  }

  void BuildIndexes() {
    indexes.assign(static_cast<size_t>(db.num_relations()), ColumnIndex{});
    indexed_rows.assign(static_cast<size_t>(db.num_relations()), 0);
    std::set<int> needed(atom_rel.begin(), atom_rel.end());
    for (int rel : needed) {
      ColumnIndex& idx = indexes[static_cast<size_t>(rel)];
      int arity = db.relation_arity(rel);
      idx.by_column.resize(static_cast<size_t>(arity));
      for (int row = 0; row < db.NumRows(rel); ++row) {
        const std::vector<Value>& t = db.Row(TupleId{rel, row});
        for (int c = 0; c < arity; ++c) {
          idx.by_column[static_cast<size_t>(c)][t[static_cast<size_t>(c)]]
              .push_back(row);
        }
      }
      indexed_rows[static_cast<size_t>(rel)] = db.NumRows(rel);
    }
  }

  // Returns false to stop enumeration (the callback asked to).
  bool Recurse(size_t depth) {
    if (depth == order.size()) return Emit();
    int ai = order[depth];
    const Atom& atom = q.atom(ai);
    int rel = atom_rel[static_cast<size_t>(ai)];

    // Probe the index on the bound column with the smallest posting
    // list — any bound column is sound, the smallest one is the fewest
    // candidate rows to unify. A bound value absent from its column
    // means no row can match at all. With no bound column, scan. A
    // pinned atom has exactly one candidate row.
    const std::vector<int>* rows = nullptr;
    std::vector<int> all_rows;
    if (ai == pinned_atom) {
      all_rows.push_back(pinned_tuple.row);
      rows = &all_rows;
    } else {
      for (int c = 0; c < atom.arity(); ++c) {
        Value v =
            binding[static_cast<size_t>(atom.vars[static_cast<size_t>(c)])];
        if (v == -1) continue;
        const auto& column =
            indexes[static_cast<size_t>(rel)].by_column[static_cast<size_t>(c)];
        auto it = column.find(v);
        if (it == column.end()) return true;  // no matching row exists
        if (rows == nullptr || it->second.size() < rows->size()) {
          rows = &it->second;
        }
      }
    }
    if (rows == nullptr) {
      all_rows.resize(static_cast<size_t>(db.NumRows(rel)));
      for (int r = 0; r < db.NumRows(rel); ++r) {
        all_rows[static_cast<size_t>(r)] = r;
      }
      rows = &all_rows;
    }

    for (int row : *rows) {
      TupleId id{rel, row};
      if (!db.IsActive(id)) continue;
      // Delta dedup: the pinned atom must be the first (query-order)
      // atom matching a changed tuple, so earlier atoms avoid them all.
      if (changed != nullptr && ai < pinned_atom && changed->count(id) > 0) {
        continue;
      }
      const std::vector<Value>& t = db.Row(id);
      // Unify.
      std::vector<VarId>& newly_bound = newly_bound_stack[depth];
      newly_bound.clear();
      bool ok = true;
      for (int c = 0; c < atom.arity() && ok; ++c) {
        VarId v = atom.vars[static_cast<size_t>(c)];
        Value cur = binding[static_cast<size_t>(v)];
        if (cur == -1) {
          binding[static_cast<size_t>(v)] = t[static_cast<size_t>(c)];
          newly_bound.push_back(v);
        } else if (cur != t[static_cast<size_t>(c)]) {
          ok = false;
        }
      }
      if (ok) {
        matched[static_cast<size_t>(ai)] = id;
        if (!Recurse(depth + 1)) return false;
      }
      for (VarId v : newly_bound) binding[static_cast<size_t>(v)] = -1;
    }
    return true;
  }

  // Geometry-based heap accounting (obs/memstats.h): dominated by the
  // posting lists, plus the resident per-enumeration scratch.
  size_t ApproxBytes() const {
    uint64_t bytes = obs::VectorBytes(indexes);
    for (const ColumnIndex& idx : indexes) {
      bytes += obs::VectorBytes(idx.by_column);
      for (const auto& column : idx.by_column) {
        bytes += obs::HashContainerBytes(column);
        for (const auto& [value, rows_for_value] : column) {
          bytes += obs::VectorBytes(rows_for_value);
        }
      }
    }
    bytes += obs::VectorBytes(atom_rel) + obs::VectorBytes(indexed_rows) +
             obs::VectorBytes(order) + obs::VectorBytes(binding) +
             obs::VectorBytes(matched) + obs::VectorBytes(placed_scratch) +
             obs::VectorBytes(var_bound_scratch) +
             obs::NestedVectorBytes(newly_bound_stack) +
             obs::VectorBytes(scratch.assignment) +
             obs::VectorBytes(scratch.atom_tuples) +
             obs::VectorBytes(scratch.endo_tuples);
    return static_cast<size_t>(bytes);
  }

  bool Emit() {
    scratch.assignment = binding;
    scratch.atom_tuples = matched;
    scratch.endo_tuples.clear();
    for (int i = 0; i < q.num_atoms(); ++i) {
      if (!q.atom(i).exogenous) {
        scratch.endo_tuples.push_back(matched[static_cast<size_t>(i)]);
      }
    }
    std::sort(scratch.endo_tuples.begin(), scratch.endo_tuples.end());
    scratch.endo_tuples.erase(
        std::unique(scratch.endo_tuples.begin(), scratch.endo_tuples.end()),
        scratch.endo_tuples.end());
    return (*visit)(scratch);
  }
};

// Pin-loop shared by the one-shot ForEachDeltaWitness and
// WitnessIndex::ForEachDelta; `e` must be prepared.
bool RunDelta(Enumerator& e, const std::vector<TupleId>& changed,
              const std::function<bool(const Witness&)>& visit) {
  // Deduplicate and order the changed tuples: the pin loop must try each
  // tuple once, and a deterministic order keeps enumeration reproducible.
  TupleIdSet changed_set(changed.begin(), changed.end());
  std::vector<TupleId> pins(changed_set.begin(), changed_set.end());
  std::sort(pins.begin(), pins.end());
  // Atom-major so consecutive pins share one cached visit order.
  e.InvalidateOrder();
  for (int i = 0; i < e.q.num_atoms(); ++i) {
    for (TupleId t : pins) {
      if (e.atom_rel[static_cast<size_t>(i)] != t.relation) continue;
      if (!e.db.IsActive(t)) continue;
      if (!e.RunPinned(i, t, changed_set, visit)) return false;
    }
  }
  return true;
}

}  // namespace

bool ForEachWitness(const Query& q, const Database& db,
                    const std::function<bool(const Witness&)>& visit) {
  Enumerator e{q, db};
  if (!e.Prepare()) return true;  // a missing relation means no witnesses
  return e.RunAll(visit);
}

bool ForEachDeltaWitness(const Query& q, const Database& db,
                         const std::vector<TupleId>& changed,
                         const std::function<bool(const Witness&)>& visit) {
  if (changed.empty()) return true;
  Enumerator e{q, db};
  if (!e.Prepare()) return true;
  return RunDelta(e, changed, visit);
}

struct WitnessIndex::Impl {
  Impl(const Query& q, const Database& db) : e(q, db) { e.Prepare(); }
  Enumerator e;
};

WitnessIndex::WitnessIndex(const Query& q, const Database& db)
    : impl_(new Impl(q, db)) {}

WitnessIndex::~WitnessIndex() = default;

void WitnessIndex::SyncNewRows() { impl_->e.SyncIndexes(); }

bool WitnessIndex::ForEach(const std::function<bool(const Witness&)>& visit) {
  if (!impl_->e.prepared) return true;
  return impl_->e.RunAll(visit);
}

bool WitnessIndex::ForEachDelta(
    const std::vector<TupleId>& changed,
    const std::function<bool(const Witness&)>& visit) {
  if (!impl_->e.prepared || changed.empty()) return true;
  return RunDelta(impl_->e, changed, visit);
}

size_t WitnessIndex::ApproxBytes() const { return impl_->e.ApproxBytes(); }

std::vector<Witness> EnumerateWitnesses(const Query& q, const Database& db,
                                        size_t limit) {
  std::vector<Witness> out;
  if (limit == 0) return out;
  ForEachWitness(q, db, [&](const Witness& w) {
    out.push_back(w);
    return out.size() < limit;
  });
  return out;
}

bool QueryHolds(const Query& q, const Database& db) {
  return !ForEachWitness(q, db, [](const Witness&) { return false; });
}

WitnessFamily CollectWitnessFamily(const Query& q, const Database& db,
                                   size_t witness_limit) {
  obs::Span span("enumerate", "witness");
  WitnessFamily family;
  std::set<std::vector<TupleId>> sets;
  ForEachWitness(q, db, [&](const Witness& w) {
    if (family.witnesses >= witness_limit) {
      // Only trips when a witness beyond the budget actually exists: an
      // instance with exactly `witness_limit` witnesses is complete.
      family.budget_exceeded = true;
      return false;
    }
    ++family.witnesses;
    if (w.endo_tuples.empty()) {
      // Unbreakable: no endogenous deletion kills this witness, so the
      // rest of the family is irrelevant — stop enumerating.
      family.unbreakable = true;
      return false;
    }
    sets.insert(w.endo_tuples);
    return true;
  });
  family.sets.assign(sets.begin(), sets.end());
  obs::Count("witness.enumerated", family.witnesses);
  obs::Count("witness.families");
  return family;
}

std::vector<std::vector<TupleId>> WitnessTupleSets(const Query& q,
                                                   const Database& db) {
  std::set<std::vector<TupleId>> sets;
  ForEachWitness(q, db, [&](const Witness& w) {
    sets.insert(w.endo_tuples);
    return true;
  });
  return std::vector<std::vector<TupleId>>(sets.begin(), sets.end());
}

}  // namespace rescq
