#include "db/tuple_io.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <vector>

#include "util/string_util.h"

namespace rescq {

namespace {

std::string LineError(const std::string& origin, int lineno,
                      const std::string& message) {
  std::ostringstream out;
  out << origin << ":" << lineno << ": " << message;
  return out.str();
}

}  // namespace

bool ReadTuples(std::istream& in, const std::string& origin, Database* db,
                std::string* error) {
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    size_t open = line.find('(');
    size_t close = line.rfind(')');
    if (open == std::string_view::npos || close != line.size() - 1 ||
        close < open) {
      *error = LineError(origin, lineno, "expected a single fact like R(a,b)");
      return false;
    }
    std::string relation(Trim(line.substr(0, open)));
    if (relation.empty() ||
        !std::isupper(static_cast<unsigned char>(relation[0]))) {
      *error = LineError(origin, lineno, "relation name must start upper-case");
      return false;
    }
    std::vector<Value> row;
    for (const std::string& piece :
         Split(line.substr(open + 1, close - open - 1), ',')) {
      std::string constant(Trim(piece));
      if (constant.empty() ||
          constant.find_first_of("() \t") != std::string::npos) {
        *error = LineError(origin, lineno,
                           "bad constant '" + constant + "' in fact");
        return false;
      }
      row.push_back(db->Intern(constant));
    }
    if (row.empty()) {
      *error = LineError(origin, lineno, "fact has no constants");
      return false;
    }
    // Validate arity here: the input is untrusted, and Database treats an
    // arity mismatch as a programmer error (it aborts).
    int id = db->RelationId(relation);
    if (id >= 0 && db->relation_arity(id) != static_cast<int>(row.size())) {
      std::ostringstream msg;
      msg << "relation '" << relation << "' used with arity " << row.size()
          << ", but earlier facts have arity " << db->relation_arity(id);
      *error = LineError(origin, lineno, msg.str());
      return false;
    }
    db->AddTuple(relation, row);
  }
  return true;
}

bool LoadTupleFile(const std::string& path, Database* db, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open tuple file '" + path + "'";
    return false;
  }
  return ReadTuples(in, path, db, error);
}

void WriteTuples(const Database& db, std::ostream& out,
                 const std::string& header) {
  if (!header.empty()) {
    for (const std::string& line : Split(header, '\n')) {
      out << "# " << line << "\n";
    }
  }
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    for (TupleId id : db.ActiveTuples(rel)) {
      out << db.relation_name(rel) << "(";
      const std::vector<Value>& row = db.Row(id);
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out << ", ";
        out << db.ValueName(row[i]);
      }
      out << ")\n";
    }
  }
}

bool SaveTupleFile(const Database& db, const std::string& path,
                   const std::string& header, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create tuple file '" + path + "'";
    return false;
  }
  WriteTuples(db, out, header);
  return true;
}

}  // namespace rescq
