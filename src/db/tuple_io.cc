#include "db/tuple_io.h"

#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/string_util.h"

namespace rescq {

namespace {

std::string LineError(const std::string& origin, int lineno,
                      const std::string& message) {
  std::ostringstream out;
  out << origin << ":" << lineno << ": " << message;
  return out.str();
}

}  // namespace

bool ParseFactLine(std::string_view line, std::string* relation,
                   std::vector<std::string>* constants, std::string* error) {
  line = Trim(line);
  if (line.empty()) {
    *error = "expected a single fact like R(a,b)";
    return false;
  }
  size_t open = line.find('(');
  size_t close = line.rfind(')');
  if (open == std::string_view::npos || close != line.size() - 1 ||
      close < open) {
    *error = "expected a single fact like R(a,b)";
    return false;
  }
  *relation = std::string(Trim(line.substr(0, open)));
  if (relation->empty() ||
      !std::isupper(static_cast<unsigned char>((*relation)[0]))) {
    *error = "relation name must start upper-case";
    return false;
  }
  constants->clear();
  for (const std::string& piece :
       Split(line.substr(open + 1, close - open - 1), ',')) {
    std::string constant(Trim(piece));
    if (constant.empty() ||
        constant.find_first_of("() \t") != std::string::npos) {
      *error = "bad constant '" + constant + "' in fact";
      return false;
    }
    constants->push_back(std::move(constant));
  }
  if (constants->empty()) {
    *error = "fact has no constants";
    return false;
  }
  return true;
}

bool AddFactChecked(Database* db, const std::string& relation,
                    const std::vector<std::string>& constants,
                    std::string* error) {
  if (relation.empty() || constants.empty()) {
    *error = "fact with an empty relation or no constants";
    return false;
  }
  int id = db->RelationId(relation);
  if (id >= 0 &&
      db->relation_arity(id) != static_cast<int>(constants.size())) {
    std::ostringstream msg;
    msg << "relation '" << relation << "' used with arity "
        << constants.size() << ", but earlier facts have arity "
        << db->relation_arity(id);
    *error = msg.str();
    return false;
  }
  std::vector<Value> row;
  row.reserve(constants.size());
  for (const std::string& constant : constants) {
    row.push_back(db->Intern(constant));
  }
  db->AddTuple(relation, row);
  return true;
}

bool ParseUpdateLine(std::string_view line, Update* update,
                     std::string* error) {
  line = Trim(line);
  if (line.empty() || (line[0] != '+' && line[0] != '-')) {
    *error = "expected '+ R(a,b)' or '- R(a,b)'";
    return false;
  }
  update->kind = line[0] == '+' ? UpdateKind::kInsert : UpdateKind::kDelete;
  return ParseFactLine(line.substr(1), &update->relation, &update->constants,
                       error);
}

bool ReadTuples(std::istream& in, const std::string& origin, Database* db,
                std::string* error) {
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    std::string relation, message;
    std::vector<std::string> constants;
    // Parse, then validate arity before insertion: the input is
    // untrusted, and Database treats an arity mismatch as a programmer
    // error (it aborts).
    if (!ParseFactLine(line, &relation, &constants, &message) ||
        !AddFactChecked(db, relation, constants, &message)) {
      *error = LineError(origin, lineno, message);
      return false;
    }
  }
  return true;
}

bool LoadTupleFile(const std::string& path, Database* db, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open tuple file '" + path + "'";
    return false;
  }
  return ReadTuples(in, path, db, error);
}

void WriteTuples(const Database& db, std::ostream& out,
                 const std::string& header) {
  if (!header.empty()) {
    for (const std::string& line : Split(header, '\n')) {
      out << "# " << line << "\n";
    }
  }
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    for (TupleId id : db.ActiveTuples(rel)) {
      out << db.relation_name(rel) << "(";
      const std::vector<Value>& row = db.Row(id);
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out << ", ";
        out << db.ValueName(row[i]);
      }
      out << ")\n";
    }
  }
}

bool SaveTupleFile(const Database& db, const std::string& path,
                   const std::string& header, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create tuple file '" + path + "'";
    return false;
  }
  WriteTuples(db, out, header);
  return true;
}

bool ReadUpdates(std::istream& in, const std::string& origin, UpdateLog* log,
                 std::string* error) {
  std::string raw;
  int lineno = 0;
  // Arity per relation across the whole log, so a self-inconsistent file
  // is rejected at read time with a line number (a mismatch against a
  // concrete database is ValidateUpdateLog's job).
  std::unordered_map<std::string, size_t> arity;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = Trim(raw);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = Trim(line.substr(0, hash));
    if (line.empty()) continue;

    if (StartsWith(line, "epoch")) {
      // A trailing label is ignored ("epoch 3", "epoch warm-up"); only
      // a fact smuggled onto the marker line is rejected.
      std::string_view rest = Trim(line.substr(5));
      if (rest.find('(') != std::string_view::npos) {
        *error = LineError(origin, lineno,
                           "epoch marker takes at most a label, not a fact");
        return false;
      }
      log->epochs.emplace_back();
      continue;
    }

    Update u;
    std::string message;
    if (!ParseUpdateLine(line, &u, &message)) {
      *error = LineError(
          origin, lineno,
          line[0] != '+' && line[0] != '-'
              ? "expected '+ R(a,b)', '- R(a,b)', or an 'epoch' marker"
              : message);
      return false;
    }
    auto [it, inserted] = arity.emplace(u.relation, u.constants.size());
    if (!inserted && it->second != u.constants.size()) {
      std::ostringstream msg;
      msg << "relation '" << u.relation << "' used with arity "
          << u.constants.size() << ", but earlier updates have arity "
          << it->second;
      *error = LineError(origin, lineno, msg.str());
      return false;
    }
    if (log->epochs.empty()) log->epochs.emplace_back();
    log->epochs.back().updates.push_back(std::move(u));
  }
  return true;
}

bool LoadUpdateFile(const std::string& path, UpdateLog* log,
                    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open update file '" + path + "'";
    return false;
  }
  return ReadUpdates(in, path, log, error);
}

void WriteUpdates(const UpdateLog& log, std::ostream& out,
                  const std::string& header) {
  if (!header.empty()) {
    for (const std::string& line : Split(header, '\n')) {
      out << "# " << line << "\n";
    }
  }
  for (size_t e = 0; e < log.epochs.size(); ++e) {
    out << "epoch " << (e + 1) << "\n";
    for (const Update& u : log.epochs[e].updates) {
      out << (u.kind == UpdateKind::kInsert ? "+ " : "- ") << u.relation
          << "(";
      for (size_t i = 0; i < u.constants.size(); ++i) {
        if (i > 0) out << ", ";
        out << u.constants[i];
      }
      out << ")\n";
    }
  }
}

bool SaveUpdateFile(const UpdateLog& log, const std::string& path,
                    const std::string& header, std::string* error) {
  std::ofstream out(path);
  if (!out) {
    *error = "cannot create update file '" + path + "'";
    return false;
  }
  WriteUpdates(log, out, header);
  return true;
}

}  // namespace rescq
