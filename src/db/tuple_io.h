#ifndef RESCQ_DB_TUPLE_IO_H_
#define RESCQ_DB_TUPLE_IO_H_

#include <iosfwd>
#include <string>

#include "db/database.h"
#include "db/delta.h"

namespace rescq {

/// Parses one "R(a, b)" fact (no comment stripping; surrounding
/// whitespace tolerated) into a relation name and constant names.
/// Returns false with a position-free message on malformed input. The
/// single fact grammar shared by tuple files, update files, and the
/// server's `push` verb — untrusted text never reaches Database without
/// passing through here.
bool ParseFactLine(std::string_view line, std::string* relation,
                   std::vector<std::string>* constants, std::string* error);

/// Adds one already-parsed fact to db, first checking the arity against
/// the relation's existing tuples (Database treats an arity mismatch as
/// a programmer error and aborts, so untrusted facts are vetted here).
/// Returns false with *error set on a mismatch; db is unchanged then.
bool AddFactChecked(Database* db, const std::string& relation,
                    const std::vector<std::string>& constants,
                    std::string* error);

/// Parses one update-file line that is not blank, a comment, or an
/// "epoch" marker: "+ R(a,b)" or "- S(c)" (sign attached or spaced).
/// Returns false with a position-free message on malformed input — the
/// grammar the server's update verbs share with ReadUpdates.
bool ParseUpdateLine(std::string_view line, Update* update,
                     std::string* error);

/// Reads facts ("R(a, b)", one per line, '#' comments, blank lines
/// ignored) from `in` into db. `origin` labels error messages (a file
/// path or "<string>"). Returns false and fills *error on the first
/// malformed line or arity inconsistency; db may then hold a prefix of
/// the input.
bool ReadTuples(std::istream& in, const std::string& origin, Database* db,
                std::string* error);

/// ReadTuples over the named file. Fails (with *error set) if the file
/// cannot be opened.
bool LoadTupleFile(const std::string& path, Database* db, std::string* error);

/// Writes every *active* tuple of db as one "R(a, b)" fact per line,
/// relations in creation order, rows in insertion order — the inverse of
/// ReadTuples up to comments. `header` (may be empty) is emitted first as
/// '#'-prefixed comment lines.
void WriteTuples(const Database& db, std::ostream& out,
                 const std::string& header = "");

/// WriteTuples to the named file. Returns false (with *error set) if the
/// file cannot be created.
bool SaveTupleFile(const Database& db, const std::string& path,
                   const std::string& header, std::string* error);

// --- Update files -----------------------------------------------------------
//
// An update file is a tuple file with signs and epoch markers:
//
//     # comment
//     epoch 1
//     + R(a, b)
//     - S(c)
//     epoch 2
//     + R(b, c)
//
// `epoch` lines start a new epoch (a trailing label is ignored on read
// and written as a running number for readability); a signed fact before
// any marker implicitly opens the first epoch. Signs may be attached
// ("+R(a,b)") or spaced. WriteUpdates/ReadUpdates round-trip exactly up
// to comments and whitespace.

/// Parses an update file from `in`. Returns false and fills *error (with
/// `origin`:line) on the first malformed line or an arity inconsistency
/// *within the log*; consistency against a concrete database is checked
/// separately by ValidateUpdateLog.
bool ReadUpdates(std::istream& in, const std::string& origin, UpdateLog* log,
                 std::string* error);

/// ReadUpdates over the named file. Fails (with *error set) if the file
/// cannot be opened.
bool LoadUpdateFile(const std::string& path, UpdateLog* log,
                    std::string* error);

/// Writes the log in the format above — the inverse of ReadUpdates.
/// `header` (may be empty) is emitted first as '#'-prefixed comments.
void WriteUpdates(const UpdateLog& log, std::ostream& out,
                  const std::string& header = "");

/// WriteUpdates to the named file. Returns false (with *error set) if
/// the file cannot be created.
bool SaveUpdateFile(const UpdateLog& log, const std::string& path,
                    const std::string& header, std::string* error);

}  // namespace rescq

#endif  // RESCQ_DB_TUPLE_IO_H_
