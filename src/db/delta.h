#ifndef RESCQ_DB_DELTA_H_
#define RESCQ_DB_DELTA_H_

#include <optional>
#include <string>
#include <vector>

#include "db/database.h"

namespace rescq {

/// One base-table update. Updates are textual (relation + constant
/// names, like tuple files) so a log is independent of any particular
/// Database's interning and can round-trip through an update file
/// (db/tuple_io).
enum class UpdateKind {
  kInsert,  // add the fact (reactivating a previously deleted tuple)
  kDelete,  // deactivate the fact (a no-op if it is absent or inactive)
};

struct Update {
  UpdateKind kind = UpdateKind::kInsert;
  std::string relation;
  std::vector<std::string> constants;

  bool operator==(const Update& o) const {
    return kind == o.kind && relation == o.relation &&
           constants == o.constants;
  }
};

/// Updates are batched into epochs: the unit of incremental maintenance
/// and of per-row stream reporting. Within an epoch, updates apply in
/// order (an insert-then-delete of the same fact inside one epoch nets
/// out to nothing).
struct Epoch {
  std::vector<Update> updates;

  bool operator==(const Epoch& o) const { return updates == o.updates; }
};

struct UpdateLog {
  std::vector<Epoch> epochs;

  /// Total updates across all epochs.
  size_t size() const;

  bool operator==(const UpdateLog& o) const { return epochs == o.epochs; }
};

/// Checks every update in the log against db's relations and against the
/// other updates: an update whose arity disagrees with the relation's
/// existing tuples (or with an earlier update that first creates the
/// relation) is an error — Database treats an arity mismatch as a
/// programmer bug and aborts, so untrusted logs are vetted here first.
bool ValidateUpdateLog(const UpdateLog& log, const Database& db,
                       std::string* error);

/// Applies one update to db. Insert activates the fact, creating the
/// tuple (and relation) on first use; Delete deactivates it. Returns the
/// affected TupleId, or nullopt when the update changed nothing
/// (inserting an already-active fact, deleting an absent or inactive
/// one). The log must have been validated: arity mismatches abort.
std::optional<TupleId> ApplyUpdate(const Update& u, Database* db);

/// The effective changes of one applied epoch: tuple ids whose activity
/// actually flipped, in application order. No-op updates leave no trace.
struct AppliedEpoch {
  std::vector<TupleId> inserted;
  std::vector<TupleId> deleted;
};

/// Applies every update of the epoch in order.
AppliedEpoch ApplyEpoch(const Epoch& epoch, Database* db);

}  // namespace rescq

#endif  // RESCQ_DB_DELTA_H_
