#ifndef RESCQ_DB_WITNESS_H_
#define RESCQ_DB_WITNESS_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "cq/query.h"
#include "db/database.h"

namespace rescq {

/// One witness of D |= q: a valuation of all (existential) variables that
/// makes q true, together with the tuples matched by each atom.
struct Witness {
  /// Value per query VarId.
  std::vector<Value> assignment;
  /// Matched tuple per atom (atom order of the query). Two atoms of a
  /// self-join relation may match the same tuple.
  std::vector<TupleId> atom_tuples;
  /// The endogenous tuples used, sorted and deduplicated. This is the set
  /// a contingency set must intersect to kill this witness.
  std::vector<TupleId> endo_tuples;
};

/// "No cap" sentinel for witness enumeration budgets. Every enumeration
/// entry point takes an explicit limit; callers that really want
/// unbounded enumeration say so by passing this.
inline constexpr size_t kNoWitnessLimit = ~size_t{0};

/// Streams every witness of q over the *active* tuples of db to `visit`,
/// one at a time, without materializing the set. The visited Witness is
/// only valid for the duration of the call. Return false from the
/// callback to stop enumeration early. Returns true iff enumeration ran
/// to completion (the callback never asked to stop).
bool ForEachWitness(const Query& q, const Database& db,
                    const std::function<bool(const Witness&)>& visit);

/// Enumerates witnesses into a vector. `limit` caps the number returned
/// and is deliberately not defaulted — exploratory callers must say how
/// much blowup they accept (kNoWitnessLimit for "all of them").
std::vector<Witness> EnumerateWitnesses(const Query& q, const Database& db,
                                        size_t limit);

/// True if D |= q (early-exits at the first witness).
bool QueryHolds(const Query& q, const Database& db);

/// The deduplicated endogenous tuple-set family of (q, D), collected
/// streaming under a witness budget. This is what the exact solver
/// consumes: resilience is the minimum hitting set of `sets`.
struct WitnessFamily {
  /// Distinct endogenous tuple-sets, each sorted; the family is sorted.
  std::vector<std::vector<TupleId>> sets;
  /// Raw witnesses visited (>= sets.size(); duplicates collapse).
  size_t witnesses = 0;
  /// Some witness used no endogenous tuple: q is unbreakable and
  /// enumeration short-circuited (`sets` is partial in that case).
  bool unbreakable = false;
  /// Enumeration stopped after `witness_limit` raw witnesses. `sets` is
  /// then an incomplete family and MUST NOT be used to compute an exact
  /// answer — callers surface this as a "witness budget exceeded"
  /// outcome instead of silently truncating.
  bool budget_exceeded = false;
};

/// Streams witnesses, deduplicating endogenous tuple-sets on the fly (no
/// Witness vector is ever materialized). Stops early when a witness with
/// an empty endogenous set proves q unbreakable, or when `witness_limit`
/// raw witnesses have been visited (budget_exceeded). Pass
/// kNoWitnessLimit for an unbounded collection.
WitnessFamily CollectWitnessFamily(const Query& q, const Database& db,
                                   size_t witness_limit);

/// The distinct endogenous tuple-sets of all witnesses (deduplicated;
/// each set sorted). Resilience is the minimum hitting set of this
/// family; a witness with an empty set makes q unbreakable. Unbounded
/// and never short-circuits — legacy surface for the PTIME solvers that
/// need the complete family; budgeted callers use CollectWitnessFamily.
std::vector<std::vector<TupleId>> WitnessTupleSets(const Query& q,
                                                   const Database& db);

}  // namespace rescq

#endif  // RESCQ_DB_WITNESS_H_
