#ifndef RESCQ_DB_WITNESS_H_
#define RESCQ_DB_WITNESS_H_

#include <vector>

#include "cq/query.h"
#include "db/database.h"

namespace rescq {

/// One witness of D |= q: a valuation of all (existential) variables that
/// makes q true, together with the tuples matched by each atom.
struct Witness {
  /// Value per query VarId.
  std::vector<Value> assignment;
  /// Matched tuple per atom (atom order of the query). Two atoms of a
  /// self-join relation may match the same tuple.
  std::vector<TupleId> atom_tuples;
  /// The endogenous tuples used, sorted and deduplicated. This is the set
  /// a contingency set must intersect to kill this witness.
  std::vector<TupleId> endo_tuples;
};

/// Enumerates all witnesses of q over the *active* tuples of db.
/// `limit` caps the number returned (guards against blowup in
/// exploratory callers); the default is effectively unbounded.
std::vector<Witness> EnumerateWitnesses(const Query& q, const Database& db,
                                        size_t limit = ~size_t{0});

/// True if D |= q (early-exits at the first witness).
bool QueryHolds(const Query& q, const Database& db);

/// The distinct endogenous tuple-sets of all witnesses (deduplicated;
/// each set sorted). Resilience is the minimum hitting set of this
/// family; a witness with an empty set makes q unbreakable.
std::vector<std::vector<TupleId>> WitnessTupleSets(const Query& q,
                                                   const Database& db);

}  // namespace rescq

#endif  // RESCQ_DB_WITNESS_H_
