#ifndef RESCQ_DB_WITNESS_H_
#define RESCQ_DB_WITNESS_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "cq/query.h"
#include "db/database.h"
#include "util/function_ref.h"
#include "util/span_arena.h"

namespace rescq {

/// One witness of D |= q: a valuation of all (existential) variables that
/// makes q true, together with the tuples matched by each atom.
struct Witness {
  /// Value per query VarId.
  std::vector<Value> assignment;
  /// Matched tuple per atom (atom order of the query). Two atoms of a
  /// self-join relation may match the same tuple.
  std::vector<TupleId> atom_tuples;
  /// The endogenous tuples used, sorted and deduplicated. This is the set
  /// a contingency set must intersect to kill this witness.
  std::vector<TupleId> endo_tuples;
};

/// "No cap" sentinel for witness enumeration budgets. Every enumeration
/// entry point takes an explicit limit; callers that really want
/// unbounded enumeration say so by passing this.
inline constexpr size_t kNoWitnessLimit = ~size_t{0};

/// Witness visitor: return false to stop enumeration early. A
/// FunctionRef (util/function_ref.h), so the hot enumeration loops never
/// allocate for the callback — call sites keep passing lambdas, which
/// convert implicitly, but must keep the callable alive for the call
/// (always true for a downward call, the only pattern in this repo).
using WitnessVisitor = FunctionRef<bool(const Witness&)>;

/// Streams every witness of q over the *active* tuples of db to `visit`,
/// one at a time, without materializing the set. The visited Witness is
/// only valid for the duration of the call. Return false from the
/// callback to stop enumeration early. Returns true iff enumeration ran
/// to completion (the callback never asked to stop).
bool ForEachWitness(const Query& q, const Database& db, WitnessVisitor visit);

/// Enumerates witnesses into a vector. `limit` caps the number returned
/// and is deliberately not defaulted — exploratory callers must say how
/// much blowup they accept (kNoWitnessLimit for "all of them").
std::vector<Witness> EnumerateWitnesses(const Query& q, const Database& db,
                                        size_t limit);

/// True if D |= q (early-exits at the first witness).
bool QueryHolds(const Query& q, const Database& db);

/// The deduplicated endogenous tuple-set family of (q, D), collected
/// streaming under a witness budget. This is what the exact solver
/// consumes: resilience is the minimum hitting set of the family.
///
/// Arena-backed: every set is a SetSpan into one TupleId pool
/// (deduplicated by content hash while streaming — no per-set vector is
/// ever allocated), and `sets` lists the distinct spans in ascending
/// lexicographic content order, the order the legacy
/// std::set<std::vector<TupleId>> representation produced.
struct WitnessFamily {
  /// Pool holding every distinct set's tuples contiguously.
  SpanArena<TupleId> arena;
  /// Distinct endogenous tuple-sets, each sorted; the family is sorted
  /// lexicographically by content.
  std::vector<SetSpan> sets;
  /// Raw witnesses visited (>= sets.size(); duplicates collapse).
  size_t witnesses = 0;
  /// Some witness used no endogenous tuple: q is unbreakable and
  /// enumeration short-circuited (`sets` is partial in that case).
  bool unbreakable = false;
  /// Enumeration stopped after `witness_limit` raw witnesses. `sets` is
  /// then an incomplete family and MUST NOT be used to compute an exact
  /// answer — callers surface this as a "witness budget exceeded"
  /// outcome instead of silently truncating.
  bool budget_exceeded = false;

  size_t size() const { return sets.size(); }
  const TupleId* begin(size_t i) const { return arena.data(sets[i]); }
  const TupleId* end(size_t i) const {
    return arena.data(sets[i]) + sets[i].len;
  }
  /// Materialized copy of set i (test / legacy convenience).
  std::vector<TupleId> set(size_t i) const {
    return std::vector<TupleId>(begin(i), end(i));
  }
  /// Materialized copy of the whole family in the legacy
  /// vector<vector<TupleId>> shape — for tests and differential checks
  /// only; the solving path consumes the spans directly.
  std::vector<std::vector<TupleId>> Materialize() const;
  /// Heap geometry of the family storage, O(1) (obs/memstats.h
  /// convention).
  uint64_t ApproxBytes() const;
};

/// Streams witnesses, deduplicating endogenous tuple-sets on the fly (no
/// Witness vector is ever materialized). Stops early when a witness with
/// an empty endogenous set proves q unbreakable, or when `witness_limit`
/// raw witnesses have been visited (budget_exceeded). Pass
/// kNoWitnessLimit for an unbounded collection.
WitnessFamily CollectWitnessFamily(const Query& q, const Database& db,
                                   size_t witness_limit);

/// Streams only the witnesses *incident* to `changed` — those matching
/// at least one changed tuple in some atom — to `visit`. This is the
/// delta form of ForEachWitness: after inserting tuples, the witness
/// family gains exactly the witnesses incident to them; before deleting
/// tuples (while they are still active), it loses exactly the incident
/// ones. Each incident witness is visited exactly once, even when it
/// uses several changed tuples or one changed tuple in several atoms
/// (enumeration is anchored at the first atom, in query order, whose
/// match is changed). Changed tuples that are inactive or whose relation
/// the query does not mention contribute nothing. Same callback contract
/// as ForEachWitness; returns true iff enumeration ran to completion.
bool ForEachDeltaWitness(const Query& q, const Database& db,
                         const std::vector<TupleId>& changed,
                         WitnessVisitor visit);

/// A persistent enumeration context over one (query, database) pair:
/// relation resolution and the per-column posting lists are built once
/// and *patched* as the database grows, instead of rebuilt on every
/// enumeration — the hot-loop form ForEachWitness / ForEachDeltaWitness
/// are one-shot wrappers around. This is what keeps incremental
/// maintenance sublinear per epoch: activity flips need no index work at
/// all (activity is checked at probe time), and appended rows are
/// indexed by SyncNewRows in time proportional to the append.
///
/// Posting lists are segment chains inside one append-only row pool
/// (offsets, not per-value vectors), so the whole index is a handful of
/// allocations and its footprint is tracked as plain arena geometry.
///
/// The referenced query and database must outlive the index, and every
/// database mutation between enumerations must be followed by
/// SyncNewRows() (a cheap no-op when nothing was appended).
class WitnessIndex {
 public:
  WitnessIndex(const Query& q, const Database& db);
  ~WitnessIndex();
  WitnessIndex(const WitnessIndex&) = delete;
  WitnessIndex& operator=(const WitnessIndex&) = delete;

  /// Appends rows added since construction (or the last sync) to the
  /// posting lists. Also resolves relations that did not exist yet when
  /// the index was built (an update stream may create them).
  void SyncNewRows();

  /// ForEachWitness over the prepared index.
  bool ForEach(WitnessVisitor visit);

  /// ForEachDeltaWitness over the prepared index.
  bool ForEachDelta(const std::vector<TupleId>& changed,
                    WitnessVisitor visit);

  /// Approximate heap bytes held by the index (posting pool plus the
  /// enumerator's resident scratch), O(1) from tracked arena geometry —
  /// cheap enough to read per probe.
  size_t ApproxBytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The distinct endogenous tuple-sets of all witnesses (deduplicated;
/// each set sorted). Resilience is the minimum hitting set of this
/// family; a witness with an empty set makes q unbreakable. Unbounded
/// and never short-circuits — legacy surface for the PTIME solvers that
/// need the complete family (and the differential reference the fuzz
/// sweeps check the arena-backed family against); budgeted callers use
/// CollectWitnessFamily.
std::vector<std::vector<TupleId>> WitnessTupleSets(const Query& q,
                                                   const Database& db);

}  // namespace rescq

#endif  // RESCQ_DB_WITNESS_H_
