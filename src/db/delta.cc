#include "db/delta.h"

#include <unordered_map>

#include "util/check.h"

namespace rescq {

size_t UpdateLog::size() const {
  size_t n = 0;
  for (const Epoch& e : epochs) n += e.updates.size();
  return n;
}

bool ValidateUpdateLog(const UpdateLog& log, const Database& db,
                       std::string* error) {
  // Arity of every relation seen so far: the database's relations first,
  // then relations the log itself introduces.
  std::unordered_map<std::string, int> arity;
  for (int rel = 0; rel < db.num_relations(); ++rel) {
    arity[db.relation_name(rel)] = db.relation_arity(rel);
  }
  int epoch_no = 0;
  for (const Epoch& epoch : log.epochs) {
    ++epoch_no;
    for (const Update& u : epoch.updates) {
      if (u.relation.empty() || u.constants.empty()) {
        *error = "epoch " + std::to_string(epoch_no) +
                 ": update with an empty relation or no constants";
        return false;
      }
      auto [it, inserted] =
          arity.emplace(u.relation, static_cast<int>(u.constants.size()));
      if (!inserted && it->second != static_cast<int>(u.constants.size())) {
        *error = "epoch " + std::to_string(epoch_no) + ": relation '" +
                 u.relation + "' used with arity " +
                 std::to_string(u.constants.size()) +
                 ", but its other facts have arity " +
                 std::to_string(it->second);
        return false;
      }
    }
  }
  return true;
}

std::optional<TupleId> ApplyUpdate(const Update& u, Database* db) {
  RESCQ_CHECK(!u.relation.empty() && !u.constants.empty());
  if (u.kind == UpdateKind::kDelete && db->RelationId(u.relation) < 0) {
    return std::nullopt;  // nothing to delete
  }
  std::vector<Value> row;
  row.reserve(u.constants.size());
  for (const std::string& c : u.constants) row.push_back(db->Intern(c));

  if (u.kind == UpdateKind::kInsert) {
    std::optional<TupleId> existing = db->FindTuple(u.relation, row);
    if (existing.has_value()) {
      if (db->IsActive(*existing)) return std::nullopt;
      db->SetActive(*existing, true);
      return existing;
    }
    return db->AddTuple(u.relation, row);
  }

  std::optional<TupleId> existing = db->FindTuple(u.relation, row);
  if (!existing.has_value() || !db->IsActive(*existing)) return std::nullopt;
  db->SetActive(*existing, false);
  return existing;
}

AppliedEpoch ApplyEpoch(const Epoch& epoch, Database* db) {
  AppliedEpoch applied;
  for (const Update& u : epoch.updates) {
    std::optional<TupleId> id = ApplyUpdate(u, db);
    if (!id.has_value()) continue;
    (u.kind == UpdateKind::kInsert ? applied.inserted : applied.deleted)
        .push_back(*id);
  }
  return applied;
}

}  // namespace rescq
