#include "db/database.h"

#include "util/check.h"
#include "util/string_util.h"

namespace rescq {

Value Database::Intern(const std::string& name) {
  auto it = value_ids_.find(name);
  if (it != value_ids_.end()) return it->second;
  Value v = static_cast<Value>(value_names_.size());
  value_names_.push_back(name);
  value_ids_[name] = v;
  return v;
}

Value Database::InternIndexed(const std::string& prefix, int i) {
  return Intern(StrFormat("%s_%d", prefix.c_str(), i));
}

const std::string& Database::ValueName(Value v) const {
  return value_names_[static_cast<size_t>(v)];
}

int Database::AddRelation(const std::string& name, int arity) {
  auto it = relation_ids_.find(name);
  if (it != relation_ids_.end()) {
    RESCQ_CHECK_EQ(relations_[static_cast<size_t>(it->second)].arity, arity);
    return it->second;
  }
  int id = static_cast<int>(relations_.size());
  RelationData data;
  data.name = name;
  data.arity = arity;
  relations_.push_back(std::move(data));
  relation_ids_[name] = id;
  return id;
}

int Database::RelationId(const std::string& name) const {
  auto it = relation_ids_.find(name);
  return it == relation_ids_.end() ? -1 : it->second;
}

const std::string& Database::relation_name(int rel) const {
  return relations_[static_cast<size_t>(rel)].name;
}

int Database::relation_arity(int rel) const {
  return relations_[static_cast<size_t>(rel)].arity;
}

TupleId Database::AddTuple(const std::string& relation,
                           const std::vector<Value>& values) {
  int rel = AddRelation(relation, static_cast<int>(values.size()));
  RelationData& data = relations_[static_cast<size_t>(rel)];
  auto it = data.row_index.find(values);
  if (it != data.row_index.end()) return TupleId{rel, it->second};
  int row = static_cast<int>(data.rows.size());
  data.rows.push_back(values);
  data.active.push_back(true);
  data.row_index[values] = row;
  return TupleId{rel, row};
}

std::optional<TupleId> Database::FindTuple(
    const std::string& relation, const std::vector<Value>& values) const {
  int rel = RelationId(relation);
  if (rel < 0) return std::nullopt;
  const RelationData& data = relations_[static_cast<size_t>(rel)];
  auto it = data.row_index.find(values);
  if (it == data.row_index.end()) return std::nullopt;
  return TupleId{rel, it->second};
}

int Database::NumRows(int rel) const {
  return static_cast<int>(relations_[static_cast<size_t>(rel)].rows.size());
}

const std::vector<Value>& Database::Row(TupleId id) const {
  return relations_[static_cast<size_t>(id.relation)]
      .rows[static_cast<size_t>(id.row)];
}

bool Database::IsActive(TupleId id) const {
  return relations_[static_cast<size_t>(id.relation)]
      .active[static_cast<size_t>(id.row)];
}

void Database::SetActive(TupleId id, bool active) {
  relations_[static_cast<size_t>(id.relation)]
      .active[static_cast<size_t>(id.row)] = active;
}

void Database::ActivateAll() {
  for (RelationData& data : relations_) {
    std::fill(data.active.begin(), data.active.end(), true);
  }
}

int Database::NumActiveTuples() const {
  int n = 0;
  for (const RelationData& data : relations_) {
    for (bool a : data.active) n += a ? 1 : 0;
  }
  return n;
}

std::vector<TupleId> Database::ActiveTuples(int rel) const {
  std::vector<TupleId> out;
  const RelationData& data = relations_[static_cast<size_t>(rel)];
  for (int row = 0; row < static_cast<int>(data.rows.size()); ++row) {
    if (data.active[static_cast<size_t>(row)]) out.push_back(TupleId{rel, row});
  }
  return out;
}

std::string Database::TupleToString(TupleId id) const {
  const RelationData& data = relations_[static_cast<size_t>(id.relation)];
  std::string s = data.name + "(";
  const std::vector<Value>& row = data.rows[static_cast<size_t>(id.row)];
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) s += ",";
    s += ValueName(row[i]);
  }
  s += ")";
  return s;
}

}  // namespace rescq
