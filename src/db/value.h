#ifndef RESCQ_DB_VALUE_H_
#define RESCQ_DB_VALUE_H_

#include <cstdint>
#include <functional>

namespace rescq {

/// An interned domain constant. Values are dense indices into a
/// Database's domain table; the mapping to human-readable names lives in
/// the Database.
using Value = int32_t;

/// Identifies one tuple inside a Database: relation index + row index.
/// Tuple ids are stable: deactivating a tuple does not shift others.
struct TupleId {
  int relation = -1;
  int row = -1;

  bool operator==(const TupleId& o) const {
    return relation == o.relation && row == o.row;
  }
  bool operator<(const TupleId& o) const {
    return relation != o.relation ? relation < o.relation : row < o.row;
  }
};

struct TupleIdHash {
  size_t operator()(const TupleId& t) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(static_cast<uint32_t>(t.relation)) << 32) |
        static_cast<uint32_t>(t.row));
  }
};

}  // namespace rescq

#endif  // RESCQ_DB_VALUE_H_
