#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace rescq::obs {

namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

struct TraceEvent {
  const char* name;
  const char* cat;
  int64_t ts;   // microseconds since the trace epoch
  int64_t dur;  // microseconds
  int tid;
};

struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  int next_tid = 1;
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();  // leaked: outlives threads
  return *buffer;
}

// Small sequential per-thread track ids — stable for the thread's
// lifetime, assigned under the buffer mutex on the thread's first span.
int ThreadTrackId() {
  thread_local int tid = 0;
  if (tid == 0) {
    TraceBuffer& buffer = Buffer();
    std::lock_guard<std::mutex> lock(buffer.mu);
    tid = buffer.next_tid++;
  }
  return tid;
}

}  // namespace

namespace internal {

int64_t TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - Buffer().epoch)
      .count();
}

void RecordSpan(const char* name, const char* cat, int64_t start_us,
                int64_t end_us) {
  TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.ts = start_us;
  event.dur = end_us >= start_us ? end_us - start_us : 0;
  event.tid = ThreadTrackId();
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(event);
}

}  // namespace internal

void StartTrace() {
  TraceBuffer& buffer = Buffer();
  {
    std::lock_guard<std::mutex> lock(buffer.mu);
    buffer.events.clear();
    buffer.epoch = std::chrono::steady_clock::now();
  }
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void StopTrace() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

size_t TraceEventCount() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.events.size();
}

std::string TraceJson() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  std::string out;
  out.append("{\n  \"traceEvents\": [");
  for (size_t i = 0; i < buffer.events.size(); ++i) {
    const TraceEvent& e = buffer.events[i];
    out.append(i == 0 ? "\n" : ",\n");
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    { \"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                  "\"ts\": %lld, \"dur\": %lld, \"pid\": 1, \"tid\": %d }",
                  e.name, e.cat, static_cast<long long>(e.ts),
                  static_cast<long long>(e.dur), e.tid);
    out.append(line);
  }
  if (!buffer.events.empty()) out.append("\n  ");
  out.append("],\n  \"displayTimeUnit\": \"ms\"\n}\n");
  return out;
}

bool WriteTraceJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string json = TraceJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace rescq::obs
